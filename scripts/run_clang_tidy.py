#!/usr/bin/env python3
"""clang-tidy driver with a ratcheting suppression baseline.

Runs clang-tidy (check set: the repo's .clang-tidy) over every library TU
in a CMake compile_commands.json, aggregates diagnostics into per-(file,
check) counts, and compares against the checked-in baseline
scripts/clang_tidy_baseline.json:

  * a (file, check) count ABOVE its baselined count  -> regression, exit 1;
  * a (file, check) count BELOW its baselined count  -> stale baseline —
    the ratchet: exit 1 until the baseline is shrunk with
    --update-baseline, so fixed findings can never quietly come back;
  * counts equal everywhere                          -> clean, exit 0.

The baseline starts (and should stay) empty; it exists so a future check
upgrade that floods the lane can land green immediately and be paid down
finding-by-finding instead of blocking on a mega-fix.

Exit codes: 0 clean, 1 regressions or stale baseline, 2 environment/usage
error (no clang-tidy binary, no compile_commands.json, bad flags).

Usage:
  python3 scripts/run_clang_tidy.py --build-dir build
  python3 scripts/run_clang_tidy.py --build-dir build --update-baseline
  CLANG_TIDY=clang-tidy-18 python3 scripts/run_clang_tidy.py ...
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import pathlib
import re
import shutil
import subprocess
import sys
from typing import Dict, List, Optional, Tuple

BASELINE_VERSION = 1

# clang-tidy diagnostic line:  /path/file.cpp:12:3: warning: text [check-id]
DIAG_RE = re.compile(
    r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?P<sev>warning|error):\s+(?P<text>.*?)\s+\[(?P<check>[\w.,-]+)\]\s*$"
)

Counts = Dict[str, Dict[str, int]]  # repo-relative file -> check -> count


def default_baseline_path() -> pathlib.Path:
    return pathlib.Path(__file__).resolve().parent / "clang_tidy_baseline.json"


def load_baseline(path: pathlib.Path) -> Counts:
    if not path.is_file():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has version {data.get('version')!r}, "
            f"expected {BASELINE_VERSION}"
        )
    counts = data.get("counts", {})
    if not isinstance(counts, dict):
        raise ValueError(f"baseline {path}: 'counts' must be an object")
    return {f: dict(checks) for f, checks in counts.items()}


def save_baseline(path: pathlib.Path, counts: Counts) -> None:
    slim = {
        f: {c: n for c, n in sorted(checks.items()) if n > 0}
        for f, checks in sorted(counts.items())
    }
    slim = {f: checks for f, checks in slim.items() if checks}
    path.write_text(
        json.dumps({"version": BASELINE_VERSION, "counts": slim}, indent=2)
        + "\n",
        encoding="utf-8",
    )


def library_tus(compile_commands: pathlib.Path,
                repo_root: pathlib.Path) -> List[str]:
    """Absolute paths of TUs under <repo_root>/src, from compile_commands."""
    entries = json.loads(compile_commands.read_text(encoding="utf-8"))
    src_root = (repo_root / "src").resolve()
    files = []
    for entry in entries:
        f = pathlib.Path(entry["file"])
        if not f.is_absolute():
            f = pathlib.Path(entry["directory"]) / f
        f = f.resolve()
        if src_root in f.parents:
            files.append(str(f))
    return sorted(set(files))


def parse_diagnostics(output: str, repo_root: pathlib.Path) -> Counts:
    """Aggregates diagnostics to per-(file, check) counts. Duplicate
    sites (same file:line:col:check, as happens when several TUs include
    one header) collapse to one."""
    seen: set = set()
    counts: Counts = {}
    for line in output.splitlines():
        m = DIAG_RE.match(line)
        if not m:
            continue
        f = pathlib.Path(m.group("file"))
        try:
            rel = f.resolve().relative_to(repo_root).as_posix()
        except ValueError:
            continue  # diagnostic in a system/third-party header
        for check in m.group("check").split(","):
            key = (rel, m.group("line"), m.group("col"), check)
            if key in seen:
                continue
            seen.add(key)
            counts.setdefault(rel, {})[check] = (
                counts.get(rel, {}).get(check, 0) + 1
            )
    return counts


def run_tidy(
    binary: str,
    build_dir: pathlib.Path,
    files: List[str],
    jobs: int,
    extra_args: List[str],
) -> Tuple[Counts, str]:
    repo_root = pathlib.Path(__file__).resolve().parent.parent

    def one(f: str) -> str:
        cmd = [binary, "-p", str(build_dir), "--quiet", *extra_args, f]
        proc = subprocess.run(
            cmd, capture_output=True, text=True, check=False
        )
        # clang-tidy exits non-zero on warnings with some configs and on
        # real failures; a config/crash failure has no parseable
        # diagnostics, which the caller detects via the raw transcript.
        return proc.stdout + "\n" + proc.stderr

    outputs: List[str] = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        outputs = list(pool.map(one, files))
    transcript = "\n".join(outputs)
    merged: Counts = {}
    for f, checks in parse_diagnostics(transcript, repo_root).items():
        for c, n in checks.items():
            merged.setdefault(f, {})[c] = merged.get(f, {}).get(c, 0) + n
    return merged, transcript


def diff_counts(current: Counts, baseline: Counts):
    """(regressions, stale): [(file, check, current_n, baseline_n)]."""
    regressions, stale = [], []
    files = set(current) | set(baseline)
    for f in sorted(files):
        checks = set(current.get(f, {})) | set(baseline.get(f, {}))
        for c in sorted(checks):
            now = current.get(f, {}).get(c, 0)
            base = baseline.get(f, {}).get(c, 0)
            if now > base:
                regressions.append((f, c, now, base))
            elif now < base:
                stale.append((f, c, now, base))
    return regressions, stale


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", type=pathlib.Path, default="build",
                        help="CMake build dir containing compile_commands"
                             ".json (default: build)")
    parser.add_argument("--clang-tidy",
                        default=os.environ.get("CLANG_TIDY", "clang-tidy"),
                        help="clang-tidy binary (default: $CLANG_TIDY or "
                             "'clang-tidy')")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=default_baseline_path(),
                        help="suppression baseline JSON")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to the current findings "
                             "(shrink after fixes; growth needs review)")
    parser.add_argument("-j", "--jobs", type=int,
                        default=max(1, (os.cpu_count() or 2) - 1),
                        help="parallel clang-tidy processes")
    parser.add_argument("--extra-arg", action="append", default=[],
                        dest="extra_args", metavar="ARG",
                        help="forwarded to clang-tidy (repeatable)")
    args = parser.parse_args(argv)

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    if shutil.which(args.clang_tidy) is None:
        print(f"run_clang_tidy: no such binary: {args.clang_tidy} "
              "(set --clang-tidy or $CLANG_TIDY)", file=sys.stderr)
        return 2
    compile_commands = args.build_dir / "compile_commands.json"
    if not compile_commands.is_file():
        print(f"run_clang_tidy: {compile_commands} not found — configure "
              "with cmake first (CMAKE_EXPORT_COMPILE_COMMANDS is on by "
              "default here)", file=sys.stderr)
        return 2
    try:
        baseline = load_baseline(args.baseline)
    except ValueError as err:
        print(f"run_clang_tidy: {err}", file=sys.stderr)
        return 2

    files = library_tus(compile_commands, repo_root)
    if not files:
        print("run_clang_tidy: no src/ TUs in compile_commands.json",
              file=sys.stderr)
        return 2
    print(f"run_clang_tidy: checking {len(files)} TU(s) with "
          f"{args.clang_tidy}, -j{args.jobs}")
    current, transcript = run_tidy(
        args.clang_tidy, args.build_dir, files, args.jobs, args.extra_args
    )
    if "error: " in transcript and not any(
        DIAG_RE.match(l) for l in transcript.splitlines()
    ):
        # Hard failure (bad config, missing header) without diagnostics.
        sys.stderr.write(transcript)
        return 2

    if args.update_baseline:
        save_baseline(args.baseline, current)
        total = sum(n for checks in current.values() for n in checks.values())
        print(f"run_clang_tidy: baseline rewritten with {total} finding(s)")
        return 0

    regressions, stale = diff_counts(current, baseline)
    for f, c, now, base in regressions:
        print(f"REGRESSION {f}: {c}: {now} finding(s), baseline {base}")
    for f, c, now, base in stale:
        print(f"STALE      {f}: {c}: {now} finding(s), baseline {base} — "
              "shrink with --update-baseline")
    if regressions:
        # Show the matching diagnostic lines so CI logs are actionable.
        bad_files = {f for f, *_ in regressions}
        for line in transcript.splitlines():
            m = DIAG_RE.match(line)
            if m and any(m.group("file").endswith(f) for f in bad_files):
                print(line)
    if regressions or stale:
        return 1
    total = sum(n for checks in current.values() for n in checks.values())
    print(f"run_clang_tidy: clean ({total} baselined finding(s), "
          f"{len(files)} TUs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
