#!/usr/bin/env python3
"""Compare two directories of BENCH_*.json captures and flag regressions.

Usage: compare_bench_json.py BASELINE_DIR CURRENT_DIR [options]

Joins the two runs' captures by (bench, table name, row key), where the
row key is the first cell of each row (the sweep variable, e.g.
`batch_ops`), and compares every numeric cell under the same header.
Relative deltas beyond --threshold are flagged; whether a delta is a
*regression* depends on the column's direction:

  * higher-is-worse columns (--worse, default: times in ms/us, rounds,
    recomputed/seeds/retries/changed counters, and the snapshot bench's
    txn_aborts/ring_evictions obs-counter deltas) regress when they
    increase;
  * higher-is-better columns (--better, default: the `full/...`,
    `churn/...`, `rebuild/...` win ratios) regress when they decrease;
  * columns matching neither regex are reported when they move, but
    never fail the run (unknown direction).

Tables, rows, or whole benches present on only one side are reported as
informational (new benches appear every PR; a bench that stops emitting
is caught by validate_bench_json.py in the same CI lane). The baseline
side is held to the same standard: a baseline capture that is
unreadable, malformed JSON, or not the list-of-tables shape the join
needs is dropped with an informational note, so the matching current
capture reports as "new" — a PR that adds a bench the main baseline has
never produced (or whose baseline artifact got truncated) must not need
a gate exemption. Only the *current* side's captures are load-bearing,
and a broken one is still a hard error (exit 2).

Exit status: 1 if any regression was flagged, 2 on usage/IO errors,
0 otherwise. Used by the bench-capture CI lane to diff every PR's
artifacts against the latest main run; wall-clock columns on shared
runners are noisy, so CI passes a generous threshold and the
deterministic counter columns do the heavy lifting.
"""
import argparse
import json
import re
import sys
from pathlib import Path

DEFAULT_WORSE = (
    r"(_ms$|_us$|rounds|recomputed|seeds|retries|changed|txn_aborts"
    r"|ring_evictions)")
DEFAULT_BETTER = r"^(full|churn|rebuild)/"


def joinable(doc):
    """True when the parsed doc has the list-of-tables shape compare()
    joins on: a list of dicts, each with a string "name"."""
    return (isinstance(doc, list) and
            all(isinstance(t, dict) and isinstance(t.get("name"), str)
                for t in doc))


def load_captures(directory: Path, lenient: bool = False):
    """{bench name: parsed json} for every BENCH_*.json in directory.

    Strict mode (the current run's artifacts): an unreadable, malformed,
    or unjoinable capture exits 2 — the PR's own output is broken.
    Lenient mode (the main baseline): the capture is dropped with an
    informational note, so the bench joins as absent-from-baseline and
    the current side reports it as new (see the module docstring).
    """
    captures = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        try:
            doc = json.loads(path.read_text())
            if not joinable(doc):
                raise ValueError("not a list of named tables")
        except (OSError, json.JSONDecodeError, ValueError) as e:
            if lenient:
                print(f"info: baseline {path.name} unreadable or "
                      f"unjoinable ({e}); treating bench '{name}' as "
                      f"absent from baseline")
                continue
            print(f"error: {path}: unreadable or malformed — {e}",
                  file=sys.stderr)
            raise SystemExit(2)  # IO/usage error, not a perf regression
        captures[name] = doc
    return captures


def index_rows(table):
    """{first cell: row} — later duplicates win, matching emission order.
    Rows that are not non-empty lists cannot be joined and are skipped."""
    return {row[0]: row for row in table.get("rows", [])
            if isinstance(row, list) and row}


def parse_number(cell: str):
    """float value of a table cell, or None for non-numeric cells."""
    try:
        return float(cell.replace(",", ""))
    except (ValueError, AttributeError):
        return None


def relative_delta(base: float, cur: float):
    """(cur - base) / |base|, treating a 0 -> 0 move as no delta."""
    if base == cur:
        return 0.0
    if base == 0:
        return float("inf") if cur > 0 else float("-inf")
    return (cur - base) / abs(base)


def compare(baseline, current, threshold, worse_re, better_re, report):
    """Walks one bench's tables; returns the number of regressions."""
    regressions = 0
    base_tables = {t["name"]: t for t in baseline}
    cur_tables = {t["name"]: t for t in current}
    for name in base_tables.keys() - cur_tables.keys():
        report("info", f"table '{name}' missing from current run")
    for name in cur_tables.keys() - base_tables.keys():
        report("info", f"table '{name}' is new in current run")
    for name in sorted(base_tables.keys() & cur_tables.keys()):
        bt, ct = base_tables[name], cur_tables[name]
        headers = bt.get("headers", [])
        if headers != ct.get("headers", []):
            report("info", f"table '{name}': headers changed; skipping")
            continue
        base_rows, cur_rows = index_rows(bt), index_rows(ct)
        for key in base_rows.keys() - cur_rows.keys():
            report("info", f"table '{name}' row '{key}' missing from current")
        for key in cur_rows.keys() - base_rows.keys():
            report("info", f"table '{name}' row '{key}' is new in current")
        for key in sorted(base_rows.keys() & cur_rows.keys()):
            for header, base_cell, cur_cell in zip(
                    headers[1:], base_rows[key][1:], cur_rows[key][1:]):
                base_val = parse_number(base_cell)
                cur_val = parse_number(cur_cell)
                if base_val is None or cur_val is None:
                    continue
                delta = relative_delta(base_val, cur_val)
                if abs(delta) <= threshold:
                    continue
                where = (f"table '{name}' row '{key}' column '{header}': "
                         f"{base_cell} -> {cur_cell} ({delta:+.1%})")
                if worse_re.search(header):
                    if delta > 0:
                        regressions += 1
                        report("REGRESSION", where)
                    else:
                        report("improved", where)
                elif better_re.search(header):
                    if delta < 0:
                        regressions += 1
                        report("REGRESSION", where)
                    else:
                        report("improved", where)
                else:
                    report("changed", where)
    return regressions


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative delta considered noise (default 0.25)")
    parser.add_argument("--worse", default=DEFAULT_WORSE,
                        help="regex of higher-is-worse column headers")
    parser.add_argument("--better", default=DEFAULT_BETTER,
                        help="regex of higher-is-better column headers")
    parser.add_argument("--benches", nargs="*",
                        help="restrict to these bench names (default: all "
                             "benches present in the baseline)")
    args = parser.parse_args(argv[1:])
    for directory in (args.baseline, args.current):
        if not directory.is_dir():
            print(f"error: {directory} is not a directory", file=sys.stderr)
            return 2
    worse_re = re.compile(args.worse)
    better_re = re.compile(args.better)

    baseline = load_captures(args.baseline, lenient=True)
    current = load_captures(args.current)
    if args.benches:
        baseline = {b: t for b, t in baseline.items() if b in args.benches}
        current = {b: t for b, t in current.items() if b in args.benches}

    regressions = 0
    lines = []

    def report(kind, message):
        lines.append((kind, message))

    for bench in sorted(baseline.keys() - current.keys()):
        report("info", f"bench '{bench}' missing from current run")
    for bench in sorted(current.keys() - baseline.keys()):
        report("info", f"bench '{bench}' is new in current run")
    for bench in sorted(baseline.keys() & current.keys()):
        regressions += compare(baseline[bench], current[bench],
                               args.threshold, worse_re, better_re,
                               lambda kind, msg, b=bench:
                               report(kind, f"[{b}] {msg}"))

    for kind, message in lines:
        stream = sys.stderr if kind == "REGRESSION" else sys.stdout
        print(f"{kind}: {message}", file=stream)
    compared = sorted(baseline.keys() & current.keys())
    print(f"compared benches: {', '.join(compared) if compared else '(none)'}"
          f" — {regressions} regression(s) beyond {args.threshold:.0%}")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
