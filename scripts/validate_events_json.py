#!/usr/bin/env python3
"""Validate flight-recorder event JSON exported by the obs EventRecorder.

Usage: validate_events_json.py FILE [FILE ...]
           [--require KIND[,KIND...]] [--require-chain N]

Each FILE must be a "pargreedy-events-v1" document as emitted by
pargreedy's obs::EventRecorder (docs/OBSERVABILITY.md):

  * top level: an object with string "schema" == "pargreedy-events-v1",
    string "reason", integer "overwritten" >= 0, and a non-empty
    "events" list;
  * every event: an object with integer "ts"/"tid"/"batch_id"/"txn_id"
    >= 0, integer "shard_id" >= -1 (-1 = no shard context), integer
    "arg0"/"arg1" >= 0, and a non-empty string "kind";
  * timestamps are non-decreasing (the recorder merges per-thread rings
    sorted by timestamp).

--require KIND[,KIND...] additionally demands that every listed event
kind occurs somewhere in each file — the CI bench-capture lane uses it
to pin the exchange-round and repropagation events, so an
instrumentation regression fails the lane instead of shipping a hollow
recording.

--require-chain N demands that some single batch_id's events span at
least N distinct shard_ids — the machine check that one UpdateBatch is
followable across all shards of a sharded run via its correlation id.

Exits 0 when every file validates, 1 otherwise (all problems are
reported, not just the first), 2 on usage errors.
"""
import json
import sys
from pathlib import Path

SCHEMA = "pargreedy-events-v1"


def _nonneg_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def validate_event(event, where: str) -> list[str]:
    """Schema errors for one flight-recorder event object."""
    if not isinstance(event, dict):
        return [f"{where}: event is {type(event).__name__}, not an object"]
    errors = []
    kind = event.get("kind")
    if not isinstance(kind, str) or not kind:
        errors.append(f"{where}: 'kind' must be a non-empty string")
    for key in ("ts", "tid", "batch_id", "txn_id", "arg0", "arg1"):
        if not _nonneg_int(event.get(key)):
            errors.append(f"{where}: '{key}' must be a non-negative integer")
    shard = event.get("shard_id")
    if not isinstance(shard, int) or isinstance(shard, bool) or shard < -1:
        errors.append(f"{where}: 'shard_id' must be an integer >= -1")
    return errors


def validate_file(path: Path, required: list[str], chain: int):
    """(errors, event count) for one events file."""
    if not path.is_file():
        return [f"{path}: missing (recorder did not export)"], 0
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or malformed JSON — {e}"], 0
    if not isinstance(doc, dict):
        return [f"{path}: top level must be an object"], 0
    errors = []
    if doc.get("schema") != SCHEMA:
        errors.append(f"{path}: 'schema' must be {SCHEMA!r}")
    if not isinstance(doc.get("reason"), str) or not doc.get("reason"):
        errors.append(f"{path}: 'reason' must be a non-empty string")
    if not _nonneg_int(doc.get("overwritten")):
        errors.append(f"{path}: 'overwritten' must be a non-negative integer")
    events = doc.get("events")
    if not isinstance(events, list) or not events:
        return errors + [f"{path}: 'events' must be a non-empty list"], 0
    seen_kinds = set()
    shards_per_batch = {}
    last_ts = 0
    for i, event in enumerate(events):
        errors += validate_event(event, f"{path} event {i}")
        if not isinstance(event, dict):
            continue
        if isinstance(event.get("kind"), str):
            seen_kinds.add(event["kind"])
        ts = event.get("ts")
        if _nonneg_int(ts):
            if ts < last_ts:
                errors.append(
                    f"{path} event {i}: 'ts' decreased ({ts} < {last_ts})")
            last_ts = ts
        batch, shard = event.get("batch_id"), event.get("shard_id")
        if _nonneg_int(batch) and batch > 0 and isinstance(shard, int) \
                and not isinstance(shard, bool) and shard >= 0:
            shards_per_batch.setdefault(batch, set()).add(shard)
    for kind in required:
        if kind not in seen_kinds:
            errors.append(f"{path}: required event kind {kind!r} never occurs")
    if chain > 0:
        widest = max((len(s) for s in shards_per_batch.values()), default=0)
        if widest < chain:
            errors.append(
                f"{path}: no batch_id spans {chain} shards "
                f"(widest correlated chain covers {widest})")
    return errors, len(events)


def main(argv: list[str]) -> int:
    files, required, chain = [], [], 0
    args = argv[1:]
    while args:
        arg = args.pop(0)
        if arg == "--require":
            if not args:
                print("error: --require needs an argument", file=sys.stderr)
                return 2
            required += [n for n in args.pop(0).split(",") if n]
        elif arg == "--require-chain":
            if not args:
                print("error: --require-chain needs an argument",
                      file=sys.stderr)
                return 2
            try:
                chain = int(args.pop(0))
            except ValueError:
                print("error: --require-chain needs an integer",
                      file=sys.stderr)
                return 2
        else:
            files.append(Path(arg))
    if not files:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    for path in files:
        file_errors, count = validate_file(path, required, chain)
        if file_errors:
            errors += file_errors
        else:
            print(f"ok: {path} — {count} events")
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
