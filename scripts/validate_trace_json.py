#!/usr/bin/env python3
"""Validate Chrome trace_event JSON exported by the obs tracer.

Usage: validate_trace_json.py FILE [FILE ...] [--require NAME[,NAME...]]

Each FILE must be a Chrome trace_event "JSON object format" document as
emitted by pargreedy's obs::Tracer (docs/OBSERVABILITY.md):

  * top level: an object with a "traceEvents" list (extra keys such as
    "displayTimeUnit" are allowed);
  * every event: an object with string "name", one-character "ph" in
    {X, i, C, M}, integer "ts" >= 0, and integer "pid"/"tid";
  * "X" (complete) events additionally carry integer "dur" >= 0 and a
    string "cat";
  * "C" (counter) events carry args.value as a non-negative integer;
  * "args", when present, is an object with int-or-string values.

--require NAME[,NAME...] additionally demands that every listed event
name occurs somewhere in each file — the CI bench-capture lane uses it
to pin the per-round decide/commit/expand spans and the txn.abort
counter, so an instrumentation regression fails the lane instead of
shipping a hollow trace.

Exits 0 when every file validates, 1 otherwise (all problems are
reported, not just the first), 2 on usage errors.
"""
import json
import sys
from pathlib import Path

VALID_PHASES = {"X", "i", "C", "M"}


def validate_event(event, where: str) -> list[str]:
    """Schema errors for one trace event object."""
    if not isinstance(event, dict):
        return [f"{where}: event is {type(event).__name__}, not an object"]
    errors = []
    name = event.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"{where}: 'name' must be a non-empty string")
    ph = event.get("ph")
    if not isinstance(ph, str) or ph not in VALID_PHASES:
        errors.append(f"{where}: 'ph' must be one of {sorted(VALID_PHASES)}")
        return errors  # phase-specific checks are meaningless without ph
    for key in ("ts", "pid", "tid"):
        value = event.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            errors.append(f"{where}: '{key}' must be a non-negative integer")
    if ph == "X":
        dur = event.get("dur")
        if not isinstance(dur, int) or isinstance(dur, bool) or dur < 0:
            errors.append(f"{where}: complete event needs integer 'dur' >= 0")
        if not isinstance(event.get("cat"), str):
            errors.append(f"{where}: complete event needs a string 'cat'")
    args = event.get("args")
    if args is not None:
        if not isinstance(args, dict):
            errors.append(f"{where}: 'args' must be an object")
        else:
            for k, v in args.items():
                if not isinstance(v, (int, str)) or isinstance(v, bool):
                    errors.append(
                        f"{where}: args[{k!r}] must be an int or string")
    if ph == "C":
        value = (args or {}).get("value")
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            errors.append(
                f"{where}: counter event needs non-negative args.value")
    return errors


def validate_file(path: Path, required: list[str]):
    """(errors, event count) for one trace file."""
    if not path.is_file():
        return [f"{path}: missing (tracer did not export)"], 0
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or malformed JSON — {e}"], 0
    if not isinstance(doc, dict):
        return [f"{path}: top level must be an object"], 0
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return [f"{path}: 'traceEvents' must be a non-empty list"], 0
    errors = []
    seen_names = set()
    for i, event in enumerate(events):
        errors += validate_event(event, f"{path} event {i}")
        if isinstance(event, dict) and isinstance(event.get("name"), str):
            seen_names.add(event["name"])
    for name in required:
        if name not in seen_names:
            errors.append(f"{path}: required event name {name!r} never occurs")
    return errors, len(events)


def main(argv: list[str]) -> int:
    files, required = [], []
    args = argv[1:]
    while args:
        arg = args.pop(0)
        if arg == "--require":
            if not args:
                print("error: --require needs an argument", file=sys.stderr)
                return 2
            required += [n for n in args.pop(0).split(",") if n]
        else:
            files.append(Path(arg))
    if not files:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    for path in files:
        file_errors, count = validate_file(path, required)
        if file_errors:
            errors += file_errors
        else:
            print(f"ok: {path} — {count} events")
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
