#!/usr/bin/env python3
"""clang-format conformance check (and fixer) for the C++ tree.

Check mode (default) runs `clang-format --dry-run -Werror` over every
tracked C++ file under src/, tests/, bench/, and examples/ using the
repo's .clang-format, and lists each non-conforming file. --fix rewrites
in place instead.

Exit codes: 0 conforming (or fixed), 1 files need formatting, 2
environment/usage error (no clang-format binary unless --skip-missing).

Usage:
  python3 scripts/check_format.py            # check, list offenders
  python3 scripts/check_format.py --fix      # rewrite in place
  CLANG_FORMAT=clang-format-18 python3 scripts/check_format.py
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import pathlib
import shutil
import subprocess
import sys
from typing import List, Optional

CXX_DIRS = ("src", "tests", "bench", "examples")
CXX_EXTS = {".hpp", ".cpp", ".h", ".cc"}


def cxx_files(repo_root: pathlib.Path) -> List[pathlib.Path]:
    files = []
    for sub in CXX_DIRS:
        base = repo_root / sub
        if base.is_dir():
            files.extend(
                p for p in sorted(base.rglob("*"))
                if p.suffix in CXX_EXTS and p.is_file()
            )
    return files


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clang-format",
                        default=os.environ.get("CLANG_FORMAT", "clang-format"),
                        help="clang-format binary (default: $CLANG_FORMAT or "
                             "'clang-format')")
    parser.add_argument("--fix", action="store_true",
                        help="rewrite files in place instead of checking")
    parser.add_argument("--skip-missing", action="store_true",
                        help="exit 0 with a notice when the binary is absent "
                             "(for optional local hooks; CI must not set it)")
    parser.add_argument("-j", "--jobs", type=int,
                        default=max(1, (os.cpu_count() or 2) - 1))
    parser.add_argument("files", nargs="*", type=pathlib.Path,
                        help="specific files (default: the whole C++ tree)")
    args = parser.parse_args(argv)

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    if shutil.which(args.clang_format) is None:
        msg = (f"check_format: no such binary: {args.clang_format} "
               "(set --clang-format or $CLANG_FORMAT)")
        if args.skip_missing:
            print(msg + " — skipping")
            return 0
        print(msg, file=sys.stderr)
        return 2

    files = [f.resolve() for f in args.files] or cxx_files(repo_root)
    if not files:
        print("check_format: no C++ files found", file=sys.stderr)
        return 2

    def one(path: pathlib.Path) -> Optional[str]:
        """Relative path if the file needs formatting, else None."""
        if args.fix:
            cmd = [args.clang_format, "-style=file", "-i", str(path)]
        else:
            cmd = [args.clang_format, "-style=file", "--dry-run", "-Werror",
                   str(path)]
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              cwd=repo_root, check=False)
        if proc.returncode != 0:
            try:
                return path.relative_to(repo_root).as_posix()
            except ValueError:
                return str(path)
        return None

    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        offenders = [r for r in pool.map(one, files) if r]

    if args.fix:
        print(f"check_format: formatted {len(files)} file(s)"
              + (f", {len(offenders)} failed" if offenders else ""))
        return 1 if offenders else 0
    for f in offenders:
        print(f"NEEDS FORMAT {f}")
    if offenders:
        print(f"check_format: {len(offenders)}/{len(files)} file(s) need "
              "formatting — run: python3 scripts/check_format.py --fix",
              file=sys.stderr)
        return 1
    print(f"check_format: {len(files)} file(s) conform")
    return 0


if __name__ == "__main__":
    sys.exit(main())
