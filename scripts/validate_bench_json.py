#!/usr/bin/env python3
"""Validate BENCH_*.json capture files against the docs/BENCH.md schema.

Usage: validate_bench_json.py DIR BENCH [BENCH ...]

For every BENCH name given, requires DIR/BENCH_<name>.json to exist and to
be a JSON array of table objects {"name": str, "headers": [str], "rows":
[[str]]} where every row has the same arity as the headers and all cells
are strings (consumers parse numbers themselves). The CI bench-capture
job runs this over its artifacts so a bench that silently stops emitting
(or emits a malformed table) fails the lane instead of shipping an empty
artifact.

Exits 0 when every expected file validates, 1 otherwise (all problems are
reported, not just the first).
"""
import json
import sys
from pathlib import Path


def validate_table(table, where: str) -> list[str]:
    """Schema errors for one {name, headers, rows} table object."""
    errors = []
    if not isinstance(table, dict):
        return [f"{where}: table entry is {type(table).__name__}, not an object"]
    unexpected = set(table) - {"name", "headers", "rows"}
    if unexpected:
        errors.append(f"{where}: unexpected keys {sorted(unexpected)}")
    name = table.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"{where}: 'name' must be a non-empty string")
    headers = table.get("headers")
    if (not isinstance(headers, list) or not headers
            or not all(isinstance(h, str) for h in headers)):
        errors.append(f"{where}: 'headers' must be a non-empty list of strings")
        return errors  # row arity is meaningless without headers
    rows = table.get("rows")
    if not isinstance(rows, list):
        errors.append(f"{where}: 'rows' must be a list")
        return errors
    for i, row in enumerate(rows):
        if not isinstance(row, list) or not all(
                isinstance(cell, str) for cell in row):
            errors.append(f"{where} row {i}: must be a list of strings")
        elif len(row) != len(headers):
            errors.append(f"{where} row {i}: {len(row)} cells for "
                          f"{len(headers)} headers")
    return errors


def validate_file(path: Path):
    """(errors, parsed document or None) for one capture file."""
    if not path.is_file():
        return [f"{path}: missing (bench did not emit its capture)"], None
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or malformed JSON — {e}"], None
    if not isinstance(doc, list) or not doc:
        return ([f"{path}: top level must be a non-empty JSON array of "
                 "tables"], None)
    errors = []
    for i, table in enumerate(doc):
        errors += validate_table(table, f"{path} table {i}")
    return errors, doc


def main(argv: list[str]) -> int:
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    directory = Path(argv[1])
    errors = []
    for bench in argv[2:]:
        path = directory / f"BENCH_{bench}.json"
        file_errors, tables = validate_file(path)
        if file_errors:
            errors += file_errors
        else:
            rows = sum(len(t["rows"]) for t in tables)
            print(f"ok: {path} — {len(tables)} tables, {rows} rows")
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
