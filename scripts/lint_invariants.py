#!/usr/bin/env python3
"""Repo-invariant linter: project-specific rules no off-the-shelf tool knows.

Rules (each reportable, each with a stable id):

  journal-hooks     every OverlayGraph mutator body in
                    src/dynamic/overlay_graph.cpp performs at least its
                    expected number of `journal_->record(...)` calls, and
                    every non-const public OverlayGraph method is classified
                    (mutator or explicitly allowlisted) so new mutators
                    cannot dodge the rule by being unknown;
  omp-confined      `#pragma omp` appears only under src/parallel/ — the
                    parallelism seam the deterministic rounds depend on;
  no-nondeterminism no rand()/srand()/std::random_device/time() in src/
                    (all randomness flows from explicit seeds; src/obs/ is
                    exempt — wall-clock reads are its whole job);
  no-cout           no std::cout in library code (src/; src/obs/ writers
                    take std::ostream& and are exempt);
  bench-emit        bench binaries emit tables only via bench::emit
                    (no direct Table::print / Table::write_json), so the
                    JSON capture lane sees every table;
  obs-confined      metric/span emission only via the src/obs/ API — no
                    ad-hoc clock reads (steady_clock & co.), Timer uses,
                    or printf-family telemetry in library code outside
                    src/obs/ and src/support/timing.hpp.

Engine: token-level scanning with comment/string stripping (always
available). When the libclang python bindings are importable, the
journal-hooks rule additionally cross-checks method-body extents with the
real parser; token-level results are authoritative when libclang is absent.

Suppression: append `// pargreedy-lint: allow(<rule-id>)` on the offending
line. Use sparingly; the suppression itself is grep-able.

Exit codes: 0 clean, 1 violations found, 2 internal/usage error.
Run as: python3 scripts/lint_invariants.py [--repo-root DIR] [--rule ID]
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import Iterable, List, NamedTuple, Optional

# --------------------------------------------------------------- model ----


class Violation(NamedTuple):
    rule: str
    path: str  # repo-relative, forward slashes
    line: int  # 1-based; 0 when the finding is file- or class-level
    message: str

    def render(self) -> str:
        loc = f"{self.path}:{self.line}" if self.line else self.path
        return f"{loc}: [{self.rule}] {self.message}"


RULE_IDS = (
    "journal-hooks",
    "omp-confined",
    "no-nondeterminism",
    "no-cout",
    "bench-emit",
    "obs-confined",
)

ALLOW_RE = re.compile(r"pargreedy-lint:\s*allow\(([a-z-]+)\)")

# Expected minimum journal_->record(...) call counts per OverlayGraph
# mutator body (src/dynamic/overlay_graph.cpp). Minimums, not exact counts,
# so adding a record site never trips the linter — but deleting one below
# the floor does. Keep in sync with the mutators' record sites.
EXPECTED_JOURNAL_HOOKS = {
    "insert_edge": 3,        # revive-base / revive-extra / append-extra
    "erase_edge": 2,         # erase-base / erase-extra
    "set_slot_weight": 1,    # old-weight store
    "set_vertex_weight": 2,  # lazy weighted upgrade + old-weight store
    "ensure_edge_weights": 1,  # lazy weighted upgrade
}

# Non-const public OverlayGraph methods that are legitimately NOT journal
# mutators. Anything non-const and public that is neither here nor in
# EXPECTED_JOURNAL_HOOKS fails classification — new mutators must be
# triaged into one of the two lists.
JOURNAL_EXEMPT_METHODS = {
    "set_edge_weight",  # delegates to set_slot_weight (which journals)
    "compact",          # forbidden while a journal is attached (checked)
    "set_journal",      # the attach/detach seam itself
    "undo_to",          # the replay path — consumes records
    "OverlayGraph",     # constructors
    "enable_frontier_tracking",  # forbidden while attached (checked); the
                                 # counters it seeds are derived state kept
                                 # exact by the journaled mutators
    "track_edge",       # derived-counter maintenance, no structural change
}

# ---------------------------------------------------------- C++ lexing ----


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments, string literals, and char literals, preserving
    every newline so line numbers survive. Handles //, /* */, "..." with
    escapes, '...' with escapes; raw strings are treated as plain strings
    (good enough: the repo has none outside tests)."""
    out: List[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            i = n if j == -1 else j  # keep the newline
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif c == "'" and i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_"):
            out.append(c)  # digit separator (7'000), not a char literal
            i += 1
        elif c in ('"', "'"):
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append("\n" * text.count("\n", i, j))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _line_allows(raw_lines: List[str], lineno: int, rule: str) -> bool:
    if not 1 <= lineno <= len(raw_lines):
        return False
    m = ALLOW_RE.search(raw_lines[lineno - 1])
    return bool(m and m.group(1) == rule)


def scan_lines(
    path: pathlib.Path,
    root: pathlib.Path,
    pattern: re.Pattern,
    rule: str,
    message: str,
) -> List[Violation]:
    """One violation per stripped-code line matching `pattern`."""
    raw = path.read_text(encoding="utf-8")
    raw_lines = raw.splitlines()
    rel = path.relative_to(root).as_posix()
    found = []
    for lineno, line in enumerate(strip_comments_and_strings(raw).splitlines(), 1):
        if pattern.search(line) and not _line_allows(raw_lines, lineno, rule):
            found.append(Violation(rule, rel, lineno, message))
    return found


def cxx_files(root: pathlib.Path, *subdirs: str) -> Iterable[pathlib.Path]:
    for sub in subdirs:
        base = root / sub
        if not base.is_dir():
            continue
        for ext in ("*.hpp", "*.cpp", "*.h", "*.cc"):
            yield from sorted(base.rglob(ext))


# ------------------------------------------------- rule: journal-hooks ----


def extract_method_bodies(stripped_cpp: str, class_name: str) -> dict:
    """Maps method name -> (body text, 1-based line of the definition) for
    every `Ret ClassName::method(...) ... { body }` in an
    already-stripped .cpp, via brace matching from the qualified name."""
    bodies = {}
    for m in re.finditer(rf"\b{class_name}::(~?\w+)\s*\(", stripped_cpp):
        name = m.group(1)
        brace = stripped_cpp.find("{", m.end())
        semi = stripped_cpp.find(";", m.end())
        if brace == -1 or (semi != -1 and semi < brace):
            continue  # a declaration or out-of-line `= default`
        depth, j = 1, brace + 1
        while j < len(stripped_cpp) and depth:
            depth += {"{": 1, "}": -1}.get(stripped_cpp[j], 0)
            j += 1
        bodies[name] = (
            stripped_cpp[brace:j],
            stripped_cpp.count("\n", 0, m.start()) + 1,
        )
    return bodies


def public_nonconst_methods(stripped_hpp: str, class_name: str) -> List[tuple]:
    """(name, line) for each non-const member function declared in the
    public sections of `class_name` in an already-stripped header."""
    m = re.search(rf"\bclass\s+{class_name}\b[^;{{]*{{", stripped_hpp)
    if not m:
        return []
    depth, j = 1, m.end()
    while j < len(stripped_hpp) and depth:
        depth += {"{": 1, "}": -1}.get(stripped_hpp[j], 0)
        j += 1
    body = stripped_hpp[m.end() : j - 1]
    base_line = stripped_hpp.count("\n", 0, m.end()) + 1

    # Access at any position = the last specifier before it (class default
    # is private). `(?<!:)`/`(?!:)` keep scope operators out.
    specs = [(0, "private")]
    for am in re.finditer(r"(?<!:)\b(public|protected|private)\s*:(?!:)", body):
        specs.append((am.end(), am.group(1)))

    def access_at(pos: int) -> str:
        current = "private"
        for p, name in specs:
            if p > pos:
                break
            current = name
        return current

    methods: List[tuple] = []

    def classify(decl: str, offset: int) -> None:
        if access_at(offset + len(decl)) != "public":
            return
        # Drop a leading access specifier sharing the chunk.
        am = None
        for am in re.finditer(r"(?<!:)\b(?:public|protected|private)\s*:(?!:)",
                              decl):
            pass
        if am:
            offset += am.end()
            decl = decl[am.end():]
        paren = decl.find("(")
        if paren == -1:
            return  # data member / using / friend-less declaration
        d2, j2 = 1, paren + 1
        while j2 < len(decl) and d2:
            d2 += {"(": 1, ")": -1}.get(decl[j2], 0)
            j2 += 1
        if re.match(r"\s*const\b", decl[j2:]):
            return  # const member: reader surface, out of scope
        nm = re.search(r"(~?\w+)\s*$", decl[:paren].strip())
        if not nm:
            return
        name = nm.group(1)
        if name.startswith("~") or "operator" in decl[:paren]:
            return
        methods.append((name, base_line + body.count("\n", 0, offset)))

    # Split top-level declarations at `;` or at an inline body `{...}`,
    # both only outside parentheses (default args like Weight{1} and
    # attribute macros carry nested parens/braces).
    decl_start = i = paren_depth = 0
    n = len(body)
    while i < n:
        c = body[i]
        if c == "(":
            paren_depth += 1
        elif c == ")":
            paren_depth -= 1
        elif c == "{" and paren_depth == 0:
            classify(body[decl_start:i], decl_start)
            d2, j2 = 1, i + 1
            while j2 < n and d2:
                d2 += {"{": 1, "}": -1}.get(body[j2], 0)
                j2 += 1
            i = decl_start = j2
            continue
        elif c == ";" and paren_depth == 0:
            classify(body[decl_start:i], decl_start)
            decl_start = i + 1
        i += 1
    return methods


def check_journal_hooks(root: pathlib.Path) -> List[Violation]:
    cpp_path = root / "src/dynamic/overlay_graph.cpp"
    hpp_path = root / "src/dynamic/overlay_graph.hpp"
    out: List[Violation] = []
    for p in (cpp_path, hpp_path):
        if not p.is_file():
            return [
                Violation(
                    "journal-hooks",
                    p.relative_to(root).as_posix(),
                    0,
                    "file missing — cannot verify OverlayGraph journal hooks",
                )
            ]
    stripped_cpp = strip_comments_and_strings(cpp_path.read_text(encoding="utf-8"))
    bodies = extract_method_bodies(stripped_cpp, "OverlayGraph")
    rel_cpp = cpp_path.relative_to(root).as_posix()
    for name, expected in sorted(EXPECTED_JOURNAL_HOOKS.items()):
        if name not in bodies:
            out.append(
                Violation(
                    "journal-hooks",
                    rel_cpp,
                    0,
                    f"mutator OverlayGraph::{name} not found "
                    "(moved? update EXPECTED_JOURNAL_HOOKS)",
                )
            )
            continue
        body, line = bodies[name]
        got = len(re.findall(r"\bjournal_\s*->\s*record\s*\(", body))
        if got < expected:
            out.append(
                Violation(
                    "journal-hooks",
                    rel_cpp,
                    line,
                    f"OverlayGraph::{name} performs {got} journal_->record() "
                    f"call(s), expected >= {expected}: a mutation path no "
                    "longer journals its inverse",
                )
            )
    # Classification: no unknown non-const public methods.
    stripped_hpp = strip_comments_and_strings(hpp_path.read_text(encoding="utf-8"))
    rel_hpp = hpp_path.relative_to(root).as_posix()
    known = set(EXPECTED_JOURNAL_HOOKS) | JOURNAL_EXEMPT_METHODS
    for name, line in public_nonconst_methods(stripped_hpp, "OverlayGraph"):
        if name not in known:
            out.append(
                Violation(
                    "journal-hooks",
                    rel_hpp,
                    line,
                    f"unclassified non-const public method "
                    f"OverlayGraph::{name}: add it to EXPECTED_JOURNAL_HOOKS "
                    "(it journals) or JOURNAL_EXEMPT_METHODS (it provably "
                    "does not need to) in scripts/lint_invariants.py",
                )
            )
    out.extend(_libclang_crosscheck(cpp_path, root))
    return out


def _libclang_crosscheck(cpp_path: pathlib.Path, root: pathlib.Path):
    """When libclang is importable, re-derive the mutator list from the real
    AST and flag mutators the token scan missed. Silent no-op otherwise."""
    try:
        from clang import cindex  # type: ignore
    except Exception:
        return []
    try:
        index = cindex.Index.create()
        tu = index.parse(
            str(cpp_path),
            args=["-std=c++20", f"-I{root / 'src'}"],
        )
    except Exception:
        return []  # bindings present but no usable libclang.so
    names = set()
    for cur in tu.cursor.walk_preorder():
        if (
            cur.kind == cindex.CursorKind.CXX_METHOD
            and cur.is_definition()
            and cur.semantic_parent.spelling == "OverlayGraph"
        ):
            names.add(cur.spelling)
    missing = set(EXPECTED_JOURNAL_HOOKS) - names
    return [
        Violation(
            "journal-hooks",
            cpp_path.relative_to(root).as_posix(),
            0,
            f"libclang cross-check: mutator OverlayGraph::{m} not found",
        )
        for m in sorted(missing)
    ]


# ------------------------------------------------------- simple rules ----


def check_omp_confined(root: pathlib.Path) -> List[Violation]:
    pat = re.compile(r"#\s*pragma\s+omp\b")
    out = []
    for path in cxx_files(root, "src", "tests", "bench", "examples"):
        if (root / "src/parallel") in path.parents:
            continue
        out.extend(
            scan_lines(
                path,
                root,
                pat,
                "omp-confined",
                "#pragma omp outside src/parallel/ — route parallelism "
                "through the parallel primitives so determinism holds",
            )
        )
    return out


def check_no_nondeterminism(root: pathlib.Path) -> List[Violation]:
    pat = re.compile(
        r"\bstd::random_device\b|(?<![\w:])(?:rand|srand)\s*\(|"
        r"(?<![\w.:>])time\s*\(\s*(?:nullptr|NULL|0)?\s*\)"
    )
    out = []
    for path in cxx_files(root, "src"):
        if (root / "src/obs") in path.parents:
            continue  # the observability layer legitimately reads clocks
        out.extend(
            scan_lines(
                path,
                root,
                pat,
                "no-nondeterminism",
                "nondeterminism source in src/ — all randomness must flow "
                "from explicit seeds (random/permutation.hpp)",
            )
        )
    return out


def check_no_cout(root: pathlib.Path) -> List[Violation]:
    pat = re.compile(r"\bstd::cout\b")
    out = []
    for path in cxx_files(root, "src"):
        if (root / "src/obs") in path.parents:
            continue  # obs writers take std::ostream&; no cout regardless
        out.extend(
            scan_lines(
                path,
                root,
                pat,
                "no-cout",
                "std::cout in library code — take an std::ostream& "
                "(support/table.hpp style) or report through return values",
            )
        )
    return out


def check_bench_emit(root: pathlib.Path) -> List[Violation]:
    pat = re.compile(r"\.\s*(?:print|write_json)\s*\(")
    out = []
    for path in cxx_files(root, "bench"):
        if path.name == "bench_common.hpp":
            continue  # the bench::emit implementation itself
        out.extend(
            scan_lines(
                path,
                root,
                pat,
                "bench-emit",
                "direct table output in a bench — emit via bench::emit so "
                "the PARGREEDY_JSON_DIR capture lane sees every table",
            )
        )
    return out


def check_obs_confined(root: pathlib.Path) -> List[Violation]:
    """Telemetry primitives in src/ only inside the obs layer.

    The obs-confined invariant keeps src/ free of ad-hoc instrumentation:
    clock reads, Timer scopes, printf-family output, and direct
    flight-recorder access belong to the src/obs/ API (PG_OBS_* macros,
    TraceSpan, MetricsRegistry) or the one shared clock helper
    (src/support/timing.hpp) — never sprinkled through library code,
    where they would bypass the seam's compile-time and runtime gates.
    Event emission in particular must go through PG_OBS_EVENT* /
    PG_OBS_EVENT_DUMP, never by naming EventRecorder or record_event
    directly (those calls would survive a PARGREEDY_OBS=0 build).
    """
    pat = re.compile(
        r"\b(?:steady_clock|system_clock|high_resolution_clock)\b|"
        r"\b(?:fprintf|printf)\s*\(|"
        r"\bTimer\b|"
        r"\bEventRecorder\b|"
        r"\brecord_event\s*\("
    )
    out = []
    for path in cxx_files(root, "src"):
        if (root / "src/obs") in path.parents:
            continue  # the sanctioned emission layer
        if path == root / "src/support/timing.hpp":
            continue  # the one shared clock helper (used by obs and bench)
        out.extend(
            scan_lines(
                path,
                root,
                pat,
                "obs-confined",
                "ad-hoc telemetry in library code — emit metrics/spans "
                "through the src/obs/ API (PG_OBS_* / TraceSpan) so the "
                "PARGREEDY_OBS seam gates it",
            )
        )
    return out


CHECKS = {
    "journal-hooks": check_journal_hooks,
    "omp-confined": check_omp_confined,
    "no-nondeterminism": check_no_nondeterminism,
    "no-cout": check_no_cout,
    "bench-emit": check_bench_emit,
    "obs-confined": check_obs_confined,
}
assert tuple(CHECKS) == RULE_IDS


# ---------------------------------------------------------------- main ----


def run(root: pathlib.Path, rules: Optional[List[str]] = None) -> List[Violation]:
    found: List[Violation] = []
    for rule in rules or RULE_IDS:
        found.extend(CHECKS[rule](root))
    return found


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repo-root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="repository root (default: the checkout containing this script)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        choices=RULE_IDS,
        help="run only this rule (repeatable; default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule ids and exit"
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        print("\n".join(RULE_IDS))
        return 0
    root = args.repo_root.resolve()
    if not (root / "src").is_dir():
        print(f"lint_invariants: {root} does not look like the repo root",
              file=sys.stderr)
        return 2
    violations = run(root, args.rule)
    for v in violations:
        print(v.render())
    if violations:
        print(f"lint_invariants: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    checked = ", ".join(args.rule) if args.rule else "all rules"
    print(f"lint_invariants: clean ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
