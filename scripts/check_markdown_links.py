#!/usr/bin/env python3
"""Fail on broken intra-repo markdown links — paths AND anchors.

Scans every tracked *.md file for inline links and images
(``[text](target)``), resolves relative targets against the file's
directory, and reports targets that do not exist. External schemes
(http/https/mailto) are skipped. Anchor parts are verified too: for a
``#fragment`` (in-page) or ``path.md#fragment`` target, the fragment must
match a heading in the target document, slugified the way GitHub does it
(lowercase; spaces to dashes; punctuation dropped; duplicate slugs get
-1, -2, ... suffixes).

Usage: scripts/check_markdown_links.py [repo_root]
Exit status: 0 when all links resolve, 1 otherwise.
"""

import re
import subprocess
import sys
from pathlib import Path

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def tracked_markdown_files(root: Path) -> list[Path]:
    out = subprocess.run(
        ["git", "ls-files", "*.md", "**/*.md"],
        cwd=root, capture_output=True, text=True, check=True,
    ).stdout
    return [root / line for line in out.splitlines() if line]


def strip_code_blocks(text: str) -> str:
    # Fenced code blocks and inline code spans routinely contain things
    # like [i](j) that are array indexing, not links.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line's text: markdown markup
    dropped, lowercased, punctuation removed, spaces dashed."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # code spans
    text = re.sub(r"!?\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links
    text = re.sub(r"[*_~]", "", text)                    # emphasis
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(md_path: Path, cache: dict) -> set:
    """All anchor slugs a document exposes (with GitHub's -N dedup), plus
    explicit <a name=...>/<a id=...> anchors."""
    if md_path in cache:
        return cache[md_path]
    anchors = set()
    seen: dict = {}
    in_fence = False
    text = md_path.read_text(encoding="utf-8")
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(1))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    for m in re.finditer(r"<a\s+(?:name|id)=[\"']([^\"']+)[\"']", text):
        anchors.add(m.group(1))
    cache[md_path] = anchors
    return anchors


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path.cwd()
    failures = []
    files = tracked_markdown_files(root)
    anchor_cache: dict = {}
    checked = 0
    for md in files:
        text = strip_code_blocks(md.read_text(encoding="utf-8"))
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES):
                continue
            path_part, _, fragment = target.partition("#")
            if path_part:
                if path_part.startswith("/"):
                    # GitHub-style root-absolute link: relative to the
                    # repo, not the filesystem.
                    resolved = (root / path_part.lstrip("/")).resolve()
                else:
                    resolved = (md.parent / path_part).resolve()
                checked += 1
                if not resolved.exists():
                    failures.append(
                        f"{md.relative_to(root)}: broken link -> {target}")
                    continue
            else:
                resolved = md  # pure in-page anchor
            if fragment:
                if resolved.suffix.lower() not in (".md", ".markdown"):
                    continue  # e.g. source-file line anchors (#L10)
                checked += 1
                if fragment.lower() not in heading_anchors(resolved,
                                                           anchor_cache):
                    failures.append(
                        f"{md.relative_to(root)}: broken anchor -> {target}"
                        f" (no heading slugs to '{fragment.lower()}' in "
                        f"{resolved.relative_to(root)})")
    for failure in failures:
        print(failure, file=sys.stderr)
    print(f"checked {checked} intra-repo links/anchors in {len(files)} "
          f"files: {len(failures)} broken")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
