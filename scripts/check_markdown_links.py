#!/usr/bin/env python3
"""Fail on broken intra-repo markdown links.

Scans every tracked *.md file for inline links and images
(``[text](target)``), resolves relative targets against the file's
directory, and reports targets that do not exist. External schemes
(http/https/mailto) and pure in-page anchors (``#...``) are skipped;
a ``path#anchor`` target is checked for the path part only.

Usage: scripts/check_markdown_links.py [repo_root]
Exit status: 0 when all links resolve, 1 otherwise.
"""

import re
import subprocess
import sys
from pathlib import Path

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def tracked_markdown_files(root: Path) -> list[Path]:
    out = subprocess.run(
        ["git", "ls-files", "*.md", "**/*.md"],
        cwd=root, capture_output=True, text=True, check=True,
    ).stdout
    return [root / line for line in out.splitlines() if line]


def strip_code_blocks(text: str) -> str:
    # Fenced code blocks and inline code spans routinely contain things
    # like [i](j) that are array indexing, not links.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path.cwd()
    failures = []
    files = tracked_markdown_files(root)
    checked = 0
    for md in files:
        text = strip_code_blocks(md.read_text(encoding="utf-8"))
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            if path_part.startswith("/"):
                # GitHub-style root-absolute link: relative to the repo,
                # not the filesystem.
                resolved = (root / path_part.lstrip("/")).resolve()
            else:
                resolved = (md.parent / path_part).resolve()
            checked += 1
            if not resolved.exists():
                failures.append(
                    f"{md.relative_to(root)}: broken link -> {target}")
    for failure in failures:
        print(failure, file=sys.stderr)
    print(f"checked {checked} intra-repo links in {len(files)} files: "
          f"{len(failures)} broken")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
