// Unit coverage for the shard layer: partitioners, batch routing,
// ShardedVersion, and the ShardedEngine surface — cross-partition
// UpdateBatch operations bit-exact against a single engine at worker
// widths {1, 2, 4}, same-batch precedence across a shard boundary,
// ghost-set liveness, composed reads, what_if hygiene, exchange
// counters (including the shards=1 degenerate case, which must never
// seed or retry), and the obs counter wiring. The deep randomized
// matrix lives in test_sharded_differential.cpp; these tests pin the
// contracts with hand-built graphs where failures are readable.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/priority/priority_source.hpp"
#include "dynamic/dynamic_matching.hpp"
#include "dynamic/dynamic_mis.hpp"
#include "dynamic/update_batch.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "obs/obs.hpp"
#include "parallel/arch.hpp"
#include "shard/batch_router.hpp"
#include "shard/partitioner.hpp"
#include "shard/sharded_engine.hpp"
#include "shard/sharded_version.hpp"
#include "txn/transaction.hpp"

namespace pargreedy {
namespace {

// ---------------------------------------------------------------- //
// Partitioners
// ---------------------------------------------------------------- //

TEST(RangePartitionerTest, ContiguousBlocksCoverUniverse) {
  const RangePartitioner part(/*num_vertices=*/10, /*shards=*/4);
  EXPECT_EQ(part.num_shards(), 4u);
  EXPECT_EQ(part.name(), "range");
  // ceil(10/4) = 3: blocks [0,3) [3,6) [6,9), last absorbs the rest.
  const std::vector<uint32_t> labels = part.labels(10);
  const std::vector<uint32_t> expect{0, 0, 0, 1, 1, 1, 2, 2, 2, 3};
  EXPECT_EQ(labels, expect);
  // Owners are monotone non-decreasing for any range partition.
  EXPECT_TRUE(std::is_sorted(labels.begin(), labels.end()));
}

TEST(RangePartitionerTest, MoreShardsThanVertices) {
  const RangePartitioner part(/*num_vertices=*/3, /*shards=*/8);
  for (VertexId v = 0; v < 3; ++v) EXPECT_LT(part.owner(v), 8u);
}

TEST(HashPartitionerTest, DeterministicAndInRange) {
  const HashPartitioner a(/*shards=*/4, /*seed=*/9);
  const HashPartitioner b(/*shards=*/4, /*seed=*/9);
  const HashPartitioner c(/*shards=*/4, /*seed=*/10);
  EXPECT_EQ(a.name(), "hash");
  bool any_difference = false;
  for (VertexId v = 0; v < 200; ++v) {
    EXPECT_LT(a.owner(v), 4u);
    EXPECT_EQ(a.owner(v), b.owner(v));
    any_difference = any_difference || a.owner(v) != c.owner(v);
  }
  EXPECT_TRUE(any_difference) << "seed must perturb the labelling";
}

// ---------------------------------------------------------------- //
// Batch routing
// ---------------------------------------------------------------- //

TEST(BatchRouterTest, RoutesByOwnershipRules) {
  // Owners: 0,1,2 -> shard 0; 3,4,5 -> shard 1.
  const std::vector<uint32_t> owner{0, 0, 0, 1, 1, 1};
  UpdateBatch batch;
  batch.activate(1);            // owner only
  batch.deactivate(4);          // owner only
  batch.insert_edge(0, 1, 2.0); // intra shard 0: one copy
  batch.insert_edge(2, 3, 4.0); // cross: both shards, ghosts recorded
  batch.delete_edge(4, 5);      // intra shard 1
  batch.delete_edge(0, 5);      // cross: both shards
  batch.reweight_edge(2, 3, 8.0);  // cross: both shards
  batch.reweight_vertex(2, 9.0);   // broadcast to every shard
  const RoutedBatch routed = route_batch(batch, owner, 2);

  ASSERT_EQ(routed.per_shard.size(), 2u);
  EXPECT_EQ(routed.per_shard[0].activates(),
            (std::vector<VertexId>{1}));
  EXPECT_TRUE(routed.per_shard[1].activates().empty());
  EXPECT_EQ(routed.per_shard[1].deactivates(),
            (std::vector<VertexId>{4}));

  EXPECT_EQ(routed.per_shard[0].inserts(),
            (std::vector<Edge>{{0, 1}, {2, 3}}));
  EXPECT_EQ(routed.per_shard[0].insert_weights(),
            (std::vector<Weight>{2.0, 4.0}));
  EXPECT_EQ(routed.per_shard[1].inserts(), (std::vector<Edge>{{2, 3}}));

  EXPECT_EQ(routed.per_shard[0].deletes(), (std::vector<Edge>{{0, 5}}));
  EXPECT_EQ(routed.per_shard[1].deletes(),
            (std::vector<Edge>{{4, 5}, {0, 5}}));

  EXPECT_EQ(routed.per_shard[0].edge_reweights(),
            (std::vector<Edge>{{2, 3}}));
  EXPECT_EQ(routed.per_shard[1].edge_reweights(),
            (std::vector<Edge>{{2, 3}}));

  EXPECT_EQ(routed.per_shard[0].vertex_reweights(),
            (std::vector<VertexId>{2}));
  EXPECT_EQ(routed.per_shard[1].vertex_reweights(),
            (std::vector<VertexId>{2}));

  // Inserted cross endpoints become ghost candidates in the non-owner.
  EXPECT_EQ(routed.new_ghosts[0], (std::vector<VertexId>{3}));
  EXPECT_EQ(routed.new_ghosts[1], (std::vector<VertexId>{2}));
}

// ---------------------------------------------------------------- //
// ShardedVersion
// ---------------------------------------------------------------- //

TEST(ShardedVersionTest, UnifiedAndValue) {
  ShardedVersion clock{{3, 3, 3}};
  EXPECT_TRUE(clock.unified());
  EXPECT_EQ(clock.value(), 3u);
  clock.shard_versions[1] = 4;
  EXPECT_FALSE(clock.unified());
}

// ---------------------------------------------------------------- //
// ShardedEngine
// ---------------------------------------------------------------- //

CsrGraph two_block_graph() {
  // Vertices 0..5; RangePartitioner(6, 2) owns {0,1,2} / {3,4,5}.
  // Cross edges 2-3 and 0-5 plus intra edges on both sides.
  CsrGraph g = CsrGraph::from_edges(EdgeList(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}}));
  g.set_vertex_weights({1.0, 2.0, 3.0, 1.0, 2.0, 3.0});
  g.set_edge_weights({2.0, 1.0, 3.0, 1.0, 2.0, 1.0});
  return g;
}

template <typename Traits>
void expect_matches_single(const CsrGraph& g, const UpdateBatch& batch,
                           PrioritySource src, uint32_t shards) {
  using Engine = typename Traits::Engine;
  for (const int workers : {1, 2, 4}) {
    ScopedNumWorkers guard(workers);
    Engine single(EngineOptions::with_source(g, src));
    {
      support::RoleScope writer(single.writer_role_);
      single.apply_batch(batch);
    }
    const RangePartitioner part(g.num_vertices(), shards);
    ShardedEngine<Traits> sharded(g, part, src);
    {
      support::RoleScope writer(sharded.writer_role_);
      sharded.apply_batch(batch);
    }
    EXPECT_EQ(sharded.solution(), single.solution())
        << "workers=" << workers << " shards=" << shards;
    EXPECT_EQ(sharded.committed_solution(), single.solution());
  }
}

TEST(ShardedEngineTest, CrossPartitionOpsBitExactAtAllWorkerWidths) {
  const CsrGraph g = two_block_graph();
  UpdateBatch batch;
  batch.insert_edge(1, 4, 5.0);   // new cross edge (new ghosts both sides)
  batch.insert_edge(1, 3, 0.5);   // second cross edge at one vertex
  batch.delete_edge(2, 3);        // delete an existing cross edge
  batch.reweight_edge(0, 5, 9.0); // reweight the other cross edge
  batch.reweight_vertex(2, 7.0);  // priority move visible to both shards
  batch.deactivate(4);
  for (const uint32_t shards : {2u, 3u}) {
    expect_matches_single<MisTxnTraits>(
        g, batch, PrioritySource::weight_hash_tiebreak(3), shards);
    expect_matches_single<MatchingTxnTraits>(
        g, batch, PrioritySource::weight_hash_tiebreak(3), shards);
    expect_matches_single<MisTxnTraits>(
        g, batch, PrioritySource::random_hash(3), shards);
    expect_matches_single<MatchingTxnTraits>(
        g, batch, PrioritySource::random_hash(3), shards);
  }
}

TEST(ShardedEngineTest, SameBatchPrecedenceAcrossBoundary) {
  // Delete and re-insert the same cross edge in one batch: deletions
  // apply before insertions, so the edge survives with the new weight —
  // identically in every shard that stores it.
  const CsrGraph g = two_block_graph();
  UpdateBatch batch;
  batch.delete_edge(2, 3);
  batch.insert_edge(2, 3, 6.0);
  batch.reweight_edge(2, 3, 4.0);  // reweights run after inserts
  expect_matches_single<MisTxnTraits>(
      g, batch, PrioritySource::weight_hash_tiebreak(5), 2);
  expect_matches_single<MatchingTxnTraits>(
      g, batch, PrioritySource::weight_hash_tiebreak(5), 2);
}

TEST(ShardedEngineTest, GhostSetsTrackCrossEdgeLiveness) {
  const CsrGraph g = two_block_graph();
  const RangePartitioner part(6, 2);
  ShardedMisEngine sharded(g, part, PrioritySource::random_hash(1));
  // Base cross edges 0-5 and 2-3 (canonical CSR order): shard 0 ghosts
  // [5, 3], shard 1 [0, 2] — candidate insertion order is preserved.
  EXPECT_EQ(sharded.live_ghosts(0), (std::vector<VertexId>{5, 3}));
  EXPECT_EQ(sharded.live_ghosts(1), (std::vector<VertexId>{0, 2}));
  {
    UpdateBatch batch;
    batch.delete_edge(2, 3);
    support::RoleScope writer(sharded.writer_role_);
    sharded.apply_batch(batch);
  }
  EXPECT_EQ(sharded.live_ghosts(0), (std::vector<VertexId>{5}));
  EXPECT_EQ(sharded.live_ghosts(1), (std::vector<VertexId>{0}));
  {
    UpdateBatch batch;
    batch.insert_edge(1, 4, 1.0);
    support::RoleScope writer(sharded.writer_role_);
    sharded.apply_batch(batch);
  }
  EXPECT_EQ(sharded.live_ghosts(0), (std::vector<VertexId>{5, 4}));
  EXPECT_EQ(sharded.live_ghosts(1), (std::vector<VertexId>{0, 1}));
  EXPECT_EQ(sharded.owner(1), 0u);
  EXPECT_EQ(sharded.owner(4), 1u);
  EXPECT_EQ(sharded.partitioner_name(), "range");
}

TEST(ShardedEngineTest, SingleShardDegeneratesToPlainEngine) {
  // shards=1: no ghosts, so the exchange must never seed or retry and
  // every batch converges in exactly one (empty) forcing round.
  const CsrGraph g =
      CsrGraph::from_edges(random_graph_nm(60, 200, /*seed=*/11));
  const RangePartitioner part(60, 1);
  ShardedMatchingEngine sharded(g, part, PrioritySource::random_hash(2));
  EXPECT_EQ(sharded.construction_exchange().boundary_seeds, 0u);
  for (int step = 0; step < 3; ++step) {
    const UpdateBatch batch = UpdateBatch::random(
        60, sharded.shard_engine(0).graph().live_edge_list().edges(),
        /*inserts=*/6, /*deletes=*/6, /*toggles=*/2, 400 + step);
    support::RoleScope writer(sharded.writer_role_);
    sharded.apply_batch(batch);
    EXPECT_EQ(sharded.last_exchange().rounds, 1u);
    EXPECT_EQ(sharded.last_exchange().boundary_seeds, 0u);
    EXPECT_EQ(sharded.last_exchange().conflict_retries, 0u);
  }
}

TEST(ShardedEngineTest, WhatIfLeavesNoResidue) {
  const CsrGraph g = two_block_graph();
  const RangePartitioner part(6, 2);
  ShardedMatchingEngine sharded(g, part,
                                PrioritySource::weight_hash_tiebreak(4));
  const auto committed = sharded.committed_solution();
  const uint64_t version = sharded.version().value();
  UpdateBatch batch;
  batch.insert_edge(1, 4, 8.0);
  batch.delete_edge(0, 5);
  ShardedMatchingEngine::WhatIfResult what;
  {
    support::RoleScope writer(sharded.writer_role_);
    what = sharded.what_if(batch);
  }
  EXPECT_NE(what.solution, committed);  // the batch genuinely moves state
  EXPECT_EQ(sharded.committed_solution(), committed);
  EXPECT_EQ(sharded.solution(), committed);
  EXPECT_EQ(sharded.version().value(), version);
}

TEST(ShardedEngineTest, ComposedReadViewSurface) {
  const CsrGraph g = two_block_graph();
  const RangePartitioner part(6, 3);
  ShardedMisEngine sharded(g, part, PrioritySource::random_hash(8));
  {
    UpdateBatch batch;
    batch.insert_edge(0, 3, 1.0);
    support::RoleScope writer(sharded.writer_role_);
    sharded.apply_batch(batch);
  }
  const ShardedReadView<uint8_t> view = sharded.read();
  EXPECT_TRUE(view.valid());
  EXPECT_EQ(view.version(), sharded.version().value());
  EXPECT_EQ(view.size(), 6u);
  EXPECT_TRUE(view.verify_checksums());
  const std::vector<uint8_t> composed = view.to_vector();
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(view[v], composed[v]);
  EXPECT_EQ(composed, sharded.committed_solution());
  // Per-shard views are the underlying ReadViews, one per shard.
  for (uint32_t s = 0; s < 3; ++s)
    EXPECT_EQ(view.shard_view(s).version(), view.version());
  // Old versions stay readable within retention.
  EXPECT_EQ(sharded.oldest_version(), 0u);
  EXPECT_EQ(sharded.solution_at(0).size(), 6u);
}

TEST(ShardedEngineTest, ObsCountersAccumulate) {
  const CsrGraph g = two_block_graph();
  const uint64_t rounds_before = obs::counter_value(obs::kShardExchangeRounds);
  const uint64_t seeds_before = obs::counter_value(obs::kShardBoundarySeeds);
  const RangePartitioner part(6, 2);
  ShardedMatchingEngine sharded(g, part,
                                PrioritySource::weight_hash_tiebreak(6));
  UpdateBatch batch;
  batch.deactivate(3);
  batch.insert_edge(1, 4, 2.0);
  {
    support::RoleScope writer(sharded.writer_role_);
    sharded.apply_batch(batch);
  }
  EXPECT_GT(obs::counter_value(obs::kShardExchangeRounds), rounds_before);
  EXPECT_GE(obs::counter_value(obs::kShardBoundarySeeds), seeds_before);
  // The engine-side mirrors are consistent with each other.
  const auto& life = sharded.lifetime_exchange();
  EXPECT_EQ(life.rounds, sharded.last_exchange().rounds);
  EXPECT_GE(life.rounds, 1u);
}

}  // namespace
}  // namespace pargreedy
