// DynamicMis behavior tests: batch semantics, repropagation cascades,
// activity toggles, compaction, and exact agreement with the sequential
// greedy oracle after every batch.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/mis/mis.hpp"
#include "dynamic/dynamic_mis.hpp"
#include "dynamic/update_batch.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "parallel/arch.hpp"
#include "support/check.hpp"

namespace pargreedy {
namespace {

/// The exact-equivalence invariant from the class header: engine bitmap ==
/// from-scratch sequential greedy on the active-induced subgraph, masked
/// by activity (inactive vertices are isolated in the oracle graph and
/// must report 0 here).
void expect_matches_oracle(const DynamicMis& dm) {
  const CsrGraph h = dm.active_subgraph();
  std::vector<uint8_t> expect = mis_sequential(h, dm.order()).in_set;
  for (VertexId v = 0; v < dm.num_vertices(); ++v)
    if (!dm.active(v)) expect[v] = 0;
  ASSERT_EQ(dm.solution(), expect);
}

TEST(DynamicMis, InitialSolutionIsTheGreedyMis) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(500, 2'000, 3));
  const DynamicMis dm(EngineOptions::seeded(g, /*seed=*/17));
  EXPECT_EQ(dm.solution(), mis_sequential(g, dm.order()).in_set);
  EXPECT_EQ(dm.num_edges(), g.num_edges());
}

TEST(DynamicMis, EmptyBatchIsANoOp) {
  DynamicMis dm(EngineOptions::seeded(CsrGraph::from_edges(path_graph(10)), 1));
  const std::vector<uint8_t> before = dm.solution();
  const BatchStats stats = dm.apply_batch(UpdateBatch{});
  EXPECT_EQ(stats.seeds, 0u);
  EXPECT_EQ(stats.rounds, 0u);
  EXPECT_EQ(dm.solution(), before);
}

TEST(DynamicMis, NoOpOperationsDoNotSeed) {
  DynamicMis dm(EngineOptions::seeded(CsrGraph::from_edges(path_graph(6)), 2));
  UpdateBatch batch;
  batch.insert_edge(0, 1);   // already present
  batch.delete_edge(0, 5);   // absent
  batch.activate(3);         // already active
  const BatchStats stats = dm.apply_batch(batch);
  EXPECT_EQ(stats.inserted, 0u);
  EXPECT_EQ(stats.deleted, 0u);
  EXPECT_EQ(stats.activated, 0u);
  EXPECT_EQ(stats.seeds, 0u);
}

TEST(DynamicMis, SingleEdgeInsertAndDeleteRoundTrip) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(200, 600, 5));
  DynamicMis dm(EngineOptions::seeded(g, 23));
  const std::vector<uint8_t> before = dm.solution();
  // Find a non-edge between two set members: inserting it must evict one.
  VertexId a = kInvalidVertex, b = kInvalidVertex;
  for (VertexId u = 0; u < 200 && a == kInvalidVertex; ++u)
    for (VertexId v = u + 1; v < 200; ++v)
      if (dm.in_set(u) && dm.in_set(v) && !dm.graph().has_edge(u, v)) {
        a = u;
        b = v;
        break;
      }
  ASSERT_NE(a, kInvalidVertex);
  dm.apply_batch(UpdateBatch{}.insert_edge(a, b));
  EXPECT_FALSE(dm.in_set(a) && dm.in_set(b));
  expect_matches_oracle(dm);
  dm.apply_batch(UpdateBatch{}.delete_edge(a, b));
  EXPECT_EQ(dm.solution(), before);  // exact reversibility
}

TEST(DynamicMis, CascadeAlongAPathReachesEveryVertex) {
  // Path with identity priorities: MIS = {0, 2, 4, ...}. Deactivating 0
  // must flip the entire alternation — the classic Theta(n) dependence
  // chain — and reactivating must restore it.
  const uint64_t n = 101;
  DynamicMis dm(EngineOptions::with_order(
      CsrGraph::from_edges(path_graph(n)), VertexOrder::identity(n)));
  for (VertexId v = 0; v < n; ++v) EXPECT_EQ(dm.in_set(v), v % 2 == 0);
  BatchStats stats = dm.apply_batch(UpdateBatch{}.deactivate(0));
  for (VertexId v = 1; v < n; ++v) EXPECT_EQ(dm.in_set(v), v % 2 == 1);
  EXPECT_FALSE(dm.in_set(0));
  // The flip walks the whole path: one round per vertex.
  EXPECT_GE(stats.rounds, n - 2);
  EXPECT_GE(stats.changed, n - 1);
  stats = dm.apply_batch(UpdateBatch{}.activate(0));
  for (VertexId v = 0; v < n; ++v) EXPECT_EQ(dm.in_set(v), v % 2 == 0);
  expect_matches_oracle(dm);
}

TEST(DynamicMis, LocalizedUpdateTouchesFewVertices) {
  // On a star, deleting one leaf edge only re-examines that leaf.
  const uint64_t n = 1'000;
  DynamicMis dm(EngineOptions::with_order(
      CsrGraph::from_edges(star_graph(n)), VertexOrder::identity(n)));
  ASSERT_TRUE(dm.in_set(0));
  const BatchStats stats = dm.apply_batch(UpdateBatch{}.delete_edge(0, 500));
  EXPECT_TRUE(dm.in_set(500));  // freed leaf joins
  EXPECT_LE(stats.recomputed, 2u);
  expect_matches_oracle(dm);
}

TEST(DynamicMis, IntraBatchPrecedenceInsertsWinActivationsWin) {
  DynamicMis dm(EngineOptions::seeded(CsrGraph::from_edges(path_graph(4)), 9));
  UpdateBatch batch;
  batch.delete_edge(1, 2).insert_edge(1, 2);  // delete applied first
  batch.deactivate(3).activate(3);            // activation applied last
  dm.apply_batch(batch);
  EXPECT_TRUE(dm.graph().has_edge(1, 2));
  EXPECT_TRUE(dm.active(3));
  expect_matches_oracle(dm);
}

TEST(DynamicMis, EdgesInsertedAtInactiveVerticesWaitForActivation) {
  DynamicMis dm(EngineOptions::with_order(
      CsrGraph::from_edges(path_graph(3)), VertexOrder::identity(3)));
  dm.apply_batch(UpdateBatch{}.deactivate(0));
  // Edge stored, but 0 is not in the graph: 1's decision unaffected.
  dm.apply_batch(UpdateBatch{}.insert_edge(0, 2));
  EXPECT_TRUE(dm.graph().has_edge(0, 2));
  EXPECT_FALSE(dm.in_set(0));
  EXPECT_TRUE(dm.in_set(1));
  expect_matches_oracle(dm);
  dm.apply_batch(UpdateBatch{}.activate(0));
  // 0 (earliest) rejoins and now suppresses both 1 and 2.
  EXPECT_TRUE(dm.in_set(0));
  EXPECT_FALSE(dm.in_set(1));
  EXPECT_FALSE(dm.in_set(2));
  expect_matches_oracle(dm);
}

TEST(DynamicMis, AutoCompactionPreservesTheSolution) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(300, 900, 8));
  DynamicMis dm(EngineOptions::seeded(g, 31));
  dm.set_compaction_threshold(0.05);
  bool compacted = false;
  for (uint64_t round = 0; round < 20; ++round) {
    const UpdateBatch batch = UpdateBatch::random(
        300, dm.graph().live_edge_list().edges(), /*inserts=*/12,
        /*deletes=*/8, /*toggles=*/0, /*seed=*/1'000 + round);
    compacted = dm.apply_batch(batch).compacted || compacted;
    expect_matches_oracle(dm);
  }
  EXPECT_TRUE(compacted);
  EXPECT_LT(dm.graph().overlay_fraction(), 0.1);
}

TEST(DynamicMis, ManualCompactionIsTransparent) {
  DynamicMis dm(EngineOptions::seeded(
      CsrGraph::from_edges(random_graph_nm(150, 400, 2)), 5));
  dm.set_compaction_threshold(0.0);  // disable auto
  dm.apply_batch(UpdateBatch::random(
      150, dm.graph().live_edge_list().edges(), 30, 20, 0, 77));
  const std::vector<uint8_t> before = dm.solution();
  dm.compact();
  EXPECT_EQ(dm.solution(), before);
  expect_matches_oracle(dm);
}

TEST(DynamicMis, DeterministicAcrossWorkerCounts) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(800, 3'200, 4));
  std::vector<std::vector<uint8_t>> runs;
  for (int workers : {1, 2, 4}) {
    ScopedNumWorkers guard(workers);
    DynamicMis dm(EngineOptions::seeded(g, 99));
    for (uint64_t round = 0; round < 6; ++round)
      dm.apply_batch(UpdateBatch::random(
          800, dm.graph().live_edge_list().edges(), 40, 30, 6,
          500 + round));
    runs.push_back(dm.solution());
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(DynamicMis, RejectsOutOfRangeBatch) {
  DynamicMis dm(EngineOptions::seeded(CsrGraph::from_edges(path_graph(4)), 1));
  EXPECT_THROW(dm.apply_batch(UpdateBatch{}.insert_edge(0, 4)),
               CheckFailure);
  EXPECT_THROW(dm.apply_batch(UpdateBatch{}.deactivate(9)), CheckFailure);
}

TEST(DynamicMis, StatsAccounting) {
  DynamicMis dm(EngineOptions::seeded(CsrGraph::from_edges(path_graph(8)), 6));
  UpdateBatch batch;
  batch.insert_edge(0, 7).delete_edge(3, 4).deactivate(5);
  const BatchStats stats = dm.apply_batch(batch);
  EXPECT_EQ(stats.inserted, 1u);
  EXPECT_EQ(stats.deleted, 1u);
  EXPECT_EQ(stats.deactivated, 1u);
  EXPECT_EQ(stats.seeds, 3u);
  EXPECT_GE(stats.recomputed, stats.seeds);
  EXPECT_FALSE(stats.summary().empty());
  expect_matches_oracle(dm);
}

}  // namespace
}  // namespace pargreedy
