// Differential fuzzing of the transactional layer (the PR's acceptance
// bar): across random / rMat / structured generators, worker counts
// {1, 2, 4}, and both priority regimes (random_hash and
// weight_hash_tiebreak), every round checks
//
//   abort-equivalence   apply(B...); abort()  is state-identical —
//                       to_csr(), solution, activity, every cached
//                       priority key, lifetime stats — to never having
//                       applied the batches (some rounds also wind
//                       through nested savepoints first), and
//   commit-equivalence  apply(B); commit()  is state-identical to a twin
//                       engine's direct apply_batch(B), and
//   versioned reads     solution_at(v) reproduces the solutions the test
//                       recorded at the last few commits, even while a
//                       speculative transaction is in flight, and
//   concurrent reads    a background reader thread hammers the lock-free
//                       published window for the whole run, validating
//                       checksums (no torn reads) and monotone version
//                       ids (aborted speculation never visible).
//
// 30 seeds x 20 rounds x 2 engine kinds = 1200 aborted + 1200 committed
// transactions per run, each state-compared bit-exactly; every fifth
// commit is additionally audited against the from-scratch sequential
// oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "core/matching/matching.hpp"
#include "core/mis/mis.hpp"
#include "core/priority/priority_source.hpp"
#include "dynamic/dynamic_matching.hpp"
#include "dynamic/dynamic_mis.hpp"
#include "dynamic/update_batch.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "parallel/arch.hpp"
#include "random/hash.hpp"
#include "txn/epoch.hpp"
#include "txn/published_state.hpp"
#include "txn/transaction.hpp"

namespace pargreedy {
namespace {

constexpr uint64_t kRoundsPerInstance = 20;
constexpr uint64_t kWeightLevels = 8;  // coarse: force equal-weight ties

class TxnDifferential : public ::testing::TestWithParam<uint64_t> {
 public:  // run_rounds (a free function) drives the fixture
  uint64_t seed() const { return GetParam(); }

  /// Rotates generator families; sizes stay small so 2400 state compares
  /// and the oracle audits finish fast.
  CsrGraph make_graph() const {
    CsrGraph g;
    switch (seed() % 3) {
      case 0:
        g = CsrGraph::from_edges(random_graph_nm(
            300 + 30 * (seed() % 5), 1'200 + 90 * (seed() % 7), seed()));
        break;
      case 1:
        g = CsrGraph::from_edges(rmat_graph(/*scale=*/8, /*m=*/1'100,
                                            seed()));
        break;
      default:
        g = CsrGraph::from_edges(grid_graph(18 + seed() % 7, 19));
        break;
    }
    g.set_vertex_weights(
        quantized_weights(g.num_vertices(), seed() + 50, kWeightLevels));
    g.set_edge_weights(
        quantized_weights(g.num_edges(), seed() + 51, kWeightLevels));
    return g;
  }

  /// Worker widths {1, 2, 4}, decorrelated from the generator family.
  int workers() const { return 1 << (seed() / 3 % 3); }

  /// Half the instances run the paper's random-hash priorities (where
  /// reweights must be provable no-ops), half the recommended weighted
  /// policy (where reweights genuinely move priorities).
  PrioritySource source() const {
    return seed() % 2 == 0 ? PrioritySource::random_hash(seed() + 60)
                           : PrioritySource::weight_hash_tiebreak(seed() + 61);
  }

  UpdateBatch make_batch(uint64_t n, std::span<const Edge> live,
                         uint64_t round, uint64_t salt2) const {
    const uint64_t salt = hash64(seed(), 10'000 + 97 * round + salt2);
    const uint64_t scale = salt % 12 == 0 ? 80 : 1 + salt % 16;
    return UpdateBatch::random_weighted(
        n, live, /*inserts=*/scale, /*deletes=*/scale / 2 + 1,
        /*reweights=*/scale / 2 + 1, /*toggles=*/salt % 4, kWeightLevels,
        salt);
  }
};

// Full-state fingerprints: everything the acceptance criterion names —
// the live graph as a canonical CSR (structure + both weight arrays),
// the solution, activity, and every cached priority key — flattened into
// comparable vectors. Keys are captured per edge, not per slot, so twins
// with different compaction histories stay comparable.

struct EngineState {
  std::vector<Edge> edges;
  std::vector<Weight> edge_weights;
  std::vector<Weight> vertex_weights;
  std::vector<uint64_t> solution;  // widened: in_set bit or partner id
  std::vector<uint8_t> active;
  std::vector<std::pair<Edge, PriorityKey>> edge_keys;
  std::vector<PriorityKey> vertex_keys;

  friend bool operator==(const EngineState&, const EngineState&) = default;
};

template <typename Engine>
void capture_graph(const Engine& dm, EngineState& s) {
  const CsrGraph g = dm.graph().to_csr();
  s.edges.assign(g.edges().begin(), g.edges().end());
  s.edge_weights.assign(g.edge_weights().begin(), g.edge_weights().end());
  s.vertex_weights.assign(g.vertex_weights().begin(),
                          g.vertex_weights().end());
  s.active.resize(dm.num_vertices());
  for (VertexId v = 0; v < dm.num_vertices(); ++v)
    s.active[v] = dm.active(v) ? 1 : 0;
}

EngineState capture(const DynamicMis& dm) {
  EngineState s;
  capture_graph(dm, s);
  const std::vector<uint8_t> sol = dm.solution();
  s.solution.assign(sol.begin(), sol.end());
  s.vertex_keys.resize(dm.num_vertices());
  for (VertexId v = 0; v < dm.num_vertices(); ++v)
    s.vertex_keys[v] = dm.cached_vertex_key(v);
  return s;
}

EngineState capture(const DynamicMatching& dm) {
  EngineState s;
  capture_graph(dm, s);
  const std::vector<VertexId> sol = dm.solution();
  s.solution.assign(sol.begin(), sol.end());
  for (EdgeSlot slot = 0; slot < dm.graph().slot_bound(); ++slot)
    if (dm.graph().slot_live(slot))
      s.edge_keys.emplace_back(dm.graph().slot_edge(slot),
                               dm.cached_slot_key(slot));
  std::sort(s.edge_keys.begin(), s.edge_keys.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return s;
}

void oracle_audit(const DynamicMis& dm) {
  const CsrGraph h = dm.active_subgraph();
  std::vector<uint8_t> expect = mis_sequential(h, dm.order()).in_set;
  for (VertexId v = 0; v < dm.num_vertices(); ++v)
    if (!dm.active(v)) expect[v] = 0;
  ASSERT_EQ(dm.solution(), expect);
}

void oracle_audit(const DynamicMatching& dm) {
  const CsrGraph h = dm.active_subgraph();
  ASSERT_EQ(dm.solution(),
            mm_sequential(h, dm.edge_order_for(h)).matched_with);
}

/// The shared round loop: Engine is DynamicMis or DynamicMatching, Txn
/// its Transaction alias.
template <typename Engine, typename Txn, typename Fixture>
void run_rounds(const Fixture& fix, Engine& engine, Engine& twin) {
  // Both engines see the same compaction policy; half the instances
  // compact aggressively so the deferred-compaction path is fuzzed too.
  const double threshold = fix.seed() % 2 == 0 ? 0.05 : 0.0;
  engine.set_compaction_threshold(threshold);
  twin.set_compaction_threshold(threshold);

  Txn txn(engine);
  std::deque<std::vector<typename Txn::Value>> history{txn.solution_at(0)};

  // Concurrent-reader oracle: while the rounds below speculate, abort,
  // and commit, a background reader continuously validates the
  // published window — every version's checksum recomputes (no torn
  // reads), ids are consecutive within a window and the latest id is
  // monotonically non-decreasing across observations (stale is allowed,
  // reordering is not). Version ids advance only at commit(), so a
  // monotone, checksummed stream can never expose aborted speculation.
  // Failures are tallied in atomics and asserted after join (gtest
  // assertions are not thread-safe off the main thread).
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn_reads{0};
  std::atomic<uint64_t> order_violations{0};
  std::atomic<uint64_t> observations{0};
  std::thread reader([&txn, &stop, &torn_reads, &order_violations,
                      &observations] {
    const auto& state = txn.published_state();
    uint64_t last_latest = 0;
    while (!stop.load(std::memory_order_acquire)) {
      ReadGuard guard(state.epochs_);
      const auto& window = state.window(guard);
      uint64_t expect = window.versions.front()->version;
      for (const auto& ver : window.versions) {
        if (!ver->verify_checksum()) torn_reads.fetch_add(1);
        if (ver->version != expect++) order_violations.fetch_add(1);
      }
      const uint64_t latest = window.versions.back()->version;
      if (latest < last_latest) order_violations.fetch_add(1);
      last_latest = latest;
      observations.fetch_add(1);
    }
  });
  // Stop/join even when an ASSERT below returns out of this function —
  // the reader must not outlive the transaction it reads.
  struct Joiner {
    std::atomic<bool>& stop;
    std::thread& reader;
    ~Joiner() {
      stop.store(true, std::memory_order_release);
      reader.join();
    }
  } joiner{stop, reader};

  const uint64_t n = engine.num_vertices();
  for (uint64_t round = 0; round < kRoundsPerInstance; ++round) {
    // Speculative phase: apply and abort, sometimes through savepoints;
    // the engine must come back bit-exactly.
    const EngineState before = capture(engine);
    const BatchStats lifetime_before = engine.lifetime_stats();
    txn.begin();
    txn.apply(fix.make_batch(n, engine.graph().live_edge_list().edges(),
                             round, /*salt2=*/1));
    if (round % 3 == 1) {
      const EngineSnapshot sp = txn.savepoint();
      txn.apply(fix.make_batch(n, engine.graph().live_edge_list().edges(),
                               round, /*salt2=*/2));
      if (round % 6 == 1) {
        const EngineSnapshot sp2 = txn.savepoint();
        txn.apply(fix.make_batch(
            n, engine.graph().live_edge_list().edges(), round, /*salt2=*/3));
        txn.rollback_to(sp2);
      }
      txn.rollback_to(sp);
    }
    // In-flight versioned read: must still see the last committed state.
    ASSERT_EQ(txn.committed_solution(), history.back())
        << "in-flight read diverged at round " << round << " (seed "
        << fix.seed() << ")";
    txn.abort();
    ASSERT_EQ(capture(engine), before)
        << "abort was not state-identical at round " << round << " (seed "
        << fix.seed() << ")";
    ASSERT_EQ(engine.lifetime_stats(), lifetime_before);

    // Committed phase: the same batch through the transaction and
    // directly through the twin must land on the identical state.
    const UpdateBatch batch = fix.make_batch(
        n, engine.graph().live_edge_list().edges(), round, /*salt2=*/4);
    txn.begin();
    txn.apply(batch);
    txn.commit();
    twin.apply_batch(batch);
    ASSERT_EQ(capture(engine), capture(twin))
        << "commit diverged from direct apply at round " << round
        << " (seed " << fix.seed() << ")";

    history.push_back(txn.committed_solution());
    if (history.size() > 4) history.pop_front();
    // Versioned reads across the retained window.
    for (std::size_t back = 0; back < history.size(); ++back) {
      const uint64_t v = txn.version() - (history.size() - 1 - back);
      ASSERT_EQ(txn.solution_at(v), history[back])
          << "versioned read diverged at round " << round << ", version "
          << v << " (seed " << fix.seed() << ")";
    }

    if (round % 5 == 4) oracle_audit(engine);
  }

  stop.store(true, std::memory_order_release);
  ASSERT_EQ(torn_reads.load(), 0u)
      << "background reader saw torn published state (seed " << fix.seed()
      << ")";
  ASSERT_EQ(order_violations.load(), 0u)
      << "background reader saw non-monotone or gapped versions (seed "
      << fix.seed() << ")";
  ASSERT_GT(observations.load(), 0u);
}

TEST_P(TxnDifferential, MisAbortCommitAndVersionedReads) {
  ScopedNumWorkers guard(workers());
  const CsrGraph g = make_graph();
  const PrioritySource src = source();
  DynamicMis engine(EngineOptions::with_source(g, src));
  DynamicMis twin(EngineOptions::with_source(g, src));
  run_rounds<DynamicMis, MisTransaction>(*this, engine, twin);
}

TEST_P(TxnDifferential, MatchingAbortCommitAndVersionedReads) {
  ScopedNumWorkers guard(workers());
  const CsrGraph g = make_graph();
  const PrioritySource src = source();
  DynamicMatching engine(EngineOptions::with_source(g, src));
  DynamicMatching twin(EngineOptions::with_source(g, src));
  run_rounds<DynamicMatching, MatchingTransaction>(*this, engine, twin);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnDifferential,
                         ::testing::Range<uint64_t>(0, 30));

}  // namespace
}  // namespace pargreedy
