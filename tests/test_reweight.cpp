// First-class reweight updates: batch semantics, precedence, the
// random_hash provable-no-op guarantee, equivalence with delete+re-insert
// and with from-scratch recomputation under every priority policy, and
// the named-element weight validation errors.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "core/matching/matching.hpp"
#include "core/mis/mis.hpp"
#include "core/priority/priority_source.hpp"
#include "dynamic/dynamic_matching.hpp"
#include "dynamic/dynamic_mis.hpp"
#include "dynamic/update_batch.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "random/hash.hpp"
#include "support/check.hpp"

namespace pargreedy {
namespace {

constexpr uint64_t kN = 300;
constexpr uint64_t kM = 1'200;

CsrGraph weighted_graph(uint64_t seed, uint64_t levels = 4) {
  CsrGraph g = CsrGraph::from_edges(random_graph_nm(kN, kM, seed));
  g.set_vertex_weights(quantized_weights(g.num_vertices(), seed + 1, levels));
  g.set_edge_weights(quantized_weights(g.num_edges(), seed + 2, levels));
  return g;
}

/// A reweight-only batch over `count` live edges and `count` vertices,
/// deterministic in the seed.
UpdateBatch reweight_batch(const OverlayGraph& graph, uint64_t count,
                           uint64_t seed) {
  const EdgeList live_list = graph.live_edge_list();
  const std::span<const Edge> live = live_list.edges();
  UpdateBatch batch;
  for (uint64_t i = 0; i < count; ++i) {
    const Edge e = live[hash_range(seed, i, live.size())];
    batch.reweight_edge(e.u, e.v,
                        static_cast<Weight>(1 + hash_range(seed, 100 + i, 9)));
    batch.reweight_vertex(
        static_cast<VertexId>(hash_range(seed, 200 + i, graph.num_vertices())),
        static_cast<Weight>(1 + hash_range(seed, 300 + i, 9)));
  }
  return batch;
}

// --- The random_hash provable no-op -----------------------------------

TEST(ReweightNoOp, MisRandomHashReweightTriggersZeroRepropagation) {
  DynamicMis dm(EngineOptions::seeded(weighted_graph(11), /*seed=*/5));
  const std::vector<uint8_t> before = dm.solution();
  const BatchStats stats = dm.apply_batch(reweight_batch(dm.graph(), 20, 7));
  EXPECT_GT(stats.reweighted, 0u);
  // Hash keys never read weights: the whole batch must be a provable
  // no-op for the solution — zero seeds, zero rounds, zero decisions
  // re-evaluated.
  EXPECT_EQ(stats.seeds, 0u);
  EXPECT_EQ(stats.rounds, 0u);
  EXPECT_EQ(stats.recomputed, 0u);
  EXPECT_EQ(stats.changed, 0u);
  EXPECT_EQ(dm.solution(), before);
}

TEST(ReweightNoOp, MatchingRandomHashReweightTriggersZeroRepropagation) {
  DynamicMatching dm(EngineOptions::seeded(weighted_graph(13), /*seed=*/6));
  const std::vector<VertexId> before = dm.solution();
  const BatchStats stats = dm.apply_batch(reweight_batch(dm.graph(), 20, 9));
  EXPECT_GT(stats.reweighted, 0u);
  EXPECT_EQ(stats.seeds, 0u);
  EXPECT_EQ(stats.rounds, 0u);
  EXPECT_EQ(stats.recomputed, 0u);
  EXPECT_EQ(dm.solution(), before);
}

TEST(ReweightNoOp, SameWeightReweightIsSkippedEntirely) {
  CsrGraph g = weighted_graph(17);
  DynamicMis dm(EngineOptions::with_source(g, PrioritySource::vertex_weight()));
  UpdateBatch batch;
  batch.reweight_vertex(4, g.vertex_weight(4));  // identical weight
  const Edge e = g.edge(0);
  batch.reweight_edge(e.u, e.v, g.edge_weight(0));
  const BatchStats stats = dm.apply_batch(batch);
  EXPECT_EQ(stats.reweighted, 0u);
  EXPECT_EQ(stats.seeds, 0u);
  EXPECT_EQ(stats.rounds, 0u);
}

// --- Exactness under every policy -------------------------------------

/// After any reweight traffic the maintained MIS must equal the weighted
/// sequential oracle recomputed from the engine's own snapshot (which
/// carries the updated weights), and mis_sequential under the engine's
/// lazily re-materialized order() must agree too.
void expect_mis_exact(const DynamicMis& dm, const PrioritySource& src) {
  const CsrGraph h = dm.active_subgraph();
  std::vector<uint8_t> expect = mis_weighted_sequential(h, src).in_set;
  for (VertexId v = 0; v < dm.num_vertices(); ++v)
    if (!dm.active(v)) expect[v] = 0;
  ASSERT_EQ(dm.solution(), expect);
  std::vector<uint8_t> via_order = mis_sequential(h, dm.order()).in_set;
  for (VertexId v = 0; v < dm.num_vertices(); ++v)
    if (!dm.active(v)) via_order[v] = 0;
  ASSERT_EQ(dm.solution(), via_order);
}

class ReweightPolicy : public ::testing::TestWithParam<int> {
 protected:
  PrioritySource vertex_source() const {
    switch (GetParam()) {
      case 0:
        return PrioritySource::random_hash(21);
      case 1:
        return PrioritySource::vertex_weight();
      default:
        return PrioritySource::weight_hash_tiebreak(23);
    }
  }
  PrioritySource edge_source() const {
    switch (GetParam()) {
      case 0:
        return PrioritySource::random_hash(31);
      case 1:
        return PrioritySource::edge_weight();
      default:
        return PrioritySource::weight_hash_tiebreak(33);
    }
  }
};

TEST_P(ReweightPolicy, MisVertexReweightsStayExact) {
  const PrioritySource src = vertex_source();
  DynamicMis dm(EngineOptions::with_source(
      weighted_graph(41, /*levels=*/3), src));
  for (uint64_t round = 0; round < 6; ++round) {
    dm.apply_batch(reweight_batch(dm.graph(), 10, 50 + round));
    expect_mis_exact(dm, src);
  }
}

TEST_P(ReweightPolicy, MatchingEdgeReweightEqualsDeleteReinsert) {
  const PrioritySource src = edge_source();
  const CsrGraph g = weighted_graph(43, /*levels=*/3);
  DynamicMatching via_reweight(EngineOptions::with_source(g, src));
  DynamicMatching via_churn(EngineOptions::with_source(g, src));
  for (uint64_t round = 0; round < 6; ++round) {
    const EdgeList live_list = via_reweight.graph().live_edge_list();
    const std::span<const Edge> live = live_list.edges();
    UpdateBatch reweights, churn;
    std::set<uint64_t> chosen;
    for (uint64_t i = 0; i < 12; ++i) {
      const Edge e = live[hash_range(60 + round, i, live.size())];
      if (!chosen.insert(edge_pair_key(e)).second) continue;  // distinct
      const Weight w =
          static_cast<Weight>(1 + hash_range(61 + round, i, 9));
      reweights.reweight_edge(e.u, e.v, w);
      // The historical workaround the reweight op replaces: tear the edge
      // down and re-insert it with the new weight, in one batch.
      churn.delete_edge(e.u, e.v).insert_edge(e.u, e.v, w);
    }
    const BatchStats rs = via_reweight.apply_batch(reweights);
    const BatchStats cs = via_churn.apply_batch(churn);
    ASSERT_EQ(via_reweight.solution(), via_churn.solution())
        << "policy " << priority_policy_name(src.policy()) << " round "
        << round;
    // Reweight perturbs the same solution without structural churn.
    EXPECT_EQ(cs.deleted + cs.inserted, 2 * chosen.size());
    EXPECT_EQ(rs.deleted + rs.inserted, 0u);
    const CsrGraph h = via_reweight.active_subgraph();
    ASSERT_EQ(via_reweight.solution(),
              mm_weighted_sequential(h, src).matched_with);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ReweightPolicy,
                         ::testing::Values(0, 1, 2));

// --- Precedence and edge cases ----------------------------------------

TEST(ReweightPrecedence, AbsentEdgeReweightIsSilentlySkipped) {
  DynamicMatching dm(EngineOptions::with_source(
      weighted_graph(51), PrioritySource::edge_weight()));
  const std::vector<VertexId> before = dm.solution();
  VertexId a = 0, b = 0;
  for (VertexId u = 0; u < kN && a == b; ++u)
    for (VertexId v = u + 1; v < kN; ++v)
      if (!dm.graph().has_edge(u, v)) {
        a = u;
        b = v;
        break;
      }
  const BatchStats stats =
      dm.apply_batch(UpdateBatch{}.reweight_edge(a, b, 7.0));
  EXPECT_EQ(stats.reweighted, 0u);
  EXPECT_EQ(stats.seeds, 0u);
  EXPECT_EQ(dm.solution(), before);
}

TEST(ReweightPrecedence, ReweightAfterDeleteInSameBatchIsANoOp) {
  const CsrGraph g = weighted_graph(53);
  DynamicMatching dm(EngineOptions::with_source(
      g, PrioritySource::edge_weight()));
  const Edge e = g.edge(5);
  // Deletions (step 2) precede reweights (step 5): the edge is gone by
  // the time the reweight applies.
  const BatchStats stats = dm.apply_batch(
      UpdateBatch{}.delete_edge(e.u, e.v).reweight_edge(e.u, e.v, 99.0));
  EXPECT_EQ(stats.deleted, 1u);
  EXPECT_EQ(stats.reweighted, 0u);
  EXPECT_FALSE(dm.graph().has_edge(e.u, e.v));
}

TEST(ReweightPrecedence, ReweightWinsOverInsertWeightInSameBatch) {
  const CsrGraph g = weighted_graph(55);
  DynamicMatching dm(EngineOptions::with_source(
      g, PrioritySource::edge_weight()));
  VertexId a = 0, b = 0;
  for (VertexId u = 0; u < kN && a == b; ++u)
    for (VertexId v = u + 1; v < kN; ++v)
      if (!dm.graph().has_edge(u, v)) {
        a = u;
        b = v;
        break;
      }
  dm.apply_batch(
      UpdateBatch{}.insert_edge(a, b, 2.0).reweight_edge(a, b, 8.0));
  const EdgeSlot s = dm.graph().find_slot(a, b);
  ASSERT_NE(s, kInvalidSlot);
  EXPECT_EQ(dm.graph().slot_weight(s), 8.0);
  const CsrGraph h = dm.active_subgraph();
  ASSERT_EQ(dm.solution(),
            mm_weighted_sequential(h, dm.priority_source()).matched_with);
}

TEST(ReweightPrecedence, LastReweightOfAnElementWins) {
  const CsrGraph g = weighted_graph(57);
  DynamicMis dm(EngineOptions::with_source(g, PrioritySource::vertex_weight()));
  dm.apply_batch(
      UpdateBatch{}.reweight_vertex(3, 5.0).reweight_vertex(3, 2.0));
  EXPECT_EQ(dm.graph().vertex_weight(3), 2.0);
  expect_mis_exact(dm, dm.priority_source());
}

TEST(ReweightPrecedence, DeactivatedVertexReweightDefersItsEffect) {
  const PrioritySource src = PrioritySource::vertex_weight();
  DynamicMis dm(EngineOptions::with_source(weighted_graph(59), src));
  dm.apply_batch(UpdateBatch{}.deactivate(7));
  // Reweighting the inactive vertex stores the weight but cannot touch
  // any decision: zero seeds, zero rounds.
  const BatchStats stats =
      dm.apply_batch(UpdateBatch{}.reweight_vertex(7, 123.0));
  EXPECT_EQ(stats.reweighted, 1u);
  EXPECT_EQ(stats.seeds, 0u);
  EXPECT_EQ(stats.rounds, 0u);
  EXPECT_EQ(dm.graph().vertex_weight(7), 123.0);
  expect_mis_exact(dm, src);
  // On activation the deferred priority takes effect: weight 123 beats
  // every quantized level, so vertex 7 must enter the weighted MIS.
  dm.apply_batch(UpdateBatch{}.activate(7));
  EXPECT_TRUE(dm.in_set(7));
  expect_mis_exact(dm, src);
}

TEST(ReweightPrecedence, InactiveEndpointEdgeReweightAppliesOnActivation) {
  const PrioritySource src = PrioritySource::edge_weight();
  const CsrGraph g = weighted_graph(61);
  DynamicMatching dm(EngineOptions::with_source(g, src));
  const Edge e = g.edge(9);
  dm.apply_batch(UpdateBatch{}.deactivate(e.u));
  // The edge is live (not deleted) but outside the matching's graph; the
  // reweight lands on the stored slot without seeding anything.
  const BatchStats stats =
      dm.apply_batch(UpdateBatch{}.reweight_edge(e.u, e.v, 77.0));
  EXPECT_EQ(stats.reweighted, 1u);
  EXPECT_EQ(stats.seeds, 0u);
  dm.apply_batch(UpdateBatch{}.activate(e.u));
  const CsrGraph h = dm.active_subgraph();
  ASSERT_EQ(dm.solution(), mm_weighted_sequential(h, src).matched_with);
}

TEST(ReweightPrecedence, MisEdgeReweightReachesSnapshotsWithoutSeeding) {
  const CsrGraph g = weighted_graph(63);
  DynamicMis dm(EngineOptions::with_source(g, PrioritySource::vertex_weight()));
  const Edge e = g.edge(4);
  const BatchStats stats =
      dm.apply_batch(UpdateBatch{}.reweight_edge(e.u, e.v, 42.0));
  EXPECT_EQ(stats.reweighted, 1u);
  EXPECT_EQ(stats.seeds, 0u);  // edge weights never enter vertex priorities
  const CsrGraph h = dm.active_subgraph();
  bool found = false;
  for (EdgeId id = 0; id < h.num_edges(); ++id)
    if (h.edge(id) == Edge{e.u, e.v}.canonical()) {
      EXPECT_EQ(h.edge_weight(id), 42.0);
      found = true;
    }
  EXPECT_TRUE(found);
}

// --- Batch plumbing ----------------------------------------------------

TEST(ReweightBatch, SizeEmptyClearAndRangeCoverReweights) {
  UpdateBatch batch;
  EXPECT_TRUE(batch.empty());
  batch.reweight_edge(1, 2, 3.0);
  batch.reweight_vertex(4, 5.0);
  EXPECT_FALSE(batch.empty());
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.edge_reweights().size(), 1u);
  EXPECT_EQ(batch.vertex_reweights().size(), 1u);
  EXPECT_TRUE(batch.endpoints_in_range(6));
  EXPECT_FALSE(batch.endpoints_in_range(4));  // reweighted vertex 4 >= 4
  batch.clear();
  EXPECT_TRUE(batch.empty());

  UpdateBatch out_of_range;
  out_of_range.reweight_edge(0, 99, 1.0);
  EXPECT_FALSE(out_of_range.endpoints_in_range(10));
  DynamicMis dm(EngineOptions::seeded(CsrGraph::from_edges(path_graph(10)), 1));
  EXPECT_THROW(dm.apply_batch(out_of_range), CheckFailure);
}

TEST(ReweightBatch, RandomWeightedEmitsMixedReweightBatches) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(100, 400, 3));
  const std::vector<Edge> live(g.edges().begin(), g.edges().end());
  const UpdateBatch batch = UpdateBatch::random_weighted(
      100, live, /*inserts=*/4, /*deletes=*/2, /*reweights=*/10,
      /*toggles=*/1, /*levels=*/3, /*seed=*/77);
  EXPECT_EQ(batch.edge_reweights().size() + batch.vertex_reweights().size(),
            10u);
  EXPECT_GT(batch.edge_reweights().size(), 0u);
  EXPECT_GT(batch.vertex_reweights().size(), 0u);
  for (Weight w : batch.edge_reweight_weights()) {
    EXPECT_GE(w, 1.0);
    EXPECT_LE(w, 3.0);
  }
  for (Weight w : batch.vertex_reweight_weights()) {
    EXPECT_GE(w, 1.0);
    EXPECT_LE(w, 3.0);
  }
  // The 7-argument overload is the reweights=0 case, byte-identical to
  // its historical behavior.
  const UpdateBatch legacy = UpdateBatch::random_weighted(
      100, live, 4, 2, /*toggles=*/1, /*levels=*/3, /*seed=*/77);
  EXPECT_EQ(legacy.inserts(), batch.inserts());
  EXPECT_EQ(legacy.insert_weights(), batch.insert_weights());
  EXPECT_TRUE(legacy.edge_reweights().empty());
  EXPECT_TRUE(legacy.vertex_reweights().empty());
}

// --- Validation names the offending element ---------------------------

TEST(ReweightValidation, ErrorMessagesNameTheOffendingElement) {
  constexpr Weight kNan = std::numeric_limits<Weight>::quiet_NaN();
  constexpr Weight kInf = std::numeric_limits<Weight>::infinity();
  UpdateBatch batch;
  try {
    batch.reweight_edge(3, 7, kNan);
    FAIL() << "non-finite reweight weight must throw";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("{3,7}"), std::string::npos)
        << e.what();
  }
  try {
    batch.reweight_vertex(5, kInf);
    FAIL() << "non-finite reweight weight must throw";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("vertex 5"), std::string::npos)
        << e.what();
  }
  try {
    batch.insert_edge(4, 9, kNan);
    FAIL() << "non-finite insert weight must throw";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("{4,9}"), std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(batch.empty());  // nothing was queued by the rejected ops
  EXPECT_THROW(batch.reweight_edge(2, 2, 1.0), CheckFailure);  // self loop
}

}  // namespace
}  // namespace pargreedy
