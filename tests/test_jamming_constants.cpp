// Statistical validation against closed-form jamming constants from the
// random sequential adsorption literature — independent ground truth for
// the *random-order* greedy processes this library implements:
//
//  * Greedy MIS on a long path with a uniformly random vertex order is the
//    discrete RSA of monomers with nearest-neighbor exclusion; the
//    expected density converges to (1 - e^{-2}) / 2 ≈ 0.432332.
//  * Greedy maximal matching on a long path with a random edge order is
//    Flory's dimer adsorption on a 1D lattice (edges = lattice sites with
//    neighbor exclusion): the expected fraction of *edges* selected also
//    converges to (1 - e^{-2}) / 2.
//  * On a long cycle both limits are identical (boundary effects vanish).
//
// These tests catch subtle bias bugs in the permutation or in the greedy
// processing order that the exact-equality tests cannot see (those compare
// implementations against each other, not against external truth).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "core/matching/matching.hpp"
#include "core/mis/mis.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"

namespace pargreedy {
namespace {

constexpr double kJamming = 0.43233235838169365;  // (1 - e^-2) / 2

double mean_mis_density(const CsrGraph& g, uint64_t trials, uint64_t seed) {
  double total = 0;
  for (uint64_t t = 0; t < trials; ++t) {
    const MisResult r =
        mis_sequential(g, VertexOrder::random(g.num_vertices(), seed + t));
    total += static_cast<double>(r.size()) /
             static_cast<double>(g.num_vertices());
  }
  return total / static_cast<double>(trials);
}

double mean_mm_density(const CsrGraph& g, uint64_t trials, uint64_t seed) {
  double total = 0;
  for (uint64_t t = 0; t < trials; ++t) {
    const MatchResult r =
        mm_sequential(g, EdgeOrder::random(g.num_edges(), seed + t));
    total += static_cast<double>(r.size()) /
             static_cast<double>(g.num_edges());
  }
  return total / static_cast<double>(trials);
}

TEST(JammingConstants, MisOnLongPathHitsRsaDensity) {
  // n = 50,000, 8 trials: per-trial std dev is O(1/sqrt(n)) ~ 0.005, so
  // the mean is comfortably inside +-0.004 of the limit.
  const CsrGraph g = CsrGraph::from_edges(path_graph(50'000));
  EXPECT_NEAR(mean_mis_density(g, 8, 1), kJamming, 0.004);
}

TEST(JammingConstants, MisOnLongCycleHitsRsaDensity) {
  const CsrGraph g = CsrGraph::from_edges(cycle_graph(50'000));
  EXPECT_NEAR(mean_mis_density(g, 8, 2), kJamming, 0.004);
}

TEST(JammingConstants, MmOnLongPathHitsFloryDensity) {
  // m = n - 1 edge "sites"; the matched fraction of edges converges to the
  // same constant (dimers on the line graph of the path = monomer RSA on a
  // path of m sites).
  const CsrGraph g = CsrGraph::from_edges(path_graph(50'000));
  EXPECT_NEAR(mean_mm_density(g, 8, 3), kJamming, 0.004);
}

TEST(JammingConstants, MmOnLongCycleHitsFloryDensity) {
  const CsrGraph g = CsrGraph::from_edges(cycle_graph(50'000));
  EXPECT_NEAR(mean_mm_density(g, 8, 4), kJamming, 0.004);
}

TEST(JammingConstants, ParallelVariantsInheritTheDistribution) {
  // The parallel algorithms compute the *same function* of the ordering,
  // so their densities over random seeds are identical samples — check a
  // couple directly (this is implied by exact equality, but asserting it
  // end to end guards the whole pipeline).
  const CsrGraph g = CsrGraph::from_edges(path_graph(30'000));
  double total = 0;
  const uint64_t trials = 6;
  for (uint64_t t = 0; t < trials; ++t) {
    const MisResult r =
        mis_rootset(g, VertexOrder::random(g.num_vertices(), 100 + t));
    total += static_cast<double>(r.size()) /
             static_cast<double>(g.num_vertices());
  }
  EXPECT_NEAR(total / trials, kJamming, 0.005);
}

TEST(JammingConstants, IdentityOrderDoesNotHitTheRsaConstant) {
  // Control: the constant is a property of *random* orders. The identity
  // order on a path packs greedily from one end: density exactly 1/2.
  const uint64_t n = 50'000;
  const CsrGraph g = CsrGraph::from_edges(path_graph(n));
  const MisResult r = mis_sequential(g, VertexOrder::identity(n));
  EXPECT_EQ(r.size(), n / 2);
  EXPECT_GT(static_cast<double>(r.size()) / n, kJamming + 0.03);
}

TEST(JammingConstants, DensityConcentratesAsNGrows) {
  // Per-run variance shrinks with n: the spread of single-run densities at
  // n = 100k should be far below the spread at n = 1k.
  auto spread = [&](uint64_t n) {
    const CsrGraph g = CsrGraph::from_edges(path_graph(n));
    double lo = 1.0;
    double hi = 0.0;
    for (uint64_t t = 0; t < 6; ++t) {
      const double d =
          static_cast<double>(
              mis_sequential(g, VertexOrder::random(n, 500 + t)).size()) /
          static_cast<double>(n);
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
    return hi - lo;
  };
  EXPECT_LT(spread(100'000), spread(1'000));
}

}  // namespace
}  // namespace pargreedy
