// The PARGREEDY_OBS=0 case for the lock-free reader path: this whole
// executable is compiled with the observability seam forced off (the
// define below precedes every include, and tests/CMakeLists.txt also
// sets it on the target) and deliberately links NOTHING — no pargreedy
// library, no obs objects. If any PG_OBS_* instrumentation in
// txn/epoch.hpp or txn/published_state.hpp survived the seam, the
// MetricsRegistry symbols would be unresolved and the *link* would
// fail. A green run therefore proves the reader hot path (pin, window
// read, versioned read, unpin) compiles to zero instrumentation — and
// the assertions below prove it still behaves identically.
//
// Not a gtest TU (it must stay standalone): plain asserts via
// PG_CHECK, exit code is the verdict.
#define PARGREEDY_OBS 0

#include <cstdint>
#include <vector>

#include "support/check.hpp"
#include "txn/epoch.hpp"
#include "txn/published_state.hpp"

int main() {
  using pargreedy::EpochManager;
  using pargreedy::PublishedState;
  using pargreedy::ReadGuard;

  PublishedState<uint8_t> state(3);
  {
    pargreedy::support::RoleScope writer(state.writer_role_);
    for (uint64_t v = 0; v <= 4; ++v)
      state.publish(v, v, std::vector<uint8_t>{static_cast<uint8_t>(v & 1),
                                               static_cast<uint8_t>(1)});
  }

  // The reader hot path, seam off: everything must behave exactly as in
  // the instrumented build (test_epoch.cpp asserts the same facts).
  PG_CHECK(state.latest_version() == 4);
  PG_CHECK(state.oldest_version() == 2);
  {
    ReadGuard guard(state.epochs_);
    PG_CHECK(guard.pinned_epoch() == state.epochs_.current_epoch());
    PG_CHECK(state.epochs_.active_pins() == 1);
    const auto& latest = state.latest(guard);
    PG_CHECK(latest.version == 4);
    PG_CHECK(latest.verify_checksum());
    PG_CHECK(state.at(2, guard).solution[0] == 0);
  }
  PG_CHECK(state.epochs_.active_pins() == 0);

  bool threw = false;
  try {
    (void)state.solution_at_copy(1);  // evicted
  } catch (const pargreedy::CheckFailure&) {
    threw = true;
  }
  PG_CHECK(threw);
  return 0;
}
