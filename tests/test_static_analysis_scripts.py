#!/usr/bin/env python3
"""Unit tests for the static-analysis tooling: scripts/lint_invariants.py,
scripts/run_clang_tidy.py, and scripts/check_format.py. Invoked through
CTest (stdlib unittest, no third-party dependencies, no clang needed — the
clang-tidy/clang-format drivers are exercised against stub binaries), so
the tooling that gates the CI static-analysis lane is itself
regression-guarded.
"""
import importlib.util
import json
import os
import stat
import sys
import tempfile
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCRIPTS = REPO / "scripts"


def load(name):
    spec = importlib.util.spec_from_file_location(name, SCRIPTS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


lint = load("lint_invariants")
tidy = load("run_clang_tidy")
fmt = load("check_format")


class TempDirTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.dir = Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def write(self, rel, text):
        p = self.dir / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(text)
        return p

    def stub(self, rel, script):
        p = self.write(rel, script)
        p.chmod(p.stat().st_mode | stat.S_IXUSR | stat.S_IXGRP | stat.S_IXOTH)
        return p


# ------------------------------------------------------ lint_invariants ----


class StripperTest(unittest.TestCase):
    def test_strips_line_and_block_comments(self):
        s = lint.strip_comments_and_strings("a; // rand()\n/* time(0) */b;")
        self.assertNotIn("rand", s)
        self.assertNotIn("time", s)
        self.assertIn("a;", s)
        self.assertIn("b;", s)

    def test_strips_string_and_char_literals(self):
        s = lint.strip_comments_and_strings('x = "std::cout"; c = \'r\';')
        self.assertNotIn("cout", s)
        self.assertNotIn("r", s.replace("= ;", ""))

    def test_preserves_newlines_for_line_numbers(self):
        text = "a\n/* x\n y */\nb\n"
        self.assertEqual(
            lint.strip_comments_and_strings(text).count("\n"),
            text.count("\n"),
        )

    def test_digit_separator_is_not_a_char_literal(self):
        s = lint.strip_comments_and_strings("int n = 7'000; f(rand());")
        self.assertIn("rand", s)  # the separator must not eat the tail

    def test_escaped_quote_inside_string(self):
        s = lint.strip_comments_and_strings('x = "a\\"rand()"; y;')
        self.assertNotIn("rand", s)
        self.assertIn("y;", s)


OVERLAY_HPP_TEMPLATE = """
namespace pargreedy {
class OverlayGraph {
 public:
  OverlayGraph(int n);
  unsigned insert_edge(unsigned u, unsigned v, double w = kDefault)
      PARGREEDY_REQUIRES(writer_role_);
  unsigned erase_edge(unsigned u, unsigned v);
  void set_slot_weight(unsigned s, double w);
  void set_vertex_weight(unsigned v, double w);
  unsigned set_edge_weight(unsigned u, unsigned v, double w);
  void compact();
  void set_journal(void* j) { journal_ = j; }
  void undo_to(unsigned long mark, unsigned long epoch);
  [[nodiscard]] unsigned num_vertices() const noexcept { return n_; }
%(extra)s
 private:
  void ensure_edge_weights();
  void* journal_ = nullptr;
  unsigned n_ = 0;
};
}
"""

OVERLAY_CPP_TEMPLATE = """
#include "dynamic/overlay_graph.hpp"
namespace pargreedy {
unsigned OverlayGraph::insert_edge(unsigned u, unsigned v, double w) {
  if (journal_) journal_->record(1);
  if (journal_) journal_->record(2);
  if (journal_) journal_->record(3);
  return u + v;
}
unsigned OverlayGraph::erase_edge(unsigned u, unsigned v) {
  if (journal_) journal_->record(1);
  if (journal_) journal_->record(2);
  return u + v;
}
void OverlayGraph::set_slot_weight(unsigned s, double w) {
  %(slot_hook)s
}
void OverlayGraph::set_vertex_weight(unsigned v, double w) {
  if (journal_) journal_->record(1);
  if (journal_) journal_->record(2);
}
void OverlayGraph::ensure_edge_weights() {
  if (journal_) journal_->record(1);
}
}
"""


class JournalHooksFixtureTest(TempDirTest):
    def fixture(self, slot_hook="if (journal_) journal_->record(1);",
                extra_method=""):
        self.write("src/dynamic/overlay_graph.hpp",
                   OVERLAY_HPP_TEMPLATE % {"extra": extra_method})
        self.write("src/dynamic/overlay_graph.cpp",
                   OVERLAY_CPP_TEMPLATE % {"slot_hook": slot_hook})
        return self.dir

    def test_complete_hooks_are_clean(self):
        self.assertEqual(lint.check_journal_hooks(self.fixture()), [])

    def test_deleted_hook_fails(self):
        violations = lint.check_journal_hooks(
            self.fixture(slot_hook="// forgot to journal"))
        self.assertEqual(len(violations), 1)
        self.assertIn("set_slot_weight", violations[0].message)
        self.assertEqual(violations[0].rule, "journal-hooks")

    def test_unclassified_public_mutator_fails(self):
        violations = lint.check_journal_hooks(
            self.fixture(extra_method="  void sneaky_mutator(int x);"))
        self.assertEqual(len(violations), 1)
        self.assertIn("sneaky_mutator", violations[0].message)

    def test_const_and_private_methods_need_no_classification(self):
        # num_vertices (const) and ensure_edge_weights (private) are in the
        # fixture already and must not be reported.
        self.assertEqual(lint.check_journal_hooks(self.fixture()), [])

    def test_missing_mutator_fails(self):
        root = self.fixture()
        cpp = root / "src/dynamic/overlay_graph.cpp"
        cpp.write_text(cpp.read_text().replace("erase_edge", "gone_edge"))
        violations = lint.check_journal_hooks(root)
        self.assertTrue(any("erase_edge" in v.message for v in violations))


class SimpleRulesTest(TempDirTest):
    def test_omp_confined(self):
        self.write("src/parallel/parallel_for.hpp", "#pragma omp parallel\n")
        self.write("src/core/thing.hpp", "int x;\n#pragma omp parallel\n")
        v = lint.check_omp_confined(self.dir)
        self.assertEqual([x.path for x in v], ["src/core/thing.hpp"])
        self.assertEqual(v[0].line, 2)

    def test_nondeterminism_sources(self):
        self.write("src/a.cpp",
                   "int a = rand();\n"
                   "std::random_device rd;\n"
                   "long t = time(nullptr);\n"
                   "int ok = my_rand();\n"          # suffix match must not fire
                   "int ok2 = brand();\n")
        v = lint.check_no_nondeterminism(self.dir)
        self.assertEqual([x.line for x in v], [1, 2, 3])

    def test_no_cout_in_library(self):
        self.write("src/a.hpp", "#include <iostream>\nstd::cout << 1;\n")
        self.write("src/b.hpp", "// std::cout only in a comment\n")
        v = lint.check_no_cout(self.dir)
        self.assertEqual([(x.path, x.line) for x in v], [("src/a.hpp", 2)])

    def test_bench_emit_rule(self):
        self.write("bench/bench_common.hpp", "t.print(std::cout);\n")  # exempt
        self.write("bench/fig.cpp", "table.print(std::cout);\n")
        self.write("bench/ok.cpp", "bench::emit(\"x\", \"y\", table);\n")
        v = lint.check_bench_emit(self.dir)
        self.assertEqual([x.path for x in v], ["bench/fig.cpp"])

    def test_suppression_comment(self):
        self.write("src/a.hpp",
                   "std::cout << 1;  // pargreedy-lint: allow(no-cout)\n"
                   "std::cout << 2;  // pargreedy-lint: allow(omp-confined)\n")
        v = lint.check_no_cout(self.dir)
        self.assertEqual([x.line for x in v], [2])  # wrong rule id: no effect

    def test_obs_confined(self):
        self.write("src/core/leaky.cpp",
                   "auto t0 = std::chrono::steady_clock::now();\n"
                   "std::fprintf(stderr, fmt, 1);\n"
                   "support::Timer t;\n"
                   "int n = std::snprintf(buf, sizeof buf, fmt);\n"
                   "obs::EventRecorder::global().record(k);\n"
                   "obs::record_event(obs::EventKind::kBatchBegin);\n"
                   "PG_OBS_EVENT(kBatchBegin);\n")
        v = lint.check_obs_confined(self.dir)
        # snprintf (string formatting, not telemetry output) and the
        # sanctioned PG_OBS_EVENT macro spelling must not fire; naming the
        # flight recorder directly must.
        self.assertEqual([x.line for x in v], [1, 2, 3, 5, 6])
        self.assertTrue(all(x.rule == "obs-confined" for x in v))

    def test_obs_confined_exempts_obs_layer_and_timing(self):
        self.write("src/obs/trace.cpp",
                   "auto t = std::chrono::steady_clock::now();\n")
        self.write("src/support/timing.hpp",
                   "using TimingClock = std::chrono::steady_clock;\n")
        self.write("src/support/env.cpp",
                   "std::fprintf(stderr, m);"
                   "  // pargreedy-lint: allow(obs-confined)\n")
        self.assertEqual(lint.check_obs_confined(self.dir), [])

    def test_main_exit_codes(self):
        self.assertEqual(lint.main(["--repo-root", str(self.dir)]), 2)
        self.write("src/a.hpp", "int x;\n")
        self.write("src/dynamic/overlay_graph.hpp", OVERLAY_HPP_TEMPLATE
                   % {"extra": ""})
        self.write("src/dynamic/overlay_graph.cpp", OVERLAY_CPP_TEMPLATE
                   % {"slot_hook": "if (journal_) journal_->record(1);"})
        self.assertEqual(lint.main(["--repo-root", str(self.dir)]), 0)
        self.write("src/bad.hpp", "int a = rand();\n")
        self.assertEqual(lint.main(["--repo-root", str(self.dir)]), 1)


class RealTreeTest(unittest.TestCase):
    def test_repo_is_clean(self):
        self.assertEqual(lint.run(REPO), [])

    def test_real_overlay_methods_are_all_classified(self):
        stripped = lint.strip_comments_and_strings(
            (REPO / "src/dynamic/overlay_graph.hpp").read_text())
        names = {n for n, _ in
                 lint.public_nonconst_methods(stripped, "OverlayGraph")}
        # The parser must actually see the real mutators — an empty result
        # would make the classification check pass vacuously.
        for expected in ("insert_edge", "erase_edge", "set_slot_weight",
                         "set_vertex_weight", "compact", "undo_to"):
            self.assertIn(expected, names)
        known = set(lint.EXPECTED_JOURNAL_HOOKS) | lint.JOURNAL_EXEMPT_METHODS
        self.assertEqual(names - known, set())


# ------------------------------------------------------- run_clang_tidy ----

STUB_TIDY = """#!/bin/sh
# Emits the diagnostics listed in $STUB_DIAGS (one per line) verbatim.
if [ -n "$STUB_DIAGS" ]; then cat "$STUB_DIAGS"; fi
exit 0
"""


class ClangTidyDriverTest(TempDirTest):
    def setUp(self):
        super().setUp()
        self.build = self.dir / "build"
        self.build.mkdir()
        # One real library TU so compile_commands filtering has a target.
        self.tu = str(REPO / "src/dynamic/overlay_graph.cpp")
        (self.build / "compile_commands.json").write_text(json.dumps(
            [{"directory": str(self.build), "file": self.tu,
              "command": f"g++ -c {self.tu}"},
             {"directory": str(self.build),
              "file": str(REPO / "tests/test_support.cpp"),
              "command": "g++ -c x.cpp"}]))
        self.baseline = self.dir / "baseline.json"
        self.bin = str(self.stub("bin/clang-tidy", STUB_TIDY))
        self.diags = self.dir / "diags.txt"
        os.environ["STUB_DIAGS"] = str(self.diags)
        self.addCleanup(os.environ.pop, "STUB_DIAGS", None)

    def run_main(self, *extra):
        return tidy.main(["--build-dir", str(self.build),
                          "--clang-tidy", self.bin,
                          "--baseline", str(self.baseline), "-j", "1",
                          *extra])

    def diag(self, check, line=10):
        return (f"{self.tu}:{line}:5: warning: something is off [{check}]\n")

    def test_library_tus_excludes_tests(self):
        files = tidy.library_tus(self.build / "compile_commands.json", REPO)
        self.assertEqual(files, [self.tu])

    def test_clean_run_exits_zero(self):
        self.diags.write_text("")
        self.assertEqual(self.run_main(), 0)

    def test_new_finding_is_a_regression(self):
        self.diags.write_text(self.diag("performance-no-int-to-ptr"))
        self.assertEqual(self.run_main(), 1)

    def test_update_baseline_then_clean(self):
        self.diags.write_text(self.diag("bugprone-use-after-move"))
        self.assertEqual(self.run_main("--update-baseline"), 0)
        saved = json.loads(self.baseline.read_text())
        self.assertEqual(
            saved["counts"]["src/dynamic/overlay_graph.cpp"],
            {"bugprone-use-after-move": 1})
        self.assertEqual(self.run_main(), 0)

    def test_ratchet_fixed_finding_requires_shrink(self):
        self.diags.write_text(self.diag("bugprone-use-after-move"))
        self.assertEqual(self.run_main("--update-baseline"), 0)
        self.diags.write_text("")  # the finding got fixed
        self.assertEqual(self.run_main(), 1)  # stale baseline: ratchet
        self.assertEqual(self.run_main("--update-baseline"), 0)
        self.assertEqual(self.run_main(), 0)

    def test_count_increase_within_baselined_check_fails(self):
        self.diags.write_text(self.diag("bugprone-use-after-move"))
        self.assertEqual(self.run_main("--update-baseline"), 0)
        self.diags.write_text(self.diag("bugprone-use-after-move", 10)
                              + self.diag("bugprone-use-after-move", 20))
        self.assertEqual(self.run_main(), 1)

    def test_duplicate_header_sites_collapse(self):
        counts = tidy.parse_diagnostics(
            self.diag("bugprone-x") + self.diag("bugprone-x"), REPO)
        self.assertEqual(
            counts["src/dynamic/overlay_graph.cpp"]["bugprone-x"], 1)

    def test_missing_binary_exits_two(self):
        self.assertEqual(tidy.main(
            ["--build-dir", str(self.build),
             "--clang-tidy", str(self.dir / "nope"),
             "--baseline", str(self.baseline)]), 2)

    def test_missing_compile_commands_exits_two(self):
        self.assertEqual(self.run_main("--build-dir",
                                       str(self.dir / "nowhere")), 2)

    def test_bad_baseline_version_exits_two(self):
        self.baseline.write_text(json.dumps({"version": 99, "counts": {}}))
        self.diags.write_text("")
        self.assertEqual(self.run_main(), 2)


# --------------------------------------------------------- check_format ----

STUB_FORMAT_OK = "#!/bin/sh\nexit 0\n"
# Fails (like --dry-run -Werror) iff the file contains MISFORMATTED.
STUB_FORMAT_PICKY = """#!/bin/sh
for last; do :; done
if grep -q MISFORMATTED "$last"; then exit 1; fi
exit 0
"""


class CheckFormatTest(TempDirTest):
    def run_main(self, binary, *extra):
        return fmt.main(["--clang-format", binary, "-j", "1", *extra])

    def test_conforming_files_exit_zero(self):
        binary = str(self.stub("bin/clang-format", STUB_FORMAT_OK))
        f = self.write("a.cpp", "int x;\n")
        self.assertEqual(self.run_main(binary, str(f)), 0)

    def test_nonconforming_file_exits_one(self):
        binary = str(self.stub("bin/clang-format", STUB_FORMAT_PICKY))
        good = self.write("good.cpp", "int x;\n")
        bad = self.write("bad.cpp", "int  MISFORMATTED ;\n")
        self.assertEqual(self.run_main(binary, str(good)), 0)
        self.assertEqual(self.run_main(binary, str(good), str(bad)), 1)

    def test_missing_binary(self):
        missing = str(self.dir / "nope")
        self.assertEqual(self.run_main(missing, "x.cpp"), 2)
        self.assertEqual(self.run_main(missing, "--skip-missing", "x.cpp"), 0)

    def test_default_scan_covers_cxx_tree(self):
        files = fmt.cxx_files(REPO)
        rels = {f.relative_to(REPO).as_posix() for f in files}
        self.assertIn("src/dynamic/overlay_graph.cpp", rels)
        self.assertIn("tests/thread_safety/contract_clean.cpp", rels)
        self.assertNotIn("scripts/lint_invariants.py", rels)


if __name__ == "__main__":
    sys.exit(unittest.main())
