// Unit tests for OverlayGraph: delta bookkeeping over an immutable CSR
// base — slot stability, revival of deleted edges, iteration, and
// compaction.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <vector>

#include "dynamic/overlay_graph.hpp"
#include "dynamic/update_batch.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "random/hash.hpp"
#include "support/check.hpp"

namespace pargreedy {
namespace {

CsrGraph small_base() {
  // 0-1, 0-2, 1-2, 2-3 on 5 vertices (4 isolated).
  EdgeList el(5);
  el.add(0, 1);
  el.add(0, 2);
  el.add(1, 2);
  el.add(2, 3);
  return CsrGraph::from_edges(el);
}

std::set<std::pair<VertexId, VertexId>> incident_set(const OverlayGraph& g,
                                                     VertexId v) {
  std::set<std::pair<VertexId, VertexId>> out;
  g.for_incident(v, [&](VertexId w, EdgeSlot s) {
    out.emplace(w, static_cast<VertexId>(s));
  });
  return out;
}

TEST(OverlayGraph, StartsAsTheBase) {
  OverlayGraph g(small_base());
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_live_edges(), 4u);
  EXPECT_EQ(g.slot_bound(), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 1));  // orientation-insensitive
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(4, 0));
  EXPECT_EQ(g.live_degree(2), 3u);
  EXPECT_EQ(g.live_degree(4), 0u);
  EXPECT_DOUBLE_EQ(g.overlay_fraction(), 0.0);
}

TEST(OverlayGraph, BaseSlotsAreCsrEdgeIds) {
  const CsrGraph base = small_base();
  OverlayGraph g(base);
  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    const Edge ed = base.edge(e);
    EXPECT_EQ(g.find_slot(ed.u, ed.v), static_cast<EdgeSlot>(e));
    EXPECT_EQ(g.slot_edge(e), ed);
    EXPECT_TRUE(g.slot_live(e));
  }
}

TEST(OverlayGraph, InsertNewEdgeGetsFreshSlot) {
  OverlayGraph g(small_base());
  const EdgeSlot s = g.insert_edge(3, 4);
  EXPECT_EQ(s, 4u);  // base_m + 0
  EXPECT_EQ(g.num_live_edges(), 5u);
  EXPECT_EQ(g.slot_bound(), 5u);
  EXPECT_TRUE(g.has_edge(3, 4));
  EXPECT_EQ(g.slot_edge(s), (Edge{3, 4}));
  // Duplicate insert is a no-op.
  EXPECT_EQ(g.insert_edge(4, 3), kInvalidSlot);
  EXPECT_EQ(g.num_live_edges(), 5u);
}

TEST(OverlayGraph, EraseAndReviveBaseEdgeKeepsSlot) {
  OverlayGraph g(small_base());
  const EdgeSlot s = g.find_slot(0, 1);
  EXPECT_EQ(g.erase_edge(1, 0), s);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.slot_live(s));
  EXPECT_EQ(g.num_live_edges(), 3u);
  EXPECT_EQ(g.erase_edge(0, 1), kInvalidSlot);  // absent: no-op
  // Re-insert revives the original slot, not a new one.
  EXPECT_EQ(g.insert_edge(0, 1), s);
  EXPECT_TRUE(g.slot_live(s));
  EXPECT_EQ(g.num_live_edges(), 4u);
  EXPECT_EQ(g.slot_bound(), 4u);
}

TEST(OverlayGraph, EraseAndReviveExtraEdgeKeepsSlot) {
  OverlayGraph g(small_base());
  const EdgeSlot s = g.insert_edge(1, 4);
  EXPECT_EQ(g.erase_edge(4, 1), s);
  EXPECT_FALSE(g.has_edge(1, 4));
  EXPECT_EQ(g.insert_edge(1, 4), s);
  EXPECT_TRUE(g.has_edge(1, 4));
  EXPECT_EQ(g.slot_bound(), 5u);
}

TEST(OverlayGraph, ForIncidentSeesBothLayersAndSkipsDead) {
  OverlayGraph g(small_base());
  g.insert_edge(2, 4);
  g.erase_edge(1, 2);
  const auto at2 = incident_set(g, 2);
  // 2's live neighbors: 0 (base), 3 (base), 4 (extra); 1 deleted.
  std::set<VertexId> nbrs;
  for (const auto& [w, slot] : at2) nbrs.insert(w);
  EXPECT_EQ(nbrs, (std::set<VertexId>{0, 3, 4}));
  EXPECT_EQ(g.live_degree(2), 3u);
  // Early-exit variant stops on false.
  int visits = 0;
  const bool completed = g.for_incident_while(2, [&](VertexId, EdgeSlot) {
    ++visits;
    return false;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(visits, 1);
}

TEST(OverlayGraph, LiveEdgeListAndToCsrTrackMutations) {
  OverlayGraph g(small_base());
  g.erase_edge(0, 2);
  g.insert_edge(0, 4);
  g.insert_edge(3, 4);
  const CsrGraph snap = g.to_csr();
  EXPECT_EQ(snap.num_edges(), 5u);
  EdgeList expect(5);
  expect.add(0, 1);
  expect.add(1, 2);
  expect.add(2, 3);
  expect.add(0, 4);
  expect.add(3, 4);
  const CsrGraph want = CsrGraph::from_edges(expect);
  ASSERT_EQ(snap.num_edges(), want.num_edges());
  for (EdgeId e = 0; e < snap.num_edges(); ++e)
    EXPECT_EQ(snap.edge(e), want.edge(e));
}

TEST(OverlayGraph, OverlayFractionCountsInsertsAndDeadBase) {
  OverlayGraph g(small_base());  // base m = 4
  g.insert_edge(0, 4);
  EXPECT_DOUBLE_EQ(g.overlay_fraction(), 0.25);
  g.erase_edge(0, 1);
  EXPECT_DOUBLE_EQ(g.overlay_fraction(), 0.5);
}

TEST(OverlayGraph, CompactFoldsDeltasIntoFreshBase) {
  OverlayGraph g(small_base());
  g.erase_edge(0, 1);
  g.insert_edge(0, 4);
  const EdgeList before = g.live_edge_list();
  g.compact();
  EXPECT_EQ(g.num_live_edges(), before.num_edges());
  EXPECT_EQ(g.slot_bound(), before.num_edges());
  EXPECT_DOUBLE_EQ(g.overlay_fraction(), 0.0);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 4));
  // Slots are again exactly the CSR edge ids of the new base.
  for (EdgeId e = 0; e < g.base().num_edges(); ++e)
    EXPECT_EQ(g.find_slot(g.base().edge(e).u, g.base().edge(e).v),
              static_cast<EdgeSlot>(e));
}

TEST(OverlayGraph, RejectsLoopsAndOutOfRange) {
  OverlayGraph g(small_base());
  EXPECT_THROW(g.insert_edge(1, 1), CheckFailure);
  EXPECT_THROW(g.insert_edge(0, 17), CheckFailure);
  EXPECT_THROW(g.erase_edge(0, 17), CheckFailure);
  EXPECT_THROW((void)g.has_edge(17, 0), CheckFailure);
  EXPECT_THROW((void)g.find_slot(0, 99), CheckFailure);
}

TEST(OverlayGraph, RandomizedMutationsMatchSetOracle) {
  const CsrGraph base =
      CsrGraph::from_edges(random_graph_nm(60, 180, /*seed=*/7));
  OverlayGraph g(base);
  std::set<std::pair<VertexId, VertexId>> oracle;
  for (EdgeId e = 0; e < base.num_edges(); ++e)
    oracle.emplace(base.edge(e).u, base.edge(e).v);
  for (uint64_t step = 0; step < 3'000; ++step) {
    VertexId u = static_cast<VertexId>(hash_range(11, 2 * step, 60));
    VertexId v = static_cast<VertexId>(hash_range(11, 2 * step + 1, 59));
    if (v >= u) ++v;
    const auto key = std::minmax(u, v);
    if (hash64(13, step) & 1) {
      const bool added = g.insert_edge(u, v) != kInvalidSlot;
      EXPECT_EQ(added, oracle.insert(key).second);
    } else {
      const bool removed = g.erase_edge(u, v) != kInvalidSlot;
      EXPECT_EQ(removed, oracle.erase(key) > 0);
    }
    if (step % 977 == 0) g.compact();
    ASSERT_EQ(g.num_live_edges(), oracle.size());
  }
  const EdgeList live = g.live_edge_list();
  std::set<std::pair<VertexId, VertexId>> got;
  for (const Edge& e : live.edges()) got.emplace(e.u, e.v);
  EXPECT_EQ(got, oracle);
}

CsrGraph weighted_base() {
  CsrGraph g = small_base();
  g.set_vertex_weights({10.0, 20.0, 30.0, 40.0, 50.0});
  g.set_edge_weights({1.5, 2.5, 3.5, 4.5});  // by edge id
  return g;
}

TEST(OverlayGraphWeights, UnweightedOverlayReportsDefaults) {
  OverlayGraph g(small_base());
  EXPECT_FALSE(g.has_edge_weights());
  EXPECT_FALSE(g.has_vertex_weights());
  EXPECT_EQ(g.slot_weight(0), kDefaultWeight);
  EXPECT_EQ(g.vertex_weight(3), kDefaultWeight);
  EXPECT_FALSE(g.to_csr().has_edge_weights());
}

TEST(OverlayGraphWeights, SlotWeightsComeFromBaseAndInserts) {
  const CsrGraph base = weighted_base();
  OverlayGraph g(base);
  EXPECT_TRUE(g.has_edge_weights());
  EXPECT_TRUE(g.has_vertex_weights());
  for (EdgeId e = 0; e < base.num_edges(); ++e)
    EXPECT_EQ(g.slot_weight(e), base.edge_weight(e));
  EXPECT_EQ(g.vertex_weight(2), 30.0);

  const EdgeSlot s = g.insert_edge(0, 4, 9.5);
  ASSERT_NE(s, kInvalidSlot);
  EXPECT_EQ(g.slot_weight(s), 9.5);
}

TEST(OverlayGraphWeights, FirstWeightedInsertUpgradesTheOverlay) {
  OverlayGraph g(small_base());
  const EdgeSlot plain = g.insert_edge(0, 3);
  ASSERT_NE(plain, kInvalidSlot);
  EXPECT_FALSE(g.has_edge_weights());
  const EdgeSlot s = g.insert_edge(0, 4, 7.0);
  ASSERT_NE(s, kInvalidSlot);
  EXPECT_TRUE(g.has_edge_weights());
  EXPECT_EQ(g.slot_weight(s), 7.0);
  // Pre-existing slots (base and the earlier unweighted insert) read as
  // default-weighted.
  EXPECT_EQ(g.slot_weight(0), kDefaultWeight);
  EXPECT_EQ(g.slot_weight(plain), kDefaultWeight);
}

TEST(OverlayGraphWeights, RejectsNonFiniteWeights) {
  OverlayGraph g(small_base());
  // Caught at insertion, not at the next snapshot/compaction.
  EXPECT_THROW(
      g.insert_edge(0, 3, std::numeric_limits<double>::infinity()),
      CheckFailure);
  EXPECT_THROW(
      g.insert_edge(0, 3, std::numeric_limits<double>::quiet_NaN()),
      CheckFailure);
  UpdateBatch batch;
  EXPECT_THROW(
      batch.insert_edge(0, 3, -std::numeric_limits<double>::infinity()),
      CheckFailure);
}

TEST(OverlayGraphWeights, ReinsertOverwritesTheStoredWeight) {
  OverlayGraph g(weighted_base());
  const EdgeSlot s = g.erase_edge(0, 1);
  ASSERT_NE(s, kInvalidSlot);
  ASSERT_EQ(g.insert_edge(0, 1, 99.0), s);  // revived in place
  EXPECT_EQ(g.slot_weight(s), 99.0);
}

TEST(OverlayGraphWeights, CompactionPreservesWeights) {
  OverlayGraph g(weighted_base());
  g.erase_edge(1, 2);
  g.insert_edge(0, 4, 6.25);
  g.insert_edge(3, 4, 8.75);
  g.compact();
  EXPECT_TRUE(g.has_edge_weights());
  EXPECT_TRUE(g.has_vertex_weights());
  EXPECT_EQ(g.vertex_weight(4), 50.0);
  // Weights follow the edges through the rebuild, keyed by endpoints.
  EXPECT_EQ(g.slot_weight(g.find_slot(0, 4)), 6.25);
  EXPECT_EQ(g.slot_weight(g.find_slot(3, 4)), 8.75);
  EXPECT_EQ(g.slot_weight(g.find_slot(0, 1)), 1.5);
  EXPECT_EQ(g.slot_weight(g.find_slot(2, 3)), 4.5);
  // And the new base CSR carries them too.
  const CsrGraph& base = g.base();
  ASSERT_TRUE(base.has_edge_weights());
  for (EdgeId e = 0; e < base.num_edges(); ++e)
    EXPECT_EQ(base.edge_weight(e), g.slot_weight(e));
}

TEST(OverlayGraphWeights, SetEdgeWeightMutatesInPlace) {
  OverlayGraph g(weighted_base());
  const EdgeSlot before = g.find_slot(0, 1);
  ASSERT_NE(before, kInvalidSlot);
  // In place: same slot, new weight — never a delete+re-insert.
  EXPECT_EQ(g.set_edge_weight(0, 1, 44.0), before);
  EXPECT_EQ(g.slot_weight(before), 44.0);
  EXPECT_EQ(g.find_slot(0, 1), before);
  // Works on inserted-layer slots too.
  const EdgeSlot extra = g.insert_edge(0, 4, 1.0);
  EXPECT_EQ(g.set_edge_weight(0, 4, 2.0), extra);
  EXPECT_EQ(g.slot_weight(extra), 2.0);
  // Absent and erased edges are no-ops.
  EXPECT_EQ(g.set_edge_weight(1, 4, 3.0), kInvalidSlot);
  g.erase_edge(0, 1);
  EXPECT_EQ(g.set_edge_weight(0, 1, 5.0), kInvalidSlot);
  EXPECT_THROW(g.set_edge_weight(
                   0, 2, std::numeric_limits<double>::quiet_NaN()),
               CheckFailure);
}

TEST(OverlayGraphWeights, SetEdgeWeightUpgradesUnweightedOverlay) {
  OverlayGraph g(small_base());
  EXPECT_FALSE(g.has_edge_weights());
  // Default weight on an unweighted overlay stays unweighted (no-op).
  EXPECT_NE(g.set_edge_weight(0, 1, kDefaultWeight), kInvalidSlot);
  EXPECT_FALSE(g.has_edge_weights());
  EXPECT_NE(g.set_edge_weight(0, 1, 3.0), kInvalidSlot);
  EXPECT_TRUE(g.has_edge_weights());
  EXPECT_EQ(g.slot_weight(g.find_slot(0, 1)), 3.0);
  EXPECT_EQ(g.slot_weight(g.find_slot(1, 2)), kDefaultWeight);
}

TEST(OverlayGraphWeights, SetVertexWeightReachesSnapshotsAndCompaction) {
  OverlayGraph g(weighted_base());
  g.set_vertex_weight(2, 99.0);
  EXPECT_EQ(g.vertex_weight(2), 99.0);
  EXPECT_EQ(g.to_csr().vertex_weight(2), 99.0);
  std::vector<uint8_t> active(5, 1);
  EXPECT_EQ(g.active_subgraph(active).vertex_weight(2), 99.0);
  g.erase_edge(0, 1);
  g.compact();
  EXPECT_EQ(g.vertex_weight(2), 99.0);
  EXPECT_EQ(g.base().vertex_weight(2), 99.0);
  EXPECT_THROW(g.set_vertex_weight(7, 1.0), CheckFailure);  // out of range
  EXPECT_THROW(g.set_vertex_weight(
                   1, std::numeric_limits<double>::infinity()),
               CheckFailure);
}

TEST(OverlayGraphWeights, SetVertexWeightUpgradesUnweightedOverlay) {
  OverlayGraph g(small_base());
  EXPECT_FALSE(g.has_vertex_weights());
  g.set_vertex_weight(1, kDefaultWeight);  // no-op: stays unweighted
  EXPECT_FALSE(g.has_vertex_weights());
  g.set_vertex_weight(1, 6.5);
  EXPECT_TRUE(g.has_vertex_weights());
  EXPECT_EQ(g.vertex_weight(1), 6.5);
  EXPECT_EQ(g.vertex_weight(0), kDefaultWeight);
  ASSERT_TRUE(g.to_csr().has_vertex_weights());
}

TEST(OverlayGraphWeights, ActiveSubgraphCarriesWeights) {
  OverlayGraph g(weighted_base());
  g.insert_edge(0, 4, 5.5);
  std::vector<uint8_t> active(5, 1);
  active[3] = 0;  // drops edge 2-3
  const CsrGraph h = g.active_subgraph(active);
  ASSERT_TRUE(h.has_edge_weights());
  ASSERT_TRUE(h.has_vertex_weights());
  EXPECT_EQ(h.num_edges(), 4u);  // 0-1, 0-2, 1-2, 0-4
  EXPECT_EQ(h.vertex_weight(1), 20.0);
  for (EdgeId e = 0; e < h.num_edges(); ++e) {
    const Edge ed = h.edge(e);
    EXPECT_EQ(h.edge_weight(e), g.slot_weight(g.find_slot(ed.u, ed.v)))
        << "edge {" << ed.u << "," << ed.v << "}";
  }
}

}  // namespace
}  // namespace pargreedy
