// Unit tests for the workload generators (src/generators/): the paper's two
// evaluation inputs (sparse uniform random, rMat power-law) plus the
// structured families used by tests and adversarial-ordering experiments.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "graph/graph_ops.hpp"
#include "graph/validate.hpp"
#include "parallel/arch.hpp"
#include "support/check.hpp"

namespace pargreedy {
namespace {

// ---------------------------------------------------- structured families ---

TEST(Structured, PathGraphShape) {
  const EdgeList el = path_graph(6);
  EXPECT_EQ(el.num_vertices(), 6u);
  ASSERT_EQ(el.num_edges(), 5u);
  for (uint32_t i = 0; i < 5; ++i)
    EXPECT_EQ(el.edges()[i], (Edge{i, i + 1}));
  EXPECT_EQ(path_graph(1).num_edges(), 0u);
  EXPECT_EQ(path_graph(0).num_edges(), 0u);
}

TEST(Structured, CycleGraphShape) {
  const CsrGraph g = CsrGraph::from_edges(cycle_graph(8));
  EXPECT_EQ(g.num_edges(), 8u);
  for (VertexId v = 0; v < 8; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_THROW(cycle_graph(2), CheckFailure);
  EXPECT_EQ(cycle_graph(0).num_edges(), 0u);
}

TEST(Structured, GridGraphShape) {
  const CsrGraph g = CsrGraph::from_edges(grid_graph(3, 4));
  EXPECT_EQ(g.num_vertices(), 12u);
  // Edges: 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8 = 17.
  EXPECT_EQ(g.num_edges(), 17u);
  // Corner degrees 2, edge 3, interior 4.
  EXPECT_EQ(g.degree(0), 2u);   // corner
  EXPECT_EQ(g.degree(1), 3u);   // top edge
  EXPECT_EQ(g.degree(5), 4u);   // interior (row 1, col 1)
}

TEST(Structured, StarGraphShape) {
  const CsrGraph g = CsrGraph::from_edges(star_graph(9));
  EXPECT_EQ(g.num_edges(), 8u);
  EXPECT_EQ(g.degree(0), 8u);
  for (VertexId v = 1; v < 9; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(Structured, CompleteGraphShape) {
  const CsrGraph g = CsrGraph::from_edges(complete_graph(7));
  EXPECT_EQ(g.num_edges(), 21u);
  for (VertexId v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 6u);
}

TEST(Structured, CompleteBipartiteShape) {
  const CsrGraph g = CsrGraph::from_edges(complete_bipartite(3, 5));
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.num_edges(), 15u);
  for (VertexId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 5u);
  for (VertexId v = 3; v < 8; ++v) EXPECT_EQ(g.degree(v), 3u);
  // Bipartite: no edge inside either part.
  for (const Edge& e : g.edges()) {
    EXPECT_LT(e.u, 3u);
    EXPECT_GE(e.v, 3u);
  }
}

TEST(Structured, BinaryTreeShape) {
  const CsrGraph g = CsrGraph::from_edges(binary_tree(15));  // perfect depth-3
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 3u);   // internal: parent + 2 children
  EXPECT_EQ(g.degree(14), 1u);  // leaf
  EXPECT_EQ(count_components(g), 1u);
}

// ------------------------------------------------------------ random n,m ---

TEST(RandomGraph, HitsRequestedEdgeCount) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    const EdgeList el = random_graph_nm(10'000, 50'000, seed);
    EXPECT_EQ(el.num_edges(), 50'000u) << "seed " << seed;
    EXPECT_EQ(el.num_vertices(), 10'000u);
  }
}

TEST(RandomGraph, OutputIsSimple) {
  const EdgeList el = random_graph_nm(1'000, 5'000, 4);
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const Edge& e : el.edges()) {
    EXPECT_FALSE(e.is_loop());
    EXPECT_LT(e.u, e.v);
    EXPECT_TRUE(seen.insert({e.u, e.v}).second) << "duplicate edge";
  }
}

TEST(RandomGraph, DeterministicInSeedAcrossWorkerCounts) {
  EdgeList base;
  {
    ScopedNumWorkers guard(1);
    base = random_graph_nm(3'000, 12'000, 77);
  }
  for (int workers : {2, 4}) {
    ScopedNumWorkers guard(workers);
    const EdgeList again = random_graph_nm(3'000, 12'000, 77);
    ASSERT_EQ(again.num_edges(), base.num_edges());
    for (std::size_t i = 0; i < base.num_edges(); ++i)
      ASSERT_EQ(again.edges()[i], base.edges()[i]) << "workers=" << workers;
  }
}

TEST(RandomGraph, SeedsProduceDifferentGraphs) {
  const EdgeList a = random_graph_nm(1'000, 4'000, 1);
  const EdgeList b = random_graph_nm(1'000, 4'000, 2);
  bool any_diff = a.num_edges() != b.num_edges();
  for (std::size_t i = 0; !any_diff && i < a.num_edges(); ++i)
    any_diff = !(a.edges()[i] == b.edges()[i]);
  EXPECT_TRUE(any_diff);
}

TEST(RandomGraph, DegreesAreConcentrated) {
  // Sparse uniform random graph: max degree stays near the average (no
  // power-law tail) — this is what distinguishes it from rMat below.
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(20'000, 100'000, 5));
  const DegreeStats s = degree_stats(g);
  EXPECT_NEAR(s.avg_degree, 10.0, 0.2);
  EXPECT_LT(s.max_degree, 40u);  // Poisson(10) tail; 40 is ~8 sigma
}

TEST(RandomGraph, RejectsImpossibleRequests) {
  EXPECT_THROW(random_graph_nm(3, 100, 1), CheckFailure);  // > C(3,2)
  EXPECT_THROW(random_graph_nm(1, 1, 1), CheckFailure);
}

TEST(RandomGraph, DenseRequestStillExact) {
  // 80% of all possible edges: exercises the multi-round top-up path.
  const uint64_t n = 64;
  const uint64_t max_m = n * (n - 1) / 2;
  const EdgeList el = random_graph_nm(n, max_m * 8 / 10, 6);
  EXPECT_EQ(el.num_edges(), max_m * 8 / 10);
}

// -------------------------------------------------------------- G(n, p) ---

TEST(ErdosRenyi, EdgeCountMatchesExpectation) {
  const uint64_t n = 2'000;
  const double p = 0.01;
  const double expect = p * static_cast<double>(n) * (n - 1) / 2;  // ~19990
  double total = 0;
  for (uint64_t seed = 0; seed < 5; ++seed)
    total += static_cast<double>(erdos_renyi_gnp(n, p, seed).num_edges());
  const double mean = total / 5;
  EXPECT_NEAR(mean, expect, 5 * std::sqrt(expect));  // generous CLT band
}

TEST(ErdosRenyi, ExtremeProbabilities) {
  EXPECT_EQ(erdos_renyi_gnp(100, 0.0, 1).num_edges(), 0u);
  EXPECT_EQ(erdos_renyi_gnp(20, 1.0, 1).num_edges(), 190u);  // K_20
}

TEST(ErdosRenyi, OutputIsSimpleAndCanonical) {
  const EdgeList el = erdos_renyi_gnp(500, 0.02, 9);
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const Edge& e : el.edges()) {
    EXPECT_FALSE(e.is_loop());
    EXPECT_LT(e.u, e.v);
    EXPECT_TRUE(seen.insert({e.u, e.v}).second);
  }
}

TEST(ErdosRenyi, DeterministicInSeed) {
  const EdgeList a = erdos_renyi_gnp(300, 0.05, 42);
  const EdgeList b = erdos_renyi_gnp(300, 0.05, 42);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.num_edges(); ++i)
    EXPECT_EQ(a.edges()[i], b.edges()[i]);
}

TEST(ErdosRenyi, RejectsBadProbability) {
  EXPECT_THROW(erdos_renyi_gnp(10, -0.1, 1), CheckFailure);
  EXPECT_THROW(erdos_renyi_gnp(10, 1.5, 1), CheckFailure);
}

// ------------------------------------------------------------------ rMat ---

TEST(Rmat, ProducesRequestedEdges) {
  const EdgeList el = rmat_graph(12, 20'000, 3);
  EXPECT_EQ(el.num_vertices(), uint64_t{1} << 12);
  EXPECT_EQ(el.num_edges(), 20'000u);
}

TEST(Rmat, OutputIsSimple) {
  const EdgeList el = rmat_graph(10, 5'000, 4);
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const Edge& e : el.edges()) {
    EXPECT_FALSE(e.is_loop());
    EXPECT_TRUE(seen.insert({e.u, e.v}).second);
  }
}

TEST(Rmat, HasPowerLawTail) {
  // The paper picked rMat for its skewed degrees: the max degree should be
  // far above the average (unlike the uniform random graph).
  const CsrGraph g = CsrGraph::from_edges(rmat_graph(14, 80'000, 5));
  const DegreeStats s = degree_stats(g);
  EXPECT_GT(static_cast<double>(s.max_degree), 8.0 * s.avg_degree);
}

TEST(Rmat, DeterministicInSeedAcrossWorkerCounts) {
  EdgeList base;
  {
    ScopedNumWorkers guard(1);
    base = rmat_graph(10, 4'000, 11);
  }
  {
    ScopedNumWorkers guard(4);
    const EdgeList again = rmat_graph(10, 4'000, 11);
    ASSERT_EQ(again.num_edges(), base.num_edges());
    for (std::size_t i = 0; i < base.num_edges(); ++i)
      ASSERT_EQ(again.edges()[i], base.edges()[i]);
  }
}

TEST(Rmat, RejectsBadParameters) {
  EXPECT_THROW(rmat_graph(0, 10, 1), CheckFailure);
  EXPECT_THROW(rmat_graph(40, 10, 1), CheckFailure);
  EXPECT_THROW(rmat_graph(8, 10, 1, 0.9, 0.2, 0.2, 0.2), CheckFailure);
  EXPECT_THROW(rmat_graph(8, 10, 1, -0.1, 0.4, 0.4, 0.3), CheckFailure);
}

// ------------------------------------------------------- Barabasi-Albert ---

TEST(BarabasiAlbert, ShapeAndSimplicity) {
  const EdgeList el = barabasi_albert(1'000, 3, 7);
  EXPECT_EQ(el.num_vertices(), 1'000u);
  const CsrGraph g = CsrGraph::from_edges(el);
  EXPECT_TRUE(validate_csr(g).empty());
  // Seed clique C(4,2)=6 edges + ~3 per subsequent vertex.
  EXPECT_GE(g.num_edges(), 6u + 3 * (1'000 - 4) - 50);
  EXPECT_EQ(count_components(g), 1u);
}

TEST(BarabasiAlbert, PreferentialAttachmentSkew) {
  const CsrGraph g = CsrGraph::from_edges(barabasi_albert(3'000, 2, 9));
  const DegreeStats s = degree_stats(g);
  EXPECT_GT(static_cast<double>(s.max_degree), 5.0 * s.avg_degree);
}

TEST(BarabasiAlbert, DeterministicInSeed) {
  const EdgeList a = barabasi_albert(500, 2, 3);
  const EdgeList b = barabasi_albert(500, 2, 3);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.num_edges(); ++i)
    EXPECT_EQ(a.edges()[i], b.edges()[i]);
}

TEST(BarabasiAlbert, RejectsBadParameters) {
  EXPECT_THROW(barabasi_albert(5, 0, 1), CheckFailure);
  EXPECT_THROW(barabasi_albert(3, 3, 1), CheckFailure);
}

}  // namespace
}  // namespace pargreedy
