// Differential fuzzing: randomized inputs with randomized shapes, checked
// against independent reference implementations (std:: algorithms, brute
// force, or the sequential greedy oracle). Complements the hand-picked
// cases in the per-module suites with breadth: many seeds, ragged sizes,
// skewed distributions, and forced-parallel execution.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/matching/matching.hpp"
#include "core/matching/verify.hpp"
#include "core/mis/mis.hpp"
#include "core/mis/verify.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "parallel/arch.hpp"
#include "parallel/counting_sort.hpp"
#include "parallel/pack.hpp"
#include "parallel/scan.hpp"
#include "random/hash.hpp"
#include "random/permutation.hpp"

namespace pargreedy {
namespace {

struct FuzzItem {
  uint32_t key;
  uint32_t tag;
  friend bool operator==(const FuzzItem&, const FuzzItem&) = default;
};

class Fuzz : public ::testing::TestWithParam<uint64_t> {
 protected:
  uint64_t seed() const { return GetParam(); }
  // Ragged sizes around the parallel/sequential thresholds.
  int64_t fuzz_size(uint64_t salt) const {
    const uint64_t s = hash64(seed(), salt);
    const int64_t bases[] = {1,   7,    255,  256,  257,   511,
                             512, 1023, 4096, 9999, 65537, 100'000};
    const int64_t base = bases[s % (sizeof bases / sizeof bases[0])];
    return base + static_cast<int64_t>((s >> 32) % 7) - 3 < 0
               ? base
               : base + static_cast<int64_t>((s >> 32) % 7) - 3;
  }
};

TEST_P(Fuzz, ScanMatchesStdPartialSum) {
  ScopedNumWorkers guard(1 + seed() % 5);
  const int64_t n = fuzz_size(1);
  std::vector<int64_t> in(static_cast<std::size_t>(n));
  for (int64_t i = 0; i < n; ++i)
    in[static_cast<std::size_t>(i)] = static_cast<int64_t>(
        hash64(seed(), static_cast<uint64_t>(i)) % 1'000) - 500;
  std::vector<int64_t> expect(in.size());
  std::exclusive_scan(in.begin(), in.end(), expect.begin(), int64_t{0});
  std::vector<int64_t> out(in.size());
  exclusive_scan(std::span<const int64_t>(in), std::span<int64_t>(out));
  EXPECT_EQ(out, expect);
}

TEST_P(Fuzz, PackMatchesStdCopyIf) {
  ScopedNumWorkers guard(1 + seed() % 5);
  const int64_t n = fuzz_size(2);
  std::vector<uint64_t> in(static_cast<std::size_t>(n));
  for (int64_t i = 0; i < n; ++i)
    in[static_cast<std::size_t>(i)] = hash64(seed() + 1, uint64_t(i));
  const uint64_t threshold = hash64(seed(), 999);
  auto keep = [&](int64_t i) {
    return in[static_cast<std::size_t>(i)] < threshold;
  };
  std::vector<uint64_t> expect;
  for (int64_t i = 0; i < n; ++i)
    if (keep(i)) expect.push_back(in[static_cast<std::size_t>(i)]);
  EXPECT_EQ(pack(std::span<const uint64_t>(in), keep), expect);
}

TEST_P(Fuzz, CountingSortMatchesStdStableSort) {
  ScopedNumWorkers guard(1 + seed() % 5);
  const int64_t n = fuzz_size(3);
  const int64_t buckets = 1 + static_cast<int64_t>(hash64(seed(), 4) % 300);
  std::vector<FuzzItem> in(static_cast<std::size_t>(n));
  for (int64_t i = 0; i < n; ++i)
    in[static_cast<std::size_t>(i)] = FuzzItem{
        static_cast<uint32_t>(hash64(seed() + 2, uint64_t(i)) %
                              static_cast<uint64_t>(buckets)),
        static_cast<uint32_t>(i)};
  std::vector<FuzzItem> out(in.size());
  counting_sort(std::span<const FuzzItem>(in), std::span<FuzzItem>(out),
                buckets,
                [](const FuzzItem& it) { return static_cast<int64_t>(it.key); });
  std::vector<FuzzItem> expect = in;
  std::stable_sort(expect.begin(), expect.end(),
                   [](const FuzzItem& a, const FuzzItem& b) {
                     return a.key < b.key;
                   });
  EXPECT_EQ(out, expect);
}

TEST_P(Fuzz, PermutationSortAgreesWithStdSort) {
  ScopedNumWorkers guard(1 + seed() % 5);
  const uint64_t n = static_cast<uint64_t>(fuzz_size(5));
  std::vector<uint32_t> items(n);
  std::iota(items.begin(), items.end(), 0);
  std::vector<uint64_t> keys(n);
  for (uint64_t i = 0; i < n; ++i)
    keys[i] = hash64(seed() + 3, i) % 97;  // heavy ties
  std::vector<uint32_t> expect = items;
  std::sort(expect.begin(), expect.end(), [&](uint32_t a, uint32_t b) {
    return keys[a] != keys[b] ? keys[a] < keys[b] : a < b;
  });
  parallel_sort_by_key(std::span<uint32_t>(items), keys);
  EXPECT_EQ(items, expect);
}

TEST_P(Fuzz, RandomMultigraphNormalizesToSimpleGraph) {
  // Arbitrary multigraph soup in, canonical simple graph out.
  const uint64_t n = 2 + hash64(seed(), 6) % 300;
  EdgeList el(n);
  const uint64_t edges = hash64(seed(), 7) % 3'000;
  for (uint64_t i = 0; i < edges; ++i) {
    el.add(static_cast<VertexId>(hash64(seed(), 100 + 2 * i) % n),
           static_cast<VertexId>(hash64(seed(), 101 + 2 * i) % n));
  }
  const CsrGraph g = CsrGraph::from_edges(el);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_LT(g.edge(e).u, g.edge(e).v);
    if (e > 0) {
      EXPECT_TRUE(g.edge(e - 1) < g.edge(e));
    }
  }
}

TEST_P(Fuzz, GreedyOracleOnArbitraryMultigraphSoup) {
  // End-to-end: soup -> CSR -> all MIS/MM variants == sequential oracle.
  ScopedNumWorkers guard(1 + seed() % 5);
  const uint64_t n = 2 + hash64(seed(), 8) % 400;
  EdgeList el(n);
  const uint64_t edges = hash64(seed(), 9) % 4'000;
  for (uint64_t i = 0; i < edges; ++i) {
    el.add(static_cast<VertexId>(hash64(seed(), 200 + 2 * i) % n),
           static_cast<VertexId>(hash64(seed(), 201 + 2 * i) % n));
  }
  const CsrGraph g = CsrGraph::from_edges(el);
  const VertexOrder vo = VertexOrder::random(g.num_vertices(), seed() + 11);
  const EdgeOrder eo = EdgeOrder::random(g.num_edges(), seed() + 12);
  const uint64_t vwindow = 1 + hash64(seed(), 13) % (g.num_vertices() + 1);
  const uint64_t ewindow = 1 + hash64(seed(), 14) % (g.num_edges() + 2);

  const MisResult mis_ref = mis_sequential(g, vo);
  EXPECT_TRUE(is_maximal_independent_set(g, mis_ref.in_set));
  EXPECT_EQ(mis_parallel_naive(g, vo).in_set, mis_ref.in_set);
  EXPECT_EQ(mis_rootset(g, vo).in_set, mis_ref.in_set);
  EXPECT_EQ(mis_prefix(g, vo, vwindow).in_set, mis_ref.in_set);
  EXPECT_EQ(mis_speculative(g, vo, vwindow).in_set, mis_ref.in_set);

  const MatchResult mm_ref = mm_sequential(g, eo);
  EXPECT_TRUE(is_maximal_matching(g, mm_ref.in_matching));
  EXPECT_EQ(mm_parallel_naive(g, eo).in_matching, mm_ref.in_matching);
  EXPECT_EQ(mm_rootset(g, eo).in_matching, mm_ref.in_matching);
  EXPECT_EQ(mm_prefix(g, eo, ewindow).in_matching, mm_ref.in_matching);
  EXPECT_EQ(mm_speculative(g, eo, ewindow).in_matching, mm_ref.in_matching);
}

TEST_P(Fuzz, DisconnectedAndDegenerateShapes) {
  // Unions of tiny components + isolated vertices; stress boundary logic.
  const uint64_t blocks = 1 + hash64(seed(), 15) % 8;
  EdgeList el(20 * blocks + 10);  // 10 extra isolated vertices
  for (uint64_t b = 0; b < blocks; ++b) {
    const VertexId base = static_cast<VertexId>(20 * b);
    switch (hash64(seed(), 16 + b) % 4) {
      case 0:  // tiny clique
        for (VertexId u = 0; u < 5; ++u)
          for (VertexId v = u + 1; v < 5; ++v) el.add(base + u, base + v);
        break;
      case 1:  // tiny path
        for (VertexId v = 1; v < 8; ++v) el.add(base + v - 1, base + v);
        break;
      case 2:  // tiny star
        for (VertexId v = 1; v < 9; ++v) el.add(base, base + v);
        break;
      default:  // single edge
        el.add(base, base + 1);
    }
  }
  const CsrGraph g = CsrGraph::from_edges(el);
  const VertexOrder vo = VertexOrder::random(g.num_vertices(), seed() + 21);
  const EdgeOrder eo = EdgeOrder::random(g.num_edges(), seed() + 22);
  EXPECT_EQ(mis_rootset(g, vo).in_set, mis_sequential(g, vo).in_set);
  EXPECT_EQ(mm_rootset(g, eo).in_matching, mm_sequential(g, eo).in_matching);
  EXPECT_TRUE(
      is_maximal_independent_set(g, mis_sequential(g, vo).in_set));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace pargreedy
