// Unit tests for Algorithm 1, the sequential greedy MIS — the algorithm
// that *defines* the lexicographically-first MIS every parallel variant
// must reproduce. Tested on small graphs with hand-computed answers and on
// families against the MIS definition.
#include <gtest/gtest.h>

#include <vector>

#include "core/mis/mis.hpp"
#include "core/mis/verify.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "support/check.hpp"

namespace pargreedy {
namespace {

TEST(MisSequential, PathWithIdentityOrderTakesAlternateVertices) {
  // Path 0-1-2-3-4-5 processed 0,1,2,...: greedy takes 0, skips 1, takes 2,
  // skips 3, takes 4, skips 5.
  const CsrGraph g = CsrGraph::from_edges(path_graph(6));
  const MisResult r = mis_sequential(g, VertexOrder::identity(6));
  EXPECT_EQ(r.members(), (std::vector<VertexId>{0, 2, 4}));
  EXPECT_EQ(r.size(), 3u);
}

TEST(MisSequential, PathWithReverseOrder) {
  // Processed 5,4,3,...: takes 5, skips 4, takes 3, skips 2, takes 1,
  // skips 0.
  const CsrGraph g = CsrGraph::from_edges(path_graph(6));
  const VertexOrder order = VertexOrder::from_permutation({5, 4, 3, 2, 1, 0});
  const MisResult r = mis_sequential(g, order);
  EXPECT_EQ(r.members(), (std::vector<VertexId>{1, 3, 5}));
}

TEST(MisSequential, StarCenterFirstGivesSingleton) {
  const CsrGraph g = CsrGraph::from_edges(star_graph(8));
  const MisResult r = mis_sequential(g, VertexOrder::identity(8));
  EXPECT_EQ(r.members(), (std::vector<VertexId>{0}));
}

TEST(MisSequential, StarCenterLastGivesLeaves) {
  const CsrGraph g = CsrGraph::from_edges(star_graph(8));
  const VertexOrder order =
      VertexOrder::from_permutation({1, 2, 3, 4, 5, 6, 7, 0});
  const MisResult r = mis_sequential(g, order);
  EXPECT_EQ(r.members(), (std::vector<VertexId>{1, 2, 3, 4, 5, 6, 7}));
}

TEST(MisSequential, CompleteGraphTakesFirstVertexOnly) {
  const CsrGraph g = CsrGraph::from_edges(complete_graph(10));
  const VertexOrder order = VertexOrder::from_permutation(
      {7, 3, 9, 0, 1, 2, 4, 5, 6, 8});
  const MisResult r = mis_sequential(g, order);
  EXPECT_EQ(r.members(), (std::vector<VertexId>{7}));
}

TEST(MisSequential, EdgelessGraphTakesEverything) {
  const CsrGraph g = CsrGraph::from_edges(EdgeList(20));
  const MisResult r = mis_sequential(g, VertexOrder::random(20, 1));
  EXPECT_EQ(r.size(), 20u);
}

TEST(MisSequential, EmptyGraph) {
  const CsrGraph g = CsrGraph::from_edges(EdgeList(0));
  const MisResult r = mis_sequential(g, VertexOrder::identity(0));
  EXPECT_EQ(r.size(), 0u);
  EXPECT_TRUE(r.members().empty());
}

TEST(MisSequential, CycleEvenAndOdd) {
  // C6 with identity order: take 0, skip 1, take 2, skip 3, take 4, skip 5.
  const MisResult even =
      mis_sequential(CsrGraph::from_edges(cycle_graph(6)),
                     VertexOrder::identity(6));
  EXPECT_EQ(even.members(), (std::vector<VertexId>{0, 2, 4}));
  // C5: take 0, skip 1, take 2, skip 3, and 4 is adjacent to 0 -> skip.
  const MisResult odd = mis_sequential(CsrGraph::from_edges(cycle_graph(5)),
                                       VertexOrder::identity(5));
  EXPECT_EQ(odd.members(), (std::vector<VertexId>{0, 2}));
}

TEST(MisSequential, BipartiteFirstSideWins) {
  // K_{3,4} with identity order: vertex 0 (left) kills the whole right
  // side, then 1 and 2 are free.
  const CsrGraph g = CsrGraph::from_edges(complete_bipartite(3, 4));
  const MisResult r = mis_sequential(g, VertexOrder::identity(7));
  EXPECT_EQ(r.members(), (std::vector<VertexId>{0, 1, 2}));
}

TEST(MisSequential, RejectsMismatchedOrderSize) {
  const CsrGraph g = CsrGraph::from_edges(path_graph(5));
  EXPECT_THROW(mis_sequential(g, VertexOrder::identity(4)), CheckFailure);
}

TEST(MisSequential, ResultPassesDefinitionOnFamilies) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    for (const EdgeList& el :
         {random_graph_nm(400, 1'600, seed), rmat_graph(9, 1'500, seed),
          grid_graph(20, 20), barabasi_albert(300, 3, seed)}) {
      const CsrGraph g = CsrGraph::from_edges(el);
      const VertexOrder order = VertexOrder::random(g.num_vertices(), seed);
      const MisResult r = mis_sequential(g, order);
      EXPECT_TRUE(is_independent_set(g, r.in_set));
      EXPECT_TRUE(is_maximal(g, r.in_set));
      EXPECT_TRUE(is_lex_first_mis(g, order, r.in_set));
    }
  }
}

TEST(MisSequential, GreedyInvariantHoldsVertexByVertex) {
  // Direct check of the defining property: v is in the MIS iff no earlier
  // neighbor is in the MIS.
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(300, 1'200, 5));
  const VertexOrder order = VertexOrder::random(300, 9);
  const MisResult r = mis_sequential(g, order);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    bool earlier_in = false;
    for (VertexId w : g.neighbors(v))
      earlier_in = earlier_in || (order.earlier(w, v) && r.in_set[w]);
    EXPECT_EQ(r.in_set[v] != 0, !earlier_in) << "v=" << v;
  }
}

TEST(MisSequential, ProfileCountsSequentialRounds) {
  const CsrGraph g = CsrGraph::from_edges(path_graph(100));
  const MisResult r =
      mis_sequential(g, VertexOrder::identity(100), ProfileLevel::kCounters);
  EXPECT_EQ(r.profile.rounds, 100u);  // paper normalization: rounds = n
  EXPECT_EQ(r.profile.work_items, 100u);
  EXPECT_GT(r.profile.work_edges, 0u);
}

TEST(MisSequential, MembersAndSizeAgreeWithInSet) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(200, 600, 2));
  const MisResult r = mis_sequential(g, VertexOrder::random(200, 3));
  const std::vector<VertexId> members = r.members();
  EXPECT_EQ(members.size(), r.size());
  std::vector<uint8_t> rebuilt(g.num_vertices(), 0);
  for (VertexId v : members) rebuilt[v] = 1;
  EXPECT_EQ(rebuilt, r.in_set);
}

}  // namespace
}  // namespace pargreedy
