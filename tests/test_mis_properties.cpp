// Property-based tests for the paper's MIS theory:
//   * Theorem 3.5 — dependence length O(log^2 n) w.h.p. for random pi;
//   * adversarial orders exist with Omega(n) dependence length;
//   * Lemma 3.1-flavored degree decay after processing a prefix;
//   * Lemmas 4.3/4.4 — small prefixes induce sparse subgraphs.
// These are statistical, so thresholds carry generous constants; they are
// chosen to fail loudly on asymptotic regressions (e.g. a broken
// permutation), not to certify the constants in the paper.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/analysis/priority_dag.hpp"
#include "core/mis/mis.hpp"
#include "core/mis/verify.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "graph/graph_ops.hpp"
#include "support/check.hpp"

namespace pargreedy {
namespace {

double log2d(double x) { return std::log2(x); }

// --------------------------------------------------- dependence length ---

class DependenceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DependenceSweep, RandomOrderGivesPolylogDependenceOnRandomGraph) {
  const uint64_t n = GetParam();
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(n, 5 * n, 1));
  double worst = 0;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    const VertexOrder order = VertexOrder::random(n, seed);
    worst = std::max(worst,
                     static_cast<double>(dependence_length(g, order)));
  }
  // Theorem 3.5: O(log Delta * log n). The observed constant is ~1; allow 4.
  const double bound =
      4.0 * log2d(static_cast<double>(g.max_degree() + 2)) *
      log2d(static_cast<double>(n));
  EXPECT_LT(worst, bound) << "n=" << n;
  EXPECT_GE(worst, 2.0);  // never trivially small on a connected-ish graph
}

TEST_P(DependenceSweep, DependenceGrowsSlowerThanSqrtN) {
  // A scale-free sanity check: for random pi the dependence length must be
  // exponentially smaller than the adversarial Theta(n) witness below.
  const uint64_t n = GetParam();
  const CsrGraph g = CsrGraph::from_edges(path_graph(n));
  const VertexOrder order = VertexOrder::random(n, 7);
  EXPECT_LT(dependence_length(g, order),
            static_cast<uint64_t>(8 * std::sqrt(static_cast<double>(n))));
}

INSTANTIATE_TEST_SUITE_P(Sizes, DependenceSweep,
                         ::testing::Values(256, 1'024, 4'096, 16'384));

TEST(DependenceAdversarial, PathWithIdentityOrderIsLinear) {
  // Identity order on a path: only vertex 0 is a root, and each step
  // unlocks one new root two positions down — Theta(n) steps. This is the
  // P-completeness intuition (Section 1): *some* orders are sequential.
  const uint64_t n = 1'000;
  const CsrGraph g = CsrGraph::from_edges(path_graph(n));
  const uint64_t d = dependence_length(g, VertexOrder::identity(n));
  EXPECT_EQ(d, n / 2);  // add 2i, remove 2i+1, per step
}

TEST(DependenceAdversarial, RandomOrderCrushesThePathWitness) {
  const uint64_t n = 1'000;
  const CsrGraph g = CsrGraph::from_edges(path_graph(n));
  const uint64_t adversarial =
      dependence_length(g, VertexOrder::identity(n));
  const uint64_t random = dependence_length(g, VertexOrder::random(n, 3));
  EXPECT_GT(adversarial, 10 * random);
}

TEST(DependenceAdversarial, CompleteGraphIsOneStepForAnyOrder) {
  // Longest path in the priority DAG is n, but the dependence length is 1:
  // the first vertex removes everything (the paper's Section 3 example).
  const CsrGraph g = CsrGraph::from_edges(complete_graph(30));
  for (uint64_t seed = 0; seed < 3; ++seed)
    EXPECT_EQ(dependence_length(g, VertexOrder::random(30, seed)), 1u);
}

// --------------------------------------- Lemma 3.1: prefix degree decay ---

TEST(PrefixDegreeDecay, ProcessingAPrefixCapsRemainingDegree) {
  // Lemma 3.1 with l = 2 ln n: after processing an (l/d)-prefix, remaining
  // vertices have degree <= d w.h.p. Verify the *mechanism* end to end: run
  // the sequential greedy on the prefix only, delete its MIS's neighbors,
  // and measure the residual degree.
  const uint64_t n = 4'000;
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(n, 10 * n, 2));
  const VertexOrder order = VertexOrder::random(n, 5);
  const double ell = 2.0 * std::log(static_cast<double>(n));
  const uint64_t d = 40;  // target degree bound
  const uint64_t prefix = static_cast<uint64_t>(
      std::min(static_cast<double>(n), ell / d * n));

  // Greedy over the prefix only.
  std::vector<uint8_t> dead(n, 0);
  for (uint64_t i = 0; i < prefix; ++i) {
    const VertexId v = order.nth(i);
    if (dead[v]) continue;
    dead[v] = 1;
    for (VertexId w : g.neighbors(v)) dead[w] = 1;
  }
  // All prefix vertices are now decided; the residual graph is the rest.
  for (uint64_t i = 0; i < prefix; ++i) dead[order.nth(i)] = 1;

  uint64_t max_residual_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (dead[v]) continue;
    uint64_t deg = 0;
    for (VertexId w : g.neighbors(v)) deg += dead[w] ? 0 : 1;
    max_residual_degree = std::max(max_residual_degree, deg);
  }
  EXPECT_LE(max_residual_degree, d);
}

// ------------------------------------- Lemmas 4.3/4.4: prefix sparsity ---

TEST(PrefixSparsity, SmallPrefixesHaveFewInternalEdges) {
  // delta < k/d => expected internal edges O(k |P|). With k = 1/8 the
  // prefix sub-DAG should have far fewer edges than vertices.
  const uint64_t n = 20'000;
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(n, 10 * n, 3));
  const uint64_t d = degree_stats(g).max_degree;
  const VertexOrder order = VertexOrder::random(n, 4);
  const double k = 0.125;
  const uint64_t prefix_size =
      std::max<uint64_t>(1'000, static_cast<uint64_t>(k / d * n));

  std::vector<uint8_t> in_prefix(n, 0);
  for (uint64_t i = 0; i < prefix_size; ++i) in_prefix[order.nth(i)] = 1;
  uint64_t internal = 0;
  for (const Edge& e : g.edges())
    internal += (in_prefix[e.u] && in_prefix[e.v]) ? 1 : 0;

  // Expected bound ~ k |P|; allow 4x for variance.
  EXPECT_LT(internal, static_cast<uint64_t>(
                          4.0 * k * static_cast<double>(prefix_size) + 16));
}

TEST(PrefixSparsity, MostPrefixVerticesAreIsolatedInThePrefix) {
  // Lemma 4.4: vertices with >= 1 internal edge number O(k |P|).
  const uint64_t n = 20'000;
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(n, 5 * n, 5));
  const uint64_t d = degree_stats(g).max_degree;
  const VertexOrder order = VertexOrder::random(n, 6);
  const double k = 0.125;
  const uint64_t prefix_size =
      std::max<uint64_t>(1'000, static_cast<uint64_t>(k / d * n));

  std::vector<uint8_t> in_prefix(n, 0);
  for (uint64_t i = 0; i < prefix_size; ++i) in_prefix[order.nth(i)] = 1;
  std::vector<uint8_t> touched(n, 0);
  for (const Edge& e : g.edges()) {
    if (in_prefix[e.u] && in_prefix[e.v]) {
      touched[e.u] = 1;
      touched[e.v] = 1;
    }
  }
  uint64_t with_internal = 0;
  for (VertexId v = 0; v < n; ++v) with_internal += touched[v];
  EXPECT_LT(with_internal, static_cast<uint64_t>(
                               8.0 * k * static_cast<double>(prefix_size) +
                               16));
}

// -------------------------------------------- MIS size and set structure ---

class MisSizeBounds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MisSizeBounds, SizeIsWithinClassicalBounds) {
  // Any MIS satisfies n/(Delta+1) <= |MIS| (greedy covers each chosen
  // vertex plus at most Delta neighbors) and is at most the independence
  // number; we check the lower bound and the trivial upper bound n.
  const uint64_t seed = GetParam();
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(2'000, 8'000, seed));
  const VertexOrder order = VertexOrder::random(2'000, seed + 50);
  const MisResult r = mis_sequential(g, order);
  const uint64_t delta = g.max_degree();
  EXPECT_GE(r.size() * (delta + 1), g.num_vertices());
  EXPECT_LE(r.size(), g.num_vertices());
}

TEST_P(MisSizeBounds, DifferentSeedsGiveValidButGenerallyDifferentSets) {
  const uint64_t seed = GetParam();
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(1'000, 4'000, 9));
  const MisResult a = mis_sequential(g, VertexOrder::random(1'000, seed));
  const MisResult b =
      mis_sequential(g, VertexOrder::random(1'000, seed + 1'000));
  EXPECT_TRUE(is_maximal_independent_set(g, a.in_set));
  EXPECT_TRUE(is_maximal_independent_set(g, b.in_set));
  EXPECT_NE(a.in_set, b.in_set);  // astronomically unlikely to collide
}

INSTANTIATE_TEST_SUITE_P(Seeds, MisSizeBounds, ::testing::Range<uint64_t>(0, 5));

// ------------------------------------- work bounds of the rootset version ---

TEST(RootsetWork, TotalWorkIsLinearInEdges) {
  // Lemma 4.2: O(n + m) work. The profiled edge inspections should be a
  // small multiple of 2m + n regardless of the dependence length.
  for (uint64_t seed = 0; seed < 3; ++seed) {
    const CsrGraph g =
        CsrGraph::from_edges(random_graph_nm(3'000, 15'000, seed));
    const VertexOrder order = VertexOrder::random(3'000, seed + 7);
    const MisResult r = mis_rootset(g, order, ProfileLevel::kCounters);
    EXPECT_LE(r.profile.work_edges, 3 * (2 * g.num_edges()) + g.num_vertices())
        << "seed " << seed;
  }
}

TEST(NaiveWork, GrowsWithDependenceLength) {
  // The naive implementation re-scans every undecided vertex each step, so
  // its work exceeds the rootset implementation's on a deep instance.
  const uint64_t n = 2'000;
  const CsrGraph g = CsrGraph::from_edges(path_graph(n));
  const VertexOrder order = VertexOrder::identity(n);  // Theta(n) steps
  const MisResult naive =
      mis_parallel_naive(g, order, ProfileLevel::kCounters);
  const MisResult rootset = mis_rootset(g, order, ProfileLevel::kCounters);
  EXPECT_GT(naive.profile.work_items, 20 * rootset.profile.work_items);
}

}  // namespace
}  // namespace pargreedy
