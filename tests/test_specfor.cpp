// Unit tests for the generic deterministic-reservations engine
// (src/specfor/speculative_for.hpp) — the abstraction of Algorithm 3 that
// the extension algorithms (spanning forest, coloring) are built on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "parallel/arch.hpp"
#include "parallel/atomics.hpp"
#include "specfor/speculative_for.hpp"
#include "support/check.hpp"

namespace pargreedy {
namespace {

// A trivially parallel step: every iteration resolves immediately.
struct IndependentStep {
  std::vector<int>& log;
  std::atomic<int64_t> reserves{0};
  bool reserve(int64_t) {
    reserves.fetch_add(1);
    return true;
  }
  bool commit(int64_t i) {
    std::atomic_ref<int>(log[static_cast<std::size_t>(i)]).fetch_add(1);
    return true;
  }
};

TEST(SpecFor, RunsEveryIterationExactlyOnce) {
  ScopedNumWorkers guard(4);
  const int64_t n = 10'000;
  std::vector<int> log(n, 0);
  IndependentStep step{log};
  const SpecForStats stats = speculative_for(step, 0, n, 512);
  for (int64_t i = 0; i < n; ++i) EXPECT_EQ(log[i], 1) << "i=" << i;
  EXPECT_EQ(stats.attempts, static_cast<uint64_t>(n));  // nothing retried
  EXPECT_EQ(stats.rounds, static_cast<uint64_t>((n + 511) / 512));
}

TEST(SpecFor, WindowOneIsSequential) {
  const int64_t n = 100;
  std::vector<int> log(n, 0);
  IndependentStep step{log};
  const SpecForStats stats = speculative_for(step, 0, n, 1);
  EXPECT_EQ(stats.rounds, static_cast<uint64_t>(n));
  EXPECT_EQ(stats.attempts, static_cast<uint64_t>(n));
}

TEST(SpecFor, WindowClampsToRangeLength) {
  const int64_t n = 10;
  std::vector<int> log(n, 0);
  IndependentStep step{log};
  const SpecForStats stats = speculative_for(step, 0, n, 1'000'000);
  EXPECT_EQ(stats.rounds, 1u);
}

TEST(SpecFor, EmptyRange) {
  std::vector<int> log;
  IndependentStep step{log};
  const SpecForStats stats = speculative_for(step, 5, 5, 8);
  EXPECT_EQ(stats.rounds, 0u);
  EXPECT_EQ(stats.attempts, 0u);
  EXPECT_THROW(speculative_for(step, 5, 3, 8), CheckFailure);
}

TEST(SpecFor, NonZeroStart) {
  const int64_t n = 50;
  std::vector<int> log(n, 0);
  IndependentStep step{log};
  speculative_for(step, 10, 40, 7);
  for (int64_t i = 0; i < n; ++i)
    EXPECT_EQ(log[i], (i >= 10 && i < 40) ? 1 : 0);
}

// A step where reserve() drops already-resolved iterations: models the
// "vertex already removed" path of the greedy loops.
struct DropStep {
  std::vector<uint8_t>& drop;
  std::vector<int>& log;
  bool reserve(int64_t i) { return !drop[static_cast<std::size_t>(i)]; }
  bool commit(int64_t i) {
    std::atomic_ref<int>(log[static_cast<std::size_t>(i)]).fetch_add(1);
    return true;
  }
};

TEST(SpecFor, ReserveFalseSkipsCommit) {
  const int64_t n = 1'000;
  std::vector<uint8_t> drop(n, 0);
  for (int64_t i = 0; i < n; i += 3) drop[static_cast<std::size_t>(i)] = 1;
  std::vector<int> log(n, 0);
  DropStep step{drop, log};
  speculative_for(step, 0, n, 64);
  for (int64_t i = 0; i < n; ++i) EXPECT_EQ(log[i], drop[i] ? 0 : 1);
}

// The canonical interference pattern: items claim a shared slot by
// priority; losers must retry in a later round and the final owner of each
// slot must be the *smallest* item that wanted it — the sequential-greedy
// answer — regardless of worker count.
struct SlotStep {
  std::vector<std::atomic<int64_t>>& reservation;
  std::vector<int64_t>& owner;  // final owner per slot
  std::vector<int64_t>& wants;  // wants[i] = slot item i bids on
  static constexpr int64_t kFree = INT64_MAX;

  bool reserve(int64_t i) {
    const int64_t slot = wants[static_cast<std::size_t>(i)];
    if (owner[static_cast<std::size_t>(slot)] != -1) return false;  // taken
    atomic_write_min(reservation[static_cast<std::size_t>(slot)], i);
    return true;
  }
  bool commit(int64_t i) {
    const int64_t slot = wants[static_cast<std::size_t>(i)];
    if (reservation[static_cast<std::size_t>(slot)].load() != i)
      return false;  // lost the bid: retry next round
    owner[static_cast<std::size_t>(slot)] = i;
    reservation[static_cast<std::size_t>(slot)].store(kFree);
    return true;
  }
};

TEST(SpecFor, PriorityReservationsMatchSequentialGreedy) {
  ScopedNumWorkers guard(4);
  const int64_t n = 5'000;
  const int64_t slots = 257;
  std::vector<int64_t> wants(n);
  for (int64_t i = 0; i < n; ++i)
    wants[static_cast<std::size_t>(i)] = (i * 2'654'435'761u) % slots;

  // Sequential reference: first item to want a slot owns it.
  std::vector<int64_t> expect(slots, -1);
  for (int64_t i = 0; i < n; ++i)
    if (expect[static_cast<std::size_t>(wants[i])] == -1)
      expect[static_cast<std::size_t>(wants[i])] = i;

  for (int64_t window : {int64_t{1}, int64_t{64}, int64_t{1'024}, n}) {
    std::vector<std::atomic<int64_t>> reservation(slots);
    for (auto& r : reservation) r.store(SlotStep::kFree);
    std::vector<int64_t> owner(slots, -1);
    SlotStep step{reservation, owner, wants};
    speculative_for(step, 0, n, window);
    EXPECT_EQ(owner, expect) << "window=" << window;
  }
}

TEST(SpecFor, RetriesAreCountedInAttempts) {
  // With a single hot slot and a full window, every round commits exactly
  // one item and the rest retry: attempts ~ n^2/2, rounds = n.
  const int64_t n = 64;
  std::vector<int64_t> wants(n, 0);  // everyone wants slot 0
  std::vector<std::atomic<int64_t>> reservation(1);
  reservation[0].store(SlotStep::kFree);
  std::vector<int64_t> owner(1, -1);
  SlotStep step{reservation, owner, wants};
  const SpecForStats stats = speculative_for(step, 0, n, n);
  EXPECT_EQ(owner[0], 0);  // smallest index wins
  // Item 0 wins round 1; items 1.. then *drop* (reserve false) in round 2.
  EXPECT_EQ(stats.rounds, 2u);
  EXPECT_EQ(stats.attempts, static_cast<uint64_t>(2 * n - 1));
}

TEST(SpecFor, DeterministicAcrossWorkerCounts) {
  const int64_t n = 3'000;
  const int64_t slots = 101;
  std::vector<int64_t> wants(n);
  for (int64_t i = 0; i < n; ++i)
    wants[static_cast<std::size_t>(i)] = (i * 7) % slots;
  std::vector<int64_t> base;
  for (int workers : {1, 2, 4}) {
    ScopedNumWorkers guard(workers);
    std::vector<std::atomic<int64_t>> reservation(slots);
    for (auto& r : reservation) r.store(SlotStep::kFree);
    std::vector<int64_t> owner(slots, -1);
    SlotStep step{reservation, owner, wants};
    speculative_for(step, 0, n, 128);
    if (base.empty()) {
      base = owner;
    } else {
      EXPECT_EQ(owner, base) << "workers=" << workers;
    }
  }
}

}  // namespace
}  // namespace pargreedy
