#!/usr/bin/env python3
"""Unit tests for scripts/validate_events_json.py — the flight-recorder
validator guarding the CI bench-capture lane's event artifacts. Invoked
through CTest (stdlib unittest, no third-party dependencies).
"""
import importlib.util
import json
import tempfile
import unittest
from pathlib import Path

SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"


def load(name):
    spec = importlib.util.spec_from_file_location(name, SCRIPTS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


validate = load("validate_events_json")


def event(kind, ts=10, batch_id=1, txn_id=0, shard_id=-1, arg0=0, arg1=0):
    return {"ts": ts, "tid": 0, "kind": kind, "batch_id": batch_id,
            "txn_id": txn_id, "shard_id": shard_id, "arg0": arg0,
            "arg1": arg1}


def doc(events, reason="on_demand", overwritten=0):
    return {"schema": "pargreedy-events-v1", "reason": reason,
            "overwritten": overwritten, "events": events}


GOOD = doc([
    event("batch.begin", ts=0, arg0=64),
    event("shard.exchange_round", ts=1, shard_id=0, arg0=1),
    event("shard.exchange_round", ts=2, shard_id=1, arg0=1),
    event("shard.exchange_round", ts=3, shard_id=2, arg0=1),
    event("shard.exchange_round", ts=4, shard_id=3, arg0=1),
    event("repro.round", ts=5, arg0=12, arg1=3),
    event("batch.end", ts=6, arg0=2, arg1=3),
])


class EventsFileTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.dir = Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def write(self, content, name="EVENTS_demo.json"):
        path = self.dir / name
        path.write_text(
            content if isinstance(content, str) else json.dumps(content))
        return path

    def run_main(self, *argv):
        return validate.main(["validate_events_json", *map(str, argv)])


class ValidateEventsJsonTest(EventsFileTest):
    def test_accepts_well_formed_recording(self):
        self.assertEqual(self.run_main(self.write(GOOD)), 0)

    def test_missing_file_fails(self):
        self.assertEqual(self.run_main(self.dir / "EVENTS_absent.json"), 1)

    def test_malformed_json_fails(self):
        self.assertEqual(self.run_main(self.write("{]")), 1)

    def test_top_level_list_fails(self):
        self.assertEqual(self.run_main(self.write(GOOD["events"])), 1)

    def test_wrong_schema_fails(self):
        self.assertEqual(
            self.run_main(self.write(dict(GOOD, schema="v0"))), 1)

    def test_empty_events_fails(self):
        self.assertEqual(self.run_main(self.write(doc([]))), 1)

    def test_missing_overwritten_fails(self):
        bad = dict(GOOD)
        del bad["overwritten"]
        self.assertEqual(self.run_main(self.write(bad)), 1)

    def test_empty_kind_fails(self):
        self.assertEqual(
            self.run_main(self.write(doc([event("")]))), 1)

    def test_negative_ts_fails(self):
        self.assertEqual(
            self.run_main(self.write(doc([event("x", ts=-1)]))), 1)

    def test_shard_sentinel_minus_one_passes(self):
        self.assertEqual(
            self.run_main(self.write(doc([event("x", shard_id=-1)]))), 0)

    def test_shard_below_sentinel_fails(self):
        self.assertEqual(
            self.run_main(self.write(doc([event("x", shard_id=-2)]))), 1)

    def test_boolean_field_fails(self):
        self.assertEqual(
            self.run_main(self.write(doc([event("x", arg0=True)]))), 1)

    def test_decreasing_timestamps_fail(self):
        bad = doc([event("a", ts=5), event("b", ts=4)])
        self.assertEqual(self.run_main(self.write(bad)), 1)

    def test_require_satisfied_passes(self):
        path = self.write(GOOD)
        self.assertEqual(
            self.run_main(path, "--require",
                          "batch.begin,repro.round,batch.end"), 0)

    def test_require_missing_kind_fails(self):
        self.assertEqual(
            self.run_main(self.write(GOOD), "--require", "never.emitted"), 1)

    def test_require_applies_to_every_file(self):
        other = doc([event("batch.begin")])
        self.assertEqual(
            self.run_main(self.write(GOOD),
                          self.write(other, "EVENTS_other.json"),
                          "--require", "repro.round"), 1)

    def test_require_chain_satisfied_passes(self):
        self.assertEqual(
            self.run_main(self.write(GOOD), "--require-chain", "4"), 0)

    def test_require_chain_too_wide_fails(self):
        self.assertEqual(
            self.run_main(self.write(GOOD), "--require-chain", "5"), 1)

    def test_require_chain_ignores_unbatched_events(self):
        # shard context without a batch id is not a correlated chain.
        loose = doc([event("x", batch_id=0, shard_id=s, ts=s)
                     for s in range(4)])
        self.assertEqual(
            self.run_main(self.write(loose), "--require-chain", "2"), 1)

    def test_one_bad_file_fails_the_set(self):
        self.assertEqual(
            self.run_main(self.write(GOOD),
                          self.write("{]", "EVENTS_bad.json")), 1)

    def test_no_files_is_usage_error(self):
        self.assertEqual(self.run_main(), 2)

    def test_require_without_argument_is_usage_error(self):
        self.assertEqual(self.run_main(self.write(GOOD), "--require"), 2)

    def test_require_chain_non_integer_is_usage_error(self):
        self.assertEqual(
            self.run_main(self.write(GOOD), "--require-chain", "wide"), 2)


if __name__ == "__main__":
    unittest.main(verbosity=2)
