// Unit tests for the transactional layer (src/txn/): snapshot/rollback
// bit-exactness, commit equivalence, nested savepoints, the version ring,
// the epoch staleness guard, and the overlay undo journal itself.
//
// The heavy randomized coverage lives in test_txn_differential.cpp; this
// suite pins down the API contract and the corner cases one at a time.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/mis/mis.hpp"
#include "core/matching/matching.hpp"
#include "core/priority/priority_source.hpp"
#include "dynamic/dynamic_matching.hpp"
#include "dynamic/dynamic_mis.hpp"
#include "dynamic/undo_log.hpp"
#include "dynamic/update_batch.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "support/check.hpp"
#include "support/thread_annotations.hpp"
#include "txn/epoch.hpp"
#include "txn/published_state.hpp"
#include "txn/transaction.hpp"
#include "txn/version_ring.hpp"

namespace pargreedy {
namespace {

// --- full-state capture helpers -------------------------------------

/// Everything the abort-equivalence criterion compares for DynamicMis:
/// live graph (canonical CSR incl. weights), solution, activity, cached
/// priority keys, materialized order, lifetime stats.
struct MisState {
  std::vector<Edge> edges;
  std::vector<Weight> edge_weights;
  std::vector<Weight> vertex_weights;
  std::vector<uint8_t> solution;
  std::vector<uint8_t> active;
  std::vector<PriorityKey> keys;
  std::vector<uint32_t> order_ranks;
  BatchStats lifetime;
};

MisState capture(const DynamicMis& dm) {
  MisState s;
  const CsrGraph g = dm.graph().to_csr();
  s.edges.assign(g.edges().begin(), g.edges().end());
  s.edge_weights.assign(g.edge_weights().begin(), g.edge_weights().end());
  s.vertex_weights.assign(g.vertex_weights().begin(),
                          g.vertex_weights().end());
  s.solution = dm.solution();
  s.active.resize(dm.num_vertices());
  for (VertexId v = 0; v < dm.num_vertices(); ++v)
    s.active[v] = dm.active(v) ? 1 : 0;
  if (dm.has_priority_source()) {
    s.keys.resize(dm.num_vertices());
    for (VertexId v = 0; v < dm.num_vertices(); ++v)
      s.keys[v] = dm.cached_vertex_key(v);
  }
  s.order_ranks.assign(dm.order().ranks().begin(), dm.order().ranks().end());
  s.lifetime = dm.lifetime_stats();
  return s;
}

void expect_state_eq(const MisState& a, const MisState& b,
                     bool compare_lifetime = true) {
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.edge_weights, b.edge_weights);
  EXPECT_EQ(a.vertex_weights, b.vertex_weights);
  EXPECT_EQ(a.solution, b.solution);
  EXPECT_EQ(a.active, b.active);
  EXPECT_EQ(a.keys, b.keys);
  EXPECT_EQ(a.order_ranks, b.order_ranks);
  if (compare_lifetime) {
    EXPECT_EQ(a.lifetime, b.lifetime);
  }
}

/// Matching counterpart; cached keys are captured per live *edge* (not
/// slot) so states stay comparable across engines with different
/// compaction histories.
struct MmState {
  std::vector<Edge> edges;
  std::vector<Weight> edge_weights;
  std::vector<Weight> vertex_weights;
  std::vector<VertexId> solution;
  std::vector<uint8_t> active;
  std::vector<std::pair<Edge, PriorityKey>> keys;
  std::vector<Edge> matched;
  BatchStats lifetime;
};

MmState capture(const DynamicMatching& dm) {
  MmState s;
  const CsrGraph g = dm.graph().to_csr();
  s.edges.assign(g.edges().begin(), g.edges().end());
  s.edge_weights.assign(g.edge_weights().begin(), g.edge_weights().end());
  s.vertex_weights.assign(g.vertex_weights().begin(),
                          g.vertex_weights().end());
  s.solution = dm.solution();
  s.active.resize(dm.num_vertices());
  for (VertexId v = 0; v < dm.num_vertices(); ++v)
    s.active[v] = dm.active(v) ? 1 : 0;
  for (EdgeSlot slot = 0; slot < dm.graph().slot_bound(); ++slot)
    if (dm.graph().slot_live(slot))
      s.keys.emplace_back(dm.graph().slot_edge(slot),
                          dm.cached_slot_key(slot));
  std::sort(s.keys.begin(), s.keys.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  s.matched = dm.matched_edges();
  s.lifetime = dm.lifetime_stats();
  return s;
}

void expect_state_eq(const MmState& a, const MmState& b,
                     bool compare_lifetime = true) {
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.edge_weights, b.edge_weights);
  EXPECT_EQ(a.vertex_weights, b.vertex_weights);
  EXPECT_EQ(a.solution, b.solution);
  EXPECT_EQ(a.active, b.active);
  EXPECT_EQ(a.keys, b.keys);
  EXPECT_EQ(a.matched, b.matched);
  if (compare_lifetime) {
    EXPECT_EQ(a.lifetime, b.lifetime);
  }
}

CsrGraph weighted_graph(uint64_t n, uint64_t m, uint64_t seed) {
  CsrGraph g = CsrGraph::from_edges(random_graph_nm(n, m, seed));
  g.set_vertex_weights(quantized_weights(n, seed + 1, 16));
  g.set_edge_weights(quantized_weights(g.num_edges(), seed + 2, 16));
  return g;
}

UpdateBatch mixed_batch(const OverlayGraph& graph, uint64_t scale,
                        uint64_t seed) {
  return UpdateBatch::random_weighted(
      graph.num_vertices(), graph.live_edge_list().edges(),
      /*inserts=*/scale, /*deletes=*/scale / 2 + 1, /*reweights=*/scale,
      /*toggles=*/seed % 3, /*levels=*/16, seed);
}

// --- MIS: abort / commit / savepoints -------------------------------

TEST(TxnMis, AbortRestoresStateBitExactly) {
  DynamicMis dm(EngineOptions::with_source(
      weighted_graph(300, 1200, 7), PrioritySource::weight_hash_tiebreak(11)));
  MisTransaction txn(dm);
  const MisState before = capture(dm);

  txn.begin();
  for (uint64_t i = 0; i < 3; ++i)
    txn.apply(mixed_batch(dm.graph(), 20, 100 + i));
  EXPECT_GT(txn.txn_stats().inserted + txn.txn_stats().deleted +
                txn.txn_stats().reweighted,
            0u);
  txn.abort();

  expect_state_eq(capture(dm), before);
  EXPECT_FALSE(txn.in_transaction());
  EXPECT_EQ(txn.version(), 0u);
}

TEST(TxnMis, CommitMatchesDirectApply) {
  const CsrGraph g = weighted_graph(300, 1200, 8);
  const PrioritySource src = PrioritySource::weight_hash_tiebreak(12);
  DynamicMis txn_engine(EngineOptions::with_source(g, src));
  DynamicMis direct(EngineOptions::with_source(g, src));
  MisTransaction txn(txn_engine);

  for (uint64_t round = 0; round < 5; ++round) {
    const UpdateBatch batch = mixed_batch(direct.graph(), 25, 200 + round);
    txn.begin();
    txn.apply(batch);
    const uint64_t v = txn.commit();
    EXPECT_EQ(v, round + 1);
    direct.apply_batch(batch);
    expect_state_eq(capture(txn_engine), capture(direct),
                    /*compare_lifetime=*/false);
  }
}

TEST(TxnMis, SavepointRollbackUndoesOnlyLaterBatches) {
  DynamicMis dm(EngineOptions::with_source(
      weighted_graph(250, 900, 9), PrioritySource::weight_hash_tiebreak(13)));
  MisTransaction txn(dm);

  txn.begin();
  txn.apply(mixed_batch(dm.graph(), 15, 300));
  const MisState after_b1 = capture(dm);
  const BatchStats stats_b1 = txn.txn_stats();
  const EngineSnapshot sp = txn.savepoint();

  txn.apply(mixed_batch(dm.graph(), 30, 301));
  txn.rollback_to(sp);
  expect_state_eq(capture(dm), after_b1);
  EXPECT_EQ(txn.txn_stats(), stats_b1);

  // The transaction is still live and committable after a rollback.
  txn.apply(mixed_batch(dm.graph(), 10, 302));
  txn.commit();
  EXPECT_EQ(txn.version(), 1u);
}

TEST(TxnMis, NestedSavepointsUnwindLifo) {
  DynamicMis dm(EngineOptions::with_source(
      weighted_graph(250, 900, 10), PrioritySource::weight_hash_tiebreak(14)));
  MisTransaction txn(dm);
  const MisState before = capture(dm);

  txn.begin();
  txn.apply(mixed_batch(dm.graph(), 10, 400));
  const MisState after_b1 = capture(dm);
  const EngineSnapshot sp1 = txn.savepoint();
  txn.apply(mixed_batch(dm.graph(), 10, 401));
  const MisState after_b2 = capture(dm);
  const EngineSnapshot sp2 = txn.savepoint();
  txn.apply(mixed_batch(dm.graph(), 10, 402));

  txn.rollback_to(sp2);
  expect_state_eq(capture(dm), after_b2);
  txn.rollback_to(sp1);
  expect_state_eq(capture(dm), after_b1);
  txn.abort();
  expect_state_eq(capture(dm), before);
}

TEST(TxnMis, InvalidatedSavepointIsRejected) {
  DynamicMis dm(EngineOptions::with_source(
      weighted_graph(200, 700, 18), PrioritySource::weight_hash_tiebreak(22)));
  MisTransaction txn(dm);

  txn.begin();
  const EngineSnapshot sp1 = txn.savepoint();
  txn.apply(mixed_batch(dm.graph(), 10, 420));
  const EngineSnapshot sp2 = txn.savepoint();
  txn.rollback_to(sp1);
  // sp2's watermarks now fall inside journal space that later applies
  // will reuse — restoring it would be silent corruption, so it throws.
  txn.apply(mixed_batch(dm.graph(), 30, 421));
  EXPECT_THROW(txn.rollback_to(sp2), CheckFailure);
  // Rolling back to the same (still-valid) snapshot repeatedly is fine.
  txn.rollback_to(sp1);
  const MisState at_sp1 = capture(dm);
  txn.apply(mixed_batch(dm.graph(), 10, 422));
  txn.rollback_to(sp1);
  expect_state_eq(capture(dm), at_sp1);
  txn.abort();
}

TEST(TxnMis, OverlayOnlySavepointInvalidationIsRejected) {
  // Edge reweights under random_hash never touch vertex priorities or
  // decisions: they append *overlay* records only, so all savepoints here
  // share the engine-journal watermark and the invalidation guard must
  // discriminate on the overlay watermark.
  const CsrGraph g = weighted_graph(100, 300, 19);
  DynamicMis dm(EngineOptions::seeded(g, 23u));
  MisTransaction txn(dm);

  txn.begin();
  const EngineSnapshot sp1 = txn.savepoint();
  UpdateBatch b1;
  b1.reweight_edge(g.edge(0).u, g.edge(0).v, 42.0);
  txn.apply(b1);
  const EngineSnapshot sp2 = txn.savepoint();
  txn.rollback_to(sp1);
  UpdateBatch b2;
  b2.reweight_edge(g.edge(1).u, g.edge(1).v, 43.0)
      .reweight_edge(g.edge(2).u, g.edge(2).v, 44.0);
  txn.apply(b2);  // overlay journal regrows past sp2's watermark
  EXPECT_THROW(txn.rollback_to(sp2), CheckFailure);
  txn.abort();
  EXPECT_EQ(capture(dm).edge_weights,
            std::vector<Weight>(g.edge_weights().begin(),
                                g.edge_weights().end()));
}

TEST(TxnMis, VersionRingReconstructsRecentCommits) {
  DynamicMis dm(EngineOptions::with_source(
      weighted_graph(200, 800, 11), PrioritySource::weight_hash_tiebreak(15)));
  MisTransaction txn(dm, /*ring_capacity=*/4);

  std::vector<std::vector<uint8_t>> history{dm.solution()};  // version 0
  for (uint64_t round = 0; round < 7; ++round) {
    txn.begin();
    txn.apply(mixed_batch(dm.graph(), 12, 500 + round));
    txn.commit();
    history.push_back(dm.solution());
  }
  EXPECT_EQ(txn.version(), 7u);
  EXPECT_EQ(txn.oldest_version(), 3u);
  for (uint64_t v = txn.oldest_version(); v <= txn.version(); ++v)
    EXPECT_EQ(txn.solution_at(v), history[v]) << "version " << v;
  EXPECT_THROW(txn.solution_at(2), CheckFailure);  // evicted
  EXPECT_EQ(txn.committed_solution(), history.back());
}

TEST(TxnMis, InflightReadsSeeLastCommittedState) {
  DynamicMis dm(EngineOptions::with_source(
      weighted_graph(200, 800, 12), PrioritySource::weight_hash_tiebreak(16)));
  MisTransaction txn(dm);

  txn.begin();
  txn.apply(mixed_batch(dm.graph(), 10, 600));
  txn.commit();
  const std::vector<uint8_t> committed = dm.solution();

  txn.begin();
  txn.apply(mixed_batch(dm.graph(), 40, 601));
  // The engine itself serves the speculative state; the versioned reads
  // still see the last committed one.
  EXPECT_EQ(txn.committed_solution(), committed);
  EXPECT_EQ(txn.solution_at(1), committed);
  txn.abort();
  EXPECT_EQ(dm.solution(), committed);
}

TEST(TxnMis, EpochGuardRejectsExternalMutation) {
  DynamicMis dm(EngineOptions::with_source(
      weighted_graph(150, 500, 13), PrioritySource::weight_hash_tiebreak(17)));
  MisTransaction txn(dm);
  txn.begin();
  txn.apply(mixed_batch(dm.graph(), 5, 700));
  txn.commit();
  const std::vector<uint8_t> last_published = dm.solution();

  dm.apply_batch(mixed_batch(dm.graph(), 5, 701));  // behind txn's back
  EXPECT_THROW(txn.begin(), CheckFailure);
  // Reads do NOT throw: they are served from the published window and
  // keep reporting the last *published* commit — stale-bounded by
  // design, immune to what the engine was put through behind the
  // wrapper's back (see the contract in txn/transaction.hpp).
  EXPECT_EQ(txn.committed_solution(), last_published);
  EXPECT_EQ(txn.solution_at(1), last_published);
  EXPECT_EQ(txn.version(), 1u);
}

TEST(TxnMis, SolutionAtRetentionBoundaries) {
  DynamicMis dm(EngineOptions::with_source(
      weighted_graph(200, 800, 21), PrioritySource::weight_hash_tiebreak(22)));
  MisTransaction txn(dm, /*ring_capacity=*/4);
  for (uint64_t round = 0; round < 7; ++round) {
    txn.begin();
    txn.apply(mixed_batch(dm.graph(), 12, 540 + round));
    txn.commit();
  }
  ASSERT_EQ(txn.version(), 7u);
  ASSERT_EQ(txn.oldest_version(), 3u);
  // The eviction boundary, one version at a time: the oldest retained
  // version reads fine, one past it in either direction throws.
  EXPECT_NO_THROW((void)txn.solution_at(txn.oldest_version()));
  EXPECT_THROW((void)txn.solution_at(txn.oldest_version() - 1),
               CheckFailure);
  EXPECT_NO_THROW((void)txn.solution_at(txn.version()));
  EXPECT_THROW((void)txn.solution_at(txn.version() + 1), CheckFailure);
  // And the oldest boundary is exact, not just non-throwing: it equals
  // the ring's reverse-delta reconstruction (writer-side oracle).
  std::vector<uint8_t> oracle = txn.committed_solution();
  {
    support::RoleScope writer(txn.writer_role_);
    txn.ring().reconstruct(oracle, txn.oldest_version());
  }
  EXPECT_EQ(txn.solution_at(txn.oldest_version()), oracle);
}

TEST(TxnMis, PublishedWindowMatchesRingBitExactly) {
  DynamicMis dm(EngineOptions::with_source(
      weighted_graph(200, 800, 23), PrioritySource::weight_hash_tiebreak(24)));
  MisTransaction txn(dm, /*ring_capacity=*/3);
  for (uint64_t round = 0; round < 6; ++round) {
    txn.begin();
    txn.apply(mixed_batch(dm.graph(), 10, 560 + round));
    txn.commit();
  }
  const auto& state = txn.published_state();
  ReadGuard guard(state.epochs_);
  const auto& window = state.window(guard);
  EXPECT_EQ(window.versions.size(), 4u);  // ring capacity + 1
  for (const auto& ver : window.versions) {
    EXPECT_TRUE(ver->verify_checksum()) << "version " << ver->version;
    std::vector<uint8_t> oracle = txn.committed_solution();
    {
      support::RoleScope writer(txn.writer_role_);
      txn.ring().reconstruct(oracle, ver->version);
    }
    EXPECT_EQ(ver->solution, oracle) << "version " << ver->version;
  }
}

TEST(TxnMis, ApiMisuseThrows) {
  DynamicMis dm(EngineOptions::seeded(
      CsrGraph::from_edges(random_graph_nm(100, 300, 14)), 18u));
  MisTransaction txn(dm);

  EXPECT_THROW(txn.apply(UpdateBatch{}), CheckFailure);
  EXPECT_THROW(txn.commit(), CheckFailure);
  EXPECT_THROW(txn.abort(), CheckFailure);
  EXPECT_THROW((void)txn.savepoint(), CheckFailure);
  EXPECT_THROW((void)txn.txn_stats(), CheckFailure);

  txn.begin();
  EXPECT_THROW(txn.begin(), CheckFailure);
  const EngineSnapshot sp = txn.savepoint();
  EXPECT_THROW(dm.compact(), CheckFailure);  // no inverse under a journal
  txn.commit();
  EXPECT_THROW(txn.rollback_to(sp), CheckFailure);  // stale transaction

  txn.begin();
  EXPECT_THROW(txn.rollback_to(sp), CheckFailure);  // older txn_id
  txn.abort();
}

TEST(TxnMis, AbortRestoresLifetimeStats) {
  DynamicMis dm(EngineOptions::seeded(
      CsrGraph::from_edges(random_graph_nm(150, 600, 15)), 19u));
  dm.apply_batch(mixed_batch(dm.graph(), 10, 800));
  const BatchStats before = dm.lifetime_stats();

  MisTransaction txn(dm);
  txn.begin();
  txn.apply(mixed_batch(dm.graph(), 10, 801));
  EXPECT_NE(dm.lifetime_stats(), before);
  txn.abort();
  EXPECT_EQ(dm.lifetime_stats(), before);
}

TEST(TxnMis, DestructorAbortsOpenTransaction) {
  DynamicMis dm(EngineOptions::seeded(
      CsrGraph::from_edges(random_graph_nm(150, 600, 16)), 20u));
  const MisState before = capture(dm);
  {
    MisTransaction txn(dm);
    txn.begin();
    txn.apply(mixed_batch(dm.graph(), 15, 900));
  }  // destroyed while open: must abort, not leak the journal attachment
  expect_state_eq(capture(dm), before);
  // The engine is detached again: a fresh transaction can attach.
  MisTransaction txn2(dm);
  txn2.begin();
  txn2.apply(mixed_batch(dm.graph(), 5, 901));
  txn2.commit();
}

TEST(TxnMis, CommitRunsDeferredCompaction) {
  DynamicMis dm(EngineOptions::seeded(
      CsrGraph::from_edges(random_graph_nm(100, 400, 17)), 21u));
  dm.set_compaction_threshold(0.01);
  MisTransaction txn(dm);

  txn.begin();
  for (uint64_t i = 0; i < 4; ++i) {
    const BatchStats stats = txn.apply(mixed_batch(dm.graph(), 30, 950 + i));
    EXPECT_FALSE(stats.compacted) << "compaction must be deferred in-txn";
  }
  EXPECT_GT(dm.graph().overlay_fraction(), 0.01);
  txn.commit();
  EXPECT_DOUBLE_EQ(dm.graph().overlay_fraction(), 0.0);  // folded at commit
}

// --- matching: the same contract one level up -----------------------

TEST(TxnMatching, AbortRestoresStateBitExactly) {
  DynamicMatching dm(EngineOptions::with_source(
      weighted_graph(300, 1200, 20), PrioritySource::weight_hash_tiebreak(30)));
  MatchingTransaction txn(dm);
  const MmState before = capture(dm);
  const EdgeSlot bound_before = dm.graph().slot_bound();

  txn.begin();
  for (uint64_t i = 0; i < 3; ++i)
    txn.apply(mixed_batch(dm.graph(), 20, 1000 + i));
  txn.abort();

  expect_state_eq(capture(dm), before);
  // Slots appended by the speculative inserts are popped again.
  EXPECT_EQ(dm.graph().slot_bound(), bound_before);
}

TEST(TxnMatching, CommitMatchesDirectApply) {
  const CsrGraph g = weighted_graph(300, 1200, 21);
  const PrioritySource src = PrioritySource::weight_hash_tiebreak(31);
  DynamicMatching txn_engine(EngineOptions::with_source(g, src));
  DynamicMatching direct(EngineOptions::with_source(g, src));
  MatchingTransaction txn(txn_engine);

  for (uint64_t round = 0; round < 5; ++round) {
    const UpdateBatch batch = mixed_batch(direct.graph(), 25, 1100 + round);
    txn.begin();
    txn.apply(batch);
    txn.commit();
    direct.apply_batch(batch);
    expect_state_eq(capture(txn_engine), capture(direct),
                    /*compare_lifetime=*/false);
  }
}

TEST(TxnMatching, NestedSavepointsUnwindLifo) {
  DynamicMatching dm(EngineOptions::with_source(
      weighted_graph(250, 900, 22), PrioritySource::weight_hash_tiebreak(32)));
  MatchingTransaction txn(dm);
  const MmState before = capture(dm);

  txn.begin();
  txn.apply(mixed_batch(dm.graph(), 10, 1200));
  const MmState after_b1 = capture(dm);
  const EngineSnapshot sp1 = txn.savepoint();
  txn.apply(mixed_batch(dm.graph(), 10, 1201));
  const MmState after_b2 = capture(dm);
  const EngineSnapshot sp2 = txn.savepoint();
  txn.apply(mixed_batch(dm.graph(), 10, 1202));

  txn.rollback_to(sp2);
  expect_state_eq(capture(dm), after_b2);
  txn.rollback_to(sp1);
  expect_state_eq(capture(dm), after_b1);
  txn.abort();
  expect_state_eq(capture(dm), before);
}

TEST(TxnMatching, VersionRingAndInflightReads) {
  DynamicMatching dm(EngineOptions::with_source(
      weighted_graph(200, 800, 23), PrioritySource::weight_hash_tiebreak(33)));
  MatchingTransaction txn(dm, /*ring_capacity=*/4);

  std::vector<std::vector<VertexId>> history{dm.solution()};
  for (uint64_t round = 0; round < 6; ++round) {
    txn.begin();
    txn.apply(mixed_batch(dm.graph(), 12, 1300 + round));
    txn.commit();
    history.push_back(dm.solution());
  }
  for (uint64_t v = txn.oldest_version(); v <= txn.version(); ++v)
    EXPECT_EQ(txn.solution_at(v), history[v]) << "version " << v;
  EXPECT_THROW(txn.solution_at(txn.oldest_version() - 1), CheckFailure);

  txn.begin();
  txn.apply(mixed_batch(dm.graph(), 40, 1399));
  EXPECT_EQ(txn.committed_solution(), history.back());
  EXPECT_EQ(txn.solution_at(txn.version()), history.back());
  txn.abort();
}

TEST(TxnMatching, OracleExactnessAfterCommitAndAbort) {
  DynamicMatching dm(EngineOptions::with_source(
      weighted_graph(200, 700, 24), PrioritySource::weight_hash_tiebreak(34)));
  MatchingTransaction txn(dm);

  txn.begin();
  txn.apply(mixed_batch(dm.graph(), 20, 1400));
  txn.abort();
  {
    const CsrGraph h = dm.active_subgraph();
    EXPECT_EQ(dm.solution(),
              mm_sequential(h, dm.edge_order_for(h)).matched_with);
  }
  txn.begin();
  txn.apply(mixed_batch(dm.graph(), 20, 1401));
  txn.commit();
  {
    const CsrGraph h = dm.active_subgraph();
    EXPECT_EQ(dm.solution(),
              mm_sequential(h, dm.edge_order_for(h)).matched_with);
  }
}

// --- the overlay journal on its own ---------------------------------

TEST(OverlayJournal, UndoRestoresStructureWeightsAndEpoch) {
  CsrGraph g = CsrGraph::from_edges(random_graph_nm(60, 150, 40));
  g.set_edge_weights(quantized_weights(g.num_edges(), 41, 8));
  OverlayGraph overlay{g};
  overlay.insert_edge(0, 1);  // pre-journal mutation (maybe a no-op)
  const CsrGraph before = overlay.to_csr();
  const uint64_t epoch_before = overlay.epoch();
  const uint64_t live_before = overlay.num_live_edges();

  OverlayJournal journal;
  overlay.set_journal(&journal);
  const Edge victim = before.edge(3);
  overlay.erase_edge(victim.u, victim.v);
  overlay.insert_edge(55, 57, 3.0);
  overlay.insert_edge(victim.u, victim.v, 5.0);  // revive with new weight
  overlay.set_edge_weight(before.edge(0).u, before.edge(0).v, 7.0);
  overlay.set_vertex_weight(9, 2.5);  // upgrades to vertex-weighted
  EXPECT_TRUE(overlay.has_vertex_weights());
  EXPECT_GT(overlay.epoch(), epoch_before);
  EXPECT_THROW(overlay.compact(), CheckFailure);

  overlay.undo_to(0, epoch_before);
  overlay.set_journal(nullptr);
  EXPECT_EQ(overlay.epoch(), epoch_before);
  EXPECT_EQ(overlay.num_live_edges(), live_before);
  EXPECT_FALSE(overlay.has_vertex_weights());
  const CsrGraph after = overlay.to_csr();
  EXPECT_EQ(std::vector<Edge>(after.edges().begin(), after.edges().end()),
            std::vector<Edge>(before.edges().begin(), before.edges().end()));
  EXPECT_EQ(std::vector<Weight>(after.edge_weights().begin(),
                                after.edge_weights().end()),
            std::vector<Weight>(before.edge_weights().begin(),
                                before.edge_weights().end()));
}

TEST(OverlayJournal, UnweightedUpgradeIsUndone) {
  OverlayGraph overlay{CsrGraph::from_edges(random_graph_nm(30, 60, 42))};
  EXPECT_FALSE(overlay.has_edge_weights());
  OverlayJournal journal;
  overlay.set_journal(&journal);
  overlay.insert_edge(1, 2, 4.0);  // weighted insert upgrades the overlay
  EXPECT_TRUE(overlay.has_edge_weights());
  overlay.undo_to(0, 0);
  EXPECT_FALSE(overlay.has_edge_weights());
  EXPECT_FALSE(overlay.has_edge(1, 2));
  overlay.set_journal(nullptr);
}

// --- the version ring on its own ------------------------------------

TEST(VersionRingTest, ReconstructWalksReverseDeltas) {
  VersionRing<uint8_t> ring(2);
  // v0 = {0,0,0}; v1 flips index 1; v2 flips indexes 0 and 1.
  ring.push({{1, 0}});          // v1's delta: index 1 was 0 at v0
  ring.push({{0, 0}, {1, 1}});  // v2's delta: values at v1
  EXPECT_EQ(ring.latest(), 2u);
  EXPECT_EQ(ring.oldest(), 0u);

  std::vector<uint8_t> sol{1, 0, 0};  // the solution at v2
  std::vector<uint8_t> at_v1 = sol;
  ring.reconstruct(at_v1, 1);
  EXPECT_EQ(at_v1, (std::vector<uint8_t>{0, 1, 0}));
  std::vector<uint8_t> at_v0 = sol;
  ring.reconstruct(at_v0, 0);
  EXPECT_EQ(at_v0, (std::vector<uint8_t>{0, 0, 0}));

  ring.push({});  // v3 changed nothing; evicts v1's delta
  EXPECT_EQ(ring.oldest(), 1u);
  EXPECT_FALSE(ring.contains(0));
  std::vector<uint8_t> stale = sol;
  EXPECT_THROW(ring.reconstruct(stale, 0), CheckFailure);
  EXPECT_THROW(VersionRing<uint8_t>(0), CheckFailure);
}

}  // namespace
}  // namespace pargreedy
