// Unit tests for CsrGraph construction and accessors, and for the structural
// validator. The CSR invariants checked here (canonical sorted edge table,
// symmetric adjacency, consistent incident-edge ids) are exactly what the
// MIS/MM algorithms assume.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "graph/validate.hpp"
#include "parallel/arch.hpp"
#include "random/hash.hpp"
#include "support/check.hpp"

namespace pargreedy {
namespace {

CsrGraph triangle_plus_pendant() {
  // 0-1, 1-2, 0-2 (triangle) and 2-3 (pendant).
  EdgeList el(4);
  el.add(0, 1);
  el.add(1, 2);
  el.add(0, 2);
  el.add(2, 3);
  return CsrGraph::from_edges(el);
}

TEST(CsrGraph, BasicCounts) {
  const CsrGraph g = triangle_plus_pendant();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.offsets().size(), 5u);
  EXPECT_EQ(g.offsets()[4], 8u);  // 2m arcs
  EXPECT_EQ(g.adjacency().size(), 8u);
}

TEST(CsrGraph, DegreesAndNeighbors) {
  const CsrGraph g = triangle_plus_pendant();
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);

  auto neighbor_set = [&](VertexId v) {
    const auto nbrs = g.neighbors(v);
    return std::set<VertexId>(nbrs.begin(), nbrs.end());
  };
  EXPECT_EQ(neighbor_set(0), (std::set<VertexId>{1, 2}));
  EXPECT_EQ(neighbor_set(1), (std::set<VertexId>{0, 2}));
  EXPECT_EQ(neighbor_set(2), (std::set<VertexId>{0, 1, 3}));
  EXPECT_EQ(neighbor_set(3), (std::set<VertexId>{2}));
}

TEST(CsrGraph, EdgeTableIsCanonicalAndSorted) {
  const CsrGraph g = triangle_plus_pendant();
  ASSERT_EQ(g.edges().size(), 4u);
  for (const Edge& e : g.edges()) EXPECT_LT(e.u, e.v);
  EXPECT_TRUE(std::is_sorted(g.edges().begin(), g.edges().end()));
  EXPECT_EQ(g.edge(0), (Edge{0, 1}));
  EXPECT_EQ(g.edge(1), (Edge{0, 2}));
  EXPECT_EQ(g.edge(2), (Edge{1, 2}));
  EXPECT_EQ(g.edge(3), (Edge{2, 3}));
}

TEST(CsrGraph, IncidentEdgeIdsMatchEdgeTable) {
  const CsrGraph g = triangle_plus_pendant();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto inc = g.incident_edges(v);
    ASSERT_EQ(nbrs.size(), inc.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const Edge e = g.edge(inc[i]);
      // The incident edge must connect v and the parallel neighbor slot.
      EXPECT_EQ(e.canonical(), (Edge{v, nbrs[i]}.canonical()));
    }
  }
}

TEST(CsrGraph, AdjacencyIsSymmetric) {
  const EdgeList el = random_graph_nm(500, 2'000, 17);
  const CsrGraph g = CsrGraph::from_edges(el);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId w : g.neighbors(v)) {
      const auto back = g.neighbors(w);
      EXPECT_NE(std::find(back.begin(), back.end(), v), back.end())
          << "missing reverse arc " << w << "->" << v;
    }
  }
}

TEST(CsrGraph, FromEdgesNormalizes) {
  EdgeList el(4);
  el.add(1, 0);  // flipped
  el.add(0, 1);  // duplicate of the above
  el.add(2, 2);  // loop
  el.add(3, 2);
  const CsrGraph g = CsrGraph::from_edges(el);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edge(0), (Edge{0, 1}));
  EXPECT_EQ(g.edge(1), (Edge{2, 3}));
  EXPECT_TRUE(validate_csr(g).empty());
}

TEST(CsrGraph, AssumeNormalizedSkipsCleanupSafely) {
  EdgeList el(4);
  el.add(0, 1);
  el.add(0, 2);
  el.add(1, 3);
  const CsrGraph fast = CsrGraph::from_edges(el, /*assume_normalized=*/true);
  const CsrGraph slow = CsrGraph::from_edges(el, /*assume_normalized=*/false);
  EXPECT_EQ(fast.num_edges(), slow.num_edges());
  EXPECT_TRUE(validate_csr(fast).empty());
}

TEST(CsrGraph, EmptyGraph) {
  const CsrGraph g = CsrGraph::from_edges(EdgeList(0));
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
  EXPECT_TRUE(validate_csr(g).empty());
}

TEST(CsrGraph, EdgelessGraphKeepsIsolatedVertices) {
  const CsrGraph g = CsrGraph::from_edges(EdgeList(42));
  EXPECT_EQ(g.num_vertices(), 42u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (VertexId v = 0; v < 42; ++v) EXPECT_EQ(g.degree(v), 0u);
  EXPECT_TRUE(validate_csr(g).empty());
}

TEST(CsrGraph, SingleEdge) {
  EdgeList el(2);
  el.add(0, 1);
  const CsrGraph g = CsrGraph::from_edges(el);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.max_degree(), 1u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
  EXPECT_EQ(g.neighbors(1)[0], 0u);
  EXPECT_EQ(g.incident_edges(0)[0], g.incident_edges(1)[0]);
}

TEST(CsrGraph, MaxDegree) {
  EXPECT_EQ(CsrGraph::from_edges(star_graph(10)).max_degree(), 9u);
  EXPECT_EQ(CsrGraph::from_edges(path_graph(10)).max_degree(), 2u);
  EXPECT_EQ(CsrGraph::from_edges(complete_graph(7)).max_degree(), 6u);
}

TEST(CsrGraph, MemoryBytesScalesWithSize) {
  const CsrGraph small = CsrGraph::from_edges(path_graph(10));
  const CsrGraph big = CsrGraph::from_edges(path_graph(10'000));
  EXPECT_GT(small.memory_bytes(), 0u);
  EXPECT_GT(big.memory_bytes(), small.memory_bytes());
}

TEST(CsrGraph, RoundTripThroughEdgeSpan) {
  // Rebuilding from the canonical edge table reproduces the same graph.
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(300, 1'000, 5));
  EdgeList copy(g.num_vertices());
  for (const Edge& e : g.edges()) copy.add(e.u, e.v);
  const CsrGraph h = CsrGraph::from_edges(copy, /*assume_normalized=*/true);
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) EXPECT_EQ(h.edge(e), g.edge(e));
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(h.degree(v), g.degree(v));
}

TEST(CsrGraph, BuilderSerialAndParallelAgree) {
  const EdgeList el = random_graph_nm(2'000, 20'000, 23);
  CsrGraph serial;
  {
    ScopedNumWorkers guard(1);
    serial = CsrGraph::from_edges(el);
  }
  CsrGraph parallel;
  {
    ScopedNumWorkers guard(4);
    parallel = CsrGraph::from_edges(el);
  }
  ASSERT_EQ(serial.num_edges(), parallel.num_edges());
  for (EdgeId e = 0; e < serial.num_edges(); ++e)
    EXPECT_EQ(serial.edge(e), parallel.edge(e));
  EXPECT_TRUE(std::equal(serial.adjacency().begin(), serial.adjacency().end(),
                         parallel.adjacency().begin()));
}

// ------------------------------------------------------------- validator ---

TEST(Validate, AcceptsGeneratedGraphs) {
  EXPECT_TRUE(validate_csr(CsrGraph::from_edges(path_graph(50))).empty());
  EXPECT_TRUE(validate_csr(CsrGraph::from_edges(complete_graph(9))).empty());
  EXPECT_TRUE(
      validate_csr(CsrGraph::from_edges(random_graph_nm(200, 800, 1))).empty());
  EXPECT_TRUE(
      validate_csr(CsrGraph::from_edges(rmat_graph(8, 500, 2))).empty());
}

TEST(Validate, RequireValidPassesOnGoodGraph) {
  EXPECT_NO_THROW(require_valid(CsrGraph::from_edges(cycle_graph(8))));
}

class CsrFamilyTest : public ::testing::TestWithParam<int> {};

TEST_P(CsrFamilyTest, GeneratedFamiliesAreStructurallyValid) {
  const int which = GetParam();
  EdgeList el;
  switch (which) {
    case 0: el = path_graph(123); break;
    case 1: el = cycle_graph(77); break;
    case 2: el = grid_graph(11, 13); break;
    case 3: el = star_graph(64); break;
    case 4: el = complete_graph(20); break;
    case 5: el = complete_bipartite(9, 14); break;
    case 6: el = binary_tree(100); break;
    case 7: el = random_graph_nm(500, 2'500, 3); break;
    case 8: el = rmat_graph(9, 1'500, 4); break;
    case 9: el = barabasi_albert(300, 3, 5); break;
    default: FAIL();
  }
  const CsrGraph g = CsrGraph::from_edges(el);
  const std::vector<std::string> problems = validate_csr(g);
  EXPECT_TRUE(problems.empty())
      << "family " << which << ": " << problems.front();
  // Arc count is always exactly 2m.
  uint64_t total_degree = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) total_degree += g.degree(v);
  EXPECT_EQ(total_degree, 2 * g.num_edges());
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, CsrFamilyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace pargreedy
