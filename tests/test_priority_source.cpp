// Unit tests for PrioritySource: the key encoding, the four policies, the
// materialized orders, and the weighted sequential oracles.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/matching/matching.hpp"
#include "core/mis/mis.hpp"
#include "core/priority/priority_source.hpp"
#include "dynamic/dynamic_mis.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "parallel/arch.hpp"
#include "random/hash.hpp"
#include "support/check.hpp"

namespace pargreedy {
namespace {

CsrGraph weighted_test_graph(uint64_t n, uint64_t m, uint64_t seed,
                             uint64_t levels) {
  CsrGraph g = CsrGraph::from_edges(random_graph_nm(n, m, seed));
  g.set_vertex_weights(quantized_weights(g.num_vertices(), seed + 1, levels));
  g.set_edge_weights(quantized_weights(g.num_edges(), seed + 2, levels));
  return g;
}

TEST(DescendingWeightBits, ReversesTheWeightOrder) {
  const std::vector<Weight> ascending = {-1e300, -5.0,   -1.5, -0.0, 0.0,
                                         1e-300, 0.5,    1.0,  1.5,  2.0,
                                         1e9,    1e300};
  for (std::size_t i = 0; i < ascending.size(); ++i)
    for (std::size_t j = 0; j < ascending.size(); ++j) {
      if (ascending[i] == ascending[j]) continue;  // -0.0 == 0.0 is a tie
      EXPECT_EQ(ascending[i] < ascending[j],
                descending_weight_bits(ascending[i]) >
                    descending_weight_bits(ascending[j]))
          << "weights " << ascending[i] << " vs " << ascending[j];
    }
  EXPECT_EQ(descending_weight_bits(1.0), descending_weight_bits(1.0));
  // Signed zeros compare equal as weights, so they must share one key.
  EXPECT_EQ(descending_weight_bits(-0.0), descending_weight_bits(0.0));
  EXPECT_THROW(
      descending_weight_bits(std::numeric_limits<Weight>::quiet_NaN()),
      CheckFailure);
}

TEST(PrioritySource, PolicyNamesAndAccessors) {
  EXPECT_STREQ(priority_policy_name(PriorityPolicy::kRandomHash),
               "random_hash");
  EXPECT_STREQ(priority_policy_name(PriorityPolicy::kVertexWeight),
               "vertex_weight");
  EXPECT_STREQ(priority_policy_name(PriorityPolicy::kEdgeWeight),
               "edge_weight");
  EXPECT_STREQ(priority_policy_name(PriorityPolicy::kWeightHashTiebreak),
               "weight_hash_tiebreak");

  EXPECT_EQ(PrioritySource::random_hash(7).seed(), 7u);
  EXPECT_FALSE(PrioritySource::random_hash(7).is_weighted());
  EXPECT_TRUE(PrioritySource::vertex_weight().is_weighted());
  EXPECT_TRUE(PrioritySource::edge_weight().is_weighted());
  EXPECT_TRUE(PrioritySource::weight_hash_tiebreak(3).is_weighted());
  EXPECT_EQ(PrioritySource().policy(), PriorityPolicy::kRandomHash);
}

TEST(PrioritySource, ContextMismatchesAreRejected) {
  EXPECT_THROW(
      static_cast<void>(PrioritySource::edge_weight().vertex_key(0, 1.0)),
      CheckFailure);
  EXPECT_THROW(static_cast<void>(
                   PrioritySource::vertex_weight().edge_key(Edge{0, 1}, 1.0)),
               CheckFailure);
}

TEST(PrioritySource, RandomHashVertexOrderMatchesVertexOrderRandom) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(500, 2'000, 11));
  for (uint64_t seed : {0u, 1u, 42u}) {
    const VertexOrder expect = VertexOrder::random(g.num_vertices(), seed);
    const VertexOrder got =
        PrioritySource::random_hash(seed).vertex_order(g);
    ASSERT_EQ(std::vector<VertexId>(got.order().begin(), got.order().end()),
              std::vector<VertexId>(expect.order().begin(),
                                    expect.order().end()));
  }
}

TEST(PrioritySource, RandomHashEdgeOrderIsTheHistoricalHashSort) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(300, 1'200, 13));
  const uint64_t seed = 5;
  const EdgeOrder got = PrioritySource::random_hash(seed).edge_order(g);
  // Reference: the pre-refactor engine order — edge ids sorted by
  // (hash64(seed, (u << 32) | v), id).
  std::vector<EdgeId> expect(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) expect[e] = e;
  std::sort(expect.begin(), expect.end(), [&](EdgeId a, EdgeId b) {
    const uint64_t ka = hash64(seed, edge_pair_key(g.edge(a)));
    const uint64_t kb = hash64(seed, edge_pair_key(g.edge(b)));
    return ka != kb ? ka < kb : a < b;
  });
  ASSERT_EQ(std::vector<EdgeId>(got.order().begin(), got.order().end()),
            expect);
}

TEST(PrioritySource, VertexWeightOrderIsDecreasingWithIdTies) {
  CsrGraph g = CsrGraph::from_edges(random_graph_nm(400, 1'000, 17));
  g.set_vertex_weights(quantized_weights(g.num_vertices(), 19, 5));
  const VertexOrder order = PrioritySource::vertex_weight().vertex_order(g);
  for (uint64_t i = 1; i < order.size(); ++i) {
    const VertexId prev = order.nth(i - 1);
    const VertexId cur = order.nth(i);
    const Weight wp = g.vertex_weight(prev);
    const Weight wc = g.vertex_weight(cur);
    ASSERT_TRUE(wp > wc || (wp == wc && prev < cur))
        << "position " << i << ": " << prev << " (w=" << wp << ") before "
        << cur << " (w=" << wc << ")";
  }
}

TEST(PrioritySource, EdgeWeightOrderIsDecreasingWithKeyTies) {
  CsrGraph g = CsrGraph::from_edges(random_graph_nm(300, 900, 23));
  g.set_edge_weights(quantized_weights(g.num_edges(), 29, 5));
  const EdgeOrder order = PrioritySource::edge_weight().edge_order(g);
  for (uint64_t i = 1; i < order.size(); ++i) {
    const EdgeId prev = order.nth(i - 1);
    const EdgeId cur = order.nth(i);
    const Weight wp = g.edge_weight(prev);
    const Weight wc = g.edge_weight(cur);
    ASSERT_TRUE(wp > wc || (wp == wc && prev < cur));
  }
}

TEST(PrioritySource, WeightHashTiebreakRespectsWeightClasses) {
  CsrGraph g = CsrGraph::from_edges(random_graph_nm(400, 1'200, 31));
  g.set_vertex_weights(quantized_weights(g.num_vertices(), 37, 3));
  const PrioritySource src = PrioritySource::weight_hash_tiebreak(41);
  const VertexOrder order = src.vertex_order(g);
  // Weights never increase along the order; equal weights are hash-ordered.
  for (uint64_t i = 1; i < order.size(); ++i) {
    const VertexId prev = order.nth(i - 1);
    const VertexId cur = order.nth(i);
    ASSERT_GE(g.vertex_weight(prev), g.vertex_weight(cur));
    if (g.vertex_weight(prev) == g.vertex_weight(cur)) {
      const uint64_t hp = hash64(src.seed(), prev);
      const uint64_t hc = hash64(src.seed(), cur);
      ASSERT_TRUE(hp < hc || (hp == hc && prev < cur));
    }
  }
}

TEST(PrioritySource, OrdersAreWorkerCountIndependent) {
  const CsrGraph g = weighted_test_graph(600, 2'400, 43, 4);
  for (const PrioritySource& src :
       {PrioritySource::random_hash(1), PrioritySource::vertex_weight(),
        PrioritySource::weight_hash_tiebreak(2)}) {
    std::vector<std::vector<VertexId>> orders;
    for (int workers : {1, 2, 4}) {
      ScopedNumWorkers guard(workers);
      const VertexOrder o = src.vertex_order(g);
      orders.emplace_back(o.order().begin(), o.order().end());
    }
    ASSERT_EQ(orders[0], orders[1]);
    ASSERT_EQ(orders[0], orders[2]);
  }
}

TEST(WeightedOracles, MisAgreesWithSequentialOnMaterializedOrder) {
  const CsrGraph g = weighted_test_graph(500, 2'000, 47, 4);
  for (const PrioritySource& src :
       {PrioritySource::random_hash(3), PrioritySource::vertex_weight(),
        PrioritySource::weight_hash_tiebreak(5)}) {
    ASSERT_EQ(mis_weighted_sequential(g, src).in_set,
              mis_sequential(g, src.vertex_order(g)).in_set)
        << priority_policy_name(src.policy());
  }
}

TEST(WeightedOracles, MatchingAgreesWithSequentialOnMaterializedOrder) {
  const CsrGraph g = weighted_test_graph(500, 2'000, 53, 4);
  for (const PrioritySource& src :
       {PrioritySource::random_hash(3), PrioritySource::edge_weight(),
        PrioritySource::weight_hash_tiebreak(5)}) {
    ASSERT_EQ(mm_weighted_sequential(g, src).matched_with,
              mm_sequential(g, src.edge_order(g)).matched_with)
        << priority_policy_name(src.policy());
  }
}

TEST(PrioritySource, ExplicitOrderEngineReportsNoSource) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(60, 150, 3));
  const DynamicMis from_seed(EngineOptions::seeded(g, 5));
  EXPECT_TRUE(from_seed.has_priority_source());
  EXPECT_EQ(from_seed.priority_source().policy(),
            PriorityPolicy::kRandomHash);
  // An explicit VertexOrder is described by no policy — handing a default
  // source to oracle code would silently compute the wrong solution, so
  // the accessor refuses instead.
  const DynamicMis from_order(EngineOptions::with_order(
      g, VertexOrder::random(g.num_vertices(), 5)));
  EXPECT_FALSE(from_order.has_priority_source());
  EXPECT_THROW(static_cast<void>(from_order.priority_source()),
               CheckFailure);
}

TEST(WeightHelpers, RandomWeightsAreDeterministicAndInRange) {
  const std::vector<Weight> a = random_weights(1'000, 7, 2.0, 5.0);
  const std::vector<Weight> b = random_weights(1'000, 7, 2.0, 5.0);
  ASSERT_EQ(a, b);
  for (const Weight w : a) {
    ASSERT_GE(w, 2.0);
    ASSERT_LT(w, 5.0);
  }
  EXPECT_NE(a, random_weights(1'000, 8, 2.0, 5.0));
  EXPECT_THROW(random_weights(10, 1, 3.0, 3.0), CheckFailure);
}

TEST(WeightHelpers, QuantizedWeightsHitEveryLevel) {
  const std::vector<Weight> w = quantized_weights(2'000, 9, 4);
  ASSERT_EQ(w, quantized_weights(2'000, 9, 4));
  std::vector<uint64_t> counts(4, 0);
  for (const Weight x : w) {
    ASSERT_GE(x, 1.0);
    ASSERT_LE(x, 4.0);
    ASSERT_EQ(x, static_cast<Weight>(static_cast<uint64_t>(x)));
    ++counts[static_cast<std::size_t>(x) - 1];
  }
  for (const uint64_t c : counts) EXPECT_GT(c, 0u);
  EXPECT_THROW(quantized_weights(10, 1, 0), CheckFailure);
}

}  // namespace
}  // namespace pargreedy
