// Unit tests for graph serialization (src/graph/io.*): the PBBS
// AdjacencyGraph text format and the plain EdgeArray format, including
// round-trips and malformed-input rejection.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "graph/io.hpp"
#include "graph/validate.hpp"
#include "support/check.hpp"

namespace pargreedy {
namespace {

namespace fs = std::filesystem;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pargreedy_io_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path file(const std::string& name) const { return dir_ / name; }

 private:
  fs::path dir_;
};

void expect_same_graph(const CsrGraph& a, const CsrGraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) EXPECT_EQ(a.edge(e), b.edge(e));
  for (VertexId v = 0; v < a.num_vertices(); ++v)
    EXPECT_EQ(a.degree(v), b.degree(v));
}

TEST_F(IoTest, AdjacencyGraphRoundTrip) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(200, 900, 3));
  write_adjacency_graph(file("g.adj"), g);
  const CsrGraph back = read_adjacency_graph(file("g.adj"));
  expect_same_graph(g, back);
  EXPECT_TRUE(validate_csr(back).empty());
}

TEST_F(IoTest, AdjacencyGraphRoundTripStructured) {
  for (const EdgeList& el :
       {path_graph(20), star_graph(9), complete_graph(8), grid_graph(4, 5)}) {
    const CsrGraph g = CsrGraph::from_edges(el);
    write_adjacency_graph(file("s.adj"), g);
    expect_same_graph(g, read_adjacency_graph(file("s.adj")));
  }
}

TEST_F(IoTest, AdjacencyGraphEmptyAndEdgeless) {
  const CsrGraph empty = CsrGraph::from_edges(EdgeList(0));
  write_adjacency_graph(file("empty.adj"), empty);
  expect_same_graph(empty, read_adjacency_graph(file("empty.adj")));

  const CsrGraph edgeless = CsrGraph::from_edges(EdgeList(13));
  write_adjacency_graph(file("edgeless.adj"), edgeless);
  const CsrGraph back = read_adjacency_graph(file("edgeless.adj"));
  EXPECT_EQ(back.num_vertices(), 13u);
  EXPECT_EQ(back.num_edges(), 0u);
}

TEST_F(IoTest, AdjacencyGraphHeaderFormat) {
  const CsrGraph g = CsrGraph::from_edges(path_graph(3));  // 2 edges
  write_adjacency_graph(file("h.adj"), g);
  std::ifstream in(file("h.adj"));
  std::string header;
  uint64_t n = 0;
  uint64_t arcs = 0;
  in >> header >> n >> arcs;
  EXPECT_EQ(header, "AdjacencyGraph");
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(arcs, 4u);  // 2m
}

TEST_F(IoTest, EdgeListRoundTrip) {
  const EdgeList el = random_graph_nm(150, 600, 5);
  write_edge_list(file("g.edges"), el);
  const EdgeList back = read_edge_list(file("g.edges"));
  const CsrGraph a = CsrGraph::from_edges(el);
  const CsrGraph b = CsrGraph::from_edges(back);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) EXPECT_EQ(a.edge(e), b.edge(e));
}

TEST_F(IoTest, EdgeListVertexCountInference) {
  EdgeList el(10);
  el.add(2, 7);  // max endpoint 7
  write_edge_list(file("i.edges"), el);
  EXPECT_EQ(read_edge_list(file("i.edges")).num_vertices(), 8u);
  EXPECT_EQ(read_edge_list(file("i.edges"), 10).num_vertices(), 10u);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(read_adjacency_graph(file("nonexistent.adj")), CheckFailure);
  EXPECT_THROW(read_edge_list(file("nonexistent.edges")), CheckFailure);
}

TEST_F(IoTest, WrongMagicThrows) {
  std::ofstream(file("bad.adj")) << "NotAGraph\n1\n0\n0\n";
  EXPECT_THROW(read_adjacency_graph(file("bad.adj")), CheckFailure);
  std::ofstream(file("bad.edges")) << "NotEdges\n0 1\n";
  EXPECT_THROW(read_edge_list(file("bad.edges")), CheckFailure);
}

TEST_F(IoTest, TruncatedAdjacencyThrows) {
  // Claims 5 vertices / 8 arcs but provides too few numbers.
  std::ofstream(file("trunc.adj")) << "AdjacencyGraph\n5\n8\n0\n1\n2\n";
  EXPECT_THROW(read_adjacency_graph(file("trunc.adj")), CheckFailure);
}

TEST_F(IoTest, LargeGraphRoundTrip) {
  const CsrGraph g = CsrGraph::from_edges(rmat_graph(10, 4'000, 7));
  write_adjacency_graph(file("big.adj"), g);
  expect_same_graph(g, read_adjacency_graph(file("big.adj")));
}

}  // namespace
}  // namespace pargreedy
