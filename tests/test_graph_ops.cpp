// Unit tests for derived graph operations (src/graph/graph_ops.*):
// statistics, induced subgraphs, the line graph (Section 5's MM<->MIS
// bridge), the complement graph (Cook's reduction, footnote 1), and
// connectivity.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "graph/graph_ops.hpp"
#include "graph/validate.hpp"
#include "support/check.hpp"

namespace pargreedy {
namespace {

TEST(DegreeStats, PathGraph) {
  const DegreeStats s = degree_stats(CsrGraph::from_edges(path_graph(10)));
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 2.0 * 9 / 10);
  EXPECT_EQ(s.isolated_vertices, 0u);
}

TEST(DegreeStats, StarGraph) {
  const DegreeStats s = degree_stats(CsrGraph::from_edges(star_graph(8)));
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_EQ(s.max_degree, 7u);
  EXPECT_EQ(s.isolated_vertices, 0u);
}

TEST(DegreeStats, CountsIsolatedVertices) {
  EdgeList el(10);  // vertices 4..9 isolated
  el.add(0, 1);
  el.add(2, 3);
  const DegreeStats s = degree_stats(CsrGraph::from_edges(el));
  EXPECT_EQ(s.isolated_vertices, 6u);
  EXPECT_EQ(s.min_degree, 0u);
}

TEST(DegreeHistogram, SumsToVertexCount) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(300, 1'200, 9));
  const std::vector<uint64_t> hist = degree_histogram(g);
  uint64_t total = 0;
  uint64_t weighted = 0;
  for (std::size_t d = 0; d < hist.size(); ++d) {
    total += hist[d];
    weighted += d * hist[d];
  }
  EXPECT_EQ(total, g.num_vertices());
  EXPECT_EQ(weighted, 2 * g.num_edges());
}

TEST(DegreeHistogram, RegularGraphIsOneSpike) {
  const std::vector<uint64_t> hist =
      degree_histogram(CsrGraph::from_edges(cycle_graph(12)));
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 0u);
  EXPECT_EQ(hist[1], 0u);
  EXPECT_EQ(hist[2], 12u);
}

// ------------------------------------------------------ induced subgraph ---

TEST(InducedSubgraph, TriangleFromK5) {
  const CsrGraph k5 = CsrGraph::from_edges(complete_graph(5));
  const std::vector<VertexId> keep{1, 3, 4};
  const CsrGraph sub = induced_subgraph(k5, keep);
  EXPECT_EQ(sub.num_vertices(), 3u);
  EXPECT_EQ(sub.num_edges(), 3u);  // K3
  EXPECT_TRUE(validate_csr(sub).empty());
}

TEST(InducedSubgraph, KeepsOnlyInternalEdges) {
  const CsrGraph path = CsrGraph::from_edges(path_graph(6));
  // {0, 1, 3, 4}: edges 0-1 and 3-4 survive; 1-2, 2-3, 4-5 do not.
  const std::vector<VertexId> keep{0, 1, 3, 4};
  const CsrGraph sub = induced_subgraph(path, keep);
  EXPECT_EQ(sub.num_vertices(), 4u);
  EXPECT_EQ(sub.num_edges(), 2u);
  EXPECT_EQ(sub.edge(0), (Edge{0, 1}));  // remapped 0-1
  EXPECT_EQ(sub.edge(1), (Edge{2, 3}));  // remapped 3-4
}

TEST(InducedSubgraph, EmptySelection) {
  const CsrGraph g = CsrGraph::from_edges(path_graph(5));
  const CsrGraph sub = induced_subgraph(g, std::vector<VertexId>{});
  EXPECT_EQ(sub.num_vertices(), 0u);
  EXPECT_EQ(sub.num_edges(), 0u);
}

TEST(InducedSubgraph, RejectsDuplicatesAndOutOfRange) {
  const CsrGraph g = CsrGraph::from_edges(path_graph(5));
  EXPECT_THROW(induced_subgraph(g, std::vector<VertexId>{1, 1}),
               CheckFailure);
  EXPECT_THROW(induced_subgraph(g, std::vector<VertexId>{9}), CheckFailure);
}

// ------------------------------------------------------------ line graph ---

TEST(LineGraph, PathBecomesShorterPath) {
  // L(P_n) = P_{n-1}: consecutive path edges share a vertex.
  const CsrGraph g = CsrGraph::from_edges(path_graph(6));  // 5 edges
  const CsrGraph lg = line_graph(g);
  EXPECT_EQ(lg.num_vertices(), 5u);
  EXPECT_EQ(lg.num_edges(), 4u);
  const DegreeStats s = degree_stats(lg);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_TRUE(validate_csr(lg).empty());
}

TEST(LineGraph, StarBecomesComplete) {
  // All star edges share the center: L(K_{1,5}) = K_5.
  const CsrGraph g = CsrGraph::from_edges(star_graph(6));  // 5 edges
  const CsrGraph lg = line_graph(g);
  EXPECT_EQ(lg.num_vertices(), 5u);
  EXPECT_EQ(lg.num_edges(), 10u);
}

TEST(LineGraph, CycleIsSelfDual) {
  const CsrGraph g = CsrGraph::from_edges(cycle_graph(7));
  const CsrGraph lg = line_graph(g);
  EXPECT_EQ(lg.num_vertices(), 7u);
  EXPECT_EQ(lg.num_edges(), 7u);
  EXPECT_EQ(degree_stats(lg).max_degree, 2u);
  EXPECT_EQ(degree_stats(lg).min_degree, 2u);
}

TEST(LineGraph, VertexIdsAreEdgeIds) {
  // The contract the MM <-> MIS cross-checks rely on: vertex e of L(G) is
  // edge e of G, and adjacency in L(G) is endpoint-sharing in G.
  const CsrGraph g = CsrGraph::from_edges(grid_graph(3, 3));
  const CsrGraph lg = line_graph(g);
  ASSERT_EQ(lg.num_vertices(), g.num_edges());
  for (VertexId e = 0; e < lg.num_vertices(); ++e) {
    const Edge ee = g.edge(static_cast<EdgeId>(e));
    for (VertexId f : lg.neighbors(e)) {
      const Edge ef = g.edge(static_cast<EdgeId>(f));
      const bool share = ee.u == ef.u || ee.u == ef.v || ee.v == ef.u ||
                         ee.v == ef.v;
      EXPECT_TRUE(share) << "L(G) edge between non-adjacent edges " << e
                         << ", " << f;
    }
  }
}

TEST(LineGraph, SizeCanExplode) {
  // The paper's motivation for avoiding the reduction: a star's line graph
  // is quadratically larger. |E(L(G))| = sum_v C(deg(v), 2).
  const CsrGraph g = CsrGraph::from_edges(star_graph(100));  // m = 99
  const CsrGraph lg = line_graph(g);
  EXPECT_EQ(lg.num_edges(), 99u * 98 / 2);
  EXPECT_GT(lg.num_edges(), 40 * g.num_edges());
}

// ------------------------------------------------------------ complement ---

TEST(Complement, EdgeCountIsBinomialComplement) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(40, 200, 3));
  const CsrGraph c = complement_graph(g);
  EXPECT_EQ(c.num_vertices(), g.num_vertices());
  EXPECT_EQ(c.num_edges(), 40u * 39 / 2 - g.num_edges());
  EXPECT_TRUE(validate_csr(c).empty());
}

TEST(Complement, OfCompleteIsEmpty) {
  const CsrGraph c = complement_graph(CsrGraph::from_edges(complete_graph(9)));
  EXPECT_EQ(c.num_edges(), 0u);
  EXPECT_EQ(c.num_vertices(), 9u);
}

TEST(Complement, C5IsSelfComplementary) {
  const CsrGraph g = CsrGraph::from_edges(cycle_graph(5));
  const CsrGraph c = complement_graph(g);
  EXPECT_EQ(c.num_edges(), 5u);
  EXPECT_EQ(degree_stats(c).min_degree, 2u);
  EXPECT_EQ(degree_stats(c).max_degree, 2u);
  EXPECT_EQ(count_components(c), 1u);  // the complement C5 is again a 5-cycle
}

TEST(Complement, IsInvolution) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(30, 100, 8));
  const CsrGraph cc = complement_graph(complement_graph(g));
  ASSERT_EQ(cc.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) EXPECT_EQ(cc.edge(e), g.edge(e));
}

TEST(Complement, DisjointnessOfEdgeSets) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(25, 80, 4));
  const CsrGraph c = complement_graph(g);
  std::set<std::pair<VertexId, VertexId>> ge;
  for (const Edge& e : g.edges()) ge.insert({e.u, e.v});
  for (const Edge& e : c.edges())
    EXPECT_FALSE(ge.count({e.u, e.v})) << e.u << "-" << e.v;
}

// ---------------------------------------------------------- connectivity ---

TEST(Components, ConnectedFamilies) {
  EXPECT_EQ(count_components(CsrGraph::from_edges(path_graph(30))), 1u);
  EXPECT_EQ(count_components(CsrGraph::from_edges(cycle_graph(30))), 1u);
  EXPECT_EQ(count_components(CsrGraph::from_edges(grid_graph(5, 6))), 1u);
  EXPECT_EQ(count_components(CsrGraph::from_edges(complete_graph(10))), 1u);
  EXPECT_EQ(count_components(CsrGraph::from_edges(binary_tree(64))), 1u);
}

TEST(Components, EdgelessGraphHasNComponents) {
  EXPECT_EQ(count_components(CsrGraph::from_edges(EdgeList(17))), 17u);
}

TEST(Components, DisjointUnion) {
  // Two disjoint triangles plus one isolated vertex: 3 components.
  EdgeList el(7);
  el.add(0, 1); el.add(1, 2); el.add(0, 2);
  el.add(3, 4); el.add(4, 5); el.add(3, 5);
  const CsrGraph g = CsrGraph::from_edges(el);
  EXPECT_EQ(count_components(g), 3u);
  const std::vector<VertexId> comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_EQ(comp[6], 6u);  // isolated vertex labels itself
}

TEST(Components, LabelIsSmallestVertexInComponent) {
  EdgeList el(6);
  el.add(5, 3);
  el.add(3, 1);
  const CsrGraph g = CsrGraph::from_edges(el);
  const std::vector<VertexId> comp = connected_components(g);
  EXPECT_EQ(comp[1], 1u);
  EXPECT_EQ(comp[3], 1u);
  EXPECT_EQ(comp[5], 1u);
}

TEST(Components, LabelsAreConsistentWithEdges) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(400, 500, 10));
  const std::vector<VertexId> comp = connected_components(g);
  for (const Edge& e : g.edges()) EXPECT_EQ(comp[e.u], comp[e.v]);
}

}  // namespace
}  // namespace pargreedy
