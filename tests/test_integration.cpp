// End-to-end integration tests: the full pipeline a downstream user would
// run — generate or load a graph, build orderings, run every algorithm,
// verify every result, round-trip through serialization — plus a scaled-up
// smoke test approximating the paper's workload shape (5 edges per vertex).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>

#include "pargreedy.hpp"

namespace pargreedy {
namespace {

TEST(Integration, QuickstartPipeline) {
  // The README quickstart, as a test: everything a new user touches first.
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(10'000, 50'000, 1));
  require_valid(g);

  const VertexOrder pi = VertexOrder::random(g.num_vertices(), 42);
  const MisResult mis = mis_prefix(g, pi, g.num_vertices() / 50);
  EXPECT_TRUE(is_maximal_independent_set(g, mis.in_set));
  EXPECT_TRUE(is_lex_first_mis(g, pi, mis.in_set));

  const EdgeOrder sigma = EdgeOrder::random(g.num_edges(), 43);
  const MatchResult mm = mm_prefix(g, sigma, g.num_edges() / 50);
  EXPECT_TRUE(is_maximal_matching(g, mm.in_matching));
  EXPECT_TRUE(is_lex_first_matching(g, sigma, mm.in_matching));
}

TEST(Integration, PaperWorkloadShapeSmokeTest) {
  // The paper's two workloads at 1/500 scale (same 1:5 vertex:edge ratio;
  // rMat with the PBBS parameters). All variants agree and verify.
  const CsrGraph random_g =
      CsrGraph::from_edges(random_graph_nm(20'000, 100'000, 7));
  const CsrGraph rmat_g = CsrGraph::from_edges(rmat_graph(15, 100'000, 8));

  for (const CsrGraph* g : {&random_g, &rmat_g}) {
    const VertexOrder vo = VertexOrder::random(g->num_vertices(), 1);
    const EdgeOrder eo = EdgeOrder::random(g->num_edges(), 2);

    const MisResult mis_ref = mis_sequential(*g, vo);
    EXPECT_EQ(mis_rootset(*g, vo).in_set, mis_ref.in_set);
    EXPECT_EQ(mis_prefix(*g, vo, g->num_vertices() / 50).in_set,
              mis_ref.in_set);
    EXPECT_TRUE(is_maximal_independent_set(*g, mis_ref.in_set));

    const MatchResult mm_ref = mm_sequential(*g, eo);
    EXPECT_EQ(mm_rootset(*g, eo).in_matching, mm_ref.in_matching);
    EXPECT_EQ(mm_prefix(*g, eo, g->num_edges() / 50).in_matching,
              mm_ref.in_matching);
    EXPECT_TRUE(is_maximal_matching(*g, mm_ref.in_matching));

    const MisResult luby = luby_mis(*g, 3);
    EXPECT_TRUE(is_maximal_independent_set(*g, luby.in_set));
  }
}

TEST(Integration, SerializeAnalyzeSolveRoundTrip) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "pargreedy_integration_roundtrip";
  fs::create_directories(dir);

  const CsrGraph g = CsrGraph::from_edges(rmat_graph(12, 20'000, 4));
  write_adjacency_graph(dir / "g.adj", g);
  const CsrGraph loaded = read_adjacency_graph(dir / "g.adj");
  require_valid(loaded);

  // Identical inputs -> identical analysis and identical solutions.
  const VertexOrder vo = VertexOrder::random(g.num_vertices(), 9);
  EXPECT_EQ(priority_dag_stats(g, vo).dependence_length,
            priority_dag_stats(loaded, vo).dependence_length);
  EXPECT_EQ(mis_rootset(g, vo).in_set, mis_rootset(loaded, vo).in_set);

  fs::remove_all(dir);
}

TEST(Integration, MisOfMatchedGraphIsEmptyish) {
  // Cross-algorithm composition: contract the matching into its matched
  // vertex set; the MIS of the subgraph induced by *unmatched* vertices
  // must be exactly the unmatched vertices that form an independent set —
  // and since a maximal matching leaves no edge with both endpoints
  // unmatched, the unmatched set is already independent.
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(2'000, 10'000, 11));
  const MatchResult mm =
      mm_sequential(g, EdgeOrder::random(g.num_edges(), 12));
  std::vector<VertexId> unmatched;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (mm.matched_with[v] == kInvalidVertex) unmatched.push_back(v);
  const CsrGraph sub = induced_subgraph(g, unmatched);
  EXPECT_EQ(sub.num_edges(), 0u);  // maximality of the matching
}

TEST(Integration, MisVerticesDominateTheGraph) {
  // Composition with graph ops: MIS vertices plus their neighborhoods
  // cover every vertex (the N(U) ∪ U = V definition).
  const CsrGraph g = CsrGraph::from_edges(barabasi_albert(2'000, 4, 13));
  const MisResult mis =
      mis_rootset(g, VertexOrder::random(g.num_vertices(), 14));
  std::vector<uint8_t> covered(g.num_vertices(), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!mis.in_set[v]) continue;
    covered[v] = 1;
    for (VertexId w : g.neighbors(v)) covered[w] = 1;
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_TRUE(covered[v]) << "v=" << v;
}

TEST(Integration, SpecForExtensionsComposeWithCore) {
  // Spanning forest of the graph, then MIS on the forest (a tree has a
  // 2-coloring, so its greedy MIS is at least half the larger color class
  // in size... we simply verify validity of the composition).
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(3'000, 9'000, 15));
  const EdgeOrder eo = EdgeOrder::random(g.num_edges(), 16);
  const ForestResult forest = spanning_forest_prefix(g, eo, 256);
  EdgeList forest_edges(g.num_vertices());
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (forest.in_forest[e]) forest_edges.add(g.edge(e).u, g.edge(e).v);
  const CsrGraph tree = CsrGraph::from_edges(forest_edges);
  const MisResult mis =
      mis_rootset(tree, VertexOrder::random(tree.num_vertices(), 17));
  EXPECT_TRUE(is_maximal_independent_set(tree, mis.in_set));
  // A forest is bipartite, so its MIS has at least n/2 vertices... for the
  // *maximum* IS. A maximal IS can be smaller but never below n/(Delta+1).
  EXPECT_GE(mis.size() * (tree.max_degree() + 1), tree.num_vertices());
}

TEST(Integration, WorkTradeoffEndToEnd) {
  // The paper's headline trade-off, end to end on the full pipeline: work
  // grows and rounds shrink monotonically in the window; the sequential
  // extremes match exactly.
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(5'000, 25'000, 18));
  const VertexOrder vo = VertexOrder::random(g.num_vertices(), 19);
  const MisResult seq =
      mis_prefix(g, vo, 1, ProfileLevel::kCounters);
  EXPECT_EQ(seq.profile.rounds, g.num_vertices());
  uint64_t prev_work = 0;
  uint64_t prev_rounds = UINT64_MAX;
  for (uint64_t window = 1; window <= g.num_vertices(); window *= 8) {
    const MisResult r = mis_prefix(g, vo, window, ProfileLevel::kCounters);
    EXPECT_GE(r.profile.total_work(), prev_work);
    EXPECT_LE(r.profile.rounds, prev_rounds);
    prev_work = r.profile.total_work();
    prev_rounds = r.profile.rounds;
  }
}

}  // namespace
}  // namespace pargreedy
