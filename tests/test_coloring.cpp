// Unit tests for the greedy (first-fit) coloring extension — the second
// "other greedy loop" demonstration of the prefix approach (Section 7).
// The prefix-parallel coloring must equal the sequential first-fit
// coloring exactly, for any window and worker count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "extensions/coloring.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "graph/graph_ops.hpp"
#include "parallel/arch.hpp"

namespace pargreedy {
namespace {

TEST(ColoringSequential, PathUsesTwoColors) {
  const CsrGraph g = CsrGraph::from_edges(path_graph(20));
  const ColoringResult r =
      greedy_coloring_sequential(g, VertexOrder::identity(20));
  EXPECT_EQ(r.num_colors, 2u);
  EXPECT_TRUE(is_proper_coloring(g, r.color));
  for (VertexId v = 0; v < 20; ++v) EXPECT_EQ(r.color[v], v % 2);
}

TEST(ColoringSequential, CompleteGraphNeedsNColors) {
  const CsrGraph g = CsrGraph::from_edges(complete_graph(9));
  const ColoringResult r =
      greedy_coloring_sequential(g, VertexOrder::random(9, 1));
  EXPECT_EQ(r.num_colors, 9u);
  EXPECT_TRUE(is_proper_coloring(g, r.color));
}

TEST(ColoringSequential, StarUsesTwoColorsAnyOrder) {
  const CsrGraph g = CsrGraph::from_edges(star_graph(30));
  for (uint64_t seed = 0; seed < 3; ++seed) {
    const ColoringResult r =
        greedy_coloring_sequential(g, VertexOrder::random(30, seed));
    EXPECT_EQ(r.num_colors, 2u);
  }
}

TEST(ColoringSequential, EvenCycleIdentityOrderUsesTwoColors) {
  const CsrGraph g = CsrGraph::from_edges(cycle_graph(12));
  const ColoringResult r =
      greedy_coloring_sequential(g, VertexOrder::identity(12));
  EXPECT_EQ(r.num_colors, 2u);
}

TEST(ColoringSequential, OddCycleNeedsThree) {
  const CsrGraph g = CsrGraph::from_edges(cycle_graph(13));
  const ColoringResult r =
      greedy_coloring_sequential(g, VertexOrder::identity(13));
  EXPECT_EQ(r.num_colors, 3u);
  EXPECT_TRUE(is_proper_coloring(g, r.color));
}

class ColoringFamilies : public ::testing::TestWithParam<int> {};

CsrGraph coloring_graph(int which, uint64_t seed) {
  switch (which) {
    case 0: return CsrGraph::from_edges(random_graph_nm(500, 2'500, seed));
    case 1: return CsrGraph::from_edges(rmat_graph(9, 2'000, seed));
    case 2: return CsrGraph::from_edges(grid_graph(18, 18));
    case 3: return CsrGraph::from_edges(complete_bipartite(20, 25));
    case 4: return CsrGraph::from_edges(barabasi_albert(300, 4, seed));
    default: return CsrGraph::from_edges(binary_tree(255));
  }
}

TEST_P(ColoringFamilies, ProperAndWithinDeltaPlusOne) {
  for (uint64_t seed = 0; seed < 2; ++seed) {
    const CsrGraph g = coloring_graph(GetParam(), seed);
    const ColoringResult r = greedy_coloring_sequential(
        g, VertexOrder::random(g.num_vertices(), seed + 5));
    EXPECT_TRUE(is_proper_coloring(g, r.color));
    EXPECT_LE(r.num_colors, g.max_degree() + 1);  // first-fit bound
    EXPECT_EQ(r.num_colors,
              *std::max_element(r.color.begin(), r.color.end()) + 1);
  }
}

TEST_P(ColoringFamilies, PrefixEqualsSequentialAcrossWindows) {
  const CsrGraph g = coloring_graph(GetParam(), 3);
  const uint64_t n = g.num_vertices();
  const VertexOrder order = VertexOrder::random(n, 7);
  const ColoringResult expect = greedy_coloring_sequential(g, order);
  for (uint64_t window : {uint64_t{1}, uint64_t{19}, n / 4 + 1, n}) {
    const ColoringResult got = greedy_coloring_prefix(g, order, window);
    EXPECT_EQ(got.color, expect.color) << "window=" << window;
    EXPECT_EQ(got.num_colors, expect.num_colors);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, ColoringFamilies, ::testing::Range(0, 6));

TEST(ColoringPrefix, DeterministicAcrossWorkerCounts) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(1'200, 6'000, 8));
  const VertexOrder order = VertexOrder::random(1'200, 9);
  ColoringResult base;
  {
    ScopedNumWorkers guard(1);
    base = greedy_coloring_prefix(g, order, 128);
  }
  for (int workers : {2, 4}) {
    ScopedNumWorkers guard(workers);
    EXPECT_EQ(greedy_coloring_prefix(g, order, 128).color, base.color)
        << "workers=" << workers;
  }
}

TEST(ColoringPrefix, FirstFitInvariantHolds) {
  // Each vertex's color is the minimum excludant of its earlier neighbors'
  // colors — check the defining recurrence on the parallel result.
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(400, 2'000, 10));
  const VertexOrder order = VertexOrder::random(400, 11);
  const ColoringResult r = greedy_coloring_prefix(g, order, 64);
  for (VertexId v = 0; v < 400; ++v) {
    std::vector<uint8_t> used(g.degree(v) + 2, 0);
    for (VertexId w : g.neighbors(v)) {
      if (order.earlier(w, v) && r.color[w] < used.size())
        used[r.color[w]] = 1;
    }
    uint32_t mex = 0;
    while (used[mex]) ++mex;
    EXPECT_EQ(r.color[v], mex) << "v=" << v;
  }
}

TEST(ColoringVerify, DetectsBadColorings) {
  const CsrGraph g = CsrGraph::from_edges(path_graph(4));
  EXPECT_FALSE(is_proper_coloring(g, std::vector<uint32_t>{0, 0, 1, 0}));
  EXPECT_FALSE(
      is_proper_coloring(g, std::vector<uint32_t>{0, kUncolored, 0, 1}));
  EXPECT_TRUE(is_proper_coloring(g, std::vector<uint32_t>{0, 1, 0, 1}));
}

TEST(ColoringEdgeCases, EmptyAndEdgeless) {
  const CsrGraph empty = CsrGraph::from_edges(EdgeList(0));
  EXPECT_EQ(greedy_coloring_sequential(empty, VertexOrder::identity(0))
                .num_colors, 0u);
  const CsrGraph edgeless = CsrGraph::from_edges(EdgeList(9));
  const ColoringResult r =
      greedy_coloring_prefix(edgeless, VertexOrder::identity(9), 3);
  EXPECT_EQ(r.num_colors, 1u);  // everything gets color 0
  for (VertexId v = 0; v < 9; ++v) EXPECT_EQ(r.color[v], 0u);
}

TEST(Coloring, ColorCountIsOrderDependentButBounded) {
  // Different orders may produce different counts, but all proper and all
  // within Delta + 1 — the classic first-fit spread.
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(600, 4'000, 12));
  uint32_t lo = UINT32_MAX;
  uint32_t hi = 0;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    const ColoringResult r = greedy_coloring_sequential(
        g, VertexOrder::random(600, seed));
    EXPECT_TRUE(is_proper_coloring(g, r.color));
    lo = std::min(lo, r.num_colors);
    hi = std::max(hi, r.num_colors);
  }
  EXPECT_LE(hi, g.max_degree() + 1);
  EXPECT_GE(lo, 3u);  // such a dense graph is certainly not bipartite
}

}  // namespace
}  // namespace pargreedy
