// Unit tests for the parallel stable counting sort (src/parallel/
// counting_sort.hpp) — the bucket-sort substrate of the CSR builder and of
// the maximal-matching rootset algorithm's incident-edge ordering
// (Lemma 5.3 cites a bucket sort).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "parallel/arch.hpp"
#include "parallel/counting_sort.hpp"
#include "random/hash.hpp"
#include "support/check.hpp"

namespace pargreedy {
namespace {

struct Item {
  uint32_t key;
  uint32_t tag;  // original position, for stability checks
  friend bool operator==(const Item&, const Item&) = default;
};

std::vector<Item> random_items(int64_t n, int64_t buckets, uint64_t seed) {
  std::vector<Item> items(static_cast<std::size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    items[static_cast<std::size_t>(i)] = Item{
        static_cast<uint32_t>(hash64(seed, static_cast<uint64_t>(i)) %
                              static_cast<uint64_t>(buckets)),
        static_cast<uint32_t>(i)};
  }
  return items;
}

TEST(CountingSort, SortsByKey) {
  ScopedNumWorkers guard(4);
  const std::vector<Item> in = random_items(50'000, 64, 1);
  std::vector<Item> out(in.size());
  counting_sort(std::span<const Item>(in), std::span<Item>(out), 64,
                [](const Item& it) { return static_cast<int64_t>(it.key); });
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end(),
                             [](const Item& a, const Item& b) {
                               return a.key < b.key;
                             }));
}

TEST(CountingSort, IsStable) {
  ScopedNumWorkers guard(4);
  const std::vector<Item> in = random_items(50'000, 16, 2);
  std::vector<Item> out(in.size());
  counting_sort(std::span<const Item>(in), std::span<Item>(out), 16,
                [](const Item& it) { return static_cast<int64_t>(it.key); });
  // Within a bucket, original positions (tags) must be increasing.
  for (std::size_t i = 1; i < out.size(); ++i) {
    if (out[i - 1].key == out[i].key) {
      EXPECT_LT(out[i - 1].tag, out[i].tag) << "at " << i;
    }
  }
}

TEST(CountingSort, MatchesStdStableSort) {
  ScopedNumWorkers guard(4);
  const std::vector<Item> in = random_items(20'000, 100, 3);
  std::vector<Item> out(in.size());
  counting_sort(std::span<const Item>(in), std::span<Item>(out), 100,
                [](const Item& it) { return static_cast<int64_t>(it.key); });
  std::vector<Item> expect = in;
  std::stable_sort(expect.begin(), expect.end(),
                   [](const Item& a, const Item& b) { return a.key < b.key; });
  EXPECT_EQ(out, expect);
}

TEST(CountingSort, OffsetsAreBucketBoundaries) {
  ScopedNumWorkers guard(4);
  const int64_t buckets = 32;
  const std::vector<Item> in = random_items(30'000, buckets, 4);
  std::vector<Item> out(in.size());
  const std::vector<int64_t> offsets =
      counting_sort(std::span<const Item>(in), std::span<Item>(out), buckets,
                    [](const Item& it) { return static_cast<int64_t>(it.key); });
  ASSERT_EQ(offsets.size(), static_cast<std::size_t>(buckets + 1));
  EXPECT_EQ(offsets.front(), 0);
  EXPECT_EQ(offsets.back(), static_cast<int64_t>(in.size()));
  for (int64_t b = 0; b < buckets; ++b) {
    EXPECT_LE(offsets[static_cast<std::size_t>(b)],
              offsets[static_cast<std::size_t>(b) + 1]);
    for (int64_t i = offsets[static_cast<std::size_t>(b)];
         i < offsets[static_cast<std::size_t>(b) + 1]; ++i)
      EXPECT_EQ(out[static_cast<std::size_t>(i)].key,
                static_cast<uint32_t>(b));
  }
}

TEST(CountingSort, SingleBucketPreservesOrder) {
  const std::vector<Item> in = random_items(5'000, 99, 5);
  std::vector<Item> out(in.size());
  counting_sort(std::span<const Item>(in), std::span<Item>(out), 1,
                [](const Item&) { return int64_t{0}; });
  EXPECT_EQ(out, in);
}

TEST(CountingSort, EmptyInput) {
  std::vector<Item> in;
  std::vector<Item> out;
  const std::vector<int64_t> offsets =
      counting_sort(std::span<const Item>(in), std::span<Item>(out), 8,
                    [](const Item& it) { return static_cast<int64_t>(it.key); });
  ASSERT_EQ(offsets.size(), 9u);
  for (int64_t o : offsets) EXPECT_EQ(o, 0);
}

TEST(CountingSort, EmptyBucketsHaveZeroWidth) {
  // Keys only use buckets 2 and 5 of 8.
  std::vector<Item> in;
  for (uint32_t i = 0; i < 1'000; ++i)
    in.push_back(Item{i % 2 == 0 ? 2u : 5u, i});
  std::vector<Item> out(in.size());
  const std::vector<int64_t> offsets =
      counting_sort(std::span<const Item>(in), std::span<Item>(out), 8,
                    [](const Item& it) { return static_cast<int64_t>(it.key); });
  EXPECT_EQ(offsets[0], 0);
  EXPECT_EQ(offsets[1], 0);
  EXPECT_EQ(offsets[2], 0);
  EXPECT_EQ(offsets[3], 500);  // bucket 2 holds the 500 even-tag items
  EXPECT_EQ(offsets[4], 500);
  EXPECT_EQ(offsets[5], 500);
  EXPECT_EQ(offsets[6], 1'000);
  EXPECT_EQ(offsets[8], 1'000);
}

TEST(CountingSort, SerialAndParallelAgree) {
  const std::vector<Item> in = random_items(40'000, 48, 6);
  auto key = [](const Item& it) { return static_cast<int64_t>(it.key); };
  std::vector<Item> serial_out(in.size());
  std::vector<int64_t> serial_off;
  {
    ScopedNumWorkers guard(1);
    serial_off = counting_sort(std::span<const Item>(in),
                               std::span<Item>(serial_out), 48, key);
  }
  std::vector<Item> par_out(in.size());
  std::vector<int64_t> par_off;
  {
    ScopedNumWorkers guard(4);
    par_off = counting_sort(std::span<const Item>(in),
                            std::span<Item>(par_out), 48, key);
  }
  EXPECT_EQ(serial_out, par_out);
  EXPECT_EQ(serial_off, par_off);
}

class CountingSortSizes
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(CountingSortSizes, RoundTripsAllElements) {
  ScopedNumWorkers guard(4);
  const auto [n, buckets] = GetParam();
  const std::vector<Item> in = random_items(n, buckets, 7);
  std::vector<Item> out(in.size());
  counting_sort(std::span<const Item>(in), std::span<Item>(out), buckets,
                [](const Item& it) { return static_cast<int64_t>(it.key); });
  // Same multiset: sort both by (key, tag) and compare.
  auto by_key_tag = [](const Item& a, const Item& b) {
    return a.key != b.key ? a.key < b.key : a.tag < b.tag;
  };
  std::vector<Item> a = in;
  std::vector<Item> b = out;
  std::sort(a.begin(), a.end(), by_key_tag);
  std::sort(b.begin(), b.end(), by_key_tag);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CountingSortSizes,
    ::testing::Values(std::pair<int64_t, int64_t>{1, 1},
                      std::pair<int64_t, int64_t>{10, 3},
                      std::pair<int64_t, int64_t>{1'023, 2},
                      std::pair<int64_t, int64_t>{1'024, 17},
                      std::pair<int64_t, int64_t>{1'025, 1'024},
                      std::pair<int64_t, int64_t>{65'536, 256}));

}  // namespace
}  // namespace pargreedy
