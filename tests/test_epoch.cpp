// Unit tests for the epoch machinery in isolation (txn/epoch.hpp,
// txn/published_state.hpp): pin/unpin nesting, reclamation ordering (no
// table freed while a guard pins an epoch at or below its retire
// epoch), misuse behavior (slot exhaustion and out-of-retention reads
// throw; a guard outliving its manager is inert, not UB), torn-read
// checksums, and the PARGREEDY_OBS=0 companion TU
// (test_epoch_disabled_seam.cpp) proving the reader hot path compiles
// to no instrumentation.
//
// (The disabled-seam case is a *separate executable*, not a companion
// TU in this binary: ReadGuard/PublishedState are instantiated by both
// sides, so mixing seam-ON and seam-OFF definitions of the same inline
// functions in one binary would be an ODR violation. The standalone
// binary is compiled entirely with PARGREEDY_OBS=0 and links no obs
// code at all — any instrumentation surviving the seam is a link
// error, which is a stronger proof than a runtime probe.)
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.hpp"
#include "support/check.hpp"
#include "txn/epoch.hpp"
#include "txn/published_state.hpp"

namespace pargreedy {
namespace {

std::vector<uint8_t> bits(std::initializer_list<int> vs) {
  std::vector<uint8_t> out;
  for (int v : vs) out.push_back(static_cast<uint8_t>(v));
  return out;
}

// ---- EpochManager ----------------------------------------------------

TEST(Epoch, StartsAtOneWithNoPins) {
  EpochManager mgr;
  EXPECT_EQ(mgr.current_epoch(), 1u);
  EXPECT_EQ(mgr.active_pins(), 0u);
  EXPECT_EQ(mgr.min_pinned(), std::numeric_limits<uint64_t>::max());
}

TEST(Epoch, AdvanceIsMonotonic) {
  EpochManager mgr;
  support::RoleScope writer(mgr.writer_role_);
  EXPECT_EQ(mgr.advance(), 2u);
  EXPECT_EQ(mgr.advance(), 3u);
  EXPECT_EQ(mgr.current_epoch(), 3u);
}

TEST(Epoch, GuardPinsCurrentEpochAndUnpinsOnDestruction) {
  EpochManager mgr;
  {
    ReadGuard guard(mgr);
    EXPECT_EQ(guard.pinned_epoch(), 1u);
    EXPECT_EQ(mgr.active_pins(), 1u);
    EXPECT_EQ(mgr.min_pinned(), 1u);
  }
  EXPECT_EQ(mgr.active_pins(), 0u);
  EXPECT_EQ(mgr.min_pinned(), std::numeric_limits<uint64_t>::max());
}

TEST(Epoch, GuardsNestAndMinPinnedTracksTheOldest) {
  EpochManager mgr;
  ReadGuard outer(mgr);  // pins epoch 1
  {
    support::RoleScope writer(mgr.writer_role_);
    mgr.advance();  // epoch 2
  }
  {
    ReadGuard inner(mgr);  // pins epoch 2, nested inside outer
    EXPECT_EQ(inner.pinned_epoch(), 2u);
    EXPECT_EQ(mgr.active_pins(), 2u);
    EXPECT_EQ(mgr.min_pinned(), 1u);  // the oldest pin wins
  }
  EXPECT_EQ(mgr.active_pins(), 1u);
  EXPECT_EQ(mgr.min_pinned(), 1u);
}

TEST(Epoch, SlotExhaustionThrowsInsteadOfBlocking) {
  EpochManager mgr;
  std::vector<std::unique_ptr<ReadGuard>> guards;
  for (std::size_t i = 0; i < EpochManager::slot_count(); ++i)
    guards.push_back(std::make_unique<ReadGuard>(mgr));
  EXPECT_EQ(mgr.active_pins(), EpochManager::slot_count());
  // One more concurrent guard than slots: a configuration error, and a
  // reader path must never wait — so it throws.
  EXPECT_THROW(ReadGuard extra(mgr), CheckFailure);
  guards.clear();
  EXPECT_EQ(mgr.active_pins(), 0u);
  ReadGuard again(mgr);  // slots are reusable after release
  EXPECT_EQ(mgr.active_pins(), 1u);
}

// The misuse from the issue list — a guard outliving the object it
// reads through. The slot array is shared_ptr-owned precisely so the
// late unpin lands in live memory: the misuse is inert (and the guard
// must obviously not be *read through* anymore). Under ASan this test
// is the proof there is no use-after-free.
TEST(Epoch, GuardOutlivingItsManagerUnpinsSafely) {
  auto state = std::make_unique<PublishedState<uint8_t>>(4);
  {
    support::RoleScope writer(state->writer_role_);
    state->publish(0, 0, bits({1, 0, 1}));
  }
  auto guard = std::make_unique<ReadGuard>(state->epochs_);
  EXPECT_EQ(state->epochs_.active_pins(), 1u);
  state.reset();   // manager (inside the state) destroyed first
  guard.reset();   // late unpin — must not touch freed memory
}

// ---- PublishedVersion checksums -------------------------------------

TEST(PublishedVersionTest, ChecksumRoundTrips) {
  const auto sol = bits({1, 0, 0, 1, 1});
  PublishedVersion<uint8_t> v{3, 7, 2, sol,
                              PublishedVersion<uint8_t>::compute_checksum(
                                  3, sol)};
  EXPECT_TRUE(v.verify_checksum());
}

TEST(PublishedVersionTest, ChecksumCatchesTornSolution) {
  const auto sol = bits({1, 0, 0, 1, 1});
  PublishedVersion<uint8_t> v{3, 7, 2, sol,
                              PublishedVersion<uint8_t>::compute_checksum(
                                  3, sol)};
  v.solution[2] = 1;  // simulate a torn write
  EXPECT_FALSE(v.verify_checksum());
  v.solution[2] = 0;
  v.version = 4;  // or a version id torn across the publication
  EXPECT_FALSE(v.verify_checksum());
}

TEST(PublishedVersionTest, ChecksumIsOrderSensitive) {
  EXPECT_NE(PublishedVersion<uint8_t>::compute_checksum(0, bits({1, 0})),
            PublishedVersion<uint8_t>::compute_checksum(0, bits({0, 1})));
}

// ---- PublishedState --------------------------------------------------

TEST(PublishedStateTest, ReadsBeforeFirstPublishThrow) {
  PublishedState<uint8_t> state(4);
  EXPECT_FALSE(state.has_published());
  ReadGuard guard(state.epochs_);
  EXPECT_THROW((void)state.window(guard), CheckFailure);
}

TEST(PublishedStateTest, PublishAndReadBackThroughGuard) {
  PublishedState<uint8_t> state(4);
  {
    support::RoleScope writer(state.writer_role_);
    state.publish(0, 10, bits({0, 1, 1}));
    state.publish(1, 11, bits({1, 1, 0}));
  }
  EXPECT_TRUE(state.has_published());
  ReadGuard guard(state.epochs_);
  EXPECT_EQ(state.latest(guard).version, 1u);
  EXPECT_EQ(state.latest(guard).engine_epoch, 11u);
  EXPECT_EQ(state.at(0, guard).solution, bits({0, 1, 1}));
  EXPECT_EQ(state.at(1, guard).solution, bits({1, 1, 0}));
  EXPECT_TRUE(state.at(0, guard).verify_checksum());
  EXPECT_TRUE(state.at(1, guard).verify_checksum());
}

TEST(PublishedStateTest, RetentionEvictsOldestAndBoundsReads) {
  PublishedState<uint8_t> state(3);  // retains 3 full versions
  support::RoleScope writer(state.writer_role_);
  for (uint64_t v = 0; v <= 5; ++v)
    state.publish(v, v, bits({static_cast<int>(v & 1)}));
  EXPECT_EQ(state.latest_version(), 5u);
  EXPECT_EQ(state.oldest_version(), 3u);
  EXPECT_EQ(state.solution_at_copy(3), bits({1}));
  EXPECT_THROW((void)state.solution_at_copy(2), CheckFailure);  // evicted
  EXPECT_THROW((void)state.solution_at_copy(6), CheckFailure);  // future
}

TEST(PublishedStateTest, NonConsecutiveVersionIsRejected) {
  PublishedState<uint8_t> state(4);
  support::RoleScope writer(state.writer_role_);
  state.publish(0, 0, bits({1}));
  EXPECT_THROW(state.publish(2, 0, bits({1})), CheckFailure);
}

// Reclamation ordering: a superseded table stays allocated while any
// guard pins an epoch at or below its retire epoch, and is freed on the
// first reclaim() after the pin drops. (ASan turns "freed while pinned"
// into a hard failure via the reads below.)
TEST(PublishedStateTest, PinnedTablesAreNotReclaimed) {
  PublishedState<uint8_t> state(4);
  {
    support::RoleScope writer(state.writer_role_);
    state.publish(0, 0, bits({0, 0}));
  }
  auto guard = std::make_unique<ReadGuard>(state.epochs_);
  const auto& old_window = state.window(*guard);
  EXPECT_EQ(old_window.versions.back()->version, 0u);

  {
    support::RoleScope writer(state.writer_role_);
    state.publish(1, 1, bits({1, 0}));
    state.publish(2, 2, bits({1, 1}));
    // Both superseded tables were retired while the guard pins epoch 1.
    EXPECT_EQ(state.retired_count(), 2u);
    EXPECT_EQ(state.reclaim(), 0u);  // still pinned — nothing freed
    EXPECT_EQ(state.retired_count(), 2u);
  }
  // The pinned reader still sees its original window, bit-exactly.
  EXPECT_EQ(old_window.versions.back()->version, 0u);
  EXPECT_TRUE(old_window.versions.back()->verify_checksum());

  guard.reset();
  {
    support::RoleScope writer(state.writer_role_);
    EXPECT_EQ(state.reclaim(), 2u);  // pin dropped — both freed
    EXPECT_EQ(state.retired_count(), 0u);
  }
}

// A later pin (taken after the publishes) does not protect earlier
// retirees: reclamation frees exactly the prefix below the oldest pin.
TEST(PublishedStateTest, ReclaimFreesPrefixBelowOldestPin) {
  PublishedState<uint8_t> state(4);
  {
    support::RoleScope writer(state.writer_role_);
    state.publish(0, 0, bits({0}));
    state.publish(1, 1, bits({1}));  // retires table {0} at epoch 1
  }
  ReadGuard late(state.epochs_);  // pins epoch 2 — after the retirement
  support::RoleScope writer(state.writer_role_);
  state.publish(2, 2, bits({0}));  // retires table {0,1} at epoch 2
  // The epoch-1 retiree is below the pin and freed; the epoch-2 one is
  // exactly at the pin and must be kept.
  EXPECT_EQ(state.retired_count(), 1u);
}

TEST(PublishedStateTest, CopyAccessorsPinInternally) {
  PublishedState<uint8_t> state(4);
  {
    support::RoleScope writer(state.writer_role_);
    state.publish(0, 0, bits({0, 1}));
    state.publish(1, 1, bits({1, 1}));
  }
  // No explicit guard anywhere — the accessors pin for their own scope.
  EXPECT_EQ(state.latest_solution_copy(), bits({1, 1}));
  EXPECT_EQ(state.solution_at_copy(0), bits({0, 1}));
  EXPECT_EQ(state.latest_version(), 1u);
  EXPECT_EQ(state.oldest_version(), 0u);
  EXPECT_EQ(state.epochs_.active_pins(), 0u);  // nothing leaked
}

// ---- Observability ---------------------------------------------------

#if PARGREEDY_OBS
TEST(EpochObs, PinsAndReclaimsAreCounted) {
  obs::set_enabled(true);
  const uint64_t pins_before = obs::counter_value(obs::kReaderPins);
  const uint64_t reclaimed_before = obs::counter_value(obs::kEpochReclaimed);
  const uint64_t published_before =
      obs::counter_value(obs::kPublishedVersions);
  PublishedState<uint8_t> state(2);
  {
    support::RoleScope writer(state.writer_role_);
    state.publish(0, 0, bits({1}));
    state.publish(1, 1, bits({0}));  // retires + reclaims (no pins)
  }
  { ReadGuard guard(state.epochs_); }
  EXPECT_EQ(obs::counter_value(obs::kReaderPins), pins_before + 1);
  EXPECT_EQ(obs::counter_value(obs::kPublishedVersions),
            published_before + 2);
  EXPECT_EQ(obs::counter_value(obs::kEpochReclaimed), reclaimed_before + 1);
}
#endif

}  // namespace
}  // namespace pargreedy
