// Unit tests for triangle counting and the global clustering coefficient,
// including the exact ring-lattice formula that validates the
// Watts–Strogatz generator's "small world" premise (high clustering before
// rewiring, vanishing clustering after).
#include <gtest/gtest.h>

#include <cstdint>

#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "graph/graph_ops.hpp"

namespace pargreedy {
namespace {

TEST(Triangles, KnownSmallGraphs) {
  EXPECT_EQ(count_triangles(CsrGraph::from_edges(complete_graph(3))), 1u);
  EXPECT_EQ(count_triangles(CsrGraph::from_edges(complete_graph(4))), 4u);
  EXPECT_EQ(count_triangles(CsrGraph::from_edges(complete_graph(6))), 20u);
  EXPECT_EQ(count_triangles(CsrGraph::from_edges(path_graph(10))), 0u);
  EXPECT_EQ(count_triangles(CsrGraph::from_edges(cycle_graph(3))), 1u);
  EXPECT_EQ(count_triangles(CsrGraph::from_edges(cycle_graph(8))), 0u);
  EXPECT_EQ(count_triangles(CsrGraph::from_edges(star_graph(20))), 0u);
  EXPECT_EQ(count_triangles(CsrGraph::from_edges(grid_graph(5, 5))), 0u);
  EXPECT_EQ(
      count_triangles(CsrGraph::from_edges(complete_bipartite(4, 7))), 0u);
}

TEST(Triangles, CompleteGraphBinomial) {
  for (uint64_t n : {5ull, 9ull, 15ull}) {
    const uint64_t expect = n * (n - 1) * (n - 2) / 6;
    EXPECT_EQ(count_triangles(CsrGraph::from_edges(complete_graph(n))),
              expect);
  }
}

TEST(Triangles, MatchesBruteForceOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    const CsrGraph g = CsrGraph::from_edges(random_graph_nm(60, 500, seed));
    uint64_t brute = 0;
    std::vector<std::vector<uint8_t>> adj(60, std::vector<uint8_t>(60, 0));
    for (const Edge& e : g.edges()) adj[e.u][e.v] = adj[e.v][e.u] = 1;
    for (VertexId a = 0; a < 60; ++a)
      for (VertexId b = a + 1; b < 60; ++b)
        for (VertexId c = b + 1; c < 60; ++c)
          brute += (adj[a][b] && adj[b][c] && adj[a][c]) ? 1 : 0;
    EXPECT_EQ(count_triangles(g), brute) << "seed " << seed;
  }
}

TEST(Triangles, EmptyAndEdgeless) {
  EXPECT_EQ(count_triangles(CsrGraph::from_edges(EdgeList(0))), 0u);
  EXPECT_EQ(count_triangles(CsrGraph::from_edges(EdgeList(10))), 0u);
  EXPECT_EQ(global_clustering_coefficient(CsrGraph::from_edges(EdgeList(10))),
            0.0);
}

TEST(Clustering, ExactValues) {
  // K4: every wedge closes.
  EXPECT_DOUBLE_EQ(
      global_clustering_coefficient(CsrGraph::from_edges(complete_graph(4))),
      1.0);
  // Path: no triangles.
  EXPECT_DOUBLE_EQ(
      global_clustering_coefficient(CsrGraph::from_edges(path_graph(10))),
      0.0);
  // Triangle plus pendant: 1 triangle, wedges = 1+1+3 = 5 -> 3/5.
  EdgeList el(4);
  el.add(0, 1);
  el.add(1, 2);
  el.add(0, 2);
  el.add(2, 3);
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(CsrGraph::from_edges(el)),
                   0.6);
}

TEST(Clustering, RingLatticeMatchesClosedForm) {
  // The Watts-Strogatz ring lattice at beta = 0 has clustering coefficient
  // C(k) = 3(k-2) / (4(k-1)) exactly (for n >> k).
  for (uint64_t k : {4ull, 6ull, 8ull}) {
    const CsrGraph g =
        CsrGraph::from_edges(watts_strogatz(2'000, k, 0.0, 1));
    const double expect = 3.0 * (static_cast<double>(k) - 2) /
                          (4.0 * (static_cast<double>(k) - 1));
    EXPECT_NEAR(global_clustering_coefficient(g), expect, 1e-9)
        << "k=" << k;
  }
}

TEST(Clustering, RewiringDestroysClustering) {
  // The defining small-world contrast: clustering collapses as beta -> 1.
  const double lattice = global_clustering_coefficient(
      CsrGraph::from_edges(watts_strogatz(3'000, 6, 0.0, 2)));
  const double random = global_clustering_coefficient(
      CsrGraph::from_edges(watts_strogatz(3'000, 6, 1.0, 2)));
  EXPECT_GT(lattice, 0.4);
  EXPECT_LT(random, 0.05);
  EXPECT_GT(lattice, 10 * random);
}

TEST(Clustering, GeometricGraphsAreClustered) {
  // Random geometric graphs have constant clustering (~0.5865 in the
  // plane); uniform random graphs of the same size have ~avg_deg/n.
  const double geometric = global_clustering_coefficient(
      CsrGraph::from_edges(random_geometric(4'000, 0.03, 3)));
  const double uniform = global_clustering_coefficient(
      CsrGraph::from_edges(random_graph_nm(4'000, 20'000, 3)));
  EXPECT_GT(geometric, 0.4);
  EXPECT_LT(uniform, 0.05);
}

}  // namespace
}  // namespace pargreedy
