// Companion TU for test_obs.cpp, compiled with the PARGREEDY_OBS seam
// forced OFF (see the target_compile_definitions in tests/CMakeLists.txt
// note — the define below wins because it precedes the include). Every
// PG_OBS_* macro here must expand to nothing: the probe metric names
// must never reach the registry, which ObsSeam.CompiledOutTuIsNoOp in
// the companion (seam-ON) TU asserts.
#define PARGREEDY_OBS 0
#include "obs/obs.hpp"

namespace pargreedy::obs {

void emit_disabled_seam_probes() {
  PG_OBS_COUNT("test.seam.counter", 1);
  PG_OBS_GAUGE("test.seam.gauge", 7);
  PG_OBS_HIST("test.seam.hist", 42);
  PG_OBS_SPAN(span, "test.seam.span", "test");
  PG_OBS_SPAN1(span1, "test.seam.span1", "test", "a", 1);
  PG_OBS_SPAN2(span2, "test.seam.span2", "test", "a", 1, "b", 2);
  PG_OBS_SPAN_ARG(span, "out", 3);
  PG_OBS_INSTANT("test.seam.instant", "test");
  // Labeled counters and the flight-recorder surface compile out too:
  // no labeled series registered, no events recorded, and the
  // correlation scopes reduce to ((void)0) so they cost nothing.
  PG_OBS_COUNT_L("test.seam.counter", "shard", "0", 1);
  PG_OBS_EVENT(kBatchBegin);
  PG_OBS_EVENT1(kBatchEnd, 1);
  PG_OBS_EVENT2(kReproRound, 1, 2);
  PG_OBS_EVENT_DUMP("test_seam");
  PG_OBS_BATCH_SCOPE(seam_batch);
  PG_OBS_TXN_SCOPE(seam_txn, 9);
  PG_OBS_SHARD_SCOPE(seam_shard, 3);
  static_assert(PG_OBS_BATCH_ID() == 0,
                "PG_OBS_BATCH_ID() must be the constant 0 when the obs "
                "layer is compiled out");
}

}  // namespace pargreedy::obs
