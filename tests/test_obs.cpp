// Unit tests for the observability layer (src/obs/): histogram bucket
// boundaries and percentile math, registry snapshot-under-mutation, span
// nesting and cross-thread merge, and both halves of the PARGREEDY_OBS
// seam (runtime switch here; the compile-time no-op TU is
// test_obs_disabled_seam.cpp, linked into this binary).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>

#include "obs/obs.hpp"

namespace pargreedy::obs {

// Defined in test_obs_disabled_seam.cpp, compiled with PARGREEDY_OBS=0:
// fires PG_OBS_* macros that must all be no-ops.
void emit_disabled_seam_probes();

namespace {

TEST(ObsHistogram, BucketIndexBoundaries) {
  // Bucket 0 holds exactly the value 0; bucket i >= 1 holds
  // [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  EXPECT_EQ(Histogram::bucket_index(1), 1);
  EXPECT_EQ(Histogram::bucket_index(2), 2);
  EXPECT_EQ(Histogram::bucket_index(3), 2);
  EXPECT_EQ(Histogram::bucket_index(4), 3);
  EXPECT_EQ(Histogram::bucket_index(7), 3);
  EXPECT_EQ(Histogram::bucket_index(8), 4);
  EXPECT_EQ(Histogram::bucket_index((uint64_t{1} << 32) - 1), 32);
  EXPECT_EQ(Histogram::bucket_index(uint64_t{1} << 32), 33);
  EXPECT_EQ(Histogram::bucket_index(~uint64_t{0}), 64);
}

TEST(ObsHistogram, BucketUpperBoundaries) {
  EXPECT_EQ(Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper(3), 7u);
  EXPECT_EQ(Histogram::bucket_upper(64), ~uint64_t{0});
  // Every value lands in the bucket whose range contains it.
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 5ull, 100ull, 4096ull}) {
    const int b = Histogram::bucket_index(v);
    EXPECT_LE(v, Histogram::bucket_upper(b)) << v;
    if (b > 0) EXPECT_GT(v, Histogram::bucket_upper(b - 1)) << v;
  }
}

TEST(ObsHistogram, PercentileMath) {
  Histogram h;
  // 50 samples of 1 and 50 of 1000: the median rank falls in bucket 1
  // (upper 1), p95/p99 in 1000's bucket (bit_width 10, upper 1023).
  for (int i = 0; i < 50; ++i) h.record(1);
  for (int i = 0; i < 50; ++i) h.record(1000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 50u + 50u * 1000u);
  const HistogramSummary s = h.summary();
  EXPECT_EQ(s.p50, 1u);
  EXPECT_EQ(s.p95, 1023u);
  EXPECT_EQ(s.p99, 1023u);
  EXPECT_EQ(s.max, 1023u);
}

TEST(ObsHistogram, QuantileEdgeCases) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);  // empty
  h.record(0);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
  h.record(6);  // bucket 3, upper 7
  EXPECT_EQ(h.quantile(0.25), 0u);   // rank 1 of 2 -> the zero sample
  EXPECT_EQ(h.quantile(1.0), 7u);    // rank 2 of 2 -> bucket 3
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.99), 0u);
}

TEST(ObsRegistry, CounterGaugeRoundTrip) {
  auto& reg = MetricsRegistry::global();
  Counter& c = reg.counter("test.roundtrip.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(reg.counter_value("test.roundtrip.counter"), 42u);
  EXPECT_EQ(reg.counter_value("test.never.registered"), 0u);
  // Same name -> same object (reference stability is the hot-path
  // contract: call sites cache the reference in a static).
  EXPECT_EQ(&c, &reg.counter("test.roundtrip.counter"));
  Gauge& g = reg.gauge("test.roundtrip.gauge");
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
}

TEST(ObsRegistry, SnapshotUnderMutation) {
  auto& reg = MetricsRegistry::global();
  Counter& c = reg.counter("test.mutation.counter");
  Histogram& h = reg.histogram("test.mutation.hist");
  std::atomic<bool> stop{false};
  // Writer hammers the metrics while the main thread snapshots: no
  // blocking, no torn registry state, and the counter value observed by
  // successive snapshots never decreases.
  // do-while: on a loaded single-core machine the main thread can finish
  // all its snapshots before the writer is first scheduled — at least one
  // record must land so the percentile check below has a sample.
  std::thread writer([&] {
    do {
      c.add();
      h.record(3);
    } while (!stop.load(std::memory_order_relaxed));
  });
  uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    const auto samples = reg.snapshot();
    uint64_t seen = 0;
    for (const auto& s : samples) {
      if (s.name == "test.mutation.counter") seen = s.counter;
    }
    EXPECT_GE(seen, last);
    last = seen;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_EQ(reg.counter_value("test.mutation.counter"), c.value());
  EXPECT_EQ(h.summary().p50, 3u);
}

TEST(ObsRegistry, JsonShape) {
  auto& reg = MetricsRegistry::global();
  reg.counter("test.json.counter").add(5);
  reg.histogram("test.json.hist").record(9);
  std::ostringstream out;
  reg.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ObsRuntime, SwitchGatesMacros) {
  set_enabled(true);
  PG_OBS_COUNT("test.runtime.gate", 1);
  const uint64_t after_on = counter_value("test.runtime.gate");
  EXPECT_EQ(after_on, 1u);
  set_enabled(false);
  PG_OBS_COUNT("test.runtime.gate", 1);
  PG_OBS_HIST("test.runtime.gate_hist", 10);
  EXPECT_EQ(counter_value("test.runtime.gate"), after_on);
  set_enabled(true);
  PG_OBS_COUNT("test.runtime.gate", 1);
  EXPECT_EQ(counter_value("test.runtime.gate"), after_on + 1);
}

TEST(ObsRuntime, TracerRefusesWhenDisabled) {
  set_enabled(false);
  EXPECT_FALSE(Tracer::global().start());
  set_enabled(true);
  EXPECT_TRUE(Tracer::global().start());
  Tracer::global().stop();
  Tracer::global().clear();
}

TEST(ObsTrace, SpanNestingAndThreadMerge) {
  set_enabled(true);
  auto& tracer = Tracer::global();
  tracer.clear();
  ASSERT_TRUE(tracer.start());
  {
    TraceSpan outer("outer", "test", "depth", 0);
    {
      TraceSpan inner("inner", "test", "depth", 1);
      trace_instant("tick", "test", "n", 7);
    }
  }
  std::thread worker([] {
    TraceSpan span("worker_span", "test");
  });
  worker.join();
  tracer.stop();

  EXPECT_GE(tracer.event_count(), 4u);
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  for (const char* name : {"outer", "inner", "tick", "worker_span"}) {
    EXPECT_NE(json.find(std::string("\"name\": \"") + name + "\""),
              std::string::npos)
        << name;
  }
  // The worker thread's buffer merged under its own tid with metadata.
  EXPECT_NE(json.find("obs-thread-1"), std::string::npos);
  // RAII closed inner before outer: both are complete events with args.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"depth\": 1"), std::string::npos);
  // Registered counters ride along as Chrome "C" events.
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("trace.dropped"), std::string::npos);

  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(ObsTrace, InactiveSpansRecordNothing) {
  set_enabled(true);
  auto& tracer = Tracer::global();
  tracer.stop();
  tracer.clear();
  {
    TraceSpan span("never_recorded", "test");
    trace_instant("never_recorded_instant", "test");
  }
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(ObsSeam, CompiledOutTuIsNoOp) {
  set_enabled(true);
  // The probe TU was compiled with PARGREEDY_OBS=0: its PG_OBS_* macros
  // must have expanded to nothing, so none of its metric names exist.
  emit_disabled_seam_probes();
  auto& reg = MetricsRegistry::global();
  EXPECT_EQ(reg.counter_value("test.seam.counter"), 0u);
  bool hist_registered = false;
  for (const auto& s : reg.snapshot()) {
    if (s.name == "test.seam.hist") hist_registered = true;
  }
  EXPECT_FALSE(hist_registered);
}

}  // namespace
}  // namespace pargreedy::obs
