// Unit tests for the observability layer (src/obs/): histogram bucket
// boundaries and percentile math, registry snapshot-under-mutation, span
// nesting and cross-thread merge, and both halves of the PARGREEDY_OBS
// seam (runtime switch here; the compile-time no-op TU is
// test_obs_disabled_seam.cpp, linked into this binary).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "dynamic/dynamic_mis.hpp"
#include "dynamic/update_batch.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "obs/obs.hpp"
#include "obs/prometheus.hpp"
#include "parallel/arch.hpp"

namespace pargreedy::obs {

// Defined in test_obs_disabled_seam.cpp, compiled with PARGREEDY_OBS=0:
// fires PG_OBS_* macros that must all be no-ops.
void emit_disabled_seam_probes();

namespace {

TEST(ObsHistogram, BucketIndexBoundaries) {
  // Bucket 0 holds exactly the value 0; bucket i >= 1 holds
  // [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  EXPECT_EQ(Histogram::bucket_index(1), 1);
  EXPECT_EQ(Histogram::bucket_index(2), 2);
  EXPECT_EQ(Histogram::bucket_index(3), 2);
  EXPECT_EQ(Histogram::bucket_index(4), 3);
  EXPECT_EQ(Histogram::bucket_index(7), 3);
  EXPECT_EQ(Histogram::bucket_index(8), 4);
  EXPECT_EQ(Histogram::bucket_index((uint64_t{1} << 32) - 1), 32);
  EXPECT_EQ(Histogram::bucket_index(uint64_t{1} << 32), 33);
  EXPECT_EQ(Histogram::bucket_index(~uint64_t{0}), 64);
}

TEST(ObsHistogram, BucketUpperBoundaries) {
  EXPECT_EQ(Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper(3), 7u);
  EXPECT_EQ(Histogram::bucket_upper(64), ~uint64_t{0});
  // Every value lands in the bucket whose range contains it.
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 5ull, 100ull, 4096ull}) {
    const int b = Histogram::bucket_index(v);
    EXPECT_LE(v, Histogram::bucket_upper(b)) << v;
    if (b > 0) EXPECT_GT(v, Histogram::bucket_upper(b - 1)) << v;
  }
}

TEST(ObsHistogram, PercentileMath) {
  Histogram h;
  // 50 samples of 1 and 50 of 1000: the median rank falls in bucket 1
  // (upper 1), p95/p99 in 1000's bucket (bit_width 10, upper 1023).
  for (int i = 0; i < 50; ++i) h.record(1);
  for (int i = 0; i < 50; ++i) h.record(1000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 50u + 50u * 1000u);
  const HistogramSummary s = h.summary();
  EXPECT_EQ(s.p50, 1u);
  EXPECT_EQ(s.p95, 1023u);
  EXPECT_EQ(s.p99, 1023u);
  EXPECT_EQ(s.max, 1023u);
}

TEST(ObsHistogram, QuantileEdgeCases) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);  // empty
  h.record(0);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
  h.record(6);  // bucket 3, upper 7
  EXPECT_EQ(h.quantile(0.25), 0u);   // rank 1 of 2 -> the zero sample
  EXPECT_EQ(h.quantile(1.0), 7u);    // rank 2 of 2 -> bucket 3
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.99), 0u);
}

TEST(ObsRegistry, CounterGaugeRoundTrip) {
  auto& reg = MetricsRegistry::global();
  Counter& c = reg.counter("test.roundtrip.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(reg.counter_value("test.roundtrip.counter"), 42u);
  EXPECT_EQ(reg.counter_value("test.never.registered"), 0u);
  // Same name -> same object (reference stability is the hot-path
  // contract: call sites cache the reference in a static).
  EXPECT_EQ(&c, &reg.counter("test.roundtrip.counter"));
  Gauge& g = reg.gauge("test.roundtrip.gauge");
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
}

TEST(ObsRegistry, SnapshotUnderMutation) {
  auto& reg = MetricsRegistry::global();
  Counter& c = reg.counter("test.mutation.counter");
  Histogram& h = reg.histogram("test.mutation.hist");
  std::atomic<bool> stop{false};
  // Writer hammers the metrics while the main thread snapshots: no
  // blocking, no torn registry state, and the counter value observed by
  // successive snapshots never decreases.
  // do-while: on a loaded single-core machine the main thread can finish
  // all its snapshots before the writer is first scheduled — at least one
  // record must land so the percentile check below has a sample.
  std::thread writer([&] {
    do {
      c.add();
      h.record(3);
    } while (!stop.load(std::memory_order_relaxed));
  });
  uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    const auto samples = reg.snapshot();
    uint64_t seen = 0;
    for (const auto& s : samples) {
      if (s.name == "test.mutation.counter") seen = s.counter;
    }
    EXPECT_GE(seen, last);
    last = seen;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_EQ(reg.counter_value("test.mutation.counter"), c.value());
  EXPECT_EQ(h.summary().p50, 3u);
}

TEST(ObsRegistry, JsonShape) {
  auto& reg = MetricsRegistry::global();
  reg.counter("test.json.counter").add(5);
  reg.histogram("test.json.hist").record(9);
  std::ostringstream out;
  reg.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ObsRuntime, SwitchGatesMacros) {
  set_enabled(true);
  PG_OBS_COUNT("test.runtime.gate", 1);
  const uint64_t after_on = counter_value("test.runtime.gate");
  EXPECT_EQ(after_on, 1u);
  set_enabled(false);
  PG_OBS_COUNT("test.runtime.gate", 1);
  PG_OBS_HIST("test.runtime.gate_hist", 10);
  EXPECT_EQ(counter_value("test.runtime.gate"), after_on);
  set_enabled(true);
  PG_OBS_COUNT("test.runtime.gate", 1);
  EXPECT_EQ(counter_value("test.runtime.gate"), after_on + 1);
}

TEST(ObsRuntime, TracerRefusesWhenDisabled) {
  set_enabled(false);
  EXPECT_FALSE(Tracer::global().start());
  set_enabled(true);
  EXPECT_TRUE(Tracer::global().start());
  Tracer::global().stop();
  Tracer::global().clear();
}

TEST(ObsTrace, SpanNestingAndThreadMerge) {
  set_enabled(true);
  auto& tracer = Tracer::global();
  tracer.clear();
  ASSERT_TRUE(tracer.start());
  {
    TraceSpan outer("outer", "test", "depth", 0);
    {
      TraceSpan inner("inner", "test", "depth", 1);
      trace_instant("tick", "test", "n", 7);
    }
  }
  std::thread worker([] {
    TraceSpan span("worker_span", "test");
  });
  worker.join();
  tracer.stop();

  EXPECT_GE(tracer.event_count(), 4u);
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  for (const char* name : {"outer", "inner", "tick", "worker_span"}) {
    EXPECT_NE(json.find(std::string("\"name\": \"") + name + "\""),
              std::string::npos)
        << name;
  }
  // The worker thread's buffer merged under its own tid with metadata.
  EXPECT_NE(json.find("obs-thread-1"), std::string::npos);
  // RAII closed inner before outer: both are complete events with args.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"depth\": 1"), std::string::npos);
  // Registered counters ride along as Chrome "C" events.
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("trace.dropped"), std::string::npos);

  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(ObsTrace, InactiveSpansRecordNothing) {
  set_enabled(true);
  auto& tracer = Tracer::global();
  tracer.stop();
  tracer.clear();
  {
    TraceSpan span("never_recorded", "test");
    trace_instant("never_recorded_instant", "test");
  }
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(ObsLabels, LabeledNameCanonicalForm) {
  EXPECT_EQ(labeled_name("shard.seeds", "shard", "3"),
            "shard.seeds{shard=\"3\"}");
  // Multi-label form sorts keys so equal label sets intern to one series.
  EXPECT_EQ(labeled_name("x", {{"b", "2"}, {"a", "1"}}),
            "x{a=\"1\",b=\"2\"}");
  // Label values are escaped so the canonical key (and the Prometheus
  // exposition derived from it) stays parseable.
  EXPECT_EQ(labeled_name("x", "k", "say \"hi\"\\"),
            "x{k=\"say \\\"hi\\\"\\\\\"}");
}

TEST(ObsLabels, SplitLabelsRoundTrip) {
  const auto [base, labels] = split_labels("shard.seeds{shard=\"3\"}");
  EXPECT_EQ(base, "shard.seeds");
  EXPECT_EQ(labels, "shard=\"3\"");
  const auto [plain_base, plain_labels] = split_labels("engine.rounds");
  EXPECT_EQ(plain_base, "engine.rounds");
  EXPECT_TRUE(plain_labels.empty());
}

TEST(ObsLabels, LabeledSeriesAreDistinctAndAdditive) {
  set_enabled(true);
  auto& reg = MetricsRegistry::global();
  // The macro contract: labeled bumps ride ALONGSIDE the unlabeled base
  // (call sites bump both), so the base total stays the cross-label sum.
  PG_OBS_COUNT("test.labels.total", 2);
  PG_OBS_COUNT_L("test.labels.total", "shard", "0", 1);
  PG_OBS_COUNT_L("test.labels.total", "shard", "1", 1);
  PG_OBS_COUNT_L("test.labels.total", "shard", "1", 0);  // registers only
  EXPECT_EQ(reg.counter_value("test.labels.total"), 2u);
  EXPECT_EQ(reg.counter_value("test.labels.total{shard=\"0\"}"), 1u);
  EXPECT_EQ(reg.counter_value("test.labels.total{shard=\"1\"}"), 1u);
  // Reference stability holds per label set, as for unlabeled series.
  EXPECT_EQ(&reg.counter("test.labels.total", "shard", "0"),
            &reg.counter("test.labels.total", "shard", "0"));
  EXPECT_NE(&reg.counter("test.labels.total", "shard", "0"),
            &reg.counter("test.labels.total", "shard", "1"));
}

TEST(ObsLabels, LabeledSnapshotUnderMutation) {
  auto& reg = MetricsRegistry::global();
  Counter& c0 = reg.counter("test.labels.mutation", "shard", "0");
  std::atomic<bool> stop{false};
  // Writer hammers one labeled series while the main thread snapshots
  // AND registers fresh labeled series: no blocking, no torn names, and
  // the labeled value observed by successive snapshots never decreases.
  std::thread writer([&] {
    do {
      c0.add();
    } while (!stop.load(std::memory_order_relaxed));
  });
  uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    reg.counter("test.labels.mutation", "shard", std::to_string(i % 4))
        .add(0);
    uint64_t seen = 0;
    for (const auto& s : reg.snapshot()) {
      if (s.name == "test.labels.mutation{shard=\"0\"}") seen = s.counter;
    }
    EXPECT_GE(seen, last);
    last = seen;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_EQ(reg.counter_value("test.labels.mutation{shard=\"0\"}"),
            c0.value());
}

TEST(ObsEvents, RingOverflowAccounting) {
  set_enabled(true);
  static EventRecorder rec;  // static: thread ring caches outlive the test
  constexpr std::size_t kOverflow = 37;
  for (std::size_t i = 0; i < EventRecorder::kRingCapacity + kOverflow; ++i)
    rec.record(EventKind::kReproRound, i, 0);
  EXPECT_EQ(rec.event_count(), EventRecorder::kRingCapacity);
  EXPECT_EQ(rec.overwritten(), kOverflow);
  const auto events = rec.merged();
  ASSERT_EQ(events.size(), EventRecorder::kRingCapacity);
  // Oldest retained record is the first survivor of the wrap-around;
  // newest is the last record ever made.
  EXPECT_EQ(events.front().arg0, kOverflow);
  EXPECT_EQ(events.back().arg0,
            EventRecorder::kRingCapacity + kOverflow - 1);
  rec.clear();
  EXPECT_EQ(rec.event_count(), 0u);
  EXPECT_EQ(rec.overwritten(), 0u);
}

TEST(ObsEvents, CorrelationScopesNestAndRestore) {
  set_enabled(true);
  static EventRecorder rec;
  rec.clear();
  {
    BatchScope outer;
    const uint64_t outer_id = current_batch_id();
    EXPECT_GT(outer_id, 0u);
    {
      // Inner scope inherits: this is what keeps one sharded UpdateBatch
      // a single batch_id across the per-shard engine applies.
      BatchScope inner;
      EXPECT_EQ(current_batch_id(), outer_id);
      TxnScope txn(42);
      ShardScope shard(3);
      rec.record(EventKind::kShardApply, 7, 0);
    }
    rec.record(EventKind::kBatchEnd, 0, 0);
  }
  EXPECT_EQ(current_batch_id(), 0u);
  const auto events = rec.merged();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_GT(events[0].batch_id, 0u);
  EXPECT_EQ(events[0].txn_id, 42u);
  EXPECT_EQ(events[0].shard_id, 3u);
  // Scopes restored: the second record is back outside txn/shard context
  // but still inside the batch.
  EXPECT_EQ(events[1].batch_id, events[0].batch_id);
  EXPECT_EQ(events[1].txn_id, 0u);
  EXPECT_EQ(events[1].shard_id, kNoShard);
  rec.clear();
}

TEST(ObsEvents, JsonShape) {
  set_enabled(true);
  static EventRecorder rec;
  rec.clear();
  {
    ShardScope shard(2);
    rec.record(EventKind::kExchangeRound, 1, 64);
  }
  rec.record(EventKind::kTxnAbort, 1, 0);
  std::ostringstream out;
  rec.write_json(out, "unit_test");
  const std::string json = out.str();
  EXPECT_NE(json.find("\"schema\": \"pargreedy-events-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"reason\": \"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"overwritten\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"shard.exchange_round\""),
            std::string::npos);
  EXPECT_NE(json.find("\"shard_id\": 2"), std::string::npos);
  // The no-shard sentinel is emitted as -1, never as 2^32-1.
  EXPECT_NE(json.find("\"shard_id\": -1"), std::string::npos);
  EXPECT_EQ(json.find(std::to_string(kNoShard)), std::string::npos);
  rec.clear();
}

TEST(ObsEvents, MergedStreamIsDeterministicAcrossWorkers) {
  set_enabled(true);
  // The engine-facing determinism contract: the flight-recorder stream
  // for one deterministic workload is identical at any worker count
  // (events record deterministic quantities from driver-synchronous
  // code; merged() keeps per-ring recording order).
  auto run = [](int workers) {
    ScopedNumWorkers guard(workers);
    EventRecorder::global().clear();
    DynamicMis dm(EngineOptions::seeded(
        CsrGraph::from_edges(path_graph(256)), 11));
    UpdateBatch batch;
    batch.insert_edge(0, 255).insert_edge(17, 200).insert_edge(3, 128);
    batch.delete_edge(10, 11);
    dm.apply_batch(batch);
    std::vector<std::tuple<uint16_t, uint64_t, uint64_t>> stream;
    for (const EventRecord& e : EventRecorder::global().merged())
      stream.emplace_back(e.kind, e.arg0, e.arg1);
    return stream;
  };
  const auto at1 = run(1);
  EXPECT_FALSE(at1.empty());
  EXPECT_EQ(run(2), at1);
  EXPECT_EQ(run(4), at1);
  EventRecorder::global().clear();
}

TEST(ObsPrometheus, ExpositionShape) {
  set_enabled(true);
  auto& reg = MetricsRegistry::global();
  reg.counter("test.prom.counter").add(5);
  reg.counter("test.prom.counter", "shard", "0").add(2);
  reg.counter("test.prom.counter", "shard", "1").add(3);
  reg.gauge("test.prom.gauge").set(9);
  reg.histogram("test.prom.hist").record(100);
  std::ostringstream out;
  write_prometheus(out);
  const std::string text = out.str();
  // Names are sanitized ('.' is illegal) and namespaced; one TYPE line
  // heads the whole family, labeled variants ride under it.
  EXPECT_NE(text.find("# TYPE pargreedy_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("\npargreedy_test_prom_counter 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("pargreedy_test_prom_counter{shard=\"0\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("pargreedy_test_prom_counter{shard=\"1\"} 3"),
            std::string::npos);
  EXPECT_EQ(text.find("test.prom"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pargreedy_test_prom_gauge gauge"),
            std::string::npos);
  // Power-of-two histograms export as summaries: three quantiles plus
  // _sum and _count.
  EXPECT_NE(text.find("# TYPE pargreedy_test_prom_hist summary"),
            std::string::npos);
  for (const char* q : {"0.5", "0.95", "0.99"}) {
    EXPECT_NE(
        text.find("pargreedy_test_prom_hist{quantile=\"" + std::string(q)),
        std::string::npos)
        << q;
  }
  EXPECT_NE(text.find("pargreedy_test_prom_hist_sum 100"),
            std::string::npos);
  EXPECT_NE(text.find("pargreedy_test_prom_hist_count 1"),
            std::string::npos);
}

TEST(ObsSeam, CompiledOutTuIsNoOp) {
  set_enabled(true);
  // The probe TU was compiled with PARGREEDY_OBS=0: its PG_OBS_* macros
  // must have expanded to nothing, so none of its metric names exist.
  emit_disabled_seam_probes();
  auto& reg = MetricsRegistry::global();
  EXPECT_EQ(reg.counter_value("test.seam.counter"), 0u);
  bool hist_registered = false;
  for (const auto& s : reg.snapshot()) {
    if (s.name == "test.seam.hist") hist_registered = true;
  }
  EXPECT_FALSE(hist_registered);
}

}  // namespace
}  // namespace pargreedy::obs
