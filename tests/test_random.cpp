// Unit tests for the randomness substrate (src/random/): counter-based
// hashing, xoshiro256**, and the random permutations whose uniformity the
// paper's main theorem quantifies over.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "parallel/arch.hpp"
#include "random/hash.hpp"
#include "random/permutation.hpp"
#include "random/xoshiro.hpp"

namespace pargreedy {
namespace {

// ------------------------------------------------------------------ hash ---

TEST(Hash, Mix64IsBijectiveOnSamples) {
  // Bijectivity can't be checked exhaustively; check no collisions across a
  // large structured sample (consecutive ints are the adversarial case for
  // weak mixers).
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 200'000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 200'000u);
}

TEST(Hash, Hash64DependsOnSeedAndIndex) {
  EXPECT_NE(hash64(1, 0), hash64(2, 0));
  EXPECT_NE(hash64(1, 0), hash64(1, 1));
  EXPECT_EQ(hash64(42, 17), hash64(42, 17));  // pure function
}

TEST(Hash, Hash64BitsLookUniform) {
  // Each of the 64 bit positions should be set about half the time.
  const int n = 40'000;
  int counts[64] = {};
  for (int i = 0; i < n; ++i) {
    const uint64_t h = hash64(7, static_cast<uint64_t>(i));
    for (int b = 0; b < 64; ++b) counts[b] += (h >> b) & 1;
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_GT(counts[b], n / 2 - n / 20) << "bit " << b;
    EXPECT_LT(counts[b], n / 2 + n / 20) << "bit " << b;
  }
}

TEST(Hash, RangeStaysInBounds) {
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1'000'003ull}) {
    for (uint64_t i = 0; i < 1'000; ++i) {
      EXPECT_LT(hash_range(5, i, bound), bound);
    }
  }
}

TEST(Hash, RangeIsRoughlyUniform) {
  const uint64_t bound = 10;
  const int n = 100'000;
  std::vector<int> counts(bound, 0);
  for (int i = 0; i < n; ++i)
    ++counts[hash_range(3, static_cast<uint64_t>(i), bound)];
  for (uint64_t b = 0; b < bound; ++b) {
    EXPECT_GT(counts[b], n / 10 - n / 50) << "bucket " << b;
    EXPECT_LT(counts[b], n / 10 + n / 50) << "bucket " << b;
  }
}

TEST(Hash, UnitIsInHalfOpenInterval) {
  double sum = 0.0;
  for (uint64_t i = 0; i < 50'000; ++i) {
    const double u = hash_unit(11, i);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 50'000, 0.5, 0.01);
}

TEST(Hash, RngChildStreamsDiffer) {
  const HashRng root(123);
  const HashRng a = root.child(1);
  const HashRng b = root.child(2);
  EXPECT_NE(a.seed(), b.seed());
  EXPECT_NE(a.bits(0), b.bits(0));
  // Children are reproducible.
  EXPECT_EQ(root.child(1).seed(), a.seed());
}

// --------------------------------------------------------------- xoshiro ---

TEST(Xoshiro, DeterministicInSeed) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  for (int i = 0; i < 1'000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, SeedsProduceDifferentStreams) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, RangeInBounds) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(rng.range(17), 17u);
}

TEST(Xoshiro, UnitMeanIsHalf) {
  Xoshiro256 rng(6);
  double sum = 0.0;
  for (int i = 0; i < 50'000; ++i) {
    const double u = rng.unit();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 50'000, 0.5, 0.01);
}

TEST(Xoshiro, JumpDecorrelatesStreams) {
  Xoshiro256 a(77);
  Xoshiro256 b(77);
  b.jump();
  int same = 0;
  for (int i = 0; i < 1'000; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LE(same, 1);
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  EXPECT_EQ(Xoshiro256::min(), 0u);
  EXPECT_EQ(Xoshiro256::max(), ~uint64_t{0});
}

// ---------------------------------------------------------- permutations ---

TEST(Permutation, RandomPermutationIsValid) {
  for (uint64_t n : {0ull, 1ull, 2ull, 100ull, 10'000ull}) {
    const std::vector<uint32_t> p = random_permutation(n, 42);
    EXPECT_EQ(p.size(), n);
    EXPECT_TRUE(is_valid_permutation(p)) << "n=" << n;
  }
}

TEST(Permutation, DeterministicInSeed) {
  EXPECT_EQ(random_permutation(5'000, 7), random_permutation(5'000, 7));
}

TEST(Permutation, SeedsDiffer) {
  EXPECT_NE(random_permutation(5'000, 7), random_permutation(5'000, 8));
}

TEST(Permutation, IndependentOfWorkerCount) {
  // The determinism guarantee the whole library rests on: pi is a pure
  // function of (n, seed), never of scheduling.
  std::vector<uint32_t> serial;
  {
    ScopedNumWorkers guard(1);
    serial = random_permutation(100'000, 3);
  }
  for (int workers : {2, 4, 8}) {
    ScopedNumWorkers guard(workers);
    EXPECT_EQ(random_permutation(100'000, 3), serial)
        << "workers=" << workers;
  }
}

TEST(Permutation, PositionMeansAreUniform) {
  // If the permutation is uniform, E[position of element v] = (n-1)/2 for
  // every v. Average over many seeds and check a generous tolerance.
  const uint64_t n = 101;
  const int trials = 400;
  std::vector<double> mean_pos(n, 0.0);
  for (int t = 0; t < trials; ++t) {
    const std::vector<uint32_t> p =
        random_permutation(n, static_cast<uint64_t>(t));
    for (uint64_t i = 0; i < n; ++i)
      mean_pos[p[i]] += static_cast<double>(i) / trials;
  }
  const double expect = (static_cast<double>(n) - 1) / 2;
  // Std-dev of a single position is ~n/sqrt(12); of the mean, /sqrt(trials).
  const double tol = 5.0 * (static_cast<double>(n) / std::sqrt(12.0)) /
                     std::sqrt(static_cast<double>(trials));
  for (uint64_t v = 0; v < n; ++v)
    EXPECT_NEAR(mean_pos[v], expect, tol) << "v=" << v;
}

TEST(Permutation, FisherYatesIsValid) {
  Xoshiro256 rng(11);
  const std::vector<uint32_t> p = fisher_yates_permutation(10'000, rng);
  EXPECT_TRUE(is_valid_permutation(p));
}

TEST(Permutation, FisherYatesSmallCasesExhaustive) {
  // n = 3 has 6 permutations; all should appear over many trials with
  // roughly equal frequency (sanity-check of the shuffle's uniformity).
  std::map<std::vector<uint32_t>, int> counts;
  Xoshiro256 rng(13);
  const int trials = 6'000;
  for (int t = 0; t < trials; ++t) counts[fisher_yates_permutation(3, rng)]++;
  EXPECT_EQ(counts.size(), 6u);
  for (const auto& [perm, count] : counts) {
    EXPECT_GT(count, trials / 6 - trials / 12);
    EXPECT_LT(count, trials / 6 + trials / 12);
  }
}

TEST(Permutation, InvertRoundTrips) {
  const std::vector<uint32_t> p = random_permutation(5'000, 21);
  const std::vector<uint32_t> r = invert_permutation(p);
  ASSERT_EQ(r.size(), p.size());
  for (uint32_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(r[p[i]], i);
    EXPECT_EQ(p[r[i]], i);
  }
}

TEST(Permutation, ValidationRejectsBadInputs) {
  EXPECT_TRUE(is_valid_permutation(std::vector<uint32_t>{}));
  EXPECT_TRUE(is_valid_permutation(std::vector<uint32_t>{0}));
  EXPECT_FALSE(is_valid_permutation(std::vector<uint32_t>{1}));       // range
  EXPECT_FALSE(is_valid_permutation(std::vector<uint32_t>{0, 0}));    // dup
  EXPECT_FALSE(is_valid_permutation(std::vector<uint32_t>{2, 0, 2})); // both
  EXPECT_TRUE(is_valid_permutation(std::vector<uint32_t>{2, 0, 1}));
}

TEST(Permutation, ParallelSortByKeyMatchesStdSort) {
  ScopedNumWorkers guard(4);
  const uint64_t n = 200'000;  // above the parallel-sort threshold
  std::vector<uint32_t> items(n);
  for (uint32_t i = 0; i < n; ++i) items[i] = i;
  std::vector<uint64_t> keys(n);
  for (uint64_t i = 0; i < n; ++i) keys[i] = hash64(31, i) % 1'000;  // ties
  std::vector<uint32_t> expect = items;
  std::sort(expect.begin(), expect.end(), [&](uint32_t a, uint32_t b) {
    return keys[a] != keys[b] ? keys[a] < keys[b] : a < b;
  });
  parallel_sort_by_key(std::span<uint32_t>(items), keys);
  EXPECT_EQ(items, expect);
}

}  // namespace
}  // namespace pargreedy
