// Cross-cutting determinism suite — the paper's central practical promise
// (Section 1): "once an ordering is fixed, the approach guarantees the same
// result whether run in parallel or sequentially, or, in fact, choosing any
// schedule of the iterations that respects the dependences."
//
// Every randomized component must be a pure function of its seed, and every
// algorithm a pure function of (graph, ordering) — independent of worker
// count, window size, and repetition.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/matching/matching.hpp"
#include "core/mis/mis.hpp"
#include "extensions/coloring.hpp"
#include "extensions/spanning_forest.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "parallel/arch.hpp"

namespace pargreedy {
namespace {

struct Fixture {
  CsrGraph g;
  VertexOrder vorder;
  EdgeOrder eorder;

  static Fixture make(uint64_t seed) {
    Fixture f;
    f.g = CsrGraph::from_edges(random_graph_nm(1'500, 7'500, seed));
    f.vorder = VertexOrder::random(f.g.num_vertices(), seed + 1);
    f.eorder = EdgeOrder::random(f.g.num_edges(), seed + 2);
    return f;
  }
};

class DeterminismAcrossWidths : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeterminismAcrossWidths, EveryMisVariantIsByteIdenticalEverywhere) {
  const Fixture f = Fixture::make(GetParam());
  std::vector<uint8_t> reference;
  for (int workers : {1, 2, 4, 8}) {
    ScopedNumWorkers guard(workers);
    const std::vector<std::vector<uint8_t>> results = {
        mis_sequential(f.g, f.vorder).in_set,
        mis_parallel_naive(f.g, f.vorder).in_set,
        mis_rootset(f.g, f.vorder).in_set,
        mis_prefix(f.g, f.vorder, 1).in_set,
        mis_prefix(f.g, f.vorder, 64).in_set,
        mis_prefix(f.g, f.vorder, f.g.num_vertices()).in_set,
    };
    if (reference.empty()) reference = results[0];
    for (std::size_t i = 0; i < results.size(); ++i)
      EXPECT_EQ(results[i], reference)
          << "variant " << i << " at " << workers << " workers";
  }
}

TEST_P(DeterminismAcrossWidths, EveryMmVariantIsByteIdenticalEverywhere) {
  const Fixture f = Fixture::make(GetParam());
  std::vector<uint8_t> reference;
  for (int workers : {1, 2, 4, 8}) {
    ScopedNumWorkers guard(workers);
    const std::vector<std::vector<uint8_t>> results = {
        mm_sequential(f.g, f.eorder).in_matching,
        mm_parallel_naive(f.g, f.eorder).in_matching,
        mm_rootset(f.g, f.eorder).in_matching,
        mm_prefix(f.g, f.eorder, 1).in_matching,
        mm_prefix(f.g, f.eorder, 64).in_matching,
        mm_prefix(f.g, f.eorder, f.g.num_edges()).in_matching,
    };
    if (reference.empty()) reference = results[0];
    for (std::size_t i = 0; i < results.size(); ++i)
      EXPECT_EQ(results[i], reference)
          << "variant " << i << " at " << workers << " workers";
  }
}

TEST_P(DeterminismAcrossWidths, ExtensionsAreByteIdenticalEverywhere) {
  const Fixture f = Fixture::make(GetParam());
  std::vector<uint8_t> forest_ref;
  std::vector<uint32_t> color_ref;
  for (int workers : {1, 2, 4}) {
    ScopedNumWorkers guard(workers);
    const ForestResult forest = spanning_forest_prefix(f.g, f.eorder, 128);
    const ColoringResult coloring =
        greedy_coloring_prefix(f.g, f.vorder, 128);
    if (forest_ref.empty()) {
      forest_ref = forest.in_forest;
      color_ref = coloring.color;
    }
    EXPECT_EQ(forest.in_forest, forest_ref) << workers << " workers";
    EXPECT_EQ(coloring.color, color_ref) << workers << " workers";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismAcrossWidths,
                         ::testing::Values(0, 1, 2, 3));

TEST(Determinism, RepeatedRunsAreStable) {
  // Same inputs, same process, many repetitions: results never wobble
  // (catches e.g. accidental use of unseeded randomness or memory reuse).
  const Fixture f = Fixture::make(99);
  ScopedNumWorkers guard(4);
  const std::vector<uint8_t> mis0 = mis_prefix(f.g, f.vorder, 100).in_set;
  const std::vector<uint8_t> mm0 = mm_prefix(f.g, f.eorder, 100).in_matching;
  for (int rep = 0; rep < 5; ++rep) {
    EXPECT_EQ(mis_prefix(f.g, f.vorder, 100).in_set, mis0);
    EXPECT_EQ(mm_prefix(f.g, f.eorder, 100).in_matching, mm0);
  }
}

TEST(Determinism, WindowSizeNeverChangesTheAnswer) {
  // The window is a *performance* dial, not a semantic one: sweep it finely.
  const Fixture f = Fixture::make(123);
  const std::vector<uint8_t> mis_ref = mis_sequential(f.g, f.vorder).in_set;
  const std::vector<uint8_t> mm_ref =
      mm_sequential(f.g, f.eorder).in_matching;
  for (uint64_t w = 1; w <= f.g.num_vertices(); w = w * 3 + 1) {
    EXPECT_EQ(mis_prefix(f.g, f.vorder, w).in_set, mis_ref) << "w=" << w;
  }
  for (uint64_t w = 1; w <= f.g.num_edges(); w = w * 3 + 1) {
    EXPECT_EQ(mm_prefix(f.g, f.eorder, w).in_matching, mm_ref) << "w=" << w;
  }
}

TEST(Determinism, WholePipelineIsAPureFunctionOfSeeds) {
  // End to end: generator -> CSR -> ordering -> algorithm, twice, at
  // different worker counts, must produce bit-identical artifacts.
  auto run = [](int workers) {
    ScopedNumWorkers guard(workers);
    const CsrGraph g = CsrGraph::from_edges(rmat_graph(11, 8'000, 5));
    const VertexOrder vo = VertexOrder::random(g.num_vertices(), 6);
    const EdgeOrder eo = EdgeOrder::random(g.num_edges(), 7);
    return std::make_tuple(mis_rootset(g, vo).in_set,
                           mm_rootset(g, eo).in_matching,
                           luby_mis(g, 8).in_set);
  };
  const auto a = run(1);
  const auto b = run(4);
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
}

TEST(Determinism, ProfilesOfWindowedAlgorithmsAreScheduleIndependent) {
  // Not just the answers: the *round counts* of the windowed algorithms are
  // pure functions of (graph, order, window) — this is what makes the
  // Figure 1(b)/2(b) series reproducible on any machine.
  const Fixture f = Fixture::make(321);
  uint64_t mis_rounds = 0;
  uint64_t mm_rounds = 0;
  for (int workers : {1, 2, 4}) {
    ScopedNumWorkers guard(workers);
    const uint64_t mr =
        mis_prefix(f.g, f.vorder, 200, ProfileLevel::kCounters)
            .profile.rounds;
    const uint64_t er =
        mm_prefix(f.g, f.eorder, 200, ProfileLevel::kCounters)
            .profile.rounds;
    if (mis_rounds == 0) {
      mis_rounds = mr;
      mm_rounds = er;
    }
    EXPECT_EQ(mr, mis_rounds) << "workers=" << workers;
    EXPECT_EQ(er, mm_rounds) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace pargreedy
