// Unit tests for the greedy spanning-forest extension — the paper's
// suggested future-work application (Section 7). The prefix-parallel
// version must return the *identical* edge set as the sequential greedy
// (Kruskal-without-weights) loop, for any window and worker count.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "extensions/spanning_forest.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "graph/graph_ops.hpp"
#include "parallel/arch.hpp"

namespace pargreedy {
namespace {

TEST(SpanningForestSequential, TreeInputKeepsEveryEdge) {
  const CsrGraph g = CsrGraph::from_edges(binary_tree(127));
  const ForestResult r =
      spanning_forest_sequential(g, EdgeOrder::random(g.num_edges(), 1));
  EXPECT_EQ(r.size(), g.num_edges());
  EXPECT_TRUE(is_spanning_forest(g, r.in_forest));
}

TEST(SpanningForestSequential, CycleDropsExactlyTheLastEdge) {
  // On a cycle, the forest keeps every edge except the one whose endpoints
  // are already connected — which is always the *last* edge in the order.
  const CsrGraph g = CsrGraph::from_edges(cycle_graph(50));
  const EdgeOrder order = EdgeOrder::random(50, 2);
  const ForestResult r = spanning_forest_sequential(g, order);
  EXPECT_EQ(r.size(), 49u);
  EXPECT_FALSE(r.in_forest[order.nth(49)]);
}

TEST(SpanningForestSequential, SizeIsVerticesMinusComponents) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    // Sparse graph with many components.
    const CsrGraph g =
        CsrGraph::from_edges(random_graph_nm(2'000, 1'200, seed));
    const ForestResult r =
        spanning_forest_sequential(g, EdgeOrder::random(g.num_edges(), seed));
    EXPECT_EQ(r.size(), g.num_vertices() - count_components(g));
    EXPECT_TRUE(is_spanning_forest(g, r.in_forest));
  }
}

TEST(SpanningForestSequential, FirstEdgeAlwaysKept) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(300, 1'500, 4));
  const EdgeOrder order = EdgeOrder::random(g.num_edges(), 5);
  const ForestResult r = spanning_forest_sequential(g, order);
  EXPECT_TRUE(r.in_forest[order.nth(0)]);
}

class ForestFamilies : public ::testing::TestWithParam<int> {};

CsrGraph forest_graph(int which, uint64_t seed) {
  switch (which) {
    case 0: return CsrGraph::from_edges(random_graph_nm(500, 2'000, seed));
    case 1: return CsrGraph::from_edges(rmat_graph(9, 1'500, seed));
    case 2: return CsrGraph::from_edges(grid_graph(20, 20));
    case 3: return CsrGraph::from_edges(complete_graph(40));
    case 4: return CsrGraph::from_edges(cycle_graph(401));
    case 5: return CsrGraph::from_edges(star_graph(300));
    // Disconnected: two separated sparse blobs.
    default: {
      EdgeList el = random_graph_nm(400, 600, seed);
      EdgeList shifted(800);
      for (const Edge& e : el.edges()) shifted.add(e.u, e.v);
      for (const Edge& e : el.edges()) shifted.add(e.u + 400, e.v + 400);
      return CsrGraph::from_edges(shifted);
    }
  }
}

TEST_P(ForestFamilies, PrefixEqualsSequentialAcrossWindows) {
  for (uint64_t seed = 0; seed < 2; ++seed) {
    const CsrGraph g = forest_graph(GetParam(), seed);
    const uint64_t m = g.num_edges();
    const EdgeOrder order = EdgeOrder::random(m, seed + 11);
    const ForestResult expect = spanning_forest_sequential(g, order);
    for (uint64_t window : {uint64_t{1}, uint64_t{17}, m / 4 + 1, m}) {
      const ForestResult got = spanning_forest_prefix(g, order, window);
      EXPECT_EQ(got.in_forest, expect.in_forest)
          << "window=" << window << " seed=" << seed;
    }
  }
}

TEST_P(ForestFamilies, PrefixResultIsAValidForest) {
  const CsrGraph g = forest_graph(GetParam(), 7);
  const EdgeOrder order = EdgeOrder::random(g.num_edges(), 8);
  const ForestResult r =
      spanning_forest_prefix(g, order, g.num_edges() / 3 + 1);
  EXPECT_TRUE(is_spanning_forest(g, r.in_forest));
}

INSTANTIATE_TEST_SUITE_P(Families, ForestFamilies, ::testing::Range(0, 7));

TEST(SpanningForestPrefix, DeterministicAcrossWorkerCounts) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(1'500, 6'000, 9));
  const EdgeOrder order = EdgeOrder::random(g.num_edges(), 10);
  ForestResult base;
  {
    ScopedNumWorkers guard(1);
    base = spanning_forest_prefix(g, order, 256);
  }
  for (int workers : {2, 4}) {
    ScopedNumWorkers guard(workers);
    EXPECT_EQ(spanning_forest_prefix(g, order, 256).in_forest,
              base.in_forest)
        << "workers=" << workers;
  }
}

TEST(SpanningForestPrefix, MembersAndProfile) {
  const CsrGraph g = CsrGraph::from_edges(grid_graph(15, 15));
  const EdgeOrder order = EdgeOrder::random(g.num_edges(), 11);
  const ForestResult r = spanning_forest_prefix(g, order, 64);
  EXPECT_EQ(r.members().size(), r.size());
  EXPECT_GE(r.profile.rounds, 1u);
  EXPECT_GE(r.profile.work_items, g.num_edges());  // every edge attempted
}

TEST(SpanningForestVerify, RejectsCycleAndNonSpanning) {
  const CsrGraph g = CsrGraph::from_edges(cycle_graph(5));
  std::vector<uint8_t> all(5, 1);  // the full cycle: has a cycle
  EXPECT_FALSE(is_spanning_forest(g, all));
  std::vector<uint8_t> too_few(5, 0);  // empty: doesn't span
  EXPECT_FALSE(is_spanning_forest(g, too_few));
  std::vector<uint8_t> good{1, 1, 1, 1, 0};
  EXPECT_TRUE(is_spanning_forest(g, good));
}

TEST(SpanningForestEdgeCases, EmptyEdgelessAndSingleEdge) {
  const CsrGraph empty = CsrGraph::from_edges(EdgeList(0));
  EXPECT_EQ(
      spanning_forest_sequential(empty, EdgeOrder::identity(0)).size(), 0u);

  const CsrGraph edgeless = CsrGraph::from_edges(EdgeList(8));
  const ForestResult r =
      spanning_forest_prefix(edgeless, EdgeOrder::identity(0), 4);
  EXPECT_EQ(r.size(), 0u);
  EXPECT_TRUE(is_spanning_forest(edgeless, r.in_forest));

  EdgeList one(2);
  one.add(0, 1);
  const CsrGraph pair = CsrGraph::from_edges(one);
  EXPECT_EQ(spanning_forest_prefix(pair, EdgeOrder::identity(1), 1).size(),
            1u);
}

TEST(SpanningForest, ComponentsOfForestMatchGraph) {
  // The kept edges must produce exactly the same connected components.
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(1'000, 900, 13));
  const EdgeOrder order = EdgeOrder::random(g.num_edges(), 14);
  const ForestResult r = spanning_forest_sequential(g, order);
  EdgeList forest_edges(g.num_vertices());
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (r.in_forest[e]) forest_edges.add(g.edge(e).u, g.edge(e).v);
  const CsrGraph f = CsrGraph::from_edges(forest_edges);
  EXPECT_EQ(connected_components(f), connected_components(g));
}

}  // namespace
}  // namespace pargreedy
