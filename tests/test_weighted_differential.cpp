// Differential oracle fuzzing for the WEIGHTED dynamic engines: across
// generators and worker counts {1, 2, 4}, apply sequences of randomized
// weighted batches — structural churn MIXED with in-place edge/vertex
// reweights — and after EVERY batch require the maintained solutions to
// be bit-identical to the independent weighted sequential greedy oracles
// (mis_weighted_sequential / mm_weighted_sequential) on the updated
// graph (whose snapshots carry the reweighted values).
//
// Weights are coarsely quantized on purpose: a handful of levels floods
// the priority order with equal-weight ties, so the suites exercise the
// tie-break policies, not just the weight comparison. A dedicated test
// additionally replays the same batch sequence at every worker width and
// requires identical solutions — the determinism criterion for ties.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/matching/matching.hpp"
#include "core/mis/mis.hpp"
#include "core/priority/priority_source.hpp"
#include "dynamic/dynamic_matching.hpp"
#include "dynamic/dynamic_mis.hpp"
#include "dynamic/update_batch.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "parallel/arch.hpp"
#include "random/hash.hpp"

namespace pargreedy {
namespace {

constexpr uint64_t kBatchesPerInstance = 15;
constexpr uint64_t kWeightLevels = 3;  // coarse: ties are the common case

class WeightedDifferential : public ::testing::TestWithParam<uint64_t> {
 protected:
  uint64_t seed() const { return GetParam(); }

  /// Alternates generator families; sizes stay small so the per-batch
  /// oracle recomputes finish fast.
  CsrGraph make_graph() const {
    switch (seed() % 3) {
      case 0:
        return CsrGraph::from_edges(
            random_graph_nm(350 + 30 * (seed() % 5),
                            1'400 + 90 * (seed() % 7), seed()));
      case 1:
        return CsrGraph::from_edges(
            rmat_graph(/*scale=*/9, /*m=*/1'300, seed()));
      default:
        return CsrGraph::from_edges(grid_graph(18 + seed() % 7, 19));
    }
  }

  /// Worker widths {1, 2, 4}, decorrelated from the generator family as in
  /// test_dynamic_differential.
  int workers() const { return 1 << (seed() / 3 % 3); }

  /// Tie-prone weighted policy half the time, pure weight policy the
  /// other half — both must hold the invariant.
  PrioritySource mis_source() const {
    return seed() % 2 == 0
               ? PrioritySource::weight_hash_tiebreak(seed() + 11)
               : PrioritySource::vertex_weight();
  }
  PrioritySource mm_source() const {
    return seed() % 2 == 0
               ? PrioritySource::weight_hash_tiebreak(seed() + 13)
               : PrioritySource::edge_weight();
  }

  UpdateBatch make_batch(uint64_t n, std::span<const Edge> live,
                         uint64_t round) const {
    const uint64_t salt = hash64(seed(), 2'000 + round);
    const uint64_t scale = salt % 8 == 0 ? 80 : 1 + salt % 16;
    // Mixed batches: structural churn plus in-place edge/vertex reweights
    // (~half the insert volume), so the differential also covers the
    // reweight cone seeding and key refresh under every weighted policy.
    return UpdateBatch::random_weighted(n, live, /*inserts=*/scale,
                                        /*deletes=*/scale / 2 + 1,
                                        /*reweights=*/scale / 2 + 1,
                                        /*toggles=*/salt % 3, kWeightLevels,
                                        salt);
  }
};

TEST_P(WeightedDifferential, MisMatchesWeightedOracleAfterEveryBatch) {
  ScopedNumWorkers guard(workers());
  CsrGraph g = make_graph();
  g.set_vertex_weights(
      quantized_weights(g.num_vertices(), seed() + 3, kWeightLevels));
  const PrioritySource src = mis_source();
  DynamicMis dm(EngineOptions::with_source(g, src));
  dm.set_compaction_threshold(seed() % 2 == 0 ? 0.02 : 0.0);
  ASSERT_EQ(dm.solution(), mis_weighted_sequential(g, src).in_set);

  for (uint64_t round = 0; round < kBatchesPerInstance; ++round) {
    dm.apply_batch(
        make_batch(g.num_vertices(), dm.graph().live_edge_list().edges(),
                   round));
    // active_subgraph() carries the vertex weights, so the oracle derives
    // the same priorities from the snapshot alone.
    const CsrGraph h = dm.active_subgraph();
    ASSERT_TRUE(h.has_vertex_weights());
    std::vector<uint8_t> expect = mis_weighted_sequential(h, src).in_set;
    for (VertexId v = 0; v < dm.num_vertices(); ++v)
      if (!dm.active(v)) expect[v] = 0;
    ASSERT_EQ(dm.solution(), expect)
        << "weighted MIS (" << priority_policy_name(src.policy())
        << ") diverged from oracle at batch " << round << " (seed "
        << seed() << ")";
  }
}

TEST_P(WeightedDifferential, MatchingMatchesWeightedOracleAfterEveryBatch) {
  ScopedNumWorkers guard(workers());
  CsrGraph g = make_graph();
  g.set_edge_weights(
      quantized_weights(g.num_edges(), seed() + 5, kWeightLevels));
  const PrioritySource src = mm_source();
  DynamicMatching dm(EngineOptions::with_source(g, src));
  dm.set_compaction_threshold(seed() % 2 == 0 ? 0.02 : 0.0);
  ASSERT_EQ(dm.solution(), mm_weighted_sequential(g, src).matched_with);

  for (uint64_t round = 0; round < kBatchesPerInstance; ++round) {
    dm.apply_batch(
        make_batch(g.num_vertices(), dm.graph().live_edge_list().edges(),
                   round));
    // Weighted inserts, deletions, revivals with changed weights, and
    // compaction must all keep the slot weights in sync with what the
    // oracle reads off the snapshot.
    const CsrGraph h = dm.active_subgraph();
    const MatchResult ref = mm_weighted_sequential(h, src);
    ASSERT_EQ(dm.solution(), ref.matched_with)
        << "weighted matching (" << priority_policy_name(src.policy())
        << ") diverged from oracle at batch " << round << " (seed "
        << seed() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedDifferential,
                         ::testing::Range<uint64_t>(0, 18));

/// The determinism criterion: with equal-weight ties everywhere, the same
/// engine configuration replayed under different worker counts must
/// produce identical solutions after every batch.
TEST(WeightedDeterminism, EqualWeightTiesResolveIdenticallyAcrossWorkers) {
  const uint64_t seed = 77;
  CsrGraph g = CsrGraph::from_edges(random_graph_nm(400, 1'600, seed));
  g.set_vertex_weights(quantized_weights(g.num_vertices(), seed + 1, 2));
  g.set_edge_weights(quantized_weights(g.num_edges(), seed + 2, 2));

  // Per worker width: the MIS and matching solutions after every batch.
  std::vector<std::vector<std::vector<uint8_t>>> mis_runs;
  std::vector<std::vector<std::vector<VertexId>>> mm_runs;
  for (int workers : {1, 2, 4}) {
    ScopedNumWorkers guard(workers);
    DynamicMis mis(EngineOptions::with_source(
        g, PrioritySource::weight_hash_tiebreak(seed + 3)));
    DynamicMatching mm(EngineOptions::with_source(
        g, PrioritySource::weight_hash_tiebreak(seed + 4)));
    mis.set_compaction_threshold(0.05);
    mm.set_compaction_threshold(0.05);
    std::vector<std::vector<uint8_t>> mis_solutions{mis.solution()};
    std::vector<std::vector<VertexId>> mm_solutions{mm.solution()};
    for (uint64_t round = 0; round < 10; ++round) {
      const UpdateBatch batch = UpdateBatch::random_weighted(
          g.num_vertices(), mis.graph().live_edge_list().edges(),
          /*inserts=*/12, /*deletes=*/6, /*reweights=*/8, /*toggles=*/2,
          /*levels=*/2, hash64(seed, round));
      mis.apply_batch(batch);
      mm.apply_batch(batch);
      mis_solutions.push_back(mis.solution());
      mm_solutions.push_back(mm.solution());
    }
    mis_runs.push_back(std::move(mis_solutions));
    mm_runs.push_back(std::move(mm_solutions));
  }
  ASSERT_EQ(mis_runs[0], mis_runs[1]);
  ASSERT_EQ(mis_runs[0], mis_runs[2]);
  ASSERT_EQ(mm_runs[0], mm_runs[1]);
  ASSERT_EQ(mm_runs[0], mm_runs[2]);
}

}  // namespace
}  // namespace pargreedy
