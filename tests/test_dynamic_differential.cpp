// Differential oracle fuzzing for the dynamic engines (the PR's
// acceptance bar): across random / rMat / structured generators and
// worker counts {1, 2, 4}, apply long sequences of randomized mixed
// batches and after EVERY batch require the maintained solutions to be
// bit-identical to the from-scratch sequential greedy on the updated
// graph under the same priorities.
//
// 30 seeds x 2 engines x 20 batches = 1200 oracle-checked batches per
// run of this suite, on whichever backend (OpenMP or serial) it was
// built with.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/matching/matching.hpp"
#include "core/mis/mis.hpp"
#include "dynamic/batch_stats.hpp"
#include "dynamic/dynamic_matching.hpp"
#include "dynamic/dynamic_mis.hpp"
#include "dynamic/update_batch.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "obs/obs.hpp"
#include "parallel/arch.hpp"
#include "random/hash.hpp"

namespace pargreedy {
namespace {

constexpr uint64_t kBatchesPerInstance = 20;

#if PARGREEDY_OBS
/// Tracks the global obs counters an engine instance should advance, so
/// each test can assert the deterministic counters (rounds, seeds,
/// recomputed) match the BatchStats the engine returned EXACTLY — at
/// every worker width, since instrumentation lives on the serial driver
/// thread and is keyed by deterministic quantities only.
class ObsCounterOracle {
 public:
  ObsCounterOracle()
      : rounds0_(obs::counter_value(obs::kEngineRounds)),
        seeds0_(obs::counter_value(obs::kEngineSeeds)),
        recomputed0_(obs::counter_value(obs::kEngineRecomputed)) {}

  void accumulate(const BatchStats& stats) {
    rounds_ += stats.rounds;
    seeds_ += stats.seeds;
    recomputed_ += stats.recomputed;
  }

  void check(uint64_t seed) const {
    if (!obs::enabled()) return;  // runtime-disabled: counters stay put
    EXPECT_EQ(obs::counter_value(obs::kEngineRounds) - rounds0_, rounds_)
        << "engine.rounds diverged from BatchStats (seed " << seed << ")";
    EXPECT_EQ(obs::counter_value(obs::kEngineSeeds) - seeds0_, seeds_)
        << "engine.seeds diverged from BatchStats (seed " << seed << ")";
    EXPECT_EQ(obs::counter_value(obs::kEngineRecomputed) - recomputed0_,
              recomputed_)
        << "engine.recomputed diverged from BatchStats (seed " << seed << ")";
  }

 private:
  uint64_t rounds0_, seeds0_, recomputed0_;
  uint64_t rounds_ = 0, seeds_ = 0, recomputed_ = 0;
};
#else
class ObsCounterOracle {
 public:
  void accumulate(const BatchStats&) {}
  void check(uint64_t) const {}
};
#endif

class DynamicDifferential : public ::testing::TestWithParam<uint64_t> {
 protected:
  uint64_t seed() const { return GetParam(); }

  /// Rotates through the three generator families of the acceptance
  /// criterion; sizes stay small so 1200 oracle recomputes finish fast.
  CsrGraph make_graph() const {
    switch (seed() % 3) {
      case 0:
        return CsrGraph::from_edges(
            random_graph_nm(400 + 40 * (seed() % 5),
                            1'600 + 100 * (seed() % 7), seed()));
      case 1:
        return CsrGraph::from_edges(
            rmat_graph(/*scale=*/9, /*m=*/1'500, seed()));
      default:
        return CsrGraph::from_edges(grid_graph(20 + seed() % 9, 21));
    }
  }

  /// Worker widths {1, 2, 4} from the acceptance criterion. Derived from
  /// seed() / 3 so width and generator family (seed() % 3) decorrelate:
  /// over 9 consecutive seeds every (generator, width) pair occurs.
  int workers() const { return 1 << (seed() / 3 % 3); }

  UpdateBatch make_batch(uint64_t n, std::span<const Edge> live,
                         uint64_t round) const {
    const uint64_t salt = hash64(seed(), 1'000 + round);
    // Mixed shapes: mostly small batches, occasionally a large one.
    const uint64_t scale = salt % 10 == 0 ? 100 : 1 + salt % 20;
    return UpdateBatch::random(n, live, /*inserts=*/scale,
                               /*deletes=*/scale / 2 + 1,
                               /*toggles=*/salt % 4, salt);
  }
};

TEST_P(DynamicDifferential, MisMatchesFromScratchAfterEveryBatch) {
  ScopedNumWorkers guard(workers());
  const CsrGraph g = make_graph();
  DynamicMis dm(EngineOptions::seeded(g, seed() + 101));
  // Half the instances compact aggressively so the fold-back path is
  // fuzzed too; the other half never compact.
  dm.set_compaction_threshold(seed() % 2 == 0 ? 0.02 : 0.0);
  ASSERT_EQ(dm.solution(), mis_sequential(g, dm.order()).in_set);

  ObsCounterOracle obs_oracle;
  for (uint64_t round = 0; round < kBatchesPerInstance; ++round) {
    obs_oracle.accumulate(dm.apply_batch(
        make_batch(g.num_vertices(), dm.graph().live_edge_list().edges(),
                   round)));
    const CsrGraph h = dm.active_subgraph();
    std::vector<uint8_t> expect = mis_sequential(h, dm.order()).in_set;
    for (VertexId v = 0; v < dm.num_vertices(); ++v)
      if (!dm.active(v)) expect[v] = 0;
    ASSERT_EQ(dm.solution(), expect)
        << "MIS diverged from oracle at batch " << round << " (seed "
        << seed() << ")";
  }
  obs_oracle.check(seed());
}

TEST_P(DynamicDifferential, MatchingMatchesFromScratchAfterEveryBatch) {
  ScopedNumWorkers guard(workers());
  const CsrGraph g = make_graph();
  DynamicMatching dm(EngineOptions::seeded(g, seed() + 202));
  dm.set_compaction_threshold(seed() % 2 == 0 ? 0.02 : 0.0);
  ASSERT_EQ(dm.solution(),
            mm_sequential(g, dm.edge_order_for(g)).matched_with);

  ObsCounterOracle obs_oracle;
  for (uint64_t round = 0; round < kBatchesPerInstance; ++round) {
    obs_oracle.accumulate(dm.apply_batch(
        make_batch(g.num_vertices(), dm.graph().live_edge_list().edges(),
                   round)));
    const CsrGraph h = dm.active_subgraph();
    const MatchResult ref = mm_sequential(h, dm.edge_order_for(h));
    ASSERT_EQ(dm.solution(), ref.matched_with)
        << "matching diverged from oracle at batch " << round << " (seed "
        << seed() << ")";
  }
  obs_oracle.check(seed());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicDifferential,
                         ::testing::Range<uint64_t>(0, 30));

}  // namespace
}  // namespace pargreedy
