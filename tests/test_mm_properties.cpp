// Property-based tests for the maximal-matching theory of Section 5:
//   * Lemma 5.1 — the edge priority DAG has polylog dependence length for
//     random edge orderings (measured via the naive algorithm's rounds);
//   * the MM(G) == MIS(L(G)) correspondence the reduction argument uses;
//   * the classical 2-approximation guarantee of any maximal matching.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/matching/matching.hpp"
#include "core/matching/verify.hpp"
#include "core/mis/mis.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "graph/graph_ops.hpp"

namespace pargreedy {
namespace {

// ------------------------------------------------- dependence length (5.1) ---

class MmDependenceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MmDependenceSweep, RandomEdgeOrderGivesPolylogSteps) {
  const uint64_t n = GetParam();
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(n, 5 * n, 1));
  const double m = static_cast<double>(g.num_edges());
  double worst = 0;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    const MatchResult r = mm_parallel_naive(
        g, EdgeOrder::random(g.num_edges(), seed), ProfileLevel::kCounters);
    worst = std::max(worst, static_cast<double>(r.profile.rounds));
  }
  // Lemma 5.1: O(log^2 m) w.h.p. Allow constant 2 on log^2.
  EXPECT_LT(worst, 2.0 * std::log2(m) * std::log2(m)) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, MmDependenceSweep,
                         ::testing::Values(512, 2'048, 8'192));

TEST(MmDependenceAdversarial, PathIdentityOrderIsLinear) {
  // Edges of a path in positional order: edge 0 matches, edges 1,2 die in
  // sequence... the chain forces Theta(m) steps.
  const uint64_t n = 600;  // m = 599
  const CsrGraph g = CsrGraph::from_edges(path_graph(n));
  const MatchResult r = mm_parallel_naive(g, EdgeOrder::identity(n - 1),
                                          ProfileLevel::kCounters);
  EXPECT_GT(r.profile.rounds, (n - 1) / 4);
}

TEST(MmDependenceAdversarial, RandomOrderCrushesThePathWitness) {
  const uint64_t n = 600;
  const CsrGraph g = CsrGraph::from_edges(path_graph(n));
  const MatchResult adversarial = mm_parallel_naive(
      g, EdgeOrder::identity(n - 1), ProfileLevel::kCounters);
  const MatchResult random = mm_parallel_naive(
      g, EdgeOrder::random(n - 1, 3), ProfileLevel::kCounters);
  EXPECT_GT(adversarial.profile.rounds, 8 * random.profile.rounds);
}

TEST(MmDependenceAdversarial, StarResolvesInOneStep) {
  // All star edges are pairwise adjacent: the earliest one matches and
  // every other edge dies — one step for any ordering.
  const CsrGraph g = CsrGraph::from_edges(star_graph(100));
  for (uint64_t seed = 0; seed < 3; ++seed) {
    const MatchResult r = mm_parallel_naive(
        g, EdgeOrder::random(g.num_edges(), seed), ProfileLevel::kCounters);
    EXPECT_EQ(r.profile.rounds, 1u);
  }
}

// --------------------------------------------- MM(G) == MIS(L(G)) bridge ---

class LineGraphBridge : public ::testing::TestWithParam<int> {};

CsrGraph bridge_graph(int which) {
  switch (which) {
    case 0: return CsrGraph::from_edges(path_graph(30));
    case 1: return CsrGraph::from_edges(cycle_graph(25));
    case 2: return CsrGraph::from_edges(grid_graph(6, 7));
    case 3: return CsrGraph::from_edges(star_graph(20));
    case 4: return CsrGraph::from_edges(complete_graph(12));
    case 5: return CsrGraph::from_edges(random_graph_nm(80, 300, 5));
    default: return CsrGraph::from_edges(binary_tree(63));
  }
}

TEST_P(LineGraphBridge, GreedyMmEqualsGreedyMisOnLineGraph) {
  // Section 5: "The MM of G can be solved by finding an MIS of its line
  // graph". Sharper greedy statement: with the *same* ordering (edge e of G
  // <-> vertex e of L(G)), the greedy MM is exactly the greedy MIS.
  const CsrGraph g = bridge_graph(GetParam());
  const CsrGraph lg = line_graph(g);
  ASSERT_EQ(lg.num_vertices(), g.num_edges());
  for (uint64_t seed = 0; seed < 3; ++seed) {
    const EdgeOrder eo = EdgeOrder::random(g.num_edges(), seed);
    std::vector<VertexId> as_vertices(eo.order().begin(), eo.order().end());
    const VertexOrder vo = VertexOrder::from_permutation(as_vertices);

    const MatchResult mm = mm_sequential(g, eo);
    const MisResult mis = mis_sequential(lg, vo);
    ASSERT_EQ(mm.in_matching.size(), mis.in_set.size());
    EXPECT_EQ(mm.in_matching, mis.in_set) << "seed " << seed;
  }
}

TEST_P(LineGraphBridge, NaiveStepCountsMatchAcrossTheBridge) {
  // Lemma 5.1's proof: "an edge is added or deleted in Algorithm 4 exactly
  // on the same step it would be for the corresponding MIS graph".
  const CsrGraph g = bridge_graph(GetParam());
  const CsrGraph lg = line_graph(g);
  const EdgeOrder eo = EdgeOrder::random(g.num_edges(), 7);
  std::vector<VertexId> as_vertices(eo.order().begin(), eo.order().end());
  const VertexOrder vo = VertexOrder::from_permutation(as_vertices);
  const MatchResult mm = mm_parallel_naive(g, eo, ProfileLevel::kCounters);
  const MisResult mis = mis_parallel_naive(lg, vo, ProfileLevel::kCounters);
  EXPECT_EQ(mm.profile.rounds, mis.profile.rounds);
}

INSTANTIATE_TEST_SUITE_P(Graphs, LineGraphBridge, ::testing::Range(0, 7));

// ----------------------------------------------------- size guarantees ---

TEST(MmSize, AtLeastHalfOfMaximumOnPerfectMatchableGraphs) {
  // Any maximal matching is a 2-approximation of the maximum matching.
  // On K_{2k} and even cycles/paths the maximum is known exactly.
  const CsrGraph k10 = CsrGraph::from_edges(complete_graph(10));  // max 5
  const CsrGraph c20 = CsrGraph::from_edges(cycle_graph(20));     // max 10
  const CsrGraph p16 = CsrGraph::from_edges(path_graph(16));      // max 8
  for (uint64_t seed = 0; seed < 5; ++seed) {
    EXPECT_GE(mm_sequential(k10, EdgeOrder::random(k10.num_edges(), seed))
                  .size(), 3u);   // >= ceil(5/2)
    EXPECT_GE(mm_sequential(c20, EdgeOrder::random(c20.num_edges(), seed))
                  .size(), 5u);   // >= 10/2
    EXPECT_GE(mm_sequential(p16, EdgeOrder::random(p16.num_edges(), seed))
                  .size(), 4u);   // >= 8/2
  }
}

TEST(MmSize, CompleteBipartiteMatchesTheSmallerSide) {
  // Every maximal matching of K_{a,b} saturates the smaller side.
  const CsrGraph g = CsrGraph::from_edges(complete_bipartite(6, 11));
  for (uint64_t seed = 0; seed < 5; ++seed) {
    EXPECT_EQ(mm_sequential(g, EdgeOrder::random(g.num_edges(), seed)).size(),
              6u);
  }
}

TEST(MmSize, MatchedVerticesAreTwiceTheMatchingSize) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(500, 2'000, 9));
  const MatchResult r =
      mm_sequential(g, EdgeOrder::random(g.num_edges(), 10));
  uint64_t matched_vertices = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    matched_vertices += r.matched_with[v] != kInvalidVertex ? 1 : 0;
  EXPECT_EQ(matched_vertices, 2 * r.size());
}

// ------------------------------------------------------ ordering effects ---

TEST(MmOrdering, DifferentSeedsGiveValidButDifferentMatchings) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(800, 3'200, 11));
  const MatchResult a =
      mm_sequential(g, EdgeOrder::random(g.num_edges(), 1));
  const MatchResult b =
      mm_sequential(g, EdgeOrder::random(g.num_edges(), 2));
  EXPECT_TRUE(is_maximal_matching(g, a.in_matching));
  EXPECT_TRUE(is_maximal_matching(g, b.in_matching));
  EXPECT_NE(a.in_matching, b.in_matching);
}

TEST(MmOrdering, SizesAcrossSeedsStayInNarrowBand) {
  // Matching sizes for random orders concentrate; a badly biased order
  // implementation would show up as an outlier here.
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(2'000, 8'000, 12));
  std::vector<uint64_t> sizes;
  for (uint64_t seed = 0; seed < 8; ++seed)
    sizes.push_back(
        mm_sequential(g, EdgeOrder::random(g.num_edges(), seed)).size());
  const auto [lo, hi] = std::minmax_element(sizes.begin(), sizes.end());
  EXPECT_LT(*hi - *lo, g.num_vertices() / 20);
}

}  // namespace
}  // namespace pargreedy
