// Unit tests for the priority-DAG analysis module (Section 3): longest
// directed path, per-vertex path lengths, dependence length, and the
// relations between them (dependence length <= longest path; both collapse
// or explode on the known extremal examples).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/analysis/priority_dag.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"

namespace pargreedy {
namespace {

TEST(PriorityDag, PathIdentityOrderIsOneLongChain) {
  const uint64_t n = 50;
  const CsrGraph g = CsrGraph::from_edges(path_graph(n));
  const VertexOrder order = VertexOrder::identity(n);
  EXPECT_EQ(longest_priority_path(g, order), n);
  EXPECT_EQ(dependence_length(g, order), n / 2);
}

TEST(PriorityDag, CompleteGraphSeparatesPathFromDependence) {
  // The paper's Section 3 example: longest path Omega(n) but dependence
  // length O(1) on the complete graph.
  const uint64_t n = 40;
  const CsrGraph g = CsrGraph::from_edges(complete_graph(n));
  const VertexOrder order = VertexOrder::random(n, 1);
  EXPECT_EQ(longest_priority_path(g, order), n);
  EXPECT_EQ(dependence_length(g, order), 1u);
}

TEST(PriorityDag, EdgelessGraphIsAllRoots) {
  const CsrGraph g = CsrGraph::from_edges(EdgeList(10));
  const VertexOrder order = VertexOrder::identity(10);
  EXPECT_EQ(longest_priority_path(g, order), 1u);
  EXPECT_EQ(dependence_length(g, order), 1u);
  const PriorityDagStats stats = priority_dag_stats(g, order);
  EXPECT_EQ(stats.roots, 10u);
  EXPECT_EQ(stats.max_parents, 0u);
}

TEST(PriorityDag, EmptyGraph) {
  const CsrGraph g = CsrGraph::from_edges(EdgeList(0));
  const VertexOrder order = VertexOrder::identity(0);
  EXPECT_EQ(longest_priority_path(g, order), 0u);
  EXPECT_EQ(dependence_length(g, order), 0u);
}

TEST(PriorityDag, PathLengthsAreTheDagDp) {
  // Hand-checked: star with center last. Every leaf is a root (len 1); the
  // center has all leaves as parents (len 2).
  const uint64_t n = 6;
  const CsrGraph g = CsrGraph::from_edges(star_graph(n));
  const VertexOrder order =
      VertexOrder::from_permutation({1, 2, 3, 4, 5, 0});
  const std::vector<uint32_t> len = priority_path_lengths(g, order);
  EXPECT_EQ(len[0], 2u);
  for (VertexId v = 1; v < n; ++v) EXPECT_EQ(len[v], 1u);
}

TEST(PriorityDag, PathLengthsMatchBruteForce) {
  // Cross-check the DP against explicit longest-path search on a small
  // random graph (exponential search is fine at this size).
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(40, 120, 2));
  const VertexOrder order = VertexOrder::random(40, 3);

  // Brute force: memoized DFS over the DAG (identical recurrence computed
  // independently of the library implementation).
  std::vector<uint32_t> memo(40, 0);
  std::vector<uint8_t> done(40, 0);
  auto dfs = [&](auto&& self, VertexId v) -> uint32_t {
    if (done[v]) return memo[v];
    uint32_t best = 1;
    for (VertexId w : g.neighbors(v)) {
      if (order.earlier(w, v)) best = std::max(best, 1 + self(self, w));
    }
    done[v] = 1;
    memo[v] = best;
    return best;
  };
  const std::vector<uint32_t> got = priority_path_lengths(g, order);
  for (VertexId v = 0; v < 40; ++v)
    EXPECT_EQ(got[v], dfs(dfs, v)) << "v=" << v;
  EXPECT_EQ(longest_priority_path(g, order),
            *std::max_element(got.begin(), got.end()));
}

TEST(PriorityDag, DependenceNeverExceedsLongestPath) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    const CsrGraph g =
        CsrGraph::from_edges(random_graph_nm(500, 2'500, seed));
    const VertexOrder order = VertexOrder::random(500, seed + 20);
    const PriorityDagStats stats = priority_dag_stats(g, order);
    EXPECT_LE(stats.dependence_length, stats.longest_path);
    EXPECT_GE(stats.roots, 1u);
  }
}

TEST(PriorityDag, StatsAgreeWithIndividualQueries) {
  const CsrGraph g = CsrGraph::from_edges(rmat_graph(9, 1'200, 4));
  const VertexOrder order = VertexOrder::random(g.num_vertices(), 5);
  const PriorityDagStats stats = priority_dag_stats(g, order);
  EXPECT_EQ(stats.longest_path, longest_priority_path(g, order));
  EXPECT_EQ(stats.dependence_length, dependence_length(g, order));
}

TEST(PriorityDag, RootsAreVerticesWithNoEarlierNeighbor) {
  const CsrGraph g = CsrGraph::from_edges(grid_graph(8, 8));
  const VertexOrder order = VertexOrder::random(64, 6);
  const PriorityDagStats stats = priority_dag_stats(g, order);
  uint64_t expected_roots = 0;
  for (VertexId v = 0; v < 64; ++v) {
    bool root = true;
    for (VertexId w : g.neighbors(v)) root = root && !order.earlier(w, v);
    expected_roots += root ? 1 : 0;
  }
  EXPECT_EQ(stats.roots, expected_roots);
}

TEST(PriorityDag, MaxParentsOnStar) {
  const CsrGraph g = CsrGraph::from_edges(star_graph(9));
  // Center last: center has 8 parents.
  const PriorityDagStats last = priority_dag_stats(
      g, VertexOrder::from_permutation({1, 2, 3, 4, 5, 6, 7, 8, 0}));
  EXPECT_EQ(last.max_parents, 8u);
  // Center first: every leaf has exactly 1 parent.
  const PriorityDagStats first =
      priority_dag_stats(g, VertexOrder::identity(9));
  EXPECT_EQ(first.max_parents, 1u);
}

TEST(PriorityDag, ReversingTheOrderReversesTheDag) {
  // Longest path length is invariant under order reversal (paths reverse).
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(200, 800, 7));
  const VertexOrder fwd = VertexOrder::random(200, 8);
  std::vector<VertexId> rev_perm(fwd.order().rbegin(), fwd.order().rend());
  const VertexOrder rev = VertexOrder::from_permutation(rev_perm);
  EXPECT_EQ(longest_priority_path(g, fwd), longest_priority_path(g, rev));
}

class DagRandomOrders : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DagRandomOrders, LongestPathIsLogarithmicOnBoundedDegree) {
  // Corollary 3.4 intuition: on a bounded-degree graph a random order gives
  // an O(log n) longest path through any O(1/d)-density region; globally
  // the whole-graph longest path for grid/path is O(log n)-ish. Check a
  // generous polylog threshold.
  const uint64_t seed = GetParam();
  const uint64_t n = 10'000;
  const CsrGraph g = CsrGraph::from_edges(grid_graph(100, 100));
  const VertexOrder order = VertexOrder::random(n, seed);
  EXPECT_LT(longest_priority_path(g, order), 60u);  // ~4.5 log2(n)
}

INSTANTIATE_TEST_SUITE_P(Seeds, DagRandomOrders,
                         ::testing::Range<uint64_t>(0, 5));

}  // namespace
}  // namespace pargreedy
