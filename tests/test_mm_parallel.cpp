// Integration tests for the parallel maximal-matching implementations
// (Algorithm 4 naive, linear-work rootset, prefix-based): exact equality
// with the sequential greedy matching at every worker count, window size,
// and ordering.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/matching/matching.hpp"
#include "core/matching/verify.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "parallel/arch.hpp"
#include "support/check.hpp"

namespace pargreedy {
namespace {

EdgeList family(const std::string& name, uint64_t seed) {
  if (name == "random") return random_graph_nm(600, 2'400, seed);
  if (name == "rmat") return rmat_graph(10, 2'000, seed);
  if (name == "path") return path_graph(500);
  if (name == "cycle") return cycle_graph(501);
  if (name == "grid") return grid_graph(22, 23);
  if (name == "star") return star_graph(400);
  if (name == "complete") return complete_graph(40);
  if (name == "tree") return binary_tree(511);
  if (name == "ba") return barabasi_albert(400, 3, seed);
  if (name == "bipartite") return complete_bipartite(30, 40);
  throw std::runtime_error("unknown family " + name);
}

using Params = std::tuple<std::string, uint64_t>;

class MmVariants : public ::testing::TestWithParam<Params> {};

TEST_P(MmVariants, NaiveEqualsSequential) {
  const auto& [fam, seed] = GetParam();
  const CsrGraph g = CsrGraph::from_edges(family(fam, seed));
  const EdgeOrder order = EdgeOrder::random(g.num_edges(), seed + 31);
  const MatchResult expect = mm_sequential(g, order);
  const MatchResult got = mm_parallel_naive(g, order);
  EXPECT_EQ(got.in_matching, expect.in_matching);
  EXPECT_EQ(got.matched_with, expect.matched_with);
}

TEST_P(MmVariants, RootsetEqualsSequential) {
  const auto& [fam, seed] = GetParam();
  const CsrGraph g = CsrGraph::from_edges(family(fam, seed));
  const EdgeOrder order = EdgeOrder::random(g.num_edges(), seed + 31);
  const MatchResult expect = mm_sequential(g, order);
  const MatchResult got = mm_rootset(g, order);
  EXPECT_EQ(got.in_matching, expect.in_matching);
  EXPECT_EQ(got.matched_with, expect.matched_with);
}

TEST_P(MmVariants, PrefixEqualsSequentialAcrossWindowSizes) {
  const auto& [fam, seed] = GetParam();
  const CsrGraph g = CsrGraph::from_edges(family(fam, seed));
  const uint64_t m = g.num_edges();
  const EdgeOrder order = EdgeOrder::random(m, seed + 31);
  const MatchResult expect = mm_sequential(g, order);
  for (uint64_t window :
       {uint64_t{1}, uint64_t{2}, uint64_t{13}, m / 10 + 1, m / 2 + 1, m,
        2 * m}) {
    const MatchResult got = mm_prefix(g, order, window);
    EXPECT_EQ(got.in_matching, expect.in_matching) << "window=" << window;
    EXPECT_EQ(got.matched_with, expect.matched_with) << "window=" << window;
  }
}

TEST_P(MmVariants, AdversarialIdentityOrderStillExact) {
  const auto& [fam, seed] = GetParam();
  const CsrGraph g = CsrGraph::from_edges(family(fam, seed));
  const EdgeOrder order = EdgeOrder::identity(g.num_edges());
  const MatchResult expect = mm_sequential(g, order);
  EXPECT_EQ(mm_parallel_naive(g, order).in_matching, expect.in_matching);
  EXPECT_EQ(mm_rootset(g, order).in_matching, expect.in_matching);
  EXPECT_EQ(mm_prefix(g, order, g.num_edges() / 5 + 1).in_matching,
            expect.in_matching);
}

INSTANTIATE_TEST_SUITE_P(
    Families, MmVariants,
    ::testing::Combine(::testing::Values("random", "rmat", "path", "cycle",
                                         "grid", "star", "complete", "tree",
                                         "ba", "bipartite"),
                       ::testing::Values(0, 1, 2)),
    [](const ::testing::TestParamInfo<Params>& info) {
      return std::get<0>(info.param) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// ----------------------------------------------------------- worker sweep ---

class MmWorkers : public ::testing::TestWithParam<int> {};

TEST_P(MmWorkers, AllVariantsExactAtEveryWidth) {
  const int workers = GetParam();
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(2'000, 10'000, 3));
  const EdgeOrder order = EdgeOrder::random(g.num_edges(), 23);
  MatchResult expect;
  {
    ScopedNumWorkers guard(1);
    expect = mm_sequential(g, order);
  }
  ScopedNumWorkers guard(workers);
  EXPECT_EQ(mm_parallel_naive(g, order).in_matching, expect.in_matching);
  EXPECT_EQ(mm_rootset(g, order).in_matching, expect.in_matching);
  EXPECT_EQ(mm_prefix(g, order, 256).in_matching, expect.in_matching);
  EXPECT_EQ(mm_prefix(g, order, g.num_edges()).in_matching,
            expect.in_matching);
}

INSTANTIATE_TEST_SUITE_P(WidthSweep, MmWorkers,
                         ::testing::Values(1, 2, 3, 4, 8));

// --------------------------------------------------------------- profiles ---

TEST(MmProfiles, PrefixWindowOneIsSequential) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(500, 2'000, 4));
  const EdgeOrder order = EdgeOrder::random(g.num_edges(), 5);
  const MatchResult r = mm_prefix(g, order, 1, ProfileLevel::kCounters);
  EXPECT_EQ(r.profile.rounds, g.num_edges());
  EXPECT_EQ(r.profile.work_items, g.num_edges());
}

TEST(MmProfiles, WorkGrowsWithWindow) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(1'000, 5'000, 6));
  const EdgeOrder order = EdgeOrder::random(g.num_edges(), 7);
  uint64_t last_work = 0;
  for (uint64_t window : {uint64_t{1}, uint64_t{32}, uint64_t{1'024},
                          g.num_edges()}) {
    const MatchResult r =
        mm_prefix(g, order, window, ProfileLevel::kCounters);
    EXPECT_GE(r.profile.total_work(), last_work) << "window=" << window;
    last_work = r.profile.total_work();
  }
}

TEST(MmProfiles, RoundsShrinkWithWindow) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(1'000, 5'000, 8));
  const EdgeOrder order = EdgeOrder::random(g.num_edges(), 9);
  uint64_t last_rounds = UINT64_MAX;
  for (uint64_t window : {uint64_t{1}, uint64_t{32}, uint64_t{1'024},
                          g.num_edges()}) {
    const MatchResult r =
        mm_prefix(g, order, window, ProfileLevel::kCounters);
    EXPECT_LE(r.profile.rounds, last_rounds) << "window=" << window;
    last_rounds = r.profile.rounds;
  }
}

TEST(MmProfiles, RootsetWorkIsLinear) {
  // Lemma 5.3: O(n + m) work regardless of the dependence length.
  for (uint64_t seed = 0; seed < 3; ++seed) {
    const CsrGraph g =
        CsrGraph::from_edges(random_graph_nm(3'000, 15'000, seed));
    const EdgeOrder order = EdgeOrder::random(g.num_edges(), seed + 13);
    const MatchResult r = mm_rootset(g, order, ProfileLevel::kCounters);
    EXPECT_LE(r.profile.work_edges,
              4 * (2 * g.num_edges()) + g.num_vertices());
  }
}

TEST(MmProfiles, DetailedRowsSumToCounters) {
  const CsrGraph g = CsrGraph::from_edges(rmat_graph(10, 3'000, 10));
  const EdgeOrder order = EdgeOrder::random(g.num_edges(), 11);
  const MatchResult r = mm_prefix(g, order, 128, ProfileLevel::kDetailed);
  ASSERT_EQ(r.profile.per_round.size(), r.profile.rounds);
  uint64_t items = 0;
  uint64_t decided = 0;
  for (const RoundProfile& round : r.profile.per_round) {
    items += round.active_items;
    decided += round.decided;
  }
  EXPECT_EQ(items, r.profile.work_items);
  EXPECT_EQ(decided, g.num_edges());
}

// ------------------------------------------------------------ edge cases ---

TEST(MmParallelEdgeCases, EmptyAndEdgeless) {
  const CsrGraph empty = CsrGraph::from_edges(EdgeList(0));
  EXPECT_EQ(mm_parallel_naive(empty, EdgeOrder::identity(0)).size(), 0u);
  EXPECT_EQ(mm_rootset(empty, EdgeOrder::identity(0)).size(), 0u);
  EXPECT_EQ(mm_prefix(empty, EdgeOrder::identity(0), 4).size(), 0u);

  const CsrGraph edgeless = CsrGraph::from_edges(EdgeList(9));
  EXPECT_EQ(mm_rootset(edgeless, EdgeOrder::identity(0)).size(), 0u);
}

TEST(MmParallelEdgeCases, TriangleOnlyOneEdgeMatches) {
  EdgeList el(3);
  el.add(0, 1);
  el.add(1, 2);
  el.add(0, 2);
  const CsrGraph g = CsrGraph::from_edges(el);
  for (uint64_t seed = 0; seed < 5; ++seed) {
    const EdgeOrder order = EdgeOrder::random(3, seed);
    const MatchResult r = mm_rootset(g, order);
    EXPECT_EQ(r.size(), 1u);
    EXPECT_TRUE(r.in_matching[order.nth(0)]);  // first edge always wins
  }
}

TEST(MmParallelEdgeCases, MismatchedOrderSizeThrows) {
  const CsrGraph g = CsrGraph::from_edges(path_graph(5));
  const EdgeOrder bad = EdgeOrder::identity(3);
  EXPECT_THROW(mm_parallel_naive(g, bad), CheckFailure);
  EXPECT_THROW(mm_rootset(g, bad), CheckFailure);
  EXPECT_THROW(mm_prefix(g, bad, 2), CheckFailure);
}

TEST(MmParallelEdgeCases, ParallelEdgesCollapseBeforeMatching) {
  // Multigraph input: from_edges dedupes, so the matching never sees
  // parallel edges. Both "copies" map to the same edge id.
  EdgeList el(4);
  el.add(0, 1);
  el.add(1, 0);
  el.add(2, 3);
  const CsrGraph g = CsrGraph::from_edges(el);
  ASSERT_EQ(g.num_edges(), 2u);
  const MatchResult r = mm_rootset(g, EdgeOrder::identity(2));
  EXPECT_EQ(r.size(), 2u);
}

}  // namespace
}  // namespace pargreedy
