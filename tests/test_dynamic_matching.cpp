// DynamicMatching behavior tests: batch semantics, hash-stable edge
// priorities, activity toggles, compaction re-keying, and exact agreement
// with the sequential greedy matching oracle after every batch.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/matching/matching.hpp"
#include "core/matching/verify.hpp"
#include "dynamic/dynamic_matching.hpp"
#include "dynamic/update_batch.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "parallel/arch.hpp"
#include "support/check.hpp"

namespace pargreedy {
namespace {

/// Exact-equivalence invariant from the class header: the maintained
/// partner array equals mm_sequential's on the active-induced subgraph
/// under the engine's hash-derived edge order.
void expect_matches_oracle(const DynamicMatching& dm) {
  const CsrGraph h = dm.active_subgraph();
  const MatchResult ref = mm_sequential(h, dm.edge_order_for(h));
  ASSERT_EQ(dm.solution(), ref.matched_with);
}

TEST(DynamicMatching, InitialSolutionIsTheGreedyMatching) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(400, 1'600, 3));
  const DynamicMatching dm(EngineOptions::seeded(g, /*seed=*/21));
  const MatchResult ref = mm_sequential(g, dm.edge_order_for(g));
  EXPECT_EQ(dm.solution(), ref.matched_with);
  EXPECT_EQ(dm.size(), ref.size());
  EXPECT_TRUE(is_maximal_matching_set(g, mm_rootset(g, dm.edge_order_for(g))
                                             .in_matching));
}

TEST(DynamicMatching, QueriesAgreeWithEachOther) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(200, 700, 5));
  const DynamicMatching dm(EngineOptions::seeded(g, 8));
  uint64_t matched_vertices = 0;
  for (VertexId v = 0; v < dm.num_vertices(); ++v) {
    const VertexId partner = dm.matched_with(v);
    if (partner == kInvalidVertex) continue;
    ++matched_vertices;
    EXPECT_TRUE(dm.matched(v, partner));
    EXPECT_TRUE(dm.matched(partner, v));
    EXPECT_EQ(dm.matched_with(partner), v);
  }
  EXPECT_EQ(matched_vertices, 2 * dm.size());
  EXPECT_EQ(dm.matched_edges().size(), dm.size());
}

TEST(DynamicMatching, EmptyBatchIsANoOp) {
  DynamicMatching dm(EngineOptions::seeded(
      CsrGraph::from_edges(path_graph(10)), 1));
  const std::vector<VertexId> before = dm.solution();
  const BatchStats stats = dm.apply_batch(UpdateBatch{});
  EXPECT_EQ(stats.seeds, 0u);
  EXPECT_EQ(dm.solution(), before);
}

TEST(DynamicMatching, ReinsertedEdgeKeepsItsPriority) {
  // Deleting and re-inserting an edge must restore the identical matching:
  // priorities are pure hashes of the endpoints, not of update history.
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(300, 1'000, 4));
  DynamicMatching dm(EngineOptions::seeded(g, 33));
  const std::vector<VertexId> before = dm.solution();
  const Edge e = dm.matched_edges().front();
  dm.apply_batch(UpdateBatch{}.delete_edge(e.u, e.v));
  EXPECT_FALSE(dm.matched(e.u, e.v));
  expect_matches_oracle(dm);
  dm.apply_batch(UpdateBatch{}.insert_edge(e.u, e.v));
  EXPECT_EQ(dm.solution(), before);
}

TEST(DynamicMatching, DeletingAMatchedEdgeFreesItsEndpoints) {
  const CsrGraph g = CsrGraph::from_edges(complete_graph(6));
  DynamicMatching dm(EngineOptions::seeded(g, 2));
  const Edge e = dm.matched_edges().front();
  const BatchStats stats = dm.apply_batch(UpdateBatch{}.delete_edge(e.u, e.v));
  EXPECT_EQ(stats.deleted, 1u);
  EXPECT_GE(stats.seeds, 1u);  // freed endpoints re-open later edges
  // The remaining K6-minus-an-edge still has a maximal matching of >= 2.
  expect_matches_oracle(dm);
  EXPECT_GE(dm.size(), 2u);
}

TEST(DynamicMatching, DeletingAnUnmatchedEdgeSeedsNothing) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(200, 800, 6));
  DynamicMatching dm(EngineOptions::seeded(g, 11));
  Edge unmatched{kInvalidVertex, kInvalidVertex};
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (!dm.matched(g.edge(e).u, g.edge(e).v)) {
      unmatched = g.edge(e);
      break;
    }
  ASSERT_NE(unmatched.u, kInvalidVertex);
  const std::vector<VertexId> before = dm.solution();
  const BatchStats stats =
      dm.apply_batch(UpdateBatch{}.delete_edge(unmatched.u, unmatched.v));
  EXPECT_EQ(stats.seeds, 0u);
  EXPECT_EQ(dm.solution(), before);
}

TEST(DynamicMatching, DeactivationUnmatchesItsEdges) {
  const CsrGraph g = CsrGraph::from_edges(complete_graph(8));
  DynamicMatching dm(EngineOptions::seeded(g, 14));
  const Edge e = dm.matched_edges().front();
  dm.apply_batch(UpdateBatch{}.deactivate(e.u));
  EXPECT_EQ(dm.matched_with(e.u), kInvalidVertex);
  EXPECT_FALSE(dm.active(e.u));
  // Its former partner is free to rematch among the 6 active others.
  expect_matches_oracle(dm);
  dm.apply_batch(UpdateBatch{}.activate(e.u));
  expect_matches_oracle(dm);
  // History independence: same live graph + activity => same matching.
  const DynamicMatching fresh(EngineOptions::seeded(g, 14));
  EXPECT_EQ(dm.solution(), fresh.solution());
}

TEST(DynamicMatching, AutoCompactionPreservesTheSolution) {
  DynamicMatching dm(EngineOptions::seeded(
      CsrGraph::from_edges(random_graph_nm(250, 750, 9)), 40));
  dm.set_compaction_threshold(0.05);
  bool compacted = false;
  for (uint64_t round = 0; round < 20; ++round) {
    const UpdateBatch batch = UpdateBatch::random(
        250, dm.graph().live_edge_list().edges(), /*inserts=*/10,
        /*deletes=*/7, /*toggles=*/2, /*seed=*/9'000 + round);
    const std::vector<VertexId> want = [&] {
      DynamicMatching probe = dm;  // same state, no compaction trigger
      probe.set_compaction_threshold(0.0);
      probe.apply_batch(batch);
      return probe.solution();
    }();
    compacted = dm.apply_batch(batch).compacted || compacted;
    EXPECT_EQ(dm.solution(), want);
    expect_matches_oracle(dm);
  }
  EXPECT_TRUE(compacted);
}

TEST(DynamicMatching, ManualCompactionIsTransparent) {
  DynamicMatching dm(EngineOptions::seeded(
      CsrGraph::from_edges(random_graph_nm(150, 500, 2)), 5));
  dm.set_compaction_threshold(0.0);
  dm.apply_batch(UpdateBatch::random(
      150, dm.graph().live_edge_list().edges(), 40, 25, 4, 123));
  const std::vector<VertexId> before = dm.solution();
  dm.compact();
  EXPECT_EQ(dm.solution(), before);
  expect_matches_oracle(dm);
}

TEST(DynamicMatching, DeterministicAcrossWorkerCounts) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(600, 2'400, 7));
  std::vector<std::vector<VertexId>> runs;
  for (int workers : {1, 2, 4}) {
    ScopedNumWorkers guard(workers);
    DynamicMatching dm(EngineOptions::seeded(g, 55));
    for (uint64_t round = 0; round < 6; ++round)
      dm.apply_batch(UpdateBatch::random(
          600, dm.graph().live_edge_list().edges(), 30, 20, 5,
          700 + round));
    runs.push_back(dm.solution());
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(DynamicMatching, RejectsOutOfRangeBatch) {
  DynamicMatching dm(EngineOptions::seeded(
      CsrGraph::from_edges(path_graph(4)), 1));
  EXPECT_THROW(dm.apply_batch(UpdateBatch{}.insert_edge(2, 8)),
               CheckFailure);
}

}  // namespace
}  // namespace pargreedy
