// Unit tests for the support layer: PG_CHECK error handling, the Table /
// formatting helpers the bench harness prints with, environment-variable
// configuration (including the PARGREEDY_SCALE presets), and timers.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "support/check.hpp"
#include "support/env.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

namespace pargreedy {
namespace {

// ----------------------------------------------------------------- check ---

TEST(Check, PassingConditionIsSilent) {
  EXPECT_NO_THROW(PG_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(PG_CHECK_MSG(true, "never rendered"));
}

TEST(Check, FailureThrowsWithContext) {
  try {
    PG_CHECK_MSG(2 + 2 == 5, "math is broken: " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(what.find("math is broken: 42"), std::string::npos);
    EXPECT_NE(what.find("test_support.cpp"), std::string::npos);
  }
}

TEST(Check, CheckFailureIsALogicError) {
  EXPECT_THROW(PG_CHECK(false), std::logic_error);
}

// ----------------------------------------------------------------- table ---

TEST(Table, AlignedAsciiOutput) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, rule, two rows.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("------"), std::string::npos);  // rule >= widest cell
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"4", "5", "6"});
  std::ostringstream os;
  t.print(os, /*csv=*/true);
  EXPECT_EQ(os.str(), "a,b,c\n1,2,3\n4,5,6\n");
}

TEST(Table, CsvEscapesCommasQuotesAndNewlines) {
  Table t({"name", "note"});
  t.add_row({"plain", "a,b"});
  t.add_row({"quo\"te", "line\nbreak"});
  t.add_row({"cr", "a\rb"});
  std::ostringstream os;
  t.print(os, /*csv=*/true);
  EXPECT_EQ(os.str(),
            "name,note\nplain,\"a,b\"\n\"quo\"\"te\",\"line\nbreak\"\n"
            "cr,\"a\rb\"\n");
}

TEST(Table, JsonOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2.5"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.write_json(os, "series-a");
  EXPECT_EQ(os.str(),
            "{\"name\": \"series-a\", \"headers\": [\"x\", \"y\"], "
            "\"rows\": [[\"1\", \"2.5\"], [\"3\", \"4\"]]}");
}

TEST(Table, JsonEscapesSpecialCharacters) {
  Table t({"a\"b"});
  t.add_row({"back\\slash\nnewline\ttab"});
  std::ostringstream os;
  t.write_json(os, "");
  EXPECT_EQ(os.str(),
            "{\"name\": \"\", \"headers\": [\"a\\\"b\"], "
            "\"rows\": [[\"back\\\\slash\\nnewline\\ttab\"]]}");
}

TEST(Table, EmptyTableJsonIsValid) {
  Table t({"only"});
  std::ostringstream os;
  t.write_json(os, "empty");
  EXPECT_EQ(os.str(),
            "{\"name\": \"empty\", \"headers\": [\"only\"], \"rows\": []}");
}

TEST(Table, RowArityIsEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), CheckFailure);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), CheckFailure);
  EXPECT_THROW(Table(std::vector<std::string>{}), CheckFailure);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Fmt, DoubleSignificantDigits) {
  EXPECT_EQ(fmt_double(1.23456789, 4), "1.235");
  EXPECT_EQ(fmt_double(1.23456789, 2), "1.2");
  EXPECT_EQ(fmt_double(0.000123, 3), "0.000123");
  EXPECT_EQ(fmt_double(1e9, 3), "1e+09");
  EXPECT_EQ(fmt_double(0.0, 4), "0");
}

TEST(Fmt, CountThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1'000), "1,000");
  EXPECT_EQ(fmt_count(1'234'567), "1,234,567");
  EXPECT_EQ(fmt_count(50'000'000), "50,000,000");
  EXPECT_EQ(fmt_count(-1'234), "-1,234");
}

// ------------------------------------------------------------------- env ---

class EnvTest : public ::testing::Test {
 protected:
  void set(const char* name, const char* value) {
    ::setenv(name, value, 1);
    touched_.push_back(name);
  }
  void TearDown() override {
    for (const std::string& name : touched_) ::unsetenv(name.c_str());
  }

 private:
  std::vector<std::string> touched_;
};

TEST_F(EnvTest, StringFallbacks) {
  EXPECT_EQ(env_string("PARGREEDY_TEST_UNSET", "dflt"), "dflt");
  set("PARGREEDY_TEST_STR", "hello");
  EXPECT_EQ(env_string("PARGREEDY_TEST_STR", "dflt"), "hello");
  set("PARGREEDY_TEST_STR", "");
  EXPECT_EQ(env_string("PARGREEDY_TEST_STR", "dflt"), "dflt");
}

TEST_F(EnvTest, Int64ParsingAndFallbacks) {
  EXPECT_EQ(env_int64("PARGREEDY_TEST_UNSET", 7), 7);
  set("PARGREEDY_TEST_INT", "123456789012");
  EXPECT_EQ(env_int64("PARGREEDY_TEST_INT", 7), 123456789012);
  set("PARGREEDY_TEST_INT", "-5");
  EXPECT_EQ(env_int64("PARGREEDY_TEST_INT", 7), -5);
  set("PARGREEDY_TEST_INT", "not a number");
  EXPECT_EQ(env_int64("PARGREEDY_TEST_INT", 7), 7);
}

TEST_F(EnvTest, Int64RejectsTrailingGarbage) {
  // The regression this guards: PARGREEDY_CSV=1x used to parse as 1.
  set("PARGREEDY_TEST_INT", "1x");
  EXPECT_EQ(env_int64("PARGREEDY_TEST_INT", 7), 7);
  set("PARGREEDY_TEST_INT", "123abc");
  EXPECT_EQ(env_int64("PARGREEDY_TEST_INT", 7), 7);
  set("PARGREEDY_TEST_INT", "12 34");
  EXPECT_EQ(env_int64("PARGREEDY_TEST_INT", 7), 7);
  // Trailing whitespace alone stays acceptable.
  set("PARGREEDY_TEST_INT", "42 ");
  EXPECT_EQ(env_int64("PARGREEDY_TEST_INT", 7), 42);
  set("PARGREEDY_TEST_INT", "42\t\n");
  EXPECT_EQ(env_int64("PARGREEDY_TEST_INT", 7), 42);
}

TEST_F(EnvTest, RejectsOverflowAndNonFinite) {
  set("PARGREEDY_TEST_INT", "99999999999999999999999");  // > INT64_MAX
  EXPECT_EQ(env_int64("PARGREEDY_TEST_INT", 7), 7);
  set("PARGREEDY_TEST_INT", "-99999999999999999999999");
  EXPECT_EQ(env_int64("PARGREEDY_TEST_INT", 7), 7);
  set("PARGREEDY_TEST_DBL", "1e99999");  // overflows to inf
  EXPECT_DOUBLE_EQ(env_double("PARGREEDY_TEST_DBL", 0.5), 0.5);
  set("PARGREEDY_TEST_DBL", "inf");
  EXPECT_DOUBLE_EQ(env_double("PARGREEDY_TEST_DBL", 0.5), 0.5);
  set("PARGREEDY_TEST_DBL", "nan");
  EXPECT_DOUBLE_EQ(env_double("PARGREEDY_TEST_DBL", 0.5), 0.5);
  // Underflow is NOT rejection: subnormals and 1e-999999 -> 0 are valid.
  set("PARGREEDY_TEST_DBL", "1e-310");
  EXPECT_DOUBLE_EQ(env_double("PARGREEDY_TEST_DBL", 0.5), 1e-310);
  set("PARGREEDY_TEST_DBL", "1e-999999");
  EXPECT_DOUBLE_EQ(env_double("PARGREEDY_TEST_DBL", 0.5), 0.0);
}

TEST_F(EnvTest, DoubleRejectsTrailingGarbage) {
  set("PARGREEDY_TEST_DBL", "2.5e");  // strtod stops at '2.5', 'e' trails
  EXPECT_DOUBLE_EQ(env_double("PARGREEDY_TEST_DBL", 0.5), 0.5);
  set("PARGREEDY_TEST_DBL", "1.0gb");
  EXPECT_DOUBLE_EQ(env_double("PARGREEDY_TEST_DBL", 0.5), 0.5);
  set("PARGREEDY_TEST_DBL", "3.25 ");
  EXPECT_DOUBLE_EQ(env_double("PARGREEDY_TEST_DBL", 0.5), 3.25);
}

TEST_F(EnvTest, DoubleParsingAndFallbacks) {
  EXPECT_EQ(env_double("PARGREEDY_TEST_UNSET", 0.5), 0.5);
  set("PARGREEDY_TEST_DBL", "2.75");
  EXPECT_DOUBLE_EQ(env_double("PARGREEDY_TEST_DBL", 0.5), 2.75);
  set("PARGREEDY_TEST_DBL", "xyz");
  EXPECT_DOUBLE_EQ(env_double("PARGREEDY_TEST_DBL", 0.5), 0.5);
}

TEST_F(EnvTest, BenchScalePresets) {
  set("PARGREEDY_SCALE", "paper");
  const BenchScale paper = bench_scale();
  EXPECT_EQ(paper.name, "paper");
  EXPECT_EQ(paper.random_n, 10'000'000);
  EXPECT_EQ(paper.random_m, 50'000'000);
  EXPECT_EQ(paper.rmat_n, int64_t{1} << 24);
  EXPECT_EQ(paper.rmat_m, 50'000'000);

  set("PARGREEDY_SCALE", "ci");
  const BenchScale ci = bench_scale();
  EXPECT_EQ(ci.name, "ci");
  // Every preset keeps the paper's 1:5 vertex:edge shape.
  EXPECT_EQ(ci.random_m, 5 * ci.random_n);

  set("PARGREEDY_SCALE", "medium");
  EXPECT_EQ(bench_scale().name, "medium");

  set("PARGREEDY_SCALE", "nonsense");
  EXPECT_EQ(bench_scale().name, "ci");  // unknown presets fall back
}

// ----------------------------------------------------------------- timing ---

TEST(Timing, TimerMeasuresElapsedTime) {
  Timer t;
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 3'000'000; ++i) sink = sink + i;
  const double s = t.elapsed_seconds();
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 10.0);
  EXPECT_NEAR(t.elapsed_ms(), t.elapsed_seconds() * 1e3,
              t.elapsed_seconds() * 1e3 * 0.5);
}

TEST(Timing, ResetRestartsTheClock) {
  Timer t;
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 3'000'000; ++i) sink = sink + i;
  const double before = t.elapsed_seconds();
  t.reset();
  EXPECT_LT(t.elapsed_seconds(), before + 1e-3);
}

TEST(Timing, TimeSecondsRunsTheFunction) {
  int calls = 0;
  const double s = time_seconds([&] { ++calls; });
  EXPECT_EQ(calls, 1);
  EXPECT_GE(s, 0.0);
}

TEST(Timing, TimeBestOfRunsExactlyReps) {
  int calls = 0;
  const double s = time_best_of(5, [&] { ++calls; });
  EXPECT_EQ(calls, 5);
  EXPECT_GE(s, 0.0);
}

}  // namespace
}  // namespace pargreedy
