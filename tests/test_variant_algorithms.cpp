// Tests for the alternative algorithm formulations:
//   * mis_speculative / mm_speculative — the core algorithms expressed
//     through the generic deterministic-reservations engine;
//   * luby_mis_arrays — the classical array-based Luby formulation (same
//     MIS as luby_mis for the same seed, by construction);
//   * relabel_by_rank — the pre-permutation trick (PBBS setup) that turns
//     any ordering into the identity ordering on a renamed graph.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/matching/matching.hpp"
#include "core/mis/mis.hpp"
#include "core/mis/verify.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "graph/graph_ops.hpp"
#include "graph/validate.hpp"
#include "support/check.hpp"
#include "parallel/arch.hpp"

namespace pargreedy {
namespace {

EdgeList family(const std::string& name, uint64_t seed) {
  if (name == "random") return random_graph_nm(600, 2'400, seed);
  if (name == "rmat") return rmat_graph(10, 2'000, seed);
  if (name == "path") return path_graph(500);
  if (name == "star") return star_graph(400);
  if (name == "complete") return complete_graph(40);
  if (name == "geometric") return random_geometric(600, 0.05, seed);
  return watts_strogatz(500, 6, 0.3, seed);
}

class VariantFamilies : public ::testing::TestWithParam<std::string> {};

TEST_P(VariantFamilies, MisSpeculativeEqualsSequential) {
  for (uint64_t seed = 0; seed < 2; ++seed) {
    const CsrGraph g = CsrGraph::from_edges(family(GetParam(), seed));
    const uint64_t n = g.num_vertices();
    const VertexOrder order = VertexOrder::random(n, seed + 41);
    const MisResult expect = mis_sequential(g, order);
    for (uint64_t window : {uint64_t{1}, uint64_t{37}, n / 3 + 1, n}) {
      EXPECT_EQ(mis_speculative(g, order, window).in_set, expect.in_set)
          << "window=" << window;
    }
  }
}

TEST_P(VariantFamilies, MmSpeculativeEqualsSequential) {
  for (uint64_t seed = 0; seed < 2; ++seed) {
    const CsrGraph g = CsrGraph::from_edges(family(GetParam(), seed));
    const uint64_t m = g.num_edges();
    const EdgeOrder order = EdgeOrder::random(m, seed + 43);
    const MatchResult expect = mm_sequential(g, order);
    for (uint64_t window : {uint64_t{1}, uint64_t{37}, m / 3 + 1, m}) {
      EXPECT_EQ(mm_speculative(g, order, window).in_matching,
                expect.in_matching)
          << "window=" << window;
    }
  }
}

TEST_P(VariantFamilies, LubyArraysEqualsLubyInRegister) {
  // Same seed -> same priority values -> the same MIS, computed two ways.
  const CsrGraph g = CsrGraph::from_edges(family(GetParam(), 5));
  for (uint64_t seed = 0; seed < 3; ++seed) {
    const MisResult a = luby_mis(g, seed);
    const MisResult b = luby_mis_arrays(g, seed);
    EXPECT_EQ(a.in_set, b.in_set) << "seed " << seed;
    EXPECT_TRUE(is_maximal_independent_set(g, b.in_set));
  }
}

INSTANTIATE_TEST_SUITE_P(Families, VariantFamilies,
                         ::testing::Values("random", "rmat", "path", "star",
                                           "complete", "geometric",
                                           "smallworld"));

TEST(VariantDeterminism, SpeculativeVariantsStableAcrossWorkerCounts) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(1'500, 6'000, 3));
  const VertexOrder vo = VertexOrder::random(g.num_vertices(), 4);
  const EdgeOrder eo = EdgeOrder::random(g.num_edges(), 5);
  const MisResult mis_ref = mis_sequential(g, vo);
  const MatchResult mm_ref = mm_sequential(g, eo);
  for (int workers : {1, 2, 4}) {
    ScopedNumWorkers guard(workers);
    EXPECT_EQ(mis_speculative(g, vo, 128).in_set, mis_ref.in_set);
    EXPECT_EQ(mm_speculative(g, eo, 128).in_matching, mm_ref.in_matching);
  }
}

TEST(VariantProfiles, SpeculativeAttemptsCoverEveryItem) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(800, 3'200, 6));
  const VertexOrder vo = VertexOrder::random(800, 7);
  const MisResult r = mis_speculative(g, vo, 100);
  EXPECT_GE(r.profile.work_items, g.num_vertices());  // >= one attempt each
  EXPECT_GE(r.profile.rounds, 800u / 100u);
}

// ------------------------------------------------------- relabel_by_rank ---

TEST(RelabelByRank, ProducesAValidIsomorphicGraph) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(300, 1'200, 8));
  const VertexOrder order = VertexOrder::random(300, 9);
  const CsrGraph r = relabel_by_rank(g, order);
  EXPECT_TRUE(validate_csr(r).empty());
  EXPECT_EQ(r.num_vertices(), g.num_vertices());
  EXPECT_EQ(r.num_edges(), g.num_edges());
  // Degrees transfer through the renaming.
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(r.degree(order.rank(v)), g.degree(v));
}

TEST(RelabelByRank, IdentityOrderIsANoOp) {
  const CsrGraph g = CsrGraph::from_edges(rmat_graph(8, 600, 10));
  const CsrGraph r =
      relabel_by_rank(g, VertexOrder::identity(g.num_vertices()));
  ASSERT_EQ(r.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) EXPECT_EQ(r.edge(e), g.edge(e));
}

TEST(RelabelByRank, MisOnRelabeledGraphMapsBack) {
  // The contract the fig1/fig3 benches rely on: running with identity
  // order on the relabeled graph computes the same MIS, renamed.
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(500, 2'500, 11));
  const VertexOrder order = VertexOrder::random(500, 12);
  const CsrGraph r = relabel_by_rank(g, order);
  const VertexOrder ident = VertexOrder::identity(500);
  const MisResult direct = mis_sequential(g, order);
  for (const MisResult& renamed :
       {mis_sequential(r, ident), mis_prefix(r, ident, 64),
        mis_rootset(r, ident)}) {
    for (VertexId v = 0; v < 500; ++v)
      ASSERT_EQ(direct.in_set[v], renamed.in_set[order.rank(v)]) << v;
  }
}

TEST(RelabelByRank, IsIdentityFlagDetection) {
  EXPECT_TRUE(VertexOrder::identity(10).is_identity());
  EXPECT_TRUE(VertexOrder::from_permutation({0, 1, 2}).is_identity());
  EXPECT_FALSE(VertexOrder::from_permutation({1, 0, 2}).is_identity());
  EXPECT_FALSE(VertexOrder::random(1'000, 1).is_identity());
  EXPECT_TRUE(VertexOrder::identity(0).is_identity());
}

TEST(RelabelByRank, RejectsSizeMismatch) {
  const CsrGraph g = CsrGraph::from_edges(path_graph(5));
  EXPECT_THROW(relabel_by_rank(g, VertexOrder::identity(4)), CheckFailure);
}

}  // namespace
}  // namespace pargreedy
