// Unit tests for the extended workload generators (Watts–Strogatz small
// world, random geometric, random bipartite) — additional graph families
// for exercising the greedy algorithms on clustered, mesh-like, and
// two-sided topologies.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/matching/matching.hpp"
#include "core/mis/mis.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "graph/graph_ops.hpp"
#include "graph/validate.hpp"
#include "parallel/arch.hpp"
#include "random/hash.hpp"
#include "support/check.hpp"

namespace pargreedy {
namespace {

// ---------------------------------------------------------- small world ---

TEST(WattsStrogatz, BetaZeroIsTheRingLattice) {
  const EdgeList el = watts_strogatz(100, 4, 0.0, 1);
  const CsrGraph g = CsrGraph::from_edges(el);
  EXPECT_EQ(g.num_edges(), 200u);  // n * k/2
  for (VertexId v = 0; v < 100; ++v) EXPECT_EQ(g.degree(v), 4u);
  // Lattice edges only: |u - w| mod n in {1, 2}.
  for (const Edge& e : g.edges()) {
    const uint64_t d = e.v - e.u;
    EXPECT_TRUE(d == 1 || d == 2 || d == 98 || d == 99)
        << e.u << "-" << e.v;
  }
}

TEST(WattsStrogatz, BetaOneDestroysTheLattice) {
  const CsrGraph g = CsrGraph::from_edges(watts_strogatz(500, 4, 1.0, 2));
  uint64_t lattice_edges = 0;
  for (const Edge& e : g.edges()) {
    const uint64_t d = e.v - e.u;
    lattice_edges += (d <= 2 || d >= 498) ? 1 : 0;
  }
  // With full rewiring only ~k/n of edges land back on the ring.
  EXPECT_LT(lattice_edges, g.num_edges() / 5);
}

TEST(WattsStrogatz, OutputIsSimpleAndValid) {
  for (double beta : {0.0, 0.1, 0.5, 1.0}) {
    const CsrGraph g = CsrGraph::from_edges(watts_strogatz(300, 6, beta, 3));
    EXPECT_TRUE(validate_csr(g).empty()) << "beta=" << beta;
    // Rewiring can only merge edges, never add: m <= n*k/2.
    EXPECT_LE(g.num_edges(), 900u);
    EXPECT_GT(g.num_edges(), 800u);  // few collisions at this density
  }
}

TEST(WattsStrogatz, DeterministicAndSeedSensitive) {
  const EdgeList a = watts_strogatz(200, 4, 0.3, 7);
  const EdgeList b = watts_strogatz(200, 4, 0.3, 7);
  const EdgeList c = watts_strogatz(200, 4, 0.3, 8);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.num_edges(); ++i)
    EXPECT_EQ(a.edges()[i], b.edges()[i]);
  bool differ = a.num_edges() != c.num_edges();
  for (std::size_t i = 0; !differ && i < a.num_edges(); ++i)
    differ = !(a.edges()[i] == c.edges()[i]);
  EXPECT_TRUE(differ);
}

TEST(WattsStrogatz, RejectsBadParameters) {
  EXPECT_THROW(watts_strogatz(10, 3, 0.1, 1), CheckFailure);   // odd k
  EXPECT_THROW(watts_strogatz(10, 0, 0.1, 1), CheckFailure);   // k = 0
  EXPECT_THROW(watts_strogatz(4, 4, 0.1, 1), CheckFailure);    // n <= k
  EXPECT_THROW(watts_strogatz(10, 2, 1.5, 1), CheckFailure);   // beta > 1
}

// ------------------------------------------------------ random geometric ---

TEST(RandomGeometric, EdgesRespectTheRadius) {
  // Rebuild the point set with the same hash stream the generator uses and
  // verify every edge is within radius (and spot-check completeness).
  const uint64_t n = 400;
  const double radius = 0.08;
  const uint64_t seed = 4;
  const CsrGraph g = CsrGraph::from_edges(random_geometric(n, radius, seed));
  const HashRng rng = HashRng(seed).child(0x52474700);
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (uint64_t i = 0; i < n; ++i) {
    x[i] = rng.unit(2 * i);
    y[i] = rng.unit(2 * i + 1);
  }
  auto dist2 = [&](VertexId a, VertexId b) {
    const double dx = x[a] - x[b];
    const double dy = y[a] - y[b];
    return dx * dx + dy * dy;
  };
  for (const Edge& e : g.edges())
    EXPECT_LE(dist2(e.u, e.v), radius * radius + 1e-12);
  // Completeness: count pairs within radius by brute force.
  uint64_t expect = 0;
  for (VertexId a = 0; a < n; ++a)
    for (VertexId b = a + 1; b < n; ++b)
      expect += dist2(a, b) <= radius * radius ? 1 : 0;
  EXPECT_EQ(g.num_edges(), expect);
}

TEST(RandomGeometric, DensityTracksRadius) {
  // Expected degree ~ n * pi * r^2 (interior points). Doubling r roughly
  // quadruples m.
  const uint64_t n = 3'000;
  const uint64_t m_small =
      CsrGraph::from_edges(random_geometric(n, 0.02, 5)).num_edges();
  const uint64_t m_big =
      CsrGraph::from_edges(random_geometric(n, 0.04, 5)).num_edges();
  EXPECT_GT(m_big, 3 * m_small);
  EXPECT_LT(m_big, 6 * m_small);
}

TEST(RandomGeometric, ValidAndDeterministic) {
  const CsrGraph a = CsrGraph::from_edges(random_geometric(1'000, 0.05, 6));
  const CsrGraph b = CsrGraph::from_edges(random_geometric(1'000, 0.05, 6));
  EXPECT_TRUE(validate_csr(a).empty());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) EXPECT_EQ(a.edge(e), b.edge(e));
}

TEST(RandomGeometric, RejectsBadRadius) {
  EXPECT_THROW(random_geometric(10, 0.0, 1), CheckFailure);
  EXPECT_THROW(random_geometric(10, 1.5, 1), CheckFailure);
}

// ------------------------------------------------------- random bipartite ---

TEST(RandomBipartite, EdgesCrossThePartsOnly) {
  const uint64_t a = 50;
  const uint64_t b = 80;
  const EdgeList el = random_bipartite(a, b, 600, 7);
  EXPECT_EQ(el.num_vertices(), a + b);
  EXPECT_EQ(el.num_edges(), 600u);
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const Edge& e : el.edges()) {
    const Edge c = e.canonical();
    EXPECT_LT(c.u, a);
    EXPECT_GE(c.v, a);
    EXPECT_LT(c.v, a + b);
    EXPECT_TRUE(seen.insert({c.u, c.v}).second);
  }
}

TEST(RandomBipartite, GraphIsTwoColorable) {
  const CsrGraph g = CsrGraph::from_edges(random_bipartite(40, 60, 500, 8));
  // Verify bipartiteness via the parts directly (every edge crosses).
  for (const Edge& e : g.edges()) {
    EXPECT_TRUE((e.u < 40) != (e.v < 40));
  }
  EXPECT_TRUE(validate_csr(g).empty());
}

TEST(RandomBipartite, DenseRequestExactAndBounded) {
  const EdgeList el = random_bipartite(20, 30, 20 * 30 * 3 / 4, 9);
  EXPECT_EQ(el.num_edges(), 450u);
  EXPECT_THROW(random_bipartite(3, 3, 10, 1), CheckFailure);
  EXPECT_THROW(random_bipartite(0, 3, 0, 1), CheckFailure);
}

TEST(RandomBipartite, DeterministicInSeed) {
  const EdgeList x = random_bipartite(30, 30, 300, 2);
  const EdgeList y = random_bipartite(30, 30, 300, 2);
  ASSERT_EQ(x.num_edges(), y.num_edges());
  for (std::size_t i = 0; i < x.num_edges(); ++i)
    EXPECT_EQ(x.edges()[i], y.edges()[i]);
}

// -------------------------------- new families through the core pipeline ---

TEST(ExtraFamilies, GreedyAlgorithmsStayExactOnThem) {
  // End-to-end guard: the new families feed the core algorithms and the
  // determinism contract holds on them too.
  for (const EdgeList& el :
       {watts_strogatz(400, 6, 0.2, 1), random_geometric(400, 0.06, 2),
        random_bipartite(150, 250, 1'200, 3)}) {
    const CsrGraph g = CsrGraph::from_edges(el);
    const VertexOrder vo = VertexOrder::random(g.num_vertices(), 11);
    const EdgeOrder eo = EdgeOrder::random(g.num_edges(), 12);
    EXPECT_EQ(mis_rootset(g, vo).in_set, mis_sequential(g, vo).in_set);
    EXPECT_EQ(mm_rootset(g, eo).in_matching,
              mm_sequential(g, eo).in_matching);
  }
}

}  // namespace
}  // namespace pargreedy
