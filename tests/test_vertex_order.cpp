// Unit tests for VertexOrder and EdgeOrder — the total orderings pi whose
// randomness the paper's main theorem quantifies over, and whose fixedness
// is what makes every algorithm in the library deterministic.
#include <gtest/gtest.h>

#include <vector>

#include "core/matching/edge_order.hpp"
#include "core/mis/vertex_order.hpp"
#include "parallel/arch.hpp"
#include "random/permutation.hpp"
#include "support/check.hpp"

namespace pargreedy {
namespace {

TEST(VertexOrder, RandomIsAPermutation) {
  const VertexOrder order = VertexOrder::random(1'000, 5);
  EXPECT_EQ(order.size(), 1'000u);
  std::vector<uint32_t> perm(order.order().begin(), order.order().end());
  EXPECT_TRUE(is_valid_permutation(perm));
}

TEST(VertexOrder, NthAndRankAreInverse) {
  const VertexOrder order = VertexOrder::random(500, 7);
  for (uint64_t i = 0; i < order.size(); ++i)
    EXPECT_EQ(order.rank(order.nth(i)), i);
  for (VertexId v = 0; v < order.size(); ++v)
    EXPECT_EQ(order.nth(order.rank(v)), v);
}

TEST(VertexOrder, EarlierIsStrictTotalOrder) {
  const VertexOrder order = VertexOrder::random(100, 9);
  for (VertexId u = 0; u < 100; ++u) {
    EXPECT_FALSE(order.earlier(u, u));
    for (VertexId v = u + 1; v < 100; ++v)
      EXPECT_NE(order.earlier(u, v), order.earlier(v, u));
  }
}

TEST(VertexOrder, IdentityOrder) {
  const VertexOrder order = VertexOrder::identity(50);
  for (uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(order.nth(i), i);
    EXPECT_EQ(order.rank(static_cast<VertexId>(i)), i);
  }
  EXPECT_TRUE(order.earlier(3, 4));
  EXPECT_FALSE(order.earlier(4, 3));
}

TEST(VertexOrder, DeterministicInSeedAndWorkerCount) {
  VertexOrder base;
  {
    ScopedNumWorkers guard(1);
    base = VertexOrder::random(10'000, 42);
  }
  {
    ScopedNumWorkers guard(4);
    const VertexOrder again = VertexOrder::random(10'000, 42);
    for (uint64_t i = 0; i < base.size(); ++i)
      ASSERT_EQ(again.nth(i), base.nth(i));
  }
}

TEST(VertexOrder, SeedsDiffer) {
  const VertexOrder a = VertexOrder::random(1'000, 1);
  const VertexOrder b = VertexOrder::random(1'000, 2);
  bool differ = false;
  for (uint64_t i = 0; !differ && i < a.size(); ++i)
    differ = a.nth(i) != b.nth(i);
  EXPECT_TRUE(differ);
}

TEST(VertexOrder, FromPermutationValidates) {
  EXPECT_NO_THROW(VertexOrder::from_permutation({2, 0, 1}));
  EXPECT_THROW(VertexOrder::from_permutation({0, 0, 1}), CheckFailure);
  EXPECT_THROW(VertexOrder::from_permutation({0, 3, 1}), CheckFailure);
}

TEST(VertexOrder, FromPermutationRoundTrips) {
  const std::vector<VertexId> perm{3, 1, 4, 0, 2};
  const VertexOrder order = VertexOrder::from_permutation(perm);
  for (uint64_t i = 0; i < perm.size(); ++i) EXPECT_EQ(order.nth(i), perm[i]);
  EXPECT_TRUE(order.earlier(3, 2));   // rank 0 vs rank 4
  EXPECT_TRUE(order.earlier(1, 0));   // rank 1 vs rank 3
}

TEST(VertexOrder, EmptyOrder) {
  const VertexOrder order = VertexOrder::random(0, 1);
  EXPECT_EQ(order.size(), 0u);
  EXPECT_NO_THROW(VertexOrder::identity(0));
  EXPECT_NO_THROW(VertexOrder::from_permutation({}));
}

// ------------------------------------------------------------- EdgeOrder ---

TEST(EdgeOrder, RandomIsAPermutation) {
  const EdgeOrder order = EdgeOrder::random(2'000, 3);
  EXPECT_EQ(order.size(), 2'000u);
  std::vector<uint32_t> perm(order.order().begin(), order.order().end());
  EXPECT_TRUE(is_valid_permutation(perm));
}

TEST(EdgeOrder, NthAndRankAreInverse) {
  const EdgeOrder order = EdgeOrder::random(777, 8);
  for (uint64_t i = 0; i < order.size(); ++i)
    EXPECT_EQ(order.rank(order.nth(i)), i);
}

TEST(EdgeOrder, IdentityAndFromPermutation) {
  const EdgeOrder ident = EdgeOrder::identity(10);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(ident.nth(i), i);
  EXPECT_THROW(EdgeOrder::from_permutation({1, 1}), CheckFailure);
  const EdgeOrder perm = EdgeOrder::from_permutation({2, 0, 1});
  EXPECT_TRUE(perm.earlier(2, 0));
  EXPECT_TRUE(perm.earlier(0, 1));
}

TEST(EdgeOrder, VertexAndEdgeOrdersWithSameSeedDiffer) {
  // The two order types must not accidentally share randomness streams:
  // mixing vertex and edge orders from the same seed must still be valid
  // (and in general different) permutations.
  const VertexOrder vo = VertexOrder::random(100, 5);
  const EdgeOrder eo = EdgeOrder::random(100, 5);
  std::vector<uint32_t> vp(vo.order().begin(), vo.order().end());
  std::vector<uint32_t> ep(eo.order().begin(), eo.order().end());
  EXPECT_TRUE(is_valid_permutation(vp));
  EXPECT_TRUE(is_valid_permutation(ep));
}

}  // namespace
}  // namespace pargreedy
