// Unit tests for the concurrent union-find substrate (path halving +
// phase-disciplined link), including a parallel stress test of the
// find/link usage pattern speculative_for generates.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "extensions/union_find.hpp"
#include "parallel/arch.hpp"
#include "parallel/parallel_for.hpp"
#include "random/hash.hpp"

namespace pargreedy {
namespace {

TEST(UnionFind, SingletonsInitially) {
  UnionFind uf(10);
  EXPECT_EQ(uf.size(), 10u);
  EXPECT_EQ(uf.count_sets(), 10u);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(uf.find(v), v);
  EXPECT_FALSE(uf.same_set(0, 1));
}

TEST(UnionFind, UniteMergesAndReportsNovelty) {
  UnionFind uf(6);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_FALSE(uf.unite(1, 0));  // already together
  EXPECT_TRUE(uf.unite(0, 2));
  EXPECT_EQ(uf.count_sets(), 3u);  // {0,1,2,3}, {4}, {5}
  EXPECT_TRUE(uf.same_set(1, 3));
  EXPECT_FALSE(uf.same_set(1, 4));
}

TEST(UnionFind, ChainCollapsesUnderPathHalving) {
  // Build a long chain via unite and confirm finds still terminate and
  // agree after compression.
  const uint64_t n = 10'000;
  UnionFind uf(n);
  for (VertexId v = 1; v < n; ++v) uf.unite(v - 1, v);
  EXPECT_EQ(uf.count_sets(), 1u);
  const VertexId root = uf.find(0);
  for (VertexId v = 0; v < n; v += 997) EXPECT_EQ(uf.find(v), root);
}

TEST(UnionFind, TransitivityOverRandomUnions) {
  const uint64_t n = 2'000;
  UnionFind uf(n);
  // Reference: label propagation via a simple DSU implemented differently.
  std::vector<uint32_t> label(n);
  std::iota(label.begin(), label.end(), 0);
  auto ref_find = [&](uint32_t x) {
    while (label[x] != x) x = label[x];
    return x;
  };
  for (uint64_t i = 0; i < 3'000; ++i) {
    const VertexId a = static_cast<VertexId>(hash64(1, 2 * i) % n);
    const VertexId b = static_cast<VertexId>(hash64(1, 2 * i + 1) % n);
    uf.unite(a, b);
    label[ref_find(a)] = ref_find(b);
  }
  for (uint64_t i = 0; i < 5'000; ++i) {
    const VertexId a = static_cast<VertexId>(hash64(2, 2 * i) % n);
    const VertexId b = static_cast<VertexId>(hash64(2, 2 * i + 1) % n);
    EXPECT_EQ(uf.same_set(a, b), ref_find(a) == ref_find(b))
        << a << " vs " << b;
  }
}

TEST(UnionFind, LinkRequiresRootsButComposes) {
  UnionFind uf(5);
  uf.link(1, 0);  // 1 under 0
  uf.link(2, 0);  // 2 under 0
  EXPECT_EQ(uf.find(1), 0u);
  EXPECT_EQ(uf.find(2), 0u);
  uf.link(4, 3);
  uf.link(3, 0);
  EXPECT_EQ(uf.find(4), 0u);
  EXPECT_EQ(uf.count_sets(), 1u);
}

TEST(UnionFind, ConcurrentFindsAreSafeDuringCompression) {
  // Many concurrent find()s on a deep structure: path halving races must
  // neither crash nor change set membership.
  ScopedNumWorkers guard(4);
  const uint64_t n = 50'000;
  UnionFind uf(n);
  for (VertexId v = 1; v < n; ++v) uf.link(v, v - 1);  // one long chain

  std::atomic<uint64_t> mismatches{0};
  parallel_for(0, static_cast<int64_t>(n), [&](int64_t v) {
    if (uf.find(static_cast<VertexId>(v)) != 0) mismatches.fetch_add(1);
  });
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(uf.count_sets(), 1u);
}

TEST(UnionFind, PhaseDisciplineMatchesSequential) {
  // Emulate one speculative_for round: concurrent find()s, then disjoint
  // link()s — the exact usage of the spanning-forest step.
  ScopedNumWorkers guard(4);
  const uint64_t n = 1'024;
  UnionFind uf(n);
  // Pair up 2i and 2i+1 concurrently: all links touch disjoint roots.
  parallel_for(0, static_cast<int64_t>(n / 2), [&](int64_t i) {
    uf.link(static_cast<VertexId>(2 * i + 1), static_cast<VertexId>(2 * i));
  });
  EXPECT_EQ(uf.count_sets(), n / 2);
  for (VertexId v = 0; v < n; v += 2) {
    EXPECT_TRUE(uf.same_set(v, v + 1));
    if (v + 2 < n) {
      EXPECT_FALSE(uf.same_set(v, v + 2));
    }
  }
}

TEST(UnionFind, CountSetsMatchesUnionsPerformed) {
  const uint64_t n = 500;
  UnionFind uf(n);
  uint64_t successful = 0;
  for (uint64_t i = 0; i < 1'000; ++i) {
    const VertexId a = static_cast<VertexId>(hash64(3, 2 * i) % n);
    const VertexId b = static_cast<VertexId>(hash64(3, 2 * i + 1) % n);
    if (a != b && uf.unite(a, b)) ++successful;
  }
  EXPECT_EQ(uf.count_sets(), n - successful);
}

}  // namespace
}  // namespace pargreedy
