// Unit tests for the compact binary graph format (write_binary_graph /
// read_binary_graph): round trips, header validation, truncation and
// corruption rejection, and equivalence with the text formats.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "graph/io.hpp"
#include "graph/validate.hpp"
#include "support/check.hpp"

namespace pargreedy {
namespace {

namespace fs = std::filesystem;

class BinaryIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           (std::string("pargreedy_bin_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path file(const std::string& name) const { return dir_ / name; }

 private:
  fs::path dir_;
};

void expect_same_graph(const CsrGraph& a, const CsrGraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) EXPECT_EQ(a.edge(e), b.edge(e));
  for (VertexId v = 0; v < a.num_vertices(); ++v)
    EXPECT_EQ(a.degree(v), b.degree(v));
}

TEST_F(BinaryIoTest, RoundTripRandomGraph) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(500, 2'500, 1));
  write_binary_graph(file("g.pgrb"), g);
  const CsrGraph back = read_binary_graph(file("g.pgrb"));
  expect_same_graph(g, back);
  EXPECT_TRUE(validate_csr(back).empty());
}

TEST_F(BinaryIoTest, RoundTripStructuredFamilies) {
  for (const EdgeList& el : {path_graph(40), star_graph(25),
                             complete_graph(12), grid_graph(7, 9)}) {
    const CsrGraph g = CsrGraph::from_edges(el);
    write_binary_graph(file("s.pgrb"), g);
    expect_same_graph(g, read_binary_graph(file("s.pgrb")));
  }
}

TEST_F(BinaryIoTest, RoundTripEmptyAndEdgeless) {
  const CsrGraph empty = CsrGraph::from_edges(EdgeList(0));
  write_binary_graph(file("e.pgrb"), empty);
  expect_same_graph(empty, read_binary_graph(file("e.pgrb")));

  const CsrGraph edgeless = CsrGraph::from_edges(EdgeList(77));
  write_binary_graph(file("z.pgrb"), edgeless);
  const CsrGraph back = read_binary_graph(file("z.pgrb"));
  EXPECT_EQ(back.num_vertices(), 77u);
  EXPECT_EQ(back.num_edges(), 0u);
}

TEST_F(BinaryIoTest, BinaryAgreesWithTextFormat) {
  const CsrGraph g = CsrGraph::from_edges(rmat_graph(9, 1'500, 2));
  write_binary_graph(file("g.pgrb"), g);
  write_adjacency_graph(file("g.adj"), g);
  expect_same_graph(read_binary_graph(file("g.pgrb")),
                    read_adjacency_graph(file("g.adj")));
}

TEST_F(BinaryIoTest, FileIsCompact) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(1'000, 10'000, 3));
  write_binary_graph(file("g.pgrb"), g);
  const uint64_t size = fs::file_size(file("g.pgrb"));
  EXPECT_EQ(size, 4 + 8 + 8 + 8 * g.num_edges());  // magic + n + m + edges
}

TEST_F(BinaryIoTest, MissingFileThrows) {
  EXPECT_THROW(read_binary_graph(file("nope.pgrb")), CheckFailure);
}

TEST_F(BinaryIoTest, WrongMagicThrows) {
  std::ofstream(file("bad.pgrb"), std::ios::binary) << "XXXX12345678";
  EXPECT_THROW(read_binary_graph(file("bad.pgrb")), CheckFailure);
  // A text-format file is also rejected.
  const CsrGraph g = CsrGraph::from_edges(path_graph(4));
  write_adjacency_graph(file("g.adj"), g);
  EXPECT_THROW(read_binary_graph(file("g.adj")), CheckFailure);
}

TEST_F(BinaryIoTest, TruncatedEdgeTableThrows) {
  const CsrGraph g = CsrGraph::from_edges(complete_graph(10));
  write_binary_graph(file("g.pgrb"), g);
  // Chop the last 16 bytes off.
  const uint64_t size = fs::file_size(file("g.pgrb"));
  fs::resize_file(file("g.pgrb"), size - 16);
  EXPECT_THROW(read_binary_graph(file("g.pgrb")), CheckFailure);
}

TEST_F(BinaryIoTest, TruncatedHeaderThrows) {
  std::ofstream(file("h.pgrb"), std::ios::binary) << "PGRB";
  EXPECT_THROW(read_binary_graph(file("h.pgrb")), CheckFailure);
}

TEST_F(BinaryIoTest, OutOfRangeEndpointThrows) {
  // Hand-craft a file claiming n=2 with an edge to vertex 5.
  std::ofstream out(file("r.pgrb"), std::ios::binary);
  out.write("PGRB", 4);
  const uint64_t n = 2;
  const uint64_t m = 1;
  out.write(reinterpret_cast<const char*>(&n), 8);
  out.write(reinterpret_cast<const char*>(&m), 8);
  const uint32_t edge[2] = {0, 5};
  out.write(reinterpret_cast<const char*>(edge), 8);
  out.close();
  EXPECT_THROW(read_binary_graph(file("r.pgrb")), CheckFailure);
}

TEST_F(BinaryIoTest, LargeGraphRoundTrip) {
  const CsrGraph g =
      CsrGraph::from_edges(random_graph_nm(20'000, 100'000, 4));
  write_binary_graph(file("big.pgrb"), g);
  expect_same_graph(g, read_binary_graph(file("big.pgrb")));
}

}  // namespace
}  // namespace pargreedy
