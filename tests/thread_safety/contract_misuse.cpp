// Negative thread-safety fixture: a reader-side code path calling writer
// mutators without holding any writer role.
//
// This TU MUST fail to compile under `clang -fsyntax-only -Wthread-safety
// -Werror=thread-safety`; the thread_safety_contract_misuse ctest registers
// it with WILL_FAIL, so the suite goes red if this file ever *compiles* —
// i.e. if the capability annotations stop making the single-writer
// violation a compile error.
#include "dynamic/dynamic_mis.hpp"
#include "dynamic/overlay_graph.hpp"
#include "dynamic/update_batch.hpp"
#include "txn/published_state.hpp"
#include "txn/transaction.hpp"

namespace pargreedy {

// A "reader" that mutates: no PARGREEDY_REQUIRES, so every call below
// violates the callee's writer-role requirement.
uint64_t reader_that_mutates(DynamicMis& engine, OverlayGraph& graph,
                             MisTransaction& txn, const UpdateBatch& batch) {
  engine.apply_batch(batch);       // requires engine.writer_role_
  graph.insert_edge(0, 1);         // requires graph.writer_role_
  txn.begin();                     // requires txn.writer_role_
  txn.apply(batch);
  return txn.commit();
}

// Publishing or reclaiming without the published state's writer role is
// the same violation on the lock-free read path's writer side.
uint64_t reader_that_publishes(PublishedState<uint8_t>& state) {
  state.publish(0, 0, {});         // requires state.writer_role_
  state.reclaim();                 // requires state.writer_role_
  return 0;
}

}  // namespace pargreedy
