// Positive thread-safety fixture: the annotated surface, used correctly.
//
// Compiled with `clang -fsyntax-only -Wthread-safety -Werror=thread-safety`
// by the thread_safety_contract_clean ctest (Clang configures only). The
// explicit template instantiations at the bottom force the analysis through
// every member of Transaction and VersionRing; the writer functions model
// the protocol's one writer thread holding each object's role capability.
// If an annotation rots — a mutator loses its REQUIRES, a body stops
// acquiring a role it needs — this TU stops being warning-clean and the
// test fails.
#include <cstdint>

#include "dynamic/dynamic_matching.hpp"
#include "dynamic/dynamic_mis.hpp"
#include "dynamic/overlay_graph.hpp"
#include "dynamic/update_batch.hpp"
#include "parallel/arch.hpp"
#include "support/thread_annotations.hpp"
#include "txn/transaction.hpp"
#include "txn/version_ring.hpp"

namespace pargreedy {

// The writer thread of a DynamicMis: holds the engine's role across the
// mutation sequence. apply_batch acquires the overlay's role internally.
void mis_writer(DynamicMis& engine, const UpdateBatch& batch)
    PARGREEDY_REQUIRES(engine.writer_role_) {
  engine.apply_batch(batch);
  engine.set_compaction_threshold(0.5);
  engine.compact_if_needed();
  engine.compact();
}

// Reader-side queries need no capability: const surface only.
uint64_t mis_reader(const DynamicMis& engine) {
  return engine.solution_size() + engine.epoch();
}

void matching_writer(DynamicMatching& engine, const UpdateBatch& batch)
    PARGREEDY_REQUIRES(engine.writer_role_) {
  engine.apply_batch(batch);
  engine.compact_if_needed();
}

uint64_t matching_reader(const DynamicMatching& engine) {
  return engine.matching_size() + engine.epoch();
}

// Direct overlay mutation: the caller is the overlay's writer.
void overlay_writer(OverlayGraph& graph)
    PARGREEDY_REQUIRES(graph.writer_role_) {
  const EdgeSlot s = graph.insert_edge(0, 1, Weight{2});
  if (s != kInvalidSlot) graph.set_slot_weight(s, Weight{3});
  graph.erase_edge(0, 1);
}

// The transaction layer's writer thread: holds the wrapper's role; the
// wrapper's bodies acquire the engine's (and, in commit, the ring's).
uint64_t txn_writer(MisTransaction& txn, const UpdateBatch& batch)
    PARGREEDY_REQUIRES(txn.writer_role_) {
  txn.begin();
  txn.apply(batch);
  const EngineSnapshot sp = txn.savepoint();
  txn.apply(batch);
  txn.rollback_to(sp);
  return txn.commit();
}

void ring_writer(VersionRing<uint8_t>& ring)
    PARGREEDY_REQUIRES(ring.writer_role_) {
  ring.push({});
}

// Worker-width reconfiguration goes through the scoped guard, which holds
// detail::worker_config_role for its scope.
int scoped_width_change() {
  ScopedNumWorkers pin(2);
  return num_workers();
}

// Force analysis of every templated member.
template class Transaction<MisTxnTraits>;
template class Transaction<MatchingTxnTraits>;
template class VersionRing<uint8_t>;
template class VersionRing<VertexId>;

}  // namespace pargreedy
