// Positive thread-safety fixture: the annotated surface, used correctly.
//
// Compiled with `clang -fsyntax-only -Wthread-safety -Werror=thread-safety`
// by the thread_safety_contract_clean ctest (Clang configures only). The
// explicit template instantiations at the bottom force the analysis through
// every member of Transaction and VersionRing; the writer functions model
// the protocol's one writer thread holding each object's role capability.
// If an annotation rots — a mutator loses its REQUIRES, a body stops
// acquiring a role it needs — this TU stops being warning-clean and the
// test fails.
#include <cstdint>

#include "dynamic/dynamic_matching.hpp"
#include "dynamic/dynamic_mis.hpp"
#include "dynamic/overlay_graph.hpp"
#include "dynamic/update_batch.hpp"
#include "parallel/arch.hpp"
#include "support/thread_annotations.hpp"
#include "txn/epoch.hpp"
#include "txn/published_state.hpp"
#include "txn/transaction.hpp"
#include "txn/version_ring.hpp"

namespace pargreedy {

// The writer thread of a DynamicMis: holds the engine's role across the
// mutation sequence. apply_batch acquires the overlay's role internally.
void mis_writer(DynamicMis& engine, const UpdateBatch& batch)
    PARGREEDY_REQUIRES(engine.writer_role_) {
  engine.apply_batch(batch);
  engine.set_compaction_threshold(0.5);
  engine.compact_if_needed();
  engine.compact();
}

// Reader-side queries need no capability: const surface only.
uint64_t mis_reader(const DynamicMis& engine) {
  return engine.size() + engine.epoch();
}

void matching_writer(DynamicMatching& engine, const UpdateBatch& batch)
    PARGREEDY_REQUIRES(engine.writer_role_) {
  engine.apply_batch(batch);
  engine.compact_if_needed();
}

uint64_t matching_reader(const DynamicMatching& engine) {
  return engine.size() + engine.epoch();
}

// Direct overlay mutation: the caller is the overlay's writer.
void overlay_writer(OverlayGraph& graph)
    PARGREEDY_REQUIRES(graph.writer_role_) {
  const EdgeSlot s = graph.insert_edge(0, 1, Weight{2});
  if (s != kInvalidSlot) graph.set_slot_weight(s, Weight{3});
  graph.erase_edge(0, 1);
}

// The transaction layer's writer thread: holds the wrapper's role; the
// wrapper's bodies acquire the engine's (and, in commit, the ring's).
uint64_t txn_writer(MisTransaction& txn, const UpdateBatch& batch)
    PARGREEDY_REQUIRES(txn.writer_role_) {
  txn.begin();
  txn.apply(batch);
  const EngineSnapshot sp = txn.savepoint();
  txn.apply(batch);
  txn.rollback_to(sp);
  return txn.commit();
}

void ring_writer(VersionRing<uint8_t>& ring)
    PARGREEDY_REQUIRES(ring.writer_role_) {
  ring.push({});
}

// The lock-free reader surface: NO capability on the function — this is
// the machine-checked statement that the published-read path is callable
// without the writer role (the acceptance criterion of the epoch work).
// The zero-copy accessors require the shared reader capability, which
// the scoped ReadGuard acquires; the copying conveniences and the
// Transaction read API need nothing at all.
uint64_t published_reader(const PublishedState<uint8_t>& state) {
  ReadGuard guard(state.epochs_);
  uint64_t sum = state.window(guard).versions.size();
  sum += state.latest(guard).version;
  sum += state.at(state.latest(guard).version, guard).checksum;
  return sum;
}

uint64_t txn_lock_free_reader(const MisTransaction& txn) {
  uint64_t sum = txn.version() + txn.oldest_version();
  sum += txn.committed_solution().size();
  sum += txn.solution_at(txn.version()).size();
  const auto& state = txn.published_state();
  ReadGuard guard(state.epochs_);
  return sum + state.latest(guard).version;
}

// The published writer: publish/reclaim under the state's writer role
// (the epoch advance acquires the manager's own writer role inside).
void published_writer(PublishedState<uint8_t>& state)
    PARGREEDY_REQUIRES(state.writer_role_) {
  state.publish(0, 0, {});
  state.reclaim();
  (void)state.retired_count();
}

// Worker-width reconfiguration goes through the scoped guard, which holds
// detail::worker_config_role for its scope.
int scoped_width_change() {
  ScopedNumWorkers pin(2);
  return num_workers();
}

// Force analysis of every templated member.
template class Transaction<MisTxnTraits>;
template class Transaction<MatchingTxnTraits>;
template class VersionRing<uint8_t>;
template class VersionRing<VertexId>;
template class PublishedState<uint8_t>;
template class PublishedState<VertexId>;

}  // namespace pargreedy
