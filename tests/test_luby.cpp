// Unit tests for Luby's Algorithm A — the parallel baseline of Figure 3.
// Unlike the greedy variants it re-randomizes priorities each round, so it
// returns *an* MIS (deterministic in the seed), not the lexicographically
// first one.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "core/mis/mis.hpp"
#include "core/mis/verify.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "parallel/arch.hpp"

namespace pargreedy {
namespace {

class LubyFamilies : public ::testing::TestWithParam<int> {};

CsrGraph luby_family(int which) {
  switch (which) {
    case 0: return CsrGraph::from_edges(random_graph_nm(1'000, 4'000, 1));
    case 1: return CsrGraph::from_edges(rmat_graph(10, 3'000, 2));
    case 2: return CsrGraph::from_edges(path_graph(777));
    case 3: return CsrGraph::from_edges(star_graph(300));
    case 4: return CsrGraph::from_edges(complete_graph(50));
    case 5: return CsrGraph::from_edges(grid_graph(25, 25));
    default: return CsrGraph::from_edges(binary_tree(511));
  }
}

TEST_P(LubyFamilies, ReturnsAValidMis) {
  const CsrGraph g = luby_family(GetParam());
  for (uint64_t seed = 0; seed < 3; ++seed) {
    const MisResult r = luby_mis(g, seed);
    EXPECT_TRUE(is_maximal_independent_set(g, r.in_set)) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, LubyFamilies, ::testing::Range(0, 7));

TEST(Luby, DeterministicInSeedAcrossWorkerCounts) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(2'000, 8'000, 3));
  MisResult base;
  {
    ScopedNumWorkers guard(1);
    base = luby_mis(g, 42);
  }
  for (int workers : {2, 4}) {
    ScopedNumWorkers guard(workers);
    EXPECT_EQ(luby_mis(g, 42).in_set, base.in_set) << "workers=" << workers;
  }
}

TEST(Luby, SeedsGenerallyProduceDifferentSets) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(1'000, 4'000, 4));
  EXPECT_NE(luby_mis(g, 1).in_set, luby_mis(g, 2).in_set);
}

TEST(Luby, UsuallyDiffersFromLexFirstMis) {
  // The paper's point: Luby gives a *different* answer than the greedy
  // ordering-based algorithms (no fixed pi to agree with).
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(1'000, 4'000, 5));
  const MisResult greedy =
      mis_sequential(g, VertexOrder::random(1'000, 6));
  EXPECT_NE(luby_mis(g, 6).in_set, greedy.in_set);
}

TEST(Luby, RoundCountIsLogarithmic) {
  // O(log n) rounds w.h.p. — the classic Luby bound.
  for (uint64_t n : {1'000ull, 4'000ull, 16'000ull}) {
    const CsrGraph g = CsrGraph::from_edges(
        random_graph_nm(n, 5 * n, static_cast<uint64_t>(n)));
    const MisResult r = luby_mis(g, 9, ProfileLevel::kCounters);
    EXPECT_LE(r.profile.rounds,
              static_cast<uint64_t>(
                  6.0 * std::log2(static_cast<double>(n))))
        << "n=" << n;
    EXPECT_GE(r.profile.rounds, 1u);
  }
}

TEST(Luby, CompleteGraphResolvesInOneRound) {
  // One local minimum exists; everything else dies immediately.
  const CsrGraph g = CsrGraph::from_edges(complete_graph(64));
  const MisResult r = luby_mis(g, 11, ProfileLevel::kCounters);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r.profile.rounds, 1u);
}

TEST(Luby, EdgeCases) {
  EXPECT_EQ(luby_mis(CsrGraph::from_edges(EdgeList(0)), 1).size(), 0u);
  EXPECT_EQ(luby_mis(CsrGraph::from_edges(EdgeList(25)), 1).size(), 25u);
  EdgeList pair(2);
  pair.add(0, 1);
  EXPECT_EQ(luby_mis(CsrGraph::from_edges(pair), 1).size(), 1u);
}

TEST(Luby, WorkExceedsGreedyPrefixOnSameInput) {
  // Section 6's observation: "our prefix-based algorithm performs less work
  // in practice" than Luby. Compare profiled edge touches.
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(4'000, 20'000, 7));
  const VertexOrder order = VertexOrder::random(4'000, 8);
  const MisResult luby = luby_mis(g, 9, ProfileLevel::kCounters);
  const MisResult prefix =
      mis_prefix(g, order, 4'000 / 50, ProfileLevel::kCounters);
  EXPECT_GT(luby.profile.work_edges, prefix.profile.work_edges);
}

}  // namespace
}  // namespace pargreedy
