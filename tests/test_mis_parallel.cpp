// Integration tests for the three parallel MIS implementations (Algorithm 2
// naive and rootset, Algorithm 3 prefix): each must return *exactly* the
// sequential greedy MIS for the same ordering — the paper's determinism
// promise — at every worker count and prefix size.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/mis/mis.hpp"
#include "core/mis/verify.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "parallel/arch.hpp"
#include "support/check.hpp"

namespace pargreedy {
namespace {

EdgeList family(const std::string& name, uint64_t seed) {
  if (name == "random") return random_graph_nm(600, 2'400, seed);
  if (name == "rmat") return rmat_graph(10, 2'000, seed);
  if (name == "path") return path_graph(500);
  if (name == "cycle") return cycle_graph(501);
  if (name == "grid") return grid_graph(22, 23);
  if (name == "star") return star_graph(400);
  if (name == "complete") return complete_graph(40);
  if (name == "tree") return binary_tree(511);
  if (name == "ba") return barabasi_albert(400, 3, seed);
  if (name == "bipartite") return complete_bipartite(30, 40);
  throw std::runtime_error("unknown family " + name);
}

using Params = std::tuple<std::string, uint64_t>;  // family, seed

class MisVariants : public ::testing::TestWithParam<Params> {};

TEST_P(MisVariants, NaiveEqualsSequential) {
  const auto& [fam, seed] = GetParam();
  const CsrGraph g = CsrGraph::from_edges(family(fam, seed));
  const VertexOrder order = VertexOrder::random(g.num_vertices(), seed + 100);
  const MisResult expect = mis_sequential(g, order);
  const MisResult got = mis_parallel_naive(g, order);
  EXPECT_EQ(got.in_set, expect.in_set);
}

TEST_P(MisVariants, RootsetEqualsSequential) {
  const auto& [fam, seed] = GetParam();
  const CsrGraph g = CsrGraph::from_edges(family(fam, seed));
  const VertexOrder order = VertexOrder::random(g.num_vertices(), seed + 100);
  const MisResult expect = mis_sequential(g, order);
  const MisResult got = mis_rootset(g, order);
  EXPECT_EQ(got.in_set, expect.in_set);
}

TEST_P(MisVariants, PrefixEqualsSequentialAcrossWindowSizes) {
  const auto& [fam, seed] = GetParam();
  const CsrGraph g = CsrGraph::from_edges(family(fam, seed));
  const uint64_t n = g.num_vertices();
  const VertexOrder order = VertexOrder::random(n, seed + 100);
  const MisResult expect = mis_sequential(g, order);
  for (uint64_t window : {uint64_t{1}, uint64_t{2}, uint64_t{7}, n / 10 + 1,
                          n / 2 + 1, n, 3 * n}) {
    const MisResult got = mis_prefix(g, order, window);
    EXPECT_EQ(got.in_set, expect.in_set) << "window=" << window;
  }
}

TEST_P(MisVariants, AdversarialIdentityOrderStillExact) {
  // The determinism guarantee is for *every* ordering; only the depth bound
  // needs randomness. Identity order is the adversarial case.
  const auto& [fam, seed] = GetParam();
  const CsrGraph g = CsrGraph::from_edges(family(fam, seed));
  const VertexOrder order = VertexOrder::identity(g.num_vertices());
  const MisResult expect = mis_sequential(g, order);
  EXPECT_EQ(mis_parallel_naive(g, order).in_set, expect.in_set);
  EXPECT_EQ(mis_rootset(g, order).in_set, expect.in_set);
  EXPECT_EQ(mis_prefix(g, order, g.num_vertices() / 7 + 1).in_set,
            expect.in_set);
}

INSTANTIATE_TEST_SUITE_P(
    Families, MisVariants,
    ::testing::Combine(::testing::Values("random", "rmat", "path", "cycle",
                                         "grid", "star", "complete", "tree",
                                         "ba", "bipartite"),
                       ::testing::Values(0, 1, 2)),
    [](const ::testing::TestParamInfo<Params>& info) {
      return std::get<0>(info.param) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// ----------------------------------------------------------- worker sweep ---

class MisWorkers : public ::testing::TestWithParam<int> {};

TEST_P(MisWorkers, AllVariantsExactAtEveryWidth) {
  const int workers = GetParam();
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(2'000, 10'000, 3));
  const VertexOrder order = VertexOrder::random(g.num_vertices(), 17);
  MisResult expect;
  {
    ScopedNumWorkers guard(1);
    expect = mis_sequential(g, order);
  }
  ScopedNumWorkers guard(workers);
  EXPECT_EQ(mis_parallel_naive(g, order).in_set, expect.in_set);
  EXPECT_EQ(mis_rootset(g, order).in_set, expect.in_set);
  EXPECT_EQ(mis_prefix(g, order, 128).in_set, expect.in_set);
  EXPECT_EQ(mis_prefix(g, order, g.num_vertices()).in_set, expect.in_set);
}

INSTANTIATE_TEST_SUITE_P(WidthSweep, MisWorkers,
                         ::testing::Values(1, 2, 3, 4, 8));

// --------------------------------------------------------------- profiles ---

TEST(MisProfiles, PrefixWindowOneMatchesSequentialWork) {
  // prefix_size = 1 IS the sequential algorithm: every attempt resolves,
  // so rounds == n and no redundant edge scans happen.
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(500, 2'000, 4));
  const VertexOrder order = VertexOrder::random(500, 5);
  const MisResult r =
      mis_prefix(g, order, 1, ProfileLevel::kCounters);
  EXPECT_EQ(r.profile.rounds, 500u);
  EXPECT_EQ(r.profile.work_items, 500u);  // one attempt per vertex
}

TEST(MisProfiles, FullWindowRoundsEqualDependenceLength) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(800, 3'200, 6));
  const VertexOrder order = VertexOrder::random(800, 7);
  const MisResult naive =
      mis_parallel_naive(g, order, ProfileLevel::kCounters);
  const MisResult prefix =
      mis_prefix(g, order, 800, ProfileLevel::kCounters);
  EXPECT_EQ(prefix.profile.rounds, naive.profile.rounds);
}

TEST(MisProfiles, WorkGrowsWithWindow) {
  // Figure 1(a): larger prefixes mean more speculative re-scans. Work must
  // be monotone (within noise; here it is exact for fixed inputs).
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(1'000, 5'000, 8));
  const VertexOrder order = VertexOrder::random(1'000, 9);
  uint64_t last_work = 0;
  for (uint64_t window : {uint64_t{1}, uint64_t{10}, uint64_t{100},
                          uint64_t{1'000}}) {
    const MisResult r =
        mis_prefix(g, order, window, ProfileLevel::kCounters);
    EXPECT_GE(r.profile.total_work(), last_work) << "window=" << window;
    last_work = r.profile.total_work();
  }
}

TEST(MisProfiles, RoundsShrinkWithWindow) {
  // Figure 1(b): larger prefixes mean fewer outer rounds.
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(1'000, 5'000, 10));
  const VertexOrder order = VertexOrder::random(1'000, 11);
  uint64_t last_rounds = UINT64_MAX;
  for (uint64_t window : {uint64_t{1}, uint64_t{10}, uint64_t{100},
                          uint64_t{1'000}}) {
    const MisResult r =
        mis_prefix(g, order, window, ProfileLevel::kCounters);
    EXPECT_LE(r.profile.rounds, last_rounds) << "window=" << window;
    last_rounds = r.profile.rounds;
  }
}

TEST(MisProfiles, DetailedPerRoundRowsSumToCounters) {
  const CsrGraph g = CsrGraph::from_edges(rmat_graph(10, 3'000, 12));
  const VertexOrder order = VertexOrder::random(g.num_vertices(), 13);
  const MisResult r =
      mis_prefix(g, order, 256, ProfileLevel::kDetailed);
  ASSERT_EQ(r.profile.per_round.size(), r.profile.rounds);
  uint64_t items = 0;
  uint64_t edges = 0;
  uint64_t decided = 0;
  for (const RoundProfile& round : r.profile.per_round) {
    items += round.active_items;
    edges += round.work_edges;
    decided += round.decided;
  }
  EXPECT_EQ(items, r.profile.work_items);
  EXPECT_EQ(edges, r.profile.work_edges);
  EXPECT_EQ(decided, g.num_vertices());  // every vertex resolves exactly once
}

TEST(MisProfiles, SummaryMentionsKeyCounters) {
  const CsrGraph g = CsrGraph::from_edges(path_graph(50));
  const MisResult r = mis_prefix(g, VertexOrder::identity(50), 8,
                                 ProfileLevel::kCounters);
  const std::string s = r.profile.summary();
  EXPECT_NE(s.find("rounds"), std::string::npos);
  EXPECT_NE(s.find("work"), std::string::npos);
}

// ------------------------------------------------------------ edge cases ---

TEST(MisParallelEdgeCases, EmptyAndEdgeless) {
  const CsrGraph empty = CsrGraph::from_edges(EdgeList(0));
  EXPECT_EQ(mis_parallel_naive(empty, VertexOrder::identity(0)).size(), 0u);
  EXPECT_EQ(mis_rootset(empty, VertexOrder::identity(0)).size(), 0u);
  EXPECT_EQ(mis_prefix(empty, VertexOrder::identity(0), 1).size(), 0u);

  const CsrGraph edgeless = CsrGraph::from_edges(EdgeList(30));
  const VertexOrder order = VertexOrder::random(30, 1);
  EXPECT_EQ(mis_parallel_naive(edgeless, order).size(), 30u);
  EXPECT_EQ(mis_rootset(edgeless, order).size(), 30u);
  EXPECT_EQ(mis_prefix(edgeless, order, 7).size(), 30u);
}

TEST(MisParallelEdgeCases, SingleVertexAndSingleEdge) {
  const CsrGraph one = CsrGraph::from_edges(EdgeList(1));
  EXPECT_EQ(mis_rootset(one, VertexOrder::identity(1)).size(), 1u);

  EdgeList el(2);
  el.add(0, 1);
  const CsrGraph pair = CsrGraph::from_edges(el);
  const MisResult r = mis_rootset(pair, VertexOrder::identity(2));
  EXPECT_EQ(r.members(), (std::vector<VertexId>{0}));
}

TEST(MisParallelEdgeCases, MismatchedOrderSizeThrows) {
  const CsrGraph g = CsrGraph::from_edges(path_graph(5));
  const VertexOrder bad = VertexOrder::identity(4);
  EXPECT_THROW(mis_parallel_naive(g, bad), CheckFailure);
  EXPECT_THROW(mis_rootset(g, bad), CheckFailure);
  EXPECT_THROW(mis_prefix(g, bad, 2), CheckFailure);
}

TEST(MisParallelEdgeCases, ZeroWindowIsClampedToOne) {
  const CsrGraph g = CsrGraph::from_edges(path_graph(10));
  const VertexOrder order = VertexOrder::identity(10);
  const MisResult r = mis_prefix(g, order, 0, ProfileLevel::kCounters);
  EXPECT_EQ(r.in_set, mis_sequential(g, order).in_set);
  EXPECT_EQ(r.profile.rounds, 10u);  // window 1 behavior
}

}  // namespace
}  // namespace pargreedy
