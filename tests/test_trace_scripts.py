#!/usr/bin/env python3
"""Unit tests for scripts/validate_trace_json.py — the Chrome-trace
validator guarding the CI bench-capture lane's trace artifacts. Invoked
through CTest (stdlib unittest, no third-party dependencies).
"""
import importlib.util
import json
import tempfile
import unittest
from pathlib import Path

SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"


def load(name):
    spec = importlib.util.spec_from_file_location(name, SCRIPTS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


validate = load("validate_trace_json")


def span(name, cat="repro", ts=10, dur=5, args=None):
    event = {"name": name, "cat": cat, "ph": "X", "ts": ts, "dur": dur,
             "pid": 1, "tid": 0}
    if args is not None:
        event["args"] = args
    return event


def counter(name, value, ts=100):
    return {"name": name, "cat": "metrics", "ph": "C", "ts": ts, "pid": 1,
            "tid": 0, "args": {"value": value}}


GOOD = {
    "traceEvents": [
        {"name": "process_name", "ph": "M", "ts": 0, "pid": 1, "tid": 0,
         "args": {"name": "pargreedy"}},
        span("decide", args={"round": 0, "frontier": 12}),
        span("commit", args={"round": 0, "flipped": 3}),
        span("expand"),
        {"name": "tick", "cat": "repro", "ph": "i", "ts": 12, "pid": 1,
         "tid": 0, "s": "t"},
        counter("txn.abort", 4),
        counter("trace.dropped", 0),
    ],
    "displayTimeUnit": "ms",
}


class TraceFileTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.dir = Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def write(self, doc, name="TRACE_demo.json"):
        path = self.dir / name
        path.write_text(doc if isinstance(doc, str) else json.dumps(doc))
        return path

    def run_main(self, *argv):
        return validate.main(["validate_trace_json", *map(str, argv)])


class ValidateTraceJsonTest(TraceFileTest):
    def test_accepts_well_formed_trace(self):
        self.assertEqual(self.run_main(self.write(GOOD)), 0)

    def test_missing_file_fails(self):
        self.assertEqual(self.run_main(self.dir / "TRACE_absent.json"), 1)

    def test_malformed_json_fails(self):
        self.assertEqual(self.run_main(self.write("{]")), 1)

    def test_top_level_list_fails(self):
        # The tracer emits JSON *object* format; bare event arrays (also
        # legal Chrome input) are rejected so a writer regression shows.
        self.assertEqual(self.run_main(self.write(GOOD["traceEvents"])), 1)

    def test_empty_trace_events_fails(self):
        self.assertEqual(self.run_main(self.write({"traceEvents": []})), 1)

    def test_unknown_phase_fails(self):
        bad = dict(GOOD, traceEvents=[dict(span("x"), ph="Z")])
        self.assertEqual(self.run_main(self.write(bad)), 1)

    def test_complete_event_without_dur_fails(self):
        event = span("x")
        del event["dur"]
        bad = dict(GOOD, traceEvents=[event])
        self.assertEqual(self.run_main(self.write(bad)), 1)

    def test_negative_ts_fails(self):
        bad = dict(GOOD, traceEvents=[span("x", ts=-1)])
        self.assertEqual(self.run_main(self.write(bad)), 1)

    def test_counter_without_value_fails(self):
        event = counter("c", 1)
        event["args"] = {}
        bad = dict(GOOD, traceEvents=[event])
        self.assertEqual(self.run_main(self.write(bad)), 1)

    def test_boolean_args_fail(self):
        bad = dict(GOOD, traceEvents=[span("x", args={"flag": True})])
        self.assertEqual(self.run_main(self.write(bad)), 1)

    def test_require_satisfied_passes(self):
        path = self.write(GOOD)
        self.assertEqual(
            self.run_main(path, "--require", "decide,commit,expand"), 0)
        self.assertEqual(self.run_main(path, "--require", "txn.abort"), 0)

    def test_require_missing_name_fails(self):
        self.assertEqual(
            self.run_main(self.write(GOOD), "--require", "never_emitted"), 1)

    def test_require_applies_to_every_file(self):
        # txn.abort occurs in GOOD but not in a second counter-free file.
        other = dict(GOOD, traceEvents=[span("decide")])
        self.assertEqual(
            self.run_main(self.write(GOOD),
                          self.write(other, "TRACE_other.json"),
                          "--require", "txn.abort"), 1)

    def test_one_bad_file_fails_the_set(self):
        self.assertEqual(
            self.run_main(self.write(GOOD),
                          self.write("{]", "TRACE_bad.json")), 1)

    def test_no_files_is_usage_error(self):
        self.assertEqual(self.run_main(), 2)

    def test_require_without_argument_is_usage_error(self):
        self.assertEqual(self.run_main(self.write(GOOD), "--require"), 2)


if __name__ == "__main__":
    unittest.main(verbosity=2)
