// Unit tests for the sequential greedy maximal matching — the algorithm
// that defines the lexicographically-first matching (Section 5) every
// parallel variant must reproduce.
#include <gtest/gtest.h>

#include <vector>

#include "core/matching/matching.hpp"
#include "core/matching/verify.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "support/check.hpp"

namespace pargreedy {
namespace {

TEST(MmSequential, PathWithIdentityOrderTakesAlternateEdges) {
  // P6 edges (0-1),(1-2),(2-3),(3-4),(4-5) in identity order: greedy takes
  // edge 0, skips 1, takes 2, skips 3, takes 4.
  const CsrGraph g = CsrGraph::from_edges(path_graph(6));
  const MatchResult r = mm_sequential(g, EdgeOrder::identity(5));
  EXPECT_EQ(r.members(), (std::vector<EdgeId>{0, 2, 4}));
  EXPECT_EQ(r.size(), 3u);
}

TEST(MmSequential, PathMiddleEdgeFirst) {
  // Take edge 2 = (2-3) first; edges 1, 3 become blocked; then 0 and 4.
  const CsrGraph g = CsrGraph::from_edges(path_graph(6));
  const EdgeOrder order = EdgeOrder::from_permutation({2, 0, 1, 3, 4});
  const MatchResult r = mm_sequential(g, order);
  EXPECT_EQ(r.members(), (std::vector<EdgeId>{0, 2, 4}));
}

TEST(MmSequential, StarMatchesExactlyOneEdge) {
  const CsrGraph g = CsrGraph::from_edges(star_graph(9));
  for (uint64_t seed = 0; seed < 3; ++seed) {
    const MatchResult r =
        mm_sequential(g, EdgeOrder::random(g.num_edges(), seed));
    EXPECT_EQ(r.size(), 1u);
  }
}

TEST(MmSequential, FirstEdgeIsAlwaysMatched) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(200, 800, 1));
  const EdgeOrder order = EdgeOrder::random(g.num_edges(), 2);
  const MatchResult r = mm_sequential(g, order);
  EXPECT_TRUE(r.in_matching[order.nth(0)]);
}

TEST(MmSequential, CompleteGraphEvenGetsPerfectMatching) {
  // Greedy on K_{2k} always produces a perfect matching (any maximal
  // matching in a complete graph on an even vertex count is perfect).
  const CsrGraph g = CsrGraph::from_edges(complete_graph(12));
  for (uint64_t seed = 0; seed < 3; ++seed) {
    const MatchResult r =
        mm_sequential(g, EdgeOrder::random(g.num_edges(), seed));
    EXPECT_EQ(r.size(), 6u);
  }
}

TEST(MmSequential, PartnerMapIsConsistent) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(300, 1'200, 3));
  const MatchResult r =
      mm_sequential(g, EdgeOrder::random(g.num_edges(), 4));
  EXPECT_TRUE(partner_map_consistent(g, r));
  // Unmatched vertices point nowhere.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (r.matched_with[v] != kInvalidVertex) {
      EXPECT_EQ(r.matched_with[r.matched_with[v]], v);
    }
  }
}

TEST(MmSequential, ResultPassesDefinitionOnFamilies) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    for (const EdgeList& el :
         {random_graph_nm(400, 1'600, seed), rmat_graph(9, 1'500, seed),
          grid_graph(15, 15), barabasi_albert(250, 3, seed)}) {
      const CsrGraph g = CsrGraph::from_edges(el);
      const EdgeOrder order = EdgeOrder::random(g.num_edges(), seed + 9);
      const MatchResult r = mm_sequential(g, order);
      EXPECT_TRUE(is_matching(g, r.in_matching));
      EXPECT_TRUE(is_maximal_matching_set(g, r.in_matching));
      EXPECT_TRUE(is_lex_first_matching(g, order, r.in_matching));
      EXPECT_TRUE(partner_map_consistent(g, r));
    }
  }
}

TEST(MmSequential, GreedyInvariantHoldsEdgeByEdge) {
  // Defining property: e is matched iff no earlier adjacent edge is matched.
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(200, 800, 5));
  const EdgeOrder order = EdgeOrder::random(g.num_edges(), 6);
  const MatchResult r = mm_sequential(g, order);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    bool earlier_matched = false;
    const Edge ed = g.edge(e);
    for (const VertexId endpoint : {ed.u, ed.v}) {
      for (EdgeId f : g.incident_edges(endpoint)) {
        if (f == e) continue;
        earlier_matched =
            earlier_matched || (order.earlier(f, e) && r.in_matching[f]);
      }
    }
    EXPECT_EQ(r.in_matching[e] != 0, !earlier_matched) << "e=" << e;
  }
}

TEST(MmSequential, EdgeCases) {
  const CsrGraph empty = CsrGraph::from_edges(EdgeList(0));
  EXPECT_EQ(mm_sequential(empty, EdgeOrder::identity(0)).size(), 0u);

  const CsrGraph edgeless = CsrGraph::from_edges(EdgeList(5));
  const MatchResult r = mm_sequential(edgeless, EdgeOrder::identity(0));
  EXPECT_EQ(r.size(), 0u);
  for (VertexId v = 0; v < 5; ++v)
    EXPECT_EQ(r.matched_with[v], kInvalidVertex);

  EdgeList one(2);
  one.add(0, 1);
  const CsrGraph pair = CsrGraph::from_edges(one);
  const MatchResult rp = mm_sequential(pair, EdgeOrder::identity(1));
  EXPECT_EQ(rp.size(), 1u);
  EXPECT_EQ(rp.matched_with[0], 1u);
}

TEST(MmSequential, RejectsMismatchedOrderSize) {
  const CsrGraph g = CsrGraph::from_edges(path_graph(5));  // 4 edges
  EXPECT_THROW(mm_sequential(g, EdgeOrder::identity(3)), CheckFailure);
}

TEST(MmSequential, MembersAndSizeAgreeWithFlags) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(150, 600, 7));
  const MatchResult r =
      mm_sequential(g, EdgeOrder::random(g.num_edges(), 8));
  const std::vector<EdgeId> members = r.members();
  EXPECT_EQ(members.size(), r.size());
  std::vector<uint8_t> rebuilt(g.num_edges(), 0);
  for (EdgeId e : members) rebuilt[e] = 1;
  EXPECT_EQ(rebuilt, r.in_matching);
}

}  // namespace
}  // namespace pargreedy
