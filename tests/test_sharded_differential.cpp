// Differential fuzzing of the sharded engines (the PR's acceptance
// bar): across three small generator families, shard counts
// {1, 2, 4, 8}, both partitioner strategies, both engines, and both
// priority regimes (random_hash and weight_hash_tiebreak), every round
// drives the SAME user batch through a single-engine Transaction and a
// ShardedEngine and checks
//
//   what-if equivalence   sharded.what_if(B) returns the solution a
//                         speculative single-engine apply produces, and
//                         leaves the sharded committed state, version
//                         clock, and live solution untouched, and
//   commit equivalence    sharded.apply_batch(B) lands on the
//                         single-engine committed solution bit-exactly
//                         (composed reads, live reads, and the
//                         checksummed ShardedReadView all agree), and
//   history equivalence   every version the single engine's VersionRing
//                         still retains is reproduced bit-exactly by
//                         the sharded composed read at that version,
//                         with the lockstep clock unified throughout.
//
// Graphs stay small (n <= 90) because the matrix is wide: 30 seeds x 4
// shard counts x 2 policies x 2 engines, each with mixed aborted and
// committed batches. PARGREEDY_STRESS_ITERS scales rounds per instance
// (the concurrent-stress CI lane raises it).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "core/priority/priority_source.hpp"
#include "dynamic/dynamic_matching.hpp"
#include "dynamic/dynamic_mis.hpp"
#include "dynamic/update_batch.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "parallel/arch.hpp"
#include "random/hash.hpp"
#include "shard/partitioner.hpp"
#include "shard/sharded_engine.hpp"
#include "support/env.hpp"
#include "txn/transaction.hpp"

namespace pargreedy {
namespace {

constexpr uint64_t kWeightLevels = 6;  // coarse: force equal-weight ties

uint64_t rounds_per_instance() {
  return std::max<uint64_t>(
      4, static_cast<uint64_t>(env_int64("PARGREEDY_STRESS_ITERS", 40)) / 5);
}

class ShardedDifferential : public ::testing::TestWithParam<uint64_t> {
 public:
  uint64_t seed() const { return GetParam(); }

  /// Small rotating families — the matrix is wide, the graphs are not.
  CsrGraph make_graph() const {
    CsrGraph g;
    switch (seed() % 3) {
      case 0:
        g = CsrGraph::from_edges(random_graph_nm(
            40 + 10 * (seed() % 5), 150 + 30 * (seed() % 4), seed()));
        break;
      case 1:
        g = CsrGraph::from_edges(rmat_graph(/*scale=*/6, /*m=*/200, seed()));
        break;
      default:
        g = CsrGraph::from_edges(grid_graph(8 + seed() % 3, 9));
        break;
    }
    g.set_vertex_weights(
        quantized_weights(g.num_vertices(), seed() + 50, kWeightLevels));
    g.set_edge_weights(
        quantized_weights(g.num_edges(), seed() + 51, kWeightLevels));
    return g;
  }

  /// Worker widths {1, 2, 4}, decorrelated from the generator family.
  int workers() const { return 1 << (seed() / 3 % 3); }

  UpdateBatch make_batch(uint64_t n, std::span<const Edge> live,
                         uint64_t round, uint64_t salt2) const {
    const uint64_t salt = hash64(seed(), 20'000 + 101 * round + salt2);
    const uint64_t scale = 1 + salt % 10;
    return UpdateBatch::random_weighted(
        n, live, /*inserts=*/scale, /*deletes=*/scale / 2 + 1,
        /*reweights=*/scale / 3 + 1, /*toggles=*/salt % 4, kWeightLevels,
        salt);
  }
};

/// One (graph, source, shards) instance: a single-engine Transaction and
/// a ShardedEngine fed identical batches, state-compared every round.
template <typename Traits>
void run_instance(const ShardedDifferential& fix, const CsrGraph& g,
                  PrioritySource src, uint32_t shards) {
  using Engine = typename Traits::Engine;
  const uint64_t n = g.num_vertices();

  Engine single(EngineOptions::with_source(g, src));
  Transaction<Traits> txn(single);

  // Partitioner strategy decorrelated from everything else.
  std::unique_ptr<Partitioner> part;
  if ((fix.seed() + shards) % 2 == 0)
    part = std::make_unique<RangePartitioner>(n, shards);
  else
    part = std::make_unique<HashPartitioner>(shards, fix.seed() + 7);
  ShardedEngine<Traits> sharded(g, *part, src);

  // version -> committed single-engine solution, as deep as the ring
  // retains (kDefaultVersionRetention on both sides).
  std::deque<std::vector<typename Traits::Value>> history{
      txn.solution_at(0)};

  ASSERT_EQ(txn.committed_solution(), sharded.committed_solution())
      << "construction diverged (seed " << fix.seed() << ", shards "
      << shards << ")";

  const uint64_t rounds = rounds_per_instance();
  for (uint64_t round = 0; round < rounds; ++round) {
    const auto live = single.graph().live_edge_list();

    // Speculative phase: what_if on the sharded engine vs a speculative
    // apply+abort on the single engine — same solution, no residue.
    {
      const UpdateBatch spec =
          fix.make_batch(n, live.edges(), round, /*salt2=*/1);
      std::vector<typename Traits::Value> expect;
      {
        support::RoleScope writer(txn.writer_role_);
        txn.begin();
        txn.apply(spec);
        expect = single.solution();
        txn.abort();
      }
      typename ShardedEngine<Traits>::WhatIfResult what;
      {
        support::RoleScope writer(sharded.writer_role_);
        what = sharded.what_if(spec);
      }
      ASSERT_EQ(what.solution, expect)
          << "what_if diverged at round " << round << " (seed "
          << fix.seed() << ", shards " << shards << ")";
      ASSERT_EQ(sharded.committed_solution(), history.back())
          << "what_if left committed residue at round " << round
          << " (seed " << fix.seed() << ", shards " << shards << ")";
      ASSERT_EQ(sharded.version().value(), txn.version());
    }

    // Committed phase: identical batch through both engines.
    const UpdateBatch batch =
        fix.make_batch(n, live.edges(), round, /*salt2=*/2);
    {
      support::RoleScope writer(txn.writer_role_);
      txn.begin();
      txn.apply(batch);
      txn.commit();
    }
    {
      support::RoleScope writer(sharded.writer_role_);
      sharded.apply_batch(batch);
    }
    ASSERT_TRUE(sharded.version().unified());
    ASSERT_EQ(sharded.version().value(), txn.version());
    ASSERT_EQ(sharded.committed_solution(), txn.committed_solution())
        << "commit diverged at round " << round << " (seed " << fix.seed()
        << ", shards " << shards << ")";
    ASSERT_EQ(sharded.solution(), single.solution())
        << "live solution diverged at round " << round << " (seed "
        << fix.seed() << ", shards " << shards << ")";

    history.push_back(txn.committed_solution());
    if (history.size() > 4) history.pop_front();

    // History equivalence across the retained window, through the
    // composed checksummed view.
    for (std::size_t back = 0; back < history.size(); ++back) {
      const uint64_t v = txn.version() - (history.size() - 1 - back);
      const ShardedReadView<typename Traits::Value> view = sharded.read(v);
      ASSERT_TRUE(view.verify_checksums());
      ASSERT_EQ(view.version(), v);
      ASSERT_EQ(view.to_vector(), txn.solution_at(v))
          << "versioned read diverged at round " << round << ", version "
          << v << " (seed " << fix.seed() << ", shards " << shards << ")";
      ASSERT_EQ(view.to_vector(), history[back]);
    }
  }
}

template <typename Traits>
void run_matrix(const ShardedDifferential& fix) {
  ScopedNumWorkers guard(fix.workers());
  const CsrGraph g = fix.make_graph();
  for (const uint32_t shards : {1u, 2u, 4u, 8u}) {
    run_instance<Traits>(fix, g, PrioritySource::random_hash(fix.seed() + 60),
                         shards);
    run_instance<Traits>(
        fix, g, PrioritySource::weight_hash_tiebreak(fix.seed() + 61),
        shards);
  }
}

TEST_P(ShardedDifferential, MisMatchesSingleEngineAcrossShardCounts) {
  run_matrix<MisTxnTraits>(*this);
}

TEST_P(ShardedDifferential, MatchingMatchesSingleEngineAcrossShardCounts) {
  run_matrix<MatchingTxnTraits>(*this);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedDifferential,
                         ::testing::Range<uint64_t>(0, 30));

}  // namespace
}  // namespace pargreedy
