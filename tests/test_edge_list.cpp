// Unit tests for the EdgeList representation and edge normalization
// (src/graph/edge_list.*): the path every generator output takes before it
// becomes a CsrGraph.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "graph/edge_list.hpp"
#include "parallel/arch.hpp"
#include "random/hash.hpp"
#include "support/check.hpp"

namespace pargreedy {
namespace {

TEST(Edge, CanonicalOrdersEndpoints) {
  EXPECT_EQ((Edge{3, 1}.canonical()), (Edge{1, 3}));
  EXPECT_EQ((Edge{1, 3}.canonical()), (Edge{1, 3}));
  EXPECT_EQ((Edge{2, 2}.canonical()), (Edge{2, 2}));
}

TEST(Edge, LoopDetection) {
  EXPECT_TRUE((Edge{4, 4}.is_loop()));
  EXPECT_FALSE((Edge{4, 5}.is_loop()));
}

TEST(Edge, OtherEndpoint) {
  const Edge e{2, 9};
  EXPECT_EQ(e.other(2), 9u);
  EXPECT_EQ(e.other(9), 2u);
}

TEST(Edge, LexicographicOrdering) {
  EXPECT_LT((Edge{0, 5}), (Edge{1, 2}));
  EXPECT_LT((Edge{1, 2}), (Edge{1, 3}));
  EXPECT_FALSE((Edge{1, 3}) < (Edge{1, 3}));
}

TEST(EdgeList, AddAndQuery) {
  EdgeList el(10);
  EXPECT_EQ(el.num_vertices(), 10u);
  EXPECT_EQ(el.num_edges(), 0u);
  el.add(0, 1);
  el.add(5, 3);
  EXPECT_EQ(el.num_edges(), 2u);
  EXPECT_EQ(el.edges()[0], (Edge{0, 1}));
  EXPECT_EQ(el.edges()[1], (Edge{5, 3}));  // add() does not canonicalize
}

TEST(EdgeList, EndpointsInRange) {
  EdgeList good(4);
  good.add(0, 3);
  EXPECT_TRUE(good.endpoints_in_range());
  EdgeList bad(4);
  bad.mutable_edges().push_back(Edge{0, 4});
  EXPECT_FALSE(bad.endpoints_in_range());
}

TEST(Normalize, DropsSelfLoops) {
  EdgeList el(5);
  el.add(1, 1);
  el.add(0, 2);
  el.add(3, 3);
  const EdgeList out = normalize_edges(el);
  ASSERT_EQ(out.num_edges(), 1u);
  EXPECT_EQ(out.edges()[0], (Edge{0, 2}));
}

TEST(Normalize, DeduplicatesBothOrientations) {
  EdgeList el(5);
  el.add(1, 2);
  el.add(2, 1);  // same undirected edge, flipped
  el.add(1, 2);  // exact duplicate
  const EdgeList out = normalize_edges(el);
  ASSERT_EQ(out.num_edges(), 1u);
  EXPECT_EQ(out.edges()[0], (Edge{1, 2}));
}

TEST(Normalize, CanonicalAndSortedOutput) {
  EdgeList el(6);
  el.add(5, 0);
  el.add(3, 1);
  el.add(2, 4);
  el.add(1, 0);
  const EdgeList out = normalize_edges(el);
  ASSERT_EQ(out.num_edges(), 4u);
  for (const Edge& e : out.edges()) EXPECT_LT(e.u, e.v);
  EXPECT_TRUE(std::is_sorted(out.edges().begin(), out.edges().end()));
}

TEST(Normalize, PreservesVertexCount) {
  EdgeList el(100);
  el.add(0, 1);
  EXPECT_EQ(normalize_edges(el).num_vertices(), 100u);
}

TEST(Normalize, EmptyInput) {
  const EdgeList out = normalize_edges(EdgeList(7));
  EXPECT_EQ(out.num_vertices(), 7u);
  EXPECT_EQ(out.num_edges(), 0u);
}

TEST(Normalize, IsIdempotent) {
  EdgeList el(50);
  for (uint32_t i = 0; i < 200; ++i) {
    el.add(static_cast<VertexId>(hash64(1, 2 * i) % 50),
           static_cast<VertexId>(hash64(1, 2 * i + 1) % 50));
  }
  const EdgeList once = normalize_edges(el);
  const EdgeList twice = normalize_edges(once);
  ASSERT_EQ(once.num_edges(), twice.num_edges());
  for (std::size_t i = 0; i < once.num_edges(); ++i)
    EXPECT_EQ(once.edges()[i], twice.edges()[i]);
}

TEST(Normalize, MatchesSetSemantics) {
  // Reference semantics: the set of canonical non-loop edges.
  ScopedNumWorkers guard(4);
  EdgeList el(1'000);
  for (uint32_t i = 0; i < 50'000; ++i) {
    el.add(static_cast<VertexId>(hash64(5, 2 * i) % 1'000),
           static_cast<VertexId>(hash64(5, 2 * i + 1) % 1'000));
  }
  std::set<std::pair<VertexId, VertexId>> expect;
  for (const Edge& e : el.edges()) {
    if (e.is_loop()) continue;
    const Edge c = e.canonical();
    expect.insert({c.u, c.v});
  }
  const EdgeList out = normalize_edges(el);
  ASSERT_EQ(out.num_edges(), expect.size());
  std::size_t i = 0;
  for (const auto& [u, v] : expect) {
    EXPECT_EQ(out.edges()[i], (Edge{u, v}));
    ++i;
  }
}

TEST(Normalize, SerialAndParallelAgree) {
  EdgeList el(500);
  for (uint32_t i = 0; i < 20'000; ++i) {
    el.add(static_cast<VertexId>(hash64(9, 2 * i) % 500),
           static_cast<VertexId>(hash64(9, 2 * i + 1) % 500));
  }
  EdgeList serial;
  {
    ScopedNumWorkers guard(1);
    serial = normalize_edges(el);
  }
  EdgeList parallel;
  {
    ScopedNumWorkers guard(4);
    parallel = normalize_edges(el);
  }
  ASSERT_EQ(serial.num_edges(), parallel.num_edges());
  for (std::size_t i = 0; i < serial.num_edges(); ++i)
    EXPECT_EQ(serial.edges()[i], parallel.edges()[i]);
}

TEST(SortEdges, SortsLexicographically) {
  ScopedNumWorkers guard(4);
  std::vector<Edge> edges;
  for (uint32_t i = 0; i < 10'000; ++i) {
    edges.push_back(Edge{static_cast<VertexId>(hash64(2, 2 * i) % 300),
                         static_cast<VertexId>(hash64(2, 2 * i + 1) % 300)});
  }
  std::vector<Edge> expect = edges;
  std::sort(expect.begin(), expect.end());
  sort_edges(edges, 300);
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
  EXPECT_EQ(edges, expect);
}

TEST(SortEdges, EmptyAndSingle) {
  std::vector<Edge> empty;
  sort_edges(empty, 10);
  EXPECT_TRUE(empty.empty());
  std::vector<Edge> one{Edge{1, 2}};
  sort_edges(one, 10);
  EXPECT_EQ(one[0], (Edge{1, 2}));
}

}  // namespace
}  // namespace pargreedy
