// Unit tests for the greedy maximal-clique extension — the third "other
// greedy loop" (footnote 1 of the paper: the lexicographically-first
// maximal clique, equal to the lexicographically-first MIS of the
// complement graph). The cross-check against mis_sequential(complement)
// is the strongest oracle here.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/mis/mis.hpp"
#include "extensions/clique.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "graph/graph_ops.hpp"
#include "parallel/arch.hpp"
#include "support/check.hpp"

namespace pargreedy {
namespace {

TEST(CliqueSequential, CompleteGraphTakesEverything) {
  const CsrGraph g = CsrGraph::from_edges(complete_graph(12));
  const CliqueResult r =
      greedy_clique_sequential(g, VertexOrder::random(12, 1));
  EXPECT_EQ(r.size(), 12u);
  EXPECT_TRUE(is_maximal_clique(g, r.in_clique));
}

TEST(CliqueSequential, EdgelessGraphTakesFirstVertexOnly) {
  const CsrGraph g = CsrGraph::from_edges(EdgeList(9));
  const VertexOrder order =
      VertexOrder::from_permutation({4, 0, 1, 2, 3, 5, 6, 7, 8});
  const CliqueResult r = greedy_clique_sequential(g, order);
  EXPECT_EQ(r.members(), (std::vector<VertexId>{4}));
  EXPECT_TRUE(is_maximal_clique(g, r.in_clique));
}

TEST(CliqueSequential, TriangleInPathIsEdge) {
  // A path has no triangles: greedy clique = first vertex + first
  // compatible neighbor, i.e. one edge.
  const CsrGraph g = CsrGraph::from_edges(path_graph(10));
  const CliqueResult r = greedy_clique_sequential(g, VertexOrder::identity(10));
  EXPECT_EQ(r.members(), (std::vector<VertexId>{0, 1}));
}

TEST(CliqueSequential, PicksPlantedTriangle) {
  // Star + one extra edge 1-2: ordering 0,1,2,... accepts {0,1,2}.
  EdgeList el = star_graph(6);
  el.add(1, 2);
  const CsrGraph g = CsrGraph::from_edges(el);
  const CliqueResult r = greedy_clique_sequential(g, VertexOrder::identity(6));
  EXPECT_EQ(r.members(), (std::vector<VertexId>{0, 1, 2}));
  EXPECT_TRUE(is_maximal_clique(g, r.in_clique));
}

TEST(CliqueSequential, EqualsMisOfComplement) {
  // Cook's reduction, checked both ways at test scale.
  for (uint64_t seed = 0; seed < 4; ++seed) {
    const CsrGraph g = CsrGraph::from_edges(
        random_graph_nm(60, 900, seed));  // dense-ish: big cliques exist
    const CsrGraph comp = complement_graph(g);
    const VertexOrder order = VertexOrder::random(60, seed + 10);
    const CliqueResult clique = greedy_clique_sequential(g, order);
    const MisResult mis = mis_sequential(comp, order);
    EXPECT_EQ(clique.in_clique, mis.in_set) << "seed " << seed;
  }
}

TEST(CliqueSequential, GreedyInvariantVertexByVertex) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(80, 1'500, 3));
  const VertexOrder order = VertexOrder::random(80, 4);
  const CliqueResult r = greedy_clique_sequential(g, order);
  // v in clique iff adjacent to every clique member earlier than v.
  for (VertexId v = 0; v < 80; ++v) {
    uint64_t earlier_members = 0;
    uint64_t adjacent_earlier_members = 0;
    for (VertexId w = 0; w < 80; ++w) {
      if (w == v || !r.in_clique[w] || !order.earlier(w, v)) continue;
      ++earlier_members;
    }
    for (VertexId w : g.neighbors(v)) {
      if (r.in_clique[w] && order.earlier(w, v)) ++adjacent_earlier_members;
    }
    EXPECT_EQ(r.in_clique[v] != 0,
              earlier_members == adjacent_earlier_members)
        << "v=" << v;
  }
}

class CliqueFamilies : public ::testing::TestWithParam<int> {};

CsrGraph clique_graph(int which, uint64_t seed) {
  switch (which) {
    case 0: return CsrGraph::from_edges(random_graph_nm(150, 3'000, seed));
    case 1: return CsrGraph::from_edges(random_graph_nm(400, 2'000, seed));
    case 2: return CsrGraph::from_edges(rmat_graph(8, 2'000, seed));
    case 3: return CsrGraph::from_edges(complete_graph(30));
    case 4: return CsrGraph::from_edges(complete_bipartite(15, 20));
    case 5: return CsrGraph::from_edges(barabasi_albert(200, 6, seed));
    default: return CsrGraph::from_edges(grid_graph(12, 12));
  }
}

TEST_P(CliqueFamilies, SequentialIsAMaximalClique) {
  for (uint64_t seed = 0; seed < 2; ++seed) {
    const CsrGraph g = clique_graph(GetParam(), seed);
    const CliqueResult r = greedy_clique_sequential(
        g, VertexOrder::random(g.num_vertices(), seed + 5));
    EXPECT_TRUE(is_maximal_clique(g, r.in_clique));
    EXPECT_GE(r.size(), 1u);
  }
}

TEST_P(CliqueFamilies, PrefixEqualsSequentialAcrossWindows) {
  const CsrGraph g = clique_graph(GetParam(), 3);
  const uint64_t n = g.num_vertices();
  const VertexOrder order = VertexOrder::random(n, 7);
  const CliqueResult expect = greedy_clique_sequential(g, order);
  for (uint64_t window : {uint64_t{1}, uint64_t{9}, n / 4 + 1, n}) {
    const CliqueResult got = greedy_clique_prefix(g, order, window);
    EXPECT_EQ(got.in_clique, expect.in_clique) << "window=" << window;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, CliqueFamilies, ::testing::Range(0, 7));

TEST(CliquePrefix, DeterministicAcrossWorkerCounts) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(500, 10'000, 8));
  const VertexOrder order = VertexOrder::random(500, 9);
  CliqueResult base;
  {
    ScopedNumWorkers guard(1);
    base = greedy_clique_prefix(g, order, 64);
  }
  for (int workers : {2, 4}) {
    ScopedNumWorkers guard(workers);
    EXPECT_EQ(greedy_clique_prefix(g, order, 64).in_clique, base.in_clique)
        << "workers=" << workers;
  }
}

TEST(CliquePrefix, WindowOneIsSequentialRoundPerVertex) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(200, 2'000, 10));
  const VertexOrder order = VertexOrder::random(200, 11);
  const CliqueResult r = greedy_clique_prefix(g, order, 1);
  EXPECT_EQ(r.profile.rounds, 200u);
  EXPECT_EQ(r.in_clique, greedy_clique_sequential(g, order).in_clique);
}

TEST(CliquePrefix, RoundsShrinkWithWindow) {
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(1'000, 20'000, 12));
  const VertexOrder order = VertexOrder::random(1'000, 13);
  uint64_t last = UINT64_MAX;
  for (uint64_t window : {uint64_t{1}, uint64_t{32}, uint64_t{1'000}}) {
    const CliqueResult r = greedy_clique_prefix(g, order, window);
    EXPECT_LE(r.profile.rounds, last);
    last = r.profile.rounds;
  }
}

TEST(CliqueVerify, RejectsNonCliquesAndNonMaximal) {
  const CsrGraph g = CsrGraph::from_edges(complete_graph(4));
  EXPECT_TRUE(is_maximal_clique(g, std::vector<uint8_t>{1, 1, 1, 1}));
  EXPECT_FALSE(is_maximal_clique(g, std::vector<uint8_t>{1, 1, 1, 0}));
  EdgeList el(4);  // path 0-1-2-3: {0,1} is a maximal clique; {0,2} is not
  el.add(0, 1);
  el.add(1, 2);
  el.add(2, 3);
  const CsrGraph path = CsrGraph::from_edges(el);
  EXPECT_TRUE(is_maximal_clique(path, std::vector<uint8_t>{1, 1, 0, 0}));
  EXPECT_FALSE(is_maximal_clique(path, std::vector<uint8_t>{1, 0, 1, 0}));
  EXPECT_FALSE(is_maximal_clique(path, std::vector<uint8_t>{1, 0, 0, 0}));
}

TEST(CliqueEdgeCases, EmptyAndTiny) {
  const CsrGraph empty = CsrGraph::from_edges(EdgeList(0));
  EXPECT_EQ(
      greedy_clique_sequential(empty, VertexOrder::identity(0)).size(), 0u);
  EXPECT_EQ(greedy_clique_prefix(empty, VertexOrder::identity(0), 3).size(),
            0u);

  const CsrGraph one = CsrGraph::from_edges(EdgeList(1));
  EXPECT_EQ(greedy_clique_prefix(one, VertexOrder::identity(1), 1).size(),
            1u);
  EXPECT_THROW(
      greedy_clique_sequential(one, VertexOrder::identity(2)), CheckFailure);
}

TEST(CliquePrefix, DenseGraphFindsLargeClique) {
  // In a dense random graph the greedy clique is noticeably larger than an
  // edge; check growth and the complement cross-check at a larger size.
  const CsrGraph g = CsrGraph::from_edges(random_graph_nm(120, 5'000, 14));
  const VertexOrder order = VertexOrder::random(120, 15);
  const CliqueResult r = greedy_clique_prefix(g, order, 40);
  EXPECT_GE(r.size(), 4u);
  EXPECT_TRUE(is_maximal_clique(g, r.in_clique));
  const MisResult mis = mis_sequential(complement_graph(g), order);
  EXPECT_EQ(r.in_clique, mis.in_set);
}

}  // namespace
}  // namespace pargreedy
