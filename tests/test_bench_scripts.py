#!/usr/bin/env python3
"""Unit tests for the bench tooling: scripts/validate_bench_json.py and
scripts/compare_bench_json.py. Invoked through CTest (stdlib unittest, no
third-party dependencies) so the tooling that guards the CI bench lane is
itself regression-guarded.
"""
import importlib.util
import json
import sys
import tempfile
import unittest
from pathlib import Path

SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"


def load(name):
    spec = importlib.util.spec_from_file_location(name, SCRIPTS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


validate = load("validate_bench_json")
compare = load("compare_bench_json")


def table(name, headers, rows):
    return {"name": name, "headers": headers, "rows": rows}


GOOD = [table("mis: random", ["batch_ops", "update_ms", "full/update"],
              [["2", "0.10", "100.0"], ["20", "0.50", "40.0"]])]


class TempDirTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.dir = Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def write(self, subdir, bench, doc):
        d = self.dir / subdir
        d.mkdir(parents=True, exist_ok=True)
        (d / f"BENCH_{bench}.json").write_text(json.dumps(doc))
        return d


class ValidateBenchJsonTest(TempDirTest):
    def run_main(self, *benches, subdir="a"):
        return validate.main(["validate", str(self.dir / subdir), *benches])

    def test_accepts_well_formed_capture(self):
        self.write("a", "demo", GOOD)
        self.assertEqual(self.run_main("demo"), 0)

    def test_missing_file_fails(self):
        (self.dir / "a").mkdir()
        self.assertEqual(self.run_main("demo"), 1)

    def test_malformed_json_fails(self):
        d = self.dir / "a"
        d.mkdir()
        (d / "BENCH_demo.json").write_text("[{]")
        self.assertEqual(self.run_main("demo"), 1)

    def test_empty_top_level_fails(self):
        self.write("a", "demo", [])
        self.assertEqual(self.run_main("demo"), 1)

    def test_row_arity_mismatch_fails(self):
        bad = [table("t", ["a", "b"], [["1", "2"], ["only-one"]])]
        self.write("a", "demo", bad)
        self.assertEqual(self.run_main("demo"), 1)

    def test_non_string_cells_fail(self):
        bad = [table("t", ["a"], [[1]])]
        self.write("a", "demo", bad)
        self.assertEqual(self.run_main("demo"), 1)

    def test_unexpected_keys_fail(self):
        bad = [dict(table("t", ["a"], [["1"]]), extra=1)]
        self.write("a", "demo", bad)
        self.assertEqual(self.run_main("demo"), 1)

    def test_one_bad_bench_fails_the_set(self):
        self.write("a", "good", GOOD)
        self.write("a", "bad", [])
        self.assertEqual(self.run_main("good", "bad"), 1)


class CompareBenchJsonTest(TempDirTest):
    def run_main(self, *extra):
        return compare.main(["compare", str(self.dir / "base"),
                             str(self.dir / "cur"), *extra])

    def test_identical_runs_pass(self):
        self.write("base", "demo", GOOD)
        self.write("cur", "demo", GOOD)
        self.assertEqual(self.run_main(), 0)

    def test_regression_in_worse_column_fails(self):
        self.write("base", "demo", GOOD)
        worse = [table("mis: random", GOOD[0]["headers"],
                       [["2", "0.50", "100.0"], ["20", "0.50", "40.0"]])]
        self.write("cur", "demo", worse)
        self.assertEqual(self.run_main(), 1)

    def test_improvement_in_worse_column_passes(self):
        self.write("base", "demo", GOOD)
        better = [table("mis: random", GOOD[0]["headers"],
                        [["2", "0.01", "100.0"], ["20", "0.05", "40.0"]])]
        self.write("cur", "demo", better)
        self.assertEqual(self.run_main(), 0)

    def test_drop_in_better_column_fails(self):
        self.write("base", "demo", GOOD)
        worse = [table("mis: random", GOOD[0]["headers"],
                       [["2", "0.10", "1.0"], ["20", "0.50", "40.0"]])]
        self.write("cur", "demo", worse)
        self.assertEqual(self.run_main(), 1)

    def test_threshold_masks_noise(self):
        self.write("base", "demo", GOOD)
        noisy = [table("mis: random", GOOD[0]["headers"],
                       [["2", "0.11", "95.0"], ["20", "0.54", "41.0"]])]
        self.write("cur", "demo", noisy)
        self.assertEqual(self.run_main("--threshold", "0.25"), 0)
        self.assertEqual(self.run_main("--threshold", "0.01"), 1)

    def test_new_bench_and_new_rows_are_informational(self):
        self.write("base", "demo", GOOD)
        extended = [table("mis: random", GOOD[0]["headers"],
                          GOOD[0]["rows"] + [["200", "2.0", "10.0"]]),
                    table("new series", ["a"], [["1"]])]
        self.write("cur", "demo", extended)
        self.write("cur", "brand_new_bench", GOOD)
        self.assertEqual(self.run_main(), 0)

    def test_missing_bench_in_current_is_informational(self):
        self.write("base", "demo", GOOD)
        self.write("base", "gone", GOOD)
        self.write("cur", "demo", GOOD)
        self.assertEqual(self.run_main(), 0)

    def test_header_change_skips_table(self):
        self.write("base", "demo", GOOD)
        renamed = [table("mis: random", ["batch_ops", "other_ms", "x"],
                         [["2", "9.99", "1"]])]
        self.write("cur", "demo", renamed)
        self.assertEqual(self.run_main(), 0)

    def test_benches_filter_restricts_comparison(self):
        self.write("base", "demo", GOOD)
        regressed = [table("mis: random", GOOD[0]["headers"],
                           [["2", "9.99", "100.0"]])]
        self.write("cur", "demo", regressed)
        self.write("base", "other", GOOD)
        self.write("cur", "other", GOOD)
        self.assertEqual(self.run_main("--benches", "other"), 0)
        self.assertEqual(self.run_main("--benches", "demo"), 1)

    def test_unknown_direction_columns_never_fail(self):
        headers = ["k", "mystery_metric"]
        self.write("base", "demo", [table("t", headers, [["1", "10"]])])
        self.write("cur", "demo", [table("t", headers, [["1", "99"]])])
        self.assertEqual(self.run_main(), 0)

    def test_missing_directory_errors(self):
        self.write("base", "demo", GOOD)
        self.assertEqual(self.run_main(), 2)

    def test_malformed_current_capture_is_io_error(self):
        # The PR's own artifact being broken is load-bearing: hard error.
        self.write("base", "demo", GOOD)
        d = self.dir / "cur"
        d.mkdir()
        (d / "BENCH_demo.json").write_text("[{]")
        with self.assertRaises(SystemExit) as ctx:
            self.run_main()
        self.assertEqual(ctx.exception.code, 2)

    def test_unjoinable_current_capture_is_io_error(self):
        self.write("base", "demo", GOOD)
        self.write("cur", "demo", {"not": "a list of tables"})
        with self.assertRaises(SystemExit) as ctx:
            self.run_main()
        self.assertEqual(ctx.exception.code, 2)

    def test_malformed_baseline_demotes_bench_to_new(self):
        # A truncated/garbage baseline artifact must not block the PR:
        # the bench joins as absent-from-baseline, current reports as
        # new, informational — even when the current rows would have
        # regressed against what the baseline used to say.
        d = self.dir / "base"
        d.mkdir()
        (d / "BENCH_demo.json").write_text("[{]")
        regressed = [table("mis: random", GOOD[0]["headers"],
                           [["2", "9.99", "1.0"]])]
        self.write("cur", "demo", regressed)
        self.assertEqual(self.run_main(), 0)

    def test_unjoinable_baseline_demotes_bench_to_new(self):
        # Valid JSON, wrong shape (not a list of named tables) — same
        # lenient treatment as malformed JSON, and it must not traceback.
        self.write("base", "demo", {"tables": "nope"})
        self.write("base", "shaped", [["rows", "without", "dicts"]])
        self.write("cur", "demo", GOOD)
        self.write("cur", "shaped", GOOD)
        self.assertEqual(self.run_main(), 0)

    def test_lenient_baseline_only_drops_the_broken_bench(self):
        # The broken baseline capture is scoped: other benches still
        # join and still gate.
        d = self.dir / "base"
        self.write("base", "demo", GOOD)
        (d / "BENCH_broken.json").write_text("[{]")
        regressed = [table("mis: random", GOOD[0]["headers"],
                           [["2", "9.99", "100.0"]])]
        self.write("cur", "demo", regressed)
        self.write("cur", "broken", GOOD)
        self.assertEqual(self.run_main(), 1)

    def test_sharded_batch_lands_without_baseline(self):
        # The exact scenario the lenient baseline exists for: the PR
        # introduces bench/sharded_batch, so BENCH_sharded_batch.json is
        # in the current artifacts but main's baseline has never
        # produced one. The gate must pass without an exemption.
        self.write("base", "dynamic_batch", GOOD)
        self.write("cur", "dynamic_batch", GOOD)
        sharded = [table("mis: random", ["shards", "avg_update_ms",
                                         "exchange_rounds",
                                         "boundary_seeds",
                                         "conflict_retries"],
                         [["1", "0.22", "5", "0", "0"],
                          ["8", "0.91", "14", "123", "2"]])]
        self.write("cur", "sharded_batch", sharded)
        self.assertEqual(self.run_main(), 0)
        # And once main has a baseline, the counters gate as usual.
        self.write("base", "sharded_batch", sharded)
        self.assertEqual(self.run_main(), 0)
        worse = [table("mis: random", sharded[0]["headers"],
                       [["1", "0.22", "5", "0", "0"],
                        ["8", "0.91", "44", "999", "2"]])]
        self.write("cur", "sharded_batch", worse)
        self.assertEqual(self.run_main(), 1)

    def test_unjoinable_rows_are_skipped_not_fatal(self):
        # A baseline table whose rows list contains junk joins on the
        # well-formed rows and ignores the rest.
        messy = [dict(table("mis: random", GOOD[0]["headers"],
                            [GOOD[0]["rows"][0], [], "junk",
                             GOOD[0]["rows"][1]]))]
        self.write("base", "demo", messy)
        self.write("cur", "demo", GOOD)
        self.assertEqual(self.run_main(), 0)


if __name__ == "__main__":
    unittest.main(verbosity=2)
