// Regression tests for the worker-count contract of parallel/arch.hpp.
//
// The serial (non-OpenMP) backend once discarded set_num_workers requests,
// which made ScopedNumWorkers a no-op and broke every block decomposition
// that keys off num_workers(). These tests pin the get/set/restore contract
// explicitly at worker counts {1, 2, 3, 4} so both backends are held to the
// identical behavior.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "parallel/arch.hpp"
#include "parallel/parallel_for.hpp"

namespace pargreedy {
namespace {

constexpr int kWidths[] = {1, 2, 3, 4};

TEST(ArchWorkerFallback, SetNumWorkersIsObservedAtEveryWidth) {
  const int before = num_workers();
  for (int w : kWidths) {
    set_num_workers(w);
    EXPECT_EQ(num_workers(), w) << "width=" << w;
  }
  set_num_workers(before);
  EXPECT_EQ(num_workers(), before);
}

TEST(ArchWorkerFallback, ScopedGuardRestoresAtEveryWidth) {
  const int before = num_workers();
  for (int w : kWidths) {
    {
      ScopedNumWorkers guard(w);
      EXPECT_EQ(num_workers(), w) << "width=" << w;
    }
    EXPECT_EQ(num_workers(), before) << "width=" << w;
  }
}

TEST(ArchWorkerFallback, ScopedGuardsNestAcrossAllWidthPairs) {
  for (int outer : kWidths) {
    ScopedNumWorkers outer_guard(outer);
    for (int inner : kWidths) {
      {
        ScopedNumWorkers inner_guard(inner);
        EXPECT_EQ(num_workers(), inner)
            << "outer=" << outer << " inner=" << inner;
      }
      EXPECT_EQ(num_workers(), outer)
          << "outer=" << outer << " inner=" << inner;
    }
  }
}

TEST(ArchWorkerFallback, BlockCountTracksWidthWhenItemsAbound) {
  for (int w : kWidths) {
    ScopedNumWorkers guard(w);
    EXPECT_EQ(parallel_block_count(1000), w) << "width=" << w;
  }
}

TEST(ArchWorkerFallback, BlockCountCapsAtItemCountBelowWidth) {
  for (int w : kWidths) {
    ScopedNumWorkers guard(w);
    const int64_t n = 2;
    EXPECT_EQ(parallel_block_count(n), n < w ? n : w) << "width=" << w;
  }
}

TEST(ArchWorkerFallback, BlocksCoverRangeExactlyOnceAtEveryWidth) {
  for (int w : kWidths) {
    ScopedNumWorkers guard(w);
    const int64_t n = 1'009;  // prime: exercises the ragged final block
    std::vector<std::atomic<int>> hits(n);
    parallel_blocks(n, [&](int64_t, int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i)
        hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (int64_t i = 0; i < n; ++i)
      EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "width=" << w << " i=" << i;
  }
}

TEST(ArchWorkerFallback, NonPositiveRequestsClampToOne) {
  const int before = num_workers();
  set_num_workers(0);
  EXPECT_EQ(num_workers(), 1);
  set_num_workers(-3);
  EXPECT_EQ(num_workers(), 1);
  set_num_workers(before);
}

}  // namespace
}  // namespace pargreedy
