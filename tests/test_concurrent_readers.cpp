// Reader/writer stress suite for the lock-free published-read path
// (txn/published_state.hpp + txn/epoch.hpp): N reader threads hammer
// committed_solution() / solution_at() / the zero-copy guarded window
// while the writer thread commits and aborts transactions as fast as it
// can. Every observation is validated:
//
//   * torn reads     — each observed PublishedVersion's checksum must
//                      recompute exactly (writer computed it before the
//                      atomic swap; immutability means any mismatch is a
//                      torn or reclaimed-under-foot read);
//   * staleness      — observed windows are consecutive version ranges
//                      no wider than retention, and the latest version a
//                      thread observes is monotonically non-decreasing
//                      (a reader can be stale, never reordered);
//   * no speculation — version ids only advance at commit(), so aborted
//                      speculative state can never satisfy the
//                      checksum+id validation against the final writer-
//                      side history (checked bit-exactly post-quiesce).
//
// Readers record failures in atomics and the main thread asserts after
// join (gtest assertions are not thread-safe). Runs at engine worker
// widths {1, 2, 4}; the TSan CI job compiles this suite too, which is
// the memory-model half of the proof. PARGREEDY_STRESS_ITERS scales the
// writer's commit count up for the dedicated stress CI lane.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/priority/priority_source.hpp"
#include "dynamic/dynamic_matching.hpp"
#include "dynamic/dynamic_mis.hpp"
#include "dynamic/update_batch.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "parallel/arch.hpp"
#include "support/check.hpp"
#include "support/env.hpp"
#include "support/thread_annotations.hpp"
#include "txn/epoch.hpp"
#include "txn/published_state.hpp"
#include "txn/transaction.hpp"

namespace pargreedy {
namespace {

CsrGraph weighted_graph(uint64_t n, uint64_t m, uint64_t seed) {
  CsrGraph g = CsrGraph::from_edges(random_graph_nm(n, m, seed));
  g.set_vertex_weights(quantized_weights(n, seed + 1, 16));
  g.set_edge_weights(quantized_weights(g.num_edges(), seed + 2, 16));
  return g;
}

UpdateBatch mixed_batch(const OverlayGraph& graph, uint64_t scale,
                        uint64_t seed) {
  return UpdateBatch::random_weighted(
      graph.num_vertices(), graph.live_edge_list().edges(),
      /*inserts=*/scale, /*deletes=*/scale / 2 + 1, /*reweights=*/scale,
      /*toggles=*/seed % 3, /*levels=*/16, seed);
}

/// Writer commit count: default keeps the tier-1 run fast; the
/// concurrent-stress CI lane raises PARGREEDY_STRESS_ITERS.
uint64_t stress_commits() {
  return static_cast<uint64_t>(env_int64("PARGREEDY_STRESS_ITERS", 40));
}

/// Failure tallies a reader thread fills in; asserted post-join.
struct ReaderVerdict {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> checksum_failures{0};
  std::atomic<uint64_t> window_shape_failures{0};
  std::atomic<uint64_t> monotonicity_failures{0};
  std::atomic<uint64_t> unexpected_throws{0};
};

/// One reader loop: validates every observation (see file comment).
/// `retention` is ring capacity + 1 (the maximum window width).
template <typename Txn>
void reader_loop(const Txn& txn, std::size_t retention,
                 const std::atomic<bool>& stop, ReaderVerdict& verdict) {
  const auto& state = txn.published_state();
  uint64_t last_latest = 0;
  while (!stop.load(std::memory_order_acquire)) {
    try {
      // Zero-copy pass under an explicit guard: the whole window, every
      // version checksummed, ids consecutive, width bounded.
      {
        ReadGuard guard(state.epochs_);
        const auto& window = state.window(guard);
        if (window.versions.empty() ||
            window.versions.size() > retention) {
          verdict.window_shape_failures.fetch_add(1);
        }
        uint64_t expect_id = window.versions.front()->version;
        for (const auto& ver : window.versions) {
          if (!ver->verify_checksum())
            verdict.checksum_failures.fetch_add(1);
          if (ver->version != expect_id++)
            verdict.window_shape_failures.fetch_add(1);
        }
        const uint64_t latest = window.versions.back()->version;
        if (latest < last_latest) verdict.monotonicity_failures.fetch_add(1);
        last_latest = latest;
      }
      // Copying pass through the Transaction read API (pins
      // internally): the copies must checksum against the ids the same
      // window pass pinned — re-pin and compare via the published
      // metadata.
      {
        ReadGuard guard(state.epochs_);
        const auto& latest = state.latest(guard);
        using Value = typename Txn::Value;
        if (PublishedVersion<Value>::compute_checksum(
                latest.version, latest.solution) != latest.checksum)
          verdict.checksum_failures.fetch_add(1);
      }
      // The convenience copies (what a serving thread would call).
      const auto committed = txn.committed_solution();
      const uint64_t v = txn.version();
      if (committed.empty()) verdict.window_shape_failures.fetch_add(1);
      // solution_at on a version that was in-window when sampled; the
      // writer may evict it before the call lands — that throw is part
      // of the contract, not a failure.
      try {
        (void)txn.solution_at(v);
      } catch (const CheckFailure&) {
      }
      verdict.reads.fetch_add(1);
    } catch (const CheckFailure&) {
      verdict.unexpected_throws.fetch_add(1);
    }
  }
}

/// The full stress run for one engine/transaction pair.
template <typename Engine, typename Txn, typename MakeEngine>
void run_stress(MakeEngine make_engine, std::size_t num_readers,
                int workers, uint64_t seed) {
  ScopedNumWorkers scoped_workers(workers);
  Engine engine = make_engine(seed);
  constexpr std::size_t kRingCapacity = 4;
  Txn txn(engine, kRingCapacity);

  std::atomic<bool> stop{false};
  std::vector<ReaderVerdict> verdicts(num_readers);
  std::vector<std::thread> readers;
  readers.reserve(num_readers);
  for (std::size_t r = 0; r < num_readers; ++r)
    readers.emplace_back([&txn, &stop, &verdicts, r] {
      reader_loop(txn, kRingCapacity + 1, stop, verdicts[r]);
    });

  // The writer: commit/abort as fast as possible while readers hammer.
  std::vector<std::vector<typename Txn::Value>> history;
  history.push_back(txn.committed_solution());  // version 0
  const uint64_t commits = stress_commits();
  for (uint64_t i = 0; i < commits; ++i) {
    txn.begin();
    txn.apply(mixed_batch(engine.graph(), 8, seed + 100 + i));
    if (i % 3 == 2) {
      // Aborted speculation — must never become visible to a reader.
      txn.abort();
    } else {
      txn.commit();
      history.push_back(engine.solution());
    }
  }
  // The writer can outrun thread startup (40 commits finish in ~ms);
  // hold the readers open until each has completed at least one full
  // validated pass so the post-join assertions are about real reads.
  // Readers never block, so this terminates.
  for (const auto& verdict : verdicts)
    while (verdict.reads.load() == 0) std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // Post-join asserts (gtest is not thread-safe inside the loops).
  uint64_t total_reads = 0;
  for (std::size_t r = 0; r < num_readers; ++r) {
    EXPECT_EQ(verdicts[r].checksum_failures.load(), 0u) << "reader " << r;
    EXPECT_EQ(verdicts[r].window_shape_failures.load(), 0u)
        << "reader " << r;
    EXPECT_EQ(verdicts[r].monotonicity_failures.load(), 0u)
        << "reader " << r;
    EXPECT_EQ(verdicts[r].unexpected_throws.load(), 0u) << "reader " << r;
    total_reads += verdicts[r].reads.load();
  }
  EXPECT_GT(total_reads, 0u);

  // Post-quiesce property check: the retained published window equals
  // the writer's own history and the ring's reconstruction, bit-exactly
  // — so everything the checksums vouched for above was real committed
  // state, never aborted speculation.
  ASSERT_EQ(txn.version() + 1, history.size());
  for (uint64_t v = txn.oldest_version(); v <= txn.version(); ++v) {
    EXPECT_EQ(txn.solution_at(v), history[v]) << "version " << v;
    std::vector<typename Txn::Value> oracle = txn.committed_solution();
    {
      support::RoleScope writer(txn.writer_role_);
      txn.ring().reconstruct(oracle, v);
    }
    EXPECT_EQ(txn.solution_at(v), oracle) << "version " << v;
  }
}

DynamicMis make_mis(uint64_t seed) {
  return DynamicMis(EngineOptions::with_source(
      weighted_graph(200, 800, seed),
      PrioritySource::weight_hash_tiebreak(seed + 7)));
}

DynamicMatching make_matching(uint64_t seed) {
  return DynamicMatching(EngineOptions::with_source(
      weighted_graph(200, 800, seed),
      PrioritySource::weight_hash_tiebreak(seed + 7)));
}

class ConcurrentReaders : public ::testing::TestWithParam<int> {};

TEST_P(ConcurrentReaders, MisFourReadersOneWriter) {
  run_stress<DynamicMis, MisTransaction>(make_mis, /*num_readers=*/4,
                                         GetParam(), /*seed=*/31);
}

TEST_P(ConcurrentReaders, MatchingFourReadersOneWriter) {
  run_stress<DynamicMatching, MatchingTransaction>(
      make_matching, /*num_readers=*/4, GetParam(), /*seed=*/32);
}

INSTANTIATE_TEST_SUITE_P(WorkerWidths, ConcurrentReaders,
                         ::testing::Values(1, 2, 4));

// The acceptance-criterion configuration: 8 readers + 1 writer (the
// TSan CI job compiles and runs this too — that run is the
// happens-before proof; this assertion-based run is the value proof).
TEST(ConcurrentReadersWide, MisEightReadersOneWriter) {
  run_stress<DynamicMis, MisTransaction>(make_mis, /*num_readers=*/8,
                                         /*workers=*/2, /*seed=*/33);
}

TEST(ConcurrentReadersWide, MatchingEightReadersOneWriter) {
  run_stress<DynamicMatching, MatchingTransaction>(
      make_matching, /*num_readers=*/8, /*workers=*/2, /*seed=*/34);
}

}  // namespace
}  // namespace pargreedy
