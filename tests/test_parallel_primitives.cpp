// Unit tests for the parallel primitives substrate (src/parallel/):
// parallel_for, parallel_blocks, reductions, scans, and pack. These are the
// work/depth building blocks every algorithm in the library rests on, so
// they are tested both on the sequential fallback path and with the worker
// count forced up (the container may have one core; oversubscription still
// exercises the parallel code paths and their determinism).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "parallel/arch.hpp"
#include "parallel/pack.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"
#include "parallel/scan.hpp"
#include "random/hash.hpp"

namespace pargreedy {
namespace {

// ---------------------------------------------------------------- arch ---

TEST(Arch, WorkerCountIsPositive) { EXPECT_GE(num_workers(), 1); }

TEST(Arch, ScopedNumWorkersRestores) {
  const int before = num_workers();
  {
    ScopedNumWorkers guard(3);
    EXPECT_EQ(num_workers(), 3);
  }
  EXPECT_EQ(num_workers(), before);
}

TEST(Arch, ScopedNumWorkersNests) {
  ScopedNumWorkers outer(4);
  EXPECT_EQ(num_workers(), 4);
  {
    ScopedNumWorkers inner(2);
    EXPECT_EQ(num_workers(), 2);
  }
  EXPECT_EQ(num_workers(), 4);
}

TEST(Arch, SetNumWorkersClampsNonPositive) {
  const int before = num_workers();
  set_num_workers(0);
  EXPECT_GE(num_workers(), 1);
  set_num_workers(-5);
  EXPECT_GE(num_workers(), 1);
  set_num_workers(before);
}

TEST(Arch, NotInParallelAtTopLevel) { EXPECT_FALSE(in_parallel()); }

// -------------------------------------------------------- parallel_for ---

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ScopedNumWorkers guard(4);
  const int64_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
}

TEST(ParallelFor, RespectsNonZeroBegin) {
  ScopedNumWorkers guard(4);
  std::vector<int> hit(100, 0);
  parallel_for(30, 70, [&](int64_t i) { hit[static_cast<std::size_t>(i)] = 1; },
               /*grain=*/1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(hit[i], (i >= 30 && i < 70) ? 1 : 0);
}

TEST(ParallelFor, EmptyAndInvertedRangesAreNoOps) {
  int calls = 0;
  parallel_for(5, 5, [&](int64_t) { ++calls; });
  parallel_for(7, 3, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SmallRangeRunsInOrderSequentially) {
  // Below the grain threshold the loop must be plain sequential, so a
  // stateful (non-thread-safe) body observing in-order execution is legal.
  std::vector<int64_t> seen;
  parallel_for(0, kDefaultGrain - 1, [&](int64_t i) { seen.push_back(i); });
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kDefaultGrain - 1));
  for (int64_t i = 0; i < kDefaultGrain - 1; ++i) EXPECT_EQ(seen[i], i);
}

TEST(ParallelFor, StaticScheduleVisitsEverything) {
  ScopedNumWorkers guard(4);
  const int64_t n = 5'000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_static(0, n, [&](int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, NestedCallFallsBackToSequential) {
  // parallel_for inside a parallel region must not deadlock or double-run.
  ScopedNumWorkers guard(4);
  const int64_t n = 2'000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, 4, [&](int64_t) {
    parallel_for(0, n, [&](int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
  }, /*grain=*/1);
  for (int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 4);
}

// ------------------------------------------------------ parallel_blocks ---

TEST(ParallelBlocks, CoversRangeWithDisjointBlocks) {
  ScopedNumWorkers guard(4);
  const int64_t n = 12'345;
  std::vector<std::atomic<int>> hits(n);
  parallel_blocks(n, [&](int64_t, int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i)
      hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelBlocks, BlockIdsAreDense) {
  ScopedNumWorkers guard(4);
  const int64_t n = 1'000;
  const int64_t blocks = parallel_block_count(n);
  std::vector<std::atomic<int>> seen(static_cast<std::size_t>(blocks));
  parallel_blocks(n, [&](int64_t b, int64_t, int64_t) {
    ASSERT_GE(b, 0);
    ASSERT_LT(b, blocks);
    seen[static_cast<std::size_t>(b)].fetch_add(1);
  });
  for (int64_t b = 0; b < blocks; ++b) EXPECT_EQ(seen[b].load(), 1);
}

TEST(ParallelBlocks, FewerItemsThanWorkers) {
  ScopedNumWorkers guard(8);
  const int64_t n = 3;
  EXPECT_EQ(parallel_block_count(n), 3);
  std::vector<std::atomic<int>> hits(n);
  parallel_blocks(n, [&](int64_t, int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i)
      hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelBlocks, ZeroIsNoOp) {
  int calls = 0;
  parallel_blocks(0, [&](int64_t, int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(parallel_block_count(0), 0);
}

// ------------------------------------------------------------ reductions ---

TEST(Reduce, SumMatchesClosedForm) {
  ScopedNumWorkers guard(4);
  const int64_t n = 100'000;
  const int64_t sum = reduce_add<int64_t>(0, n, [](int64_t i) { return i; });
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(Reduce, SumWithNonZeroBegin) {
  const int64_t sum =
      reduce_add<int64_t>(10, 20, [](int64_t i) { return i; });
  EXPECT_EQ(sum, 145);  // 10 + 11 + ... + 19
}

TEST(Reduce, EmptyRangeGivesIdentity) {
  EXPECT_EQ(reduce_add<int64_t>(5, 5, [](int64_t) { return 7; }), 0);
  EXPECT_EQ(reduce_max<int>(3, 3, -1, [](int64_t) { return 99; }), -1);
  EXPECT_EQ(reduce_min<int>(3, 3, 42, [](int64_t) { return 0; }), 42);
}

TEST(Reduce, MaxAndMinFindExtremes) {
  ScopedNumWorkers guard(4);
  const int64_t n = 50'000;
  std::vector<int64_t> data(n);
  for (int64_t i = 0; i < n; ++i)
    data[static_cast<std::size_t>(i)] =
        static_cast<int64_t>(hash64(1, static_cast<uint64_t>(i)) % 1'000'003);
  const auto at = [&](int64_t i) { return data[static_cast<std::size_t>(i)]; };
  const int64_t mx = reduce_max<int64_t>(0, n, INT64_MIN, at);
  const int64_t mn = reduce_min<int64_t>(0, n, INT64_MAX, at);
  EXPECT_EQ(mx, *std::max_element(data.begin(), data.end()));
  EXPECT_EQ(mn, *std::min_element(data.begin(), data.end()));
}

TEST(Reduce, CountIf) {
  ScopedNumWorkers guard(4);
  const int64_t n = 30'000;
  const int64_t evens = count_if(0, n, [](int64_t i) { return i % 2 == 0; });
  EXPECT_EQ(evens, n / 2);
  EXPECT_EQ(count_if(0, n, [](int64_t) { return false; }), 0);
  EXPECT_EQ(count_if(0, n, [](int64_t) { return true; }), n);
}

TEST(Reduce, GeneralReduceWithCustomMonoid) {
  // xor is associative and commutative; compare against a serial fold.
  ScopedNumWorkers guard(4);
  const int64_t n = 20'000;
  auto f = [](int64_t i) { return hash64(9, static_cast<uint64_t>(i)); };
  uint64_t expect = 0;
  for (int64_t i = 0; i < n; ++i) expect ^= f(i);
  const uint64_t got = parallel_reduce<uint64_t>(
      0, n, 0, f, [](uint64_t a, uint64_t b) { return a ^ b; });
  EXPECT_EQ(got, expect);
}

// ------------------------------------------------------------------ scan ---

class ScanSizes : public ::testing::TestWithParam<int64_t> {};

TEST_P(ScanSizes, ExclusiveMatchesSerialReference) {
  ScopedNumWorkers guard(4);
  const int64_t n = GetParam();
  std::vector<int64_t> in(static_cast<std::size_t>(n));
  for (int64_t i = 0; i < n; ++i)
    in[static_cast<std::size_t>(i)] =
        static_cast<int64_t>(hash64(3, static_cast<uint64_t>(i)) % 100);
  std::vector<int64_t> expect(in.size());
  int64_t acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    expect[i] = acc;
    acc += in[i];
  }
  std::vector<int64_t> out(in.size());
  const int64_t total =
      exclusive_scan(std::span<const int64_t>(in), std::span<int64_t>(out));
  EXPECT_EQ(total, acc);
  EXPECT_EQ(out, expect);
}

TEST_P(ScanSizes, InclusiveMatchesSerialReference) {
  ScopedNumWorkers guard(4);
  const int64_t n = GetParam();
  std::vector<int64_t> in(static_cast<std::size_t>(n));
  for (int64_t i = 0; i < n; ++i)
    in[static_cast<std::size_t>(i)] =
        static_cast<int64_t>(hash64(4, static_cast<uint64_t>(i)) % 100);
  std::vector<int64_t> expect(in.size());
  int64_t acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    acc += in[i];
    expect[i] = acc;
  }
  std::vector<int64_t> out(in.size());
  const int64_t total =
      inclusive_scan(std::span<const int64_t>(in), std::span<int64_t>(out));
  EXPECT_EQ(total, acc);
  EXPECT_EQ(out, expect);
}

INSTANTIATE_TEST_SUITE_P(SizeSweep, ScanSizes,
                         ::testing::Values(0, 1, 2, 255, 256, 257, 511, 512,
                                           1'000, 4'096, 100'000));

TEST(Scan, InPlaceAliasing) {
  ScopedNumWorkers guard(4);
  std::vector<uint64_t> data(10'000, 1);
  const uint64_t total = exclusive_scan_inplace(std::span<uint64_t>(data));
  EXPECT_EQ(total, 10'000u);
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_EQ(data[i], static_cast<uint64_t>(i));
}

TEST(Scan, AliasedExclusiveInputEqualsOutput) {
  ScopedNumWorkers guard(4);
  std::vector<int64_t> data(5'000);
  std::iota(data.begin(), data.end(), 0);
  std::vector<int64_t> copy = data;
  exclusive_scan(std::span<const int64_t>(data), std::span<int64_t>(data));
  std::vector<int64_t> expect(copy.size());
  int64_t acc = 0;
  for (std::size_t i = 0; i < copy.size(); ++i) {
    expect[i] = acc;
    acc += copy[i];
  }
  EXPECT_EQ(data, expect);
}

// ------------------------------------------------------------------ pack ---

TEST(Pack, KeepsFlaggedValuesInOrder) {
  ScopedNumWorkers guard(4);
  const int64_t n = 50'000;
  std::vector<uint32_t> in(static_cast<std::size_t>(n));
  for (int64_t i = 0; i < n; ++i)
    in[static_cast<std::size_t>(i)] = static_cast<uint32_t>(i * 3);
  // Keep every element whose *index* hashes even (pack flags by index).
  auto keep = [](int64_t i) { return hash64(7, static_cast<uint64_t>(i)) % 2 == 0; };
  const std::vector<uint32_t> out =
      pack(std::span<const uint32_t>(in), keep);
  std::vector<uint32_t> expect;
  for (int64_t i = 0; i < n; ++i)
    if (keep(i)) expect.push_back(in[static_cast<std::size_t>(i)]);
  EXPECT_EQ(out, expect);
}

TEST(Pack, AllAndNone) {
  ScopedNumWorkers guard(4);
  std::vector<int> in(10'000, 42);
  EXPECT_EQ(pack(std::span<const int>(in), [](int64_t) { return true; }).size(),
            in.size());
  EXPECT_TRUE(
      pack(std::span<const int>(in), [](int64_t) { return false; }).empty());
}

TEST(Pack, EmptyInput) {
  std::vector<int> in;
  EXPECT_TRUE(pack(std::span<const int>(in), [](int64_t) { return true; }).empty());
}

TEST(PackIndex, MatchesSerialFilter) {
  ScopedNumWorkers guard(4);
  const int64_t n = 40'000;
  auto pred = [](int64_t i) { return i % 7 == 3; };
  const std::vector<uint32_t> got = pack_index<uint32_t>(n, pred);
  std::vector<uint32_t> expect;
  for (int64_t i = 0; i < n; ++i)
    if (pred(i)) expect.push_back(static_cast<uint32_t>(i));
  EXPECT_EQ(got, expect);
}

TEST(PackIndex, SequentialAndParallelAgree) {
  const int64_t n = 30'000;
  auto pred = [](int64_t i) { return hash64(11, static_cast<uint64_t>(i)) % 3 == 0; };
  std::vector<uint32_t> serial;
  {
    ScopedNumWorkers guard(1);
    serial = pack_index<uint32_t>(n, pred);
  }
  std::vector<uint32_t> parallel;
  {
    ScopedNumWorkers guard(4);
    parallel = pack_index<uint32_t>(n, pred);
  }
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace pargreedy
