#include "core/analysis/priority_dag.hpp"

#include <algorithm>

#include "core/mis/mis.hpp"
#include "parallel/reduce.hpp"
#include "support/check.hpp"

namespace pargreedy {

std::vector<uint32_t> priority_path_lengths(const CsrGraph& g,
                                            const VertexOrder& order) {
  const uint64_t n = g.num_vertices();
  PG_CHECK_MSG(order.size() == n, "ordering size != vertex count");
  std::vector<uint32_t> len(n, 0);
  // Process vertices in priority order: all earlier neighbors of order[i]
  // are finalized before i, so a single sequential sweep is a valid DP.
  for (uint64_t i = 0; i < n; ++i) {
    const VertexId v = order.nth(i);
    uint32_t best = 0;
    for (VertexId w : g.neighbors(v))
      if (order.earlier(w, v)) best = std::max(best, len[w]);
    len[v] = best + 1;
  }
  return len;
}

uint64_t longest_priority_path(const CsrGraph& g, const VertexOrder& order) {
  if (g.num_vertices() == 0) return 0;
  const std::vector<uint32_t> len = priority_path_lengths(g, order);
  return reduce_max<uint32_t>(
      0, static_cast<int64_t>(len.size()), 0,
      [&](int64_t v) { return len[static_cast<std::size_t>(v)]; });
}

uint64_t dependence_length(const CsrGraph& g, const VertexOrder& order) {
  const MisResult r = mis_parallel_naive(g, order, ProfileLevel::kCounters);
  return r.profile.steps;
}

uint64_t longest_priority_path(const CsrGraph& g,
                               const PrioritySource& source) {
  return longest_priority_path(g, source.vertex_order(g));
}

uint64_t dependence_length(const CsrGraph& g, const PrioritySource& source) {
  return dependence_length(g, source.vertex_order(g));
}

PriorityDagStats priority_dag_stats(const CsrGraph& g,
                                    const PrioritySource& source) {
  return priority_dag_stats(g, source.vertex_order(g));
}

PriorityDagStats priority_dag_stats(const CsrGraph& g,
                                    const VertexOrder& order) {
  PriorityDagStats stats;
  const int64_t n = static_cast<int64_t>(g.num_vertices());
  stats.roots = static_cast<uint64_t>(count_if(0, n, [&](int64_t vi) {
    const VertexId v = static_cast<VertexId>(vi);
    for (VertexId w : g.neighbors(v))
      if (order.earlier(w, v)) return false;
    return true;
  }));
  stats.max_parents = reduce_max<uint64_t>(0, n, 0, [&](int64_t vi) {
    const VertexId v = static_cast<VertexId>(vi);
    uint64_t parents = 0;
    for (VertexId w : g.neighbors(v)) parents += order.earlier(w, v) ? 1 : 0;
    return parents;
  });
  stats.longest_path = longest_priority_path(g, order);
  stats.dependence_length = dependence_length(g, order);
  return stats;
}

}  // namespace pargreedy
