// Priority-DAG analysis (Section 3).
//
// For a graph G and ordering pi, the priority DAG directs every edge from
// its earlier endpoint to its later one. Two quantities matter:
//
//  * dependence length — the number of steps Algorithm 2 takes (peel roots,
//    remove them and their children, repeat). This is what Theorem 3.5
//    bounds by O(log^2 n) w.h.p. for random pi.
//  * longest directed path — an upper bound on the dependence length used
//    throughout the analysis (Lemma 3.3); can be much larger (complete
//    graph: path length n-1, dependence length 1).
#pragma once

#include <cstdint>
#include <vector>

#include "core/mis/vertex_order.hpp"
#include "core/priority/priority_source.hpp"
#include "graph/csr_graph.hpp"

namespace pargreedy {

/// Summary statistics of the priority DAG for (g, order).
struct PriorityDagStats {
  uint64_t roots = 0;             ///< vertices with no earlier neighbor
  uint64_t max_parents = 0;       ///< maximum in-degree
  uint64_t longest_path = 0;      ///< vertices on the longest directed path
  uint64_t dependence_length = 0; ///< steps of Algorithm 2
};

/// Number of vertices on the longest directed path of the priority DAG
/// (0 for the empty graph; 1 for any non-empty edgeless graph).
uint64_t longest_priority_path(const CsrGraph& g, const VertexOrder& order);

/// Per-vertex longest-path lengths: len[v] = 1 + max over earlier
/// neighbors (1 if none). Sequential DP in rank order.
std::vector<uint32_t> priority_path_lengths(const CsrGraph& g,
                                            const VertexOrder& order);

/// The dependence length: number of iterations of Algorithm 2, measured by
/// running the step-synchronous implementation.
uint64_t dependence_length(const CsrGraph& g, const VertexOrder& order);

/// All statistics at once.
PriorityDagStats priority_dag_stats(const CsrGraph& g,
                                    const VertexOrder& order);

/// Longest directed path of the DAG induced by a priority policy
/// (materializes source.vertex_order(g) and delegates). How weights shape
/// the DAG is the question the weighted_priority bench answers with this.
uint64_t longest_priority_path(const CsrGraph& g,
                               const PrioritySource& source);

/// Dependence length of the DAG induced by a priority policy.
uint64_t dependence_length(const CsrGraph& g, const PrioritySource& source);

/// All statistics for the DAG induced by a priority policy.
PriorityDagStats priority_dag_stats(const CsrGraph& g,
                                    const PrioritySource& source);

}  // namespace pargreedy
