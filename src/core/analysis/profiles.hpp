// Execution profiles: the quantities the paper's evaluation plots.
//
// Figures 1 and 2 plot, against prefix size: (a) "total work" — we count it
// as edge inspections plus item touches, the same operational measure the
// paper's implementation reports; (b) "number of rounds" — iterations of
// the outer loop that selects prefixes; (c) running time. RunProfile
// carries all three (time is measured by the harness, not here).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pargreedy {

/// Per-outer-round detail (optional; enabled by ProfileLevel::kDetailed).
struct RoundProfile {
  uint64_t active_items = 0;  ///< window / frontier size entering the round
  uint64_t decided = 0;       ///< items that resolved this round
  uint64_t work_edges = 0;    ///< edge inspections charged to this round
};

/// How much profiling to collect.
enum class ProfileLevel : uint8_t {
  kNone,      ///< count nothing (fastest; used for timing runs)
  kCounters,  ///< aggregate counters only
  kDetailed,  ///< aggregate counters + per-round breakdown
};

/// Aggregate execution profile of one algorithm run.
struct RunProfile {
  uint64_t rounds = 0;      ///< outer-loop iterations (prefix selections)
  uint64_t steps = 0;       ///< synchronous inner steps, when distinct
  uint64_t work_edges = 0;  ///< total edge inspections ("total work")
  uint64_t work_items = 0;  ///< total vertex/edge attempt touches
  std::vector<RoundProfile> per_round;  ///< filled at kDetailed

  /// Total work in the paper's sense: every operation, edges + touches.
  [[nodiscard]] uint64_t total_work() const {
    return work_edges + work_items;
  }

  /// One-line summary for logs and examples.
  [[nodiscard]] std::string summary() const;
};

}  // namespace pargreedy
