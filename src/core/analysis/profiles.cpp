#include "core/analysis/profiles.hpp"

#include <sstream>

namespace pargreedy {

std::string RunProfile::summary() const {
  std::ostringstream os;
  os << "rounds=" << rounds << " steps=" << steps
     << " work_edges=" << work_edges << " work_items=" << work_items;
  return os.str();
}

}  // namespace pargreedy
