#include "core/matching/edge_order.hpp"

#include "parallel/parallel_for.hpp"
#include "random/permutation.hpp"
#include "support/check.hpp"

namespace pargreedy {

EdgeOrder EdgeOrder::random(uint64_t m, uint64_t seed) {
  EdgeOrder o;
  o.order_ = random_permutation(m, seed);
  o.rank_ = invert_permutation(o.order_);
  return o;
}

EdgeOrder EdgeOrder::identity(uint64_t m) {
  EdgeOrder o;
  o.order_.resize(m);
  o.rank_.resize(m);
  parallel_for(0, static_cast<int64_t>(m), [&](int64_t i) {
    o.order_[static_cast<std::size_t>(i)] = static_cast<EdgeId>(i);
    o.rank_[static_cast<std::size_t>(i)] = static_cast<uint32_t>(i);
  });
  return o;
}

EdgeOrder EdgeOrder::from_permutation(std::vector<EdgeId> order) {
  PG_CHECK_MSG(is_valid_permutation(order),
               "from_permutation requires a permutation of 0..m-1");
  EdgeOrder o;
  o.order_ = std::move(order);
  o.rank_ = invert_permutation(o.order_);
  return o;
}

}  // namespace pargreedy
