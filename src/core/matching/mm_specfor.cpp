// Maximal matching through the generic deterministic-reservations engine —
// the companion formulation to mis_speculative (see that file for why this
// exists alongside the hand-rolled mm_prefix).
//
// The step is the classic reserve/commit matching protocol of the paper's
// PPoPP'12 framework [2]: reserve priority-writes the edge's rank into
// both endpoints; commit keeps the edge iff it holds both slots, which
// (combined with the engine's window invariant) is exactly the greedy
// acceptance condition.
#include <atomic>

#include "core/matching/matching.hpp"
#include "parallel/atomics.hpp"
#include "specfor/speculative_for.hpp"
#include "support/check.hpp"

namespace pargreedy {

namespace {

constexpr uint32_t kFreeSlot = 0xffffffffu;

struct MmStep {
  const CsrGraph& g;
  const EdgeOrder& order;
  std::vector<uint8_t>& status;  // EStatus bytes
  std::vector<std::atomic<uint32_t>>& reservation;
  std::vector<VertexId>& matched_with;

  bool reserve(int64_t i) {
    const EdgeId e = order.nth(static_cast<uint64_t>(i));
    const Edge ed = g.edge(e);
    if (matched_with[ed.u] != kInvalidVertex ||
        matched_with[ed.v] != kInvalidVertex) {
      std::atomic_ref<uint8_t>(status[e]).store(
          static_cast<uint8_t>(EStatus::kOut), std::memory_order_relaxed);
      return false;  // a neighbor matched earlier: resolved with no effect
    }
    const uint32_t r = order.rank(e);
    atomic_write_min(reservation[ed.u], r);
    atomic_write_min(reservation[ed.v], r);
    return true;
  }

  bool commit(int64_t i) {
    const EdgeId e = order.nth(static_cast<uint64_t>(i));
    const Edge ed = g.edge(e);
    const uint32_t r = order.rank(e);
    const bool won_u = reservation[ed.u].load(std::memory_order_relaxed) == r;
    const bool won_v = reservation[ed.v].load(std::memory_order_relaxed) == r;
    if (won_u && won_v) {
      std::atomic_ref<uint8_t>(status[e]).store(
          static_cast<uint8_t>(EStatus::kIn), std::memory_order_relaxed);
      matched_with[ed.u] = ed.v;
      matched_with[ed.v] = ed.u;
    }
    if (won_u) reservation[ed.u].store(kFreeSlot, std::memory_order_relaxed);
    if (won_v) reservation[ed.v].store(kFreeSlot, std::memory_order_relaxed);
    return won_u && won_v;
  }
};

}  // namespace

MatchResult mm_speculative(const CsrGraph& g, const EdgeOrder& order,
                           uint64_t prefix_size) {
  const uint64_t m = g.num_edges();
  const uint64_t n = g.num_vertices();
  PG_CHECK_MSG(order.size() == m, "ordering size != edge count");
  MatchResult result;
  result.in_matching.assign(m, 0);
  result.matched_with.assign(n, kInvalidVertex);

  std::vector<std::atomic<uint32_t>> reservation(n);
  parallel_for(0, static_cast<int64_t>(n), [&](int64_t v) {
    reservation[static_cast<std::size_t>(v)].store(
        kFreeSlot, std::memory_order_relaxed);
  });

  MmStep step{g, order, result.in_matching, reservation,
              result.matched_with};
  const SpecForStats stats =
      speculative_for(step, 0, static_cast<int64_t>(m),
                      static_cast<int64_t>(prefix_size));
  result.profile.rounds = stats.rounds;
  result.profile.steps = stats.rounds;
  result.profile.work_items = stats.attempts;

  parallel_for(0, static_cast<int64_t>(m), [&](int64_t e) {
    result.in_matching[static_cast<std::size_t>(e)] =
        result.in_matching[static_cast<std::size_t>(e)] ==
                static_cast<uint8_t>(EStatus::kIn)
            ? 1
            : 0;
  });
  return result;
}

}  // namespace pargreedy
