// Algorithm 4, step-synchronous: parallel greedy maximal matching.
//
// Each step mirrors one recursive call: edges with no earlier adjacent edge
// remaining join the matching (phase A); edges that now see an adjacent In
// edge leave (phase B). The step count is the dependence length of the
// *edge* priority DAG — the quantity Lemma 5.1 bounds via the reduction to
// MIS on the line graph, without ever building that line graph.
#include <atomic>

#include "core/matching/matching.hpp"
#include "parallel/pack.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"
#include "support/check.hpp"

namespace pargreedy {

namespace {

inline EStatus load_status(const std::vector<uint8_t>& status, EdgeId e) {
  return static_cast<EStatus>(
      std::atomic_ref<const uint8_t>(status[e]).load(
          std::memory_order_relaxed));
}

inline void store_status(std::vector<uint8_t>& status, EdgeId e, EStatus s) {
  std::atomic_ref<uint8_t>(status[e]).store(static_cast<uint8_t>(s),
                                            std::memory_order_relaxed);
}

}  // namespace

MatchResult mm_parallel_naive(const CsrGraph& g, const EdgeOrder& order,
                              ProfileLevel level) {
  const uint64_t m = g.num_edges();
  PG_CHECK_MSG(order.size() == m, "ordering size != edge count");
  MatchResult result;
  result.in_matching.assign(m, 0);
  result.matched_with.assign(g.num_vertices(), kInvalidVertex);
  std::vector<uint8_t>& status = result.in_matching;
  RunProfile& prof = result.profile;

  std::vector<EdgeId> active(order.order().begin(), order.order().end());

  // Scans e's adjacency (all edges sharing an endpoint with e).
  auto for_each_adjacent = [&](EdgeId e, auto&& fn) {
    const Edge ed = g.edge(e);
    for (EdgeId f : g.incident_edges(ed.u))
      if (f != e && !fn(f)) return;
    for (EdgeId f : g.incident_edges(ed.v))
      if (f != e && !fn(f)) return;
  };

  while (!active.empty()) {
    ++prof.rounds;
    const int64_t sz = static_cast<int64_t>(active.size());

    // Phase A: edges whose earlier adjacent edges are all Out join.
    const uint64_t work_a = static_cast<uint64_t>(parallel_reduce<int64_t>(
        0, sz, 0,
        [&](int64_t i) {
          const EdgeId e = active[static_cast<std::size_t>(i)];
          int64_t scanned = 0;
          bool all_out = true;
          for_each_adjacent(e, [&](EdgeId f) {
            if (!order.earlier(f, e)) return true;
            ++scanned;
            if (load_status(status, f) != EStatus::kOut) {
              all_out = false;
              return false;  // stop scanning
            }
            return true;
          });
          if (all_out) store_status(status, e, EStatus::kIn);
          return scanned;
        },
        [](int64_t a, int64_t b) { return a + b; }));

    // Phase B: edges seeing an adjacent In edge leave. (An adjacent In is
    // necessarily earlier: a later adjacent edge cannot have joined while
    // this one was undecided.)
    const uint64_t work_b = static_cast<uint64_t>(parallel_reduce<int64_t>(
        0, sz, 0,
        [&](int64_t i) {
          const EdgeId e = active[static_cast<std::size_t>(i)];
          if (load_status(status, e) != EStatus::kUndecided) return int64_t{0};
          int64_t scanned = 0;
          for_each_adjacent(e, [&](EdgeId f) {
            ++scanned;
            if (load_status(status, f) == EStatus::kIn) {
              store_status(status, e, EStatus::kOut);
              return false;
            }
            return true;
          });
          return scanned;
        },
        [](int64_t a, int64_t b) { return a + b; }));

    const std::vector<EdgeId> next =
        pack(std::span<const EdgeId>(active), [&](int64_t i) {
          return load_status(status, active[static_cast<std::size_t>(i)]) ==
                 EStatus::kUndecided;
        });
    if (level != ProfileLevel::kNone) {
      prof.work_edges += work_a + work_b;
      prof.work_items += static_cast<uint64_t>(sz);
      if (level == ProfileLevel::kDetailed) {
        prof.per_round.push_back(RoundProfile{
            static_cast<uint64_t>(sz),
            static_cast<uint64_t>(sz) - next.size(), work_a + work_b});
      }
    }
    PG_CHECK_MSG(next.size() < active.size(),
                 "no progress in a step: edge priority DAG is inconsistent");
    active = next;
  }
  prof.steps = prof.rounds;

  // Collapse tri-state to 0/1 and fill the per-vertex partner map.
  parallel_for(0, static_cast<int64_t>(m), [&](int64_t e) {
    status[static_cast<std::size_t>(e)] =
        status[static_cast<std::size_t>(e)] ==
                static_cast<uint8_t>(EStatus::kIn)
            ? 1
            : 0;
  });
  parallel_for(0, static_cast<int64_t>(m), [&](int64_t ei) {
    if (!status[static_cast<std::size_t>(ei)]) return;
    const Edge ed = g.edge(static_cast<EdgeId>(ei));
    result.matched_with[ed.u] = ed.v;
    result.matched_with[ed.v] = ed.u;
  });
  return result;
}

}  // namespace pargreedy
