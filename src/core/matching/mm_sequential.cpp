// The sequential greedy maximal matching: process edges in order, keep an
// edge iff both endpoints are still free. Linear time; defines the
// lexicographically-first MM that every parallel variant reproduces.
#include "core/matching/matching.hpp"
#include "parallel/pack.hpp"
#include "parallel/reduce.hpp"
#include "support/check.hpp"

namespace pargreedy {

std::vector<EdgeId> MatchResult::members() const {
  return pack_index<EdgeId>(
      static_cast<int64_t>(in_matching.size()), [&](int64_t e) {
        return in_matching[static_cast<std::size_t>(e)] != 0;
      });
}

uint64_t MatchResult::size() const {
  return static_cast<uint64_t>(reduce_add<int64_t>(
      0, static_cast<int64_t>(in_matching.size()), [&](int64_t e) {
        return in_matching[static_cast<std::size_t>(e)] ? 1 : 0;
      }));
}

MatchResult mm_sequential(const CsrGraph& g, const EdgeOrder& order,
                          ProfileLevel level) {
  const uint64_t m = g.num_edges();
  PG_CHECK_MSG(order.size() == m, "ordering size != edge count");
  MatchResult result;
  result.in_matching.assign(m, 0);
  result.matched_with.assign(g.num_vertices(), kInvalidVertex);

  for (uint64_t i = 0; i < m; ++i) {
    const EdgeId e = order.nth(i);
    const Edge ed = g.edge(e);
    if (result.matched_with[ed.u] != kInvalidVertex ||
        result.matched_with[ed.v] != kInvalidVertex)
      continue;
    result.in_matching[e] = 1;
    result.matched_with[ed.u] = ed.v;
    result.matched_with[ed.v] = ed.u;
  }
  if (level != ProfileLevel::kNone) {
    result.profile.rounds = m;
    result.profile.steps = m;
    result.profile.work_items = m;
  }
  return result;
}

}  // namespace pargreedy
