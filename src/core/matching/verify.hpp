// Maximal-matching verification predicates.
#pragma once

#include <cstdint>
#include <span>

#include "core/matching/matching.hpp"
#include "graph/csr_graph.hpp"

namespace pargreedy {

/// No two flagged edges share an endpoint.
bool is_matching(const CsrGraph& g, std::span<const uint8_t> in_matching);

/// Every unflagged edge has a flagged adjacent edge (equivalently: no edge
/// has both endpoints unmatched).
bool is_maximal_matching_set(const CsrGraph& g,
                             std::span<const uint8_t> in_matching);

/// Matching property and maximality together.
bool is_maximal_matching(const CsrGraph& g,
                         std::span<const uint8_t> in_matching);

/// True iff `in_matching` is exactly the greedy sequential (lexicographically
/// first) matching for `order`.
bool is_lex_first_matching(const CsrGraph& g, const EdgeOrder& order,
                           std::span<const uint8_t> in_matching);

/// True iff matched_with is consistent with in_matching (symmetric partner
/// map covering exactly the matched edges).
bool partner_map_consistent(const CsrGraph& g, const MatchResult& result);

}  // namespace pargreedy
