#include "core/matching/verify.hpp"

#include "parallel/reduce.hpp"
#include "support/check.hpp"

namespace pargreedy {

bool is_matching(const CsrGraph& g, std::span<const uint8_t> in_matching) {
  PG_CHECK(in_matching.size() == g.num_edges());
  // Count matched-edge endpoints per vertex; a matching touches each at
  // most once.
  const int64_t n = static_cast<int64_t>(g.num_vertices());
  const int64_t bad = count_if(0, n, [&](int64_t vi) {
    const VertexId v = static_cast<VertexId>(vi);
    int matched_incident = 0;
    for (EdgeId f : g.incident_edges(v))
      matched_incident += in_matching[f] ? 1 : 0;
    return matched_incident > 1;
  });
  return bad == 0;
}

bool is_maximal_matching_set(const CsrGraph& g,
                             std::span<const uint8_t> in_matching) {
  PG_CHECK(in_matching.size() == g.num_edges());
  std::vector<uint8_t> covered(g.num_vertices(), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!in_matching[e]) continue;
    covered[g.edge(e).u] = 1;
    covered[g.edge(e).v] = 1;
  }
  const int64_t m = static_cast<int64_t>(g.num_edges());
  const int64_t uncovered_edges = count_if(0, m, [&](int64_t ei) {
    const Edge ed = g.edge(static_cast<EdgeId>(ei));
    return !covered[ed.u] && !covered[ed.v];
  });
  return uncovered_edges == 0;
}

bool is_maximal_matching(const CsrGraph& g,
                         std::span<const uint8_t> in_matching) {
  return is_matching(g, in_matching) &&
         is_maximal_matching_set(g, in_matching);
}

bool is_lex_first_matching(const CsrGraph& g, const EdgeOrder& order,
                           std::span<const uint8_t> in_matching) {
  const MatchResult reference = mm_sequential(g, order);
  if (reference.in_matching.size() != in_matching.size()) return false;
  const int64_t m = static_cast<int64_t>(in_matching.size());
  return count_if(0, m, [&](int64_t e) {
           return (reference.in_matching[static_cast<std::size_t>(e)] != 0) !=
                  (in_matching[static_cast<std::size_t>(e)] != 0);
         }) == 0;
}

bool partner_map_consistent(const CsrGraph& g, const MatchResult& result) {
  if (result.matched_with.size() != g.num_vertices()) return false;
  // Every matched edge must appear in the partner map, symmetrically.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge ed = g.edge(e);
    if (result.in_matching[e]) {
      if (result.matched_with[ed.u] != ed.v) return false;
      if (result.matched_with[ed.v] != ed.u) return false;
    }
  }
  // Every partner entry must come from some matched edge.
  std::vector<VertexId> expect(g.num_vertices(), kInvalidVertex);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!result.in_matching[e]) continue;
    expect[g.edge(e).u] = g.edge(e).v;
    expect[g.edge(e).v] = g.edge(e).u;
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (result.matched_with[v] != expect[v]) return false;
  return true;
}

}  // namespace pargreedy
