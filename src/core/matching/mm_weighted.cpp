// Weighted greedy maximal-matching oracle.
//
// The sequential greedy loop driven directly by PrioritySource keys
// instead of a materialized EdgeOrder: edges are visited in increasing
// (priority key, canonical endpoint key) order — decreasing weight under
// the weight policies — and an edge joins iff both endpoints are still
// free. Kept independent of the EdgeOrder/mm_sequential path on purpose
// (see mis_weighted.cpp).
#include <algorithm>
#include <numeric>

#include "core/matching/matching.hpp"
#include "support/check.hpp"

namespace pargreedy {

MatchResult mm_weighted_sequential(const CsrGraph& g,
                                   const PrioritySource& source) {
  const uint64_t m = g.num_edges();
  std::vector<PriorityKey> keys(m);
  for (EdgeId e = 0; e < m; ++e)
    keys[e] = source.edge_key(g.edge(e), g.edge_weight(e));

  std::vector<EdgeId> by_priority(m);
  std::iota(by_priority.begin(), by_priority.end(), EdgeId{0});
  // CSR edge ids ascend with the canonical endpoint key, so the id
  // tie-break below is the endpoint-key tie-break of the engines.
  std::sort(by_priority.begin(), by_priority.end(), [&](EdgeId a, EdgeId b) {
    return keys[a] != keys[b] ? keys[a] < keys[b] : a < b;
  });

  MatchResult result;
  result.in_matching.assign(m, 0);
  result.matched_with.assign(g.num_vertices(), kInvalidVertex);
  for (const EdgeId e : by_priority) {
    const Edge ed = g.edge(e);
    if (result.matched_with[ed.u] != kInvalidVertex ||
        result.matched_with[ed.v] != kInvalidVertex)
      continue;
    result.in_matching[e] = 1;
    result.matched_with[ed.u] = ed.v;
    result.matched_with[ed.v] = ed.u;
  }
  return result;
}

}  // namespace pargreedy
