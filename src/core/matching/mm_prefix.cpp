// Prefix-based maximal matching via deterministic reservations — the
// implementation behind Figure 2 and Figure 4.
//
// A window holds the prefix_size earliest unresolved edges. Each round has
// two barrier-separated phases (the reserve/commit pattern of the paper's
// companion "internally deterministic" framework [2]):
//
//   reserve: an edge with a matched endpoint resolves to Out; otherwise it
//            priority-writes its rank into both endpoints' reservation
//            slots (atomic write-min).
//   commit:  an edge that holds *both* its endpoints' slots is the
//            earliest unresolved edge at both, which is exactly the greedy
//            acceptance condition — it enters the matching. Winners reset
//            the slots they hold; losers retry next round.
//
// Because every unresolved edge earlier than a window member is itself in
// the window, holding both slots implies no earlier unresolved neighbor
// exists anywhere, so the committed matching is the sequential greedy one
// for any schedule and any worker count.
#include <atomic>

#include "core/matching/matching.hpp"
#include "parallel/atomics.hpp"
#include "parallel/pack.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"
#include "support/check.hpp"

namespace pargreedy {

namespace {

constexpr uint32_t kFreeSlot = 0xffffffffu;

inline EStatus load_status(const std::vector<uint8_t>& status, EdgeId e) {
  return static_cast<EStatus>(
      std::atomic_ref<const uint8_t>(status[e]).load(
          std::memory_order_relaxed));
}

inline void store_status(std::vector<uint8_t>& status, EdgeId e, EStatus s) {
  std::atomic_ref<uint8_t>(status[e]).store(static_cast<uint8_t>(s),
                                            std::memory_order_relaxed);
}

}  // namespace

MatchResult mm_prefix(const CsrGraph& g, const EdgeOrder& order,
                      uint64_t prefix_size, ProfileLevel level) {
  const uint64_t m = g.num_edges();
  const uint64_t n = g.num_vertices();
  PG_CHECK_MSG(order.size() == m, "ordering size != edge count");
  const uint64_t window =
      prefix_size < 1 ? 1 : (prefix_size > m && m > 0 ? m : prefix_size);

  MatchResult result;
  result.in_matching.assign(m, 0);
  result.matched_with.assign(n, kInvalidVertex);
  std::vector<uint8_t>& status = result.in_matching;
  RunProfile& prof = result.profile;

  // reservation[v]: smallest rank among unresolved edges bidding for v.
  std::vector<std::atomic<uint32_t>> reservation(n);
  parallel_for(0, static_cast<int64_t>(n), [&](int64_t v) {
    reservation[static_cast<std::size_t>(v)].store(kFreeSlot,
                                                   std::memory_order_relaxed);
  });

  std::vector<EdgeId> active;
  active.reserve(window);
  uint64_t next = window < m ? window : m;
  for (uint64_t i = 0; i < next; ++i) active.push_back(order.nth(i));

  while (!active.empty()) {
    ++prof.rounds;
    const int64_t sz = static_cast<int64_t>(active.size());

    // Reserve phase.
    parallel_for(0, sz, [&](int64_t i) {
      const EdgeId e = active[static_cast<std::size_t>(i)];
      const Edge ed = g.edge(e);
      if (result.matched_with[ed.u] != kInvalidVertex ||
          result.matched_with[ed.v] != kInvalidVertex) {
        store_status(status, e, EStatus::kOut);
        return;
      }
      const uint32_t r = order.rank(e);
      atomic_write_min(reservation[ed.u], r);
      atomic_write_min(reservation[ed.v], r);
    });

    // Commit phase.
    parallel_for(0, sz, [&](int64_t i) {
      const EdgeId e = active[static_cast<std::size_t>(i)];
      if (load_status(status, e) != EStatus::kUndecided) return;
      const Edge ed = g.edge(e);
      const uint32_t r = order.rank(e);
      const bool won_u =
          reservation[ed.u].load(std::memory_order_relaxed) == r;
      const bool won_v =
          reservation[ed.v].load(std::memory_order_relaxed) == r;
      if (won_u && won_v) {
        store_status(status, e, EStatus::kIn);
        result.matched_with[ed.u] = ed.v;
        result.matched_with[ed.v] = ed.u;
      }
      // Whoever holds a slot releases it for the next round's bidding.
      if (won_u)
        reservation[ed.u].store(kFreeSlot, std::memory_order_relaxed);
      if (won_v)
        reservation[ed.v].store(kFreeSlot, std::memory_order_relaxed);
    });

    std::vector<EdgeId> failed =
        pack(std::span<const EdgeId>(active), [&](int64_t i) {
          return load_status(status, active[static_cast<std::size_t>(i)]) ==
                 EStatus::kUndecided;
        });
    if (level != ProfileLevel::kNone) {
      // Work: one attempt (reserve + commit, O(1) each) per active edge.
      prof.work_items += static_cast<uint64_t>(sz);
      if (level == ProfileLevel::kDetailed) {
        prof.per_round.push_back(RoundProfile{
            static_cast<uint64_t>(sz),
            static_cast<uint64_t>(sz) - failed.size(), 0});
      }
    }
    while (failed.size() < window && next < m)
      failed.push_back(order.nth(next++));
    active.swap(failed);
  }
  prof.steps = prof.rounds;

  // Collapse the tri-state status array to 0/1 membership.
  parallel_for(0, static_cast<int64_t>(m), [&](int64_t e) {
    status[static_cast<std::size_t>(e)] =
        status[static_cast<std::size_t>(e)] ==
                static_cast<uint8_t>(EStatus::kIn)
            ? 1
            : 0;
  });
  return result;
}

}  // namespace pargreedy
