// Linear-work maximal matching via root sets and mmCheck (Lemma 5.3).
//
// Each vertex keeps its incident edges sorted by priority plus a *head*
// cursor; deletion is lazy (an edge is marked Out and skipped when a cursor
// passes it), so all cursor advances together cost O(m) — Lemma 5.2. An
// edge is "ready" (a root of the edge priority DAG) iff it is the first
// live edge at *both* endpoints. Each step:
//   1. the ready edges join the matching (they are vertex-disjoint);
//   2. every other edge incident on a newly matched vertex is deleted,
//      with a CAS claiming each deletion exactly once;
//   3. the far endpoint of each deleted edge is mmCheck'ed by one owner:
//      advance its head; if its first live edge is also first live on the
//      other side, that edge is ready for the next step.
// Steps = dependence length of the edge DAG (O(log^2 m) w.h.p., Lemma
// 5.1); total work O(n + m).
#include <algorithm>
#include <atomic>

#include "core/matching/matching.hpp"
#include "parallel/pack.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/scan.hpp"
#include "support/check.hpp"

namespace pargreedy {

namespace {

inline EStatus load_estatus(const std::vector<uint8_t>& status, EdgeId e) {
  return static_cast<EStatus>(
      std::atomic_ref<const uint8_t>(status[e]).load(
          std::memory_order_acquire));
}

/// CAS Undecided -> `to`; true iff this caller performed the transition.
inline bool claim_estatus(std::vector<uint8_t>& status, EdgeId e,
                          EStatus to) {
  uint8_t expected = static_cast<uint8_t>(EStatus::kUndecided);
  return std::atomic_ref<uint8_t>(status[e]).compare_exchange_strong(
      expected, static_cast<uint8_t>(to), std::memory_order_acq_rel,
      std::memory_order_acquire);
}

/// Claims `stamp` for `token`; true for exactly one caller per token.
inline bool claim_token(std::atomic<uint64_t>& stamp, uint64_t token) {
  uint64_t seen = stamp.load(std::memory_order_relaxed);
  if (seen == token) return false;
  return stamp.compare_exchange_strong(seen, token,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire);
}

}  // namespace

MatchResult mm_rootset(const CsrGraph& g, const EdgeOrder& order,
                       ProfileLevel level) {
  const uint64_t m = g.num_edges();
  const uint64_t n = g.num_vertices();
  PG_CHECK_MSG(order.size() == m, "ordering size != edge count");
  MatchResult result;
  result.in_matching.assign(m, 0);
  result.matched_with.assign(n, kInvalidVertex);
  std::vector<uint8_t>& status = result.in_matching;
  RunProfile& prof = result.profile;
  if (m == 0) return result;

  // Per-vertex incident edges sorted by priority (ascending rank), sharing
  // the CSR offsets. Lemma 5.3 pre-sorts these with a bucket sort; a
  // per-vertex comparison sort is the practical equivalent.
  const std::span<const Offset> offsets = g.offsets();
  std::vector<EdgeId> inc(2 * m);
  parallel_for(0, static_cast<int64_t>(n), [&](int64_t vi) {
    const VertexId v = static_cast<VertexId>(vi);
    const auto src = g.incident_edges(v);
    std::copy(src.begin(), src.end(), inc.begin() + offsets[v]);
    std::sort(inc.begin() + offsets[v], inc.begin() + offsets[v + 1],
              [&](EdgeId a, EdgeId b) { return order.earlier(a, b); });
  });

  // head[v]: absolute offset of v's first not-yet-skipped incident edge.
  std::vector<std::atomic<uint64_t>> head(n);
  parallel_for(0, static_cast<int64_t>(n), [&](int64_t v) {
    head[static_cast<std::size_t>(v)].store(
        offsets[static_cast<std::size_t>(v)], std::memory_order_relaxed);
  });
  std::vector<std::atomic<uint64_t>> edge_stamp(m);
  std::vector<std::atomic<uint64_t>> vertex_stamp(n);

  // Monotone, CAS-protected cursor advance past deleted (Out) edges.
  // Returns the absolute offset of v's first live edge, or offsets[v+1].
  auto advance = [&](VertexId v) -> uint64_t {
    const uint64_t end = offsets[v + 1];
    while (true) {
      uint64_t cur = head[v].load(std::memory_order_relaxed);
      uint64_t h = cur;
      while (h < end && load_estatus(status, inc[h]) == EStatus::kOut) ++h;
      if (h == cur) return h;
      if (head[v].compare_exchange_weak(cur, h, std::memory_order_acq_rel,
                                        std::memory_order_acquire))
        return h;
    }
  };

  // mmCheck(w): is w's first live edge also first live on its other side?
  // Returns the ready edge, or kInvalidEdge. The caller must hold w's
  // per-token claim; the per-edge claim here dedupes discovery from both
  // endpoints.
  auto mmcheck = [&](VertexId w, uint64_t token) -> EdgeId {
    const uint64_t hw = advance(w);
    if (hw == offsets[w + 1]) return kInvalidEdge;
    const EdgeId e = inc[hw];
    if (load_estatus(status, e) != EStatus::kUndecided) return kInvalidEdge;
    const VertexId x = g.edge(e).other(w);
    const uint64_t hx = advance(x);
    if (hx == offsets[x + 1] || inc[hx] != e) return kInvalidEdge;
    if (!claim_token(edge_stamp[e], token)) return kInvalidEdge;
    return e;
  };

  // Initial ready set: every vertex proposes its first live edge.
  uint64_t token = 1;
  std::vector<EdgeId> ready;
  {
    std::vector<EdgeId> slots(n, kInvalidEdge);
    parallel_for(0, static_cast<int64_t>(n), [&](int64_t vi) {
      const VertexId v = static_cast<VertexId>(vi);
      if (g.degree(v) == 0) return;
      slots[static_cast<std::size_t>(vi)] = mmcheck(v, token);
    });
    ready = pack(std::span<const EdgeId>(slots), [&](int64_t i) {
      return slots[static_cast<std::size_t>(i)] != kInvalidEdge;
    });
  }

  uint64_t steps = 0;
  while (!ready.empty()) {
    ++steps;
    ++token;
    const int64_t num_ready = static_cast<int64_t>(ready.size());

    // 1. Ready edges join the matching (vertex-disjoint by construction).
    parallel_for(0, num_ready, [&](int64_t i) {
      const EdgeId e = ready[static_cast<std::size_t>(i)];
      std::atomic_ref<uint8_t>(status[e]).store(
          static_cast<uint8_t>(EStatus::kIn), std::memory_order_release);
      const Edge ed = g.edge(e);
      result.matched_with[ed.u] = ed.v;
      result.matched_with[ed.v] = ed.u;
    });

    // 2. Delete the undecided neighbors of matched edges; record the far
    //    endpoint of each deleted edge for rechecking.
    std::vector<Offset> slot_offset(ready.size() + 1, 0);
    {
      std::vector<Offset> deg(ready.size());
      parallel_for(0, num_ready, [&](int64_t i) {
        const Edge ed = g.edge(ready[static_cast<std::size_t>(i)]);
        deg[static_cast<std::size_t>(i)] = g.degree(ed.u) + g.degree(ed.v);
      });
      const Offset total =
          exclusive_scan(std::span<const Offset>(deg),
                         std::span<Offset>(slot_offset.data(), ready.size()));
      slot_offset[ready.size()] = total;
    }
    std::vector<VertexId> far_slots(slot_offset[ready.size()],
                                    kInvalidVertex);
    parallel_for(0, num_ready, [&](int64_t i) {
      const EdgeId e = ready[static_cast<std::size_t>(i)];
      const Edge ed = g.edge(e);
      Offset at = slot_offset[static_cast<std::size_t>(i)];
      for (const VertexId endpoint : {ed.u, ed.v}) {
        for (EdgeId f : g.incident_edges(endpoint)) {
          const Offset slot = at++;
          if (f == e) continue;
          if (claim_estatus(status, f, EStatus::kOut))
            far_slots[slot] = g.edge(f).other(endpoint);
        }
      }
    });
    const std::vector<VertexId> far =
        pack(std::span<const VertexId>(far_slots), [&](int64_t i) {
          return far_slots[static_cast<std::size_t>(i)] != kInvalidVertex;
        });

    // 3. mmCheck each far endpoint once; collect the next ready set.
    const int64_t num_far = static_cast<int64_t>(far.size());
    std::vector<EdgeId> ready_slots(far.size(), kInvalidEdge);
    parallel_for(0, num_far, [&](int64_t i) {
      const VertexId w = far[static_cast<std::size_t>(i)];
      if (!claim_token(vertex_stamp[w], token)) return;
      ready_slots[static_cast<std::size_t>(i)] = mmcheck(w, token);
    });
    std::vector<EdgeId> next_ready =
        pack(std::span<const EdgeId>(ready_slots), [&](int64_t i) {
          return ready_slots[static_cast<std::size_t>(i)] != kInvalidEdge;
        });

    if (level != ProfileLevel::kNone) {
      prof.work_edges += slot_offset[ready.size()];
      prof.work_items += ready.size() + far.size();
      if (level == ProfileLevel::kDetailed) {
        prof.per_round.push_back(RoundProfile{
            ready.size(), ready.size() + far.size(),
            slot_offset[ready.size()]});
      }
    }
    ready = std::move(next_ready);
  }
  prof.rounds = steps;
  prof.steps = steps;

  // Collapse the tri-state status array to 0/1 membership.
  parallel_for(0, static_cast<int64_t>(m), [&](int64_t e) {
    status[static_cast<std::size_t>(e)] =
        status[static_cast<std::size_t>(e)] ==
                static_cast<uint8_t>(EStatus::kIn)
            ? 1
            : 0;
  });
  return result;
}

}  // namespace pargreedy
