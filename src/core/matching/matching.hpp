// Maximal matching (Section 5).
//
// The greedy sequential algorithm processes edges in order pi, keeping an
// edge iff neither endpoint is already matched. Rather than reducing to
// MIS on the line graph (which "can be asymptotically larger than G"), all
// implementations here work directly on G in linear space:
//
//   mm_sequential       the greedy loop. O(n + m) work, Theta(m) depth.
//   mm_parallel_naive   Algorithm 4 run step-synchronously: every undecided
//                       edge re-examined each step. Steps = dependence
//                       length of the edge priority DAG (Lemma 5.1:
//                       O(log^2 m) w.h.p. for random pi).
//   mm_rootset          linear-work rootset version via per-vertex
//                       priority-sorted incident edges, lazy deletion and
//                       mmCheck (Lemmas 5.2, 5.3).
//   mm_prefix           prefix-based speculative window with endpoint
//                       reservations (deterministic reservations, the
//                       implementation measured in Section 6 / Figure 2).
//
// All of them return the same matching as mm_sequential for a fixed
// EdgeOrder, at any worker count.
#pragma once

#include <cstdint>
#include <vector>

#include "core/analysis/profiles.hpp"
#include "core/matching/edge_order.hpp"
#include "core/priority/priority_source.hpp"
#include "graph/csr_graph.hpp"

namespace pargreedy {

/// Tri-state edge fate; transitions are monotone Undecided -> In|Out.
enum class EStatus : uint8_t { kUndecided = 0, kIn = 1, kOut = 2 };

/// Result of a maximal-matching computation.
struct MatchResult {
  /// in_matching[e] == 1 iff edge e is in the matching.
  std::vector<uint8_t> in_matching;
  /// matched_with[v] = v's partner, or kInvalidVertex if v is unmatched.
  std::vector<VertexId> matched_with;
  /// Execution profile (populated per the ProfileLevel passed in).
  RunProfile profile;

  /// The matching as a sorted edge-id list.
  [[nodiscard]] std::vector<EdgeId> members() const;
  /// Number of matched edges.
  [[nodiscard]] uint64_t size() const;
};

MatchResult mm_sequential(const CsrGraph& g, const EdgeOrder& order,
                          ProfileLevel level = ProfileLevel::kNone);

MatchResult mm_parallel_naive(const CsrGraph& g, const EdgeOrder& order,
                              ProfileLevel level = ProfileLevel::kNone);

MatchResult mm_rootset(const CsrGraph& g, const EdgeOrder& order,
                       ProfileLevel level = ProfileLevel::kNone);

MatchResult mm_prefix(const CsrGraph& g, const EdgeOrder& order,
                      uint64_t prefix_size,
                      ProfileLevel level = ProfileLevel::kNone);

/// Algorithm 4 expressed through the generic deterministic-reservations
/// engine (speculative_for). Identical result to mm_sequential; round
/// counts may differ from mm_prefix (see mm_specfor.cpp).
MatchResult mm_speculative(const CsrGraph& g, const EdgeOrder& order,
                           uint64_t prefix_size);

/// Weighted greedy matching oracle: a deliberately independent sequential
/// implementation that processes edges directly by the source's priority
/// keys (never materializing an EdgeOrder). Returns the same matching as
/// mm_sequential(g, source.edge_order(g)); exists as the second code path
/// the weighted differential suites compare the dynamic engines against.
MatchResult mm_weighted_sequential(const CsrGraph& g,
                                   const PrioritySource& source);

}  // namespace pargreedy
