// EdgeOrder: the total ordering pi on *edges* that defines the greedy
// maximal matching (Section 5). Mirror image of VertexOrder.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace pargreedy {

class EdgeOrder {
 public:
  EdgeOrder() = default;

  /// Uniformly random ordering of m edges, deterministic in (m, seed).
  static EdgeOrder random(uint64_t m, uint64_t seed);

  /// Identity ordering: edges by their canonical (u, v) id.
  static EdgeOrder identity(uint64_t m);

  /// Wraps an explicit permutation of 0..m-1; validated.
  static EdgeOrder from_permutation(std::vector<EdgeId> order);

  [[nodiscard]] uint64_t size() const { return order_.size(); }

  /// The i-th edge in priority order.
  [[nodiscard]] EdgeId nth(uint64_t i) const { return order_[i]; }

  /// Position of edge e; lower = earlier = higher priority.
  [[nodiscard]] uint32_t rank(EdgeId e) const { return rank_[e]; }

  /// True iff e comes before f.
  [[nodiscard]] bool earlier(EdgeId e, EdgeId f) const {
    return rank_[e] < rank_[f];
  }

  [[nodiscard]] std::span<const EdgeId> order() const { return order_; }
  [[nodiscard]] std::span<const uint32_t> ranks() const { return rank_; }

 private:
  std::vector<EdgeId> order_;
  std::vector<uint32_t> rank_;
};

}  // namespace pargreedy
