// Maximal independent set — the paper's primary contribution (Sections 3–4).
//
// Five interchangeable implementations:
//
//   mis_sequential       Algorithm 1: the greedy loop. O(n + m) work,
//                        Theta(n) depth. Defines the lexicographically-first
//                        MIS for ordering pi.
//   mis_parallel_naive   Algorithm 2 run step-synchronously over the whole
//                        graph: every undecided vertex re-examined each
//                        step. O(m * D) work where D is the dependence
//                        length; the baseline the paper calls "naive".
//   mis_rootset          Algorithm 2 in O(n + m) work via explicit root
//                        sets, lazy deletion and misCheck (Lemma 4.2).
//   mis_prefix           Algorithm 3: speculative processing of a sliding
//                        prefix window of the ordering; the work/parallelism
//                        trade-off knob of the paper's experiments
//                        (Section 6). prefix_size = 1 degenerates to the
//                        sequential algorithm, prefix_size = n to the naive
//                        parallel one.
//   luby_mis             Luby's Algorithm A: re-randomizes priorities every
//                        round; the classic parallel baseline of Figure 3.
//                        NOT lexicographically-first (different result).
//
// All greedy variants return *identical* results for the same VertexOrder,
// at any worker count — the determinism property the paper argues for.
#pragma once

#include <cstdint>
#include <vector>

#include "core/analysis/profiles.hpp"
#include "core/mis/vertex_order.hpp"
#include "core/priority/priority_source.hpp"
#include "graph/csr_graph.hpp"

namespace pargreedy {

/// Tri-state vertex fate. Transitions are monotone: Undecided -> In|Out.
enum class VStatus : uint8_t { kUndecided = 0, kIn = 1, kOut = 2 };

/// Result of an MIS computation.
struct MisResult {
  /// in_set[v] == 1 iff v is in the MIS.
  std::vector<uint8_t> in_set;
  /// Execution profile (populated per the ProfileLevel passed in).
  RunProfile profile;

  /// The MIS as a sorted vertex list (derived from in_set).
  [[nodiscard]] std::vector<VertexId> members() const;
  /// Number of MIS vertices.
  [[nodiscard]] uint64_t size() const;
};

/// Algorithm 1: sequential greedy MIS.
MisResult mis_sequential(const CsrGraph& g, const VertexOrder& order,
                         ProfileLevel level = ProfileLevel::kNone);

/// Algorithm 2, step-synchronous over all vertices. The number of steps it
/// takes equals the dependence length of the priority DAG (Section 3).
MisResult mis_parallel_naive(const CsrGraph& g, const VertexOrder& order,
                             ProfileLevel level = ProfileLevel::kNone);

/// Algorithm 2 in linear work via root sets and misCheck (Lemma 4.2).
MisResult mis_rootset(const CsrGraph& g, const VertexOrder& order,
                      ProfileLevel level = ProfileLevel::kNone);

/// Algorithm 3: prefix-based speculative execution with a window of
/// `prefix_size` vertices (clamped to [1, n]).
MisResult mis_prefix(const CsrGraph& g, const VertexOrder& order,
                     uint64_t prefix_size,
                     ProfileLevel level = ProfileLevel::kNone);

/// Luby's Algorithm A (fresh random priorities each round). Returns *an*
/// MIS — not the lexicographically-first one. Deterministic in the seed.
/// Priorities are recomputed in-register from a counter-based hash.
MisResult luby_mis(const CsrGraph& g, uint64_t seed,
                   ProfileLevel level = ProfileLevel::kNone);

/// Luby's Algorithm A, the classical array-based formulation: each round
/// materializes a fresh priority array for the live vertices. Computes the
/// SAME MIS as luby_mis for the same seed (same priority values, stored
/// instead of recomputed); exists as the second implementation behind the
/// paper's "we tried different implementations of Luby's algorithm".
MisResult luby_mis_arrays(const CsrGraph& g, uint64_t seed,
                          ProfileLevel level = ProfileLevel::kNone);

/// Algorithm 3 expressed through the generic deterministic-reservations
/// engine (speculative_for). Identical result to mis_sequential; round
/// counts may differ from mis_prefix (see mis_specfor.cpp).
MisResult mis_speculative(const CsrGraph& g, const VertexOrder& order,
                          uint64_t prefix_size);

/// Weighted greedy MIS oracle: a deliberately independent sequential
/// implementation that selects vertices directly by the source's priority
/// keys (never materializing a VertexOrder). Returns the same set as
/// mis_sequential(g, source.vertex_order(g)); exists as the second code
/// path the weighted differential suites compare the dynamic engines
/// against.
MisResult mis_weighted_sequential(const CsrGraph& g,
                                  const PrioritySource& source);

}  // namespace pargreedy
