// Algorithm 2 in linear work: explicit root sets + misCheck (Lemma 4.2).
//
// The priority DAG is never materialized; instead each vertex keeps a
// cursor into its *parents* (earlier neighbors). Deletion is lazy: a parent
// that has left the graph is skipped by advancing the cursor, and the cost
// is charged to the edge, so all misChecks together cost O(m) (Lemma 4.1).
// Each step:
//   1. the current roots enter the MIS;
//   2. their undecided neighbors are removed (claimed Undecided -> Out by a
//      CAS, the arbitrary-CRCW-write emulation that dedupes ownership);
//   3. every child of a removed vertex is misCheck'ed by exactly one owner
//      (per-step claim stamps); the ones whose parents are exhausted form
//      the next root set.
// The number of steps equals the dependence length, and total work is
// O(n + m) — the Lemma 4.2 bound.
#include <atomic>

#include "core/mis/mis.hpp"
#include "parallel/atomics.hpp"
#include "parallel/pack.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"
#include "parallel/scan.hpp"
#include "support/check.hpp"

namespace pargreedy {

namespace {

inline VStatus load_status(const std::vector<uint8_t>& status, VertexId v) {
  return static_cast<VStatus>(
      std::atomic_ref<const uint8_t>(status[v]).load(
          std::memory_order_relaxed));
}

/// CAS Undecided -> `to`; true iff this caller performed the transition.
inline bool claim_status(std::vector<uint8_t>& status, VertexId v,
                         VStatus to) {
  uint8_t expected = static_cast<uint8_t>(VStatus::kUndecided);
  return std::atomic_ref<uint8_t>(status[v]).compare_exchange_strong(
      expected, static_cast<uint8_t>(to), std::memory_order_acq_rel,
      std::memory_order_acquire);
}

}  // namespace

MisResult mis_rootset(const CsrGraph& g, const VertexOrder& order,
                      ProfileLevel level) {
  const uint64_t n = g.num_vertices();
  PG_CHECK_MSG(order.size() == n, "ordering size != vertex count");
  MisResult result;
  result.in_set.assign(n, 0);
  std::vector<uint8_t>& status = result.in_set;
  RunProfile& prof = result.profile;

  // Parents CSR: for each vertex, its earlier neighbors ("the neighbors of
  // a vertex have been pre-partitioned into their parents and children").
  std::vector<Offset> parent_offset(n + 1, 0);
  {
    std::vector<Offset> parent_count(n, 0);
    parallel_for(0, static_cast<int64_t>(n), [&](int64_t vi) {
      const VertexId v = static_cast<VertexId>(vi);
      Offset c = 0;
      for (VertexId w : g.neighbors(v)) c += order.earlier(w, v) ? 1 : 0;
      parent_count[static_cast<std::size_t>(vi)] = c;
    });
    const Offset total =
        exclusive_scan(std::span<const Offset>(parent_count),
                       std::span<Offset>(parent_offset.data(), n));
    parent_offset[n] = total;
  }
  std::vector<VertexId> parents(parent_offset[n]);
  parallel_for(0, static_cast<int64_t>(n), [&](int64_t vi) {
    const VertexId v = static_cast<VertexId>(vi);
    Offset at = parent_offset[static_cast<std::size_t>(vi)];
    for (VertexId w : g.neighbors(v))
      if (order.earlier(w, v)) parents[at++] = w;
  });

  // cursor[v]: first not-yet-skipped parent (lazy deletion pointer).
  std::vector<Offset> cursor(parent_offset.begin(), parent_offset.end() - 1);
  // claim_stamp[v]: last step in which a misCheck of v was claimed.
  std::vector<std::atomic<uint64_t>> claim_stamp(n);

  std::vector<VertexId> roots = pack_index<VertexId>(
      static_cast<int64_t>(n), [&](int64_t v) {
        return parent_offset[static_cast<std::size_t>(v)] ==
               parent_offset[static_cast<std::size_t>(v) + 1];
      });

  uint64_t step = 0;
  while (!roots.empty()) {
    ++step;
    const int64_t num_roots = static_cast<int64_t>(roots.size());

    // 1. Roots join the MIS. (Roots are pairwise non-adjacent: an edge
    //    between two roots would make the later one still have an
    //    undecided parent.)
    parallel_for(0, num_roots, [&](int64_t i) {
      std::atomic_ref<uint8_t>(status[roots[static_cast<std::size_t>(i)]])
          .store(static_cast<uint8_t>(VStatus::kIn),
                 std::memory_order_relaxed);
    });

    // 2. Remove the roots' undecided neighbors (claimed exactly once).
    std::vector<Offset> slot_offset(roots.size() + 1, 0);
    {
      std::vector<Offset> deg(roots.size());
      parallel_for(0, num_roots, [&](int64_t i) {
        deg[static_cast<std::size_t>(i)] =
            g.degree(roots[static_cast<std::size_t>(i)]);
      });
      const Offset total =
          exclusive_scan(std::span<const Offset>(deg),
                         std::span<Offset>(slot_offset.data(), roots.size()));
      slot_offset[roots.size()] = total;
    }
    std::vector<VertexId> removed_slots(slot_offset[roots.size()],
                                        kInvalidVertex);
    parallel_for(0, num_roots, [&](int64_t i) {
      const VertexId r = roots[static_cast<std::size_t>(i)];
      Offset at = slot_offset[static_cast<std::size_t>(i)];
      for (VertexId w : g.neighbors(r)) {
        if (claim_status(status, w, VStatus::kOut))
          removed_slots[at] = w;
        ++at;
      }
    });
    const std::vector<VertexId> removed =
        pack(std::span<const VertexId>(removed_slots), [&](int64_t i) {
          return removed_slots[static_cast<std::size_t>(i)] != kInvalidVertex;
        });

    // 3. misCheck the children of removed vertices; exactly one claimant
    //    per child per step advances its parent cursor.
    const int64_t num_removed = static_cast<int64_t>(removed.size());
    std::vector<Offset> check_offset(removed.size() + 1, 0);
    {
      std::vector<Offset> deg(removed.size());
      parallel_for(0, num_removed, [&](int64_t i) {
        deg[static_cast<std::size_t>(i)] =
            g.degree(removed[static_cast<std::size_t>(i)]);
      });
      const Offset total = exclusive_scan(
          std::span<const Offset>(deg),
          std::span<Offset>(check_offset.data(), removed.size()));
      check_offset[removed.size()] = total;
    }
    std::vector<VertexId> root_slots(check_offset[removed.size()],
                                     kInvalidVertex);
    std::atomic<uint64_t> advance_work{0};
    parallel_for(0, num_removed, [&](int64_t i) {
      const VertexId w = removed[static_cast<std::size_t>(i)];
      Offset at = check_offset[static_cast<std::size_t>(i)];
      for (VertexId x : g.neighbors(w)) {
        const Offset slot = at++;
        if (!order.earlier(w, x)) continue;              // only children
        if (load_status(status, x) != VStatus::kUndecided) continue;
        // Claim the misCheck of x for this step.
        uint64_t seen = claim_stamp[x].load(std::memory_order_relaxed);
        if (seen == step) continue;
        if (!claim_stamp[x].compare_exchange_strong(
                seen, step, std::memory_order_acq_rel,
                std::memory_order_acquire))
          continue;
        // misCheck: skip deleted (Out) parents; stop at a live one.
        Offset& cur = cursor[x];
        const Offset end = parent_offset[static_cast<std::size_t>(x) + 1];
        uint64_t advanced = 0;
        while (cur < end &&
               load_status(status, parents[cur]) == VStatus::kOut) {
          ++cur;
          ++advanced;
        }
        if (advanced > 0)
          advance_work.fetch_add(advanced, std::memory_order_relaxed);
        if (cur == end) root_slots[slot] = x;  // no live parents: new root
      }
    });
    std::vector<VertexId> next_roots =
        pack(std::span<const VertexId>(root_slots), [&](int64_t i) {
          return root_slots[static_cast<std::size_t>(i)] != kInvalidVertex;
        });

    if (level != ProfileLevel::kNone) {
      prof.work_edges += slot_offset[roots.size()] +
                         check_offset[removed.size()] +
                         advance_work.load(std::memory_order_relaxed);
      prof.work_items += roots.size() + removed.size();
      if (level == ProfileLevel::kDetailed) {
        prof.per_round.push_back(
            RoundProfile{roots.size(), roots.size() + removed.size(),
                         slot_offset[roots.size()] +
                             check_offset[removed.size()]});
      }
    }
    roots = std::move(next_roots);
  }
  prof.rounds = step;
  prof.steps = step;

  // Collapse tri-state to 0/1 membership.
  parallel_for(0, static_cast<int64_t>(n), [&](int64_t v) {
    status[static_cast<std::size_t>(v)] =
        status[static_cast<std::size_t>(v)] ==
                static_cast<uint8_t>(VStatus::kIn)
            ? 1
            : 0;
  });
  return result;
}

}  // namespace pargreedy
