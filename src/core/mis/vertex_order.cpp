#include "core/mis/vertex_order.hpp"

#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"
#include "random/permutation.hpp"
#include "support/check.hpp"

namespace pargreedy {

namespace {

bool permutation_is_identity(std::span<const VertexId> order) {
  return count_if(0, static_cast<int64_t>(order.size()), [&](int64_t i) {
           return order[static_cast<std::size_t>(i)] !=
                  static_cast<VertexId>(i);
         }) == 0;
}

}  // namespace

VertexOrder VertexOrder::random(uint64_t n, uint64_t seed) {
  VertexOrder o;
  o.order_ = random_permutation(n, seed);
  o.rank_ = invert_permutation(o.order_);
  o.identity_ = permutation_is_identity(o.order_);
  return o;
}

VertexOrder VertexOrder::identity(uint64_t n) {
  VertexOrder o;
  o.order_.resize(n);
  o.rank_.resize(n);
  parallel_for(0, static_cast<int64_t>(n), [&](int64_t i) {
    o.order_[static_cast<std::size_t>(i)] = static_cast<VertexId>(i);
    o.rank_[static_cast<std::size_t>(i)] = static_cast<uint32_t>(i);
  });
  o.identity_ = true;
  return o;
}

VertexOrder VertexOrder::from_permutation(std::vector<VertexId> order) {
  PG_CHECK_MSG(is_valid_permutation(order),
               "from_permutation requires a permutation of 0..n-1");
  VertexOrder o;
  o.order_ = std::move(order);
  o.rank_ = invert_permutation(o.order_);
  o.identity_ = permutation_is_identity(o.order_);
  return o;
}

}  // namespace pargreedy
