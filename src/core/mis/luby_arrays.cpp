// Luby's Algorithm A, array-based variant — the textbook formulation in
// which each round materializes a fresh random priority value per live
// vertex before the local-minima test.
//
// The paper reports "We tried different implementations of Luby's
// algorithm and report the times for the fastest one"; this library does
// the same with two: luby_mis (priorities computed in-register from a
// counter-based hash during the scan — usually faster) and this variant
// (priorities stored in an array per round — the classical description,
// one extra O(live) pass and an extra indirection per neighbor probe).
// Both are deterministic in the seed; for the same seed they compute the
// SAME MIS, because the array holds exactly the values the in-register
// variant recomputes. bench/micro_algorithms measures both.
#include <atomic>

#include "core/mis/mis.hpp"
#include "parallel/pack.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"
#include "random/hash.hpp"
#include "support/check.hpp"

namespace pargreedy {

namespace {

inline VStatus load_status(const std::vector<uint8_t>& status, VertexId v) {
  return static_cast<VStatus>(
      std::atomic_ref<const uint8_t>(status[v]).load(
          std::memory_order_relaxed));
}

inline void store_status(std::vector<uint8_t>& status, VertexId v,
                         VStatus s) {
  std::atomic_ref<uint8_t>(status[v]).store(static_cast<uint8_t>(s),
                                            std::memory_order_relaxed);
}

}  // namespace

MisResult luby_mis_arrays(const CsrGraph& g, uint64_t seed,
                          ProfileLevel level) {
  const uint64_t n = g.num_vertices();
  MisResult result;
  result.in_set.assign(n, 0);
  std::vector<uint8_t>& status = result.in_set;
  RunProfile& prof = result.profile;

  std::vector<VertexId> live(n);
  parallel_for(0, static_cast<int64_t>(n), [&](int64_t v) {
    live[static_cast<std::size_t>(v)] = static_cast<VertexId>(v);
  });
  // The per-round priority array — the defining feature of this variant.
  // Sized n so dead vertices keep a stale value that is never read.
  std::vector<uint64_t> priority(n);

  uint64_t round = 0;
  while (!live.empty()) {
    ++round;
    const uint64_t round_seed = hash64(seed, round);
    const int64_t sz = static_cast<int64_t>(live.size());

    // Reassign priorities of live vertices (the paper's phrase for what
    // distinguishes Luby from the fixed-pi greedy algorithms).
    parallel_for(0, sz, [&](int64_t i) {
      const VertexId v = live[static_cast<std::size_t>(i)];
      priority[v] = hash64(round_seed, v);
    });

    // Phase A: strict local minima among live vertices join the MIS.
    const uint64_t work_a = static_cast<uint64_t>(parallel_reduce<int64_t>(
        0, sz, 0,
        [&](int64_t i) {
          const VertexId v = live[static_cast<std::size_t>(i)];
          const uint64_t pv = priority[v];
          int64_t scanned = 0;
          bool is_min = true;
          for (VertexId w : g.neighbors(v)) {
            if (load_status(status, w) == VStatus::kOut) continue;
            ++scanned;
            const uint64_t pw = priority[w];
            if (pw < pv || (pw == pv && w < v)) {
              is_min = false;
              break;
            }
          }
          if (is_min) store_status(status, v, VStatus::kIn);
          return scanned;
        },
        [](int64_t a, int64_t b) { return a + b; }));

    // Phase B: neighbors of new MIS vertices die.
    const uint64_t work_b = static_cast<uint64_t>(parallel_reduce<int64_t>(
        0, sz, 0,
        [&](int64_t i) {
          const VertexId v = live[static_cast<std::size_t>(i)];
          if (load_status(status, v) != VStatus::kUndecided) return int64_t{0};
          int64_t scanned = 0;
          for (VertexId w : g.neighbors(v)) {
            ++scanned;
            if (load_status(status, w) == VStatus::kIn) {
              store_status(status, v, VStatus::kOut);
              break;
            }
          }
          return scanned;
        },
        [](int64_t a, int64_t b) { return a + b; }));

    const std::vector<VertexId> next =
        pack(std::span<const VertexId>(live), [&](int64_t i) {
          return load_status(status, live[static_cast<std::size_t>(i)]) ==
                 VStatus::kUndecided;
        });
    if (level != ProfileLevel::kNone) {
      prof.work_edges += work_a + work_b;
      // The array refill is the variant's extra work: one item touch per
      // live vertex per round, on top of the scan attempts.
      prof.work_items += 2 * static_cast<uint64_t>(sz);
      if (level == ProfileLevel::kDetailed) {
        prof.per_round.push_back(RoundProfile{
            static_cast<uint64_t>(sz),
            static_cast<uint64_t>(sz) - next.size(), work_a + work_b});
      }
    }
    PG_CHECK_MSG(next.size() < live.size(),
                 "Luby round made no progress; priority tie-break broken");
    live = next;
  }
  prof.rounds = round;
  prof.steps = round;

  parallel_for(0, static_cast<int64_t>(n), [&](int64_t v) {
    status[static_cast<std::size_t>(v)] =
        status[static_cast<std::size_t>(v)] ==
                static_cast<uint8_t>(VStatus::kIn)
            ? 1
            : 0;
  });
  return result;
}

}  // namespace pargreedy
