// MIS verification predicates.
//
// Used by the test suite, the examples and the bench harness to check every
// algorithm against the definition (independence + maximality) and against
// the paper's determinism promise (equality with the sequential result).
#pragma once

#include <cstdint>
#include <span>

#include "core/mis/mis.hpp"
#include "core/mis/vertex_order.hpp"
#include "graph/csr_graph.hpp"

namespace pargreedy {

/// No two flagged vertices are adjacent.
bool is_independent_set(const CsrGraph& g, std::span<const uint8_t> in_set);

/// Every unflagged vertex has a flagged neighbor.
bool is_maximal(const CsrGraph& g, std::span<const uint8_t> in_set);

/// Independence and maximality together.
bool is_maximal_independent_set(const CsrGraph& g,
                                std::span<const uint8_t> in_set);

/// True iff `in_set` is exactly the lexicographically-first MIS for
/// `order` (computed by rerunning the sequential algorithm).
bool is_lex_first_mis(const CsrGraph& g, const VertexOrder& order,
                      std::span<const uint8_t> in_set);

}  // namespace pargreedy
