// Luby's Algorithm A — the classic parallel MIS baseline of Figure 3.
//
// Each round draws *fresh* random priorities for the still-live vertices; a
// vertex whose priority is a strict local minimum among its live neighbors
// joins the MIS, and its neighborhood dies. The paper points out that
// Algorithm 2 with a re-randomized ordering per recursive call "is
// effectively the same as Luby's Algorithm A" — the greedy algorithms'
// novelty is keeping ONE permutation, which yields the sequential result.
//
// This implementation matches the paper's optimized comparator: it
// processes only the packed live vertices each round ("essentially
// processes the entire input as a prefix [with] reassigning the priorities
// of vertices between rounds"). Deterministic in the seed: priorities are
// counter-based hashes of (seed, round, vertex).
#include <atomic>

#include "core/mis/mis.hpp"
#include "parallel/pack.hpp"
#include "parallel/reduce.hpp"
#include "random/hash.hpp"
#include "support/check.hpp"

namespace pargreedy {

namespace {

inline VStatus load_status(const std::vector<uint8_t>& status, VertexId v) {
  return static_cast<VStatus>(
      std::atomic_ref<const uint8_t>(status[v]).load(
          std::memory_order_relaxed));
}

inline void store_status(std::vector<uint8_t>& status, VertexId v,
                         VStatus s) {
  std::atomic_ref<uint8_t>(status[v]).store(static_cast<uint8_t>(s),
                                            std::memory_order_relaxed);
}

}  // namespace

MisResult luby_mis(const CsrGraph& g, uint64_t seed, ProfileLevel level) {
  const uint64_t n = g.num_vertices();
  MisResult result;
  result.in_set.assign(n, 0);
  std::vector<uint8_t>& status = result.in_set;
  RunProfile& prof = result.profile;

  std::vector<VertexId> live(n);
  parallel_for(0, static_cast<int64_t>(n), [&](int64_t v) {
    live[static_cast<std::size_t>(v)] = static_cast<VertexId>(v);
  });

  uint64_t round = 0;
  while (!live.empty()) {
    ++round;
    const uint64_t round_seed = hash64(seed, round);
    // Priority of v this round; ties broken by id, so the order is total.
    auto priority = [&](VertexId v) { return hash64(round_seed, v); };
    const int64_t sz = static_cast<int64_t>(live.size());

    // Phase A: strict local minima join the MIS. A neighbor is live this
    // round iff it is not Out: Out is only written in earlier rounds'
    // phase B (stable here), while a racy In read means the neighbor was
    // live at round start and must still count as a competitor — otherwise
    // two adjacent local minima could both join.
    const uint64_t work_a = static_cast<uint64_t>(parallel_reduce<int64_t>(
        0, sz, 0,
        [&](int64_t i) {
          const VertexId v = live[static_cast<std::size_t>(i)];
          const uint64_t pv = priority(v);
          int64_t scanned = 0;
          bool is_min = true;
          for (VertexId w : g.neighbors(v)) {
            if (load_status(status, w) == VStatus::kOut) continue;
            ++scanned;
            const uint64_t pw = priority(w);
            if (pw < pv || (pw == pv && w < v)) {
              is_min = false;
              break;
            }
          }
          if (is_min) store_status(status, v, VStatus::kIn);
          return scanned;
        },
        [](int64_t a, int64_t b) { return a + b; }));

    // Phase B: neighbors of new MIS vertices die.
    const uint64_t work_b = static_cast<uint64_t>(parallel_reduce<int64_t>(
        0, sz, 0,
        [&](int64_t i) {
          const VertexId v = live[static_cast<std::size_t>(i)];
          if (load_status(status, v) != VStatus::kUndecided) return int64_t{0};
          int64_t scanned = 0;
          for (VertexId w : g.neighbors(v)) {
            ++scanned;
            if (load_status(status, w) == VStatus::kIn) {
              store_status(status, v, VStatus::kOut);
              break;
            }
          }
          return scanned;
        },
        [](int64_t a, int64_t b) { return a + b; }));

    const std::vector<VertexId> next =
        pack(std::span<const VertexId>(live), [&](int64_t i) {
          return load_status(status, live[static_cast<std::size_t>(i)]) ==
                 VStatus::kUndecided;
        });
    if (level != ProfileLevel::kNone) {
      prof.work_edges += work_a + work_b;
      prof.work_items += static_cast<uint64_t>(sz);
      if (level == ProfileLevel::kDetailed) {
        prof.per_round.push_back(RoundProfile{
            static_cast<uint64_t>(sz),
            static_cast<uint64_t>(sz) - next.size(), work_a + work_b});
      }
    }
    PG_CHECK_MSG(next.size() < live.size(),
                 "Luby round made no progress; priority tie-break broken");
    live = next;
  }
  prof.rounds = round;
  prof.steps = round;

  parallel_for(0, static_cast<int64_t>(n), [&](int64_t v) {
    status[static_cast<std::size_t>(v)] =
        status[static_cast<std::size_t>(v)] ==
                static_cast<uint8_t>(VStatus::kIn)
            ? 1
            : 0;
  });
  return result;
}

}  // namespace pargreedy
