#include "core/mis/verify.hpp"

#include "parallel/reduce.hpp"
#include "support/check.hpp"

namespace pargreedy {

bool is_independent_set(const CsrGraph& g, std::span<const uint8_t> in_set) {
  PG_CHECK(in_set.size() == g.num_vertices());
  const int64_t n = static_cast<int64_t>(g.num_vertices());
  const int64_t violations = count_if(0, n, [&](int64_t vi) {
    const VertexId v = static_cast<VertexId>(vi);
    if (!in_set[v]) return false;
    for (VertexId w : g.neighbors(v))
      if (in_set[w]) return true;
    return false;
  });
  return violations == 0;
}

bool is_maximal(const CsrGraph& g, std::span<const uint8_t> in_set) {
  PG_CHECK(in_set.size() == g.num_vertices());
  const int64_t n = static_cast<int64_t>(g.num_vertices());
  const int64_t uncovered = count_if(0, n, [&](int64_t vi) {
    const VertexId v = static_cast<VertexId>(vi);
    if (in_set[v]) return false;
    for (VertexId w : g.neighbors(v))
      if (in_set[w]) return false;
    return true;  // neither in the set nor dominated: not maximal
  });
  return uncovered == 0;
}

bool is_maximal_independent_set(const CsrGraph& g,
                                std::span<const uint8_t> in_set) {
  return is_independent_set(g, in_set) && is_maximal(g, in_set);
}

bool is_lex_first_mis(const CsrGraph& g, const VertexOrder& order,
                      std::span<const uint8_t> in_set) {
  const MisResult reference = mis_sequential(g, order);
  if (reference.in_set.size() != in_set.size()) return false;
  const int64_t n = static_cast<int64_t>(in_set.size());
  return count_if(0, n, [&](int64_t v) {
           return (reference.in_set[static_cast<std::size_t>(v)] != 0) !=
                  (in_set[static_cast<std::size_t>(v)] != 0);
         }) == 0;
}

}  // namespace pargreedy
