// Algorithm 3: prefix-based ("deterministic reservations") MIS — the
// implementation used for the paper's experiments (Section 6).
//
// A window holds the prefix_size earliest unresolved vertices of the
// ordering. Each round runs two barrier-separated phases over the window
// (the reserve/commit pattern of the paper's companion PPoPP'12
// framework [2]):
//
//   phase A (join):  a vertex whose earlier neighbors are all Out joins the
//                    MIS — it is a root of the remaining priority DAG;
//   phase B (kill):  a vertex that now sees an earlier In neighbor becomes
//                    Out — it is a child of a new root.
//
// Resolved vertices leave the window and the next vertices of the ordering
// refill it. Because each round decides exactly what one step of
// Algorithm 2 decides on the window, the round count is a pure function of
// (graph, order, prefix_size) — never of the worker count — which is what
// makes the rounds-vs-prefix-size series of Figure 1(b) reproducible. With
// prefix_size = 1 every round resolves one vertex (the sequential
// algorithm, rounds = n, work = m); with prefix_size = n the round count
// equals the dependence length of the priority DAG.
//
// When the ordering is the identity (the pre-permuted-graph setup of the
// paper's PBBS implementation, see relabel_by_rank), priority comparison
// is a plain id comparison with no rank-array indirection — the identity
// fast path below. Both paths run the same round structure, so profiles
// and results are identical.
//
// Status reads race benignly with same-phase writes: phase A only writes
// kIn, and reading a fresh kIn instead of kUndecided flips the same
// all-out test the same way; phase B only writes kOut after the join set
// is sealed. So the result equals mis_sequential's for any schedule and
// worker count. The paper's grain size of 256 (kDefaultGrain) governs when
// the window loop parallelizes.
#include <atomic>

#include "core/mis/mis.hpp"
#include "parallel/pack.hpp"
#include "parallel/reduce.hpp"
#include "support/check.hpp"

namespace pargreedy {

namespace {

inline VStatus load_status(const std::vector<uint8_t>& status, VertexId v) {
  return static_cast<VStatus>(
      std::atomic_ref<const uint8_t>(status[v]).load(
          std::memory_order_relaxed));
}

inline void store_status(std::vector<uint8_t>& status, VertexId v,
                         VStatus s) {
  std::atomic_ref<uint8_t>(status[v]).store(static_cast<uint8_t>(s),
                                            std::memory_order_relaxed);
}

/// The round loop, templated on the priority comparator so the identity
/// fast path compiles to a plain id comparison. `earlier(w, v)` must
/// return true iff w precedes v in the ordering.
template <typename Earlier>
void run_prefix_rounds(const CsrGraph& g, const VertexOrder& order,
                       uint64_t window, ProfileLevel level,
                       std::vector<uint8_t>& status, RunProfile& prof,
                       Earlier&& earlier) {
  const uint64_t n = g.num_vertices();
  std::vector<VertexId> active;
  active.reserve(window);
  uint64_t next = window < n ? window : n;
  for (uint64_t i = 0; i < next; ++i) active.push_back(order.nth(i));

  while (!active.empty()) {
    ++prof.rounds;
    const int64_t sz = static_cast<int64_t>(active.size());

    // Phase A: window vertices whose earlier neighbors are all Out join.
    const uint64_t work_a = static_cast<uint64_t>(parallel_reduce<int64_t>(
        0, sz, 0,
        [&](int64_t i) {
          const VertexId v = active[static_cast<std::size_t>(i)];
          int64_t scanned = 0;
          bool all_out = true;
          for (VertexId w : g.neighbors(v)) {
            if (!earlier(w, v)) continue;
            ++scanned;
            if (load_status(status, w) != VStatus::kOut) {
              all_out = false;
              break;
            }
          }
          if (all_out) store_status(status, v, VStatus::kIn);
          return scanned;
        },
        [](int64_t a, int64_t b) { return a + b; }));

    // Phase B: window vertices that see an earlier In neighbor leave.
    const uint64_t work_b = static_cast<uint64_t>(parallel_reduce<int64_t>(
        0, sz, 0,
        [&](int64_t i) {
          const VertexId v = active[static_cast<std::size_t>(i)];
          if (load_status(status, v) != VStatus::kUndecided) return int64_t{0};
          int64_t scanned = 0;
          for (VertexId w : g.neighbors(v)) {
            if (!earlier(w, v)) continue;
            ++scanned;
            if (load_status(status, w) == VStatus::kIn) {
              store_status(status, v, VStatus::kOut);
              break;
            }
          }
          return scanned;
        },
        [](int64_t a, int64_t b) { return a + b; }));

    std::vector<VertexId> failed =
        pack(std::span<const VertexId>(active), [&](int64_t i) {
          return load_status(status, active[static_cast<std::size_t>(i)]) ==
                 VStatus::kUndecided;
        });
    if (level != ProfileLevel::kNone) {
      prof.work_edges += work_a + work_b;
      prof.work_items += static_cast<uint64_t>(sz);
      if (level == ProfileLevel::kDetailed) {
        prof.per_round.push_back(RoundProfile{
            static_cast<uint64_t>(sz),
            static_cast<uint64_t>(sz) - failed.size(), work_a + work_b});
      }
    }
    // Refill the window with the next vertices of the ordering. The window
    // invariant — it holds the `window` earliest unresolved vertices — is
    // what lets phase A treat "no earlier Undecided in sight" as "no
    // earlier Undecided anywhere".
    while (failed.size() < window && next < n)
      failed.push_back(order.nth(next++));
    active.swap(failed);
  }
  prof.steps = prof.rounds;
}

}  // namespace

MisResult mis_prefix(const CsrGraph& g, const VertexOrder& order,
                     uint64_t prefix_size, ProfileLevel level) {
  const uint64_t n = g.num_vertices();
  PG_CHECK_MSG(order.size() == n, "ordering size != vertex count");
  const uint64_t window = prefix_size < 1 ? 1 : (prefix_size > n && n > 0
                                                     ? n
                                                     : prefix_size);
  MisResult result;
  result.in_set.assign(n, 0);
  std::vector<uint8_t>& status = result.in_set;

  if (order.is_identity()) {
    run_prefix_rounds(g, order, window, level, status, result.profile,
                      [](VertexId w, VertexId v) { return w < v; });
  } else {
    const std::span<const uint32_t> rank = order.ranks();
    run_prefix_rounds(g, order, window, level, status, result.profile,
                      [rank](VertexId w, VertexId v) {
                        return rank[w] < rank[v];
                      });
  }

  parallel_for(0, static_cast<int64_t>(n), [&](int64_t v) {
    status[static_cast<std::size_t>(v)] =
        status[static_cast<std::size_t>(v)] ==
                static_cast<uint8_t>(VStatus::kIn)
            ? 1
            : 0;
  });
  return result;
}

}  // namespace pargreedy
