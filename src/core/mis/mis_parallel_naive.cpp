// Algorithm 2, step-synchronous ("naive") implementation.
//
// Each step does exactly what one recursive call of Algorithm 2 does, in
// two race-free phases over the still-undecided vertices:
//   phase A: vertices whose earlier neighbors are all Out join the MIS
//            (these are the roots of the remaining priority DAG);
//   phase B: vertices that now see an earlier In neighbor become Out
//            (the children of the new roots).
// The number of steps is therefore the *dependence length* of the priority
// DAG (Section 3) — this implementation doubles as its measurement tool.
// Work is O(m) per step, i.e. O(m log^2 n) in expectation overall; the
// linear-work alternatives are mis_rootset and mis_prefix.
#include <atomic>

#include "core/mis/mis.hpp"
#include "parallel/pack.hpp"
#include "parallel/reduce.hpp"
#include "support/check.hpp"

namespace pargreedy {

namespace {

inline VStatus load_status(const std::vector<uint8_t>& status, VertexId v) {
  return static_cast<VStatus>(
      std::atomic_ref<const uint8_t>(status[v]).load(
          std::memory_order_relaxed));
}

inline void store_status(std::vector<uint8_t>& status, VertexId v,
                         VStatus s) {
  std::atomic_ref<uint8_t>(status[v]).store(static_cast<uint8_t>(s),
                                            std::memory_order_relaxed);
}

}  // namespace

MisResult mis_parallel_naive(const CsrGraph& g, const VertexOrder& order,
                             ProfileLevel level) {
  const uint64_t n = g.num_vertices();
  PG_CHECK_MSG(order.size() == n, "ordering size != vertex count");
  MisResult result;
  result.in_set.assign(n, 0);
  std::vector<uint8_t>& status = result.in_set;  // reused: kIn==1 at the end
  static_assert(static_cast<uint8_t>(VStatus::kUndecided) == 0);

  std::vector<VertexId> active(order.order().begin(), order.order().end());
  RunProfile& prof = result.profile;

  while (!active.empty()) {
    ++prof.rounds;
    const int64_t sz = static_cast<int64_t>(active.size());

    // Phase A: undecided vertices with every earlier neighbor Out join.
    const uint64_t work_a = static_cast<uint64_t>(parallel_reduce<int64_t>(
        0, sz, 0,
        [&](int64_t i) {
          const VertexId v = active[static_cast<std::size_t>(i)];
          const uint32_t rv = order.rank(v);
          int64_t scanned = 0;
          bool all_out = true;
          for (VertexId w : g.neighbors(v)) {
            if (order.rank(w) >= rv) continue;
            ++scanned;
            if (load_status(status, w) != VStatus::kOut) {
              all_out = false;
              break;
            }
          }
          if (all_out) store_status(status, v, VStatus::kIn);
          return scanned;
        },
        [](int64_t a, int64_t b) { return a + b; }));

    // Phase B: undecided vertices seeing an earlier In neighbor leave.
    const uint64_t work_b = static_cast<uint64_t>(parallel_reduce<int64_t>(
        0, sz, 0,
        [&](int64_t i) {
          const VertexId v = active[static_cast<std::size_t>(i)];
          if (load_status(status, v) != VStatus::kUndecided) return int64_t{0};
          const uint32_t rv = order.rank(v);
          int64_t scanned = 0;
          for (VertexId w : g.neighbors(v)) {
            if (order.rank(w) >= rv) continue;
            ++scanned;
            if (load_status(status, w) == VStatus::kIn) {
              store_status(status, v, VStatus::kOut);
              break;
            }
          }
          return scanned;
        },
        [](int64_t a, int64_t b) { return a + b; }));

    const std::vector<VertexId> next =
        pack(std::span<const VertexId>(active), [&](int64_t i) {
          return load_status(status, active[static_cast<std::size_t>(i)]) ==
                 VStatus::kUndecided;
        });
    if (level != ProfileLevel::kNone) {
      prof.work_edges += work_a + work_b;
      prof.work_items += static_cast<uint64_t>(sz);
      if (level == ProfileLevel::kDetailed) {
        prof.per_round.push_back(RoundProfile{
            static_cast<uint64_t>(sz),
            static_cast<uint64_t>(sz) - next.size(), work_a + work_b});
      }
    }
    PG_CHECK_MSG(next.size() < active.size(),
                 "no progress in a step: priority DAG is inconsistent");
    active = next;
  }
  prof.steps = prof.rounds;

  // Collapse the tri-state array to the 0/1 membership convention.
  parallel_for(0, static_cast<int64_t>(n), [&](int64_t v) {
    status[static_cast<std::size_t>(v)] =
        status[static_cast<std::size_t>(v)] ==
                static_cast<uint8_t>(VStatus::kIn)
            ? 1
            : 0;
  });
  return result;
}

}  // namespace pargreedy
