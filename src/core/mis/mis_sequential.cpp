// Algorithm 1: the sequential greedy MIS.
//
//   for v in order:                      (first remaining vertex by pi)
//     if v not removed: add v to MIS, remove v and N(v)
//
// This is the algorithm whose output every parallel variant reproduces.
#include "core/mis/mis.hpp"
#include "parallel/pack.hpp"
#include "parallel/reduce.hpp"
#include "support/check.hpp"

namespace pargreedy {

std::vector<VertexId> MisResult::members() const {
  return pack_index<VertexId>(static_cast<int64_t>(in_set.size()),
                              [&](int64_t v) {
                                return in_set[static_cast<std::size_t>(v)] != 0;
                              });
}

uint64_t MisResult::size() const {
  return static_cast<uint64_t>(reduce_add<int64_t>(
      0, static_cast<int64_t>(in_set.size()),
      [&](int64_t v) { return in_set[static_cast<std::size_t>(v)] ? 1 : 0; }));
}

MisResult mis_sequential(const CsrGraph& g, const VertexOrder& order,
                         ProfileLevel level) {
  const uint64_t n = g.num_vertices();
  PG_CHECK_MSG(order.size() == n, "ordering size != vertex count");
  MisResult result;
  result.in_set.assign(n, 0);
  std::vector<uint8_t> removed(n, 0);

  uint64_t work_edges = 0;
  for (uint64_t i = 0; i < n; ++i) {
    const VertexId v = order.nth(i);
    if (removed[v]) continue;
    result.in_set[v] = 1;
    removed[v] = 1;
    for (VertexId w : g.neighbors(v)) removed[w] = 1;
    work_edges += g.degree(v);
  }
  if (level != ProfileLevel::kNone) {
    // The paper's normalization: a sequential run does one "round" per
    // vertex and touches each item once.
    result.profile.rounds = n;
    result.profile.steps = n;
    result.profile.work_items = n;
    result.profile.work_edges = work_edges;
  }
  return result;
}

}  // namespace pargreedy
