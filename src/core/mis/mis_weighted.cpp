// Weighted greedy MIS oracle.
//
// Algorithm 1 driven directly by PrioritySource keys instead of a
// materialized VertexOrder: vertices are visited in increasing
// (priority key, id) order — for the weight policies that is decreasing
// weight — and each surviving vertex joins the set and removes its
// neighbors. Kept independent of the VertexOrder/mis_sequential path on
// purpose: the weighted differential suites gain their strength from
// comparing two implementations that share no ordering code.
#include <algorithm>
#include <numeric>

#include "core/mis/mis.hpp"
#include "support/check.hpp"

namespace pargreedy {

MisResult mis_weighted_sequential(const CsrGraph& g,
                                  const PrioritySource& source) {
  const uint64_t n = g.num_vertices();
  std::vector<PriorityKey> keys(n);
  for (VertexId v = 0; v < n; ++v)
    keys[v] = source.vertex_key(v, g.vertex_weight(v));

  std::vector<VertexId> by_priority(n);
  std::iota(by_priority.begin(), by_priority.end(), VertexId{0});
  std::sort(by_priority.begin(), by_priority.end(),
            [&](VertexId a, VertexId b) {
              return keys[a] != keys[b] ? keys[a] < keys[b] : a < b;
            });

  MisResult result;
  result.in_set.assign(n, 0);
  std::vector<uint8_t> removed(n, 0);
  for (const VertexId v : by_priority) {
    if (removed[v]) continue;
    result.in_set[v] = 1;
    removed[v] = 1;
    for (const VertexId w : g.neighbors(v)) removed[w] = 1;
  }
  return result;
}

}  // namespace pargreedy
