// MIS expressed through the generic deterministic-reservations engine
// (speculative_for) — the "Algorithm 3 as a library" formulation of the
// paper's companion PPoPP'12 framework [2].
//
// Exists alongside the hand-rolled mis_prefix for two reasons: it
// documents that the core algorithms fit the same engine the extensions
// (spanning forest, coloring, clique) use, and it serves as a second,
// structurally different implementation to cross-check mis_prefix against
// in the test suite. mis_prefix remains the measured implementation — its
// two-phase rounds make profiles schedule-independent, which the engine's
// single commit phase (where a commit may observe a same-round commit)
// does not guarantee. Results are identical either way; only the round
// *count* can differ between the two.
#include <atomic>

#include "core/mis/mis.hpp"
#include "specfor/speculative_for.hpp"
#include "support/check.hpp"

namespace pargreedy {

namespace {

struct MisStep {
  const CsrGraph& g;
  const VertexOrder& order;
  std::vector<uint8_t>& status;  // VStatus bytes

  VStatus load(VertexId v) const {
    return static_cast<VStatus>(
        std::atomic_ref<const uint8_t>(status[v]).load(
            std::memory_order_relaxed));
  }
  void store(VertexId v, VStatus s) {
    std::atomic_ref<uint8_t>(status[v]).store(static_cast<uint8_t>(s),
                                              std::memory_order_relaxed);
  }

  bool reserve(int64_t i) {
    return load(order.nth(static_cast<uint64_t>(i))) == VStatus::kUndecided;
  }

  // Resolve v if every earlier neighbor has resolved; retry otherwise.
  bool commit(int64_t i) {
    const VertexId v = order.nth(static_cast<uint64_t>(i));
    const uint32_t rv = order.rank(v);
    bool all_out = true;
    for (VertexId w : g.neighbors(v)) {
      if (order.rank(w) >= rv) continue;
      const VStatus s = load(w);
      if (s == VStatus::kIn) {
        store(v, VStatus::kOut);
        return true;
      }
      if (s == VStatus::kUndecided) all_out = false;
    }
    if (!all_out) return false;  // an earlier neighbor is pending: retry
    store(v, VStatus::kIn);
    return true;
  }
};

}  // namespace

MisResult mis_speculative(const CsrGraph& g, const VertexOrder& order,
                          uint64_t prefix_size) {
  const uint64_t n = g.num_vertices();
  PG_CHECK_MSG(order.size() == n, "ordering size != vertex count");
  MisResult result;
  result.in_set.assign(n, 0);

  MisStep step{g, order, result.in_set};
  const SpecForStats stats =
      speculative_for(step, 0, static_cast<int64_t>(n),
                      static_cast<int64_t>(prefix_size));
  result.profile.rounds = stats.rounds;
  result.profile.steps = stats.rounds;
  result.profile.work_items = stats.attempts;

  parallel_for(0, static_cast<int64_t>(n), [&](int64_t v) {
    result.in_set[static_cast<std::size_t>(v)] =
        result.in_set[static_cast<std::size_t>(v)] ==
                static_cast<uint8_t>(VStatus::kIn)
            ? 1
            : 0;
  });
  return result;
}

}  // namespace pargreedy
