// VertexOrder: the total ordering pi on vertices that defines the
// lexicographically-first MIS.
//
// Holds both directions of the bijection: order[i] is the i-th vertex by
// priority, and rank[v] is v's position (lower rank = earlier = higher
// priority). Every MIS algorithm in this library takes the *same*
// VertexOrder, which is precisely what makes their results identical.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace pargreedy {

class VertexOrder {
 public:
  VertexOrder() = default;

  /// A uniformly random ordering, deterministic in (n, seed) — the setting
  /// of the paper's main theorem.
  static VertexOrder random(uint64_t n, uint64_t seed);

  /// The identity ordering 0, 1, ..., n-1 (useful for adversarial tests:
  /// on a path graph this ordering has dependence length Theta(n)).
  static VertexOrder identity(uint64_t n);

  /// Wraps an explicit permutation; validated.
  static VertexOrder from_permutation(std::vector<VertexId> order);

  [[nodiscard]] uint64_t size() const { return order_.size(); }

  /// The i-th vertex in priority order.
  [[nodiscard]] VertexId nth(uint64_t i) const { return order_[i]; }

  /// Position of vertex v in the ordering; rank(u) < rank(v) means u is
  /// earlier (higher priority).
  [[nodiscard]] uint32_t rank(VertexId v) const { return rank_[v]; }

  /// True iff u comes before v.
  [[nodiscard]] bool earlier(VertexId u, VertexId v) const {
    return rank_[u] < rank_[v];
  }

  [[nodiscard]] std::span<const VertexId> order() const { return order_; }
  [[nodiscard]] std::span<const uint32_t> ranks() const { return rank_; }

  /// True iff this is the identity ordering. Precomputed; algorithms use
  /// it as a fast-path hint (compare ids instead of ranks), which is how
  /// the PBBS implementations run after pre-permuting the input graph.
  [[nodiscard]] bool is_identity() const { return identity_; }

 private:
  std::vector<VertexId> order_;  // order_[i] = i-th vertex
  std::vector<uint32_t> rank_;   // rank_[v]  = position of v
  bool identity_ = false;
};

}  // namespace pargreedy
