// PrioritySource: the pluggable policy that turns a graph into the total
// priority order pi driving every greedy algorithm in this library.
//
// The paper's central observation is that the greedy solution is fully
// determined by pi — the algorithms, the priority DAG, and the dynamic
// repropagation machinery never care *where* pi came from, only that it is
// a fixed total order. This class is that seam. Four policies:
//
//   kRandomHash           pi is uniformly random, derived from a
//                         counter-based hash of (seed, id) — the setting of
//                         the paper's theorems and the pre-existing default.
//   kVertexWeight         vertices in decreasing weight order: the greedy
//                         weighted MIS (ties broken by id — deterministic
//                         but adversarial on structured inputs).
//   kEdgeWeight           edges in decreasing weight order: the greedy
//                         ("local-max" family, cf. Birn et al.) weighted
//                         matching, ties broken by canonical edge key.
//   kWeightHashTiebreak   decreasing weight, equal weights tied apart by
//                         the (seed, id) hash — the recommended weighted
//                         policy: within every weight class the order is
//                         uniformly random, so the paper's shallow-cone
//                         argument applies inside classes while the greedy
//                         solution respects weights across classes.
//
// A priority is a PriorityKey — a lexicographically compared pair of 64-bit
// words with SMALLER meaning EARLIER (higher priority); consumers append
// the element id / canonical edge key as the final tie-break, which makes
// every policy a total order. Keys are pure functions of
// (policy, seed, id, weight), never of thread count or update history —
// the property the dynamic engines rely on so that a re-inserted edge
// resumes its old rank.
//
// Static algorithms consume a policy via vertex_order()/edge_order(), which
// materialize pi for a concrete graph; the dynamic engines consume
// vertex_key()/edge_key() directly because their edge population changes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/matching/edge_order.hpp"
#include "core/mis/vertex_order.hpp"
#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace pargreedy {

/// Which quantity drives the priority order. See the header comment for
/// the semantics of each policy.
enum class PriorityPolicy : uint8_t {
  kRandomHash = 0,
  kVertexWeight = 1,
  kEdgeWeight = 2,
  kWeightHashTiebreak = 3,
};

/// Human-readable policy name ("random_hash", "vertex_weight", ...).
const char* priority_policy_name(PriorityPolicy policy);

/// A priority value: compared lexicographically, smaller = earlier =
/// higher priority. `secondary` is 0 for single-word policies; consumers
/// must break remaining ties by element id (vertices) or canonical edge
/// key (edges) to obtain a total order.
struct PriorityKey {
  uint64_t primary = 0;
  uint64_t secondary = 0;

  friend bool operator==(const PriorityKey&, const PriorityKey&) = default;
  friend bool operator<(const PriorityKey& a, const PriorityKey& b) {
    return a.primary != b.primary ? a.primary < b.primary
                                  : a.secondary < b.secondary;
  }
};

/// Order-reversing, order-preserving-within-reversal map from a finite
/// weight to a uint64: w1 > w2  <=>  bits(w1) < bits(w2). Higher weight
/// therefore sorts earlier; -0.0 collapses onto +0.0 so equal weights
/// always share one key (a genuine tie). Exposed for tests; rejects NaN.
uint64_t descending_weight_bits(Weight w);

/// The priority policy plus its parameters. Cheap to copy; carries no
/// per-graph state.
class PrioritySource {
 public:
  /// Default-constructed source is random-hash with seed 0.
  PrioritySource() = default;

  /// Uniformly random priorities from (seed, id) hashes — the paper's
  /// setting and the engines' historical behavior.
  static PrioritySource random_hash(uint64_t seed);

  /// Decreasing vertex weight, ties by vertex id. Vertex context only.
  static PrioritySource vertex_weight();

  /// Decreasing edge weight, ties by canonical edge key. Edge context
  /// only.
  static PrioritySource edge_weight();

  /// Decreasing weight (vertex weight in vertex context, edge weight in
  /// edge context), equal weights ordered by the (seed, id) hash. The
  /// recommended weighted policy.
  static PrioritySource weight_hash_tiebreak(uint64_t seed);

  [[nodiscard]] PriorityPolicy policy() const { return policy_; }

  /// The hash seed (meaningful for kRandomHash and kWeightHashTiebreak).
  [[nodiscard]] uint64_t seed() const { return seed_; }

  /// True iff the policy reads weights (everything but kRandomHash).
  [[nodiscard]] bool is_weighted() const {
    return policy_ != PriorityPolicy::kRandomHash;
  }

  /// True iff keys can carry a nonzero secondary word (only
  /// kWeightHashTiebreak does) — lets engines skip storing/comparing the
  /// secondary for single-word policies.
  [[nodiscard]] bool has_secondary_word() const {
    return policy_ == PriorityPolicy::kWeightHashTiebreak;
  }

  /// Priority of vertex v with weight w. Checks the policy is valid in
  /// vertex context (kEdgeWeight is not).
  [[nodiscard]] PriorityKey vertex_key(VertexId v, Weight w) const;

  /// Priority of canonical edge e with weight w. Checks the policy is
  /// valid in edge context (kVertexWeight is not).
  [[nodiscard]] PriorityKey edge_key(const Edge& e, Weight w) const;

  /// Materializes the total vertex order for g (reading g's vertex
  /// weights for the weighted policies). For kRandomHash this is exactly
  /// VertexOrder::random(n, seed).
  [[nodiscard]] VertexOrder vertex_order(const CsrGraph& g) const;

  /// Same order from a bare weight array (empty = all kDefaultWeight) —
  /// no graph needed. The dynamic MIS engine rebuilds its materialized pi
  /// from this after vertex reweights change priority keys.
  [[nodiscard]] VertexOrder vertex_order(
      uint64_t n, std::span<const Weight> weights) const;

  /// Materializes the total edge order for g (reading g's edge weights
  /// for the weighted policies).
  [[nodiscard]] EdgeOrder edge_order(const CsrGraph& g) const;

 private:
  PrioritySource(PriorityPolicy policy, uint64_t seed)
      : policy_(policy), seed_(seed) {}

  PriorityPolicy policy_ = PriorityPolicy::kRandomHash;
  uint64_t seed_ = 0;
};

/// The canonical 64-bit key of edge {u, v}: (u << 32) | v. Hash input and
/// final tie-breaker of every edge-priority comparison.
uint64_t edge_pair_key(const Edge& e);

/// `count` weights uniform in [lo, hi), deterministic in the seed —
/// ties essentially never occur. For generating weighted workloads.
std::vector<Weight> random_weights(uint64_t count, uint64_t seed,
                                   Weight lo = 0.0, Weight hi = 1.0);

/// `count` weights drawn uniformly from the `levels` values
/// {1, 2, ..., levels}, deterministic in the seed. Coarse levels force
/// equal-weight ties, exercising the tie-break policy.
std::vector<Weight> quantized_weights(uint64_t count, uint64_t seed,
                                      uint64_t levels);

}  // namespace pargreedy
