#include "core/priority/priority_source.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "parallel/arch.hpp"
#include "parallel/counting_sort.hpp"
#include "parallel/parallel_for.hpp"
#include "random/hash.hpp"
#include "random/permutation.hpp"
#include "support/check.hpp"

namespace pargreedy {

const char* priority_policy_name(PriorityPolicy policy) {
  switch (policy) {
    case PriorityPolicy::kRandomHash:
      return "random_hash";
    case PriorityPolicy::kVertexWeight:
      return "vertex_weight";
    case PriorityPolicy::kEdgeWeight:
      return "edge_weight";
    case PriorityPolicy::kWeightHashTiebreak:
      return "weight_hash_tiebreak";
  }
  return "unknown";
}

uint64_t descending_weight_bits(Weight w) {
  PG_CHECK_MSG(!std::isnan(w), "priority weights must not be NaN");
  if (w == 0.0) w = 0.0;  // collapse -0.0 onto +0.0: equal weights, one key
  // Standard total-order trick: flipping the sign bit of non-negatives and
  // all bits of negatives makes the uint64 image ascend with the double;
  // the final complement reverses it so larger weights sort first.
  uint64_t bits = std::bit_cast<uint64_t>(w);
  constexpr uint64_t kSignBit = uint64_t{1} << 63;
  bits = (bits & kSignBit) ? ~bits : bits | kSignBit;
  return ~bits;
}

uint64_t edge_pair_key(const Edge& e) {
  return (static_cast<uint64_t>(e.u) << 32) | e.v;
}

PrioritySource PrioritySource::random_hash(uint64_t seed) {
  return PrioritySource(PriorityPolicy::kRandomHash, seed);
}

PrioritySource PrioritySource::vertex_weight() {
  return PrioritySource(PriorityPolicy::kVertexWeight, 0);
}

PrioritySource PrioritySource::edge_weight() {
  return PrioritySource(PriorityPolicy::kEdgeWeight, 0);
}

PrioritySource PrioritySource::weight_hash_tiebreak(uint64_t seed) {
  return PrioritySource(PriorityPolicy::kWeightHashTiebreak, seed);
}

PriorityKey PrioritySource::vertex_key(VertexId v, Weight w) const {
  switch (policy_) {
    case PriorityPolicy::kRandomHash:
      return {hash64(seed_, v), 0};
    case PriorityPolicy::kVertexWeight:
      return {descending_weight_bits(w), 0};
    case PriorityPolicy::kWeightHashTiebreak:
      return {descending_weight_bits(w), hash64(seed_, v)};
    case PriorityPolicy::kEdgeWeight:
      break;
  }
  PG_CHECK_MSG(false, "edge_weight policy has no vertex priorities");
  return {};
}

PriorityKey PrioritySource::edge_key(const Edge& e, Weight w) const {
  switch (policy_) {
    case PriorityPolicy::kRandomHash:
      return {hash64(seed_, edge_pair_key(e)), 0};
    case PriorityPolicy::kEdgeWeight:
      return {descending_weight_bits(w), 0};
    case PriorityPolicy::kWeightHashTiebreak:
      return {descending_weight_bits(w), hash64(seed_, edge_pair_key(e))};
    case PriorityPolicy::kVertexWeight:
      break;
  }
  PG_CHECK_MSG(false, "vertex_weight policy has no edge priorities");
  return {};
}

namespace {

/// Sorts ids 0..count-1 into priority order: by key, remaining ties by id.
/// Single-word keys (two_words false — the caller knows statically from
/// has_secondary_word()) go through the parallel sorter; two-word keys
/// take the comparator path. Either way the result is the unique sequence
/// of the total order (key, id), independent of worker count.
std::vector<uint32_t> sort_ids_by_key(
    uint64_t count, const std::vector<PriorityKey>& keys, bool two_words) {
  std::vector<uint32_t> ids(count);
  parallel_for(0, static_cast<int64_t>(count), [&](int64_t i) {
    ids[static_cast<std::size_t>(i)] = static_cast<uint32_t>(i);
  });
  if (!two_words) {
    std::vector<uint64_t> primary(count);
    parallel_for(0, static_cast<int64_t>(count), [&](int64_t i) {
      primary[static_cast<std::size_t>(i)] =
          keys[static_cast<std::size_t>(i)].primary;
    });
    parallel_sort_by_key(std::span<uint32_t>(ids), primary);
    return ids;
  }
  // Two-word path (weight_hash_tiebreak): same two-pass structure as
  // parallel_sort_by_key — a stable counting sort into order-aligned
  // buckets, then an independent full-comparator sort per bucket. Equal
  // primaries land in one bucket, so the comparator sees every tie; both
  // passes are deterministic.
  const auto cmp = [&](uint32_t a, uint32_t b) {
    return keys[a] != keys[b] ? keys[a] < keys[b] : a < b;
  };
  if (count < uint64_t{1} << 16 || num_workers() == 1) {
    std::sort(ids.begin(), ids.end(), cmp);
    return ids;
  }
  // Primaries are weight-derived and typically occupy a narrow numeric
  // band (one weight class collapses them entirely), so bucketing by a
  // fixed top-bits shift would pile everything into one bucket. Instead:
  // a single shared primary falls through to a fully parallel sort by the
  // secondary word, and otherwise the bucket index is taken from the bits
  // where the primaries actually differ. With k distinct primaries inside
  // one bucket span the per-bucket sorts still serialize to ~k-way
  // parallelism — inherent to order-aligned bucketing; fine for the
  // continuous-weight case this path is sized for.
  uint64_t min_primary = keys[ids[0]].primary;
  uint64_t max_primary = min_primary;
  for (const PriorityKey& k : keys) {
    min_primary = std::min(min_primary, k.primary);
    max_primary = std::max(max_primary, k.primary);
  }
  if (min_primary == max_primary) {
    std::vector<uint64_t> secondary(count);
    parallel_for(0, static_cast<int64_t>(count), [&](int64_t i) {
      secondary[static_cast<std::size_t>(i)] =
          keys[static_cast<std::size_t>(i)].secondary;
    });
    parallel_sort_by_key(std::span<uint32_t>(ids), secondary);
    return ids;
  }
  constexpr int64_t kBuckets = 1024;
  const int spread = std::bit_width(max_primary - min_primary);
  const int shift = spread > 10 ? spread - 10 : 0;
  std::vector<uint32_t> scratch(count);
  const std::vector<int64_t> offsets = counting_sort<uint32_t>(
      std::span<const uint32_t>(ids.data(), ids.size()),
      std::span<uint32_t>(scratch), kBuckets, [&](uint32_t v) {
        return static_cast<int64_t>((keys[v].primary - min_primary) >>
                                    shift);
      });
  ids.swap(scratch);
  parallel_for(
      0, kBuckets,
      [&](int64_t b) {
        std::sort(ids.begin() + offsets[static_cast<std::size_t>(b)],
                  ids.begin() + offsets[static_cast<std::size_t>(b) + 1],
                  cmp);
      },
      /*grain=*/1);
  return ids;
}

}  // namespace

VertexOrder PrioritySource::vertex_order(const CsrGraph& g) const {
  return vertex_order(g.num_vertices(), g.vertex_weights());
}

VertexOrder PrioritySource::vertex_order(
    uint64_t n, std::span<const Weight> weights) const {
  // The hash policy reuses VertexOrder::random — same (hash, id) sort, and
  // keeping one code path guarantees the engines' historical orders.
  if (policy_ == PriorityPolicy::kRandomHash)
    return VertexOrder::random(n, seed_);
  PG_CHECK_MSG(weights.empty() || weights.size() == n,
               "weight array size != vertex count");
  std::vector<PriorityKey> keys(n);
  parallel_for(0, static_cast<int64_t>(n), [&](int64_t v) {
    keys[static_cast<std::size_t>(v)] = vertex_key(
        static_cast<VertexId>(v),
        weights.empty() ? kDefaultWeight
                        : weights[static_cast<std::size_t>(v)]);
  });
  return VertexOrder::from_permutation(
      sort_ids_by_key(n, keys, has_secondary_word()));
}

EdgeOrder PrioritySource::edge_order(const CsrGraph& g) const {
  const uint64_t m = g.num_edges();
  std::vector<PriorityKey> keys(m);
  parallel_for(0, static_cast<int64_t>(m), [&](int64_t e) {
    keys[static_cast<std::size_t>(e)] =
        edge_key(g.edge(static_cast<EdgeId>(e)),
                 g.edge_weight(static_cast<EdgeId>(e)));
  });
  // CSR edge ids ascend with the canonical (u, v) key, so the sorter's id
  // tie-break is exactly the engines' edge-key tie-break.
  return EdgeOrder::from_permutation(
      sort_ids_by_key(m, keys, has_secondary_word()));
}

std::vector<Weight> random_weights(uint64_t count, uint64_t seed, Weight lo,
                                   Weight hi) {
  PG_CHECK_MSG(std::isfinite(lo) && std::isfinite(hi) && lo < hi,
               "random_weights requires finite lo < hi");
  std::vector<Weight> out(count);
  parallel_for(0, static_cast<int64_t>(count), [&](int64_t i) {
    out[static_cast<std::size_t>(i)] =
        lo + (hi - lo) * hash_unit(seed, static_cast<uint64_t>(i));
  });
  return out;
}

std::vector<Weight> quantized_weights(uint64_t count, uint64_t seed,
                                      uint64_t levels) {
  PG_CHECK_MSG(levels >= 1, "quantized_weights requires levels >= 1");
  std::vector<Weight> out(count);
  parallel_for(0, static_cast<int64_t>(count), [&](int64_t i) {
    out[static_cast<std::size_t>(i)] = static_cast<Weight>(
        1 + hash_range(seed, static_cast<uint64_t>(i), levels));
  });
  return out;
}

}  // namespace pargreedy
