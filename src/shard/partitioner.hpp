// Partitioner: the vertex-ownership contract for the sharded engines.
//
// A partitioner is a pure function VertexId -> shard id over a fixed
// vertex universe [0, n) and a fixed shard count. "Pure" is load-bearing:
// the sharded engine evaluates owner() once per vertex at construction,
// caches the labelling, and never re-asks — so a partitioner must be
// deterministic, total on [0, n), and return values < num_shards().
// Ownership is what the boundary-cone exchange composes over: every
// vertex's solution entry is read from exactly its owner shard, and an
// edge whose endpoints have different owners is a *cross edge*, stored in
// both owners' overlays and tracked by their frontier counters
// (OverlayGraph::enable_frontier_tracking).
//
// Two stock strategies:
//
//   RangePartitioner  contiguous blocks of ceil(n / shards) vertices —
//                     preserves generator locality, so neighboring
//                     vertices usually share a shard (few cross edges).
//   HashPartitioner   mix64(seed ^ v) % shards — deliberately
//                     locality-destroying, the adversarial case for the
//                     exchange loop (most edges cross).
//
// Both are deterministic in their constructor arguments, so a sharded
// run is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "graph/types.hpp"
#include "random/hash.hpp"
#include "support/check.hpp"

namespace pargreedy {

/// Abstract vertex-ownership strategy (see file comment for the purity
/// contract). Implementations carry no mutable state.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Shard owning vertex v; must be < num_shards() and stable for the
  /// partitioner's lifetime.
  [[nodiscard]] virtual uint32_t owner(VertexId v) const = 0;

  /// Number of shards this partitioner maps onto (>= 1).
  [[nodiscard]] virtual uint32_t num_shards() const noexcept = 0;

  /// Strategy name for bench/test labels ("range", "hash").
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// The cached labelling the sharded engine feeds to the overlays: one
  /// owner per vertex of [0, n).
  [[nodiscard]] std::vector<uint32_t> labels(uint64_t n) const {
    std::vector<uint32_t> out(n);
    for (VertexId v = 0; v < n; ++v) {
      out[v] = owner(v);
      PG_CHECK_MSG(out[v] < num_shards(),
                   "partitioner mapped vertex " << v << " to shard "
                                                << out[v] << " >= "
                                                << num_shards());
    }
    return out;
  }
};

/// Contiguous blocks of ceil(n / shards) vertices per shard.
class RangePartitioner final : public Partitioner {
 public:
  RangePartitioner(uint64_t num_vertices, uint32_t shards)
      : shards_(shards),
        block_((num_vertices + shards - 1) / (shards > 0 ? shards : 1)) {
    PG_CHECK_MSG(shards >= 1, "need at least one shard");
    if (block_ == 0) block_ = 1;  // empty universe: any labelling works
  }

  [[nodiscard]] uint32_t owner(VertexId v) const override {
    const uint64_t s = v / block_;
    return static_cast<uint32_t>(s < shards_ ? s : shards_ - 1);
  }

  [[nodiscard]] uint32_t num_shards() const noexcept override {
    return shards_;
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "range";
  }

 private:
  uint32_t shards_;
  uint64_t block_;
};

/// mix64(seed ^ v) % shards — scatters neighbors across shards.
class HashPartitioner final : public Partitioner {
 public:
  explicit HashPartitioner(uint32_t shards, uint64_t seed = 0)
      : shards_(shards), seed_(seed) {
    PG_CHECK_MSG(shards >= 1, "need at least one shard");
  }

  [[nodiscard]] uint32_t owner(VertexId v) const override {
    return static_cast<uint32_t>(mix64(seed_ ^ v) % shards_);
  }

  [[nodiscard]] uint32_t num_shards() const noexcept override {
    return shards_;
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "hash";
  }

 private:
  uint32_t shards_;
  uint64_t seed_;
};

}  // namespace pargreedy
