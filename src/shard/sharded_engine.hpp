// ShardedEngine: N dynamic engines over a partitioned vertex universe,
// composed into one engine-shaped API by a boundary-cone exchange.
//
// Decomposition. A Partitioner assigns every vertex an owner shard.
// Shard s runs a full Engine (DynamicMis / DynamicMatching) over the
// complete vertex universe [0, n) but stores only the edges with at
// least one s-owned endpoint. An edge with endpoints in two shards (a
// *cross edge*) is stored by both; a non-owned vertex with live local
// edges is a *ghost*. Every shard's overlay tracks its cross-partition
// degrees incrementally (OverlayGraph::enable_frontier_tracking), so
// ghost liveness and the owned frontier are O(1) queries.
//
// Exchange. apply_batch routes the user batch by ownership
// (shard/batch_router.hpp), opens one Transaction per shard in lockstep,
// applies each sub-batch, and then iterates the boundary-cone exchange:
//
//   round:  compute, against the current speculative states, the
//           *forcing batch* of every shard — for each live ghost, the
//           activity GhostPolicy derives from its owner's current
//           decision, minus what the shard already believes (a barrier:
//           all batches are derived before any is applied, so a round's
//           seeds are a deterministic function of the round-start
//           state); then apply each non-empty batch in shard order.
//
//   conflict:  a shard whose forcing batch is non-empty in a later
//           round was forced against assumptions that have since been
//           invalidated. It retries through the real Transaction
//           machinery: rollback_to the savepoint taken right after its
//           user sub-batch, re-derive the full forcing batch against
//           the restored state, and apply it as one batch. The result
//           is identical to incremental forcing — a shard's local
//           solution is a pure function of (live edges, activity,
//           policy) — but the abort/retry path, not trust in that
//           purity, is what the differential suite exercises.
//
//   fixpoint:  no forcing delta anywhere. For MIS that is the end:
//           activity fixpoints are unique (shard/ghost_policy.hpp), so
//           the per-owner composition already equals the single-engine
//           greedy solution bit-exactly. Matching fixpoints are NOT
//           unique — mutually-stale cross-boundary deactivations can
//           stabilize away from the global solution — so a candidate
//           fixpoint must also pass the *boundary certificate*: for
//           every live cross edge with both endpoints active, the two
//           owners agree on whether it is matched, and if it is not,
//           one endpoint is matched via an edge no later in the
//           priority order. A candidate that fails is broken by
//           deterministic priority-order arbitration: gather the
//           composed live+active graph, compute the exact greedy
//           matching, and re-force every shard's ghosts from that
//           solution through the same rollback_to + apply retry path —
//           one repropagation per shard then lands on the global
//           fixpoint and the next validation pass is check-only.
//           Commits then run in shard index order, keeping the
//           ShardedVersion clock unified.
//
// Determinism: shards are driven sequentially in index order (each
// apply runs under ScopedNumWorkers(workers_per_shard)), every forcing
// batch is a deterministic function of deterministic state, and the
// engines themselves are deterministic in their inputs — so solutions,
// exchange rounds, boundary seeds, and conflict retries are all
// reproducible bit-for-bit at any worker count.
//
// Observability: shard.exchange_rounds / shard.boundary_seeds /
// shard.conflict_retries counters (obs/obs.hpp), plus per-call and
// lifetime ExchangeStats on the engine itself.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "core/matching/matching.hpp"
#include "core/priority/priority_source.hpp"
#include "dynamic/batch_stats.hpp"
#include "dynamic/engine_api.hpp"
#include "dynamic/update_batch.hpp"
#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"
#include "graph/types.hpp"
#include "obs/obs.hpp"
#include "parallel/arch.hpp"
#include "shard/batch_router.hpp"
#include "shard/ghost_policy.hpp"
#include "shard/partitioner.hpp"
#include "shard/sharded_version.hpp"
#include "support/check.hpp"
#include "support/thread_annotations.hpp"
#include "txn/engine_snapshot.hpp"
#include "txn/transaction.hpp"

namespace pargreedy {

/// A committed composed read: one ReadView per shard, all pinned at the
/// same version, composed by ownership. Self-contained value type with
/// the same lifetime story as ReadView (shared ownership, no epoch pin
/// held).
template <typename Value>
class ShardedReadView {
 public:
  ShardedReadView() = default;

  ShardedReadView(std::vector<ReadView<Value>> views,
                  std::shared_ptr<const std::vector<uint32_t>> owner)
      : views_(std::move(views)), owner_(std::move(owner)) {}

  /// False for a default-constructed (empty) view.
  [[nodiscard]] bool valid() const noexcept { return !views_.empty(); }

  /// The committed version every per-shard view observes.
  [[nodiscard]] uint64_t version() const {
    check();
    return views_.front().version();
  }

  /// Number of vertices (every shard publishes the full universe).
  [[nodiscard]] std::size_t size() const {
    check();
    return views_.front().size();
  }

  /// v's committed solution entry, read from its owner shard's view.
  [[nodiscard]] Value operator[](VertexId v) const {
    check();
    return views_[(*owner_)[v]][v];
  }

  /// The composed solution as an owned vector (what a single engine's
  /// committed_solution() would have returned).
  [[nodiscard]] std::vector<Value> to_vector() const {
    check();
    const std::size_t n = size();
    std::vector<Value> out(n);
    for (VertexId v = 0; v < n; ++v) out[v] = views_[(*owner_)[v]][v];
    return out;
  }

  /// Torn-read checksums of every per-shard view (see ReadView).
  [[nodiscard]] bool verify_checksums() const {
    check();
    for (const ReadView<Value>& view : views_)
      if (!view.verify_checksum()) return false;
    return true;
  }

  /// The underlying per-shard view (tests/introspection).
  [[nodiscard]] const ReadView<Value>& shard_view(uint32_t s) const {
    check();
    return views_[s];
  }

 private:
  void check() const {
    PG_CHECK_MSG(!views_.empty(), "empty ShardedReadView");
  }

  std::vector<ReadView<Value>> views_;
  std::shared_ptr<const std::vector<uint32_t>> owner_;
};

/// N engines + N lockstep Transactions behind one engine-shaped API
/// (see file comment). Traits is MisTxnTraits or MatchingTxnTraits.
template <typename Traits>
class ShardedEngine {
 public:
  using Engine = typename Traits::Engine;
  using Value = typename Traits::Value;
  using Policy = GhostPolicy<Traits>;
  using Solution = std::vector<Value>;

  static_assert(DynamicEngineApi<Engine>,
                "ShardedEngine requires the unified engine API");

  /// The sharded writer capability: apply_batch/what_if are
  /// single-writer, like the engines they drive.
  support::Role writer_role_;

  /// Knobs beyond (graph, partitioner, source).
  struct Options {
    /// Worker width each shard's applies run under (<= 0: keep the
    /// process-wide num_workers()).
    int workers_per_shard = 0;
    /// Per-shard overlay compaction threshold (EngineOptions semantics).
    double compaction_threshold = 0.5;
    /// Per-shard Transaction version retention.
    std::size_t ring_capacity = kDefaultVersionRetention;
  };

  /// Deterministic exchange counters, per call and lifetime.
  struct ExchangeStats {
    uint64_t rounds = 0;            ///< exchange rounds run
    uint64_t boundary_seeds = 0;    ///< ghost activity ops applied
    uint64_t conflict_retries = 0;  ///< savepoint rollback + reapply

    void accumulate(const ExchangeStats& other) {
      rounds += other.rounds;
      boundary_seeds += other.boundary_seeds;
      conflict_retries += other.conflict_retries;
    }
  };

  /// Result of a what_if exploration (applied, captured, aborted).
  struct WhatIfResult {
    Solution solution;       ///< composed solution the batch would produce
    BatchStats stats;        ///< routed user-batch stats (forcing excluded)
    ExchangeStats exchange;  ///< exchange work the speculation cost
  };

  /// Partitions `base` under `partitioner` (labels are evaluated once
  /// and cached; the partitioner is not retained), builds one engine
  /// per shard sharing the `source` policy — policies are pure functions
  /// of (vertex, weights), so every shard derives the identical total
  /// priority order — runs the construction exchange to fixpoint, and
  /// adopts the composed state as committed version 0 on every shard.
  ShardedEngine(CsrGraph base, const Partitioner& partitioner,
                PrioritySource source, Options options = {})
      : shards_(partitioner.num_shards()),
        partitioner_name_(partitioner.name()),
        workers_per_shard_(options.workers_per_shard > 0
                               ? options.workers_per_shard
                               : num_workers()),
        owner_(std::make_shared<const std::vector<uint32_t>>(
            partitioner.labels(base.num_vertices()))) {
    const uint64_t n = base.num_vertices();
    ghost_member_.assign(shards_, std::vector<uint8_t>(n, 0));
    ghosts_.resize(shards_);
    for (uint32_t s = 0; s < shards_; ++s) {
      engines_.push_back(std::make_unique<Engine>(
          EngineOptions::with_source(shard_subgraph(base, s), source)
              .compaction(options.compaction_threshold)));
      support::RoleScope writer(engines_[s]->writer_role_);
      engines_[s]->enable_frontier_tracking(*owner_);
    }
    for (const Edge& e : base.edges())
      if ((*owner_)[e.u] != (*owner_)[e.v]) {
        add_ghost((*owner_)[e.u], e.v);
        add_ghost((*owner_)[e.v], e.u);
      }
    // Construction exchange: ghosts start active (engines activate the
    // whole universe), which is not the composed state — iterate the
    // forcing loop with direct applies, pre-Transaction, so version 0
    // is already the correct composed solution.
    construction_stats_ = run_exchange(nullptr);
    for (uint32_t s = 0; s < shards_; ++s)
      txns_.push_back(std::make_unique<Transaction<Traits>>(
          *engines_[s], options.ring_capacity));
  }

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] uint32_t num_shards() const noexcept { return shards_; }

  [[nodiscard]] uint64_t num_vertices() const noexcept {
    return engines_.front()->num_vertices();
  }

  /// The partitioner strategy this engine was built with.
  [[nodiscard]] std::string_view partitioner_name() const noexcept {
    return partitioner_name_;
  }

  /// Owner shard of vertex v (the cached labelling).
  [[nodiscard]] uint32_t owner(VertexId v) const { return (*owner_)[v]; }

  /// Shard s's engine — for queries and tests; mutate only through
  /// apply_batch/what_if (per-shard epoch guards catch violations).
  [[nodiscard]] const Engine& shard_engine(uint32_t s) const {
    return *engines_[s];
  }

  /// Live ghosts of shard s: non-owned vertices with at least one live
  /// edge into the shard (O(candidates), each test O(1) via the
  /// overlay's frontier counters).
  [[nodiscard]] std::vector<VertexId> live_ghosts(uint32_t s) const {
    std::vector<VertexId> out;
    for (const VertexId v : ghosts_[s])
      if (engines_[s]->graph().cross_degree(v) > 0) out.push_back(v);
    return out;
  }

  /// Applies one user batch through the routed, exchanged, lockstep
  /// transaction protocol (see file comment) and commits every shard.
  /// Returns the summed per-shard stats of the routed user sub-batches
  /// (cross edges count in both owners; forcing work is reported via
  /// last_exchange(), not here).
  BatchStats apply_batch(const UpdateBatch& batch)
      PARGREEDY_REQUIRES(writer_role_) {
    const BatchStats stats = exchange_batch(batch, nullptr);
    commit_all();
    return stats;
  }

  /// Applies `batch` speculatively, captures the composed solution the
  /// commit would have published, then aborts every shard — state is
  /// restored bit-exactly (the Transaction abort contract, per shard).
  [[nodiscard]] WhatIfResult what_if(const UpdateBatch& batch)
      PARGREEDY_REQUIRES(writer_role_) {
    WhatIfResult result;
    result.stats = exchange_batch(batch, &result.solution);
    result.exchange = last_exchange_;
    abort_all();
    return result;
  }

  /// The live composed solution (speculative while a caller-driven
  /// exchange is mid-flight; committed otherwise). Reader contract of
  /// the underlying engine queries: safe between writer calls.
  [[nodiscard]] Solution solution() const {
    const uint64_t n = num_vertices();
    Solution out(n);
    for (VertexId v = 0; v < n; ++v)
      out[v] = Policy::value(*engines_[(*owner_)[v]], v);
    return out;
  }

  /// The committed composed state at version `v` (default: newest):
  /// every shard's ReadView pinned at the same version, composed by
  /// ownership. Lock-free per shard; between writer calls the lockstep
  /// clock makes the composition exact.
  [[nodiscard]] ShardedReadView<Value> read(
      uint64_t v = kLatestVersion) const {
    const uint64_t target =
        v == kLatestVersion ? txns_.back()->version() : v;
    std::vector<ReadView<Value>> views;
    views.reserve(shards_);
    for (uint32_t s = 0; s < shards_; ++s)
      views.push_back(txns_[s]->read(target));
    return ShardedReadView<Value>(std::move(views), owner_);
  }

  /// The last committed composed solution; equals read().to_vector().
  [[nodiscard]] Solution committed_solution() const {
    return read().to_vector();
  }

  /// The committed composed solution at version `v`; equals
  /// read(v).to_vector(). Checked (per shard): v within retention.
  [[nodiscard]] Solution solution_at(uint64_t v) const {
    return read(v).to_vector();
  }

  /// The per-shard committed-version vector clock — unified between
  /// writer calls (lockstep commits).
  [[nodiscard]] ShardedVersion version() const {
    ShardedVersion clock;
    clock.shard_versions.reserve(shards_);
    for (uint32_t s = 0; s < shards_; ++s)
      clock.shard_versions.push_back(txns_[s]->version());
    return clock;
  }

  /// The oldest version solution_at() can still serve on every shard.
  [[nodiscard]] uint64_t oldest_version() const {
    uint64_t oldest = 0;
    for (uint32_t s = 0; s < shards_; ++s)
      oldest = std::max(oldest, txns_[s]->oldest_version());
    return oldest;
  }

  /// Exchange counters of the last apply_batch/what_if call.
  [[nodiscard]] const ExchangeStats& last_exchange() const noexcept {
    return last_exchange_;
  }

  /// Exchange counters accumulated since construction (excluding the
  /// construction exchange itself — see construction_exchange()).
  [[nodiscard]] const ExchangeStats& lifetime_exchange() const noexcept {
    return lifetime_exchange_;
  }

  /// Counters of the construction-time exchange that produced version 0.
  [[nodiscard]] const ExchangeStats& construction_exchange() const noexcept {
    return construction_stats_;
  }

 private:
  /// Shard s's base graph: the edges of `base` with at least one s-owned
  /// endpoint, weights carried over, full vertex universe. Filtering
  /// preserves the CSR's canonical edge order, so the subset is already
  /// normalized.
  [[nodiscard]] CsrGraph shard_subgraph(const CsrGraph& base,
                                        uint32_t s) const {
    std::vector<Edge> edges;
    std::vector<Weight> weights;
    const bool weighted = base.has_edge_weights();
    for (EdgeId e = 0; e < base.num_edges(); ++e) {
      const Edge edge = base.edge(e);
      if ((*owner_)[edge.u] != s && (*owner_)[edge.v] != s) continue;
      edges.push_back(edge);
      if (weighted) weights.push_back(base.edge_weight(e));
    }
    CsrGraph g = CsrGraph::from_edges(
        EdgeList(base.num_vertices(), std::move(edges)),
        /*assume_normalized=*/true);
    if (weighted) g.set_edge_weights(std::move(weights));
    if (base.has_vertex_weights())
      g.set_vertex_weights(std::vector<Weight>(
          base.vertex_weights().begin(), base.vertex_weights().end()));
    return g;
  }

  void add_ghost(uint32_t s, VertexId v) {
    if (ghost_member_[s][v]) return;
    ghost_member_[s][v] = 1;
    ghosts_[s].push_back(v);
  }

  /// Shard s's forcing batch: for every live ghost, the activity the
  /// ghost policy derives from its owner's *current* decision, minus
  /// what shard s already believes. Empty iff s is at fixpoint with the
  /// current owner states.
  [[nodiscard]] UpdateBatch compute_forcing(uint32_t s) const {
    UpdateBatch forcing;
    const auto owner_of = [&](VertexId x) { return (*owner_)[x]; };
    for (const VertexId v : ghosts_[s]) {
      if (engines_[s]->graph().cross_degree(v) == 0) continue;
      const bool want =
          Policy::ghost_active(*engines_[(*owner_)[v]], v, s, owner_of);
      if (engines_[s]->active(v) == want) continue;
      if (want)
        forcing.activate(v);
      else
        forcing.deactivate(v);
    }
    return forcing;
  }

  /// Total order on edges, matching DynamicMatching::earlier:
  /// (primary, secondary, canonical endpoint pair).
  using EdgeRank = std::tuple<uint64_t, uint64_t, uint64_t>;
  static constexpr EdgeRank kUnmatchedRank{~uint64_t{0}, ~uint64_t{0},
                                           ~uint64_t{0}};

  /// Matching only. The greedy certificate restricted to the boundary:
  /// for every live cross edge (x, v) with both endpoints active, (a)
  /// the two owner shards agree on whether the edge is matched and (b)
  /// unless it is, one endpoint is matched via an edge no later in the
  /// priority order. Local greedy enforces exactly this for intra-shard
  /// edges (every edge of an owned vertex is stored locally), so passing
  /// it makes the composition the unique global greedy matching — the
  /// induction in shard/ghost_policy.hpp. Each cross edge is checked
  /// from its lower-owner side only.
  [[nodiscard]] bool validate_boundary() const {
    const PrioritySource& source = engines_.front()->priority_source();
    // Rank of y's claimed matching edge (y, p), read from an engine that
    // stores all of y's edges (its owner — or any shard owning p).
    const auto match_rank = [&](const Engine& eng, VertexId y,
                                VertexId p) -> EdgeRank {
      if (p == kInvalidVertex) return kUnmatchedRank;
      const Edge e{std::min(y, p), std::max(y, p)};
      const EdgeSlot slot = eng.graph().find_slot(e.u, e.v);
      PG_CHECK_MSG(slot != kInvalidSlot,
                   "claimed matching edge " << e.u << "-" << e.v
                                            << " is not stored");
      const PriorityKey k = source.edge_key(e, eng.graph().slot_weight(slot));
      return {k.primary, k.secondary, edge_pair_key(e)};
    };
    for (uint32_t s = 0; s < shards_; ++s)
      for (const VertexId v : ghosts_[s]) {
        const uint32_t t = (*owner_)[v];
        if (t < s) continue;
        if (engines_[s]->graph().cross_degree(v) == 0) continue;
        const Engine& owner_eng = *engines_[t];
        if (!owner_eng.active(v)) continue;
        const VertexId pv = owner_eng.matched_with(v);
        const EdgeRank rank_v = match_rank(owner_eng, v, pv);
        bool ok = true;
        engines_[s]->graph().for_incident(
            v, [&](VertexId x, EdgeSlot slot) {
              if (!ok || !engines_[s]->active(x)) return;
              const VertexId px = engines_[s]->matched_with(x);
              if ((px == v) != (pv == x)) {
                ok = false;  // the owners disagree about this pair
                return;
              }
              if (px == v) return;  // matched via this edge: certified
              const Edge e = engines_[s]->graph().slot_edge(slot);
              const PriorityKey k =
                  source.edge_key(e, engines_[s]->graph().slot_weight(slot));
              const EdgeRank rank_e{k.primary, k.secondary,
                                    edge_pair_key(e)};
              // Both endpoints still free when e's turn came: the greedy
              // order is violated at e.
              if (match_rank(*engines_[s], x, px) > rank_e &&
                  rank_v > rank_e)
                ok = false;
            });
        if (!ok) return false;
      }
    return true;
  }

  /// Matching only. Deterministic priority-order arbitration: gather
  /// the composed live+active graph (cross edges deduped by the
  /// min-owner rule), compute the exact global greedy matching, and
  /// re-force every shard's ghosts from that solution — through the
  /// same rollback_to + apply retry path individual conflicts use (or
  /// direct applies in construction mode; the engines' solutions are
  /// pure functions of (live edges, activity), so the landing state is
  /// path-independent). One repropagation per shard then reproduces the
  /// global solution on its owned vertices (shard/ghost_policy.hpp).
  void arbitrate(const std::vector<EngineSnapshot>* savepoints,
                 ExchangeStats& ex, std::vector<uint64_t>& seeds_per_shard,
                 std::vector<uint64_t>& retries_per_shard)
      PARGREEDY_NO_THREAD_SAFETY_ANALYSIS {
    const uint64_t n = num_vertices();
    // Owned activity never changes during the exchange (forcing touches
    // ghosts only), so this is the user-visible activity.
    std::vector<uint8_t> active(n);
    for (VertexId v = 0; v < n; ++v)
      active[v] = engines_[(*owner_)[v]]->active(v) ? 1 : 0;
    std::vector<std::pair<Edge, Weight>> gathered;
    for (uint32_t s = 0; s < shards_; ++s) {
      const auto& overlay = engines_[s]->graph();
      for (EdgeSlot slot = 0; slot < overlay.slot_bound(); ++slot) {
        if (!overlay.slot_live(slot)) continue;
        const Edge e = overlay.slot_edge(slot);
        if (std::min((*owner_)[e.u], (*owner_)[e.v]) != s) continue;
        if (!active[e.u] || !active[e.v]) continue;
        gathered.emplace_back(e, overlay.slot_weight(slot));
      }
    }
    std::sort(gathered.begin(), gathered.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<Edge> edges;
    std::vector<Weight> weights;
    edges.reserve(gathered.size());
    weights.reserve(gathered.size());
    for (const auto& [e, w] : gathered) {
      edges.push_back(e);
      weights.push_back(w);
    }
    CsrGraph g = CsrGraph::from_edges(EdgeList(n, std::move(edges)),
                                      /*assume_normalized=*/true);
    g.set_edge_weights(std::move(weights));
    const PrioritySource& source = engines_.front()->priority_source();
    const std::vector<VertexId> exact =
        mm_sequential(g, source.edge_order(g)).matched_with;
    const auto owner_of = [&](VertexId x) { return (*owner_)[x]; };
    for (uint32_t s = 0; s < shards_; ++s) {
      PG_OBS_SHARD_SCOPE(corr_shard, s);
      if (savepoints != nullptr) {
        support::RoleScope writer(txns_[s]->writer_role_);
        ++ex.conflict_retries;
        ++retries_per_shard[s];
        PG_OBS_EVENT(kConflictRetry);
        txns_[s]->rollback_to((*savepoints)[s]);
      }
      UpdateBatch forcing;
      for (const VertexId v : ghosts_[s]) {
        if (engines_[s]->graph().cross_degree(v) == 0) continue;
        const bool want =
            active[v] &&
            Policy::ghost_active_claims(true, exact[v], s, owner_of);
        if (engines_[s]->active(v) == want) continue;
        if (want)
          forcing.activate(v);
        else
          forcing.deactivate(v);
      }
      ex.boundary_seeds += forcing.size();
      seeds_per_shard[s] += forcing.size();
      if (forcing.empty()) continue;
      ScopedNumWorkers width(workers_per_shard_);
      if (savepoints != nullptr) {
        support::RoleScope writer(txns_[s]->writer_role_);
        txns_[s]->apply(forcing);
      } else {
        support::RoleScope writer(engines_[s]->writer_role_);
        engines_[s]->apply_batch(forcing);
      }
    }
  }

  /// The exchange loop (see file comment). `savepoints` non-null: run
  /// through the open per-shard Transactions with savepoint
  /// conflict-retry; null: construction mode, direct engine applies.
  ExchangeStats run_exchange(const std::vector<EngineSnapshot>* savepoints)
      PARGREEDY_NO_THREAD_SAFETY_ANALYSIS {
    // Construction-time exchange opens its own batch id; the update path
    // inherits exchange_batch()'s, so one UpdateBatch is one batch_id
    // across every shard's rounds, spans, and flight-recorder events.
    PG_OBS_BATCH_SCOPE(corr_batch);
    PG_OBS_SPAN1(span_exchange, "run_exchange", "shard", "batch_id",
                 PG_OBS_BATCH_ID());
    ExchangeStats ex;
    std::vector<uint64_t> seeds_per_shard(shards_, 0);
    std::vector<uint64_t> retries_per_shard(shards_, 0);
    std::vector<uint8_t> forced(shards_, 0);
    std::vector<UpdateBatch> forcing(shards_);
    bool arbitrated = false;
    for (;;) {
      ++ex.rounds;
      if (ex.rounds > num_vertices() + 4) {
        // Conflict-retry exhaustion: dump the flight recorder before the
        // check below throws, so the oscillation that led here survives.
        PG_OBS_EVENT_DUMP("exchange_divergence");
      }
      PG_CHECK_MSG(ex.rounds <= num_vertices() + 4,
                   "boundary exchange failed to converge after "
                       << ex.rounds - 1 << " rounds");
      // Barrier: derive every shard's forcing batch against the
      // round-start state before applying any of them.
      bool any = false;
      for (uint32_t s = 0; s < shards_; ++s) {
        forcing[s] = compute_forcing(s);
        any = any || !forcing[s].empty();
        PG_OBS_SHARD_SCOPE(corr_shard, s);
        PG_OBS_EVENT2(kExchangeRound, ex.rounds, forcing[s].size());
      }
      if constexpr (!Policy::kUniqueFixpoint) {
        // The claim-driven activity loop has no termination guarantee
        // for matching (claims can chase each other around boundary
        // cycles, with constant-size forcing batches every round — an
        // oscillation, not progress). Genuine convergence tracks the
        // priority-DAG depth of the affected region, which is
        // polylogarithmic in practice, so a loop still churning after
        // O(log n) rounds is almost certainly cycling. Arbitration
        // grounds every ghost in the exact global solution — always
        // correct, cost comparable to one full recompute — after which
        // the next round is delta-free, so force it once then.
        const uint64_t soft_cap =
            16 + 4 * static_cast<uint64_t>(std::bit_width(num_vertices()));
        if (any && !arbitrated && ex.rounds > soft_cap) {
          arbitrated = true;
          PG_OBS_EVENT1(kArbitrate, 1);
          PG_OBS_EVENT_DUMP("softcap_arbitration");
          arbitrate(savepoints, ex, seeds_per_shard, retries_per_shard);
          std::fill(forced.begin(), forced.end(), uint8_t{1});
          continue;
        }
      }
      if (!any) {
        if constexpr (Policy::kUniqueFixpoint) {
          break;
        } else {
          // Matching: an activity fixpoint is only a *candidate* — it
          // must pass the boundary certificate (see file comment). A
          // failed candidate is broken once by priority-order
          // arbitration; a second failure would mean the arbitration
          // grounding is wrong, which is a bug, not an input condition.
          if (validate_boundary()) break;
          PG_OBS_EVENT1(kCertFail, ex.rounds);
          if (arbitrated) {
            // Certificate still violated after arbitration is a bug, not
            // an input condition — capture the full lead-up.
            PG_OBS_EVENT_DUMP("certificate_violation");
          }
          PG_CHECK_MSG(!arbitrated,
                       "boundary certificate still violated after "
                       "priority-order arbitration");
          arbitrated = true;
          PG_OBS_EVENT1(kArbitrate, 0);
          PG_OBS_EVENT_DUMP("certificate_arbitration");
          arbitrate(savepoints, ex, seeds_per_shard, retries_per_shard);
          std::fill(forced.begin(), forced.end(), uint8_t{1});
          continue;
        }
      }
      for (uint32_t s = 0; s < shards_; ++s) {
        if (forcing[s].empty()) continue;
        PG_OBS_SHARD_SCOPE(corr_shard, s);
        ScopedNumWorkers width(workers_per_shard_);
        if (savepoints == nullptr) {
          // Construction mode: no transactions yet, force directly.
          ex.boundary_seeds += forcing[s].size();
          seeds_per_shard[s] += forcing[s].size();
          PG_OBS_EVENT2(kForcing, ex.rounds, forcing[s].size());
          support::RoleScope writer(engines_[s]->writer_role_);
          engines_[s]->apply_batch(forcing[s]);
          continue;
        }
        support::RoleScope writer(txns_[s]->writer_role_);
        if (forced[s]) {
          // This shard was already forced against assumptions that are
          // now stale: retry through the transaction machinery — rewind
          // to the post-user-batch savepoint and re-force from scratch
          // in one batch.
          ++ex.conflict_retries;
          ++retries_per_shard[s];
          PG_OBS_EVENT1(kConflictRetry, ex.rounds);
          txns_[s]->rollback_to((*savepoints)[s]);
          const UpdateBatch fresh = compute_forcing(s);
          ex.boundary_seeds += fresh.size();
          seeds_per_shard[s] += fresh.size();
          PG_OBS_EVENT2(kForcing, ex.rounds, fresh.size());
          if (!fresh.empty()) txns_[s]->apply(fresh);
        } else {
          forced[s] = 1;
          ex.boundary_seeds += forcing[s].size();
          seeds_per_shard[s] += forcing[s].size();
          PG_OBS_EVENT2(kForcing, ex.rounds, forcing[s].size());
          txns_[s]->apply(forcing[s]);
        }
      }
    }
    PG_OBS_COUNT(obs::kShardExchangeRounds, ex.rounds);
    PG_OBS_COUNT(obs::kShardBoundarySeeds, ex.boundary_seeds);
    PG_OBS_COUNT(obs::kShardConflictRetries, ex.conflict_retries);
    for (uint32_t s = 0; s < shards_; ++s) {
      // Per-shard refinement (registered even at zero so every shard's
      // series exists): a skewed shard shows up here, not hidden in the
      // merged totals above.
      PG_OBS_COUNT_L(obs::kShardBoundarySeeds, "shard", std::to_string(s),
                     seeds_per_shard[s]);
      PG_OBS_COUNT_L(obs::kShardConflictRetries, "shard", std::to_string(s),
                     retries_per_shard[s]);
    }
    PG_OBS_SPAN_ARG(span_exchange, "rounds", ex.rounds);
    return ex;
  }

  // The bodies below acquire per-shard capabilities through loop-indexed
  // expressions (txns_[s]->writer_role_), which are outside what
  // -Wthread-safety can resolve — hence the explicit suppressions. The
  // contract they uphold is the same single-writer protocol the
  // annotations document: every entry point REQUIRES(writer_role_), and
  // one thread drives all shards sequentially.

  /// Commits every shard in index order (lockstep clock advance).
  void commit_all() PARGREEDY_NO_THREAD_SAFETY_ANALYSIS {
    for (uint32_t s = 0; s < shards_; ++s) {
      support::RoleScope writer(txns_[s]->writer_role_);
      txns_[s]->commit();
    }
  }

  /// Aborts every shard in index order (state restored bit-exactly).
  void abort_all() PARGREEDY_NO_THREAD_SAFETY_ANALYSIS {
    for (uint32_t s = 0; s < shards_; ++s) {
      support::RoleScope writer(txns_[s]->writer_role_);
      txns_[s]->abort();
    }
  }

  /// Shared body of apply_batch/what_if: route, begin lockstep, apply
  /// sub-batches, savepoint, exchange to fixpoint. Leaves every shard's
  /// transaction OPEN (the caller commits or aborts). When `capture` is
  /// non-null the composed speculative solution is stored there before
  /// returning.
  BatchStats exchange_batch(const UpdateBatch& batch, Solution* capture)
      PARGREEDY_NO_THREAD_SAFETY_ANALYSIS {
    PG_CHECK_MSG(batch.endpoints_in_range(num_vertices()),
                 "batch references a vertex >= " << num_vertices());
    // One batch_id for the whole update: the per-shard engine applies
    // below and every exchange round in run_exchange inherit it.
    PG_OBS_BATCH_SCOPE(corr_batch);
    PG_OBS_SPAN2(span_batch, "exchange_batch", "shard", "batch_size",
                 batch.size(), "batch_id", PG_OBS_BATCH_ID());
    RoutedBatch routed = route_batch(batch, *owner_, shards_);
    for (uint32_t s = 0; s < shards_; ++s)
      for (const VertexId v : routed.new_ghosts[s]) add_ghost(s, v);
    BatchStats stats;
    std::vector<EngineSnapshot> savepoints;
    savepoints.reserve(shards_);
    for (uint32_t s = 0; s < shards_; ++s) {
      PG_OBS_SHARD_SCOPE(corr_shard, s);
      PG_OBS_EVENT1(kShardApply, routed.per_shard[s].size());
      support::RoleScope writer(txns_[s]->writer_role_);
      txns_[s]->begin();
      if (!routed.per_shard[s].empty()) {
        ScopedNumWorkers width(workers_per_shard_);
        stats.accumulate(txns_[s]->apply(routed.per_shard[s]));
      }
      savepoints.push_back(txns_[s]->savepoint());
    }
    last_exchange_ = run_exchange(&savepoints);
    lifetime_exchange_.accumulate(last_exchange_);
    if (capture != nullptr) *capture = solution();
    return stats;
  }

  uint32_t shards_;
  std::string partitioner_name_;
  int workers_per_shard_;
  // The cached ownership labelling, shared with composed read views.
  std::shared_ptr<const std::vector<uint32_t>> owner_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<std::unique_ptr<Transaction<Traits>>> txns_;
  // Ghost candidate sets, per shard: every vertex that ever had a local
  // cross edge (append-only; liveness is re-checked against the
  // overlay's cross_degree, so stale candidates cost one O(1) test).
  std::vector<std::vector<VertexId>> ghosts_;
  std::vector<std::vector<uint8_t>> ghost_member_;
  ExchangeStats last_exchange_;
  ExchangeStats lifetime_exchange_;
  ExchangeStats construction_stats_;
};

/// Sharded dynamic MIS (uint8_t in_set entries).
using ShardedMisEngine = ShardedEngine<MisTxnTraits>;

/// Sharded dynamic matching (VertexId partner entries).
using ShardedMatchingEngine = ShardedEngine<MatchingTxnTraits>;

}  // namespace pargreedy
