// GhostPolicy: the per-problem rules of the boundary-cone exchange.
//
// Each shard's engine covers the full vertex universe but stores only the
// edges with at least one owned endpoint. A non-owned vertex with live
// local edges is a *ghost*: the shard cannot decide it, but its value
// influences owned decisions across the cross edges. The exchange loop
// (shard/sharded_engine.hpp) repeatedly *forces* every ghost's activity
// to reflect its owner shard's current decision, re-propagates, and
// iterates to fixpoint. This header defines, per engine, (a) how a
// vertex's authoritative solution value is read from its owner and (b)
// what activity a ghost must be forced to so the local greedy
// reproduces the global one:
//
//   MIS       a ghost is forced active iff its owner has it IN the set.
//             An in-set ghost must block lower-priority owned neighbors;
//             an out-of-set (or inactive) ghost blocks nobody, and
//             deactivating it removes it from local consideration
//             entirely — its local decision is never exported.
//
//   Matching  a ghost is forced active iff its owner has it active AND
//             it is not matched into some *other* shard: a ghost matched
//             across a different boundary is taken (deactivate it so it
//             cannot be matched again locally), while a ghost matched to
//             a vertex owned here must stay active so the local greedy
//             re-derives exactly that cross-shard pair, and an unmatched
//             active ghost stays available for local proposals.
//
// Soundness vs uniqueness. The global greedy solution is always a
// fixpoint of this forcing loop (strong induction over the priority
// order: with every earlier element consistent in every shard, an owner
// shard — which stores its vertex's entire neighborhood — decides it
// exactly as the global greedy does, and a ghost forced by these rules
// reproduces its owner's value locally). Whether it is the ONLY
// fixpoint differs per engine:
//
//   MIS       unique (kUniqueFixpoint below). A vertex is blocked only
//             by strictly-earlier in-set neighbors, so a cycle of
//             mutually-supporting wrong claims would need priorities
//             strictly decreasing around a cycle — impossible under a
//             total order. The earliest wrong local value anywhere
//             therefore cannot exist, and reaching activity fixpoint IS
//             reaching the global solution.
//
//   Matching  NOT unique. Deactivating a ghost prunes ALL its local
//             edges, including ones earlier than the owner's claimed
//             matching edge — so two shards can lock into a pair of
//             internal matchings whose stale cross-boundary
//             deactivations justify each other while the global greedy
//             would have matched across the cut. The exchange therefore
//             validates every candidate fixpoint against the greedy
//             matching certificate restricted to cross edges (for every
//             live cross edge with both endpoints active, the owners
//             agree on whether it is matched, and if not, one endpoint
//             is matched via an edge no later in the priority order) and
//             breaks a failed candidate with a deterministic
//             priority-order arbitration: re-force every ghost from the
//             exact greedy solution of the composed live graph, after
//             which one repropagation per shard lands on the global
//             fixpoint (by the soundness induction above, now applied to
//             consistent claims). docs/ARCHITECTURE.md has the prose
//             version of both arguments.
#pragma once

#include "graph/types.hpp"
#include "txn/engine_traits.hpp"

namespace pargreedy {

/// Per-traits exchange rules; specialized below for the two engines.
/// (A template, not trait statics, so the txn layer stays independent of
/// the shard layer.)
template <typename Traits>
struct GhostPolicy;

template <>
struct GhostPolicy<MisTxnTraits> {
  using Engine = DynamicMis;
  using Value = MisTxnTraits::Value;

  /// Activity fixpoints are unique for MIS (see file comment): no
  /// certificate validation or arbitration is ever needed.
  static constexpr bool kUniqueFixpoint = true;

  /// v's authoritative solution entry, read from its owner's engine.
  static Value value(const Engine& owner, VertexId v) {
    return owner.in_set(v) ? Value{1} : Value{0};
  }

  /// Activity ghost v must be forced to in shard `shard` (see file
  /// comment). `owner_of` maps any vertex to its owning shard.
  template <typename OwnerOf>
  static bool ghost_active(const Engine& owner, VertexId v, uint32_t shard,
                           OwnerOf&& owner_of) {
    (void)shard;
    (void)owner_of;
    return owner.in_set(v);
  }
};

template <>
struct GhostPolicy<MatchingTxnTraits> {
  using Engine = DynamicMatching;
  using Value = MatchingTxnTraits::Value;

  /// Matching's activity fixpoints are NOT unique (see file comment):
  /// candidate fixpoints must pass the boundary certificate, with
  /// priority-order arbitration as the escape hatch.
  static constexpr bool kUniqueFixpoint = false;

  static Value value(const Engine& owner, VertexId v) {
    return owner.matched_with(v);
  }

  /// The forcing rule on raw claims — shared by the engine-reading path
  /// below and the arbitration path, which grounds (active, partner) in
  /// the exact global solution instead of a live engine.
  template <typename OwnerOf>
  static bool ghost_active_claims(bool owner_active, VertexId partner,
                                  uint32_t shard, OwnerOf&& owner_of) {
    if (!owner_active) return false;
    return partner == kInvalidVertex || owner_of(partner) == shard;
  }

  template <typename OwnerOf>
  static bool ghost_active(const Engine& owner, VertexId v, uint32_t shard,
                           OwnerOf&& owner_of) {
    return ghost_active_claims(owner.active(v), owner.matched_with(v),
                               shard, owner_of);
  }
};

}  // namespace pargreedy
