// ShardedVersion: the vector clock of a sharded engine's committed
// state — one per-shard Transaction version per shard.
//
// The sharded engine drives its per-shard Transactions in lockstep
// (every apply_batch opens, applies, and commits on every shard, even
// shards the batch never touches), so after any completed writer call
// the clock is *unified*: every component equal. The vector form exists
// because readers can race a commit sequence mid-flight — shard commits
// happen in index order, so a concurrent observer may see {v+1, v, v}.
// unified() is the detector; value() is the scalar version of a clock
// known to be unified (checked).
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace pargreedy {

/// Per-shard committed-version vector (see file comment).
struct ShardedVersion {
  std::vector<uint64_t> shard_versions;

  /// True iff every shard reports the same committed version — always
  /// the case between writer calls (lockstep commits).
  [[nodiscard]] bool unified() const {
    for (const uint64_t v : shard_versions)
      if (v != shard_versions.front()) return false;
    return true;
  }

  /// The common version of a unified clock. Checked: unified().
  [[nodiscard]] uint64_t value() const {
    PG_CHECK_MSG(!shard_versions.empty(), "empty ShardedVersion");
    PG_CHECK_MSG(unified(),
                 "ShardedVersion read mid-commit is not unified; retry "
                 "between writer calls");
    return shard_versions.front();
  }
};

}  // namespace pargreedy
