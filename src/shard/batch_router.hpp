// Batch routing: splitting one user UpdateBatch into per-shard
// sub-batches whose union reproduces the original semantics.
//
// Routing rules (derived from ownership, see shard/partitioner.hpp):
//
//   activate / deactivate   -> the vertex's owner shard only. Ghost
//                              copies elsewhere follow via the exchange
//                              loop (the owner's new decision changes
//                              what ghosts are forced to).
//   insert / delete /       -> every shard owning an endpoint (one shard
//   reweight of an edge        when both endpoints share an owner, both
//                              shards for a cross edge — each stores the
//                              edge, so each must see the mutation).
//   reweight of a vertex    -> broadcast to every shard. A vertex's
//                              weight feeds priority keys wherever it
//                              appears — including as a ghost — and the
//                              per-shard priority orders must stay
//                              identical for the exchange to compose.
//
// Within each category the queue order of the original batch is
// preserved per shard, so same-batch precedence (inserts win over
// deletes, last reweight wins, ...) holds shard-locally exactly as it
// does globally. Consequence for stats: a cross edge's insert/delete is
// counted by BOTH owners, so summed per-shard BatchStats over-count
// cross operations relative to a single engine — deterministic, and
// documented in docs/BENCH.md.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dynamic/update_batch.hpp"
#include "graph/types.hpp"

namespace pargreedy {

/// One user batch split by ownership (see file comment). `new_ghosts[s]`
/// lists the non-owned endpoints shard s gains edges to via this batch's
/// inserts — the exchange loop adds them to its ghost candidate set.
struct RoutedBatch {
  std::vector<UpdateBatch> per_shard;
  std::vector<std::vector<VertexId>> new_ghosts;
};

/// Splits `batch` across `shards` sub-batches under the cached `owner`
/// labelling (one entry per vertex).
inline RoutedBatch route_batch(const UpdateBatch& batch,
                               std::span<const uint32_t> owner,
                               uint32_t shards) {
  RoutedBatch out;
  out.per_shard.resize(shards);
  out.new_ghosts.resize(shards);
  const auto edge_targets = [&](const Edge& e, auto&& fn) {
    const uint32_t a = owner[e.u];
    const uint32_t b = owner[e.v];
    fn(a);
    if (b != a) fn(b);
  };
  for (const VertexId v : batch.deactivates())
    out.per_shard[owner[v]].deactivate(v);
  for (const VertexId v : batch.activates())
    out.per_shard[owner[v]].activate(v);
  for (const Edge& e : batch.deletes())
    edge_targets(e, [&](uint32_t s) { out.per_shard[s].delete_edge(e.u, e.v); });
  const auto& inserts = batch.inserts();
  const auto& insert_weights = batch.insert_weights();
  for (std::size_t i = 0; i < inserts.size(); ++i) {
    const Edge& e = inserts[i];
    edge_targets(e, [&](uint32_t s) {
      out.per_shard[s].insert_edge(e.u, e.v, insert_weights[i]);
      if (owner[e.u] != s) out.new_ghosts[s].push_back(e.u);
      if (owner[e.v] != s) out.new_ghosts[s].push_back(e.v);
    });
  }
  const auto& reweights = batch.edge_reweights();
  const auto& reweight_weights = batch.edge_reweight_weights();
  for (std::size_t i = 0; i < reweights.size(); ++i) {
    const Edge& e = reweights[i];
    edge_targets(e, [&](uint32_t s) {
      out.per_shard[s].reweight_edge(e.u, e.v, reweight_weights[i]);
    });
  }
  const auto& vreweights = batch.vertex_reweights();
  const auto& vreweight_weights = batch.vertex_reweight_weights();
  for (std::size_t i = 0; i < vreweights.size(); ++i)
    for (uint32_t s = 0; s < shards; ++s)
      out.per_shard[s].reweight_vertex(vreweights[i], vreweight_weights[i]);
  return out;
}

}  // namespace pargreedy
