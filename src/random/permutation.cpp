#include "random/permutation.hpp"

#include <algorithm>
#include <cstring>

#include "parallel/counting_sort.hpp"
#include "parallel/parallel_for.hpp"
#include "random/hash.hpp"
#include "support/check.hpp"

namespace pargreedy {

namespace {

/// Number of top-bit buckets used by the two-pass parallel sort.
constexpr int64_t kSortBuckets = 1024;
constexpr int kBucketShift = 54;  // 64 - log2(kSortBuckets)

}  // namespace

void parallel_sort_by_key(std::span<uint32_t> items,
                          const std::vector<uint64_t>& keys) {
  const int64_t n = static_cast<int64_t>(items.size());
  auto cmp = [&](uint32_t a, uint32_t b) {
    // Tie-break on the item id so the order is a total function of the keys.
    return keys[a] != keys[b] ? keys[a] < keys[b] : a < b;
  };
  if (n < 1 << 16 || num_workers() == 1) {
    std::sort(items.begin(), items.end(), cmp);
    return;
  }
  // Pass 1: stable counting sort into kSortBuckets buckets by the key's top
  // bits. Pass 2: std::sort each bucket independently in parallel. Both
  // passes are deterministic, so the result is too.
  std::vector<uint32_t> scratch(items.size());
  const std::vector<int64_t> offsets = counting_sort<uint32_t>(
      std::span<const uint32_t>(items.data(), items.size()),
      std::span<uint32_t>(scratch), kSortBuckets,
      [&](uint32_t v) { return static_cast<int64_t>(keys[v] >> kBucketShift); });
  std::memcpy(items.data(), scratch.data(), items.size() * sizeof(uint32_t));
  parallel_for(
      0, kSortBuckets,
      [&](int64_t b) {
        std::sort(items.begin() + offsets[static_cast<std::size_t>(b)],
                  items.begin() + offsets[static_cast<std::size_t>(b) + 1],
                  cmp);
      },
      /*grain=*/1);
}

std::vector<uint32_t> random_permutation(uint64_t n, uint64_t seed) {
  std::vector<uint32_t> perm(n);
  parallel_for(0, static_cast<int64_t>(n),
               [&](int64_t i) { perm[static_cast<std::size_t>(i)] =
                                    static_cast<uint32_t>(i); });
  std::vector<uint64_t> keys(n);
  parallel_for(0, static_cast<int64_t>(n), [&](int64_t i) {
    keys[static_cast<std::size_t>(i)] =
        hash64(seed, static_cast<uint64_t>(i));
  });
  parallel_sort_by_key(std::span<uint32_t>(perm), keys);
  return perm;
}

std::vector<uint32_t> fisher_yates_permutation(uint64_t n, Xoshiro256& rng) {
  std::vector<uint32_t> perm(n);
  for (uint64_t i = 0; i < n; ++i) perm[i] = static_cast<uint32_t>(i);
  for (uint64_t i = n; i > 1; --i) {
    const uint64_t j = rng.range(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

std::vector<uint32_t> invert_permutation(std::span<const uint32_t> perm) {
  std::vector<uint32_t> rank(perm.size());
  parallel_for(0, static_cast<int64_t>(perm.size()), [&](int64_t i) {
    rank[perm[static_cast<std::size_t>(i)]] = static_cast<uint32_t>(i);
  });
  return rank;
}

bool is_valid_permutation(std::span<const uint32_t> perm) {
  const std::size_t n = perm.size();
  std::vector<uint8_t> seen(n, 0);
  for (uint32_t v : perm) {
    if (v >= n || seen[v]) return false;
    seen[v] = 1;
  }
  return true;
}

}  // namespace pargreedy
