// xoshiro256** — a fast, high-quality sequential PRNG (Blackman & Vigna).
//
// Used where a *stream* of randomness is more natural than counter-based
// hashing: the sequential Fisher–Yates shuffle and the Barabási–Albert
// generator. Satisfies std::uniform_random_bit_generator, so it plugs into
// <random> distributions as well.
#pragma once

#include <cstdint>

#include "random/hash.hpp"

namespace pargreedy {

class Xoshiro256 {
 public:
  using result_type = uint64_t;

  /// Seeds the four state words via SplitMix64, per the reference seeding.
  explicit Xoshiro256(uint64_t seed) {
    uint64_t x = seed;
    for (auto& w : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      w = mix64(x);
    }
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;  // avoid all-zero
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  result_type operator()() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform draw from [0, bound), bound > 0 (Lemire reduction).
  uint64_t range(uint64_t bound) {
    const __uint128_t wide = static_cast<__uint128_t>((*this)()) * bound;
    return static_cast<uint64_t>(wide >> 64);
  }

  /// Uniform double in [0, 1).
  double unit() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// The reference jump(): advances 2^128 steps, for independent substreams.
  void jump() {
    static constexpr uint64_t kJump[] = {0x180ec6d33cfd0abaULL,
                                         0xd5a61266f0c9392cULL,
                                         0xa9582618e03fc9aaULL,
                                         0x39abdc4529b1661cULL};
    uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (uint64_t jump_word : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (jump_word & (uint64_t{1} << b)) {
          s0 ^= s_[0];
          s1 ^= s_[1];
          s2 ^= s_[2];
          s3 ^= s_[3];
        }
        (*this)();
      }
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
  }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace pargreedy
