// Random permutations — the ordering pi that the paper's guarantees range
// over ("for a random ordering of the vertices, the dependence length ... is
// polylogarithmic").
//
// random_permutation() is deterministic in (n, seed) and independent of the
// worker count: every element gets a 64-bit counter-based hash key and the
// elements are sorted by (key, index). This is how a fixed pi is shared
// between the sequential and parallel algorithms so they return identical
// results.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "random/xoshiro.hpp"

namespace pargreedy {

/// Uniformly random permutation of [0, n), deterministic in (n, seed).
std::vector<uint32_t> random_permutation(uint64_t n, uint64_t seed);

/// Sequential Fisher–Yates shuffle of [0, n) driven by `rng`. Reference
/// implementation used to cross-check random_permutation's uniformity.
std::vector<uint32_t> fisher_yates_permutation(uint64_t n, Xoshiro256& rng);

/// Inverse of a permutation: rank[perm[i]] = i. Parallel, linear work.
std::vector<uint32_t> invert_permutation(std::span<const uint32_t> perm);

/// True iff `perm` is a permutation of 0..n-1.
bool is_valid_permutation(std::span<const uint32_t> perm);

/// Sorts `items` in parallel by a uint64 key with index tie-breaking:
/// stable result determined only by the key function. Used internally by
/// random_permutation and exposed for the generators.
void parallel_sort_by_key(std::span<uint32_t> items,
                          const std::vector<uint64_t>& keys);

}  // namespace pargreedy
