// Counter-based (splittable) hashing — the source of all randomness used by
// the parallel algorithms.
//
// A counter-based generator makes random draws a pure function of
// (seed, index), which is what guarantees the paper's determinism property:
// the random ordering pi, and therefore the lexicographically-first MIS/MM,
// depends only on the seed — never on thread count or scheduling.
#pragma once

#include <cstdint>

namespace pargreedy {

/// Finalizer from SplitMix64 (Steele et al.): a high-quality 64-bit mixer.
/// Bijective on uint64_t, so distinct inputs give distinct outputs.
constexpr uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hash of a (seed, index) pair; the workhorse for per-element randomness.
constexpr uint64_t hash64(uint64_t seed, uint64_t i) {
  return mix64(mix64(seed) ^ mix64(i + 0x9e3779b97f4a7c15ULL));
}

/// 32-bit variant (top bits of the 64-bit hash).
constexpr uint32_t hash32(uint64_t seed, uint64_t i) {
  return static_cast<uint32_t>(hash64(seed, i) >> 32);
}

/// Uniform draw from [0, bound) via Lemire's multiply-shift reduction.
/// Slightly biased for bounds that do not divide 2^64; negligible for the
/// bounds used here (graph sizes << 2^64).
constexpr uint64_t hash_range(uint64_t seed, uint64_t i, uint64_t bound) {
  const uint64_t h = hash64(seed, i);
  // Multiply-high of h and bound.
  const __uint128_t wide = static_cast<__uint128_t>(h) * bound;
  return static_cast<uint64_t>(wide >> 64);
}

/// Uniform double in [0, 1).
constexpr double hash_unit(uint64_t seed, uint64_t i) {
  return static_cast<double>(hash64(seed, i) >> 11) * 0x1.0p-53;
}

/// Stateless splittable RNG view: a seed plus helpers, convenient to pass
/// into generators and algorithms.
class HashRng {
 public:
  explicit HashRng(uint64_t seed) : seed_(seed) {}

  /// Derives an independent child stream (for nested structures).
  [[nodiscard]] HashRng child(uint64_t stream) const {
    return HashRng(hash64(seed_, stream));
  }

  [[nodiscard]] uint64_t bits(uint64_t i) const { return hash64(seed_, i); }
  [[nodiscard]] uint64_t range(uint64_t i, uint64_t bound) const {
    return hash_range(seed_, i, bound);
  }
  [[nodiscard]] double unit(uint64_t i) const { return hash_unit(seed_, i); }
  [[nodiscard]] uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
};

}  // namespace pargreedy
