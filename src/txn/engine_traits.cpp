#include "txn/engine_traits.hpp"

#include <unordered_map>
#include <unordered_set>

namespace pargreedy {
namespace {

/// First-logged old decision value per item across [mark, journal.size())
/// — i.e. each flipped item's value at the watermark. Insertion order is
/// chronological, which unordered_map::emplace preserves per key (later
/// flips of the same item do not overwrite).
std::unordered_map<uint64_t, uint8_t> first_old_decisions(
    const EngineJournal& journal, std::size_t mark) {
  std::unordered_map<uint64_t, uint8_t> first;
  for (std::size_t i = mark; i < journal.size(); ++i) {
    const EngineUndoRecord& r = journal[i];
    if (r.kind == EngineUndoRecord::Kind::kDecision)
      first.emplace(r.item, r.flag);
  }
  return first;
}

}  // namespace

std::vector<std::pair<uint64_t, uint8_t>> MisTxnTraits::reverse_delta(
    const Engine& engine, const EngineJournal& journal, std::size_t mark) {
  std::vector<std::pair<uint64_t, uint8_t>> delta;
  for (const auto& [v, old] : first_old_decisions(journal, mark)) {
    const uint8_t current =
        engine.in_set(static_cast<VertexId>(v)) ? 1 : 0;
    if (current != old) delta.emplace_back(v, old);
  }
  return delta;
}

std::vector<std::pair<uint64_t, VertexId>> MatchingTxnTraits::reverse_delta(
    const Engine& engine, const EngineJournal& journal, std::size_t mark) {
  // A vertex's partner changes only through a flip of an incident slot,
  // and its watermark-time matched slot (if any) must itself appear among
  // the flips: while that slot stayed in the matching, no other incident
  // slot could join it, so the first incident change is the slot's own
  // flip (old bit 1). The flipped slots therefore carry both the affected
  // vertex set and every previous partner.
  const auto first = first_old_decisions(journal, mark);
  std::unordered_map<VertexId, VertexId> previous_partner;
  for (const auto& [slot, old] : first) {
    if (!old) continue;  // slot was unmatched at the watermark
    const Edge e = engine.graph().slot_edge(static_cast<EdgeSlot>(slot));
    previous_partner[e.u] = e.v;
    previous_partner[e.v] = e.u;
  }
  std::vector<std::pair<uint64_t, VertexId>> delta;
  auto consider = [&](VertexId v) {
    const auto it = previous_partner.find(v);
    const VertexId before =
        it == previous_partner.end() ? kInvalidVertex : it->second;
    if (engine.matched_with(v) != before) delta.emplace_back(v, before);
  };
  std::unordered_set<VertexId> seen;
  for (const auto& entry : first) {
    const Edge e =
        engine.graph().slot_edge(static_cast<EdgeSlot>(entry.first));
    for (const VertexId v : {e.u, e.v})
      if (seen.insert(v).second) consider(v);
  }
  return delta;
}

}  // namespace pargreedy
