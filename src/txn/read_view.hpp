// ReadView: the one value type every committed read returns.
//
// Before this type the transaction layer had three read entry points —
// committed_solution() (copy the newest solution), solution_at(v) (copy a
// historical one), and the raw PublishedState accessors (zero-copy, but
// the caller must hold a ReadGuard for exactly the right scope). A
// ReadView folds all three into one shape:
//
//   ReadView<Value> view = txn.read();        // newest committed version
//   ReadView<Value> old  = txn.read(v);       // any retained version
//   view.version();                           // which commit this is
//   view[u];  view.values();                  // zero-copy entries
//   view.to_vector();                         // the old copying behavior
//
// A view is a self-contained *value*: it holds a shared_ptr to the
// immutable PublishedVersion, acquired under a short epoch pin inside
// read(). The pin is released before read() returns — the shared_ptr,
// not the pin, keeps the version alive — so views are copyable, movable,
// storable across writer commits, and never occupy one of the bounded
// epoch slots while held. (Holding a view only retains one immutable
// version's memory; it cannot block the writer or delay reclamation of
// anything else.) Acquiring the shared_ptr touches an atomic refcount,
// which is the deliberate price for escaping guard-scoped lifetimes;
// readers that want the refcount-free fast path can still use
// PublishedState's guarded accessors directly.
//
// Thread safety: read() is lock-free and callable from any thread at any
// time (same contract as the committed_solution it generalizes). A
// ReadView itself is immutable after construction; distinct views may be
// used from distinct threads freely, and one view may be shared by
// const-reference like any immutable object.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "support/check.hpp"
#include "txn/published_state.hpp"

namespace pargreedy {

/// An immutable, self-contained view of one committed solution version
/// (see file comment). Obtained from Transaction::read() or
/// ShardedEngine::read(); default-constructed views are empty and
/// queryable only via valid().
template <typename Value>
class ReadView {
 public:
  ReadView() = default;

  /// Wraps a published version (the transaction/shard layers call this;
  /// user code goes through their read()).
  explicit ReadView(std::shared_ptr<const PublishedVersion<Value>> version)
      : version_(std::move(version)) {}

  /// False for a default-constructed (empty) view.
  [[nodiscard]] bool valid() const noexcept { return version_ != nullptr; }

  /// The committed version id this view observes.
  [[nodiscard]] uint64_t version() const {
    check();
    return version_->version;
  }

  /// The engine mutation-epoch stamp recorded at publish time.
  [[nodiscard]] uint64_t engine_epoch() const {
    check();
    return version_->engine_epoch;
  }

  /// Recomputes the torn-read checksum (always true for views — the
  /// shared_ptr ownership makes reclamation-under-foot impossible — but
  /// exposed so stress suites can assert it).
  [[nodiscard]] bool verify_checksum() const {
    check();
    return version_->verify_checksum();
  }

  /// Number of solution entries (n for both engines).
  [[nodiscard]] std::size_t size() const {
    check();
    return version_->solution.size();
  }

  /// Zero-copy entry access: in_set bit (MIS) or partner id (matching).
  [[nodiscard]] Value operator[](std::size_t i) const {
    check();
    return version_->solution[i];
  }

  /// The whole solution, zero-copy; valid for the view's lifetime.
  [[nodiscard]] std::span<const Value> values() const {
    check();
    return version_->solution;
  }

  /// The solution as an owned vector — the exact value the historical
  /// committed_solution()/solution_at() calls returned.
  [[nodiscard]] std::vector<Value> to_vector() const {
    check();
    return version_->solution;
  }

 private:
  void check() const {
    PG_CHECK_MSG(version_ != nullptr, "empty ReadView");
  }

  std::shared_ptr<const PublishedVersion<Value>> version_;
};

}  // namespace pargreedy
