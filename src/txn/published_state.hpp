// The lock-free committed-read path: immutable published solution
// versions behind one atomic pointer, reclaimed via epochs.
//
// The transactional writer keeps two representations of committed
// history. The VersionRing stores compact reverse *deltas* — the
// writer-side source of truth, cheap to push, but reconstruction walks
// writer state and so lives under the single-writer contract. This file
// adds the reader-side representation: at every commit the writer
// materializes the full solution as an immutable PublishedVersion,
// assembles the retained window [oldest, latest] into an immutable
// Table, and swaps it in with one atomic exchange. Readers follow the
// pointer under an epoch pin (txn/epoch.hpp) — no mutex, no wait on
// in-flight speculation, no interaction with the writer beyond delaying
// reclamation of superseded tables.
//
//   writer, per commit:  build version -> build table -> exchange
//                        pointer -> advance epoch -> free tables whose
//                        retire epoch is below every pinned epoch
//   reader, per read:    pin epoch (RAII) -> load pointer -> read the
//                        immutable table -> unpin
//
// Staleness bound: a reader sees exactly the window some recent
// exchange published — every value it can observe equals some committed
// version in [oldest_version(), latest_version()], never speculative or
// aborted state. The property tests check this bit-exactly against
// VersionRing reconstruction.
//
// Torn-read detection: each PublishedVersion carries a checksum (mix64
// fold over the version id and solution entries, random/hash.hpp)
// computed by the writer before the exchange. Immutability means a
// reader recomputing the checksum must match; any mismatch is a torn or
// reclaimed-under-foot read, and the stress suites verify on every
// observation to make such a bug deterministic instead of heisenbug.
//
// Memory model: the pointer exchange and reader loads are seq_cst,
// joining the epoch protocol's total order (the reclamation-safety
// argument lives in txn/epoch.hpp). Versions are shared_ptr-owned by
// the tables that retain them, and only the writer copies those
// shared_ptrs (table assembly at publish); readers touch no refcounts.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "random/hash.hpp"
#include "support/check.hpp"
#include "support/thread_annotations.hpp"
#include "txn/epoch.hpp"

namespace pargreedy {

/// Version sentinel meaning "the newest committed version" in the read
/// APIs (Transaction::read, PublishedState::acquire,
/// ShardedEngine::read).
inline constexpr uint64_t kLatestVersion = ~uint64_t{0};

/// One committed solution, frozen at publish time. Immutable after
/// construction — that immutability is what makes the lock-free reads
/// sound, and the checksum is what makes violations detectable.
template <typename Value>
struct PublishedVersion {
  uint64_t version;         ///< committed version id (ring numbering)
  uint64_t engine_epoch;    ///< engine mutation-epoch stamp at publish
  uint64_t published_epoch; ///< EpochManager epoch when published
  std::vector<Value> solution;
  uint64_t checksum;        ///< checksum(version, solution), set at publish

  /// The torn-read checksum: a mix64 fold over the version id and every
  /// solution entry (order-sensitive via the chaining).
  static uint64_t compute_checksum(uint64_t version,
                                   const std::vector<Value>& solution) {
    uint64_t h = mix64(version ^ 0x5075626c69736864ULL);  // "Publishd"
    for (const Value v : solution) h = mix64(h ^ static_cast<uint64_t>(v));
    return h;
  }

  /// Recomputes the checksum from the stored fields and compares. A
  /// reader observing false has seen memory mutated after publication —
  /// a torn read; the stress suites assert this on every observation.
  [[nodiscard]] bool verify_checksum() const {
    return checksum == compute_checksum(version, solution);
  }
};

/// The retained committed window, published as a unit (see file
/// comment). Holds the versions oldest-first; shared_ptrs keep a
/// version alive across the consecutive tables that retain it.
template <typename Value>
class PublishedState {
 public:
  using Version = PublishedVersion<Value>;

  /// One immutable window [oldest .. latest], oldest first.
  struct Table {
    std::vector<std::shared_ptr<const Version>> versions;
  };

  /// Writer capability: publish/reclaim are single-writer (held by the
  /// owning Transaction during commit). Public so its annotations can
  /// be named by callers.
  support::Role writer_role_;

  /// The epoch manager readers pin through: `ReadGuard g(state.epochs_);`.
  /// Public (like the roles) so -Wthread-safety sees the same capability
  /// expression at acquire and require sites.
  EpochManager epochs_;

  /// Retains up to `retention` full versions (the Transaction passes
  /// ring capacity + 1 so the published window and the ring's
  /// reconstructible window are the same [oldest, latest]).
  explicit PublishedState(std::size_t retention) : retention_(retention) {
    PG_CHECK_MSG(retention >= 1, "published retention must be >= 1");
  }

  PublishedState(const PublishedState&) = delete;
  PublishedState& operator=(const PublishedState&) = delete;

  /// By protocol the destroying thread is the writer and no reader can
  /// be live (the epoch slots make a straggler guard's unpin safe, but
  /// its reads would be UB — same rule as destroying any engine).
  ~PublishedState() PARGREEDY_NO_THREAD_SAFETY_ANALYSIS {
    delete table_.load(std::memory_order_relaxed);
    // retired_ unique_ptrs free themselves.
  }

  /// True once publish() has run at least once (readers may only read a
  /// state that has a baseline published).
  [[nodiscard]] bool has_published() const noexcept {
    return table_.load(std::memory_order_seq_cst) != nullptr;
  }

  /// Publishes `solution` as committed version `version`: builds the
  /// immutable PublishedVersion (checksummed), assembles the new window
  /// (evicting past retention), swaps the table pointer, advances the
  /// epoch, and frees every superseded table no reader still pins.
  void publish(uint64_t version, uint64_t engine_epoch,
               std::vector<Value> solution) PARGREEDY_REQUIRES(writer_role_) {
    PG_OBS_COUNT(obs::kPublishedVersions, 1);
    const uint64_t checksum = Version::compute_checksum(version, solution);
    auto ver = std::make_shared<const Version>(
        Version{version, engine_epoch, epochs_.current_epoch(),
                std::move(solution), checksum});

    const Table* old = table_.load(std::memory_order_relaxed);
    auto next = std::make_unique<Table>();
    if (old != nullptr) {
      PG_CHECK_MSG(version == old->versions.back()->version + 1,
                   "published versions must be consecutive (publishing "
                       << version << " after "
                       << old->versions.back()->version << ")");
      next->versions = old->versions;
      if (next->versions.size() == retention_)
        next->versions.erase(next->versions.begin());
    }
    next->versions.push_back(std::move(ver));

    // X: the exchange readers race against; A: the epoch advance; then
    // the reclamation scan — the X < A < scan order is what the safety
    // argument in txn/epoch.hpp relies on.
    const Table* prev = table_.exchange(next.release(),
                                        std::memory_order_seq_cst);
    const uint64_t retire_epoch = epochs_.current_epoch();
    {
      support::RoleScope epoch_writer(epochs_.writer_role_);
      epochs_.advance();
    }
    if (prev != nullptr)
      retired_.emplace_back(retire_epoch,
                            std::unique_ptr<const Table>(prev));
    reclaim();
  }

  /// Frees retired tables whose retire epoch is below every pinned
  /// epoch; returns how many were freed. Called by publish(); exposed so
  /// tests can drive reclamation ordering explicitly.
  std::size_t reclaim() PARGREEDY_REQUIRES(writer_role_) {
    const uint64_t min_pinned = epochs_.min_pinned();
    // Retire epochs are recorded in increasing order, so the freeable
    // entries form a prefix; the first still-protected entry stops the
    // scan.
    std::size_t freed = 0;
    while (freed < retired_.size() && retired_[freed].first < min_pinned)
      ++freed;
    if (freed > 0) {
      retired_.erase(retired_.begin(),
                     retired_.begin() + static_cast<std::ptrdiff_t>(freed));
      PG_OBS_COUNT(obs::kEpochReclaimed, freed);
    }
    return freed;
  }

  /// Retired-but-not-yet-freed tables (tests/introspection; writer-only
  /// because the list is writer state).
  [[nodiscard]] std::size_t retired_count() const
      PARGREEDY_REQUIRES(writer_role_) {
    return retired_.size();
  }

  // ---- Reader surface -------------------------------------------------
  //
  // The zero-copy accessors require an epoch pin (the shared reader
  // capability) — the guard is what keeps the returned references
  // alive. The *_copy conveniences pin internally and return by value;
  // they are the calls the Transaction read API forwards to and are
  // callable from any thread with no capability at all.

  /// The retained window under `guard`. References into it are valid
  /// for the guard's lifetime.
  [[nodiscard]] const Table& window(const ReadGuard& guard) const
      PARGREEDY_REQUIRES_SHARED(epochs_.reader_role_) {
    (void)guard;
    const Table* t = table_.load(std::memory_order_seq_cst);
    PG_CHECK_MSG(t != nullptr, "nothing published yet");
    return *t;
  }

  /// The newest published version under `guard`.
  [[nodiscard]] const Version& latest(const ReadGuard& guard) const
      PARGREEDY_REQUIRES_SHARED(epochs_.reader_role_) {
    return *window(guard).versions.back();
  }

  /// Published version `v` under `guard`. Checked: `v` is within the
  /// retained window of the table this reader observes.
  [[nodiscard]] const Version& at(uint64_t v, const ReadGuard& guard) const
      PARGREEDY_REQUIRES_SHARED(epochs_.reader_role_) {
    const Table& t = window(guard);
    const uint64_t oldest = t.versions.front()->version;
    const uint64_t latest = t.versions.back()->version;
    PG_CHECK_MSG(v >= oldest && v <= latest,
                 "version " << v << " outside published retention ["
                            << oldest << ", " << latest << "]");
    PG_OBS_HIST(obs::kReaderStaleDistance, latest - v);
    return *t.versions[v - oldest];
  }

  /// Shared ownership of version `v` (kLatestVersion = newest), pinned
  /// only for the duration of this call: the returned shared_ptr — not
  /// an epoch pin — keeps the version alive, so the caller may hold it
  /// indefinitely without occupying a pin slot. This is the seam
  /// ReadView (txn/read_view.hpp) is built on. Checked: `v` within the
  /// retained window.
  [[nodiscard]] std::shared_ptr<const Version> acquire(
      uint64_t v = kLatestVersion) const {
    ReadGuard guard(epochs_);
    const Table& t = window(guard);
    if (v == kLatestVersion) return t.versions.back();
    const uint64_t oldest = t.versions.front()->version;
    const uint64_t latest = t.versions.back()->version;
    PG_CHECK_MSG(v >= oldest && v <= latest,
                 "version " << v << " outside published retention ["
                            << oldest << ", " << latest << "]");
    PG_OBS_HIST(obs::kReaderStaleDistance, latest - v);
    return t.versions[v - oldest];
  }

  /// Copy of the newest committed solution (pins internally).
  [[nodiscard]] std::vector<Value> latest_solution_copy() const {
    ReadGuard guard(epochs_);
    return latest(guard).solution;
  }

  /// Copy of the solution at version `v` (pins internally). Checked: `v`
  /// within retention.
  [[nodiscard]] std::vector<Value> solution_at_copy(uint64_t v) const {
    ReadGuard guard(epochs_);
    return at(v, guard).solution;
  }

  /// Newest published version id (pins internally).
  [[nodiscard]] uint64_t latest_version() const {
    ReadGuard guard(epochs_);
    return latest(guard).version;
  }

  /// Oldest published version id still retained (pins internally).
  [[nodiscard]] uint64_t oldest_version() const {
    ReadGuard guard(epochs_);
    return window(guard).versions.front()->version;
  }

 private:
  std::size_t retention_;
  std::atomic<const Table*> table_{nullptr};
  // (retire epoch, table) in retire order — writer-only state.
  std::vector<std::pair<uint64_t, std::unique_ptr<const Table>>> retired_
      PARGREEDY_GUARDED_BY(writer_role_);
};

}  // namespace pargreedy
