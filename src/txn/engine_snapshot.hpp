// EngineSnapshot: a copy-on-write checkpoint of a dynamic engine's full
// state — (OverlayGraph, solution, cached priority keys, lifetime
// BatchStats) — taken in O(1) and restored in O(dirty).
//
// Nothing is copied eagerly: the engine's representation already divides
// into shared immutable pages (the base CSR and the initial solution
// derived from it) and mutable deltas (overlay layers, decision bits,
// cached keys), and while a transaction's undo journal is attached every
// delta mutation logs its inverse. A snapshot is therefore the pair of
// journal watermarks plus the scalar stamps a replay cannot reconstruct
// (epochs, lifetime stats) — the TxnMark — tagged with the owning
// transaction's id so a stale snapshot (taken in an earlier transaction,
// whose journal records are gone) is rejected instead of silently
// corrupting state.
//
// Snapshots are the transaction layer's savepoints: Transaction::begin()
// takes one implicitly, Transaction::savepoint() hands one out for nested
// speculative batches, and Transaction::rollback_to() restores one.
#pragma once

#include <cstdint>

#include "dynamic/batch_stats.hpp"
#include "dynamic/undo_log.hpp"

namespace pargreedy {

/// An O(1) engine checkpoint, valid within the transaction that produced
/// it (see file comment). Opaque to callers: hand it back to
/// Transaction::rollback_to(). A snapshot dies with its transaction and
/// also when the transaction rolls back *past* it (to an earlier
/// snapshot) — both misuses throw rather than restore a wrong state.
struct EngineSnapshot {
  TxnMark mark;              ///< journal watermarks + scalar stamps
  uint64_t txn_id = 0;       ///< the transaction this snapshot belongs to
  uint64_t rollback_seq = 0; ///< rollbacks already performed at capture
                             ///< (validity check against later rewinds)
  BatchStats txn_stats;      ///< transaction-local counters at capture
};

}  // namespace pargreedy
