// Engine traits for the transaction layer: the few engine-specific
// operations Transaction<Traits> needs beyond the shared txn_* seams.
//
// Each trait binds an engine type to its solution representation and
// knows how to extract a *reverse solution delta* from the engine's undo
// journal: the solution entries that changed since a journal watermark,
// valued as they were at that watermark. Commits push these deltas into
// the VersionRing; in-flight reads use them to reconstruct the last
// committed solution without blocking on (or aborting) the transaction.
//
//   MisTxnTraits       solution is the in_set bitmap; every membership
//                      mutation is a journaled decision flip keyed by
//                      vertex, so the delta is the first-logged old value
//                      per flipped vertex.
//   MatchingTxnTraits  solution is the matched_with partner array, but
//                      the journal logs per-slot matching bits; the delta
//                      derives each touched vertex's previous partner
//                      from the first-logged old bit per flipped slot
//                      (a vertex's partner can only change through a flip
//                      of an incident slot, and its pre-transaction
//                      matched slot — if any — must itself have flipped,
//                      so the journal always contains the evidence).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "dynamic/dynamic_matching.hpp"
#include "dynamic/dynamic_mis.hpp"
#include "dynamic/engine_api.hpp"
#include "dynamic/undo_log.hpp"
#include "graph/types.hpp"

namespace pargreedy {

// The contract check for the unified engine surface: every engine the
// transaction (and shard) layer binds to must model DynamicEngineApi
// (dynamic/engine_api.hpp). Asserted here — next to the traits that do
// the binding — so an engine drifting away from the shared API fails to
// compile at the layer that depends on it.
static_assert(DynamicEngineApi<DynamicMis>,
              "DynamicMis no longer models the unified engine API");
static_assert(DynamicEngineApi<DynamicMatching>,
              "DynamicMatching no longer models the unified engine API");

/// Transaction-layer binding for DynamicMis (see file comment).
struct MisTxnTraits {
  using Engine = DynamicMis;
  using Value = uint8_t;

  /// Label value of the per-policy `txn.*{engine=...}` obs series.
  static constexpr const char* kName = "mis";

  static std::vector<Value> solution(const Engine& engine) {
    return engine.solution();
  }

  /// Solution entries changed since `mark`, with their values at `mark`
  /// (empty when the journal span changed nothing observable).
  static std::vector<std::pair<uint64_t, Value>> reverse_delta(
      const Engine& engine, const EngineJournal& journal, std::size_t mark);
};

/// Transaction-layer binding for DynamicMatching (see file comment).
struct MatchingTxnTraits {
  using Engine = DynamicMatching;
  using Value = VertexId;

  /// Label value of the per-policy `txn.*{engine=...}` obs series.
  static constexpr const char* kName = "matching";

  static std::vector<Value> solution(const Engine& engine) {
    return engine.solution();
  }

  static std::vector<std::pair<uint64_t, Value>> reverse_delta(
      const Engine& engine, const EngineJournal& journal, std::size_t mark);
};

}  // namespace pargreedy
