// Epoch-based reclamation for the lock-free published-read path.
//
// The problem: a single writer publishes immutable snapshot tables
// (txn/published_state.hpp) by swapping an atomic pointer, and any number
// of reader threads follow that pointer with plain loads. The writer may
// not free a superseded table while some reader still dereferences it —
// but readers must not pay for a lock, or the whole point is lost.
//
// The scheme (RCU-style epochs, slot-pinned):
//
//   * The manager keeps a monotonically increasing epoch counter
//     (starting at 1) and a fixed array of cache-line-aligned pin slots,
//     each an atomic<uint64_t>: 0 = free, otherwise the epoch a reader
//     pinned.
//   * A reader pins by loading the current epoch and CAS-claiming a free
//     slot with that value (RAII ReadGuard below). A thread-local hint
//     makes the claim a single CAS in the steady state — wait-free on
//     the fast path, lock-free (bounded probe over kSlotCount slots)
//     when the hinted slot is taken. Unpin is one store.
//   * The writer retires an object at the current epoch, advances the
//     epoch, and frees retired objects only when every pinned slot holds
//     an epoch strictly greater than the retire epoch (min_pinned()).
//
// Why this is safe (everything epoch-protocol-related is seq_cst, so
// there is one total order over the pins, publishes, and scans):
//
//   reader:  C = CAS slot := E (the epoch it loaded), then L = load of
//            the published pointer;
//   writer:  X = exchange of the published pointer, then A = epoch
//            advance, then S = scan of the slots before freeing.
//
//   If S observes the pin, the retired object is simply not freed
//   (pinned epoch <= retire epoch). If S misses the pin, then S reads
//   the slot's prior value, so S precedes C in the total order, hence
//   X < A < S < C < L — the reader's pointer load is after the swap and
//   sees the *new* table; it can never dereference the freed one. A
//   reader that pinned a stale (lower) epoch only delays reclamation,
//   never unblocks it early, because the counter is monotonic.
//
// Guard lifetime: the slot array is owned by shared_ptr and each
// ReadGuard holds a reference, so a guard that (incorrectly, per
// protocol) outlives its manager still unpins into live memory instead
// of scribbling on freed state — the misuse is inert, not UB, and the
// epoch tests pin this down. Slot exhaustion (more concurrent guards
// than kSlotCount) throws CheckFailure from the constructor; it is a
// configuration error, not a wait condition.
//
// Concurrency annotations: the manager owns two capabilities. The
// writer-only surface (advance/retire bookkeeping in PublishedState)
// requires `writer_role_`; a ReadGuard acquires `reader_role_` *shared*,
// and the zero-copy read accessors require it shared — so
// -Wthread-safety proves the reader path never needs the writer role.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>

#include "obs/obs.hpp"
#include "support/check.hpp"
#include "support/thread_annotations.hpp"

namespace pargreedy {

namespace detail {

/// One pin slot, alone on its cache line so readers on different cores
/// never false-share. 0 = free; otherwise the pinned epoch.
struct alignas(64) EpochSlot {
  std::atomic<uint64_t> pinned{0};
};

/// The slot array, shared_ptr-owned so ReadGuards can outlive the
/// manager safely (see file comment).
struct EpochSlotArray {
  /// Upper bound on *concurrent* ReadGuards per manager. Not a reader
  /// thread limit: a guard is held only across one read.
  static constexpr std::size_t kSlotCount = 64;
  EpochSlot slots[kSlotCount];
};

}  // namespace detail

/// The epoch counter + pin slots for one PublishedState (see file
/// comment). Readers use it through ReadGuard; the owning writer calls
/// advance()/min_pinned() under `writer_role_` to decide reclamation.
class EpochManager {
 public:
  /// Writer capability: epoch advancement (and the reclamation decisions
  /// built on it) belong to the single writer.
  support::Role writer_role_;

  /// Reader capability, held *shared* by every live ReadGuard. Mutable
  /// so const (reader-side) methods can name it; it has no state.
  mutable support::Role reader_role_;

  EpochManager() : slots_(std::make_shared<detail::EpochSlotArray>()) {}

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// The current epoch (>= 1; epoch 0 is reserved as the "free slot"
  /// sentinel).
  [[nodiscard]] uint64_t current_epoch() const noexcept {
    return epoch_.load(std::memory_order_seq_cst);
  }

  /// Advances the epoch and returns the new value. Writer-only: pairs
  /// with retiring an object at the *previous* epoch.
  uint64_t advance() PARGREEDY_REQUIRES(writer_role_) {
    return epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  /// The smallest epoch any live guard has pinned, or uint64_t max when
  /// nothing is pinned. An object retired at epoch r may be freed iff
  /// min_pinned() > r. Callable by the writer at any time (the scan is
  /// all atomic loads); a concurrent pin it misses is covered by the
  /// ordering argument in the file comment.
  [[nodiscard]] uint64_t min_pinned() const noexcept {
    uint64_t min = std::numeric_limits<uint64_t>::max();
    for (const auto& slot : slots_->slots) {
      const uint64_t pinned = slot.pinned.load(std::memory_order_seq_cst);
      if (pinned != 0 && pinned < min) min = pinned;
    }
    return min;
  }

  /// Number of currently pinned slots (introspection/tests only — the
  /// value is stale by the time it returns).
  [[nodiscard]] std::size_t active_pins() const noexcept {
    std::size_t n = 0;
    for (const auto& slot : slots_->slots)
      if (slot.pinned.load(std::memory_order_seq_cst) != 0) ++n;
    return n;
  }

  /// Maximum concurrent ReadGuards per manager.
  [[nodiscard]] static constexpr std::size_t slot_count() noexcept {
    return detail::EpochSlotArray::kSlotCount;
  }

 private:
  friend class ReadGuard;

  std::shared_ptr<detail::EpochSlotArray> slots_;
  std::atomic<uint64_t> epoch_{1};
};

/// RAII epoch pin: while alive, no version published at or after the
/// pinned epoch is reclaimed, so pointers obtained from the guarded read
/// accessors stay valid. Acquires the manager's reader capability shared
/// for its scope; cheap enough to take per read (one CAS + one store).
/// Guards nest freely (each claims its own slot) and may be held across
/// writer commits — they bound reclamation, never block the writer.
class PARGREEDY_SCOPED_CAPABILITY ReadGuard {
 public:
  /// Pins the manager's current epoch. Throws CheckFailure if all
  /// kSlotCount slots are taken (too many concurrent guards).
  explicit ReadGuard(const EpochManager& mgr)
      PARGREEDY_ACQUIRE_SHARED(mgr.reader_role_)
      : slots_(mgr.slots_) {
    PG_OBS_COUNT(obs::kReaderPins, 1);
    // Steady state: the thread re-claims the slot it used last time with
    // one CAS. The epoch is re-read before each claim attempt so the
    // pinned value is never older than one load (staleness is only
    // conservative — see file comment).
    static thread_local std::size_t hint = 0;
    constexpr std::size_t kSlots = detail::EpochSlotArray::kSlotCount;
    for (std::size_t probe = 0; probe < kSlots; ++probe) {
      const std::size_t i = (hint + probe) % kSlots;
      uint64_t expected = 0;
      epoch_ = mgr.epoch_.load(std::memory_order_seq_cst);
      if (slots_->slots[i].pinned.compare_exchange_strong(
              expected, epoch_, std::memory_order_seq_cst)) {
        slot_ = i;
        hint = i;
        mgr.reader_role_.acquire_shared();
        return;
      }
    }
    PG_CHECK_MSG(false, "all " << kSlots
                               << " epoch pin slots are taken — more "
                                  "concurrent ReadGuards than supported");
  }

  /// Unpins. (Destructors are outside the analysis; the shared hold ends
  /// with the scope by construction.)
  ~ReadGuard() PARGREEDY_RELEASE_SHARED() {
    slots_->slots[slot_].pinned.store(0, std::memory_order_seq_cst);
  }

  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;

  /// The epoch this guard pinned (tests/diagnostics).
  [[nodiscard]] uint64_t pinned_epoch() const noexcept { return epoch_; }

 private:
  std::shared_ptr<detail::EpochSlotArray> slots_;
  std::size_t slot_ = 0;
  uint64_t epoch_ = 0;
};

}  // namespace pargreedy
