// Transaction: speculative batch application with commit/abort semantics
// and versioned reads, on top of a dynamic engine.
//
//   DynamicMis engine(EngineOptions::seeded(g, seed));
//   MisTransaction txn(engine);
//   txn.begin();
//   txn.apply(batch_a);                    // engine serves the new state
//   EngineSnapshot sp = txn.savepoint();   // nested speculation point
//   txn.apply(batch_b);
//   txn.rollback_to(sp);                   // undo batch_b only
//   txn.commit();                          // batch_a becomes version v+1
//   ...
//   txn.begin(); txn.apply(what_if); txn.abort();   // state untouched
//
// Semantics:
//
//   begin()        attaches the undo journal and checkpoints the engine
//                  (O(1) — see EngineSnapshot). While a transaction is
//                  open, auto-compaction is deferred to commit.
//   apply(batch)   engine.apply_batch under the journal: the engine
//                  serves the speculative state immediately; every
//                  mutation logs its inverse.
//   savepoint() /  nested speculative batches: a savepoint is an O(1)
//   rollback_to()  checkpoint inside the transaction; rollback_to replays
//                  the undo logs down to it (strictly LIFO: rolling back
//                  to an earlier savepoint invalidates later ones).
//   commit()       extracts the solution delta from the journal into the
//                  version ring, drops the journal, runs the deferred
//                  compaction check. The new state becomes version
//                  version()+1.
//   abort()        replays the undo logs back to begin(): overlay,
//                  solution, cached priority keys, activity, and lifetime
//                  stats are restored bit-exactly (the differential suite
//                  asserts this against never-applied twins).
//
// Versioned reads — lock-free, from any thread, at any time: read(v)
// returns a self-contained ReadView (txn/read_view.hpp) served from the
// *published state* (txn/published_state.hpp): at construction and at
// every commit() the writer materializes the committed solution as an
// immutable checksummed PublishedVersion and swaps in the retained
// window with one atomic exchange. A read pins an epoch (RAII, one CAS
// + one store — no mutex, no wait on in-flight speculation, no
// blocking of the writer) and copies out of the immutable table.
// Every observable value equals some committed version in
// [oldest_version(), version()] — never speculative or aborted state —
// and versions older than oldest_version() have been evicted (reads
// throw CheckFailure). docs/CONCURRENCY.md is the prose contract.
//
// The VersionRing stays the writer-side source of truth (compact
// reverse deltas, push per commit); the published window is the
// reader-side materialization of the same [oldest, latest] range, and
// the property tests hold them bit-exactly equal.
//
// Staleness guard: the wrapper records the engine's epoch stamp after
// every commit/abort. Mutating the engine directly (bypassing the
// wrapper) between transactions changes the epoch without a version
// push — begin() checks and throws CheckFailure. The read APIs do NOT
// check: they serve the last *published* state regardless of what the
// engine has been put through (stale-bounded by design, and immune to
// writer races). While a transaction is open, direct engine mutations
// are journaled like apply() calls (the journal is attached to the
// engine, not to this object), so they are rolled back by abort() but
// bypass txn_stats().
//
// Thread safety: the mutating calls are single-writer; the versioned
// reads above are safe from any number of concurrent reader threads
// even *during* writer calls. Other engine queries (engine().solution()
// etc.) keep the old contract: safe only between writer calls.
//
// That contract is machine-checked (see support/thread_annotations.hpp):
// the wrapper owns a public `writer_role_` capability required by every
// mutating call (begin/apply/rollback_to/commit/abort), and each body
// acquires the wrapped engine's writer role — and, in commit(), the
// version ring's and published state's — for its scope, so the analysis
// verifies the whole writer path down through the engine and overlay
// layers. The reader path needs no capability at all (the epoch pin
// acquires the published state's shared reader role internally), which
// is the machine-checked statement that reads never take the writer
// role or any lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "dynamic/batch_stats.hpp"
#include "dynamic/undo_log.hpp"
#include "dynamic/update_batch.hpp"
#include "obs/obs.hpp"
#include "support/check.hpp"
#include "support/thread_annotations.hpp"
#include "txn/engine_snapshot.hpp"
#include "txn/engine_traits.hpp"
#include "txn/published_state.hpp"
#include "txn/read_view.hpp"
#include "txn/version_ring.hpp"

namespace pargreedy {

/// Commits a versioned read can reach back through by default.
inline constexpr std::size_t kDefaultVersionRetention = 8;

/// Transactional wrapper around one dynamic engine (see file comment).
/// Non-copyable and non-movable: while a transaction is open the engine
/// holds a pointer to this object's journal.
template <typename Traits>
class Transaction {
 public:
  using Engine = typename Traits::Engine;
  using Value = typename Traits::Value;
  using Solution = std::vector<Value>;

  /// The wrapper's single-writer capability: one thread drives
  /// begin/apply/commit while holding it (by protocol; see file comment).
  support::Role writer_role_;

  /// Wraps `engine`, adopting its current state as version 0 (published
  /// immediately, so readers have a baseline before the first commit).
  /// The engine must outlive the wrapper; route all mutations through it
  /// from here on (the epoch guard catches violations).
  explicit Transaction(Engine& engine,
                       std::size_t ring_capacity = kDefaultVersionRetention)
      : engine_(engine),
        ring_(ring_capacity),
        // One more than the ring's delta count: a ring holding k deltas
        // reconstructs k+1 versions, and the published window retains
        // exactly that [oldest, latest] range.
        published_(ring_capacity + 1),
        expected_epoch_(engine.epoch()) {
    support::RoleScope published_writer(published_.writer_role_);
    published_.publish(0, engine.epoch(), Traits::solution(engine));
  }

  /// An open transaction is aborted (state restored) on destruction.
  /// (Destructors are outside the thread-safety analysis; by protocol the
  /// destroying thread is the writer.)
  ~Transaction() PARGREEDY_NO_THREAD_SAFETY_ANALYSIS {
    if (active_) abort_impl(AbortCause::kDestructor);
  }

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// True iff begin() was called without a matching commit()/abort().
  /// (Writer state — meaningful on the writer thread only.)
  [[nodiscard]] bool in_transaction() const { return active_; }

  /// The newest committed version (0 = the adopted baseline). Lock-free;
  /// callable from any thread.
  [[nodiscard]] uint64_t version() const {
    return published_.latest_version();
  }

  /// The oldest version solution_at() can still read. Lock-free;
  /// callable from any thread.
  [[nodiscard]] uint64_t oldest_version() const {
    return published_.oldest_version();
  }

  /// The wrapped engine — valid for queries at any time; the state it
  /// reports while a transaction is open is the speculative one.
  [[nodiscard]] const Engine& engine() const { return engine_; }

  /// Counters accumulated by this transaction's apply() calls so far.
  /// Checked: a transaction is open.
  [[nodiscard]] const BatchStats& txn_stats() const {
    PG_CHECK_MSG(active_, "txn_stats() outside a transaction");
    return txn_stats_;
  }

  /// Opens a transaction: O(1) checkpoint + journal attach. Checked: no
  /// transaction is open and the engine was not mutated externally.
  void begin() PARGREEDY_REQUIRES(writer_role_) {
    PG_CHECK_MSG(!active_, "a transaction is already in progress");
    check_epoch();
    PG_OBS_COUNT(obs::kTxnBegin, 1);
    PG_OBS_COUNT_L(obs::kTxnBegin, "engine", Traits::kName, 1);
    PG_OBS_SPAN(span_begin, "txn.begin", "txn");
    support::RoleScope engine_writer(engine_.writer_role_);
    engine_.txn_attach(&journal_);
    active_ = true;
    ++txn_id_;
    PG_OBS_TXN_SCOPE(corr_txn, txn_id_);
    PG_OBS_EVENT1(kTxnBegin, txn_id_);
    base_ = engine_.txn_mark();
    txn_stats_ = BatchStats{};
    rollback_marks_.clear();
  }

  /// Applies a batch speculatively (engine serves the result
  /// immediately). Checked: a transaction is open.
  BatchStats apply(const UpdateBatch& batch)
      PARGREEDY_REQUIRES(writer_role_) {
    PG_CHECK_MSG(active_, "apply() outside begin()");
    PG_OBS_COUNT(obs::kTxnApply, 1);
    PG_OBS_TXN_SCOPE(corr_txn, txn_id_);
    PG_OBS_SPAN1(span_apply, "txn.apply", "txn", "batch_size", batch.size());
    support::RoleScope engine_writer(engine_.writer_role_);
    const BatchStats stats = engine_.apply_batch(batch);
    txn_stats_.accumulate(stats);
    return stats;
  }

  /// An O(1) checkpoint inside the open transaction, for nested
  /// speculative batches. Invalidated by rolling back past it and by the
  /// transaction ending (both checked in rollback_to).
  [[nodiscard]] EngineSnapshot savepoint() const
      PARGREEDY_REQUIRES(writer_role_) {
    PG_CHECK_MSG(active_, "savepoint() outside a transaction");
    PG_OBS_COUNT(obs::kTxnSavepoint, 1);
    support::RoleScope engine_writer(engine_.writer_role_);
    return {engine_.txn_mark(), txn_id_,
            static_cast<uint64_t>(rollback_marks_.size()), txn_stats_};
  }

  /// Replays the undo logs down to `snapshot`, restoring the engine
  /// bit-exactly to that point; later savepoints become invalid (LIFO).
  /// Checked: the snapshot was taken in the currently open transaction
  /// and no earlier rollback rewound past it — a stale snapshot's
  /// watermarks may fall mid-way through unrelated later records, so
  /// restoring it would silently corrupt state. Rolling back to the same
  /// snapshot repeatedly is fine (its watermarks stay exact).
  void rollback_to(const EngineSnapshot& snapshot)
      PARGREEDY_REQUIRES(writer_role_) {
    PG_CHECK_MSG(active_, "rollback_to() outside a transaction");
    PG_CHECK_MSG(snapshot.txn_id == txn_id_,
                 "snapshot from transaction " << snapshot.txn_id
                                              << " used in transaction "
                                              << txn_id_);
    for (std::size_t i = snapshot.rollback_seq; i < rollback_marks_.size();
         ++i) {
      // Both journals matter: a batch can append overlay records while
      // appending zero engine records (an insert that flips no decision,
      // a key-unchanged reweight), so two savepoints can share an engine
      // watermark yet differ on the overlay one.
      PG_CHECK_MSG(
          rollback_marks_[i].first >= snapshot.mark.engine_records &&
              rollback_marks_[i].second >= snapshot.mark.overlay_records,
          "snapshot was invalidated by an earlier rollback_to() that "
          "rewound past it");
    }
    PG_OBS_COUNT(obs::kTxnRollbackTo, 1);
    PG_OBS_SPAN(span_rollback, "txn.rollback_to", "txn");
    support::RoleScope engine_writer(engine_.writer_role_);
    engine_.txn_rollback(snapshot.mark);
    rollback_marks_.emplace_back(snapshot.mark.engine_records,
                                 snapshot.mark.overlay_records);
    txn_stats_ = snapshot.txn_stats;
  }

  /// Makes the speculative state durable as version version()+1 (pushes
  /// the reverse solution delta into the ring, drops the journal, runs
  /// the deferred compaction check) and returns the new version.
  uint64_t commit() PARGREEDY_REQUIRES(writer_role_) {
    PG_CHECK_MSG(active_, "commit() outside a transaction");
    PG_OBS_COUNT(obs::kTxnCommit, 1);
    PG_OBS_COUNT_L(obs::kTxnCommit, "engine", Traits::kName, 1);
    PG_OBS_TXN_SCOPE(corr_txn, txn_id_);
    PG_OBS_EVENT1(kTxnCommit, journal_.engine.size() - base_.engine_records);
    PG_OBS_SPAN1(span_commit, "txn.commit", "txn", "journal_records",
                 journal_.engine.size() - base_.engine_records);
    support::RoleScope engine_writer(engine_.writer_role_);
    support::RoleScope ring_writer(ring_.writer_role_);
    ring_.push(
        Traits::reverse_delta(engine_, journal_.engine, base_.engine_records));
    journal_.engine.truncate(base_.engine_records);
    journal_.overlay.truncate(base_.overlay_records);
    engine_.txn_detach();
    active_ = false;
    engine_.compact_if_needed();  // deferred from the journaled applies
    expected_epoch_ = engine_.epoch();
    // The publication point: one atomic swap and concurrent readers see
    // the new version (the compaction above does not change solution
    // values, only overlay layout, so publishing after it is exact).
    support::RoleScope published_writer(published_.writer_role_);
    published_.publish(ring_.latest(), engine_.epoch(),
                       Traits::solution(engine_));
    return ring_.latest();
  }

  /// Discards the transaction: replays the undo logs back to begin().
  /// Overlay, solution, cached keys, activity and lifetime stats are
  /// restored bit-exactly; the version ring is untouched.
  void abort() PARGREEDY_REQUIRES(writer_role_) {
    abort_impl(AbortCause::kExplicit);
  }

  /// The unified committed-read entry point: a self-contained view of
  /// version `v` (default: the newest committed version) — independent
  /// of any in-flight transaction (speculation is never published;
  /// nothing blocks or aborts). Lock-free: the view is acquired under a
  /// short epoch pin and then owns its version, safe from any thread
  /// even during writer calls, holdable across later commits. Checked:
  /// `v` within [oldest_version(), version()]. committed_solution() and
  /// solution_at() are copying conveniences over this call.
  [[nodiscard]] ReadView<Value> read(uint64_t v = kLatestVersion) const {
    return ReadView<Value>(published_.acquire(v));
  }

  /// The last committed solution by value; equals read().to_vector().
  [[nodiscard]] Solution committed_solution() const {
    return read().to_vector();
  }

  /// The solution at committed version `v` by value; equals
  /// read(v).to_vector().
  [[nodiscard]] Solution solution_at(uint64_t v) const {
    return read(v).to_vector();
  }

  /// The published committed window — for readers that want zero-copy
  /// access under their own ReadGuard, checksum validation, or version
  /// metadata (see txn/published_state.hpp).
  [[nodiscard]] const PublishedState<Value>& published_state() const {
    return published_;
  }

  /// The version ring (writer-side reverse-delta history). Writer-only:
  /// its read surface walks writer state, unlike the published window.
  [[nodiscard]] const VersionRing<Value>& ring() const
      PARGREEDY_REQUIRES(writer_role_) {
    return ring_;
  }

 private:
  // The abort-cause split feeds the txn.abort.* counters: an explicit
  // abort is a speculation outcome (what-if discarded, conflict retry),
  // a destructor abort is a dropped-on-the-floor transaction — worth
  // telling apart on a dashboard.
  enum class AbortCause { kExplicit, kDestructor };

  void abort_impl(AbortCause cause) PARGREEDY_REQUIRES(writer_role_) {
    PG_CHECK_MSG(active_, "abort() outside a transaction");
    PG_OBS_COUNT(obs::kTxnAbort, 1);
    PG_OBS_COUNT_L(obs::kTxnAbort, "engine", Traits::kName, 1);
    if (cause == AbortCause::kExplicit) {
      PG_OBS_COUNT(obs::kTxnAbortExplicit, 1);
    } else {
      PG_OBS_COUNT(obs::kTxnAbortDestructor, 1);
    }
    PG_OBS_TXN_SCOPE(corr_txn, txn_id_);
    PG_OBS_EVENT1(kTxnAbort, cause == AbortCause::kExplicit ? 1 : 0);
    PG_OBS_SPAN1(span_abort, "txn.abort", "txn", "journal_records",
                 journal_.engine.size() - base_.engine_records);
    support::RoleScope engine_writer(engine_.writer_role_);
    engine_.txn_rollback(base_);
    engine_.txn_detach();
    active_ = false;
    expected_epoch_ = engine_.epoch();
  }

  void check_epoch() const {
    if (engine_.epoch() != expected_epoch_) {
      // Failure path: dump the flight recorder before throwing, so the
      // events leading to the external mutation survive for post-mortem.
      PG_OBS_EVENT2(kTxnEpochFail, engine_.epoch(), expected_epoch_);
      PG_OBS_EVENT_DUMP("epoch_guard");
    }
    PG_CHECK_MSG(engine_.epoch() == expected_epoch_,
                 "engine was mutated outside this Transaction (epoch "
                     << engine_.epoch() << ", expected " << expected_epoch_
                     << "); its version history is invalid — construct a "
                        "fresh Transaction");
  }

  Engine& engine_;
  TxnJournal journal_;
  VersionRing<Value> ring_;
  PublishedState<Value> published_;  // the lock-free reader window
  uint64_t expected_epoch_;  // engine epoch after the last commit/abort
  uint64_t txn_id_ = 0;      // guards savepoints across transactions
  bool active_ = false;
  TxnMark base_;             // begin() checkpoint of the open transaction
  BatchStats txn_stats_;     // accumulated over the open transaction
  // (engine, overlay) journal watermarks of every rollback_to() in the
  // open transaction, in order — a savepoint is valid iff no later
  // rollback rewound below either of its own watermarks (checked in
  // rollback_to).
  std::vector<std::pair<std::size_t, std::size_t>> rollback_marks_;
};

/// Transactional wrapper for the dynamic MIS engine.
using MisTransaction = Transaction<MisTxnTraits>;

/// Transactional wrapper for the dynamic matching engine.
using MatchingTransaction = Transaction<MatchingTxnTraits>;

}  // namespace pargreedy
