// VersionRing: bounded retention of committed-solution history as reverse
// deltas.
//
// Every committed transaction advances the engine's solution from version
// v-1 to version v. The ring stores, for each of the most recent commits,
// the *reverse* delta: the solution entries the commit changed, with their
// values at version v-1. Reconstructing an older version is then a walk
// backwards from the newest solution:
//
//   solution(v) = solution(latest)  patched by  delta(latest), ...,
//                 delta(v + 1)      (newest first)
//
// Retention is bounded by capacity (the ring evicts the oldest delta per
// commit past capacity), so memory is O(capacity * delta size) — deltas
// are O(touched solution entries), never O(n). Versions older than
// oldest() are unreadable; reconstruct() checks.
//
// The ring never looks at an engine: the transaction layer extracts deltas
// from its undo journals at commit time and supplies the current solution
// at read time. Value is uint8_t for MIS membership bits and VertexId for
// matching partners.
//
// Concurrency contract (machine-checked): push() is writer-only — it
// requires the ring's `writer_role_` capability (held by the owning
// Transaction during commit()); the const read surface (latest, oldest,
// contains, retained, reconstruct) is safe from reader threads between
// writer calls. See support/thread_annotations.hpp.
//
// The ring is the *writer-side* history: compact, cheap to push, but
// reconstruction walks writer state. Concurrent readers are served by
// the published window instead (txn/published_state.hpp), which
// materializes the same [oldest, latest] range as immutable snapshots
// behind one atomic pointer — the property tests hold the two
// representations bit-exactly equal.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "support/check.hpp"
#include "support/thread_annotations.hpp"

namespace pargreedy {

/// Bounded history of committed solution versions, stored as reverse
/// deltas (see file comment). Value is the solution entry type.
template <typename Value>
class VersionRing {
 public:
  /// The ring's single-writer capability: push() mutates under it. Public
  /// so the owning Transaction's annotations can name it.
  support::Role writer_role_;

  /// A ring retaining up to `capacity` committed deltas — versioned reads
  /// reach back at most `capacity` commits. Checked: capacity >= 1.
  explicit VersionRing(std::size_t capacity) : capacity_(capacity) {
    PG_CHECK_MSG(capacity >= 1, "version ring capacity must be >= 1");
  }

  /// The newest committed version (0 = the baseline adopted at
  /// construction of the owning transaction).
  [[nodiscard]] uint64_t latest() const noexcept { return latest_; }

  /// The oldest version still reconstructible.
  [[nodiscard]] uint64_t oldest() const noexcept {
    return latest_ - static_cast<uint64_t>(deltas_.size());
  }

  /// True iff `version` is within retention.
  [[nodiscard]] bool contains(uint64_t version) const noexcept {
    return version >= oldest() && version <= latest_;
  }

  /// Number of retained deltas (for introspection/benches).
  [[nodiscard]] std::size_t retained() const noexcept { return deltas_.size(); }

  /// Records one commit: the solution moved to version latest()+1, and
  /// `reverse_delta` holds the entries it changed with their values at
  /// the previous version. Evicts the oldest delta past capacity.
  void push(std::vector<std::pair<uint64_t, Value>> reverse_delta)
      PARGREEDY_REQUIRES(writer_role_) {
    PG_OBS_COUNT(obs::kRingPush, 1);
    deltas_.push_back(std::move(reverse_delta));
    ++latest_;
    if (deltas_.size() > capacity_) {
      deltas_.pop_front();
      PG_OBS_COUNT(obs::kRingEviction, 1);
    }
  }

  /// Rewrites `solution` — which must be the solution at latest() — into
  /// the solution at `version` by applying the retained reverse deltas
  /// newest-first. Checked: `version` is within retention.
  void reconstruct(std::vector<Value>& solution, uint64_t version) const {
    // A miss is counted before the check throws — that IS the miss path.
    if (contains(version)) {
      PG_OBS_COUNT(obs::kRingReadHit, 1);
    } else {
      PG_OBS_COUNT(obs::kRingReadMiss, 1);
    }
    PG_CHECK_MSG(contains(version),
                 "version " << version << " outside ring retention ["
                            << oldest() << ", " << latest_ << "]");
    for (uint64_t v = latest_; v > version; --v) {
      const auto& delta = deltas_[deltas_.size() - (latest_ - v) - 1];
      for (const auto& [index, old_value] : delta)
        solution[index] = old_value;
    }
  }

 private:
  std::size_t capacity_;
  uint64_t latest_ = 0;
  // deltas_[i] is the reverse delta of version oldest()+i+1, i.e. the
  // entries that commit changed, valued as of the version before it.
  std::deque<std::vector<std::pair<uint64_t, Value>>> deltas_;
};

}  // namespace pargreedy
