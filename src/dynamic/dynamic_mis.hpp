// DynamicMis: a long-lived lexicographically-first MIS under batched graph
// updates.
//
// Holds a graph (OverlayGraph: CSR base + mutation deltas), a vertex
// priority order pi — random by default, or produced by any PrioritySource
// policy (e.g. decreasing vertex weight for the weighted greedy MIS) —
// and the current greedy MIS. apply_batch()
// mutates the graph and repropagates greedy decisions over the priority
// DAG until the solution is again *exactly* the one mis_sequential would
// compute from scratch on the updated graph under the same pi — but
// touching only the affected cone, which for random pi is shallow
// (Theorem 3.5 / Fischer–Noever). See repropagate.hpp for the round
// structure and determinism argument.
//
// Priorities under reweights: for a PrioritySource-built engine the
// comparisons run on cached per-vertex PriorityKeys (key, id tie-break —
// the identical total order the materialized VertexOrder would give), so
// a batch vertex reweight only refreshes the affected keys and seeds the
// vertex plus its active neighbors; under policies whose keys ignore
// vertex weights (random_hash) a reweight is a provable no-op — zero
// seeds, zero rounds. Edge reweights update the stored weight for
// snapshots but never touch vertex priorities. An engine built from an
// explicit VertexOrder has no policy to re-derive keys from; its pi is
// fixed for life and reweights only update stored weights.
//
// Concurrency contract (machine-checked): one writer, many readers. The
// mutators (apply_batch, compact, the txn_* seams) may only be called by
// the single writer thread and are annotated to require the engine's
// `writer_role_` capability; the const queries are safe from any number
// of reader threads between writer calls (order() being the documented
// exception). The engine in turn acquires its OverlayGraph's writer role
// for the scope of each mutator — see support/thread_annotations.hpp and
// docs/STATIC_ANALYSIS.md. Readers that need committed state *during*
// writer calls should go through a Transaction's published view
// (txn/published_state.hpp, docs/CONCURRENCY.md), which is lock-free
// and safe at any time — this engine's own queries are not.
//
// Vertex activity: the vertex universe [0, n) is fixed at construction;
// deactivating a vertex removes it (and implicitly its incident edges)
// from the *solution's* graph without forgetting its edges, activating it
// brings it back. in_set(v) is always false for an inactive vertex.
//
// Exact-equivalence invariant (checked by the differential tests): let H
// be the live graph restricted to edges with both endpoints active, as a
// CsrGraph over all n vertices (active_subgraph()). Then for every active
// v, in_set(v) == mis_sequential(H, order()).in_set[v]; inactive vertices
// are isolated in H and report in_set == false here.
#pragma once

#include <cstdint>
#include <vector>

#include "core/mis/mis.hpp"
#include "core/mis/vertex_order.hpp"
#include "core/priority/priority_source.hpp"
#include "dynamic/engine_api.hpp"
#include "dynamic/overlay_graph.hpp"
#include "dynamic/repropagate.hpp"
#include "dynamic/undo_log.hpp"
#include "dynamic/update_batch.hpp"
#include "graph/csr_graph.hpp"
#include "support/thread_annotations.hpp"

namespace pargreedy {

/// Batch-dynamic lexicographically-first MIS engine (see file comment for
/// the maintained invariant).
class DynamicMis {
 public:
  /// The engine's single-writer capability: every mutator requires it
  /// exclusively (zero-cost; see support/thread_annotations.hpp). The
  /// thread driving updates acquires it (support::RoleScope) around its
  /// writer calls; under clang -Wthread-safety an unheld mutator call is
  /// a compile error.
  support::Role writer_role_;

  /// Starts from `options.graph` with every vertex active; the initial
  /// solution is computed with the parallel rootset algorithm. Priorities
  /// come from `options.explicit_order` when set, else pi =
  /// options.source.vertex_order(graph) (the weighted policies read the
  /// graph's vertex weights — weighted greedy MIS). This is the only
  /// constructor; build options with the EngineOptions factories
  /// (engine_api.hpp).
  explicit DynamicMis(EngineOptions options);

  [[nodiscard]] uint64_t num_vertices() const noexcept {
    return graph_.num_vertices();
  }
  [[nodiscard]] uint64_t num_edges() const noexcept {
    return graph_.num_live_edges();
  }

  /// True iff v is currently in the maintained MIS.
  [[nodiscard]] bool in_set(VertexId v) const noexcept {
    return in_set_[v] != 0;
  }

  /// True iff v is currently part of the graph.
  [[nodiscard]] bool active(VertexId v) const noexcept {
    return active_[v] != 0;
  }

  /// The current priority order pi, materialized. Rebuilt lazily after
  /// vertex reweights change priority keys (the engine itself compares
  /// cached keys; this materialization exists for oracle recomputation).
  /// Concurrency note: the rebuild mutates internal state, so unlike the
  /// other const queries this accessor must not race with them while a
  /// rebuild is pending — call it once after apply_batch (or serialize
  /// externally) before reading the engine from other threads.
  [[nodiscard]] const VertexOrder& order() const;

  /// True iff pi was derived from a PrioritySource (the seed and
  /// PrioritySource constructors; false for an explicit VertexOrder,
  /// which no policy describes).
  [[nodiscard]] bool has_priority_source() const noexcept {
    return has_source_;
  }

  /// The policy pi was derived from (random_hash(seed) for the seed
  /// constructor). Checked: calling this on an engine built from an
  /// explicit VertexOrder throws — a default source would silently
  /// mis-describe pi to oracle code.
  [[nodiscard]] const PrioritySource& priority_source() const;

  /// The current solution as a membership bitmap (0 for inactive
  /// vertices) — bit-identical to the from-scratch oracle (see header
  /// comment).
  [[nodiscard]] std::vector<uint8_t> solution() const { return in_set_; }

  /// Number of vertices currently in the MIS.
  [[nodiscard]] uint64_t size() const;

  /// Applies a batch (see UpdateBatch for intra-batch semantics) and
  /// repropagates to the new greedy fixpoint. Returns touch counters.
  BatchStats apply_batch(const UpdateBatch& batch)
      PARGREEDY_REQUIRES(writer_role_);

  /// Overlay fraction above which apply_batch folds the deltas back into
  /// the base CSR. <= 0 disables auto-compaction. Default 0.5.
  void set_compaction_threshold(double fraction)
      PARGREEDY_REQUIRES(writer_role_) {
    compact_threshold_ = fraction;
  }

  /// Forces compaction now. Checked: forbidden while a transaction
  /// journal is attached (compaction has no cheap inverse).
  void compact() PARGREEDY_REQUIRES(writer_role_);

  /// Runs the auto-compaction check apply_batch normally runs (skipped
  /// while a journal is attached); returns true iff it compacted. The
  /// transaction layer calls this after detaching at commit.
  bool compact_if_needed() PARGREEDY_REQUIRES(writer_role_);

  /// The cached priority key of v — the words earlier() compares.
  /// Checked: source-built engines only (explicit orders cache no keys).
  [[nodiscard]] PriorityKey cached_vertex_key(VertexId v) const;

  /// Monotonic engine-state stamp: bumped by every apply_batch and
  /// compaction, restored by txn_rollback. Equal epochs on one engine
  /// mean no mutation happened in between — the staleness guard behind
  /// the transaction layer's versioned reads.
  [[nodiscard]] uint64_t epoch() const noexcept { return epoch_; }

  /// Counters accumulated over every apply_batch since construction
  /// (part of the transactional checkpoint: restored on rollback).
  [[nodiscard]] const BatchStats& lifetime_stats() const noexcept {
    return lifetime_stats_;
  }

  // Transactional seams — called by txn::Transaction (see
  // src/txn/transaction.hpp); not part of the everyday API.

  /// Attaches the undo journal: subsequent mutations append inverse
  /// records and auto-compaction is deferred. Checked: not already
  /// attached. The journal must outlive the attachment.
  void txn_attach(TxnJournal* txn) PARGREEDY_REQUIRES(writer_role_);

  /// Detaches the journal (records are NOT replayed — commit path).
  void txn_detach() PARGREEDY_REQUIRES(writer_role_);

  /// O(1) checkpoint of the current state: journal watermarks + scalar
  /// stamps. Checked: a journal is attached. Writer-side (it reads the
  /// journal attachment), hence the capability requirement.
  [[nodiscard]] TxnMark txn_mark() const PARGREEDY_REQUIRES(writer_role_);

  /// Replays both journals newest-first down to `mark`, restoring the
  /// engine bit-exactly to the checkpointed state (solution, activity,
  /// cached keys, overlay, epochs, lifetime stats).
  void txn_rollback(const TxnMark& mark) PARGREEDY_REQUIRES(writer_role_);

  /// The live graph including edges at inactive vertices (overlay state).
  [[nodiscard]] const OverlayGraph& graph() const { return graph_; }

  /// Sharding seam: installs partition labels on the underlying overlay
  /// so it maintains live cross-partition degrees incrementally (see
  /// OverlayGraph::enable_frontier_tracking). Must run before a
  /// transaction attaches a journal (checked there).
  void enable_frontier_tracking(std::vector<uint32_t> part)
      PARGREEDY_REQUIRES(writer_role_) {
    support::RoleScope overlay_writer(graph_.writer_role_);
    graph_.enable_frontier_tracking(std::move(part));
  }

  /// The oracle's view: live edges with both endpoints active, over the
  /// full vertex universe (inactive vertices become isolated).
  [[nodiscard]] CsrGraph active_subgraph() const;

 private:
  friend struct MisReproEngine;

  void init(CsrGraph base);
  [[nodiscard]] bool decide(VertexId v) const;

  /// Compaction bodies shared by compact()/compact_if_needed()/
  /// apply_batch; require both the engine's and the overlay's writer role
  /// (the public entries acquire the overlay's).
  void compact_impl() PARGREEDY_REQUIRES(writer_role_, graph_.writer_role_);
  bool compact_if_needed_impl()
      PARGREEDY_REQUIRES(writer_role_, graph_.writer_role_);

  /// True iff a strictly precedes b in pi. For source-built engines this
  /// compares the cached keys (id tie-break) — the same total order the
  /// materialized VertexOrder gives, but robust to reweights; explicit
  /// orders compare ranks.
  [[nodiscard]] bool earlier(VertexId a, VertexId b) const {
    if (!has_source_) return order_.earlier(a, b);
    if (vpri_[a] != vpri_[b]) return vpri_[a] < vpri_[b];
    if (!vpri2_.empty() && vpri2_[a] != vpri2_[b])
      return vpri2_[a] < vpri2_[b];
    return a < b;
  }

  OverlayGraph graph_;
  mutable VertexOrder order_;      // lazily re-materialized after reweights
  mutable bool order_stale_ = false;
  PrioritySource source_;
  bool has_source_ = false;
  std::vector<uint64_t> vpri_;   // per vertex: priority key, primary word
                                 // (source-built engines only)
  std::vector<uint64_t> vpri2_;  // per vertex: secondary word; empty (and
                                 // skipped in earlier()) for single-word
                                 // policies
  std::vector<uint8_t> active_;
  std::vector<uint8_t> in_set_;
  double compact_threshold_ = 0.5;
  uint64_t epoch_ = 0;             // bumped per apply_batch/compact;
                                   // restored by txn_rollback
  BatchStats lifetime_stats_;      // accumulated over apply_batch calls
  // Attached transaction journal (not owned); nullptr outside
  // transactions. Pointer and pointee are writer-role state: only held
  // code reads the attachment or appends records.
  TxnJournal* txn_ PARGREEDY_GUARDED_BY(writer_role_)
      PARGREEDY_PT_GUARDED_BY(writer_role_) = nullptr;
};

}  // namespace pargreedy
