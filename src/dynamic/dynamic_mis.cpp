#include "dynamic/dynamic_mis.hpp"

#include <utility>

#include "parallel/reduce.hpp"
#include "support/check.hpp"

namespace pargreedy {

// Adapter between DynamicMis state and the generic repropagation rounds.
struct MisReproEngine {
  DynamicMis& dm;

  [[nodiscard]] bool decide(VertexId v) const { return dm.decide(v); }
  [[nodiscard]] bool current(VertexId v) const { return dm.in_set_[v] != 0; }
  void commit(VertexId v, bool value) const {
    dm.in_set_[v] = value ? 1 : 0;
  }
  void append_successors(VertexId v, std::vector<VertexId>& out) const {
    dm.graph_.for_incident(v, [&](VertexId w, EdgeSlot) {
      if (dm.active_[w] && dm.order_.earlier(v, w)) out.push_back(w);
    });
  }
};

DynamicMis::DynamicMis(CsrGraph base, uint64_t seed)
    : source_(PrioritySource::random_hash(seed)), has_source_(true) {
  order_ = VertexOrder::random(base.num_vertices(), seed);
  init(std::move(base));
}

DynamicMis::DynamicMis(CsrGraph base, VertexOrder order) {
  order_ = std::move(order);
  init(std::move(base));
}

DynamicMis::DynamicMis(CsrGraph base, const PrioritySource& source)
    : source_(source), has_source_(true) {
  order_ = source_.vertex_order(base);
  init(std::move(base));
}

const PrioritySource& DynamicMis::priority_source() const {
  PG_CHECK_MSG(has_source_,
               "engine was built from an explicit VertexOrder; no "
               "PrioritySource describes its priorities");
  return source_;
}

void DynamicMis::init(CsrGraph base) {
  PG_CHECK_MSG(order_.size() == base.num_vertices(),
               "ordering size != vertex count");
  active_.assign(base.num_vertices(), 1);
  in_set_ = mis_rootset(base, order_).in_set;
  graph_ = OverlayGraph(std::move(base));
}

bool DynamicMis::decide(VertexId v) const {
  if (!active_[v]) return false;
  // v joins iff no earlier-ranked neighbor is in the set. Inactive
  // neighbors always have in_set_ == 0, so no activity check is needed.
  return graph_.for_incident_while(v, [&](VertexId w, EdgeSlot) {
    return !(order_.earlier(w, v) && in_set_[w]);
  });
}

uint64_t DynamicMis::size() const {
  return static_cast<uint64_t>(reduce_add<int64_t>(
      0, static_cast<int64_t>(in_set_.size()),
      [&](int64_t v) { return in_set_[static_cast<std::size_t>(v)] ? 1 : 0; }));
}

BatchStats DynamicMis::apply_batch(const UpdateBatch& batch) {
  const uint64_t n = num_vertices();
  PG_CHECK_MSG(batch.endpoints_in_range(n), "batch references vertex >= n");
  BatchStats stats;
  std::vector<VertexId> seeds;

  // Structural application, in the documented order. Only operations that
  // change state seed repropagation; for an edge update only the later
  // endpoint's greedy decision can change directly (the earlier endpoint
  // never depends on it), and a toggled vertex seeds itself — everything
  // downstream is discovered by the rounds.
  for (VertexId v : batch.deactivates()) {
    if (!active_[v]) continue;
    active_[v] = 0;
    ++stats.deactivated;
    seeds.push_back(v);
  }
  for (const Edge& e : batch.deletes()) {
    if (graph_.erase_edge(e.u, e.v) == kInvalidSlot) continue;
    ++stats.deleted;
    seeds.push_back(order_.earlier(e.u, e.v) ? e.v : e.u);
  }
  for (std::size_t i = 0; i < batch.inserts().size(); ++i) {
    const Edge& e = batch.inserts()[i];
    // Edge weights never affect vertex priorities, but they are stored so
    // that active_subgraph() hands matching oracles the same weights.
    if (graph_.insert_edge(e.u, e.v, batch.insert_weights()[i]) ==
        kInvalidSlot)
      continue;
    ++stats.inserted;
    seeds.push_back(order_.earlier(e.u, e.v) ? e.v : e.u);
  }
  for (VertexId v : batch.activates()) {
    if (active_[v]) continue;
    active_[v] = 1;
    ++stats.activated;
    seeds.push_back(v);
  }

  repropagate(std::move(seeds), MisReproEngine{*this}, n + 1, stats);

  if (compact_threshold_ > 0 &&
      graph_.overlay_fraction() > compact_threshold_) {
    compact();
    stats.compacted = true;
  }
  return stats;
}

void DynamicMis::compact() { graph_.compact(); }

CsrGraph DynamicMis::active_subgraph() const {
  return graph_.active_subgraph(active_);
}

}  // namespace pargreedy
