#include "dynamic/dynamic_mis.hpp"

#include <utility>

#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"
#include "support/check.hpp"

namespace pargreedy {

// Adapter between DynamicMis state and the generic repropagation rounds.
struct MisReproEngine {
  DynamicMis& dm;

  [[nodiscard]] bool decide(VertexId v) const { return dm.decide(v); }
  [[nodiscard]] bool current(VertexId v) const { return dm.in_set_[v] != 0; }
  void commit(VertexId v, bool value) const {
    dm.in_set_[v] = value ? 1 : 0;
  }
  void append_successors(VertexId v, std::vector<VertexId>& out) const {
    dm.graph_.for_incident(v, [&](VertexId w, EdgeSlot) {
      if (dm.active_[w] && dm.earlier(v, w)) out.push_back(w);
    });
  }
};

DynamicMis::DynamicMis(EngineOptions options) {
  compact_threshold_ = options.compaction_threshold;
  if (options.explicit_order) {
    order_ = std::move(*options.explicit_order);
  } else {
    source_ = std::move(options.source);
    has_source_ = true;
    order_ = source_.vertex_order(options.graph);
  }
  init(std::move(options.graph));
}

const PrioritySource& DynamicMis::priority_source() const {
  PG_CHECK_MSG(has_source_,
               "engine was built from an explicit VertexOrder; no "
               "PrioritySource describes its priorities");
  return source_;
}

void DynamicMis::init(CsrGraph base) {
  PG_CHECK_MSG(order_.size() == base.num_vertices(),
               "ordering size != vertex count");
  if (has_source_) {
    // Cache per-vertex keys: (key, id) compares give exactly the order_
    // total order, and stay refreshable under vertex reweights.
    const uint64_t n = base.num_vertices();
    vpri_.resize(n);
    if (source_.has_secondary_word()) vpri2_.resize(n);
    parallel_for(0, static_cast<int64_t>(n), [&](int64_t v) {
      const PriorityKey k =
          source_.vertex_key(static_cast<VertexId>(v),
                             base.vertex_weight(static_cast<VertexId>(v)));
      vpri_[static_cast<std::size_t>(v)] = k.primary;
      if (!vpri2_.empty()) vpri2_[static_cast<std::size_t>(v)] = k.secondary;
    });
  }
  active_.assign(base.num_vertices(), 1);
  in_set_ = mis_rootset(base, order_).in_set;
  graph_ = OverlayGraph(std::move(base));
}

const VertexOrder& DynamicMis::order() const {
  if (order_stale_) {
    std::vector<Weight> weights(num_vertices());
    for (uint64_t v = 0; v < num_vertices(); ++v)
      weights[v] = graph_.vertex_weight(static_cast<VertexId>(v));
    order_ = source_.vertex_order(num_vertices(), weights);
    order_stale_ = false;
  }
  return order_;
}

bool DynamicMis::decide(VertexId v) const {
  if (!active_[v]) return false;
  // v joins iff no earlier-ranked neighbor is in the set. Inactive
  // neighbors always have in_set_ == 0, so no activity check is needed.
  return graph_.for_incident_while(v, [&](VertexId w, EdgeSlot) {
    return !(earlier(w, v) && in_set_[w]);
  });
}

uint64_t DynamicMis::size() const {
  return static_cast<uint64_t>(reduce_add<int64_t>(
      0, static_cast<int64_t>(in_set_.size()),
      [&](int64_t v) { return in_set_[static_cast<std::size_t>(v)] ? 1 : 0; }));
}

BatchStats DynamicMis::apply_batch(const UpdateBatch& batch) {
  // The engine is the overlay's writer for the scope of this batch.
  support::RoleScope overlay_writer(graph_.writer_role_);
  PG_OBS_BATCH_SCOPE(corr_batch);  // fresh batch_id, or a sharded driver's
  PG_OBS_SPAN1(span_batch, "apply_batch", "mis", "batch_size", batch.size());
  PG_OBS_EVENT1(kBatchBegin, batch.size());
  const uint64_t n = num_vertices();
  PG_CHECK_MSG(batch.endpoints_in_range(n), "batch references vertex >= n");
  BatchStats stats;
  std::vector<VertexId> seeds;

  // Structural application, in the documented order. Only operations that
  // change state seed repropagation; for an edge update only the later
  // endpoint's greedy decision can change directly (the earlier endpoint
  // never depends on it), and a toggled vertex seeds itself — everything
  // downstream is discovered by the rounds.
  for (VertexId v : batch.deactivates()) {
    if (!active_[v]) continue;
    if (txn_) txn_->engine.record_active(v, true);
    active_[v] = 0;
    ++stats.deactivated;
    seeds.push_back(v);
  }
  for (const Edge& e : batch.deletes()) {
    if (graph_.erase_edge(e.u, e.v) == kInvalidSlot) continue;
    ++stats.deleted;
    seeds.push_back(earlier(e.u, e.v) ? e.v : e.u);
  }
  for (std::size_t i = 0; i < batch.inserts().size(); ++i) {
    const Edge& e = batch.inserts()[i];
    // Edge weights never affect vertex priorities, but they are stored so
    // that active_subgraph() hands matching oracles the same weights.
    if (graph_.insert_edge(e.u, e.v, batch.insert_weights()[i]) ==
        kInvalidSlot)
      continue;
    ++stats.inserted;
    seeds.push_back(earlier(e.u, e.v) ? e.v : e.u);
  }
  for (VertexId v : batch.activates()) {
    if (active_[v]) continue;
    if (txn_) txn_->engine.record_active(v, false);
    active_[v] = 1;
    ++stats.activated;
    seeds.push_back(v);
  }
  for (std::size_t i = 0; i < batch.edge_reweights().size(); ++i) {
    const Edge& e = batch.edge_reweights()[i];
    const Weight w = batch.edge_reweight_weights()[i];
    const EdgeSlot s = graph_.find_slot(e.u, e.v);
    if (s == kInvalidSlot || graph_.slot_weight(s) == w) continue;
    graph_.set_slot_weight(s, w);
    ++stats.reweighted;
    // Edge weights never enter vertex priorities — no seeding. The new
    // weight still reaches active_subgraph() snapshots (matching oracles
    // read it there).
  }
  for (std::size_t i = 0; i < batch.vertex_reweights().size(); ++i) {
    const VertexId v = batch.vertex_reweights()[i];
    const Weight w = batch.vertex_reweight_weights()[i];
    if (graph_.vertex_weight(v) == w) continue;
    graph_.set_vertex_weight(v, w);
    ++stats.reweighted;
    if (!has_source_) continue;  // explicit pi never reads weights
    const PriorityKey k = source_.vertex_key(v, w);
    const bool key_changed =
        k.primary != vpri_[v] ||
        (!vpri2_.empty() && k.secondary != vpri2_[v]);
    if (!key_changed) continue;  // e.g. random_hash: provable no-op
    if (txn_)
      txn_->engine.record_key(v, vpri_[v], vpri2_.empty() ? 0 : vpri2_[v]);
    vpri_[v] = k.primary;
    if (!vpri2_.empty()) vpri2_[v] = k.secondary;
    order_stale_ = true;
    if (!active_[v]) continue;  // an inactive rank influences nobody
    // v's own decision and — through the flipped earlier(v, ·) relations —
    // every active neighbor's decision may change directly; everything
    // further is discovered by the rounds.
    seeds.push_back(v);
    graph_.for_incident(v, [&](VertexId x, EdgeSlot) {
      if (active_[x]) seeds.push_back(x);
    });
  }

  repropagate(std::move(seeds), MisReproEngine{*this}, n + 1, stats,
              txn_ ? &txn_->engine : nullptr);

  if (compact_if_needed_impl()) stats.compacted = true;
  ++epoch_;
  lifetime_stats_.accumulate(stats);
  obs_accumulate_batch(stats, "mis", n);
  PG_OBS_EVENT2(kBatchEnd, stats.rounds, stats.changed);
  PG_OBS_SPAN_ARG(span_batch, "rounds", stats.rounds);
  return stats;
}

bool DynamicMis::compact_if_needed() {
  support::RoleScope overlay_writer(graph_.writer_role_);
  return compact_if_needed_impl();
}

bool DynamicMis::compact_if_needed_impl() {
  // Deferred while a journal is attached: compaction has no cheap
  // inverse, so transactions compact at commit, after detaching.
  if (txn_ != nullptr || compact_threshold_ <= 0 ||
      graph_.overlay_fraction() <= compact_threshold_)
    return false;
  compact_impl();
  return true;
}

void DynamicMis::compact() {
  support::RoleScope overlay_writer(graph_.writer_role_);
  compact_impl();
}

void DynamicMis::compact_impl() {
  graph_.compact();  // checks no journal is attached
  ++epoch_;
}

PriorityKey DynamicMis::cached_vertex_key(VertexId v) const {
  PG_CHECK_MSG(has_source_,
               "engine was built from an explicit VertexOrder; it caches "
               "no priority keys");
  return {vpri_[v], vpri2_.empty() ? 0 : vpri2_[v]};
}

void DynamicMis::txn_attach(TxnJournal* txn) {
  support::RoleScope overlay_writer(graph_.writer_role_);
  PG_CHECK_MSG(txn != nullptr, "txn_attach(nullptr)");
  PG_CHECK_MSG(txn_ == nullptr, "a transaction journal is already attached");
  txn_ = txn;
  graph_.set_journal(&txn->overlay);
}

void DynamicMis::txn_detach() {
  support::RoleScope overlay_writer(graph_.writer_role_);
  PG_CHECK_MSG(txn_ != nullptr, "no transaction journal attached");
  txn_ = nullptr;
  graph_.set_journal(nullptr);
}

TxnMark DynamicMis::txn_mark() const {
  PG_CHECK_MSG(txn_ != nullptr, "txn_mark requires an attached journal");
  return {txn_->engine.size(), txn_->overlay.size(), graph_.epoch(), epoch_,
          lifetime_stats_};
}

void DynamicMis::txn_rollback(const TxnMark& mark) {
  support::RoleScope overlay_writer(graph_.writer_role_);
  PG_CHECK_MSG(txn_ != nullptr, "txn_rollback requires an attached journal");
  const EngineJournal& ej = txn_->engine;
  PG_CHECK_MSG(mark.engine_records <= ej.size(),
               "engine undo mark beyond journal size");
  bool keys_restored = false;
  for (std::size_t i = ej.size(); i-- > mark.engine_records;) {
    const EngineUndoRecord& r = ej[i];
    switch (r.kind) {
      case EngineUndoRecord::Kind::kDecision:
        in_set_[r.item] = r.flag;
        break;
      case EngineUndoRecord::Kind::kActive:
        active_[r.item] = r.flag;
        break;
      case EngineUndoRecord::Kind::kKey:
        vpri_[r.item] = r.old_a;
        if (!vpri2_.empty()) vpri2_[r.item] = r.old_b;
        keys_restored = true;
        break;
      case EngineUndoRecord::Kind::kGrowth:
        PG_CHECK_MSG(false, "growth record in a vertex-keyed engine");
    }
  }
  txn_->engine.truncate(mark.engine_records);
  // order_ may have been re-materialized mid-transaction from since-rolled-
  // back weights; force a rebuild from the restored keys on next order().
  // The rebuilt order is content-identical to the pre-transaction one
  // (vertex_order is a pure function of the restored weights).
  if (keys_restored) order_stale_ = true;
  graph_.undo_to(mark.overlay_records, mark.overlay_epoch);
  epoch_ = mark.engine_epoch;
  lifetime_stats_ = mark.lifetime;
}

CsrGraph DynamicMis::active_subgraph() const {
  return graph_.active_subgraph(active_);
}

}  // namespace pargreedy
