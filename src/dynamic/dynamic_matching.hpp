// DynamicMatching: a long-lived greedy (lexicographically-first) maximal
// matching under batched graph updates.
//
// Mirror image of DynamicMis, one level up: decisions live on *edges*, the
// priority DAG is the line-graph DAG (edges sharing an endpoint, directed
// earlier -> later), and repropagation pushes along incident edges. Because
// edges come and go, priorities cannot be a fixed permutation; instead
// every edge's priority is the pure PrioritySource key of its canonical
// endpoint pair and weight,
//
//   pri{u, v} = (source.edge_key({u, v}, w), (u << 32) | v),
//
// compared lexicographically (the final endpoint-pair tie-break makes the
// order total even across hash collisions and equal weights). For the
// default random-hash policy the key is hash64(seed, (u << 32) | v) — the
// paper's uniformly random order; the edge-weight policies put heavier
// edges first (weighted greedy matching). A re-inserted edge with the same
// weight therefore gets the *same* priority it had before — the solution
// depends only on (live edge set, edge weights, active vertices, policy),
// never on update history, which is what makes the from-scratch oracle
// comparison exact: edge_order_for(H) materializes the same order as an
// EdgeOrder over any CSR snapshot H (weights included), and
//
//   matched_with() == mm_sequential(H, edge_order_for(H)).matched_with
//
// where H = active_subgraph() (checked by the differential tests).
//
// Concurrency contract (machine-checked): one writer, many readers —
// identical to DynamicMis. Mutators require the engine's `writer_role_`
// capability; const queries are reader-safe between writer calls; the
// engine acquires its OverlayGraph's writer role inside each mutator.
// See support/thread_annotations.hpp and docs/STATIC_ANALYSIS.md. For
// committed reads that must be safe *during* writer calls, use a
// Transaction's lock-free published view (txn/published_state.hpp,
// docs/CONCURRENCY.md).
//
// Per-edge state (membership bit, cached priority key) is keyed by
// OverlayGraph slot; compaction reassigns slots, so apply_batch re-keys
// the state through the surviving matched pairs when it compacts.
//
// Reweights: a batch edge reweight changes the slot's weight in place (no
// slot churn) and refreshes only that slot's cached key; if the key moved,
// the slot — plus, when it was matched, its incident edges (the cone's
// first layer) — seeds repropagation. Under policies whose keys ignore
// edge weights (random_hash) a reweight is a provable no-op: zero seeds,
// zero rounds. Vertex reweights never touch edge priorities; the stored
// weight just reaches future snapshots.
#pragma once

#include <cstdint>
#include <vector>

#include "core/matching/edge_order.hpp"
#include "core/priority/priority_source.hpp"
#include "dynamic/engine_api.hpp"
#include "dynamic/overlay_graph.hpp"
#include "dynamic/repropagate.hpp"
#include "dynamic/undo_log.hpp"
#include "dynamic/update_batch.hpp"
#include "graph/csr_graph.hpp"
#include "support/thread_annotations.hpp"

namespace pargreedy {

/// Batch-dynamic greedy maximal-matching engine (see file comment for the
/// priority scheme and the maintained invariant).
class DynamicMatching {
 public:
  /// The engine's single-writer capability (see DynamicMis::writer_role_).
  support::Role writer_role_;

  /// Starts from `options.graph` with every vertex active; edge
  /// priorities come from `options.source` (edge_weight /
  /// weight_hash_tiebreak read the graph's edge weights — weighted greedy
  /// matching) and the initial matching is computed with the parallel
  /// rootset algorithm. Checked: `options.explicit_order` must be unset —
  /// matching priorities live on edges, so no VertexOrder describes them.
  /// This is the only constructor; build options with the EngineOptions
  /// factories (engine_api.hpp).
  explicit DynamicMatching(EngineOptions options);

  [[nodiscard]] uint64_t num_vertices() const noexcept {
    return graph_.num_vertices();
  }
  [[nodiscard]] uint64_t num_edges() const noexcept {
    return graph_.num_live_edges();
  }

  /// True iff live edge {u, v} is currently in the matching.
  [[nodiscard]] bool matched(VertexId u, VertexId v) const;

  /// v's partner in the matching, or kInvalidVertex when unmatched.
  [[nodiscard]] VertexId matched_with(VertexId v) const;

  /// True iff v is currently part of the graph.
  [[nodiscard]] bool active(VertexId v) const noexcept {
    return active_[v] != 0;
  }

  /// Per-vertex partner array over the full universe (kInvalidVertex for
  /// unmatched and inactive vertices) — comparable bit-for-bit with
  /// mm_sequential's matched_with on active_subgraph().
  [[nodiscard]] std::vector<VertexId> solution() const;

  /// The matched edges, canonical and sorted.
  [[nodiscard]] std::vector<Edge> matched_edges() const;

  /// Number of matched edges.
  [[nodiscard]] uint64_t size() const;

  /// Applies a batch (see UpdateBatch for intra-batch semantics) and
  /// repropagates to the new greedy fixpoint. Returns touch counters.
  BatchStats apply_batch(const UpdateBatch& batch)
      PARGREEDY_REQUIRES(writer_role_);

  /// Overlay fraction above which apply_batch folds the deltas back into
  /// the base CSR. <= 0 disables auto-compaction. Default 0.5.
  void set_compaction_threshold(double fraction)
      PARGREEDY_REQUIRES(writer_role_) {
    compact_threshold_ = fraction;
  }

  /// Forces compaction now (re-keys per-edge state). Checked: forbidden
  /// while a transaction journal is attached.
  void compact() PARGREEDY_REQUIRES(writer_role_);

  /// Runs the auto-compaction check apply_batch normally runs (skipped
  /// while a journal is attached); returns true iff it compacted. The
  /// transaction layer calls this after detaching at commit.
  bool compact_if_needed() PARGREEDY_REQUIRES(writer_role_);

  /// The cached priority key of slot s — the words earlier() compares.
  /// Checked: s is a covered slot.
  [[nodiscard]] PriorityKey cached_slot_key(EdgeSlot s) const;

  /// Monotonic engine-state stamp: bumped by every apply_batch and
  /// compaction, restored by txn_rollback (see DynamicMis::epoch).
  [[nodiscard]] uint64_t epoch() const noexcept { return epoch_; }

  /// Counters accumulated over every apply_batch since construction
  /// (part of the transactional checkpoint: restored on rollback).
  [[nodiscard]] const BatchStats& lifetime_stats() const noexcept {
    return lifetime_stats_;
  }

  // Transactional seams — called by txn::Transaction (see
  // src/txn/transaction.hpp); not part of the everyday API.

  /// Attaches the undo journal (see DynamicMis::txn_attach).
  void txn_attach(TxnJournal* txn) PARGREEDY_REQUIRES(writer_role_);

  /// Detaches the journal without replaying (commit path).
  void txn_detach() PARGREEDY_REQUIRES(writer_role_);

  /// O(1) checkpoint: journal watermarks + scalar stamps. Writer-side (it
  /// reads the journal attachment), hence the capability requirement.
  [[nodiscard]] TxnMark txn_mark() const PARGREEDY_REQUIRES(writer_role_);

  /// Replays both journals newest-first down to `mark`, restoring the
  /// engine bit-exactly (matching bits, activity, cached keys, per-slot
  /// array sizes, overlay, epochs, lifetime stats).
  void txn_rollback(const TxnMark& mark) PARGREEDY_REQUIRES(writer_role_);

  /// The hash seed the edge priorities derive from (0 for pure-weight
  /// policies).
  [[nodiscard]] uint64_t seed() const { return source_.seed(); }

  /// The policy the edge priorities derive from.
  [[nodiscard]] const PrioritySource& priority_source() const {
    return source_;
  }

  /// Always true: matching priorities are always policy-derived (there is
  /// no explicit-order mode). Part of the DynamicEngineApi surface.
  [[nodiscard]] bool has_priority_source() const noexcept { return true; }

  /// The priority order this engine induces on the edges of `g` (reading
  /// g's edge weights under the weighted policies) — feed to mm_sequential
  /// for the from-scratch oracle.
  [[nodiscard]] EdgeOrder edge_order_for(const CsrGraph& g) const;

  /// The live graph including edges at inactive vertices (overlay state).
  [[nodiscard]] const OverlayGraph& graph() const { return graph_; }

  /// Sharding seam: installs partition labels on the underlying overlay
  /// so it maintains live cross-partition degrees incrementally (see
  /// OverlayGraph::enable_frontier_tracking). Must run before a
  /// transaction attaches a journal (checked there).
  void enable_frontier_tracking(std::vector<uint32_t> part)
      PARGREEDY_REQUIRES(writer_role_) {
    support::RoleScope overlay_writer(graph_.writer_role_);
    graph_.enable_frontier_tracking(std::move(part));
  }

  /// The oracle's view: live edges with both endpoints active.
  [[nodiscard]] CsrGraph active_subgraph() const;

 private:
  friend struct MmReproEngine;

  /// True iff slot s is in the matching's graph: edge live, endpoints
  /// active.
  [[nodiscard]] bool slot_in_graph(EdgeSlot s) const;

  /// Priority comparison: s strictly earlier than t.
  [[nodiscard]] bool earlier(EdgeSlot s, EdgeSlot t) const;

  [[nodiscard]] bool decide(EdgeSlot s) const;

  /// Grows the per-slot state arrays to cover slot s, computing fresh
  /// priority keys.
  void cover_slot(EdgeSlot s) PARGREEDY_REQUIRES(writer_role_);

  /// Recomputes slot s's cached priority key from its current endpoints
  /// and weight (needed when a re-insert changes an edge's weight).
  void refresh_slot(EdgeSlot s) PARGREEDY_REQUIRES(writer_role_);

  /// Compaction bodies shared by compact()/compact_if_needed()/
  /// apply_batch; require both the engine's and the overlay's writer role
  /// (the public entries acquire the overlay's).
  void compact_impl() PARGREEDY_REQUIRES(writer_role_, graph_.writer_role_);
  bool compact_if_needed_impl()
      PARGREEDY_REQUIRES(writer_role_, graph_.writer_role_);

  OverlayGraph graph_;
  PrioritySource source_;
  std::vector<uint8_t> active_;
  std::vector<uint8_t> in_m_;    // per slot: edge in matching
  std::vector<uint64_t> pri_;    // per slot: priority key, primary word
  std::vector<uint64_t> pri2_;   // per slot: secondary word; empty (and
                                 // skipped in earlier()) for single-word
                                 // policies
  double compact_threshold_ = 0.5;
  uint64_t epoch_ = 0;             // bumped per apply_batch/compact;
                                   // restored by txn_rollback
  BatchStats lifetime_stats_;      // accumulated over apply_batch calls
  // Attached transaction journal (not owned); nullptr outside
  // transactions. Pointer and pointee are writer-role state: only held
  // code reads the attachment or appends records.
  TxnJournal* txn_ PARGREEDY_GUARDED_BY(writer_role_)
      PARGREEDY_PT_GUARDED_BY(writer_role_) = nullptr;
};

}  // namespace pargreedy
