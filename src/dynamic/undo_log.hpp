// Undo logs: the state-capture seam the transactional layer (src/txn/)
// builds on.
//
// A transaction needs to take a checkpoint of a dynamic engine in O(dirty)
// — proportional to what the speculative batches actually touch, never to
// n + m. The representation already splits cleanly into shared immutable
// pages and mutable deltas: the OverlayGraph's base CSR (and the engine's
// initial solution derived from it) never mutates in place, so a
// checkpoint only has to capture the *changes* layered on top. That is
// what these journals record: while a journal is attached, every mutation
// of the delta state appends one inverse record, and rolling back replays
// the records in reverse. A checkpoint is therefore just a pair of record
// counts plus a handful of scalars (TxnMark) — O(1) to take, O(records
// since the mark) to restore.
//
// Two journals, because the state lives on two levels:
//
//   OverlayJournal  graph structure — edge kills/revivals, inserted-slot
//                   appends, in-place weight stores, the lazy
//                   unweighted -> weighted upgrades;
//   EngineJournal   engine decisions — solution-bit flips (recorded by
//                   repropagate() as it commits them), activity flips,
//                   cached-priority-key refreshes, per-slot array growth.
//
// Replay order: records within one journal are replayed newest-first,
// which makes the LIFO invariants hold (an inserted slot's append record
// is always undone after every record that referenced the slot). The two
// journals are independent — all records address state by stable index
// (vertex id, edge/slot id), so engine records never consult overlay
// structure and vice versa, and the transaction layer may replay them in
// either order.
//
// Compaction is the one mutation with no cheap inverse (it rebuilds the
// base CSR and reassigns every slot), so it is forbidden while a journal
// is attached: the engines defer auto-compaction to commit time and
// OverlayGraph::compact() checks.
//
// Concurrency contract: the journal types themselves carry no capability —
// a journal is only ever reached through an attaching pointer
// (OverlayGraph::journal_, the engines' txn_), and those pointers are
// annotated GUARDED_BY/PT_GUARDED_BY the owner's writer role. Every
// record()/truncate() call therefore already sits inside writer-held code,
// which is where -Wthread-safety checks it (see
// support/thread_annotations.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dynamic/batch_stats.hpp"
#include "graph/types.hpp"

namespace pargreedy {

/// One inverse record of an OverlayGraph mutation. `index` is a base edge
/// id, an extra-layer index, a slot, or a vertex id depending on the kind;
/// `old_weight` is only meaningful for the weight kinds.
struct OverlayUndoRecord {
  enum class Kind : uint8_t {
    kEraseBase,        ///< base edge was killed; undo revives it
    kEraseExtra,       ///< extra edge was killed; undo revives it
    kReviveBase,       ///< dead base edge was revived; undo re-kills it
    kReviveExtra,      ///< dead extra edge was revived; undo re-kills it
    kAppendExtra,      ///< a fresh slot was appended; undo pops it
    kSlotWeight,       ///< slot weight overwritten; undo restores old
    kVertexWeight,     ///< vertex weight overwritten; undo restores old
    kUpgradeEdgeWeighted,    ///< overlay became edge-weighted; undo clears
    kUpgradeVertexWeighted,  ///< overlay became vertex-weighted; undo clears
  };

  Kind kind;
  uint64_t index = 0;
  Weight old_weight = kDefaultWeight;
};

/// Append-only inverse log of OverlayGraph mutations. Owned by the
/// transaction layer, attached via OverlayGraph::set_journal(), replayed
/// by OverlayGraph::undo_to().
class OverlayJournal {
 public:
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  void record(OverlayUndoRecord::Kind kind, uint64_t index,
              Weight old_weight = kDefaultWeight) {
    records_.push_back({kind, index, old_weight});
  }

  [[nodiscard]] const OverlayUndoRecord& operator[](std::size_t i) const {
    return records_[i];
  }

  /// Drops every record at or past `mark` (OverlayGraph::undo_to replays
  /// them first).
  void truncate(std::size_t mark) { records_.resize(mark); }

 private:
  std::vector<OverlayUndoRecord> records_;
};

/// One inverse record of a dynamic-engine mutation. `item` is a VertexId
/// or an EdgeSlot (both fit in 64 bits); which fields are meaningful
/// depends on the kind.
struct EngineUndoRecord {
  enum class Kind : uint8_t {
    kDecision,  ///< solution bit flipped; old value in `flag`
    kActive,    ///< activity bit flipped; old value in `flag`
    kKey,       ///< cached priority key refreshed; old words in a/b
                ///< (DynamicMis marks its materialized order stale after
                ///< replaying any of these — no per-record flag needed)
    kGrowth,    ///< per-slot arrays grew; old size in `item`, undo shrinks
  };

  Kind kind;
  uint8_t flag = 0;
  uint64_t item = 0;
  uint64_t old_a = 0;
  uint64_t old_b = 0;
};

/// Append-only inverse log of engine-level mutations (solution bits,
/// activity, cached keys, slot-array growth). repropagate() records
/// decision flips into it when one is attached.
class EngineJournal {
 public:
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  void record_decision(uint64_t item, bool old_value) {
    records_.push_back({EngineUndoRecord::Kind::kDecision,
                        static_cast<uint8_t>(old_value ? 1 : 0), item, 0, 0});
  }
  void record_active(uint64_t item, bool old_value) {
    records_.push_back({EngineUndoRecord::Kind::kActive,
                        static_cast<uint8_t>(old_value ? 1 : 0), item, 0, 0});
  }
  void record_key(uint64_t item, uint64_t old_primary,
                  uint64_t old_secondary) {
    records_.push_back(
        {EngineUndoRecord::Kind::kKey, 0, item, old_primary, old_secondary});
  }
  void record_growth(uint64_t old_size) {
    records_.push_back(
        {EngineUndoRecord::Kind::kGrowth, 0, old_size, 0, 0});
  }

  [[nodiscard]] const EngineUndoRecord& operator[](std::size_t i) const {
    return records_[i];
  }

  void truncate(std::size_t mark) { records_.resize(mark); }

 private:
  std::vector<EngineUndoRecord> records_;
};

/// The pair of journals a transaction attaches to one engine
/// (DynamicMis::txn_attach / DynamicMatching::txn_attach). The engine
/// forwards `overlay` to its OverlayGraph and writes `engine` itself.
struct TxnJournal {
  EngineJournal engine;
  OverlayJournal overlay;
};

/// An O(1) checkpoint of a journaled engine: journal watermarks plus the
/// scalar state a rollback cannot reconstruct from the records alone.
/// Valid only while the journal it was taken against retains the records
/// above the marks (i.e. within the enclosing transaction).
struct TxnMark {
  std::size_t engine_records = 0;   ///< EngineJournal watermark
  std::size_t overlay_records = 0;  ///< OverlayJournal watermark
  uint64_t overlay_epoch = 0;       ///< OverlayGraph::epoch() at capture
  uint64_t engine_epoch = 0;        ///< engine epoch() at capture
  BatchStats lifetime;              ///< engine lifetime_stats() at capture
};

}  // namespace pargreedy
