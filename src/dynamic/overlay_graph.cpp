#include "dynamic/overlay_graph.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/obs.hpp"
#include "support/check.hpp"

namespace pargreedy {

OverlayGraph::OverlayGraph(CsrGraph base)
    : base_(std::move(base)),
      base_dead_(base_.num_edges(), 0),
      extra_adj_(base_.num_vertices()),
      live_edges_(base_.num_edges()) {
  if (base_.has_edge_weights()) {
    edge_weighted_ = true;
    base_weights_.assign(base_.edge_weights().begin(),
                         base_.edge_weights().end());
  }
  if (base_.has_vertex_weights()) {
    vertex_weighted_ = true;
    vertex_weights_.assign(base_.vertex_weights().begin(),
                           base_.vertex_weights().end());
  }
}

EdgeSlot OverlayGraph::locate(const Edge& e) const {
  PG_CHECK_MSG(e.u < num_vertices() && e.v < num_vertices(),
               "edge {" << e.u << "," << e.v << "} out of range");
  const VertexId probe =
      base_.degree(e.u) + extra_adj_[e.u].size() <=
              base_.degree(e.v) + extra_adj_[e.v].size()
          ? e.u
          : e.v;
  const VertexId other = probe == e.u ? e.v : e.u;
  const auto nbrs = base_.neighbors(probe);
  const auto eids = base_.incident_edges(probe);
  for (std::size_t i = 0; i < nbrs.size(); ++i)
    if (nbrs[i] == other) return static_cast<EdgeSlot>(eids[i]);
  for (const auto& [w, idx] : extra_adj_[probe])
    if (w == other) return base_.num_edges() + idx;
  return kInvalidSlot;
}

EdgeSlot OverlayGraph::find_slot(VertexId u, VertexId v) const {
  const EdgeSlot s = locate(Edge{u, v}.canonical());
  return s != kInvalidSlot && slot_live(s) ? s : kInvalidSlot;
}

Edge OverlayGraph::slot_edge(EdgeSlot s) const {
  if (s < base_.num_edges()) return base_.edge(static_cast<EdgeId>(s));
  const uint64_t idx = s - base_.num_edges();
  PG_CHECK_MSG(idx < extra_edges_.size(), "slot " << s << " out of range");
  return extra_edges_[idx];
}

bool OverlayGraph::slot_live(EdgeSlot s) const {
  if (s < base_.num_edges()) return !base_dead_[s];
  const uint64_t idx = s - base_.num_edges();
  return idx < extra_edges_.size() && !extra_dead_[idx];
}

uint64_t OverlayGraph::live_degree(VertexId v) const {
  uint64_t d = 0;
  for_incident(v, [&](VertexId, EdgeSlot) { ++d; });
  return d;
}

void OverlayGraph::ensure_edge_weights() {
  if (edge_weighted_) return;
  edge_weighted_ = true;
  base_weights_.assign(base_.num_edges(), kDefaultWeight);
  extra_weights_.assign(extra_edges_.size(), kDefaultWeight);
  if (journal_)
    journal_->record(OverlayUndoRecord::Kind::kUpgradeEdgeWeighted, 0);
}

void OverlayGraph::store_slot_weight(EdgeSlot s, Weight w) {
  if (s < base_.num_edges())
    base_weights_[s] = w;
  else
    extra_weights_[s - base_.num_edges()] = w;
}

void OverlayGraph::set_slot_weight(EdgeSlot s, Weight w) {
  PG_CHECK_MSG(s < slot_bound(), "slot " << s << " out of range");
  PG_CHECK_MSG(std::isfinite(w), "slot " << s << " weight must be finite");
  if (!edge_weighted_ && w == kDefaultWeight) return;  // already default
  ensure_edge_weights();
  if (journal_)
    journal_->record(OverlayUndoRecord::Kind::kSlotWeight, s, slot_weight(s));
  store_slot_weight(s, w);
  ++epoch_;
}

Weight OverlayGraph::slot_weight(EdgeSlot s) const {
  if (!edge_weighted_) return kDefaultWeight;
  if (s < base_.num_edges()) return base_weights_[s];
  const uint64_t idx = s - base_.num_edges();
  PG_CHECK_MSG(idx < extra_weights_.size(), "slot " << s << " out of range");
  return extra_weights_[idx];
}

EdgeSlot OverlayGraph::set_edge_weight(VertexId u, VertexId v, Weight w) {
  PG_CHECK_MSG(u != v, "self loop {" << u << "," << v << "}");
  PG_CHECK_MSG(std::isfinite(w),
               "edge {" << u << "," << v << "} weight must be finite");
  const EdgeSlot s = find_slot(u, v);
  if (s == kInvalidSlot) return kInvalidSlot;
  set_slot_weight(s, w);
  return s;
}

void OverlayGraph::set_vertex_weight(VertexId v, Weight w) {
  PG_CHECK_MSG(v < num_vertices(), "vertex " << v << " out of range");
  PG_CHECK_MSG(std::isfinite(w),
               "vertex " << v << " weight must be finite");
  if (!vertex_weighted_) {
    if (w == kDefaultWeight) return;  // unweighted stays unweighted
    vertex_weighted_ = true;
    vertex_weights_.assign(num_vertices(), kDefaultWeight);
    if (journal_)
      journal_->record(OverlayUndoRecord::Kind::kUpgradeVertexWeighted, 0);
  }
  if (journal_)
    journal_->record(OverlayUndoRecord::Kind::kVertexWeight, v,
                     vertex_weights_[v]);
  vertex_weights_[v] = w;
  ++epoch_;
}

EdgeSlot OverlayGraph::insert_edge(VertexId u, VertexId v, Weight w) {
  PG_CHECK_MSG(u != v, "self loop {" << u << "," << v << "}");
  PG_CHECK_MSG(u < num_vertices() && v < num_vertices(),
               "edge {" << u << "," << v << "} out of range");
  // Reject bad weights here, at the cause — CsrGraph::set_edge_weights
  // would otherwise abort at an arbitrarily later snapshot/compaction.
  PG_CHECK_MSG(std::isfinite(w),
               "edge {" << u << "," << v << "} weight must be finite");
  if (w != kDefaultWeight) ensure_edge_weights();
  const Edge e = Edge{u, v}.canonical();
  // Revive the dead slot if this edge was ever stored in either layer.
  const EdgeSlot s = locate(e);
  if (s != kInvalidSlot) {
    if (slot_live(s)) return kInvalidSlot;  // already live
    if (s < base_.num_edges()) {
      base_dead_[s] = 0;
      --dead_base_;
      if (journal_)
        journal_->record(OverlayUndoRecord::Kind::kReviveBase, s);
    } else {
      extra_dead_[s - base_.num_edges()] = 0;
      if (journal_)
        journal_->record(OverlayUndoRecord::Kind::kReviveExtra,
                         s - base_.num_edges());
    }
    ++live_edges_;
    ++epoch_;
    track_edge(e, +1);
    if (edge_weighted_) set_slot_weight(s, w);
    PG_OBS_COUNT(obs::kOverlaySlotsRevived, 1);
    return s;
  }
  const uint32_t idx = static_cast<uint32_t>(extra_edges_.size());
  extra_edges_.push_back(e);
  extra_dead_.push_back(0);
  if (edge_weighted_) extra_weights_.push_back(w);
  extra_adj_[e.u].emplace_back(e.v, idx);
  extra_adj_[e.v].emplace_back(e.u, idx);
  ++live_edges_;
  ++epoch_;
  track_edge(e, +1);
  if (journal_) journal_->record(OverlayUndoRecord::Kind::kAppendExtra, idx);
  PG_OBS_COUNT(obs::kOverlaySlotsGrown, 1);
  return base_.num_edges() + idx;
}

EdgeSlot OverlayGraph::erase_edge(VertexId u, VertexId v) {
  const EdgeSlot s = find_slot(u, v);
  if (s == kInvalidSlot) return kInvalidSlot;
  if (s < base_.num_edges()) {
    base_dead_[s] = 1;
    ++dead_base_;
    if (journal_) journal_->record(OverlayUndoRecord::Kind::kEraseBase, s);
  } else {
    extra_dead_[s - base_.num_edges()] = 1;
    if (journal_)
      journal_->record(OverlayUndoRecord::Kind::kEraseExtra,
                       s - base_.num_edges());
  }
  --live_edges_;
  ++epoch_;
  track_edge(slot_edge(s), -1);
  return s;
}

double OverlayGraph::overlay_fraction() const {
  const uint64_t base_m = base_.num_edges();
  const uint64_t delta = extra_edges_.size() + dead_base_;
  return static_cast<double>(delta) /
         static_cast<double>(base_m > 0 ? base_m : 1);
}

EdgeList OverlayGraph::live_edge_list() const {
  EdgeList out(num_vertices());
  out.reserve(live_edges_);
  for (EdgeId e = 0; e < base_.num_edges(); ++e)
    if (!base_dead_[e]) out.add(base_.edge(e).u, base_.edge(e).v);
  for (std::size_t i = 0; i < extra_edges_.size(); ++i)
    if (!extra_dead_[i]) out.add(extra_edges_[i].u, extra_edges_[i].v);
  return out;
}

CsrGraph OverlayGraph::gather_csr(std::span<const uint8_t> active) const {
  // Collect the surviving (edge, weight) pairs in slot order, then sort
  // them into the canonical (u, v) order the CSR builder expects. Live
  // slots hold distinct canonical edges, so the sorted list is already
  // normalized and the weights stay aligned with the new edge ids.
  std::vector<Edge> edges;
  std::vector<Weight> weights;
  edges.reserve(live_edges_);
  if (edge_weighted_) weights.reserve(live_edges_);
  const auto keep = [&](const Edge& e) {
    return active.empty() || (active[e.u] && active[e.v]);
  };
  for (EdgeId e = 0; e < base_.num_edges(); ++e)
    if (!base_dead_[e] && keep(base_.edge(e))) {
      edges.push_back(base_.edge(e));
      if (edge_weighted_) weights.push_back(base_weights_[e]);
    }
  for (std::size_t i = 0; i < extra_edges_.size(); ++i)
    if (!extra_dead_[i] && keep(extra_edges_[i])) {
      edges.push_back(extra_edges_[i]);
      if (edge_weighted_) weights.push_back(extra_weights_[i]);
    }

  std::vector<uint32_t> by_rank(edges.size());
  std::iota(by_rank.begin(), by_rank.end(), 0);
  std::sort(by_rank.begin(), by_rank.end(), [&](uint32_t a, uint32_t b) {
    return edges[a] < edges[b];
  });
  std::vector<Edge> sorted_edges(edges.size());
  std::vector<Weight> sorted_weights(edge_weighted_ ? edges.size() : 0);
  for (std::size_t i = 0; i < by_rank.size(); ++i) {
    sorted_edges[i] = edges[by_rank[i]];
    if (edge_weighted_) sorted_weights[i] = weights[by_rank[i]];
  }

  CsrGraph g = CsrGraph::from_edges(
      EdgeList(num_vertices(), std::move(sorted_edges)),
      /*assume_normalized=*/true);
  if (edge_weighted_) g.set_edge_weights(std::move(sorted_weights));
  if (vertex_weighted_) g.set_vertex_weights(vertex_weights_);
  return g;
}

CsrGraph OverlayGraph::to_csr() const {
  if (!edge_weighted_ && !vertex_weighted_)
    return CsrGraph::from_edges(live_edge_list());
  return gather_csr({});
}

CsrGraph OverlayGraph::active_subgraph(
    std::span<const uint8_t> active) const {
  PG_CHECK_MSG(active.size() == num_vertices(),
               "activity bitmap size != vertex count");
  if (edge_weighted_ || vertex_weighted_)
    return gather_csr(active);
  EdgeList live = live_edge_list();
  EdgeList filtered(num_vertices());
  for (const Edge& e : live.edges())
    if (active[e.u] && active[e.v]) filtered.add(e.u, e.v);
  return CsrGraph::from_edges(filtered);
}

void OverlayGraph::undo_to(std::size_t mark, uint64_t epoch_at_mark) {
  PG_CHECK_MSG(journal_ != nullptr, "undo_to requires an attached journal");
  PG_CHECK_MSG(mark <= journal_->size(),
               "undo mark " << mark << " beyond journal size "
                            << journal_->size());
  // Newest-first replay: LIFO discipline guarantees that when an append
  // record is reached, its slot is live again and its adjacency entries
  // are the newest at both endpoints.
  for (std::size_t i = journal_->size(); i-- > mark;) {
    const OverlayUndoRecord& r = (*journal_)[i];
    switch (r.kind) {
      case OverlayUndoRecord::Kind::kEraseBase:
        base_dead_[r.index] = 0;
        --dead_base_;
        ++live_edges_;
        track_edge(base_.edge(static_cast<EdgeId>(r.index)), +1);
        break;
      case OverlayUndoRecord::Kind::kEraseExtra:
        extra_dead_[r.index] = 0;
        ++live_edges_;
        track_edge(extra_edges_[r.index], +1);
        break;
      case OverlayUndoRecord::Kind::kReviveBase:
        base_dead_[r.index] = 1;
        ++dead_base_;
        --live_edges_;
        track_edge(base_.edge(static_cast<EdgeId>(r.index)), -1);
        break;
      case OverlayUndoRecord::Kind::kReviveExtra:
        extra_dead_[r.index] = 1;
        --live_edges_;
        track_edge(extra_edges_[r.index], -1);
        break;
      case OverlayUndoRecord::Kind::kAppendExtra: {
        PG_DCHECK(!extra_edges_.empty() && !extra_dead_.back());
        const Edge e = extra_edges_.back();
        PG_DCHECK(extra_adj_[e.u].back().second == extra_edges_.size() - 1);
        PG_DCHECK(extra_adj_[e.v].back().second == extra_edges_.size() - 1);
        extra_adj_[e.u].pop_back();
        extra_adj_[e.v].pop_back();
        extra_edges_.pop_back();
        extra_dead_.pop_back();
        if (edge_weighted_) extra_weights_.pop_back();
        --live_edges_;
        track_edge(e, -1);
        break;
      }
      case OverlayUndoRecord::Kind::kSlotWeight:
        store_slot_weight(r.index, r.old_weight);
        break;
      case OverlayUndoRecord::Kind::kVertexWeight:
        vertex_weights_[r.index] = r.old_weight;
        break;
      case OverlayUndoRecord::Kind::kUpgradeEdgeWeighted:
        edge_weighted_ = false;
        base_weights_.clear();
        extra_weights_.clear();
        break;
      case OverlayUndoRecord::Kind::kUpgradeVertexWeighted:
        vertex_weighted_ = false;
        vertex_weights_.clear();
        break;
    }
  }
  journal_->truncate(mark);
  epoch_ = epoch_at_mark;
}

void OverlayGraph::enable_frontier_tracking(std::vector<uint32_t> part) {
  PG_CHECK_MSG(part.size() == num_vertices(),
               "partition labelling size != vertex count");
  PG_CHECK_MSG(journal_ == nullptr,
               "enable frontier tracking before attaching a journal "
               "(replay of pre-enable records would desync the counters)");
  part_ = std::move(part);
  cross_deg_.assign(num_vertices(), 0);
  const auto seed = [&](const Edge& e) {
    if (part_[e.u] != part_[e.v]) {
      ++cross_deg_[e.u];
      ++cross_deg_[e.v];
    }
  };
  for (EdgeId e = 0; e < base_.num_edges(); ++e)
    if (!base_dead_[e]) seed(base_.edge(e));
  for (std::size_t i = 0; i < extra_edges_.size(); ++i)
    if (!extra_dead_[i]) seed(extra_edges_[i]);
}

void OverlayGraph::compact() {
  PG_CHECK_MSG(journal_ == nullptr,
               "compact() is forbidden while an undo journal is attached "
               "(slot reassignment has no cheap inverse)");
  PG_OBS_COUNT(obs::kOverlayCompactions, 1);
  PG_OBS_SPAN2(span_compact, "compact", "overlay", "live_edges", live_edges_,
               "extra", extra_edges_.size());
  base_ = to_csr();  // carries slot weights into the new base when weighted
  base_dead_.assign(base_.num_edges(), 0);
  extra_edges_.clear();
  extra_dead_.clear();
  extra_adj_.assign(base_.num_vertices(), {});
  live_edges_ = base_.num_edges();
  dead_base_ = 0;
  ++epoch_;
  if (edge_weighted_) {
    base_weights_.assign(base_.edge_weights().begin(),
                         base_.edge_weights().end());
    extra_weights_.clear();
  }
}

}  // namespace pargreedy
