// UpdateBatch: one round of mutations applied atomically to a dynamic
// greedy structure (DynamicMis / DynamicMatching).
//
// A batch mixes edge insertions, edge deletions, vertex deactivations and
// vertex activations. Application order within a batch is fixed and
// documented (see apply semantics below) so that a batch always describes a
// single well-defined next graph state:
//
//   1. deactivations     (vertex leaves the graph; its edges stop existing)
//   2. deletions         (edge removed if present)
//   3. insertions        (edge added if absent)
//   4. activations       (vertex re-enters with its surviving edges)
//   5. edge reweights    (in-place weight change of a then-live edge)
//   6. vertex reweights  (in-place weight change of any vertex)
//
// Consequences of the order: a delete+insert of the same edge in one batch
// ends with the edge present ("inserts win"); a deactivate+activate of the
// same vertex ends with the vertex active. Inserting an edge incident to a
// vertex that stays inactive is allowed — the edge is stored but does not
// take part in the solution until the vertex activates.
//
// Reweight precedence: reweights apply to the graph produced by steps
// 1–4, in queue order (the last reweight of an element wins). A reweight
// of an edge inserted in the same batch therefore overrides the insert's
// weight ("reweights win"); a reweight of an edge deleted in the same
// batch is a silent no-op (the weight leaves with the edge — a later
// re-insert carries the insert's own weight). Edge reweights target the
// *live* edge set, active or not: reweighting an edge with an inactive
// endpoint updates its stored weight and priority, which take effect when
// the endpoint activates. Vertex reweights always apply (the vertex
// universe is fixed), including to deactivated vertices — but an inactive
// vertex's priority cannot influence any decision, so such a reweight
// never seeds repropagation.
//
// All edge endpoints are canonicalized (u < v) on entry; self loops are
// rejected. Operations that are no-ops against the current state (deleting
// an absent edge, inserting a present one, activating an active vertex,
// reweighting an absent edge or reweighting to the identical weight)
// are silently skipped and do not seed repropagation. A batch referencing
// any vertex >= n makes apply_batch throw CheckFailure before applying
// anything (the vertex universe is fixed at engine construction).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace pargreedy {

/// A mixed batch of graph updates. Build with the fluent add helpers, then
/// hand to DynamicMis::apply_batch / DynamicMatching::apply_batch.
class UpdateBatch {
 public:
  /// An empty batch (applying it is a no-op).
  UpdateBatch() = default;

  /// Queues insertion of undirected edge {u, v} with weight `w` (default:
  /// unweighted). Rejects self loops. The weight is stored on the edge and
  /// read by weighted priority policies; re-inserting a deleted edge with
  /// a different weight changes its priority.
  UpdateBatch& insert_edge(VertexId u, VertexId v, Weight w = kDefaultWeight);

  /// Queues deletion of undirected edge {u, v}. Rejects self loops.
  UpdateBatch& delete_edge(VertexId u, VertexId v);

  /// Queues activation of vertex v (re-enter the graph).
  UpdateBatch& activate(VertexId v);

  /// Queues deactivation of vertex v (leave the graph with all edges).
  UpdateBatch& deactivate(VertexId v);

  /// Queues an in-place weight change of live edge {u, v} to `w` — no
  /// delete/re-insert, no slot churn; only the affected priority keys are
  /// refreshed. Applied after all structural operations (see the
  /// precedence comment above); reweighting an edge that is not live at
  /// that point is silently skipped. Rejects self loops and non-finite
  /// weights.
  UpdateBatch& reweight_edge(VertexId u, VertexId v, Weight w);

  /// Queues an in-place weight change of vertex v to `w`. Applied last
  /// (see the precedence comment above); always takes effect — the vertex
  /// universe is fixed — even for deactivated vertices, whose new
  /// priority matters only once they activate. Rejects non-finite
  /// weights.
  UpdateBatch& reweight_vertex(VertexId v, Weight w);

  /// True iff no operations are queued.
  [[nodiscard]] bool empty() const {
    return inserts_.empty() && deletes_.empty() && activates_.empty() &&
           deactivates_.empty() && edge_reweights_.empty() &&
           vertex_reweights_.empty();
  }

  /// Total number of queued operations.
  [[nodiscard]] uint64_t size() const {
    return inserts_.size() + deletes_.size() + activates_.size() +
           deactivates_.size() + edge_reweights_.size() +
           vertex_reweights_.size();
  }

  /// Queued edge insertions, canonicalized, in queue order.
  [[nodiscard]] const std::vector<Edge>& inserts() const { return inserts_; }

  /// Per-insert weights, parallel to inserts() (kDefaultWeight when not
  /// supplied).
  [[nodiscard]] const std::vector<Weight>& insert_weights() const {
    return insert_weights_;
  }

  /// Queued edge deletions, canonicalized, in queue order.
  [[nodiscard]] const std::vector<Edge>& deletes() const { return deletes_; }

  /// Queued vertex activations, in queue order.
  [[nodiscard]] const std::vector<VertexId>& activates() const {
    return activates_;
  }

  /// Queued vertex deactivations, in queue order.
  [[nodiscard]] const std::vector<VertexId>& deactivates() const {
    return deactivates_;
  }

  /// Queued edge reweights, canonicalized, in queue order.
  [[nodiscard]] const std::vector<Edge>& edge_reweights() const {
    return edge_reweights_;
  }

  /// Per-edge-reweight weights, parallel to edge_reweights().
  [[nodiscard]] const std::vector<Weight>& edge_reweight_weights() const {
    return edge_reweight_weights_;
  }

  /// Queued vertex reweights, in queue order.
  [[nodiscard]] const std::vector<VertexId>& vertex_reweights() const {
    return vertex_reweights_;
  }

  /// Per-vertex-reweight weights, parallel to vertex_reweights().
  [[nodiscard]] const std::vector<Weight>& vertex_reweight_weights() const {
    return vertex_reweight_weights_;
  }

  /// True iff every endpoint referenced by the batch is < n.
  [[nodiscard]] bool endpoints_in_range(uint64_t n) const;

  /// Removes every queued operation.
  void clear();

  /// A random batch for tests and benches: ~`inserts` edges sampled fresh,
  /// ~`deletes` edges sampled from `existing` (the current live edge set),
  /// plus optional vertex toggles. Deterministic in the seed.
  static UpdateBatch random(uint64_t n, std::span<const Edge> existing,
                            uint64_t inserts, uint64_t deletes,
                            uint64_t toggles, uint64_t seed);

  /// Like random(), but every insert carries a weight drawn uniformly from
  /// {1, ..., levels} — coarse levels force equal-weight ties, exercising
  /// the weighted tie-break policies. Deterministic in the seed.
  static UpdateBatch random_weighted(uint64_t n, std::span<const Edge> existing,
                                     uint64_t inserts, uint64_t deletes,
                                     uint64_t toggles, uint64_t levels,
                                     uint64_t seed);

  /// Like the overload above, plus ~`reweights` weight perturbations mixed
  /// in: alternating edge reweights sampled from `existing` and vertex
  /// reweights sampled from the universe, with weights drawn from the same
  /// {1, ..., levels} quantization. Deterministic in the seed.
  static UpdateBatch random_weighted(uint64_t n, std::span<const Edge> existing,
                                     uint64_t inserts, uint64_t deletes,
                                     uint64_t reweights, uint64_t toggles,
                                     uint64_t levels, uint64_t seed);

 private:
  std::vector<Edge> inserts_;
  std::vector<Weight> insert_weights_;  // parallel to inserts_
  std::vector<Edge> deletes_;
  std::vector<VertexId> activates_;
  std::vector<VertexId> deactivates_;
  std::vector<Edge> edge_reweights_;
  std::vector<Weight> edge_reweight_weights_;  // parallel to edge_reweights_
  std::vector<VertexId> vertex_reweights_;
  std::vector<Weight> vertex_reweight_weights_;  // parallel, same
};

}  // namespace pargreedy
