#include "dynamic/update_batch.hpp"

#include <cmath>

#include "random/hash.hpp"
#include "support/check.hpp"

namespace pargreedy {

UpdateBatch& UpdateBatch::insert_edge(VertexId u, VertexId v, Weight w) {
  PG_CHECK_MSG(u != v, "self loop {" << u << "," << v << "} in batch");
  PG_CHECK_MSG(std::isfinite(w), "insert {" << u << "," << v
                                            << "} weight must be finite");
  inserts_.push_back(Edge{u, v}.canonical());
  insert_weights_.push_back(w);
  return *this;
}

UpdateBatch& UpdateBatch::delete_edge(VertexId u, VertexId v) {
  PG_CHECK_MSG(u != v, "self loop {" << u << "," << v << "} in batch");
  deletes_.push_back(Edge{u, v}.canonical());
  return *this;
}

UpdateBatch& UpdateBatch::activate(VertexId v) {
  activates_.push_back(v);
  return *this;
}

UpdateBatch& UpdateBatch::deactivate(VertexId v) {
  deactivates_.push_back(v);
  return *this;
}

UpdateBatch& UpdateBatch::reweight_edge(VertexId u, VertexId v, Weight w) {
  PG_CHECK_MSG(u != v, "self loop {" << u << "," << v << "} in batch");
  PG_CHECK_MSG(std::isfinite(w), "reweight {" << u << "," << v
                                              << "} weight must be finite");
  edge_reweights_.push_back(Edge{u, v}.canonical());
  edge_reweight_weights_.push_back(w);
  return *this;
}

UpdateBatch& UpdateBatch::reweight_vertex(VertexId v, Weight w) {
  PG_CHECK_MSG(std::isfinite(w),
               "reweight vertex " << v << ": weight must be finite");
  vertex_reweights_.push_back(v);
  vertex_reweight_weights_.push_back(w);
  return *this;
}

bool UpdateBatch::endpoints_in_range(uint64_t n) const {
  for (const Edge& e : inserts_)
    if (e.u >= n || e.v >= n) return false;
  for (const Edge& e : deletes_)
    if (e.u >= n || e.v >= n) return false;
  for (const Edge& e : edge_reweights_)
    if (e.u >= n || e.v >= n) return false;
  for (VertexId v : activates_)
    if (v >= n) return false;
  for (VertexId v : deactivates_)
    if (v >= n) return false;
  for (VertexId v : vertex_reweights_)
    if (v >= n) return false;
  return true;
}

void UpdateBatch::clear() {
  inserts_.clear();
  insert_weights_.clear();
  deletes_.clear();
  activates_.clear();
  deactivates_.clear();
  edge_reweights_.clear();
  edge_reweight_weights_.clear();
  vertex_reweights_.clear();
  vertex_reweight_weights_.clear();
}

UpdateBatch UpdateBatch::random(uint64_t n, std::span<const Edge> existing,
                                uint64_t inserts, uint64_t deletes,
                                uint64_t toggles, uint64_t seed) {
  PG_CHECK_MSG(n >= 2, "random batch needs at least two vertices");
  // Hash-derived substreams: consecutive caller seeds must not alias one
  // operation kind's stream with another's (seed + k would).
  const uint64_t ins_seed = hash64(seed, 0x1);
  const uint64_t del_seed = hash64(seed, 0x2);
  const uint64_t tog_seed = hash64(seed, 0x3);
  UpdateBatch batch;
  for (uint64_t i = 0; i < inserts; ++i) {
    const VertexId u =
        static_cast<VertexId>(hash_range(ins_seed, 2 * i + 0, n));
    VertexId v =
        static_cast<VertexId>(hash_range(ins_seed, 2 * i + 1, n - 1));
    if (v >= u) ++v;  // uniform over the n-1 vertices != u
    batch.insert_edge(u, v);
  }
  if (!existing.empty()) {
    for (uint64_t i = 0; i < deletes; ++i) {
      const Edge e = existing[hash_range(del_seed, i, existing.size())];
      batch.delete_edge(e.u, e.v);
    }
  }
  for (uint64_t i = 0; i < toggles; ++i) {
    const VertexId v =
        static_cast<VertexId>(hash_range(tog_seed, 2 * i, n));
    if (hash64(tog_seed, 2 * i + 1) & 1)
      batch.activate(v);
    else
      batch.deactivate(v);
  }
  return batch;
}

UpdateBatch UpdateBatch::random_weighted(uint64_t n,
                                         std::span<const Edge> existing,
                                         uint64_t inserts, uint64_t deletes,
                                         uint64_t toggles, uint64_t levels,
                                         uint64_t seed) {
  return random_weighted(n, existing, inserts, deletes, /*reweights=*/0,
                         toggles, levels, seed);
}

UpdateBatch UpdateBatch::random_weighted(uint64_t n,
                                         std::span<const Edge> existing,
                                         uint64_t inserts, uint64_t deletes,
                                         uint64_t reweights, uint64_t toggles,
                                         uint64_t levels, uint64_t seed) {
  PG_CHECK_MSG(levels >= 1, "weighted batch needs at least one weight level");
  UpdateBatch batch =
      random(n, existing, inserts, deletes, toggles, seed);
  const uint64_t weight_seed = hash64(seed, 0x4);
  for (std::size_t i = 0; i < batch.insert_weights_.size(); ++i)
    batch.insert_weights_[i] =
        static_cast<Weight>(1 + hash_range(weight_seed, i, levels));
  const uint64_t rw_seed = hash64(seed, 0x5);
  const uint64_t rw_weight_seed = hash64(seed, 0x6);
  for (uint64_t i = 0; i < reweights; ++i) {
    const Weight w =
        static_cast<Weight>(1 + hash_range(rw_weight_seed, i, levels));
    if (i % 2 == 0 && !existing.empty()) {
      const Edge e = existing[hash_range(rw_seed, i, existing.size())];
      batch.reweight_edge(e.u, e.v, w);
    } else {
      batch.reweight_vertex(static_cast<VertexId>(hash_range(rw_seed, i, n)),
                            w);
    }
  }
  return batch;
}

}  // namespace pargreedy
