// OverlayGraph: a mutable adjacency view layered over an immutable
// CsrGraph.
//
// The base CSR stays untouched; mutations are recorded as deltas:
//
//   * deletions of base edges    -> a dead bit per base edge id,
//   * inserted edges             -> an append-only extra edge array plus a
//                                   per-vertex extra adjacency list (with
//                                   its own dead bits, so a deleted insert
//                                   can be revived in place).
//
// Every live edge has a stable *slot*: base edges keep their CsrGraph edge
// id, inserted edges get slots base_edges + i. Engines key per-edge state
// (matching membership, cached priorities) by slot. When the delta grows
// past a caller-chosen fraction of the base, compact() folds everything
// back into a fresh CSR — slots are reassigned, so engines must re-key
// their per-edge state after compaction (DynamicMatching does exactly
// that).
//
// Weights: when the base CSR carries edge weights — or any insert supplies
// an explicit weight — the overlay maintains a weight per slot
// (slot_weight), preserves weights across compact(), and attaches them to
// every CSR it produces (to_csr, active_subgraph). Both edge and vertex
// weights are mutable in place (set_edge_weight / set_vertex_weight — no
// slot churn): vertex weights are owned by the overlay, seeded from the
// base CSR, and likewise stamped onto every snapshot and preserved across
// compact(). Purely unweighted overlays allocate no weight storage.
//
// Undo hooks: the transactional layer attaches an OverlayJournal
// (set_journal) and every mutation appends its inverse record; undo_to()
// replays records newest-first back to a watermark, restoring the overlay
// bit-exactly — see undo_log.hpp for the record catalogue and the
// O(dirty)-checkpoint argument. Each successful mutation also bumps an
// epoch stamp (epoch()), which snapshots record so staleness is
// detectable. compact() has no inverse and therefore refuses to run while
// a journal is attached.
//
// Concurrency contract (machine-checked): one writer, many readers. The
// mutators may only be called by the single thread driving the overlay;
// the const queries are safe from any number of threads *between* writer
// calls. The writer side is modelled as the `writer_role_` capability
// (see support/thread_annotations.hpp): every mutator requires it, the
// engines acquire it for the scope of their own writer entry points, and
// under clang -Wthread-safety a mutator call from a code path that does
// not hold the role — e.g. a reader-side helper — fails to compile.
//
// Queries are O(degree) scans; the overlay is optimized for batch sizes
// small relative to the graph, which is the regime where the dynamic
// engines beat recomputation anyway.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "dynamic/undo_log.hpp"
#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"
#include "graph/types.hpp"
#include "support/thread_annotations.hpp"

namespace pargreedy {

/// Stable identifier of a live edge inside an OverlayGraph.
using EdgeSlot = uint64_t;

inline constexpr EdgeSlot kInvalidSlot = ~EdgeSlot{0};

/// Mutable adjacency view over an immutable CSR base (see the file
/// comment for the delta representation, the slot contract, and weight
/// handling).
class OverlayGraph {
 public:
  /// The single-writer capability: every mutator requires it exclusively.
  /// A zero-cost token for clang's -Wthread-safety analysis — by protocol,
  /// whoever drives mutations acquires it (support::RoleScope) for the
  /// scope of each writer entry point. Public because the capability *is*
  /// part of the public contract: callers name it to declare themselves
  /// the writer.
  support::Role writer_role_;

  /// An empty overlay over an empty graph.
  OverlayGraph() = default;

  /// Wraps `base`: every base edge is live, slots are its CSR edge ids,
  /// and its vertex/edge weights (if any) seed the overlay's.
  explicit OverlayGraph(CsrGraph base);

  /// Number of vertices n (fixed for the overlay's lifetime).
  [[nodiscard]] uint64_t num_vertices() const noexcept {
    return base_.num_vertices();
  }

  /// Number of live (not deleted) edges, base + inserted.
  [[nodiscard]] uint64_t num_live_edges() const { return live_edges_; }

  /// Exclusive upper bound on slot values; size per-slot state arrays to
  /// this. Grows monotonically until compact().
  [[nodiscard]] EdgeSlot slot_bound() const noexcept {
    return base_.num_edges() + extra_edges_.size();
  }

  /// True iff the undirected edge {u, v} is currently live.
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const {
    return find_slot(u, v) != kInvalidSlot;
  }

  /// Slot of live edge {u, v}, or kInvalidSlot when absent.
  [[nodiscard]] EdgeSlot find_slot(VertexId u, VertexId v) const;

  /// Canonical endpoints of a slot (valid for dead slots too, until
  /// compact()).
  [[nodiscard]] Edge slot_edge(EdgeSlot s) const;

  /// True iff the slot currently holds a live edge.
  [[nodiscard]] bool slot_live(EdgeSlot s) const;

  /// Calls fn(neighbor, slot) for every live edge incident on v. Base
  /// edges first (CSR order), then inserted edges (insertion order).
  /// Precondition (unchecked, hot path): v < num_vertices().
  template <typename Fn>
  void for_incident(VertexId v, Fn&& fn) const {
    const auto nbrs = base_.neighbors(v);
    const auto eids = base_.incident_edges(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i)
      if (!base_dead_[eids[i]]) fn(nbrs[i], static_cast<EdgeSlot>(eids[i]));
    for (const auto& [w, idx] : extra_adj_[v])
      if (!extra_dead_[idx]) fn(w, base_.num_edges() + idx);
  }

  /// Like for_incident, but fn returns bool and iteration stops at the
  /// first false (early exit for decision predicates). Returns false iff
  /// fn did.
  template <typename Fn>
  bool for_incident_while(VertexId v, Fn&& fn) const {
    const auto nbrs = base_.neighbors(v);
    const auto eids = base_.incident_edges(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i)
      if (!base_dead_[eids[i]] &&
          !fn(nbrs[i], static_cast<EdgeSlot>(eids[i])))
        return false;
    for (const auto& [w, idx] : extra_adj_[v])
      if (!extra_dead_[idx] && !fn(w, base_.num_edges() + idx)) return false;
    return true;
  }

  /// Live degree of v (counts both layers).
  [[nodiscard]] uint64_t live_degree(VertexId v) const;

  /// Inserts {u, v} with weight `w`; returns the slot, or kInvalidSlot
  /// when the edge was already live (no-op). Reuses the dead slot when the
  /// edge existed before — the stored weight is overwritten with `w`, so a
  /// re-insert can change an edge's weight. Self loops are rejected.
  /// Passing a non-default weight switches the overlay to weighted
  /// (has_edge_weights() becomes true).
  EdgeSlot insert_edge(VertexId u, VertexId v, Weight w = kDefaultWeight)
      PARGREEDY_REQUIRES(writer_role_);

  /// Weight of the edge in slot s (valid for dead slots too, until
  /// compact()); kDefaultWeight when the overlay is unweighted.
  [[nodiscard]] Weight slot_weight(EdgeSlot s) const;

  /// Sets the weight of live edge {u, v} in place — the slot keeps its
  /// identity, so engines only refresh cached priority keys, never re-key
  /// state. Returns the slot, or kInvalidSlot when the edge is not live
  /// (no-op). A non-default weight switches the overlay to edge-weighted.
  EdgeSlot set_edge_weight(VertexId u, VertexId v, Weight w)
      PARGREEDY_REQUIRES(writer_role_);

  /// Same, addressed by slot — for callers that already resolved the
  /// O(degree) find_slot lookup. Precondition (checked): s is a stored
  /// slot.
  void set_slot_weight(EdgeSlot s, Weight w) PARGREEDY_REQUIRES(writer_role_);

  /// Sets the weight of vertex v in place. The new weight reaches every
  /// snapshot (to_csr / active_subgraph) and survives compact(). A
  /// non-default weight switches the overlay to vertex-weighted.
  void set_vertex_weight(VertexId v, Weight w)
      PARGREEDY_REQUIRES(writer_role_);

  /// True iff per-slot edge weights are being maintained.
  [[nodiscard]] bool has_edge_weights() const { return edge_weighted_; }

  /// True iff per-vertex weights are being maintained (seeded from the
  /// base CSR, or by the first set_vertex_weight).
  [[nodiscard]] bool has_vertex_weights() const { return vertex_weighted_; }

  /// Weight of vertex v; kDefaultWeight when unweighted.
  [[nodiscard]] Weight vertex_weight(VertexId v) const {
    return vertex_weighted_ ? vertex_weights_[v] : kDefaultWeight;
  }

  /// Deletes {u, v}; returns the slot it occupied, or kInvalidSlot when
  /// the edge was not live (no-op).
  EdgeSlot erase_edge(VertexId u, VertexId v) PARGREEDY_REQUIRES(writer_role_);

  /// Fraction of the structure living in the delta layers: (inserted
  /// slots + dead base edges) / max(1, base edges). The compaction
  /// trigger.
  [[nodiscard]] double overlay_fraction() const;

  /// Snapshot of the live edge set (canonical, unsorted).
  [[nodiscard]] EdgeList live_edge_list() const;

  /// The live graph as a fresh immutable CSR (normalized edge order).
  [[nodiscard]] CsrGraph to_csr() const;

  /// Live edges with both endpoints marked active, over the full vertex
  /// universe — the dynamic engines' oracle view (inactive vertices
  /// become isolated). `active` must have num_vertices() entries.
  [[nodiscard]] CsrGraph active_subgraph(
      std::span<const uint8_t> active) const;

  /// Folds the deltas into a fresh base CSR. Invalidates all slots.
  /// Checked: forbidden while a journal is attached (no cheap inverse).
  void compact() PARGREEDY_REQUIRES(writer_role_);

  /// The current base CSR (excluding deltas) — for introspection/tests.
  [[nodiscard]] const CsrGraph& base() const { return base_; }

  /// Attaches (or, with nullptr, detaches) the transactional undo log:
  /// while attached, every mutation appends its inverse record and
  /// compact() is forbidden. The journal is owned by the caller (the
  /// transaction layer) and must outlive the attachment.
  void set_journal(OverlayJournal* journal) PARGREEDY_REQUIRES(writer_role_) {
    journal_ = journal;
  }

  /// The attached undo log, or nullptr.
  [[nodiscard]] OverlayJournal* journal() const
      PARGREEDY_REQUIRES(writer_role_) {
    return journal_;
  }

  /// Monotonic mutation stamp: bumped by every successful state change
  /// (edge kill/revive/append, weight store, compaction). undo_to()
  /// restores the stamp captured alongside the watermark, so equal epochs
  /// on the same overlay mean bit-identical delta state.
  [[nodiscard]] uint64_t epoch() const noexcept { return epoch_; }

  /// Replays the attached journal's records newest-first down to `mark`
  /// (a size() watermark captured earlier), truncates the journal to the
  /// mark, and restores the epoch stamp to `epoch_at_mark`. Checked: a
  /// journal must be attached and the mark must not exceed its size.
  void undo_to(std::size_t mark, uint64_t epoch_at_mark)
      PARGREEDY_REQUIRES(writer_role_);

  // ---- Frontier tracking (sharding support) ---------------------------
  //
  // When a partition labelling is installed, the overlay maintains a
  // per-vertex count of live *cross-partition* edges, updated at every
  // liveness flip (insert, erase, undo replay; compact() preserves the
  // live edge set, so counts survive it unchanged). The sharded engine
  // (src/shard/) uses this to track its boundary cone incrementally: a
  // vertex is "on the frontier" exactly while it has at least one live
  // edge whose endpoints are owned by different shards — an O(1) query
  // instead of an O(degree) rescan per exchange round.

  /// Installs partition labels (one per vertex) and scans the live edge
  /// set once to seed the cross-partition counters; subsequent mutations
  /// keep them exact. Checked: one label per vertex, no journal attached
  /// (enable before the transaction layer takes over — replay of records
  /// written pre-enable would desynchronize the counters).
  void enable_frontier_tracking(std::vector<uint32_t> part)
      PARGREEDY_REQUIRES(writer_role_);

  /// True once enable_frontier_tracking has installed labels.
  [[nodiscard]] bool frontier_tracking() const noexcept {
    return !part_.empty();
  }

  /// Partition label of v. Precondition: frontier_tracking().
  [[nodiscard]] uint32_t partition_of(VertexId v) const {
    return part_[v];
  }

  /// Number of live edges incident on v whose other endpoint lives in a
  /// different partition. Precondition: frontier_tracking().
  [[nodiscard]] uint64_t cross_degree(VertexId v) const {
    return cross_deg_[v];
  }

  /// True iff v currently has at least one live cross-partition edge.
  /// Precondition: frontier_tracking().
  [[nodiscard]] bool on_frontier(VertexId v) const {
    return cross_deg_[v] != 0;
  }

 private:
  /// Slot of edge {u, v} in either layer regardless of liveness, or
  /// kInvalidSlot when the edge was never stored. Probes the lower-degree
  /// endpoint (both layers store every edge under both endpoints).
  [[nodiscard]] EdgeSlot locate(const Edge& e) const;

  /// Materializes the per-slot weight arrays (lazy: unweighted overlays
  /// carry none until the first weighted insert).
  void ensure_edge_weights() PARGREEDY_REQUIRES(writer_role_);

  /// Stores weight w at an existing slot (no validation/upgrade — the
  /// public mutators wrap this).
  void store_slot_weight(EdgeSlot s, Weight w)
      PARGREEDY_REQUIRES(writer_role_);

  /// Live edges (optionally filtered to both-endpoints-active) as a
  /// weighted CSR, weights carried from the slots. `active` may be empty
  /// (no filter).
  [[nodiscard]] CsrGraph gather_csr(std::span<const uint8_t> active) const;

  /// Applies a liveness flip of edge `e` (+1 live / -1 dead) to the
  /// cross-partition counters. No-op unless frontier tracking is on.
  void track_edge(const Edge& e, int delta) PARGREEDY_REQUIRES(writer_role_) {
    if (part_.empty() || part_[e.u] == part_[e.v]) return;
    cross_deg_[e.u] = static_cast<uint64_t>(
        static_cast<int64_t>(cross_deg_[e.u]) + delta);
    cross_deg_[e.v] = static_cast<uint64_t>(
        static_cast<int64_t>(cross_deg_[e.v]) + delta);
  }

  CsrGraph base_;
  std::vector<uint8_t> base_dead_;   // per base edge id
  std::vector<Edge> extra_edges_;    // inserted edges, canonical
  std::vector<uint8_t> extra_dead_;  // parallel to extra_edges_
  bool edge_weighted_ = false;       // slot weights are maintained
  std::vector<Weight> base_weights_;   // per base edge id (when weighted)
  std::vector<Weight> extra_weights_;  // parallel to extra_edges_ (same)
  bool vertex_weighted_ = false;       // vertex weights are maintained
  std::vector<Weight> vertex_weights_;  // per vertex (when weighted)
  // Per-vertex inserted adjacency: (neighbor, index into extra_edges_).
  std::vector<std::vector<std::pair<VertexId, uint32_t>>> extra_adj_;
  uint64_t live_edges_ = 0;
  uint64_t dead_base_ = 0;  // dead extra slots need no counter: they stay
                            // inside extra_edges_.size() for the
                            // overlay_fraction trigger
  uint64_t epoch_ = 0;      // bumped per successful mutation; restored by
                            // undo_to
  // Frontier tracking (empty = disabled): partition label per vertex and
  // live cross-partition degree per vertex, maintained at every liveness
  // flip (see the public accessors above).
  std::vector<uint32_t> part_;
  std::vector<uint64_t> cross_deg_;
  // Attached undo log (not owned). Guarded — pointer and pointee — by
  // the writer role: only writer-held code reads or appends records.
  OverlayJournal* journal_ PARGREEDY_GUARDED_BY(writer_role_)
      PARGREEDY_PT_GUARDED_BY(writer_role_) = nullptr;
};

}  // namespace pargreedy
