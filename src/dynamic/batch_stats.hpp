// BatchStats: the touch counters one apply_batch reports.
//
// Split out of repropagate.hpp so the undo-log layer (which stores a
// lifetime accumulator inside its checkpoints) can use it without pulling
// in the repropagation machinery.
#pragma once

#include <cstdint>
#include <string>

namespace pargreedy {

/// Counters reported by apply_batch: how much of the structure one batch
/// actually touched. `recomputed` is the figure the dynamic-vs-static
/// bench plots — the number of greedy-decision re-evaluations performed
/// (a full recompute would be n for MIS, m for matching).
struct BatchStats {
  uint64_t inserted = 0;     ///< edges actually added
  uint64_t deleted = 0;      ///< edges actually removed
  uint64_t activated = 0;    ///< vertices switched inactive -> active
  uint64_t deactivated = 0;  ///< vertices switched active -> inactive
  uint64_t reweighted = 0;   ///< edge/vertex weights actually changed in
                             ///< place (same-weight and absent-edge
                             ///< reweights are no-ops and not counted)
  uint64_t seeds = 0;        ///< initial repropagation frontier size
  uint64_t rounds = 0;       ///< repropagation rounds until fixpoint
  uint64_t recomputed = 0;   ///< greedy decisions re-evaluated (sum of
                             ///< frontier sizes over all rounds)
  uint64_t changed = 0;      ///< decisions that flipped
  bool compacted = false;    ///< overlay was folded back into the base CSR

  /// Adds another batch's counters into this one (compacted ORs) — the
  /// engines keep a lifetime accumulator this way, which transactions
  /// snapshot and restore.
  void accumulate(const BatchStats& other);

  friend bool operator==(const BatchStats&, const BatchStats&) = default;

  /// One-line human-readable rendering for logs and examples.
  [[nodiscard]] std::string summary() const;
};

/// Rolls one batch's counters into the global obs registry (the
/// `engine.*` metrics) — the obs-side twin of accumulate(), called by
/// both engines at the end of apply_batch. Unlike the engines'
/// `lifetime_stats_`, the obs counters are monotonic: transactions roll
/// `lifetime_stats_` back on abort, but the aborted work still
/// *happened*, and that is exactly what observability reports.
///
/// `engine_label` (non-null: "mis" / "matching") additionally bumps the
/// per-policy `engine.*{engine=...}` series — the unlabeled totals are
/// always bumped, so labeled series refine rather than replace them.
/// `num_vertices` > 0 additionally scores the batch against the paper's
/// round bound: `repro.depth_ratio` = rounds * 1000 / ceil(log2 n)^2
/// permille (the SPAA'12 O(log^2 n) w.h.p. dependence-depth guarantee),
/// recorded for batches that repropagated at all.
void obs_accumulate_batch(const BatchStats& stats,
                          const char* engine_label = nullptr,
                          uint64_t num_vertices = 0);

}  // namespace pargreedy
