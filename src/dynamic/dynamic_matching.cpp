#include "dynamic/dynamic_matching.hpp"

#include <algorithm>
#include <utility>

#include "core/matching/matching.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "support/check.hpp"

namespace pargreedy {

// Adapter between DynamicMatching state and the repropagation rounds.
struct MmReproEngine {
  DynamicMatching& dm;

  [[nodiscard]] bool decide(EdgeSlot s) const { return dm.decide(s); }
  [[nodiscard]] bool current(EdgeSlot s) const { return dm.in_m_[s] != 0; }
  void commit(EdgeSlot s, bool value) const { dm.in_m_[s] = value ? 1 : 0; }
  void append_successors(EdgeSlot s, std::vector<EdgeSlot>& out) const {
    const Edge e = dm.graph_.slot_edge(s);
    for (VertexId w : {e.u, e.v}) {
      dm.graph_.for_incident(w, [&](VertexId x, EdgeSlot t) {
        if (dm.active_[x] && t != s && dm.earlier(s, t)) out.push_back(t);
      });
    }
  }
};

DynamicMatching::DynamicMatching(EngineOptions options)
    : source_(std::move(options.source)) {
  PG_CHECK_MSG(!options.explicit_order,
               "DynamicMatching has no vertex-order mode; use a "
               "PrioritySource policy");
  compact_threshold_ = options.compaction_threshold;
  CsrGraph base = std::move(options.graph);
  active_.assign(base.num_vertices(), 1);
  pri_.resize(base.num_edges());
  // pri2_ stays empty for single-word policies: no storage, and earlier()
  // skips the second comparison.
  if (source_.has_secondary_word()) pri2_.resize(base.num_edges());
  parallel_for(0, static_cast<int64_t>(base.num_edges()), [&](int64_t e) {
    const PriorityKey k =
        source_.edge_key(base.edge(static_cast<EdgeId>(e)),
                         base.edge_weight(static_cast<EdgeId>(e)));
    pri_[static_cast<std::size_t>(e)] = k.primary;
    if (!pri2_.empty()) pri2_[static_cast<std::size_t>(e)] = k.secondary;
  });
  in_m_ = mm_rootset(base, edge_order_for(base)).in_matching;
  in_m_.resize(base.num_edges(), 0);  // stays sized to slot_bound
  graph_ = OverlayGraph(std::move(base));
}

EdgeOrder DynamicMatching::edge_order_for(const CsrGraph& g) const {
  return source_.edge_order(g);
}

bool DynamicMatching::slot_in_graph(EdgeSlot s) const {
  if (!graph_.slot_live(s)) return false;
  const Edge e = graph_.slot_edge(s);
  return active_[e.u] && active_[e.v];
}

bool DynamicMatching::earlier(EdgeSlot s, EdgeSlot t) const {
  if (pri_[s] != pri_[t]) return pri_[s] < pri_[t];
  if (!pri2_.empty() && pri2_[s] != pri2_[t]) return pri2_[s] < pri2_[t];
  return edge_pair_key(graph_.slot_edge(s)) <
         edge_pair_key(graph_.slot_edge(t));
}

bool DynamicMatching::decide(EdgeSlot s) const {
  if (!slot_in_graph(s)) return false;
  // s joins iff no earlier-ranked incident edge is in the matching.
  const Edge e = graph_.slot_edge(s);
  for (VertexId w : {e.u, e.v}) {
    const bool clear = graph_.for_incident_while(w, [&](VertexId x,
                                                        EdgeSlot t) {
      return !(active_[x] && t != s && earlier(t, s) && in_m_[t]);
    });
    if (!clear) return false;
  }
  return true;
}

void DynamicMatching::refresh_slot(EdgeSlot s) {
  const PriorityKey k =
      source_.edge_key(graph_.slot_edge(s), graph_.slot_weight(s));
  const uint64_t old2 = pri2_.empty() ? 0 : pri2_[s];
  if (k.primary == pri_[s] && (pri2_.empty() || k.secondary == old2))
    return;  // key unchanged (e.g. random_hash reweight): nothing to
             // store, nothing to journal
  if (txn_) txn_->engine.record_key(s, pri_[s], old2);
  pri_[s] = k.primary;
  if (!pri2_.empty()) pri2_[s] = k.secondary;
}

void DynamicMatching::cover_slot(EdgeSlot s) {
  if (s < pri_.size()) return;
  const std::size_t old = pri_.size();
  if (txn_) txn_->engine.record_growth(old);
  pri_.resize(s + 1);
  if (source_.has_secondary_word()) pri2_.resize(s + 1);
  in_m_.resize(s + 1, 0);
  for (std::size_t t = old; t <= s; ++t) refresh_slot(t);
}

bool DynamicMatching::matched(VertexId u, VertexId v) const {
  const EdgeSlot s = graph_.find_slot(u, v);
  return s != kInvalidSlot && in_m_[s] != 0;
}

VertexId DynamicMatching::matched_with(VertexId v) const {
  VertexId partner = kInvalidVertex;
  graph_.for_incident_while(v, [&](VertexId w, EdgeSlot s) {
    if (in_m_[s]) {
      partner = w;
      return false;
    }
    return true;
  });
  return partner;
}

std::vector<VertexId> DynamicMatching::solution() const {
  std::vector<VertexId> out(num_vertices(), kInvalidVertex);
  parallel_for(0, static_cast<int64_t>(num_vertices()), [&](int64_t v) {
    out[static_cast<std::size_t>(v)] =
        matched_with(static_cast<VertexId>(v));
  });
  return out;
}

std::vector<Edge> DynamicMatching::matched_edges() const {
  std::vector<Edge> out;
  for (EdgeSlot s = 0; s < graph_.slot_bound(); ++s)
    if (in_m_[s]) out.push_back(graph_.slot_edge(s));
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t DynamicMatching::size() const {
  uint64_t count = 0;
  for (EdgeSlot s = 0; s < graph_.slot_bound(); ++s)
    if (in_m_[s]) ++count;
  return count;
}

BatchStats DynamicMatching::apply_batch(const UpdateBatch& batch) {
  // The caller holds writer_role_; the engine is the overlay's one writer
  // for the duration of the batch.
  support::RoleScope overlay_writer(graph_.writer_role_);
  PG_OBS_BATCH_SCOPE(corr_batch);  // fresh batch_id, or a sharded driver's
  PG_OBS_SPAN1(span_batch, "apply_batch", "matching", "batch_size",
               batch.size());
  PG_OBS_EVENT1(kBatchBegin, batch.size());
  const uint64_t n = num_vertices();
  PG_CHECK_MSG(batch.endpoints_in_range(n), "batch references vertex >= n");
  BatchStats stats;
  std::vector<EdgeSlot> seeds;

  // Dropping an edge that was matched frees its endpoints: every
  // later-ranked incident edge (at either endpoint) may now join, so it is
  // seeded. A dropped edge that was NOT matched constrains nobody.
  const auto drop_slot = [&](EdgeSlot s) {
    if (!in_m_[s]) return;
    if (txn_) txn_->engine.record_decision(s, true);
    in_m_[s] = 0;
    ++stats.changed;  // an eager flip, counted like repropagation flips
    const Edge e = graph_.slot_edge(s);
    for (VertexId w : {e.u, e.v}) {
      if (!active_[w]) continue;  // its incident edges are out of the graph
      graph_.for_incident(w, [&](VertexId x, EdgeSlot t) {
        if (active_[x] && earlier(s, t)) seeds.push_back(t);
      });
    }
  };

  // Structural application, in the documented order (see UpdateBatch).
  for (VertexId v : batch.deactivates()) {
    if (!active_[v]) continue;
    if (txn_) txn_->engine.record_active(v, true);
    active_[v] = 0;
    ++stats.deactivated;
    // v's edges leave the graph. Matched ones free their other endpoint.
    graph_.for_incident(v, [&](VertexId, EdgeSlot s) { drop_slot(s); });
  }
  for (const Edge& e : batch.deletes()) {
    const EdgeSlot s = graph_.erase_edge(e.u, e.v);
    if (s == kInvalidSlot) continue;
    ++stats.deleted;
    drop_slot(s);  // slot endpoints stay readable after erase
  }
  for (std::size_t i = 0; i < batch.inserts().size(); ++i) {
    const Edge& e = batch.inserts()[i];
    const EdgeSlot s =
        graph_.insert_edge(e.u, e.v, batch.insert_weights()[i]);
    if (s == kInvalidSlot) continue;
    ++stats.inserted;
    cover_slot(s);
    // A revived slot may carry a different weight than its previous
    // incarnation, so the cached priority key is always recomputed.
    refresh_slot(s);
    if (active_[e.u] && active_[e.v]) seeds.push_back(s);
  }
  for (VertexId v : batch.activates()) {
    if (active_[v]) continue;
    if (txn_) txn_->engine.record_active(v, false);
    active_[v] = 1;
    ++stats.activated;
    // v's surviving edges re-enter the graph (those whose other endpoint
    // is active too); each must recompute its decision from scratch.
    graph_.for_incident(v, [&](VertexId x, EdgeSlot s) {
      if (active_[x]) seeds.push_back(s);
    });
  }
  for (std::size_t i = 0; i < batch.edge_reweights().size(); ++i) {
    const Edge& e = batch.edge_reweights()[i];
    const Weight w = batch.edge_reweight_weights()[i];
    const EdgeSlot s = graph_.find_slot(e.u, e.v);
    if (s == kInvalidSlot || graph_.slot_weight(s) == w) continue;
    graph_.set_slot_weight(s, w);
    ++stats.reweighted;
    const uint64_t old_pri = pri_[s];
    const uint64_t old_pri2 = pri2_.empty() ? 0 : pri2_[s];
    refresh_slot(s);
    if (pri_[s] == old_pri && (pri2_.empty() || pri2_[s] == old_pri2))
      continue;  // key ignores the weight (random_hash): provable no-op
    // An inactive endpoint keeps the edge out of the matching's graph: the
    // refreshed key simply waits for the activation seeds.
    if (!slot_in_graph(s)) continue;
    seeds.push_back(s);
    if (in_m_[s]) {
      // s's rank moved while matched: an incident edge it used to block
      // may now precede it (or vice versa), so every incident decision is
      // re-examined. An unmatched s constrains nobody — seeding s alone
      // suffices, and the rounds discover anything it newly blocks.
      for (VertexId y : {e.u, e.v}) {
        graph_.for_incident(y, [&](VertexId x, EdgeSlot t) {
          if (active_[x] && t != s) seeds.push_back(t);
        });
      }
    }
  }
  for (std::size_t i = 0; i < batch.vertex_reweights().size(); ++i) {
    const VertexId v = batch.vertex_reweights()[i];
    const Weight w = batch.vertex_reweight_weights()[i];
    if (graph_.vertex_weight(v) == w) continue;
    graph_.set_vertex_weight(v, w);
    ++stats.reweighted;
    // Vertex weights never enter edge priorities — no seeding; the new
    // weight reaches active_subgraph() snapshots.
  }

  repropagate(std::move(seeds), MmReproEngine{*this},
              graph_.slot_bound() + 1, stats,
              txn_ ? &txn_->engine : nullptr);

  if (compact_if_needed_impl()) stats.compacted = true;
  ++epoch_;
  lifetime_stats_.accumulate(stats);
  obs_accumulate_batch(stats, "matching", n);
  PG_OBS_EVENT2(kBatchEnd, stats.rounds, stats.changed);
  PG_OBS_SPAN_ARG(span_batch, "rounds", stats.rounds);
  return stats;
}

bool DynamicMatching::compact_if_needed() {
  support::RoleScope overlay_writer(graph_.writer_role_);
  return compact_if_needed_impl();
}

bool DynamicMatching::compact_if_needed_impl() {
  // Deferred while a journal is attached: compaction reassigns slots,
  // which has no cheap inverse; transactions compact at commit instead.
  if (txn_ != nullptr || compact_threshold_ <= 0 ||
      graph_.overlay_fraction() <= compact_threshold_)
    return false;
  compact_impl();
  return true;
}

PriorityKey DynamicMatching::cached_slot_key(EdgeSlot s) const {
  PG_CHECK_MSG(s < pri_.size(), "slot " << s << " not covered");
  return {pri_[s], pri2_.empty() ? 0 : pri2_[s]};
}

void DynamicMatching::txn_attach(TxnJournal* txn) {
  support::RoleScope overlay_writer(graph_.writer_role_);
  PG_CHECK_MSG(txn != nullptr, "txn_attach(nullptr)");
  PG_CHECK_MSG(txn_ == nullptr, "a transaction journal is already attached");
  txn_ = txn;
  graph_.set_journal(&txn->overlay);
}

void DynamicMatching::txn_detach() {
  support::RoleScope overlay_writer(graph_.writer_role_);
  PG_CHECK_MSG(txn_ != nullptr, "no transaction journal attached");
  txn_ = nullptr;
  graph_.set_journal(nullptr);
}

TxnMark DynamicMatching::txn_mark() const {
  PG_CHECK_MSG(txn_ != nullptr, "txn_mark requires an attached journal");
  return {txn_->engine.size(), txn_->overlay.size(), graph_.epoch(), epoch_,
          lifetime_stats_};
}

void DynamicMatching::txn_rollback(const TxnMark& mark) {
  support::RoleScope overlay_writer(graph_.writer_role_);
  PG_CHECK_MSG(txn_ != nullptr, "txn_rollback requires an attached journal");
  const EngineJournal& ej = txn_->engine;
  PG_CHECK_MSG(mark.engine_records <= ej.size(),
               "engine undo mark beyond journal size");
  for (std::size_t i = ej.size(); i-- > mark.engine_records;) {
    const EngineUndoRecord& r = ej[i];
    switch (r.kind) {
      case EngineUndoRecord::Kind::kDecision:
        in_m_[r.item] = r.flag;
        break;
      case EngineUndoRecord::Kind::kActive:
        active_[r.item] = r.flag;
        break;
      case EngineUndoRecord::Kind::kKey:
        // Key records of slots appended after this point in the journal
        // are replayed before the growth record truncates them away, so
        // the writes below always hit live array entries.
        pri_[r.item] = r.old_a;
        if (!pri2_.empty()) pri2_[r.item] = r.old_b;
        break;
      case EngineUndoRecord::Kind::kGrowth:
        pri_.resize(r.item);
        if (!pri2_.empty()) pri2_.resize(r.item);
        in_m_.resize(r.item);
        break;
    }
  }
  txn_->engine.truncate(mark.engine_records);
  graph_.undo_to(mark.overlay_records, mark.overlay_epoch);
  epoch_ = mark.engine_epoch;
  lifetime_stats_ = mark.lifetime;
}

void DynamicMatching::compact() {
  support::RoleScope overlay_writer(graph_.writer_role_);
  compact_impl();
}

void DynamicMatching::compact_impl() {
  const std::vector<Edge> matched = matched_edges();
  graph_.compact();  // slot weights survive; checks no journal attached
  ++epoch_;
  pri_.resize(graph_.slot_bound());
  if (source_.has_secondary_word()) pri2_.resize(graph_.slot_bound());
  parallel_for(0, static_cast<int64_t>(graph_.slot_bound()), [&](int64_t s) {
    const PriorityKey k = source_.edge_key(
        graph_.slot_edge(static_cast<EdgeSlot>(s)),
        graph_.slot_weight(static_cast<EdgeSlot>(s)));
    pri_[static_cast<std::size_t>(s)] = k.primary;
    if (!pri2_.empty()) pri2_[static_cast<std::size_t>(s)] = k.secondary;
  });
  in_m_.assign(graph_.slot_bound(), 0);
  for (const Edge& e : matched) {
    const EdgeSlot s = graph_.find_slot(e.u, e.v);
    PG_CHECK_MSG(s != kInvalidSlot, "matched edge lost in compaction");
    in_m_[s] = 1;
  }
}

CsrGraph DynamicMatching::active_subgraph() const {
  return graph_.active_subgraph(active_);
}

}  // namespace pargreedy
