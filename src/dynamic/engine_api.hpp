// The one public surface shared by every batch-dynamic engine.
//
// Two things live here:
//
//   EngineOptions     the single constructor argument of DynamicMis and
//                     DynamicMatching. The engines used to grow one
//                     constructor overload per configuration axis (seed,
//                     explicit order, PrioritySource, ...); every axis is
//                     now a field of this struct and the overloads are
//                     gone. Callers build options with the named factories
//                     (seeded / with_source / with_order) so call sites
//                     read as intent, not positional soup.
//
//   DynamicEngineApi  the concept the generic layers program against.
//                     Transaction<Traits> (src/txn/) and ShardedEngine
//                     (src/shard/) only ever touch an engine through the
//                     operations listed here; engine_traits.hpp
//                     static_asserts that both engines model it, so a
//                     drifting engine surface is a compile error at the
//                     point that documents the contract.
//
// The concept deliberately names the *transactional* seam (txn_attach /
// txn_mark / txn_rollback) next to the everyday operations: an engine that
// cannot checkpoint and roll back in O(dirty) cannot sit under the txn or
// shard layers, so the requirement is part of the public contract rather
// than a private handshake.
//
// Option semantics (identical to the removed overloads, bit for bit):
//
//   seeded(g, seed)        random-hash priorities; for DynamicMis the
//                          materialized pi is VertexOrder::random(n, seed).
//   with_source(g, src)    pi / edge keys derived from the PrioritySource
//                          policy (weighted greedy under the weight
//                          policies).
//   with_order(g, order)   DynamicMis only: an explicit, fixed-for-life
//                          VertexOrder with no policy behind it (reweights
//                          cannot move priorities). DynamicMatching has no
//                          vertex-order mode and rejects it (checked).
//
// compaction_threshold mirrors set_compaction_threshold(): the overlay
// fraction above which apply_batch folds deltas into the base CSR
// (<= 0 disables; default 0.5).
#pragma once

#include <concepts>
#include <cstdint>
#include <optional>
#include <utility>

#include "core/mis/vertex_order.hpp"
#include "core/priority/priority_source.hpp"
#include "dynamic/batch_stats.hpp"
#include "dynamic/overlay_graph.hpp"
#include "dynamic/undo_log.hpp"
#include "dynamic/update_batch.hpp"
#include "graph/csr_graph.hpp"

namespace pargreedy {

/// The single constructor argument of the dynamic engines (see file
/// comment). Move-only in spirit: the graph is consumed by the engine, so
/// build the options inline at the construction site.
struct EngineOptions {
  /// The base graph the engine starts from (consumed).
  CsrGraph graph;

  /// Priority policy; ignored when `explicit_order` is set. Defaults to
  /// random_hash(0) so a value-initialized options struct is still valid.
  PrioritySource source = PrioritySource::random_hash(0);

  /// DynamicMis only: a fixed explicit pi instead of a policy. Engines
  /// built this way cache no priority keys and reweights never move
  /// priorities (see dynamic_mis.hpp).
  std::optional<VertexOrder> explicit_order;

  /// Overlay fraction above which apply_batch compacts; <= 0 disables.
  double compaction_threshold = 0.5;

  /// Random-hash priorities from `seed` — the historical `(graph, seed)`
  /// constructor, bit for bit.
  [[nodiscard]] static EngineOptions seeded(CsrGraph graph, uint64_t seed) {
    EngineOptions opts;
    opts.graph = std::move(graph);
    opts.source = PrioritySource::random_hash(seed);
    return opts;
  }

  /// Priorities from a PrioritySource policy — the historical
  /// `(graph, source)` constructor.
  [[nodiscard]] static EngineOptions with_source(CsrGraph graph,
                                                PrioritySource source) {
    EngineOptions opts;
    opts.graph = std::move(graph);
    opts.source = std::move(source);
    return opts;
  }

  /// Explicit fixed pi (DynamicMis only) — the historical
  /// `(graph, VertexOrder)` constructor.
  [[nodiscard]] static EngineOptions with_order(CsrGraph graph,
                                               VertexOrder order) {
    EngineOptions opts;
    opts.graph = std::move(graph);
    opts.explicit_order = std::move(order);
    return opts;
  }

  /// Fluent compaction knob: `EngineOptions::seeded(g, s).compaction(0.1)`.
  [[nodiscard]] EngineOptions&& compaction(double fraction) && {
    compaction_threshold = fraction;
    return std::move(*this);
  }
};

/// The operations the generic layers (Transaction, ShardedEngine, the
/// repro adapters) rely on. Both engines model this; engine_traits.hpp
/// carries the static_asserts. The writer-role requirements on the
/// mutators are invisible here (requires-expressions are unevaluated) but
/// still enforced at every real call site by -Wthread-safety.
template <typename E>
concept DynamicEngineApi =
    std::constructible_from<E, EngineOptions> &&
    requires(E& e, const E& ce, const UpdateBatch& batch, TxnJournal* journal,
             const TxnMark& mark, VertexId v) {
      // Everyday queries (reader-safe between writer calls).
      { ce.num_vertices() } noexcept -> std::same_as<uint64_t>;
      { ce.num_edges() } noexcept -> std::same_as<uint64_t>;
      { ce.active(v) } noexcept -> std::same_as<bool>;
      { ce.epoch() } noexcept -> std::same_as<uint64_t>;
      { ce.graph() } -> std::same_as<const OverlayGraph&>;
      { ce.active_subgraph() } -> std::same_as<CsrGraph>;
      { ce.lifetime_stats() } noexcept -> std::same_as<const BatchStats&>;
      { ce.has_priority_source() } noexcept -> std::same_as<bool>;
      { ce.solution() };  // value type is engine-specific (Traits::Value)
      // Mutators (single writer).
      { e.apply_batch(batch) } -> std::same_as<BatchStats>;
      { e.set_compaction_threshold(0.0) };
      { e.compact() };
      { e.compact_if_needed() } -> std::same_as<bool>;
      // Transactional seam (O(1) checkpoint, O(dirty) rollback).
      { e.txn_attach(journal) };
      { e.txn_detach() };
      { e.txn_mark() } -> std::same_as<TxnMark>;
      { e.txn_rollback(mark) };
    };

}  // namespace pargreedy
