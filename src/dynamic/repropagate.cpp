#include "dynamic/repropagate.hpp"

#include <sstream>

namespace pargreedy {

void BatchStats::accumulate(const BatchStats& other) {
  inserted += other.inserted;
  deleted += other.deleted;
  activated += other.activated;
  deactivated += other.deactivated;
  reweighted += other.reweighted;
  seeds += other.seeds;
  rounds += other.rounds;
  recomputed += other.recomputed;
  changed += other.changed;
  compacted = compacted || other.compacted;
}

std::string BatchStats::summary() const {
  std::ostringstream os;
  os << "+" << inserted << " edges, -" << deleted << " edges";
  if (activated || deactivated)
    os << ", +" << activated << "/-" << deactivated << " vertices";
  if (reweighted) os << ", ~" << reweighted << " reweights";
  os << "; " << seeds << " seeds -> " << recomputed << " recomputes, "
     << changed << " flips in " << rounds << " rounds";
  if (compacted) os << " (compacted)";
  return os.str();
}

void obs_accumulate_batch(const BatchStats& stats) {
  PG_OBS_COUNT(obs::kEngineBatches, 1);
  PG_OBS_COUNT(obs::kEngineInserted, stats.inserted);
  PG_OBS_COUNT(obs::kEngineDeleted, stats.deleted);
  PG_OBS_COUNT(obs::kEngineActivated, stats.activated);
  PG_OBS_COUNT(obs::kEngineDeactivated, stats.deactivated);
  PG_OBS_COUNT(obs::kEngineReweighted, stats.reweighted);
  PG_OBS_COUNT(obs::kEngineSeeds, stats.seeds);
  PG_OBS_COUNT(obs::kEngineRounds, stats.rounds);
  PG_OBS_COUNT(obs::kEngineRecomputed, stats.recomputed);
  PG_OBS_COUNT(obs::kEngineChanged, stats.changed);
  PG_OBS_COUNT(obs::kEngineCompacted, stats.compacted ? 1 : 0);
}

}  // namespace pargreedy
