#include "dynamic/repropagate.hpp"

#include <bit>
#include <sstream>

namespace pargreedy {

void BatchStats::accumulate(const BatchStats& other) {
  inserted += other.inserted;
  deleted += other.deleted;
  activated += other.activated;
  deactivated += other.deactivated;
  reweighted += other.reweighted;
  seeds += other.seeds;
  rounds += other.rounds;
  recomputed += other.recomputed;
  changed += other.changed;
  compacted = compacted || other.compacted;
}

std::string BatchStats::summary() const {
  std::ostringstream os;
  os << "+" << inserted << " edges, -" << deleted << " edges";
  if (activated || deactivated)
    os << ", +" << activated << "/-" << deactivated << " vertices";
  if (reweighted) os << ", ~" << reweighted << " reweights";
  os << "; " << seeds << " seeds -> " << recomputed << " recomputes, "
     << changed << " flips in " << rounds << " rounds";
  if (compacted) os << " (compacted)";
  return os.str();
}

void obs_accumulate_batch(const BatchStats& stats, const char* engine_label,
                          uint64_t num_vertices) {
  PG_OBS_COUNT(obs::kEngineBatches, 1);
  PG_OBS_COUNT(obs::kEngineInserted, stats.inserted);
  PG_OBS_COUNT(obs::kEngineDeleted, stats.deleted);
  PG_OBS_COUNT(obs::kEngineActivated, stats.activated);
  PG_OBS_COUNT(obs::kEngineDeactivated, stats.deactivated);
  PG_OBS_COUNT(obs::kEngineReweighted, stats.reweighted);
  PG_OBS_COUNT(obs::kEngineSeeds, stats.seeds);
  PG_OBS_COUNT(obs::kEngineRounds, stats.rounds);
  PG_OBS_COUNT(obs::kEngineRecomputed, stats.recomputed);
  PG_OBS_COUNT(obs::kEngineChanged, stats.changed);
  PG_OBS_COUNT(obs::kEngineCompacted, stats.compacted ? 1 : 0);
  if (engine_label != nullptr) {
    // Per-policy refinement of the series a dashboard splits on; the
    // full-width rollup stays on the unlabeled counters above.
    PG_OBS_COUNT_L(obs::kEngineBatches, "engine", engine_label, 1);
    PG_OBS_COUNT_L(obs::kEngineSeeds, "engine", engine_label, stats.seeds);
    PG_OBS_COUNT_L(obs::kEngineRounds, "engine", engine_label, stats.rounds);
    PG_OBS_COUNT_L(obs::kEngineRecomputed, "engine", engine_label,
                   stats.recomputed);
    PG_OBS_COUNT_L(obs::kEngineChanged, "engine", engine_label,
                   stats.changed);
  }
  if (num_vertices > 1 && stats.rounds > 0) {
    // The paper's guarantee, watched live: observed repropagation depth
    // vs the O(log^2 n) round bound, in permille. bit_width(n) is
    // ceil(log2 n) up to rounding — stable, cheap, and monotone in n,
    // which is all a health ratio needs.
    const uint64_t log_n = std::bit_width(num_vertices);
    const uint64_t bound = log_n * log_n;
    const uint64_t permille = stats.rounds * 1000 / bound;
    PG_OBS_GAUGE(obs::kReproDepthRatio, permille);
    PG_OBS_HIST(obs::kReproDepthRatioDist, permille);
  }
}

}  // namespace pargreedy
