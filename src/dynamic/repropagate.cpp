#include "dynamic/repropagate.hpp"

#include <sstream>

namespace pargreedy {

void BatchStats::accumulate(const BatchStats& other) {
  inserted += other.inserted;
  deleted += other.deleted;
  activated += other.activated;
  deactivated += other.deactivated;
  reweighted += other.reweighted;
  seeds += other.seeds;
  rounds += other.rounds;
  recomputed += other.recomputed;
  changed += other.changed;
  compacted = compacted || other.compacted;
}

std::string BatchStats::summary() const {
  std::ostringstream os;
  os << "+" << inserted << " edges, -" << deleted << " edges";
  if (activated || deactivated)
    os << ", +" << activated << "/-" << deactivated << " vertices";
  if (reweighted) os << ", ~" << reweighted << " reweights";
  os << "; " << seeds << " seeds -> " << recomputed << " recomputes, "
     << changed << " flips in " << rounds << " rounds";
  if (compacted) os << " (compacted)";
  return os.str();
}

}  // namespace pargreedy
