#include "dynamic/repropagate.hpp"

#include <sstream>

namespace pargreedy {

std::string BatchStats::summary() const {
  std::ostringstream os;
  os << "+" << inserted << " edges, -" << deleted << " edges";
  if (activated || deactivated)
    os << ", +" << activated << "/-" << deactivated << " vertices";
  if (reweighted) os << ", ~" << reweighted << " reweights";
  os << "; " << seeds << " seeds -> " << recomputed << " recomputes, "
     << changed << " flips in " << rounds << " rounds";
  if (compacted) os << " (compacted)";
  return os.str();
}

}  // namespace pargreedy
