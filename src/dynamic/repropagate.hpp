// Parallel repropagation to a greedy fixpoint — the core of the dynamic
// engines.
//
// Both the lexicographically-first MIS and the greedy maximal matching are
// the unique solution of a locally-checkable consistency condition over the
// priority DAG ("an item is IN iff none of its earlier-ranked dependencies
// is IN"). After a batch of graph updates, only the cone of the DAG
// reachable from the touched items can change, so the engines re-evaluate
// decisions outward from a seed frontier instead of recomputing from
// scratch:
//
//   round:  decide    — recompute each frontier item's greedy decision
//                       from the *current* stored state (parallel read),
//           commit    — store the decisions that flipped (parallel write,
//                       disjoint slots),
//           expand    — the later-ranked dependents of every flipped item
//                       form the next frontier.
//
// An item is re-examined whenever one of its inputs flips, so at the empty
// frontier every item is consistent with its dependencies — and a state
// that is everywhere locally consistent *is* the greedy solution (unique
// by induction along the priority order). Rounds needed are bounded by the
// longest priority-DAG path inside the affected cone, which Fischer–Noever
// (and Theorem 3.5 of the source paper) bound by O(log^2 n) w.h.p. for
// random priorities — this is why small batches settle in a handful of
// rounds.
//
// The decide/commit split makes every round race-free: decides only read
// engine state, commits write disjoint per-item slots, and the next
// frontier is deduplicated by value — so the fixpoint (and every
// intermediate round) is deterministic at any worker count, on both
// backends.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "dynamic/batch_stats.hpp"
#include "dynamic/undo_log.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/pack.hpp"
#include "support/check.hpp"

namespace pargreedy {

/// Sorts and deduplicates a frontier in place (deterministic order).
template <typename Item>
void sort_unique(std::vector<Item>& items) {
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
}

/// Runs decide/commit/expand rounds until the frontier is empty.
///
/// Engine requirements (Item is an integral id — VertexId or EdgeSlot):
///   bool decide(Item) const       recompute the greedy decision from the
///                                 currently stored state;
///   bool current(Item) const      the stored decision;
///   void commit(Item, bool)       store a flipped decision (called only
///                                 for items whose decision changed; must
///                                 touch only state keyed by that item);
///   void append_successors(Item, std::vector<Item>&) const
///                                 append the later-ranked items whose
///                                 decision depends on this one.
///
/// `limit` bounds the number of rounds (a correctness guard: the fixpoint
/// is reached after at most longest-priority-path rounds, so hitting the
/// limit means a broken engine, not a big input).
///
/// When `journal` is non-null every flipped decision's old value is
/// recorded before the commit writes it — the transactional undo log
/// (O(changed) serial work per round; the parallel decide/commit paths
/// are untouched). Callers outside a transaction pass nullptr.
template <typename Item, typename Engine>
void repropagate(std::vector<Item> frontier, Engine&& engine, uint64_t limit,
                 BatchStats& stats, EngineJournal* journal = nullptr) {
  sort_unique(frontier);
  stats.seeds = frontier.size();

  // All instrumentation below runs on the (serial) driver thread, keyed
  // by deterministic quantities — frontier/flip/fanout sizes are the
  // same at any worker count, so the obs counters are too.
  PG_OBS_SPAN1(span_repro, "repropagate", "repro", "seeds", stats.seeds);

  std::vector<uint8_t> decisions;
  while (!frontier.empty()) {
    ++stats.rounds;
    PG_CHECK_MSG(stats.rounds <= limit,
                 "repropagation failed to reach a fixpoint after "
                     << stats.rounds << " rounds (limit " << limit << ")");
    const int64_t f = static_cast<int64_t>(frontier.size());
    stats.recomputed += frontier.size();
    PG_OBS_HIST(obs::kReproRoundFrontier, frontier.size());

    // Decide: pure reads of engine state.
    std::vector<int64_t> flipped;
    {
      PG_OBS_SPAN2(span_decide, "decide", "repro", "round", stats.rounds,
                   "frontier", f);
      decisions.assign(frontier.size(), 0);
      parallel_for(0, f, [&](int64_t i) {
        decisions[static_cast<std::size_t>(i)] =
            engine.decide(frontier[static_cast<std::size_t>(i)]) ? 1 : 0;
      });
      flipped = pack_index<int64_t>(f, [&](int64_t i) {
        return (decisions[static_cast<std::size_t>(i)] != 0) !=
               engine.current(frontier[static_cast<std::size_t>(i)]);
      });
    }
    stats.changed += flipped.size();
    PG_OBS_HIST(obs::kReproRoundFlipped, flipped.size());
    PG_OBS_EVENT2(kReproRound, frontier.size(), flipped.size());

    {
      PG_OBS_SPAN2(span_commit, "commit", "repro", "round", stats.rounds,
                   "flipped", flipped.size());

      // Journal the flips' old values before the commit overwrites them
      // (serial, O(changed) — the undo log a transaction replays on abort).
      if (journal) {
        for (const int64_t i : flipped) {
          const std::size_t idx = static_cast<std::size_t>(i);
          journal->record_decision(static_cast<uint64_t>(frontier[idx]),
                                   engine.current(frontier[idx]));
        }
      }

      // Commit: disjoint per-item writes.
      parallel_for(0, static_cast<int64_t>(flipped.size()), [&](int64_t i) {
        const std::size_t idx =
            static_cast<std::size_t>(flipped[static_cast<std::size_t>(i)]);
        engine.commit(frontier[idx], decisions[idx] != 0);
      });
    }

    // Expand: later-ranked dependents of every flipped item, deduplicated.
    const int64_t c = static_cast<int64_t>(flipped.size());
    std::vector<Item> next;
    {
      PG_OBS_SPAN1(span_expand, "expand", "repro", "round", stats.rounds);
      if (c > 0) {
        std::vector<std::vector<Item>> per_block(
            static_cast<std::size_t>(parallel_block_count(c)));
        parallel_blocks(c, [&](int64_t b, int64_t lo, int64_t hi) {
          auto& out = per_block[static_cast<std::size_t>(b)];
          for (int64_t i = lo; i < hi; ++i) {
            const std::size_t idx =
                static_cast<std::size_t>(flipped[static_cast<std::size_t>(i)]);
            engine.append_successors(frontier[idx], out);
          }
        });
        for (auto& block : per_block)
          next.insert(next.end(), block.begin(), block.end());
        // Cone fanout = successors reached this round, pre-dedup: the
        // raw out-degree mass of the flipped set.
        PG_OBS_HIST(obs::kReproConeFanout, next.size());
        sort_unique(next);
      }
      PG_OBS_SPAN_ARG(span_expand, "next_frontier", next.size());
    }
    frontier = std::move(next);
  }
  PG_OBS_HIST(obs::kReproBatchRounds, stats.rounds);
  PG_OBS_SPAN_ARG(span_repro, "rounds", stats.rounds);
}

}  // namespace pargreedy
