#include <algorithm>
#include <cmath>

#include "generators/generators.hpp"
#include "parallel/parallel_for.hpp"
#include "random/hash.hpp"
#include "random/xoshiro.hpp"
#include "support/check.hpp"

namespace pargreedy {

EdgeList random_graph_nm(uint64_t n, uint64_t m, uint64_t seed) {
  PG_CHECK_MSG(n >= 2 || m == 0, "need at least two vertices for edges");
  const uint64_t max_edges = n < 2 ? 0 : n * (n - 1) / 2;
  PG_CHECK_MSG(m <= max_edges, "requested more edges than K_n has");

  // Sample in rounds: draw ~15% more endpoint pairs than still needed (the
  // slack absorbs loops and duplicates, which are rare in sparse settings),
  // normalize, repeat. Counter-based hashing keys each draw by a global
  // draw index so the result is independent of the worker count.
  EdgeList accumulated(n);
  uint64_t draw_index = 0;
  for (int round = 0; round < 64; ++round) {
    const uint64_t have = accumulated.num_edges();
    if (have >= m) break;
    const uint64_t need = m - have;
    const uint64_t draws = need + need / 6 + 16;
    std::vector<Edge>& out = accumulated.mutable_edges();
    const std::size_t base = out.size();
    out.resize(base + draws);
    const HashRng rng = HashRng(seed).child(0x45520000 + (uint64_t)round);
    parallel_for(0, static_cast<int64_t>(draws), [&](int64_t i) {
      const uint64_t d = draw_index + static_cast<uint64_t>(i);
      const VertexId u = static_cast<VertexId>(rng.range(2 * d, n));
      const VertexId v = static_cast<VertexId>(rng.range(2 * d + 1, n));
      out[base + static_cast<std::size_t>(i)] = Edge{u, v};
    });
    draw_index += draws;
    accumulated = normalize_edges(accumulated);
  }
  // Trim any overshoot by keeping a *random* m-subset (plain truncation of
  // the sorted list would starve high-id vertices of edges).
  if (accumulated.num_edges() > m) {
    std::vector<Edge>& edges = accumulated.mutable_edges();
    std::vector<uint32_t> order(edges.size());
    for (std::size_t i = 0; i < order.size(); ++i)
      order[i] = static_cast<uint32_t>(i);
    const HashRng cut = HashRng(seed).child(0x43555400);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      const uint64_t ka = cut.bits(a), kb = cut.bits(b);
      return ka != kb ? ka < kb : a < b;
    });
    std::vector<Edge> kept(m);
    for (uint64_t i = 0; i < m; ++i) kept[i] = edges[order[i]];
    sort_edges(kept, n);
    edges.swap(kept);
  }
  return accumulated;
}

EdgeList erdos_renyi_gnp(uint64_t n, double p, uint64_t seed) {
  PG_CHECK_MSG(p >= 0.0 && p <= 1.0, "p must be a probability");
  EdgeList edges(n);
  if (n < 2 || p == 0.0) return edges;
  if (p >= 1.0) return complete_graph(n);
  Xoshiro256 rng(mix64(seed) ^ 0x474e5000ULL);

  // Geometric skip sampling over the n*(n-1)/2 pair indices, walking the
  // (u, v) cursor incrementally: exact G(n,p) in O(n + n^2 p) work.
  const double log1mp = std::log1p(-p);
  uint64_t u = 0;
  uint64_t v = 0;  // cursor: next candidate pair is (u, v + 1)
  bool exhausted = false;
  auto advance = [&](uint64_t k) {
    // Move the cursor forward by k pairs in row-major (u, v) order.
    while (k > 0) {
      const uint64_t row_remaining = (n - 1) - v;  // pairs left in row u
      if (k <= row_remaining) {
        v += k;
        return;
      }
      k -= row_remaining;
      ++u;
      if (u >= n - 1) {
        exhausted = true;
        return;
      }
      v = u;
    }
  };
  while (true) {
    const double r = rng.unit();
    const uint64_t skip =
        static_cast<uint64_t>(std::floor(std::log1p(-r) / log1mp));
    advance(skip + 1);
    if (exhausted) break;
    edges.mutable_edges().push_back(
        Edge{static_cast<VertexId>(u), static_cast<VertexId>(v)});
  }
  return edges;
}

}  // namespace pargreedy
