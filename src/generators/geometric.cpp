// Random geometric graph generator.
//
// n points uniform in the unit square; edge iff Euclidean distance <=
// radius. Points are bucketed into a radius-sized grid so each point only
// tests the 3x3 surrounding cells — O(n + expected m) in sparse settings.
// Point coordinates are counter-based hashes of the point index, so the
// output is a pure function of (n, radius, seed).
#include <algorithm>
#include <cmath>

#include "generators/generators.hpp"
#include "random/hash.hpp"
#include "support/check.hpp"

namespace pargreedy {

EdgeList random_geometric(uint64_t n, double radius, uint64_t seed) {
  PG_CHECK_MSG(radius > 0.0 && radius <= 1.0, "radius must be in (0, 1]");
  const HashRng rng = HashRng(seed).child(0x52474700);

  std::vector<double> x(n);
  std::vector<double> y(n);
  for (uint64_t i = 0; i < n; ++i) {
    x[i] = rng.unit(2 * i);
    y[i] = rng.unit(2 * i + 1);
  }

  // Grid of side ceil(1/radius): all pairs within `radius` live in the
  // same or an adjacent cell.
  const uint64_t side = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::floor(1.0 / radius)));
  auto cell_of = [&](uint64_t i) {
    const uint64_t cx = std::min<uint64_t>(
        side - 1, static_cast<uint64_t>(x[i] * static_cast<double>(side)));
    const uint64_t cy = std::min<uint64_t>(
        side - 1, static_cast<uint64_t>(y[i] * static_cast<double>(side)));
    return cx * side + cy;
  };
  // Bucket points by cell (counting sort over cell ids).
  std::vector<uint64_t> cell_start(side * side + 1, 0);
  for (uint64_t i = 0; i < n; ++i) ++cell_start[cell_of(i) + 1];
  for (uint64_t c = 0; c < side * side; ++c)
    cell_start[c + 1] += cell_start[c];
  std::vector<uint32_t> by_cell(n);
  {
    std::vector<uint64_t> cursor(cell_start.begin(), cell_start.end() - 1);
    for (uint64_t i = 0; i < n; ++i)
      by_cell[cursor[cell_of(i)]++] = static_cast<uint32_t>(i);
  }

  const double r2 = radius * radius;
  EdgeList edges(n);
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t cx = std::min<uint64_t>(
        side - 1, static_cast<uint64_t>(x[i] * static_cast<double>(side)));
    const uint64_t cy = std::min<uint64_t>(
        side - 1, static_cast<uint64_t>(y[i] * static_cast<double>(side)));
    for (uint64_t dx = cx == 0 ? 0 : cx - 1;
         dx <= std::min(side - 1, cx + 1); ++dx) {
      for (uint64_t dy = cy == 0 ? 0 : cy - 1;
           dy <= std::min(side - 1, cy + 1); ++dy) {
        const uint64_t c = dx * side + dy;
        for (uint64_t at = cell_start[c]; at < cell_start[c + 1]; ++at) {
          const uint32_t j = by_cell[at];
          if (j <= i) continue;  // each pair once, i < j
          const double ddx = x[i] - x[j];
          const double ddy = y[i] - y[j];
          if (ddx * ddx + ddy * ddy <= r2)
            edges.add(static_cast<VertexId>(i), static_cast<VertexId>(j));
        }
      }
    }
  }
  return normalize_edges(edges);
}

EdgeList random_bipartite(uint64_t a, uint64_t b, uint64_t m, uint64_t seed) {
  PG_CHECK_MSG(a >= 1 && b >= 1, "both parts must be non-empty");
  PG_CHECK_MSG(m <= a * b, "requested more edges than K_{a,b} has");
  // Oversample-and-normalize rounds, like random_graph_nm.
  EdgeList accumulated(a + b);
  uint64_t draw_index = 0;
  for (int round = 0; round < 64; ++round) {
    const uint64_t have = accumulated.num_edges();
    if (have >= m) break;
    const uint64_t need = m - have;
    const uint64_t draws = need + need / 6 + 16;
    const HashRng rng =
        HashRng(seed).child(0x42495000 + static_cast<uint64_t>(round));
    for (uint64_t i = 0; i < draws; ++i) {
      const uint64_t d = draw_index + i;
      accumulated.add(static_cast<VertexId>(rng.range(2 * d, a)),
                      static_cast<VertexId>(a + rng.range(2 * d + 1, b)));
    }
    draw_index += draws;
    accumulated = normalize_edges(accumulated);
  }
  std::vector<Edge>& edges = accumulated.mutable_edges();
  if (edges.size() > m) edges.resize(m);
  return accumulated;
}

}  // namespace pargreedy
