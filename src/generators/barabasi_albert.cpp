#include "generators/generators.hpp"
#include "random/hash.hpp"
#include "random/xoshiro.hpp"
#include "support/check.hpp"

namespace pargreedy {

EdgeList barabasi_albert(uint64_t n, uint64_t k, uint64_t seed) {
  PG_CHECK_MSG(k >= 1, "attachment count must be >= 1");
  PG_CHECK_MSG(n > k, "need more vertices than attachments");
  EdgeList edges(n);
  Xoshiro256 rng(mix64(seed) ^ 0x42410000ULL);

  // Standard linear-time preferential attachment: `targets` holds every
  // edge endpoint seen so far, so sampling uniformly from it is sampling
  // proportionally to degree. Seed with a (k+1)-clique.
  std::vector<VertexId> targets;
  targets.reserve(2 * n * k);
  for (uint64_t u = 0; u <= k; ++u) {
    for (uint64_t v = u + 1; v <= k; ++v) {
      edges.add(static_cast<VertexId>(u), static_cast<VertexId>(v));
      targets.push_back(static_cast<VertexId>(u));
      targets.push_back(static_cast<VertexId>(v));
    }
  }
  for (uint64_t v = k + 1; v < n; ++v) {
    // Draw k distinct targets by rejection (k is small).
    std::vector<VertexId> chosen;
    chosen.reserve(k);
    int guard = 0;
    while (chosen.size() < k && guard < 1000) {
      const VertexId t = targets[rng.range(targets.size())];
      bool dup = false;
      for (VertexId c : chosen) dup = dup || (c == t);
      if (!dup) chosen.push_back(t);
      ++guard;
    }
    for (VertexId t : chosen) {
      edges.add(static_cast<VertexId>(v), t);
      targets.push_back(static_cast<VertexId>(v));
      targets.push_back(t);
    }
  }
  return edges;
}

}  // namespace pargreedy
