#include "generators/generators.hpp"
#include "support/check.hpp"

namespace pargreedy {

EdgeList path_graph(uint64_t n) {
  EdgeList edges(n);
  edges.reserve(n > 0 ? n - 1 : 0);
  for (uint64_t v = 1; v < n; ++v)
    edges.add(static_cast<VertexId>(v - 1), static_cast<VertexId>(v));
  return edges;
}

EdgeList cycle_graph(uint64_t n) {
  PG_CHECK_MSG(n == 0 || n >= 3, "cycle needs at least 3 vertices");
  EdgeList edges = path_graph(n);
  if (n >= 3) edges.add(static_cast<VertexId>(n - 1), 0);
  return edges;
}

EdgeList grid_graph(uint64_t rows, uint64_t cols) {
  EdgeList edges(rows * cols);
  auto id = [cols](uint64_t r, uint64_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (uint64_t r = 0; r < rows; ++r) {
    for (uint64_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.add(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.add(id(r, c), id(r + 1, c));
    }
  }
  return edges;
}

EdgeList star_graph(uint64_t n) {
  EdgeList edges(n);
  for (uint64_t v = 1; v < n; ++v) edges.add(0, static_cast<VertexId>(v));
  return edges;
}

EdgeList complete_graph(uint64_t n) {
  EdgeList edges(n);
  edges.reserve(n * (n - 1) / 2);
  for (uint64_t u = 0; u < n; ++u)
    for (uint64_t v = u + 1; v < n; ++v)
      edges.add(static_cast<VertexId>(u), static_cast<VertexId>(v));
  return edges;
}

EdgeList complete_bipartite(uint64_t a, uint64_t b) {
  EdgeList edges(a + b);
  for (uint64_t u = 0; u < a; ++u)
    for (uint64_t v = 0; v < b; ++v)
      edges.add(static_cast<VertexId>(u), static_cast<VertexId>(a + v));
  return edges;
}

EdgeList binary_tree(uint64_t n) {
  EdgeList edges(n);
  for (uint64_t v = 1; v < n; ++v)
    edges.add(static_cast<VertexId>((v - 1) / 2), static_cast<VertexId>(v));
  return edges;
}

}  // namespace pargreedy
