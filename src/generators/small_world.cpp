// Watts–Strogatz small-world generator.
//
// Start from a ring lattice (each vertex joined to its k/2 successors in
// both directions), then rewire each lattice edge's far endpoint to a
// uniform random vertex with probability beta. Rewiring uses counter-based
// hashing keyed by the edge's lattice position, so the output is a pure
// function of (n, k, beta, seed) and independent of the worker count.
#include "generators/generators.hpp"
#include "parallel/parallel_for.hpp"
#include "random/hash.hpp"
#include "support/check.hpp"

namespace pargreedy {

EdgeList watts_strogatz(uint64_t n, uint64_t k, double beta, uint64_t seed) {
  PG_CHECK_MSG(k >= 2 && k % 2 == 0, "k must be even and >= 2");
  PG_CHECK_MSG(n > k, "need more vertices than lattice neighbors");
  PG_CHECK_MSG(beta >= 0.0 && beta <= 1.0, "beta must be a probability");

  const HashRng rng = HashRng(seed).child(0x57530000);
  const uint64_t half_k = k / 2;
  EdgeList edges(n);
  std::vector<Edge>& out = edges.mutable_edges();
  out.resize(n * half_k);
  parallel_for(0, static_cast<int64_t>(n * half_k), [&](int64_t idx) {
    const uint64_t v = static_cast<uint64_t>(idx) / half_k;
    const uint64_t j = static_cast<uint64_t>(idx) % half_k + 1;
    const VertexId u = static_cast<VertexId>(v);
    VertexId w = static_cast<VertexId>((v + j) % n);
    if (rng.unit(2 * static_cast<uint64_t>(idx)) < beta) {
      // Rewire the far endpoint to a uniform non-self target. A collision
      // with an existing edge is deduplicated by normalize_edges later
      // (the standard Watts-Strogatz simplification).
      const uint64_t draw =
          rng.range(2 * static_cast<uint64_t>(idx) + 1, n - 1);
      w = static_cast<VertexId>(draw >= v ? draw + 1 : draw);
    }
    out[static_cast<std::size_t>(idx)] = Edge{u, w};
  });
  return normalize_edges(edges);
}

}  // namespace pargreedy
