// Workload generators.
//
// The paper's evaluation (Section 6) uses exactly two inputs:
//   * a sparse random graph with n = 10^7 vertices and m = 5*10^7 edges, and
//   * an rMat graph [Chakrabarti et al. 2004] with n = 2^24 and m = 5*10^7,
//     which has a power-law degree distribution.
// random_graph_nm and rmat_graph regenerate those (at any size). The
// structured families below exist for tests, examples, and the adversarial-
// ordering experiments (a path graph ordered along the path is the classic
// Omega(n) dependence-length witness).
//
// All generators are deterministic in their (parameters, seed).
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace pargreedy {

/// Sparse uniform random multigraph sampled to ~`m` distinct edges on `n`
/// vertices (the paper's "random graph" workload). The result is simple
/// (no loops/duplicates) with num_edges in [0.98*m, m] for sparse settings.
EdgeList random_graph_nm(uint64_t n, uint64_t m, uint64_t seed);

/// Erdős–Rényi G(n, p) via geometric skip sampling; exact distribution,
/// intended for test-scale n (work is O(n^2 p)).
EdgeList erdos_renyi_gnp(uint64_t n, double p, uint64_t seed);

/// rMat recursive-matrix graph with quadrant probabilities (a, b, c, d);
/// defaults are the PBBS values. `scale` is log2(num_vertices).
EdgeList rmat_graph(unsigned scale, uint64_t m, uint64_t seed,
                    double a = 0.5, double b = 0.1, double c = 0.1,
                    double d = 0.3);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `k` existing vertices chosen proportionally to degree. Power-law tail.
EdgeList barabasi_albert(uint64_t n, uint64_t k, uint64_t seed);

/// Watts–Strogatz small-world graph: a ring lattice where each vertex
/// joins its k nearest neighbors (k even), with each edge rewired to a
/// uniform random endpoint with probability beta. beta = 0 is the pure
/// lattice, beta = 1 is near-uniform-random. Deterministic in the seed.
EdgeList watts_strogatz(uint64_t n, uint64_t k, double beta, uint64_t seed);

/// Random geometric graph: n points uniform in the unit square, edges
/// between pairs at Euclidean distance <= radius. Grid-bucketed
/// construction, O(n + expected m) for sparse settings. The canonical
/// "mesh-like" workload with high clustering and bounded expected degree.
EdgeList random_geometric(uint64_t n, double radius, uint64_t seed);

/// Random bipartite graph: parts {0..a-1} and {a..a+b-1} with ~m distinct
/// cross edges, sampled like random_graph_nm. Deterministic in the seed.
EdgeList random_bipartite(uint64_t a, uint64_t b, uint64_t m, uint64_t seed);

// --- structured families -------------------------------------------------

/// Path 0-1-2-...-(n-1).
EdgeList path_graph(uint64_t n);

/// Cycle on n >= 3 vertices.
EdgeList cycle_graph(uint64_t n);

/// rows x cols 2D grid (4-neighborhood).
EdgeList grid_graph(uint64_t rows, uint64_t cols);

/// Star: vertex 0 joined to 1..n-1.
EdgeList star_graph(uint64_t n);

/// Complete graph K_n (test-scale: m = n(n-1)/2).
EdgeList complete_graph(uint64_t n);

/// Complete bipartite K_{a,b}: parts {0..a-1} and {a..a+b-1}.
EdgeList complete_bipartite(uint64_t a, uint64_t b);

/// Complete binary tree on n vertices (vertex i's children 2i+1, 2i+2).
EdgeList binary_tree(uint64_t n);

}  // namespace pargreedy
