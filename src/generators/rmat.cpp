// rMat generator (Chakrabarti, Zhan, Faloutsos; SIAM SDM 2004) — the
// power-law workload of the paper's evaluation.
//
// Each edge is sampled by recursively descending `scale` levels of the
// adjacency matrix, choosing a quadrant per level with probabilities
// (a, b, c, d). As in the PBBS generator, the probabilities are perturbed
// per level by a deterministic hash-derived noise term so the matrix is not
// exactly self-similar.
#include "generators/generators.hpp"
#include "parallel/parallel_for.hpp"
#include "random/hash.hpp"
#include "support/check.hpp"

namespace pargreedy {

namespace {

Edge sample_rmat_edge(unsigned scale, uint64_t n, double a, double b,
                      double c, const HashRng& rng, uint64_t draw) {
  uint64_t u = 0;
  uint64_t v = 0;
  for (unsigned level = 0; level < scale; ++level) {
    // Deterministic per-(draw, level) noise of +-10% keeps the quadrant
    // probabilities from being exactly self-similar across levels.
    const double noise =
        0.9 + 0.2 * rng.unit(draw * (2 * scale) + 2 * level);
    const double al = a * noise;
    const double bl = b * noise;
    const double cl = c * noise;
    const double r = rng.unit(draw * (2 * scale) + 2 * level + 1);
    uint64_t ubit = 0;
    uint64_t vbit = 0;
    if (r < al) {
      // top-left quadrant: both bits 0
    } else if (r < al + bl) {
      vbit = 1;  // top-right
    } else if (r < al + bl + cl) {
      ubit = 1;  // bottom-left
    } else {
      ubit = 1;
      vbit = 1;  // bottom-right
    }
    u = (u << 1) | ubit;
    v = (v << 1) | vbit;
  }
  PG_DCHECK(u < n && v < n);
  (void)n;
  return Edge{static_cast<VertexId>(u), static_cast<VertexId>(v)};
}

}  // namespace

EdgeList rmat_graph(unsigned scale, uint64_t m, uint64_t seed, double a,
                    double b, double c, double d) {
  PG_CHECK_MSG(scale >= 1 && scale < 32, "scale must be in [1, 31]");
  PG_CHECK_MSG(a >= 0 && b >= 0 && c >= 0 && d >= 0, "negative probability");
  const double sum = a + b + c + d;
  PG_CHECK_MSG(sum > 0.999 && sum < 1.001, "probabilities must sum to 1");
  const uint64_t n = uint64_t{1} << scale;

  // Like random_graph_nm: oversample in rounds, normalize, repeat. Power-law
  // graphs produce many duplicate edges (hub pairs), so use a larger slack.
  EdgeList accumulated(n);
  uint64_t draw_index = 0;
  for (int round = 0; round < 64; ++round) {
    const uint64_t have = accumulated.num_edges();
    if (have >= m) break;
    const uint64_t need = m - have;
    const uint64_t draws = need + need / 3 + 16;
    std::vector<Edge>& out = accumulated.mutable_edges();
    const std::size_t base = out.size();
    out.resize(base + draws);
    const HashRng rng = HashRng(seed).child(0x524d4154 + (uint64_t)round);
    parallel_for(0, static_cast<int64_t>(draws), [&](int64_t i) {
      out[base + static_cast<std::size_t>(i)] = sample_rmat_edge(
          scale, n, a, b, c, rng, draw_index + static_cast<uint64_t>(i));
    });
    draw_index += draws;
    accumulated = normalize_edges(accumulated);
  }
  (void)d;  // d is implied by 1 - a - b - c in the quadrant choice
  std::vector<Edge>& edges = accumulated.mutable_edges();
  if (edges.size() > m) edges.resize(m);  // power-law: tail trim is benign
  return accumulated;
}

}  // namespace pargreedy
