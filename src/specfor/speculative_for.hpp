// speculative_for: the generic deterministic-reservations engine.
//
// Algorithm 3 of the paper, abstracted away from MIS: iterate over the
// items of a sequential greedy loop, keeping a window ("prefix") of the
// `window_size` earliest unresolved iterations, and run reserve/commit
// rounds until the window drains. This is the pattern of the paper's
// companion PPoPP'12 framework [2] ("Internally deterministic parallel
// algorithms can be fast"), which the experiments in Section 6 build on;
// the extensions (spanning forest, coloring — the paper's suggested future
// work) are expressed directly against it.
//
// Step concept:
//   struct Step {
//     // Attempt/announce iteration i. Return false iff the iteration is
//     // already resolved with no effect (drop it without committing).
//     bool reserve(int64_t i);
//     // Try to finish iteration i. Return true iff it resolved; false
//     // requeues it for the next round. Called only if reserve was true.
//     bool commit(int64_t i);
//   };
//
// Contract mirroring the paper's analysis: reserve must only *announce*
// intent via idempotent priority writes (e.g. atomic_write_min of the
// iteration index), and commit must make an iteration's effects visible
// only when it is the highest-priority claimant — then the loop's result
// equals the sequential loop's for any worker count.
#pragma once

#include <cstdint>
#include <vector>

#include "parallel/pack.hpp"
#include "parallel/parallel_for.hpp"
#include "support/check.hpp"

namespace pargreedy {

/// Execution statistics of a speculative_for run.
struct SpecForStats {
  uint64_t rounds = 0;    ///< reserve/commit rounds executed
  uint64_t attempts = 0;  ///< total iteration attempts (>= end - start)
};

/// Runs iterations [start, end) of `step` with a speculative window.
/// window_size <= 1 degenerates to the sequential loop; window_size >=
/// end-start is the fully parallel version.
template <typename Step>
SpecForStats speculative_for(Step& step, int64_t start, int64_t end,
                             int64_t window_size) {
  PG_CHECK_MSG(start <= end, "empty or inverted range");
  const int64_t total = end - start;
  const int64_t window =
      window_size < 1 ? 1 : (window_size > total ? total : window_size);

  SpecForStats stats;
  std::vector<int64_t> active;
  active.reserve(static_cast<std::size_t>(window));
  int64_t next = start + window < end ? start + window : end;
  for (int64_t i = start; i < next; ++i) active.push_back(i);

  std::vector<uint8_t> resolved;
  while (!active.empty()) {
    ++stats.rounds;
    const int64_t sz = static_cast<int64_t>(active.size());
    stats.attempts += static_cast<uint64_t>(sz);
    resolved.assign(active.size(), 0);

    // Reserve phase: announce intent (idempotent priority writes only).
    std::vector<uint8_t> needs_commit(active.size());
    parallel_for(0, sz, [&](int64_t i) {
      needs_commit[static_cast<std::size_t>(i)] =
          step.reserve(active[static_cast<std::size_t>(i)]) ? 1 : 0;
    });

    // Commit phase: winners apply their effects; losers retry.
    parallel_for(0, sz, [&](int64_t i) {
      if (!needs_commit[static_cast<std::size_t>(i)]) {
        resolved[static_cast<std::size_t>(i)] = 1;  // dropped in reserve
        return;
      }
      resolved[static_cast<std::size_t>(i)] =
          step.commit(active[static_cast<std::size_t>(i)]) ? 1 : 0;
    });

    std::vector<int64_t> failed =
        pack(std::span<const int64_t>(active), [&](int64_t i) {
          return resolved[static_cast<std::size_t>(i)] == 0;
        });
    while (static_cast<int64_t>(failed.size()) < window && next < end)
      failed.push_back(next++);
    active.swap(failed);
  }
  return stats;
}

}  // namespace pargreedy
