// Wall-clock timing utilities used by the bench harness and examples.
#pragma once

#include <chrono>

namespace pargreedy {

/// Monotonic wall-clock timer with second-resolution doubles.
///
/// Usage:
///   Timer t;            // starts immediately
///   ... work ...
///   double s = t.elapsed_seconds();
class Timer {
 public:
  using Clock = std::chrono::steady_clock;

  Timer() : start_(Clock::now()) {}

  /// Restart the timer.
  void reset() { start_ = Clock::now(); }

  /// Seconds since construction or the last reset().
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds since construction or the last reset().
  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  Clock::time_point start_;
};

/// Runs `fn` and returns the wall-clock seconds it took.
template <typename Fn>
double time_seconds(Fn&& fn) {
  Timer t;
  fn();
  return t.elapsed_seconds();
}

/// Runs `fn` `reps` times and returns the *minimum* wall-clock seconds of a
/// single run — the standard noise-robust estimator for microbenchmarks.
template <typename Fn>
double time_best_of(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    double s = time_seconds(fn);
    if (s < best) best = s;
  }
  return best;
}

}  // namespace pargreedy
