// Wall-clock timing utilities used by the bench harness, the examples,
// and the observability tracer.
//
// Everything in the repo that timestamps measures against ONE clock:
// `TimingClock` (std::chrono::steady_clock) with a process-wide origin
// fixed on first use (`timing_origin()`). `Timer` (bench phase timing,
// time_best_of) and the obs tracer's span timestamps
// (`micros_since_origin()`) both read it, so a bench phase duration and
// the trace spans recorded inside it are directly comparable — no
// cross-clock skew, no duplicated clock arithmetic.
#pragma once

#include <chrono>
#include <cstdint>

namespace pargreedy {

/// The one monotonic clock every pargreedy timing reads (bench Timer,
/// time_best_of, obs trace spans).
using TimingClock = std::chrono::steady_clock;

/// The fixed process-wide time origin. First call pins it; every later
/// call returns the same point, so timestamps from different threads and
/// subsystems share one zero.
inline TimingClock::time_point timing_origin() noexcept {
  static const TimingClock::time_point origin = TimingClock::now();
  return origin;
}

/// Microseconds elapsed since timing_origin() — the timestamp unit of the
/// Chrome trace_event format the obs tracer emits.
inline uint64_t micros_since_origin() noexcept {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          TimingClock::now() - timing_origin())
          .count());
}

/// Monotonic wall-clock timer with second-resolution doubles.
///
/// Usage:
///   Timer t;            // starts immediately
///   ... work ...
///   double s = t.elapsed_seconds();
class Timer {
 public:
  using Clock = TimingClock;

  Timer() : start_(Clock::now()) {}

  /// Restart the timer.
  void reset() { start_ = Clock::now(); }

  /// Seconds since construction or the last reset().
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds since construction or the last reset().
  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  Clock::time_point start_;
};

/// Runs `fn` and returns the wall-clock seconds it took.
template <typename Fn>
double time_seconds(Fn&& fn) {
  Timer t;
  fn();
  return t.elapsed_seconds();
}

/// Runs `fn` `reps` times and returns the *minimum* wall-clock seconds of a
/// single run — the standard noise-robust estimator for microbenchmarks.
template <typename Fn>
double time_best_of(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    double s = time_seconds(fn);
    if (s < best) best = s;
  }
  return best;
}

}  // namespace pargreedy
