// Minimal fixed-width ASCII table / CSV emitter for the bench harness.
//
// Every figure-reproduction bench prints one series per figure panel using
// this class, so the output is both human-readable and machine-parsable
// (`PARGREEDY_CSV=1` switches to CSV).
#pragma once

#include <string>
#include <vector>

namespace pargreedy {

/// Column-oriented results table.
///
/// Usage:
///   Table t({"prefix/n", "work/n", "rounds", "time_ms"});
///   t.add_row({"0.001", "1.02", "171", "13.9"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders as an aligned ASCII table (or CSV when csv=true; cells
  /// containing commas, quotes, or newlines are RFC-4180 quoted).
  void print(std::ostream& os, bool csv = false) const;

  /// Writes the table as one JSON object
  /// {"name": ..., "headers": [...], "rows": [[...], ...]} with all cells
  /// as strings. The machine-readable bench capture (BENCH_*.json) is
  /// built from these.
  void write_json(std::ostream& os, const std::string& name = "") const;

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits (bench output cells).
std::string fmt_double(double v, int digits = 4);

/// Formats v as a count with thousands separators, e.g. 50,000,000.
std::string fmt_count(int64_t v);

}  // namespace pargreedy
