#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "support/check.hpp"

namespace pargreedy {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PG_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  PG_CHECK_MSG(cells.size() == headers_.size(),
               "row has " << cells.size() << " cells, table has "
                          << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
}

namespace {

/// RFC-4180 CSV cell: quoted iff it contains a comma, quote, or newline.
std::string csv_cell(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

/// JSON string literal with the mandatory escapes.
std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

void Table::print(std::ostream& os, bool csv) const {
  if (csv) {
    for (std::size_t c = 0; c < headers_.size(); ++c)
      os << csv_cell(headers_[c]) << (c + 1 < headers_.size() ? "," : "\n");
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size(); ++c)
        os << csv_cell(row[c]) << (c + 1 < row.size() ? "," : "\n");
    return;
  }
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    rule += "  " + std::string(width[c], '-');
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::write_json(std::ostream& os, const std::string& name) const {
  os << "{\"name\": " << json_string(name) << ", \"headers\": [";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? ", " : "") << json_string(headers_[c]);
  os << "], \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << (r ? ", " : "") << "[";
    for (std::size_t c = 0; c < rows_[r].size(); ++c)
      os << (c ? ", " : "") << json_string(rows_[r][c]);
    os << "]";
  }
  os << "]}";
}

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  return buf;
}

std::string fmt_count(int64_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  const bool neg = !raw.empty() && raw[0] == '-';
  const std::size_t first = neg ? 1 : 0;
  for (std::size_t i = first; i < raw.size(); ++i) {
    if (i > first && (raw.size() - i) % 3 == 0) out += ',';
    out += raw[i];
  }
  return neg ? "-" + out : out;
}

}  // namespace pargreedy
