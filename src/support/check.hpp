// Runtime and debug assertion helpers.
//
// PG_CHECK is always on and throws pargreedy::CheckFailure, making invariant
// violations testable (EXPECT_THROW) instead of aborting the process.
// PG_DCHECK compiles away in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pargreedy {

/// Exception thrown when a PG_CHECK condition fails.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

}  // namespace detail
}  // namespace pargreedy

/// Always-on invariant check. Throws pargreedy::CheckFailure on violation.
#define PG_CHECK(cond)                                                     \
  do {                                                                     \
    if (!(cond))                                                           \
      ::pargreedy::detail::check_failed(#cond, __FILE__, __LINE__, "");    \
  } while (0)

/// Always-on invariant check with a streamed message.
#define PG_CHECK_MSG(cond, msg)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream pg_check_os_;                                     \
      pg_check_os_ << msg;                                                 \
      ::pargreedy::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                        pg_check_os_.str());               \
    }                                                                      \
  } while (0)

/// Debug-only check; disappears when NDEBUG is defined.
#ifdef NDEBUG
#define PG_DCHECK(cond) \
  do {                  \
  } while (0)
#else
#define PG_DCHECK(cond) PG_CHECK(cond)
#endif
