// Clang thread-safety capability annotations, as no-op macros everywhere
// else.
//
// The engines' concurrency story is a *protocol*, not a lock: one writer
// thread drives mutations (apply_batch, transactions, compaction) while any
// number of reader threads may call the const query surface between writer
// calls (and, for the transactional layer, the versioned reads at any
// time). Nothing at runtime enforces this — it is exactly the kind of
// contract that rots silently. Clang's -Wthread-safety analysis can check
// it at compile time if the contract is spelled as a *capability*:
//
//   * each single-writer class owns a zero-cost support::Role object (a
//     capability with no runtime state),
//   * every mutator is annotated PARGREEDY_REQUIRES(writer role), so a
//     call from any code path that does not hold the writer role — e.g. a
//     reader-side helper — is a compile error,
//   * the public single-writer entry points acquire the role for their
//     scope with support::RoleScope (the caller *is* the writer by
//     protocol; the analysis then checks everything reachable below).
//
// The macros expand to clang attributes under any Clang (attributes are
// inert without -Wthread-safety) and to nothing elsewhere, so GCC builds
// are untouched. The PARGREEDY_THREAD_SAFETY CMake option turns the
// analysis on (and promotes it to an error) for the library target; the
// tests/thread_safety/ syntax checks keep a misuse TU failing and the
// annotated headers warning-clean.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define PARGREEDY_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define PARGREEDY_THREAD_ANNOTATION__(x)  // no-op off Clang
#endif

/// Marks a type as a capability (a lock, or a protocol role like "the
/// writer"). The string names the capability kind in diagnostics.
#define PARGREEDY_CAPABILITY(x) \
  PARGREEDY_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability.
#define PARGREEDY_SCOPED_CAPABILITY \
  PARGREEDY_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only while the capability is held.
#define PARGREEDY_GUARDED_BY(x) \
  PARGREEDY_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the capability.
#define PARGREEDY_PT_GUARDED_BY(x) \
  PARGREEDY_THREAD_ANNOTATION__(pt_guarded_by(x))

/// The function may only be called while holding the capabilities
/// exclusively (the writer-only mutators).
#define PARGREEDY_REQUIRES(...) \
  PARGREEDY_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// The function may only be called while holding the capabilities at
/// least shared (reader-side helpers).
#define PARGREEDY_REQUIRES_SHARED(...) \
  PARGREEDY_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability exclusively (held on return; must
/// not be held on entry).
#define PARGREEDY_ACQUIRE(...) \
  PARGREEDY_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// The function acquires the capability shared.
#define PARGREEDY_ACQUIRE_SHARED(...) \
  PARGREEDY_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability (exclusive or shared).
#define PARGREEDY_RELEASE(...) \
  PARGREEDY_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// The function releases a shared hold of the capability.
#define PARGREEDY_RELEASE_SHARED(...) \
  PARGREEDY_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// The function must be called *without* holding the capability
/// (non-reentrant entry points).
#define PARGREEDY_EXCLUDES(...) \
  PARGREEDY_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the named capability (lets the
/// analysis see through accessors like writer_role()).
#define PARGREEDY_RETURN_CAPABILITY(x) \
  PARGREEDY_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: the function body is not analyzed. Use only with a
/// comment explaining why the contract holds anyway.
#define PARGREEDY_NO_THREAD_SAFETY_ANALYSIS \
  PARGREEDY_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace pargreedy::support {

/// A zero-cost capability modelling a protocol role (e.g. "the single
/// writer of this engine"). There is no runtime lock and no runtime state:
/// acquire()/release() compile to nothing. The object exists purely so
/// clang's -Wthread-safety analysis has a capability to track — holding it
/// means "this code path is, by protocol, the one writer".
class PARGREEDY_CAPABILITY("role") Role {
 public:
  /// Takes the role for the calling code path (no-op at runtime).
  void acquire() PARGREEDY_ACQUIRE() {}

  /// Relinquishes the role (no-op at runtime).
  void release() PARGREEDY_RELEASE() {}

  /// Takes the role *shared*: any number of code paths may hold a shared
  /// role concurrently (the reader side of a reader/writer protocol, e.g.
  /// an epoch pin — see txn/epoch.hpp). const because taking a shared
  /// role mutates nothing; the object has no runtime state anyway.
  void acquire_shared() const PARGREEDY_ACQUIRE_SHARED() {}

  /// Relinquishes a shared hold (no-op at runtime).
  void release_shared() const PARGREEDY_RELEASE_SHARED() {}
};

/// RAII holder of a Role for one scope: the way a public single-writer
/// entry point declares "from here down, this thread is the writer".
/// Zero runtime cost — both calls inline to nothing.
class PARGREEDY_SCOPED_CAPABILITY RoleScope {
 public:
  explicit RoleScope(Role& role) PARGREEDY_ACQUIRE(role) : role_(role) {
    role_.acquire();
  }
  ~RoleScope() PARGREEDY_RELEASE() { role_.release(); }

  RoleScope(const RoleScope&) = delete;
  RoleScope& operator=(const RoleScope&) = delete;

 private:
  Role& role_;
};

}  // namespace pargreedy::support
