// Environment-variable configuration helpers.
//
// The bench harness reads its default problem scale from the environment so
// that the standard invocation (`for b in build/bench/*; do $b; done`) works
// on any machine, while `PARGREEDY_SCALE=paper` reproduces the paper's exact
// problem sizes (n=1e7 / m=5e7 random, n=2^24 / m=5e7 rMat).
#pragma once

#include <cstdint>
#include <string>

namespace pargreedy {

/// Returns the value of environment variable `name`, or `fallback` when it
/// is unset or empty.
std::string env_string(const char* name, const std::string& fallback);

/// Returns `name` parsed as int64, or `fallback` when unset/unparsable.
int64_t env_int64(const char* name, int64_t fallback);

/// Returns `name` parsed as double, or `fallback` when unset/unparsable.
double env_double(const char* name, double fallback);

/// Problem-size preset for the bench harness.
struct BenchScale {
  int64_t random_n;  ///< vertices of the "random graph" workload
  int64_t random_m;  ///< edges of the "random graph" workload
  int64_t rmat_n;    ///< vertices of the rMat workload (power of two)
  int64_t rmat_m;    ///< edges of the rMat workload
  std::string name;  ///< preset name for report headers
};

/// Resolves the bench scale from PARGREEDY_SCALE: "ci" (default, seconds per
/// bench on one core), "medium", or "paper" (the SPAA'12 sizes).
BenchScale bench_scale();

}  // namespace pargreedy
