#include "support/env.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <utility>

namespace pargreedy {

namespace {

/// Strict-parse guard: a set value must be consumed entirely (modulo
/// trailing whitespace) or it is rejected with a one-line stderr warning —
/// "PARGREEDY_CSV=1x" silently parsing as 1 hid typos for too long.
bool only_whitespace_after(const char* end) {
  while (*end != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*end))) return false;
    ++end;
  }
  return true;
}

void warn_rejected(const char* name, const char* value) {
  // Once per (variable, value): these getters run on hot-ish paths (every
  // bench emit re-reads PARGREEDY_CSV), and one bad value should produce
  // one line, not a line per read. Locked — env_* are public API and may
  // be called from parallel regions; this path only runs on rejection.
  static std::mutex mutex;
  static std::set<std::pair<std::string, std::string>> warned;
  const std::lock_guard<std::mutex> lock(mutex);
  if (!warned.emplace(name, value).second) return;
  // Operator-facing config warning, not telemetry — exempt from the
  // obs-confined invariant.
  std::fprintf(stderr,  // pargreedy-lint: allow(obs-confined)
               "pargreedy: ignoring %s='%s' (not a clean number); "
               "using the default\n",
               name, value);
}

}  // namespace

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::string(v);
}

int64_t env_int64(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v || errno == ERANGE || !only_whitespace_after(end)) {
    warn_rejected(name, v);
    return fallback;
  }
  return static_cast<int64_t>(parsed);
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  // isfinite rejects overflow (strtod returns +-HUGE_VAL) and the literal
  // "inf"/"nan" spellings, which no bench knob accepts. ERANGE is
  // deliberately NOT checked here: glibc also sets it on harmless
  // underflow to a subnormal or zero, which are fine values to return.
  if (end == v || !std::isfinite(parsed) || !only_whitespace_after(end)) {
    warn_rejected(name, v);
    return fallback;
  }
  return parsed;
}

BenchScale bench_scale() {
  const std::string preset = env_string("PARGREEDY_SCALE", "ci");
  if (preset == "paper") {
    // The exact sizes of Section 6: sparse random graph with 1e7 vertices and
    // 5e7 edges; rMat graph with 2^24 vertices and 5e7 edges.
    return BenchScale{10'000'000, 50'000'000, int64_t(1) << 24, 50'000'000,
                      "paper"};
  }
  if (preset == "medium") {
    return BenchScale{1'000'000, 5'000'000, int64_t(1) << 20, 5'000'000,
                      "medium"};
  }
  // Same strictness as the numeric getters: an unknown preset is a typo
  // ("papr" silently running at ci scale poisons cross-PR comparisons).
  if (preset != "ci")
    // Config warning, not telemetry — exempt from obs-confined.
    std::fprintf(stderr,  // pargreedy-lint: allow(obs-confined)
                 "pargreedy: unknown PARGREEDY_SCALE='%s' "
                 "(expected ci|medium|paper); using 'ci'\n",
                 preset.c_str());
  // "ci": same 1:5 vertex:edge ratio, sized to finish in seconds on one core.
  return BenchScale{200'000, 1'000'000, int64_t(1) << 18, 1'000'000, "ci"};
}

}  // namespace pargreedy
