#include "support/env.hpp"

#include <cstdlib>

namespace pargreedy {

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::string(v);
}

int64_t env_int64(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<int64_t>(parsed);
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v) return fallback;
  return parsed;
}

BenchScale bench_scale() {
  const std::string preset = env_string("PARGREEDY_SCALE", "ci");
  if (preset == "paper") {
    // The exact sizes of Section 6: sparse random graph with 1e7 vertices and
    // 5e7 edges; rMat graph with 2^24 vertices and 5e7 edges.
    return BenchScale{10'000'000, 50'000'000, int64_t(1) << 24, 50'000'000,
                      "paper"};
  }
  if (preset == "medium") {
    return BenchScale{1'000'000, 5'000'000, int64_t(1) << 20, 5'000'000,
                      "medium"};
  }
  // "ci": same 1:5 vertex:edge ratio, sized to finish in seconds on one core.
  return BenchScale{200'000, 1'000'000, int64_t(1) << 18, 1'000'000, "ci"};
}

}  // namespace pargreedy
