#include "extensions/clique.hpp"

#include <algorithm>
#include <atomic>

#include "parallel/pack.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"
#include "support/check.hpp"

namespace pargreedy {

std::vector<VertexId> CliqueResult::members() const {
  return pack_index<VertexId>(
      static_cast<int64_t>(in_clique.size()), [&](int64_t v) {
        return in_clique[static_cast<std::size_t>(v)] != 0;
      });
}

uint64_t CliqueResult::size() const {
  return static_cast<uint64_t>(reduce_add<int64_t>(
      0, static_cast<int64_t>(in_clique.size()), [&](int64_t v) {
        return in_clique[static_cast<std::size_t>(v)] ? 1 : 0;
      }));
}

CliqueResult greedy_clique_sequential(const CsrGraph& g,
                                      const VertexOrder& order) {
  const uint64_t n = g.num_vertices();
  PG_CHECK_MSG(order.size() == n, "ordering size != vertex count");
  CliqueResult result;
  result.in_clique.assign(n, 0);

  // adjacent_accepted[v] counts accepted clique members adjacent to v; a
  // vertex is accepted iff it is adjacent to *all* of them, i.e. iff its
  // counter equals the clique size at its turn.
  std::vector<uint32_t> adjacent_accepted(n, 0);
  uint32_t accepted = 0;
  for (uint64_t i = 0; i < n; ++i) {
    const VertexId v = order.nth(i);
    if (adjacent_accepted[v] != accepted) continue;
    result.in_clique[v] = 1;
    ++accepted;
    for (VertexId w : g.neighbors(v)) ++adjacent_accepted[w];
  }
  result.profile.rounds = n;
  result.profile.work_items = n;
  return result;
}

CliqueResult greedy_clique_prefix(const CsrGraph& g, const VertexOrder& order,
                                  uint64_t prefix_size) {
  const uint64_t n = g.num_vertices();
  PG_CHECK_MSG(order.size() == n, "ordering size != vertex count");
  const uint64_t window =
      prefix_size < 1 ? 1 : (prefix_size > n && n > 0 ? n : prefix_size);
  CliqueResult result;
  result.in_clique.assign(n, 0);
  RunProfile& prof = result.profile;
  if (n == 0) return result;

  // Decision rule for an undecided vertex v (derived from the sequential
  // recurrence; all quantities taken at round start):
  //   * Out  if some accepted member earlier than v is non-adjacent to v
  //          (adj_count[v] < accepted_before(v));
  //   * In   if every accepted member earlier than v is adjacent AND every
  //          still-undecided earlier vertex is adjacent to v — a later
  //          acceptance among them cannot reject v, and a rejection never
  //          could. The window invariant (all earlier undecided vertices
  //          are in the window) bounds that check to the window;
  //   * wait otherwise — some earlier non-adjacent vertex is undecided.
  // Everything is evaluated against round-start state in two barrier-
  // separated phases, so rounds are a pure function of (g, order, window).
  std::vector<std::atomic<uint32_t>> adj_count(n);
  parallel_for(0, static_cast<int64_t>(n), [&](int64_t v) {
    adj_count[static_cast<std::size_t>(v)].store(0,
                                                 std::memory_order_relaxed);
  });
  std::vector<uint32_t> accepted_ranks;  // sorted ranks of clique members
  // stamp[w] = round in which w was last an active window member.
  std::vector<uint64_t> stamp(n, 0);
  // status: 0 undecided, 1 in, 2 out (plain bytes; phases are barriered
  // and every store targets the storing iteration's own vertex).
  std::vector<uint8_t>& status = result.in_clique;

  std::vector<VertexId> active;  // rank-sorted (failures keep order,
  active.reserve(window);        // refills append in rank order)
  uint64_t next = window < n ? window : n;
  for (uint64_t i = 0; i < next; ++i) active.push_back(order.nth(i));

  uint64_t round = 0;
  std::vector<VertexId> joined;
  while (!active.empty()) {
    ++round;
    const int64_t sz = static_cast<int64_t>(active.size());

    // Mark window membership for the O(deg) earlier-actives-adjacency test.
    parallel_for(0, sz, [&](int64_t i) {
      stamp[active[static_cast<std::size_t>(i)]] = round;
    });

    // Phase A: decide from round-start state.
    parallel_for(0, sz, [&](int64_t i) {
      const VertexId v = active[static_cast<std::size_t>(i)];
      const uint32_t rv = order.rank(v);
      const uint32_t acc_before = static_cast<uint32_t>(
          std::upper_bound(accepted_ranks.begin(), accepted_ranks.end(), rv) -
          accepted_ranks.begin());
      const uint32_t adj = adj_count[v].load(std::memory_order_relaxed);
      if (adj < acc_before) {
        status[v] = 2;  // an earlier accepted member is non-adjacent
        return;
      }
      // All earlier accepted are adjacent. v may join only if every
      // earlier *active* vertex is adjacent too; count v's neighbors that
      // are earlier window members and compare with i (the number of
      // earlier actives — active is rank-sorted).
      uint64_t adjacent_earlier_active = 0;
      for (VertexId w : g.neighbors(v)) {
        if (stamp[w] == round && order.rank(w) < rv)
          ++adjacent_earlier_active;
      }
      if (adjacent_earlier_active == static_cast<uint64_t>(i))
        status[v] = 1;
      // else: wait (some earlier non-adjacent vertex is still undecided).
    });

    // Phase B: apply this round's acceptances.
    joined.clear();
    for (int64_t i = 0; i < sz; ++i) {
      const VertexId v = active[static_cast<std::size_t>(i)];
      if (status[v] == 1) joined.push_back(v);
    }
    const int64_t num_joined = static_cast<int64_t>(joined.size());
    parallel_for(0, num_joined, [&](int64_t j) {
      const VertexId c = joined[static_cast<std::size_t>(j)];
      const uint32_t rc = order.rank(c);
      for (VertexId w : g.neighbors(c)) {
        if (order.rank(w) > rc)
          adj_count[w].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (VertexId c : joined) accepted_ranks.push_back(order.rank(c));
    std::sort(accepted_ranks.begin(), accepted_ranks.end());

    std::vector<VertexId> failed =
        pack(std::span<const VertexId>(active), [&](int64_t i) {
          return status[active[static_cast<std::size_t>(i)]] == 0;
        });
    prof.work_items += static_cast<uint64_t>(sz);
    while (failed.size() < window && next < n)
      failed.push_back(order.nth(next++));
    active.swap(failed);
  }
  prof.rounds = round;
  prof.steps = round;

  // Collapse the tri-state array to 0/1 membership.
  parallel_for(0, static_cast<int64_t>(n), [&](int64_t v) {
    status[static_cast<std::size_t>(v)] =
        status[static_cast<std::size_t>(v)] == 1 ? 1 : 0;
  });
  return result;
}

bool is_maximal_clique(const CsrGraph& g,
                       std::span<const uint8_t> in_clique) {
  PG_CHECK(in_clique.size() == g.num_vertices());
  const uint64_t n = g.num_vertices();
  uint64_t size = 0;
  for (VertexId v = 0; v < n; ++v) size += in_clique[v] ? 1 : 0;
  // Every vertex must be adjacent to either all members (if inside, all
  // but itself) or miss at least one (if outside -> not extendable).
  const int64_t bad = count_if(0, static_cast<int64_t>(n), [&](int64_t vi) {
    const VertexId v = static_cast<VertexId>(vi);
    uint64_t adjacent_members = 0;
    for (VertexId w : g.neighbors(v)) adjacent_members += in_clique[w] ? 1 : 0;
    if (in_clique[v]) return adjacent_members != size - 1;  // pairwise adj
    return adjacent_members == size;  // outside vertex extends the clique
  });
  return bad == 0;
}

}  // namespace pargreedy
