// Greedy maximal clique — the lexicographically-first maximal clique of
// Cook's taxonomy (the paper's footnote 1: finding it is P-complete for
// arbitrary orders, and it equals the lexicographically-first MIS of the
// complement graph).
//
// The sequential greedy loop accepts vertex v, in order pi, iff v is
// adjacent to every previously accepted vertex. Its dependence structure
// is the mirror image of MIS — a vertex is blocked by earlier *non*-
// neighbors rather than neighbors — which makes it a stress test for the
// prefix approach: the complement's priority DAG is dense exactly where
// the graph is sparse. greedy_clique_prefix parallelizes the loop with the
// same windowed reserve/commit discipline and returns the identical clique
// for any window and worker count, without ever materializing the
// (quadratic) complement graph.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/analysis/profiles.hpp"
#include "core/mis/vertex_order.hpp"
#include "graph/csr_graph.hpp"

namespace pargreedy {

/// Result of a greedy maximal-clique computation.
struct CliqueResult {
  /// in_clique[v] == 1 iff v is in the clique.
  std::vector<uint8_t> in_clique;
  RunProfile profile;

  /// The clique as a sorted vertex list.
  [[nodiscard]] std::vector<VertexId> members() const;
  /// Number of clique vertices.
  [[nodiscard]] uint64_t size() const;
};

/// Sequential greedy (lexicographically-first) maximal clique for pi.
/// O(n + sum of accepted vertices' degrees) time.
CliqueResult greedy_clique_sequential(const CsrGraph& g,
                                      const VertexOrder& order);

/// Prefix-parallel greedy maximal clique; identical output to the
/// sequential algorithm for any window and worker count. Work is
/// O(n + m + rounds * window); rounds shrink as the window grows.
CliqueResult greedy_clique_prefix(const CsrGraph& g, const VertexOrder& order,
                                  uint64_t prefix_size);

/// True iff the flagged vertices are pairwise adjacent and no outside
/// vertex is adjacent to all of them (maximality).
bool is_maximal_clique(const CsrGraph& g, std::span<const uint8_t> in_clique);

}  // namespace pargreedy
