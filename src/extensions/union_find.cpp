#include "extensions/union_find.hpp"

#include "parallel/parallel_for.hpp"
#include "support/check.hpp"

namespace pargreedy {

UnionFind::UnionFind(uint64_t n) : parent_(n) {
  parallel_for(0, static_cast<int64_t>(n), [&](int64_t v) {
    parent_[static_cast<std::size_t>(v)].store(static_cast<VertexId>(v),
                                               std::memory_order_relaxed);
  });
}

VertexId UnionFind::find(VertexId v) {
  PG_DCHECK(v < parent_.size());
  while (true) {
    const VertexId p = parent_[v].load(std::memory_order_relaxed);
    if (p == v) return v;
    const VertexId gp = parent_[p].load(std::memory_order_relaxed);
    if (p == gp) return p;
    // Path halving: point v at its grandparent. A racy lost update just
    // leaves an equally valid ancestor pointer.
    parent_[v].store(gp, std::memory_order_relaxed);
    v = gp;
  }
}

void UnionFind::link(VertexId root_child, VertexId root_parent) {
  PG_DCHECK(root_child != root_parent);
  parent_[root_child].store(root_parent, std::memory_order_release);
}

bool UnionFind::unite(VertexId a, VertexId b) {
  const VertexId ra = find(a);
  const VertexId rb = find(b);
  if (ra == rb) return false;
  link(rb, ra);
  return true;
}

bool UnionFind::same_set(VertexId a, VertexId b) {
  return find(a) == find(b);
}

uint64_t UnionFind::count_sets() {
  uint64_t count = 0;
  for (VertexId v = 0; v < parent_.size(); ++v)
    if (find(v) == v) ++count;
  return count;
}

}  // namespace pargreedy
