// Concurrent-read union-find with path halving.
//
// Substrate for the spanning-forest extension. The usage discipline
// matches speculative_for's phases: find() may run concurrently with other
// find()s (path halving races are benign — every write points a node at an
// ancestor), while link() calls in a commit phase must target disjoint
// root pairs (which the reservation protocol guarantees).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace pargreedy {

class UnionFind {
 public:
  explicit UnionFind(uint64_t n);

  /// Root of v's set, with path halving.
  VertexId find(VertexId v);

  /// Makes `root_child`'s set part of `root_parent`'s. Both arguments must
  /// currently be roots, and concurrent link calls must touch disjoint
  /// root pairs.
  void link(VertexId root_child, VertexId root_parent);

  /// Sequential convenience: unites the sets of a and b; returns true iff
  /// they were previously different.
  bool unite(VertexId a, VertexId b);

  /// True iff a and b are currently in the same set.
  bool same_set(VertexId a, VertexId b);

  /// Number of elements.
  [[nodiscard]] uint64_t size() const { return parent_.size(); }

  /// Number of distinct sets (linear scan; for tests and verification).
  uint64_t count_sets();

 private:
  std::vector<std::atomic<VertexId>> parent_;
};

}  // namespace pargreedy
