#include "extensions/coloring.hpp"

#include <atomic>

#include "parallel/reduce.hpp"
#include "specfor/speculative_for.hpp"
#include "support/check.hpp"

namespace pargreedy {

namespace {

/// Smallest color not used by v's earlier neighbors. Requires all earlier
/// neighbors colored. O(deg(v)^2 / word) via a small mark vector.
uint32_t first_fit_color(const CsrGraph& g, const VertexOrder& order,
                         const std::vector<uint32_t>& color, VertexId v,
                         std::vector<uint8_t>& scratch) {
  const uint64_t deg = g.degree(v);
  scratch.assign(deg + 1, 0);
  for (VertexId w : g.neighbors(v)) {
    if (!order.earlier(w, v)) continue;
    const uint32_t c =
        std::atomic_ref<const uint32_t>(color[w]).load(
            std::memory_order_acquire);
    PG_DCHECK(c != kUncolored);
    if (c <= deg) scratch[c] = 1;
  }
  for (uint32_t c = 0; c <= deg; ++c)
    if (!scratch[c]) return c;
  return static_cast<uint32_t>(deg);  // unreachable: deg+1 slots, deg nbrs
}

/// speculative_for step: a vertex commits once all earlier neighbors are
/// colored; vertices committing in the same round are never dependent, so
/// the first-fit computation reads stable colors.
struct ColorStep {
  const CsrGraph& g;
  const VertexOrder& order;
  std::vector<uint32_t>& color;

  bool reserve(int64_t) { return true; }

  bool commit(int64_t i) {
    const VertexId v = order.nth(static_cast<uint64_t>(i));
    for (VertexId w : g.neighbors(v)) {
      if (!order.earlier(w, v)) continue;
      if (std::atomic_ref<const uint32_t>(color[w]).load(
              std::memory_order_acquire) == kUncolored)
        return false;  // an earlier neighbor is pending: retry
    }
    thread_local std::vector<uint8_t> scratch;
    const uint32_t c = first_fit_color(g, order, color, v, scratch);
    std::atomic_ref<uint32_t>(color[v]).store(c, std::memory_order_release);
    return true;
  }
};

uint32_t count_colors(const std::vector<uint32_t>& color) {
  uint32_t max_color = 0;
  bool any = false;
  for (uint32_t c : color) {
    if (c == kUncolored) continue;
    any = true;
    if (c > max_color) max_color = c;
  }
  return any ? max_color + 1 : 0;
}

}  // namespace

ColoringResult greedy_coloring_sequential(const CsrGraph& g,
                                          const VertexOrder& order) {
  PG_CHECK_MSG(order.size() == g.num_vertices(),
               "ordering size != vertex count");
  ColoringResult result;
  result.color.assign(g.num_vertices(), kUncolored);
  std::vector<uint8_t> scratch;
  for (uint64_t i = 0; i < g.num_vertices(); ++i) {
    const VertexId v = order.nth(i);
    result.color[v] = first_fit_color(g, order, result.color, v, scratch);
  }
  result.num_colors = count_colors(result.color);
  result.profile.rounds = g.num_vertices();
  result.profile.work_items = g.num_vertices();
  return result;
}

ColoringResult greedy_coloring_prefix(const CsrGraph& g,
                                      const VertexOrder& order,
                                      uint64_t prefix_size) {
  PG_CHECK_MSG(order.size() == g.num_vertices(),
               "ordering size != vertex count");
  ColoringResult result;
  result.color.assign(g.num_vertices(), kUncolored);
  ColorStep step{g, order, result.color};
  const SpecForStats stats =
      speculative_for(step, 0, static_cast<int64_t>(g.num_vertices()),
                      static_cast<int64_t>(prefix_size));
  result.num_colors = count_colors(result.color);
  result.profile.rounds = stats.rounds;
  result.profile.steps = stats.rounds;
  result.profile.work_items = stats.attempts;
  return result;
}

bool is_proper_coloring(const CsrGraph& g, std::span<const uint32_t> color) {
  PG_CHECK(color.size() == g.num_vertices());
  const int64_t n = static_cast<int64_t>(g.num_vertices());
  const int64_t bad = count_if(0, n, [&](int64_t vi) {
    const VertexId v = static_cast<VertexId>(vi);
    if (color[v] == kUncolored) return true;
    for (VertexId w : g.neighbors(v))
      if (color[w] == color[v]) return true;
    return false;
  });
  return bad == 0;
}

}  // namespace pargreedy
