#include "extensions/spanning_forest.hpp"

#include <atomic>

#include "extensions/union_find.hpp"
#include "graph/graph_ops.hpp"
#include "parallel/atomics.hpp"
#include "parallel/pack.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"
#include "specfor/speculative_for.hpp"
#include "support/check.hpp"

namespace pargreedy {

std::vector<EdgeId> ForestResult::members() const {
  return pack_index<EdgeId>(static_cast<int64_t>(in_forest.size()),
                            [&](int64_t e) {
                              return in_forest[static_cast<std::size_t>(e)] != 0;
                            });
}

uint64_t ForestResult::size() const {
  return static_cast<uint64_t>(reduce_add<int64_t>(
      0, static_cast<int64_t>(in_forest.size()), [&](int64_t e) {
        return in_forest[static_cast<std::size_t>(e)] ? 1 : 0;
      }));
}

ForestResult spanning_forest_sequential(const CsrGraph& g,
                                        const EdgeOrder& order) {
  PG_CHECK_MSG(order.size() == g.num_edges(), "ordering size != edge count");
  ForestResult result;
  result.in_forest.assign(g.num_edges(), 0);
  UnionFind uf(g.num_vertices());
  for (uint64_t i = 0; i < g.num_edges(); ++i) {
    const EdgeId e = order.nth(i);
    const Edge ed = g.edge(e);
    if (uf.unite(ed.u, ed.v)) result.in_forest[e] = 1;
  }
  result.profile.rounds = g.num_edges();
  result.profile.work_items = g.num_edges();
  return result;
}

namespace {

constexpr uint32_t kFreeSlot = 0xffffffffu;

/// The speculative_for step for greedy spanning forest.
///
/// reserve: if the endpoints' components already coincide, the edge is a
/// non-forest edge (done). Otherwise bid this edge's rank on both roots.
/// commit: winning EITHER root is enough to keep the edge — owning a root
/// means no earlier unresolved edge touches that component (any such edge
/// would have bid a lower rank on it), so the sequential loop would reach
/// this edge with the two components still separate. The owned root is
/// linked under the other side; the far root may be linked concurrently by
/// its own winner, which only deepens the union-find chain, never breaks
/// it. Requiring *both* roots (the naive protocol) serializes on hub
/// components — every edge attaching to a giant component would commit one
/// per round — and degrades to quadratic work; winning one side restores
/// the expected O(log) rounds of parallel component merging.
struct ForestStep {
  const CsrGraph& g;
  const EdgeOrder& order;
  UnionFind& uf;
  std::vector<std::atomic<uint32_t>>& slot;
  std::vector<VertexId>& root_u;  // roots stashed by reserve for commit
  std::vector<VertexId>& root_v;
  std::vector<uint8_t>& in_forest;

  bool reserve(int64_t i) {
    const EdgeId e = order.nth(static_cast<uint64_t>(i));
    const Edge ed = g.edge(e);
    const VertexId ru = uf.find(ed.u);
    const VertexId rv = uf.find(ed.v);
    if (ru == rv) return false;  // already connected: resolved, not kept
    root_u[e] = ru;
    root_v[e] = rv;
    const uint32_t r = order.rank(e);
    atomic_write_min(slot[ru], r);
    atomic_write_min(slot[rv], r);
    return true;
  }

  bool commit(int64_t i) {
    const EdgeId e = order.nth(static_cast<uint64_t>(i));
    const uint32_t r = order.rank(e);
    const VertexId ru = root_u[e];
    const VertexId rv = root_v[e];
    const bool won_u = slot[ru].load(std::memory_order_relaxed) == r;
    const bool won_v = slot[rv].load(std::memory_order_relaxed) == r;
    if (won_u) {
      uf.link(ru, rv);  // we own ru exclusively; rv may gain other children
      in_forest[e] = 1;
      slot[ru].store(kFreeSlot, std::memory_order_relaxed);
      if (won_v) slot[rv].store(kFreeSlot, std::memory_order_relaxed);
      return true;
    }
    if (won_v) {
      uf.link(rv, ru);
      in_forest[e] = 1;
      slot[rv].store(kFreeSlot, std::memory_order_relaxed);
      return true;
    }
    return false;  // lost both bids: retry next round
  }
};

}  // namespace

ForestResult spanning_forest_prefix(const CsrGraph& g, const EdgeOrder& order,
                                    uint64_t prefix_size) {
  PG_CHECK_MSG(order.size() == g.num_edges(), "ordering size != edge count");
  ForestResult result;
  result.in_forest.assign(g.num_edges(), 0);
  UnionFind uf(g.num_vertices());
  std::vector<std::atomic<uint32_t>> slot(g.num_vertices());
  parallel_for(0, static_cast<int64_t>(g.num_vertices()), [&](int64_t v) {
    slot[static_cast<std::size_t>(v)].store(kFreeSlot,
                                            std::memory_order_relaxed);
  });
  std::vector<VertexId> root_u(g.num_edges());
  std::vector<VertexId> root_v(g.num_edges());

  ForestStep step{g, order, uf, slot, root_u, root_v, result.in_forest};
  const SpecForStats stats =
      speculative_for(step, 0, static_cast<int64_t>(g.num_edges()),
                      static_cast<int64_t>(prefix_size));
  result.profile.rounds = stats.rounds;
  result.profile.steps = stats.rounds;
  result.profile.work_items = stats.attempts;
  return result;
}

bool is_spanning_forest(const CsrGraph& g,
                        std::span<const uint8_t> in_forest) {
  PG_CHECK(in_forest.size() == g.num_edges());
  // Acyclic: adding every flagged edge to a union-find must always unite
  // two distinct sets.
  UnionFind uf(g.num_vertices());
  uint64_t forest_edges = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!in_forest[e]) continue;
    ++forest_edges;
    if (!uf.unite(g.edge(e).u, g.edge(e).v)) return false;  // cycle
  }
  // Spanning: exactly n - #components edges.
  const uint64_t components = count_components(g);
  return forest_edges == g.num_vertices() - components;
}

}  // namespace pargreedy
