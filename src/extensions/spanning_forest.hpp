// Greedy spanning forest — the paper's suggested future-work application
// ("we believe that our approach can be applied to sequential greedy
// algorithms for other problems (e.g. spanning forest)", Section 7).
//
// The sequential greedy algorithm processes edges in order pi and keeps an
// edge iff its endpoints are in different components (Kruskal without
// weights). The prefix-parallel version runs the same loop through
// speculative_for with endpoint-component reservations and returns the
// *identical* forest for any worker count.
#pragma once

#include <cstdint>
#include <vector>

#include "core/analysis/profiles.hpp"
#include "core/matching/edge_order.hpp"
#include "graph/csr_graph.hpp"

namespace pargreedy {

/// Result of a spanning-forest computation.
struct ForestResult {
  /// in_forest[e] == 1 iff edge e is a forest edge.
  std::vector<uint8_t> in_forest;
  RunProfile profile;

  [[nodiscard]] std::vector<EdgeId> members() const;
  [[nodiscard]] uint64_t size() const;
};

/// Sequential greedy (lexicographically-first) spanning forest.
ForestResult spanning_forest_sequential(const CsrGraph& g,
                                        const EdgeOrder& order);

/// Prefix-parallel version; identical output to the sequential algorithm.
ForestResult spanning_forest_prefix(const CsrGraph& g, const EdgeOrder& order,
                                    uint64_t prefix_size);

/// True iff the flagged edges are acyclic and connect every connected
/// component of g (|F| = n - #components and no cycle).
bool is_spanning_forest(const CsrGraph& g, std::span<const uint8_t> in_forest);

}  // namespace pargreedy
