// Greedy graph coloring — a second "other greedy loop" application of the
// prefix approach (Section 7's direction), and the basis of the
// graph_coloring example.
//
// The sequential greedy coloring assigns each vertex, in order pi, the
// smallest color unused by its earlier neighbors. A vertex's color depends
// only on its earlier neighbors' colors — the same dependence structure as
// MIS — so the prefix window parallelizes it with the identical result.
// Uses at most Delta + 1 colors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/analysis/profiles.hpp"
#include "core/mis/vertex_order.hpp"
#include "graph/csr_graph.hpp"

namespace pargreedy {

/// Sentinel for "not yet colored".
inline constexpr uint32_t kUncolored = 0xffffffffu;

/// Result of a greedy coloring.
struct ColoringResult {
  std::vector<uint32_t> color;  ///< color[v] in [0, num_colors)
  uint32_t num_colors = 0;
  RunProfile profile;
};

/// Sequential greedy (first-fit) coloring in order pi.
ColoringResult greedy_coloring_sequential(const CsrGraph& g,
                                          const VertexOrder& order);

/// Prefix-parallel first-fit coloring; identical output to the sequential
/// algorithm for any worker count.
ColoringResult greedy_coloring_prefix(const CsrGraph& g,
                                      const VertexOrder& order,
                                      uint64_t prefix_size);

/// True iff no edge is monochromatic and every vertex has a color.
bool is_proper_coloring(const CsrGraph& g, std::span<const uint32_t> color);

}  // namespace pargreedy
