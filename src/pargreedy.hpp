// ParGreedy — umbrella header for the public API.
//
// Deterministic parallel greedy maximal independent set and maximal
// matching, after Blelloch, Fineman & Shun, "Greedy Sequential Maximal
// Independent Set and Matching are Parallel on Average" (SPAA 2012).
//
// Typical usage:
//
//   #include "pargreedy.hpp"
//   using namespace pargreedy;
//
//   CsrGraph g = CsrGraph::from_edges(random_graph_nm(n, m, seed));
//   VertexOrder pi = VertexOrder::random(g.num_vertices(), seed);
//   MisResult mis = mis_prefix(g, pi, /*prefix_size=*/g.num_vertices()/50);
//   // mis.in_set equals mis_sequential(g, pi).in_set, at any thread count.
#pragma once

#include "core/analysis/priority_dag.hpp"
#include "core/analysis/profiles.hpp"
#include "core/matching/edge_order.hpp"
#include "core/matching/matching.hpp"
#include "core/matching/verify.hpp"
#include "core/mis/mis.hpp"
#include "core/mis/verify.hpp"
#include "core/mis/vertex_order.hpp"
#include "core/priority/priority_source.hpp"
#include "dynamic/batch_stats.hpp"
#include "dynamic/dynamic_matching.hpp"
#include "dynamic/dynamic_mis.hpp"
#include "dynamic/engine_api.hpp"
#include "dynamic/overlay_graph.hpp"
#include "dynamic/repropagate.hpp"
#include "dynamic/undo_log.hpp"
#include "dynamic/update_batch.hpp"
#include "extensions/clique.hpp"
#include "extensions/coloring.hpp"
#include "extensions/spanning_forest.hpp"
#include "extensions/union_find.hpp"
#include "generators/generators.hpp"
#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"
#include "graph/graph_ops.hpp"
#include "graph/io.hpp"
#include "graph/types.hpp"
#include "graph/validate.hpp"
#include "obs/obs.hpp"
#include "parallel/arch.hpp"
#include "random/hash.hpp"
#include "random/permutation.hpp"
#include "shard/batch_router.hpp"
#include "shard/ghost_policy.hpp"
#include "shard/partitioner.hpp"
#include "shard/sharded_engine.hpp"
#include "shard/sharded_version.hpp"
#include "specfor/speculative_for.hpp"
#include "support/env.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"
#include "txn/engine_snapshot.hpp"
#include "txn/engine_traits.hpp"
#include "txn/epoch.hpp"
#include "txn/published_state.hpp"
#include "txn/read_view.hpp"
#include "txn/transaction.hpp"
#include "txn/version_ring.hpp"
