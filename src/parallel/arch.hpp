// Worker-count control for the OpenMP backend.
//
// All pargreedy algorithms are deterministic in their inputs regardless of
// the worker count; these helpers exist for the bench harness (thread-sweep
// figures) and for tests that re-run algorithms at several widths.
//
// The serial (non-OpenMP) backend tracks the requested worker count in a
// process-wide variable so that num_workers()/set_num_workers()/
// ScopedNumWorkers observe the same get/set/restore contract as the OpenMP
// backend. Block decompositions (parallel_blocks, pack, scan, reduce) key
// off num_workers(), so the serial backend produces the identical block
// structure — and therefore identical results — as an OpenMP build pinned
// to the same width; the blocks simply run one after another.
//
// Concurrency contract (machine-checked): the worker count is process-wide
// mutable state with no synchronization, so reconfiguring it concurrently
// with running parallel regions is a race. Mutation is modelled by the
// `detail::worker_config_role` capability: set_num_workers() requires it
// and ScopedNumWorkers holds it for its scope, so under -Wthread-safety a
// width change from an unannotated (potentially concurrent) code path is a
// compile error. Reads (num_workers and friends) stay unannotated — the
// backends' getters are safe to call from inside regions.
#pragma once

#if defined(_OPENMP)
#include <omp.h>
#endif

#include "support/thread_annotations.hpp"

namespace pargreedy {

namespace detail {
/// Capability owning the right to reconfigure the process-wide worker
/// count (see file comment). Zero-cost: no runtime state.
inline support::Role worker_config_role;
}  // namespace detail

#if !defined(_OPENMP)
namespace detail {
/// Requested worker count for the serial backend (always >= 1).
inline int& serial_worker_count() {
  static int count = 1;
  return count;
}
}  // namespace detail
#endif

/// Maximum number of workers parallel regions may use.
inline int num_workers() {
#if defined(_OPENMP)
  return omp_get_max_threads();
#else
  return detail::serial_worker_count();
#endif
}

/// Sets the number of workers for subsequent parallel regions. Non-positive
/// requests clamp to 1 on both backends. Writer-side: requires the worker
/// configuration role (use ScopedNumWorkers, which holds it).
inline void set_num_workers(int n)
    PARGREEDY_REQUIRES(detail::worker_config_role) {
#if defined(_OPENMP)
  omp_set_num_threads(n > 0 ? n : 1);
#else
  detail::serial_worker_count() = n > 0 ? n : 1;
#endif
}

/// True when called from inside a parallel region.
inline bool in_parallel() {
#if defined(_OPENMP)
  return omp_in_parallel() != 0;
#else
  return false;
#endif
}

/// Id of the calling worker in [0, num_workers()).
inline int worker_id() {
#if defined(_OPENMP)
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// RAII guard that pins the worker count for a scope and restores it
/// after. Holds `detail::worker_config_role` for the scope, making it the
/// sanctioned way to reconfigure the width (constructor/destructor bodies
/// are outside the analysis, which is what lets them call
/// set_num_workers themselves).
class PARGREEDY_SCOPED_CAPABILITY ScopedNumWorkers {
 public:
  explicit ScopedNumWorkers(int n)
      PARGREEDY_ACQUIRE(detail::worker_config_role)
      : saved_(num_workers()) {
    detail::worker_config_role.acquire();
    set_num_workers(n);
  }
  ~ScopedNumWorkers() PARGREEDY_RELEASE() {
    set_num_workers(saved_);
    detail::worker_config_role.release();
  }
  ScopedNumWorkers(const ScopedNumWorkers&) = delete;
  ScopedNumWorkers& operator=(const ScopedNumWorkers&) = delete;

 private:
  int saved_;
};

}  // namespace pargreedy
