// Worker-count control for the OpenMP backend.
//
// All pargreedy algorithms are deterministic in their inputs regardless of
// the worker count; these helpers exist for the bench harness (thread-sweep
// figures) and for tests that re-run algorithms at several widths.
//
// The serial (non-OpenMP) backend tracks the requested worker count in a
// process-wide variable so that num_workers()/set_num_workers()/
// ScopedNumWorkers observe the same get/set/restore contract as the OpenMP
// backend. Block decompositions (parallel_blocks, pack, scan, reduce) key
// off num_workers(), so the serial backend produces the identical block
// structure — and therefore identical results — as an OpenMP build pinned
// to the same width; the blocks simply run one after another.
#pragma once

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace pargreedy {

#if !defined(_OPENMP)
namespace detail {
/// Requested worker count for the serial backend (always >= 1).
inline int& serial_worker_count() {
  static int count = 1;
  return count;
}
}  // namespace detail
#endif

/// Maximum number of workers parallel regions may use.
inline int num_workers() {
#if defined(_OPENMP)
  return omp_get_max_threads();
#else
  return detail::serial_worker_count();
#endif
}

/// Sets the number of workers for subsequent parallel regions. Non-positive
/// requests clamp to 1 on both backends.
inline void set_num_workers(int n) {
#if defined(_OPENMP)
  omp_set_num_threads(n > 0 ? n : 1);
#else
  detail::serial_worker_count() = n > 0 ? n : 1;
#endif
}

/// True when called from inside a parallel region.
inline bool in_parallel() {
#if defined(_OPENMP)
  return omp_in_parallel() != 0;
#else
  return false;
#endif
}

/// Id of the calling worker in [0, num_workers()).
inline int worker_id() {
#if defined(_OPENMP)
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// RAII guard that pins the worker count for a scope and restores it after.
class ScopedNumWorkers {
 public:
  explicit ScopedNumWorkers(int n) : saved_(num_workers()) {
    set_num_workers(n);
  }
  ~ScopedNumWorkers() { set_num_workers(saved_); }
  ScopedNumWorkers(const ScopedNumWorkers&) = delete;
  ScopedNumWorkers& operator=(const ScopedNumWorkers&) = delete;

 private:
  int saved_;
};

}  // namespace pargreedy
