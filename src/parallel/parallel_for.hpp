// parallel_for: the fork-join loop primitive every algorithm is built on.
//
// Mirrors the paper's implementation strategy (Section 6): loops shorter
// than a grain threshold run sequentially; the paper used grain size 256 in
// its Cilk++ implementation, which we keep as kDefaultGrain. This grain is
// what produces the "small bump" in the running-time-vs-prefix-size plots
// (Figures 1(c,f), 2(c,f)) when the loop flips from sequential to parallel.
#pragma once

#include <cstddef>
#include <cstdint>

#include "parallel/arch.hpp"

namespace pargreedy {

/// Grain size below which loops run sequentially (paper's value).
inline constexpr int64_t kDefaultGrain = 256;

/// Applies fn(i) for i in [begin, end), in parallel when the range is at
/// least `grain` long. fn must be safe to invoke concurrently for distinct i.
template <typename Fn>
void parallel_for(int64_t begin, int64_t end, Fn&& fn,
                  int64_t grain = kDefaultGrain) {
  const int64_t len = end - begin;
  if (len <= 0) return;
  if (len < grain || num_workers() == 1 || in_parallel()) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
#if defined(_OPENMP)
#pragma omp parallel for schedule(guided)
  for (int64_t i = begin; i < end; ++i) fn(i);
#else
  for (int64_t i = begin; i < end; ++i) fn(i);
#endif
}

/// Like parallel_for but with a static schedule: iteration i always runs on
/// the same worker for a fixed worker count (useful for thread-local
/// accumulation patterns).
template <typename Fn>
void parallel_for_static(int64_t begin, int64_t end, Fn&& fn,
                         int64_t grain = kDefaultGrain) {
  const int64_t len = end - begin;
  if (len <= 0) return;
  if (len < grain || num_workers() == 1 || in_parallel()) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
#if defined(_OPENMP)
#pragma omp parallel for schedule(static)
  for (int64_t i = begin; i < end; ++i) fn(i);
#else
  for (int64_t i = begin; i < end; ++i) fn(i);
#endif
}

/// Splits [0, n) into at most num_workers() contiguous blocks and runs
/// fn(block_id, block_begin, block_end) for each in parallel. The block
/// decomposition depends only on n and the worker count, never on timing.
template <typename Fn>
void parallel_blocks(int64_t n, Fn&& fn) {
  if (n <= 0) return;
  const int64_t workers = in_parallel() ? 1 : num_workers();
  const int64_t blocks = workers < n ? workers : n;
  const int64_t chunk = (n + blocks - 1) / blocks;
#if defined(_OPENMP)
#pragma omp parallel for schedule(static, 1)
  for (int64_t b = 0; b < blocks; ++b) {
    const int64_t lo = b * chunk;
    const int64_t hi = lo + chunk < n ? lo + chunk : n;
    if (lo < hi) fn(b, lo, hi);
  }
#else
  for (int64_t b = 0; b < blocks; ++b) {
    const int64_t lo = b * chunk;
    const int64_t hi = lo + chunk < n ? lo + chunk : n;
    if (lo < hi) fn(b, lo, hi);
  }
#endif
}

/// Number of blocks parallel_blocks(n, ...) will produce.
inline int64_t parallel_block_count(int64_t n) {
  if (n <= 0) return 0;
  const int64_t workers = in_parallel() ? 1 : num_workers();
  return workers < n ? workers : n;
}

}  // namespace pargreedy
