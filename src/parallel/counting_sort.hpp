// Parallel stable counting sort by small integer keys.
//
// Used by the CSR builder (bucket edges by endpoint) and by the maximal-
// matching rootset algorithm's per-vertex incident-edge ordering (Lemma 5.3
// sorts incident edges by priority with a bucket sort, citing CLRS [8]).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "support/check.hpp"

namespace pargreedy {

/// Stable-sorts `in` into `out` by key(in[i]) in [0, num_buckets).
/// Returns the bucket boundaries: offsets[b] is the first index of bucket b
/// in `out`, with offsets[num_buckets] == in.size().
///
/// Parallel over blocks of the input with per-block histograms; the scatter
/// order within a bucket follows (block, position) order, which preserves
/// input order — i.e. the sort is stable.
template <typename T, typename Key>
std::vector<int64_t> counting_sort(std::span<const T> in, std::span<T> out,
                                   int64_t num_buckets, Key&& key) {
  const int64_t n = static_cast<int64_t>(in.size());
  PG_CHECK(static_cast<int64_t>(out.size()) == n);
  PG_CHECK(num_buckets >= 1);

  if (n < 4 * kDefaultGrain || num_workers() == 1 || in_parallel()) {
    std::vector<int64_t> count(static_cast<std::size_t>(num_buckets + 1), 0);
    for (int64_t i = 0; i < n; ++i) {
      const int64_t b = key(in[static_cast<std::size_t>(i)]);
      PG_DCHECK(b >= 0 && b < num_buckets);
      ++count[static_cast<std::size_t>(b) + 1];
    }
    for (int64_t b = 0; b < num_buckets; ++b)
      count[static_cast<std::size_t>(b) + 1] +=
          count[static_cast<std::size_t>(b)];
    std::vector<int64_t> cursor(count.begin(), count.end() - 1);
    for (int64_t i = 0; i < n; ++i) {
      const int64_t b = key(in[static_cast<std::size_t>(i)]);
      out[static_cast<std::size_t>(cursor[static_cast<std::size_t>(b)]++)] =
          in[static_cast<std::size_t>(i)];
    }
    return count;
  }

  const int64_t blocks = parallel_block_count(n);
  // hist[block * num_buckets + bucket]
  std::vector<int64_t> hist(
      static_cast<std::size_t>(blocks * num_buckets), 0);
  parallel_blocks(n, [&](int64_t b, int64_t lo, int64_t hi) {
    int64_t* h = hist.data() + b * num_buckets;
    for (int64_t i = lo; i < hi; ++i) {
      const int64_t k = key(in[static_cast<std::size_t>(i)]);
      PG_DCHECK(k >= 0 && k < num_buckets);
      ++h[k];
    }
  });
  // Column-major exclusive scan: for each bucket, across blocks in order.
  // Sequential over num_buckets * blocks cells; fine because blocks is small.
  std::vector<int64_t> offsets(static_cast<std::size_t>(num_buckets + 1), 0);
  int64_t running = 0;
  for (int64_t k = 0; k < num_buckets; ++k) {
    offsets[static_cast<std::size_t>(k)] = running;
    for (int64_t b = 0; b < blocks; ++b) {
      int64_t& cell = hist[static_cast<std::size_t>(b * num_buckets + k)];
      const int64_t c = cell;
      cell = running;
      running += c;
    }
  }
  offsets[static_cast<std::size_t>(num_buckets)] = running;
  PG_CHECK(running == n);
  parallel_blocks(n, [&](int64_t b, int64_t lo, int64_t hi) {
    int64_t* cursor = hist.data() + b * num_buckets;
    for (int64_t i = lo; i < hi; ++i) {
      const int64_t k = key(in[static_cast<std::size_t>(i)]);
      out[static_cast<std::size_t>(cursor[k]++)] =
          in[static_cast<std::size_t>(i)];
    }
  });
  return offsets;
}

}  // namespace pargreedy
