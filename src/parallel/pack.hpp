// Parallel pack / filter: densely compact the elements (or indices) that
// satisfy a predicate, preserving order.
//
// This is the workhorse of the prefix-based algorithms: after every round
// the still-undecided vertices (edges) are packed into a fresh dense array
// (Theorem 4.5: "densely pack G[P'] into new arrays").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/scan.hpp"

namespace pargreedy {

/// Returns the values in[i] for which flag(i) is true, order-preserving.
template <typename T, typename Flag>
std::vector<T> pack(std::span<const T> in, Flag&& flag) {
  const int64_t n = static_cast<int64_t>(in.size());
  if (n < 2 * kDefaultGrain || num_workers() == 1 || in_parallel()) {
    std::vector<T> out;
    for (int64_t i = 0; i < n; ++i)
      if (flag(i)) out.push_back(in[static_cast<std::size_t>(i)]);
    return out;
  }
  const int64_t blocks = parallel_block_count(n);
  std::vector<int64_t> block_count(static_cast<std::size_t>(blocks), 0);
  parallel_blocks(n, [&](int64_t b, int64_t lo, int64_t hi) {
    int64_t c = 0;
    for (int64_t i = lo; i < hi; ++i) c += flag(i) ? 1 : 0;
    block_count[static_cast<std::size_t>(b)] = c;
  });
  const int64_t total = exclusive_scan_inplace(std::span<int64_t>(block_count));
  std::vector<T> out(static_cast<std::size_t>(total));
  parallel_blocks(n, [&](int64_t b, int64_t lo, int64_t hi) {
    int64_t pos = block_count[static_cast<std::size_t>(b)];
    for (int64_t i = lo; i < hi; ++i)
      if (flag(i)) out[static_cast<std::size_t>(pos++)] =
          in[static_cast<std::size_t>(i)];
  });
  return out;
}

/// Returns the indices i in [0, n) for which pred(i) is true, in order.
template <typename Index, typename Pred>
std::vector<Index> pack_index(int64_t n, Pred&& pred) {
  if (n < 2 * kDefaultGrain || num_workers() == 1 || in_parallel()) {
    std::vector<Index> out;
    for (int64_t i = 0; i < n; ++i)
      if (pred(i)) out.push_back(static_cast<Index>(i));
    return out;
  }
  const int64_t blocks = parallel_block_count(n);
  std::vector<int64_t> block_count(static_cast<std::size_t>(blocks), 0);
  parallel_blocks(n, [&](int64_t b, int64_t lo, int64_t hi) {
    int64_t c = 0;
    for (int64_t i = lo; i < hi; ++i) c += pred(i) ? 1 : 0;
    block_count[static_cast<std::size_t>(b)] = c;
  });
  const int64_t total = exclusive_scan_inplace(std::span<int64_t>(block_count));
  std::vector<Index> out(static_cast<std::size_t>(total));
  parallel_blocks(n, [&](int64_t b, int64_t lo, int64_t hi) {
    int64_t pos = block_count[static_cast<std::size_t>(b)];
    for (int64_t i = lo; i < hi; ++i)
      if (pred(i)) out[static_cast<std::size_t>(pos++)] =
          static_cast<Index>(i);
  });
  return out;
}

}  // namespace pargreedy
