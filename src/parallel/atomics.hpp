// Atomic helper operations emulating the paper's CRCW-PRAM primitives.
//
// The rootset algorithms (Lemmas 4.2 and 5.3) rely on the "arbitrary write"
// CRCW model: many processors write a candidate and exactly one wins.
// claim_slot() is that primitive; atomic_write_min is the priority-write
// used by the deterministic-reservations engine.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace pargreedy {

/// Atomically sets *slot = value if *slot still holds `empty`.
/// Returns true iff this caller's write won (the arbitrary-CRCW-write
/// emulation: exactly one concurrent claimant succeeds).
template <typename T>
bool claim_slot(std::atomic<T>& slot, T empty, T value) {
  T expected = empty;
  return slot.compare_exchange_strong(expected, value,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire);
}

/// Atomically lowers `slot` to `value` if value is smaller.
/// Returns true iff the write changed the slot.
template <typename T>
bool atomic_write_min(std::atomic<T>& slot, T value) {
  T cur = slot.load(std::memory_order_relaxed);
  while (value < cur) {
    if (slot.compare_exchange_weak(cur, value, std::memory_order_acq_rel,
                                   std::memory_order_relaxed))
      return true;
  }
  return false;
}

/// Atomically raises `slot` to `value` if value is larger.
template <typename T>
bool atomic_write_max(std::atomic<T>& slot, T value) {
  T cur = slot.load(std::memory_order_relaxed);
  while (value > cur) {
    if (slot.compare_exchange_weak(cur, value, std::memory_order_acq_rel,
                                   std::memory_order_relaxed))
      return true;
  }
  return false;
}

/// A cache-line-padded counter for per-worker accumulation without false
/// sharing (used by the work-instrumentation layer).
struct alignas(64) PaddedCounter {
  std::atomic<uint64_t> value{0};
};

}  // namespace pargreedy
