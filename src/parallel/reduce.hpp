// Parallel reductions over index ranges.
//
// Deterministic for associative+commutative monoids over integers; for
// floating point the blocked evaluation order is fixed by (n, worker count),
// so repeated runs at the same width agree bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "parallel/parallel_for.hpp"

namespace pargreedy {

/// Reduces fn(i) for i in [begin, end) with `combine`, starting from
/// `identity`. fn is invoked exactly once per index.
template <typename T, typename Fn, typename Combine>
T parallel_reduce(int64_t begin, int64_t end, T identity, Fn&& fn,
                  Combine&& combine) {
  const int64_t n = end - begin;
  if (n <= 0) return identity;
  if (n < kDefaultGrain || num_workers() == 1 || in_parallel()) {
    T acc = identity;
    for (int64_t i = begin; i < end; ++i) acc = combine(acc, fn(i));
    return acc;
  }
  const int64_t blocks = parallel_block_count(n);
  std::vector<T> partial(static_cast<std::size_t>(blocks), identity);
  parallel_blocks(n, [&](int64_t b, int64_t lo, int64_t hi) {
    T acc = identity;
    for (int64_t i = lo; i < hi; ++i) acc = combine(acc, fn(begin + i));
    partial[static_cast<std::size_t>(b)] = acc;
  });
  T acc = identity;
  for (const T& p : partial) acc = combine(acc, p);
  return acc;
}

/// Sum of fn(i) over [begin, end).
template <typename T, typename Fn>
T reduce_add(int64_t begin, int64_t end, Fn&& fn) {
  return parallel_reduce<T>(begin, end, T{0}, fn,
                            [](T a, T b) { return a + b; });
}

/// Maximum of fn(i) over [begin, end); returns `identity` on empty ranges.
template <typename T, typename Fn>
T reduce_max(int64_t begin, int64_t end, T identity, Fn&& fn) {
  return parallel_reduce<T>(begin, end, identity, fn,
                            [](T a, T b) { return a > b ? a : b; });
}

/// Minimum of fn(i) over [begin, end); returns `identity` on empty ranges.
template <typename T, typename Fn>
T reduce_min(int64_t begin, int64_t end, T identity, Fn&& fn) {
  return parallel_reduce<T>(begin, end, identity, fn,
                            [](T a, T b) { return a < b ? a : b; });
}

/// Number of indices in [begin, end) where pred(i) holds.
template <typename Pred>
int64_t count_if(int64_t begin, int64_t end, Pred&& pred) {
  return reduce_add<int64_t>(begin, end,
                             [&](int64_t i) { return pred(i) ? 1 : 0; });
}

}  // namespace pargreedy
