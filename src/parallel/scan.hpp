// Parallel prefix sums (scan).
//
// The classic two-pass blocked algorithm: per-block sums, a sequential scan
// over the (few) block sums, then a per-block local scan with the block
// offset. Used by pack, the CSR builder, and the prefix algorithms'
// round-packing steps (Theorem 4.5 uses "prefix sums ... O(log n) depth and
// linear work" for exactly this purpose).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "parallel/parallel_for.hpp"

namespace pargreedy {

/// Exclusive prefix sum of `in` into `out` (may alias); returns the total.
template <typename T>
T exclusive_scan(std::span<const T> in, std::span<T> out) {
  const int64_t n = static_cast<int64_t>(in.size());
  if (n == 0) return T{0};
  if (n < 2 * kDefaultGrain || num_workers() == 1 || in_parallel()) {
    T acc{0};
    for (int64_t i = 0; i < n; ++i) {
      const T v = in[static_cast<std::size_t>(i)];
      out[static_cast<std::size_t>(i)] = acc;
      acc += v;
    }
    return acc;
  }
  const int64_t blocks = parallel_block_count(n);
  std::vector<T> block_sum(static_cast<std::size_t>(blocks), T{0});
  parallel_blocks(n, [&](int64_t b, int64_t lo, int64_t hi) {
    T acc{0};
    for (int64_t i = lo; i < hi; ++i) acc += in[static_cast<std::size_t>(i)];
    block_sum[static_cast<std::size_t>(b)] = acc;
  });
  T total{0};
  for (int64_t b = 0; b < blocks; ++b) {
    const T v = block_sum[static_cast<std::size_t>(b)];
    block_sum[static_cast<std::size_t>(b)] = total;
    total += v;
  }
  parallel_blocks(n, [&](int64_t b, int64_t lo, int64_t hi) {
    T acc = block_sum[static_cast<std::size_t>(b)];
    for (int64_t i = lo; i < hi; ++i) {
      const T v = in[static_cast<std::size_t>(i)];
      out[static_cast<std::size_t>(i)] = acc;
      acc += v;
    }
  });
  return total;
}

/// Exclusive prefix sum in place; returns the total.
template <typename T>
T exclusive_scan_inplace(std::span<T> data) {
  return exclusive_scan(std::span<const T>(data.data(), data.size()), data);
}

/// Inclusive prefix sum of `in` into `out` (may alias); returns the total.
template <typename T>
T inclusive_scan(std::span<const T> in, std::span<T> out) {
  const int64_t n = static_cast<int64_t>(in.size());
  if (n == 0) return T{0};
  // Inclusive = exclusive shifted by one; compute exclusive into out, then
  // shift by adding the original values. Two passes keeps the code simple
  // and still linear work.
  std::vector<T> saved(in.begin(), in.end());
  const T total = exclusive_scan(std::span<const T>(saved), out);
  parallel_for(0, n, [&](int64_t i) {
    out[static_cast<std::size_t>(i)] += saved[static_cast<std::size_t>(i)];
  });
  return total;
}

}  // namespace pargreedy
