#include "graph/validate.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace pargreedy {

std::vector<std::string> validate_csr(const CsrGraph& g) {
  std::vector<std::string> problems;
  auto report = [&](const std::string& p) {
    if (problems.size() < 32) problems.push_back(p);
  };
  const uint64_t n = g.num_vertices();
  const uint64_t m = g.num_edges();

  if (g.offsets().size() != n + 1) {
    report("offsets array has wrong size");
    return problems;  // nothing else is safe to index
  }
  for (uint64_t v = 0; v < n; ++v) {
    if (g.offsets()[v] > g.offsets()[v + 1]) {
      report("offsets not monotone at vertex " + std::to_string(v));
      return problems;
    }
  }
  if (g.offsets()[n] != 2 * m) report("offsets[n] != 2m");
  if (g.adjacency().size() != 2 * m) report("adjacency size != 2m");

  // Edge table: canonical and strictly sorted.
  for (uint64_t e = 0; e < m; ++e) {
    const Edge& ed = g.edge(static_cast<EdgeId>(e));
    if (ed.u >= ed.v)
      report("edge " + std::to_string(e) + " not canonical (u<v)");
    if (ed.v >= n) report("edge " + std::to_string(e) + " endpoint range");
    if (e > 0 && !(g.edge(static_cast<EdgeId>(e - 1)) < ed))
      report("edge table not strictly sorted at " + std::to_string(e));
  }

  // Adjacency slots: in range, no loops, incident ids consistent.
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    const auto inc = g.incident_edges(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] >= n) {
        report("neighbor out of range at vertex " + std::to_string(v));
        continue;
      }
      if (nbrs[i] == v) report("self loop at vertex " + std::to_string(v));
      if (inc[i] >= m) {
        report("incident edge id out of range at vertex " +
               std::to_string(v));
        continue;
      }
      const Edge& ed = g.edge(inc[i]);
      const bool matches = (ed.u == v && ed.v == nbrs[i]) ||
                           (ed.v == v && ed.u == nbrs[i]);
      if (!matches)
        report("incident edge id inconsistent at vertex " +
               std::to_string(v));
    }
  }

  // Symmetry: every arc (v, w) has a reverse (w, v).
  for (VertexId v = 0; v < n && problems.size() < 32; ++v) {
    for (VertexId w : g.neighbors(v)) {
      if (w >= n) continue;
      const auto rev = g.neighbors(w);
      if (std::find(rev.begin(), rev.end(), v) == rev.end())
        report("missing reverse arc for (" + std::to_string(v) + "," +
               std::to_string(w) + ")");
    }
  }
  return problems;
}

void require_valid(const CsrGraph& g) {
  const std::vector<std::string> problems = validate_csr(g);
  if (problems.empty()) return;
  std::ostringstream os;
  os << "invalid CsrGraph:";
  for (const std::string& p : problems) os << "\n  - " << p;
  throw CheckFailure(os.str());
}

}  // namespace pargreedy
