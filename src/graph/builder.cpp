// CSR construction from a normalized edge list.
//
// The build is parallel yet fully deterministic: directed arcs are sorted by
// source with a stable two-pass bucket sort, so each adjacency list ends up
// ordered by edge id regardless of worker count. (A scatter with atomic
// per-vertex cursors would be faster by a constant but produces a
// scheduling-dependent slot order; determinism of the *layout*, not just
// the results, keeps every downstream instrumentation number reproducible.)
#include <algorithm>
#include <atomic>

#include "graph/csr_graph.hpp"
#include "parallel/counting_sort.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/scan.hpp"
#include "support/check.hpp"

namespace pargreedy {

namespace {

struct Arc {
  VertexId src;
  VertexId dst;
  EdgeId id;
};

}  // namespace

CsrGraph build_csr_from_normalized(EdgeList normalized) {
  const uint64_t n = normalized.num_vertices();
  const uint64_t m = normalized.num_edges();
  PG_CHECK_MSG(m <= static_cast<uint64_t>(kInvalidEdge),
               "edge count exceeds EdgeId range");

  CsrGraph g;
  g.num_vertices_ = n;
  g.edges_.assign(normalized.edges().begin(), normalized.edges().end());
  g.offsets_.assign(n + 1, 0);
  if (n == 0 || m == 0) return g;

  // Emit both directed arcs of every undirected edge, in edge-id order.
  std::vector<Arc> arcs(2 * m);
  parallel_for(0, static_cast<int64_t>(m), [&](int64_t i) {
    const Edge e = g.edges_[static_cast<std::size_t>(i)];
    const EdgeId id = static_cast<EdgeId>(i);
    arcs[static_cast<std::size_t>(2 * i)] = Arc{e.u, e.v, id};
    arcs[static_cast<std::size_t>(2 * i + 1)] = Arc{e.v, e.u, id};
  });

  // Stable sort by source vertex: coarse bucket pass, then an exact
  // per-bucket counting sort (the nested call runs serially inside the
  // parallel loop, which is what we want).
  const int64_t buckets = std::min<int64_t>(1024, static_cast<int64_t>(n));
  auto vertex_lo = [&](int64_t b) {
    return static_cast<VertexId>((static_cast<uint64_t>(b) * n +
                                  static_cast<uint64_t>(buckets) - 1) /
                                 static_cast<uint64_t>(buckets));
  };
  auto bucket_of = [&](VertexId v) {
    return static_cast<int64_t>(static_cast<__uint128_t>(v) *
                                static_cast<uint64_t>(buckets) / n);
  };
  std::vector<Arc> sorted(arcs.size());
  const std::vector<int64_t> bucket_offsets =
      counting_sort<Arc>(std::span<const Arc>(arcs), std::span<Arc>(sorted),
                         buckets, [&](const Arc& a) { return bucket_of(a.src); });
  parallel_for(
      0, buckets,
      [&](int64_t b) {
        const int64_t lo = bucket_offsets[static_cast<std::size_t>(b)];
        const int64_t hi = bucket_offsets[static_cast<std::size_t>(b) + 1];
        if (lo == hi) return;
        const VertexId vlo = vertex_lo(b);
        const VertexId vhi = b + 1 < buckets
                                 ? vertex_lo(b + 1)
                                 : static_cast<VertexId>(n);
        std::vector<Arc> local(sorted.begin() + lo, sorted.begin() + hi);
        counting_sort<Arc>(
            std::span<const Arc>(local),
            std::span<Arc>(sorted.data() + lo, static_cast<std::size_t>(hi - lo)),
            static_cast<int64_t>(vhi - vlo),
            [&](const Arc& a) { return static_cast<int64_t>(a.src - vlo); });
      },
      /*grain=*/1);

  // Offsets from degrees; counts are exact, so the scan gives the layout.
  std::vector<Offset> degree(n, 0);
  {
    std::vector<std::atomic<uint32_t>> deg(n);
    parallel_for(0, static_cast<int64_t>(m), [&](int64_t i) {
      const Edge e = g.edges_[static_cast<std::size_t>(i)];
      deg[e.u].fetch_add(1, std::memory_order_relaxed);
      deg[e.v].fetch_add(1, std::memory_order_relaxed);
    });
    parallel_for(0, static_cast<int64_t>(n), [&](int64_t v) {
      degree[static_cast<std::size_t>(v)] =
          deg[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
    });
  }
  const Offset total = exclusive_scan(std::span<const Offset>(degree),
                                      std::span<Offset>(g.offsets_.data(), n));
  g.offsets_[n] = total;
  PG_CHECK(total == 2 * m);

  g.adjacency_.resize(2 * m);
  g.incident_.resize(2 * m);
  parallel_for(0, static_cast<int64_t>(2 * m), [&](int64_t i) {
    g.adjacency_[static_cast<std::size_t>(i)] =
        sorted[static_cast<std::size_t>(i)].dst;
    g.incident_[static_cast<std::size_t>(i)] =
        sorted[static_cast<std::size_t>(i)].id;
  });
  return g;
}

}  // namespace pargreedy
