// Structural validation of CsrGraph instances.
//
// Every invariant the algorithms rely on is checked here; generators and
// I/O round-trips are tested against this in the suite, and examples call
// it before running algorithms on user-provided files.
#pragma once

#include <string>
#include <vector>

#include "graph/csr_graph.hpp"

namespace pargreedy {

/// Returns a human-readable list of structural problems; empty means the
/// graph satisfies every invariant:
///  * offsets monotone, offsets[n] == 2m,
///  * adjacency targets in range, no self loops,
///  * incident-edge ids consistent with the edge table,
///  * edges canonical (u < v), strictly sorted (so no duplicates),
///  * adjacency is symmetric (each arc has its reverse).
std::vector<std::string> validate_csr(const CsrGraph& g);

/// Throws CheckFailure listing all problems if validate_csr is non-empty.
void require_valid(const CsrGraph& g);

}  // namespace pargreedy
