// Derived graph operations: statistics, subgraphs, the line graph, the
// complement, and connectivity — used by tests, examples, and the analysis
// benches (e.g. the MM == MIS-of-line-graph cross-check from Section 5).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/mis/vertex_order.hpp"
#include "graph/csr_graph.hpp"

namespace pargreedy {

/// Basic degree statistics.
struct DegreeStats {
  uint64_t min_degree = 0;
  uint64_t max_degree = 0;
  double avg_degree = 0.0;
  uint64_t isolated_vertices = 0;
};

DegreeStats degree_stats(const CsrGraph& g);

/// histogram[d] = number of vertices of degree d, for d in [0, max_degree].
std::vector<uint64_t> degree_histogram(const CsrGraph& g);

/// The subgraph induced by `vertices` (duplicates not allowed). Vertex i of
/// the result corresponds to vertices[i]. Intended for test-scale graphs.
CsrGraph induced_subgraph(const CsrGraph& g,
                          std::span<const VertexId> vertices);

/// The line graph L(G): one vertex per edge of g, with edges between
/// adjacent (endpoint-sharing) edges of g. Section 5 notes MM(G) equals
/// MIS(L(G)) — but also that L(G) "can be asymptotically larger than G",
/// which is why the MM algorithms never build it. Tests do, at small scale.
CsrGraph line_graph(const CsrGraph& g);

/// The complement graph (edges exactly where g has none). Quadratic size;
/// test-scale only. Cook's reduction (footnote 1) uses this.
CsrGraph complement_graph(const CsrGraph& g);

/// The graph with every vertex renamed to its rank under `order` (vertex v
/// of g becomes vertex order.rank(v)). Running any ordering-driven
/// algorithm on the result with VertexOrder::identity is equivalent to
/// running it on g with `order` — this is the pre-permutation trick the
/// paper's PBBS implementation uses so that priority comparison is a plain
/// id comparison and the active window is a contiguous, cache-friendly id
/// range. Map results back via in_set_original[v] = in_set[order.rank(v)].
CsrGraph relabel_by_rank(const CsrGraph& g, const VertexOrder& order);

/// Number of triangles (3-cycles) in g. Merge-based intersection over the
/// (sorted) adjacency lists, counting each triangle once at its smallest
/// vertex: O(sum over edges of min-degree) — fine for the sparse inputs
/// this library targets.
uint64_t count_triangles(const CsrGraph& g);

/// Global clustering coefficient: 3 * triangles / #open-or-closed wedges
/// (0 when the graph has no wedge). Distinguishes the clustered families
/// (geometric, small-world at low beta) from the locally tree-like ones.
double global_clustering_coefficient(const CsrGraph& g);

/// component[v] = id of v's connected component (smallest vertex in it).
std::vector<VertexId> connected_components(const CsrGraph& g);

/// Number of connected components.
uint64_t count_components(const CsrGraph& g);

}  // namespace pargreedy
