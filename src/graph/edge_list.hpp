// EdgeList: the mutable edge-set representation produced by the generators
// and consumed by the CSR builder.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace pargreedy {

/// A multigraph as a list of (possibly unnormalized) undirected edges.
class EdgeList {
 public:
  EdgeList() = default;
  explicit EdgeList(uint64_t num_vertices) : num_vertices_(num_vertices) {}
  EdgeList(uint64_t num_vertices, std::vector<Edge> edges)
      : num_vertices_(num_vertices), edges_(std::move(edges)) {}

  [[nodiscard]] uint64_t num_vertices() const { return num_vertices_; }
  [[nodiscard]] uint64_t num_edges() const { return edges_.size(); }
  [[nodiscard]] std::span<const Edge> edges() const { return edges_; }
  [[nodiscard]] std::vector<Edge>& mutable_edges() { return edges_; }

  /// Appends an edge; endpoints must be < num_vertices().
  void add(VertexId u, VertexId v);

  /// Reserves capacity for `m` edges.
  void reserve(uint64_t m) { edges_.reserve(m); }

  /// True if every endpoint is in range (loops/duplicates allowed).
  [[nodiscard]] bool endpoints_in_range() const;

 private:
  uint64_t num_vertices_ = 0;
  std::vector<Edge> edges_;
};

/// Returns a simple-graph edge list: self loops removed, endpoints put in
/// u < v canonical order, duplicates removed, edges sorted by (u, v).
/// Parallel (bucketed sort); deterministic in the input.
EdgeList normalize_edges(const EdgeList& in);

/// Sorts edges by (u, v) in place, in parallel; deterministic.
void sort_edges(std::vector<Edge>& edges, uint64_t num_vertices);

}  // namespace pargreedy
