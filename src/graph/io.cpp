#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace pargreedy {

void write_adjacency_graph(const std::filesystem::path& path,
                           const CsrGraph& g) {
  std::ofstream out(path);
  PG_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  const uint64_t n = g.num_vertices();
  const uint64_t arcs = 2 * g.num_edges();
  out << "AdjacencyGraph\n" << n << '\n' << arcs << '\n';
  for (uint64_t v = 0; v < n; ++v) out << g.offsets()[v] << '\n';
  for (uint64_t i = 0; i < arcs; ++i) out << g.adjacency()[i] << '\n';
  PG_CHECK_MSG(out.good(), "write to " << path << " failed");
}

CsrGraph read_adjacency_graph(const std::filesystem::path& path) {
  std::ifstream in(path);
  PG_CHECK_MSG(in.good(), "cannot open " << path << " for reading");
  std::string magic;
  in >> magic;
  PG_CHECK_MSG(magic == "AdjacencyGraph",
               "bad magic '" << magic << "' in " << path);
  uint64_t n = 0, arcs = 0;
  in >> n >> arcs;
  PG_CHECK_MSG(in.good(), "truncated header in " << path);
  std::vector<Offset> offsets(n + 1, 0);
  for (uint64_t v = 0; v < n; ++v) in >> offsets[v];
  offsets[n] = arcs;
  std::vector<VertexId> targets(arcs);
  for (uint64_t i = 0; i < arcs; ++i) in >> targets[i];
  PG_CHECK_MSG(!in.fail(), "truncated body in " << path);

  // Rebuild via the normal builder: collect each arc once (u < v keeps one
  // copy per undirected edge; the format stores both directions).
  EdgeList edges(n);
  edges.reserve(arcs / 2);
  for (VertexId u = 0; u < n; ++u) {
    PG_CHECK_MSG(offsets[u] <= offsets[u + 1] && offsets[u + 1] <= arcs,
                 "non-monotone offsets in " << path);
    for (Offset i = offsets[u]; i < offsets[u + 1]; ++i) {
      PG_CHECK_MSG(targets[i] < n, "target out of range in " << path);
      if (u < targets[i]) edges.add(u, targets[i]);
    }
  }
  return CsrGraph::from_edges(edges);
}

void write_edge_list(const std::filesystem::path& path,
                     const EdgeList& edges) {
  std::ofstream out(path);
  PG_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out << "EdgeArray\n";
  for (const Edge& e : edges.edges()) out << e.u << ' ' << e.v << '\n';
  PG_CHECK_MSG(out.good(), "write to " << path << " failed");
}

EdgeList read_edge_list(const std::filesystem::path& path,
                        uint64_t num_vertices) {
  std::ifstream in(path);
  PG_CHECK_MSG(in.good(), "cannot open " << path << " for reading");
  std::string magic;
  in >> magic;
  PG_CHECK_MSG(magic == "EdgeArray", "bad magic '" << magic << "' in " << path);
  std::vector<Edge> edges;
  uint64_t u = 0, v = 0;
  uint64_t max_endpoint = 0;
  while (in >> u >> v) {
    max_endpoint = std::max({max_endpoint, u, v});
    edges.push_back(Edge{static_cast<VertexId>(u), static_cast<VertexId>(v)});
  }
  const uint64_t n =
      std::max(num_vertices, edges.empty() ? uint64_t{0} : max_endpoint + 1);
  return EdgeList(n, std::move(edges));
}


namespace {

constexpr char kBinaryMagic[4] = {'P', 'G', 'R', 'B'};

}  // namespace

void write_binary_graph(const std::filesystem::path& path,
                        const CsrGraph& g) {
  std::ofstream out(path, std::ios::binary);
  PG_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out.write(kBinaryMagic, sizeof kBinaryMagic);
  const uint64_t n = g.num_vertices();
  const uint64_t m = g.num_edges();
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  out.write(reinterpret_cast<const char*>(&m), sizeof m);
  static_assert(sizeof(Edge) == 2 * sizeof(VertexId),
                "binary format assumes a packed Edge layout");
  out.write(reinterpret_cast<const char*>(g.edges().data()),
            static_cast<std::streamsize>(m * sizeof(Edge)));
  PG_CHECK_MSG(out.good(), "short write to " << path);
}

CsrGraph read_binary_graph(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  PG_CHECK_MSG(in.good(), "cannot open " << path);
  char magic[4] = {};
  in.read(magic, sizeof magic);
  PG_CHECK_MSG(in.gcount() == sizeof magic &&
                   std::equal(magic, magic + 4, kBinaryMagic),
               path << " is not a PGRB binary graph");
  uint64_t n = 0;
  uint64_t m = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  in.read(reinterpret_cast<char*>(&m), sizeof m);
  PG_CHECK_MSG(in.good(), "truncated header in " << path);
  EdgeList edges(n);
  edges.mutable_edges().resize(m);
  in.read(reinterpret_cast<char*>(edges.mutable_edges().data()),
          static_cast<std::streamsize>(m * sizeof(Edge)));
  PG_CHECK_MSG(in.gcount() ==
                   static_cast<std::streamsize>(m * sizeof(Edge)),
               "truncated edge table in " << path);
  PG_CHECK_MSG(edges.endpoints_in_range(),
               "endpoint out of range in " << path);
  // The writer emits the canonical (sorted, deduped) table, so the
  // normalization pass can be skipped; validate_csr in tests confirms.
  return CsrGraph::from_edges(edges, /*assume_normalized=*/true);
}

}  // namespace pargreedy
