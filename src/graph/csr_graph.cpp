#include "graph/csr_graph.hpp"

#include "parallel/reduce.hpp"

namespace pargreedy {

CsrGraph CsrGraph::from_edges(const EdgeList& edges, bool assume_normalized) {
  if (assume_normalized) {
    return build_csr_from_normalized(
        EdgeList(edges.num_vertices(),
                 std::vector<Edge>(edges.edges().begin(), edges.edges().end())));
  }
  return build_csr_from_normalized(normalize_edges(edges));
}

uint64_t CsrGraph::max_degree() const {
  if (num_vertices_ == 0) return 0;
  return reduce_max<uint64_t>(
      0, static_cast<int64_t>(num_vertices_), 0,
      [&](int64_t v) { return degree(static_cast<VertexId>(v)); });
}

uint64_t CsrGraph::memory_bytes() const {
  return offsets_.capacity() * sizeof(Offset) +
         adjacency_.capacity() * sizeof(VertexId) +
         incident_.capacity() * sizeof(EdgeId) +
         edges_.capacity() * sizeof(Edge);
}

}  // namespace pargreedy
