#include "graph/csr_graph.hpp"

#include <cmath>
#include <utility>

#include "parallel/reduce.hpp"
#include "support/check.hpp"

namespace pargreedy {

namespace {

bool all_finite(const std::vector<Weight>& weights) {
  for (const Weight w : weights)
    if (!std::isfinite(w)) return false;
  return true;
}

}  // namespace

CsrGraph CsrGraph::from_edges(const EdgeList& edges, bool assume_normalized) {
  if (assume_normalized) {
    return build_csr_from_normalized(
        EdgeList(edges.num_vertices(),
                 std::vector<Edge>(edges.edges().begin(), edges.edges().end())));
  }
  return build_csr_from_normalized(normalize_edges(edges));
}

uint64_t CsrGraph::max_degree() const {
  if (num_vertices_ == 0) return 0;
  return reduce_max<uint64_t>(
      0, static_cast<int64_t>(num_vertices_), 0,
      [&](int64_t v) { return degree(static_cast<VertexId>(v)); });
}

uint64_t CsrGraph::memory_bytes() const {
  return offsets_.capacity() * sizeof(Offset) +
         adjacency_.capacity() * sizeof(VertexId) +
         incident_.capacity() * sizeof(EdgeId) +
         edges_.capacity() * sizeof(Edge) +
         vertex_weights_.capacity() * sizeof(Weight) +
         edge_weights_.capacity() * sizeof(Weight);
}

void CsrGraph::set_vertex_weights(std::vector<Weight> weights) {
  PG_CHECK_MSG(weights.empty() || weights.size() == num_vertices_,
               "vertex weight array size != vertex count");
  PG_CHECK_MSG(all_finite(weights), "vertex weights must be finite");
  vertex_weights_ = std::move(weights);
}

void CsrGraph::set_edge_weights(std::vector<Weight> weights) {
  PG_CHECK_MSG(weights.empty() || weights.size() == edges_.size(),
               "edge weight array size != edge count");
  PG_CHECK_MSG(all_finite(weights), "edge weights must be finite");
  edge_weights_ = std::move(weights);
}

}  // namespace pargreedy
